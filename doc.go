// Package intervalsim reproduces "Characterizing the branch misprediction
// penalty" (Eyerman, Smith, Eeckhout; ISPASS 2006): interval analysis of
// superscalar performance and the five-way decomposition of the branch
// misprediction penalty.
//
// The code lives in internal packages (see DESIGN.md for the map); the
// public surface is the three commands under cmd/ and the runnable programs
// under examples/. This file anchors the module root so the repository-wide
// benchmark harness (bench_test.go), which regenerates every table and
// figure of the paper, has a package to attach to.
package intervalsim
