package main

import (
	"strings"
	"testing"

	"intervalsim/internal/uarch"
)

func TestLoadTraceFromBenchmark(t *testing.T) {
	tr, name, err := loadTrace("gzip", "", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if name != "gzip" || tr.Len() != 5000 {
		t.Fatalf("loaded %q with %d insts", name, tr.Len())
	}
}

func TestLoadTraceUnknownBenchmark(t *testing.T) {
	if _, _, err := loadTrace("nonesuch", "", 100); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestLoadTraceMissingFile(t *testing.T) {
	if _, _, err := loadTrace("", "/definitely/not/here.ivtr", 0); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestPrintReportAndTopBranches(t *testing.T) {
	tr, _, err := loadTrace("twolf", "", 80_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.Baseline()
	res, err := uarch.Run(tr.Reader(), cfg, uarch.Options{
		RecordEvents:      true,
		RecordMispredicts: true,
		RecordLoadLevels:  true,
		WarmupInsts:       20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := printReport(&sb, "twolf", tr, res, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"IPC / CPI", "branch mispredicts", "interval analysis",
		"(i)   frontend refill", "(v)   short (L1) D-cache misses", "total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}

	sb.Reset()
	if err := printTopBranches(&sb, tr, res, 5); err != nil {
		t.Fatal(err)
	}
	top := sb.String()
	if !strings.Contains(top, "costliest static branches") || !strings.Contains(top, "0x") {
		t.Errorf("top-branches output = %q", top)
	}
	if lines := strings.Count(top, "\n"); lines != 8 { // title + header + rule + 5 rows
		t.Errorf("top-branches has %d lines", lines)
	}
}
