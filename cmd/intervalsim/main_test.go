package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"intervalsim/internal/uarch"
)

// TestExitCodes asserts the repository-wide convention: 0 success, 1 runtime
// error, 2 usage error — with a single-line "intervalsim: ..." message on
// every error path.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string // required substring of stderr ("" = none)
	}{
		{"no source", nil, 2, "exactly one of -bench or -trace"},
		{"both sources", []string{"-bench", "gzip", "-trace", "x.ivtr"}, 2, "exactly one"},
		{"unknown benchmark", []string{"-bench", "nonesuch"}, 2, "unknown benchmark"},
		{"bad flag", []string{"-bogus"}, 2, ""},
		{"missing trace file", []string{"-trace", "/definitely/not/here.ivtr"}, 1, "intervalsim: "},
		{"bad predictor", []string{"-bench", "gzip", "-insts", "2000", "-pred", "nonesuch"}, 1, "intervalsim: "},
		{"success", []string{"-bench", "gzip", "-insts", "30000", "-warmup", "5000"}, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := realMain(tc.args, &out, &errb); code != tc.code {
				t.Fatalf("exit = %d, want %d (stderr: %s)", code, tc.code, errb.String())
			}
			if tc.stderr != "" && !strings.Contains(errb.String(), tc.stderr) {
				t.Fatalf("stderr = %q, want substring %q", errb.String(), tc.stderr)
			}
			if tc.code == 0 && errb.Len() != 0 {
				t.Fatalf("success wrote to stderr: %q", errb.String())
			}
		})
	}
}

func TestErrorMessagesAreSingleLine(t *testing.T) {
	var sb strings.Builder
	fail(&sb, errors.New("multi\nline\nerror"))
	out := sb.String()
	if strings.Count(out, "\n") != 1 || !strings.HasPrefix(out, "intervalsim: ") {
		t.Fatalf("fail() output = %q", out)
	}
}

func TestLoadTraceFromBenchmark(t *testing.T) {
	tr, name, err := loadTrace("gzip", "", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if name != "gzip" || tr.Len() != 5000 {
		t.Fatalf("loaded %q with %d insts", name, tr.Len())
	}
}

func TestLoadTraceUnknownBenchmark(t *testing.T) {
	if _, _, err := loadTrace("nonesuch", "", 100); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestLoadTraceMissingFile(t *testing.T) {
	if _, _, err := loadTrace("", "/definitely/not/here.ivtr", 0); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestPrintReportAndTopBranches(t *testing.T) {
	tr, _, err := loadTrace("twolf", "", 80_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.Baseline()
	res, err := uarch.Run(tr.Reader(), cfg, uarch.Options{
		RecordEvents:      true,
		RecordMispredicts: true,
		RecordLoadLevels:  true,
		WarmupInsts:       20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := printReport(&sb, "twolf", tr, res, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"IPC / CPI", "branch mispredicts", "interval analysis",
		"(i)   frontend refill", "(v)   short (L1) D-cache misses", "total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}

	sb.Reset()
	if err := printTopBranches(&sb, tr, res, 5); err != nil {
		t.Fatal(err)
	}
	top := sb.String()
	if !strings.Contains(top, "costliest static branches") || !strings.Contains(top, "0x") {
		t.Errorf("top-branches output = %q", top)
	}
	if lines := strings.Count(top, "\n"); lines != 8 { // title + header + rule + 5 rows
		t.Errorf("top-branches has %d lines", lines)
	}
}
