// Command intervalsim runs one cycle-level simulation and prints the
// interval-analysis view of it: performance, the miss-event population,
// interval statistics, and the five-way misprediction penalty decomposition.
//
// The input is either a built-in synthetic benchmark (-bench, see
// tracegen -list) or a binary trace file (-trace, produced by tracegen).
//
// Usage:
//
//	intervalsim -bench gcc [-insts N] [-warmup N] [-depth L] [-rob N] [-pred kind]
//	intervalsim -trace gcc.ivtr
//
// Exit codes follow the repository convention: 0 success, 1 runtime error,
// 2 usage error. Every error path prints a single-line "intervalsim: ..."
// message to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"intervalsim/internal/core"
	"intervalsim/internal/report"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/version"
	"intervalsim/internal/workload"
)

func main() { os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr)) }

// fail prints the single-line error message every exit path uses.
func fail(stderr io.Writer, err error) {
	msg := strings.ReplaceAll(err.Error(), "\n", " ")
	fmt.Fprintf(stderr, "intervalsim: %s\n", msg)
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("intervalsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "", "built-in benchmark name")
	traceFile := fs.String("trace", "", "binary trace file")
	insts := fs.Int("insts", 1_000_000, "dynamic instructions (generator input only)")
	warmup := fs.Uint64("warmup", 100_000, "instructions excluded from statistics")
	depth := fs.Int("depth", 0, "override frontend pipeline depth")
	rob := fs.Int("rob", 0, "override ROB size")
	pred := fs.String("pred", "", "override predictor kind (perfect|taken|not-taken|bimodal|gshare|local|tournament|perceptron)")
	topBranches := fs.Int("topbranches", 0, "also list the N costliest static branches")
	showVersion := fs.Bool("version", false, "print the build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, "intervalsim", version.String())
		return 0
	}

	if (*bench == "") == (*traceFile == "") {
		fail(stderr, fmt.Errorf("give exactly one of -bench or -trace"))
		return 2
	}
	if *bench != "" {
		if _, ok := workload.SuiteConfig(*bench); !ok {
			fail(stderr, fmt.Errorf("unknown benchmark %q", *bench))
			return 2
		}
	}

	cfg := uarch.Baseline()
	if *depth > 0 {
		cfg.FrontendDepth = *depth
	}
	if *rob > 0 {
		cfg.ROBSize = *rob
		if cfg.IQSize > cfg.ROBSize {
			cfg.IQSize = cfg.ROBSize
		}
	}
	if *pred != "" {
		cfg.Pred.Kind = *pred
	}

	tr, name, err := loadTrace(*bench, *traceFile, *insts)
	if err != nil {
		fail(stderr, err)
		return 1
	}

	// Pack into the struct-of-arrays layout so the simulator takes its
	// allocation-free fast path (precomputed dependence metadata).
	res, err := uarch.Run(trace.Pack(tr).Reader(), cfg, uarch.Options{
		RecordEvents:      true,
		RecordMispredicts: true,
		RecordLoadLevels:  true,
		WarmupInsts:       *warmup,
	})
	if err != nil {
		fail(stderr, err)
		return 1
	}
	if err := printReport(stdout, name, tr, res, cfg); err != nil {
		fail(stderr, err)
		return 1
	}
	if *topBranches > 0 {
		fmt.Fprintln(stdout)
		if err := printTopBranches(stdout, tr, res, *topBranches); err != nil {
			fail(stderr, err)
			return 1
		}
	}
	return 0
}

// printTopBranches lists the static branches responsible for the most
// misprediction cycles — the paper's motivating use case.
func printTopBranches(w io.Writer, tr *trace.Trace, res *uarch.Result, n int) error {
	costs := core.CostliestBranches(tr, res, n)
	t := report.New(fmt.Sprintf("top %d costliest static branches", len(costs)),
		"pc", "mispredicts", "total cycles", "avg penalty")
	for _, c := range costs {
		t.AddRow(fmt.Sprintf("%#x", c.PC),
			fmt.Sprintf("%d", c.Mispredicts),
			fmt.Sprintf("%.0f", c.TotalPenalty),
			fmt.Sprintf("%.1f", c.AvgPenalty()),
		)
	}
	return t.Fprint(w)
}

func loadTrace(bench, traceFile string, insts int) (*trace.Trace, string, error) {
	if bench != "" {
		wc, ok := workload.SuiteConfig(bench)
		if !ok {
			return nil, "", fmt.Errorf("unknown benchmark %q", bench)
		}
		tr, err := trace.ReadAll(workload.MustNew(wc, insts))
		return tr, bench, err
	}
	f, err := os.Open(traceFile)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	return tr, traceFile, err
}

func printReport(w io.Writer, name string, tr *trace.Trace, res *uarch.Result, cfg uarch.Config) error {
	perKI := func(n uint64) float64 { return float64(n) / float64(res.Insts) * 1000 }

	t := report.New(fmt.Sprintf("%s on %s (%d insts measured, %d warmup)",
		name, cfg.Name, res.Insts, tr.Len()-int(res.Insts)),
		"metric", "value")
	t.AddRow("cycles", fmt.Sprintf("%d", res.Cycles))
	t.AddRow("IPC / CPI", fmt.Sprintf("%.3f / %.3f", res.IPC(), res.CPI()))
	t.AddRow("branch mispredicts", fmt.Sprintf("%d (%.2f MPKI; %d direction, %d BTB)",
		res.Mispredicts, perKI(res.Mispredicts), res.Bpred.DirMispredict, res.Bpred.BTBMispredict))
	t.AddRow("I-cache misses", fmt.Sprintf("%d (%.2f /KI)", res.ICacheMisses, perKI(res.ICacheMisses)))
	t.AddRow("short D-misses (L2 hits)", fmt.Sprintf("%d (%.2f /KI)", res.ShortDMisses, perKI(res.ShortDMisses)))
	t.AddRow("long D-misses (memory)", fmt.Sprintf("%d (%.2f /KI)", res.LongDMisses, perKI(res.LongDMisses)))
	t.AddRow("avg mispredict penalty", fmt.Sprintf("%.1f cycles (frontend depth %d)",
		res.AvgMispredictPenalty(), cfg.FrontendDepth))
	if err := t.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	ivs, err := core.Segment(res.Events, uint64(tr.Len()))
	if err != nil {
		return err
	}
	sum := core.Summarize(ivs, 16)
	t2 := report.New("interval analysis", "metric", "value")
	t2.AddRow("intervals", fmt.Sprintf("%d", sum.Count))
	t2.AddRow("mean / max length", fmt.Sprintf("%.0f / %.0f insts", sum.Lengths.Mean(), sum.Lengths.Max()))
	for kind, n := range sum.ByKind {
		t2.AddRow("  ending in "+kind.String(), fmt.Sprintf("%d", n))
	}
	if err := t2.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	dec, err := core.NewDecomposer(tr, res)
	if err != nil {
		return err
	}
	m := core.Mean(dec.DecomposeAll())
	t3 := report.New("misprediction penalty decomposition (mean cycles)", "contributor", "cycles")
	t3.AddRow("(i)   frontend refill", fmt.Sprintf("%.1f", m.Frontend))
	t3.AddRow("(ii+iii) window drain @ unit latency", fmt.Sprintf("%.1f", m.BaseILP))
	t3.AddRow("(iv)  functional-unit latencies", fmt.Sprintf("%.1f", m.FULatency))
	t3.AddRow("(v)   short (L1) D-cache misses", fmt.Sprintf("%.1f", m.ShortDMiss))
	t3.AddRow("      long D-miss overlap", fmt.Sprintf("%.1f", m.LongDMiss))
	t3.AddRow("      residual (contention)", fmt.Sprintf("%.1f", m.Residual))
	t3.AddRow("total", fmt.Sprintf("%.1f", m.Total))
	return t3.Fprint(w)
}
