// Command tracedump inspects binary traces written by tracegen: it prints
// summary statistics, converts to the human-readable text format, or both.
//
// Usage:
//
//	tracedump file.ivtr             # statistics only
//	tracedump -text file.ivtr      # dump instructions as text to stdout
//	tracedump -head 20 file.ivtr   # dump only the first 20 instructions
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"intervalsim/internal/isa"
	"intervalsim/internal/report"
	"intervalsim/internal/trace"
	"intervalsim/internal/version"
)

func main() {
	text := flag.Bool("text", false, "dump instructions in the text format")
	head := flag.Int("head", 0, "with -text, dump only the first N instructions (0 = all)")
	showVersion := flag.Bool("version", false, "print the build identity and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("tracedump", version.String())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracedump [-text] [-head N] file.ivtr")
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *text, *head); err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, path string, text bool, head int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}

	if text {
		out := tr
		if head > 0 && head < tr.Len() {
			out = &trace.Trace{Insts: tr.Insts[:head]}
		}
		return trace.WriteText(w, out)
	}

	var classes [isa.NumClasses]uint64
	pcs := make(map[uint64]struct{})
	var taken, branches uint64
	minAddr, maxAddr := ^uint64(0), uint64(0)
	memOps := 0
	for i := range tr.Insts {
		in := &tr.Insts[i]
		classes[in.Class]++
		pcs[in.PC] = struct{}{}
		if in.Class == isa.Branch {
			branches++
			if in.Taken {
				taken++
			}
		}
		if in.Class.IsMem() {
			memOps++
			if in.Addr < minAddr {
				minAddr = in.Addr
			}
			if in.Addr > maxAddr {
				maxAddr = in.Addr
			}
		}
	}

	t := report.New(fmt.Sprintf("%s: %d dynamic instructions", path, tr.Len()), "metric", "value")
	t.AddRow("static instructions (distinct PCs)", fmt.Sprintf("%d", len(pcs)))
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if classes[c] == 0 {
			continue
		}
		t.AddRow("  "+c.String(), fmt.Sprintf("%d (%.1f%%)", classes[c], float64(classes[c])/float64(tr.Len())*100))
	}
	if branches > 0 {
		t.AddRow("taken branch ratio", fmt.Sprintf("%.2f", float64(taken)/float64(branches)))
	}
	if memOps > 0 {
		t.AddRow("data address range", fmt.Sprintf("%#x – %#x", minAddr, maxAddr))
	}
	return t.Fprint(w)
}
