package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"intervalsim/internal/trace"
	"intervalsim/internal/workload"
)

func writeTestTrace(t *testing.T) string {
	t.Helper()
	wc, ok := workload.SuiteConfig("gzip")
	if !ok {
		t.Fatal("suite missing gzip")
	}
	tr, err := trace.ReadAll(workload.MustNew(wc, 3000))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.ivtr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunStats(t *testing.T) {
	path := writeTestTrace(t)
	var sb strings.Builder
	if err := run(&sb, path, false, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"3000 dynamic instructions", "IntALU", "Branch", "taken branch ratio", "data address range"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats missing %q", want)
		}
	}
}

func TestRunTextHead(t *testing.T) {
	path := writeTestTrace(t)
	var sb strings.Builder
	if err := run(&sb, path, true, 7); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 7 {
		t.Errorf("head 7 produced %d lines", lines)
	}
	// The text output must parse back.
	if _, err := trace.ReadText(strings.NewReader(sb.String())); err != nil {
		t.Errorf("text output does not parse: %v", err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(&strings.Builder{}, "/no/such/file", false, 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ivtr")
	if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&strings.Builder{}, path, false, 0); err == nil {
		t.Fatal("corrupt file accepted")
	}
}
