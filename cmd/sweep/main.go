// Command sweep explores the design space: it runs one benchmark over a
// grid of (dispatch width, frontend depth, ROB size) points and emits a CSV
// of IPC and misprediction-penalty statistics, ready for plotting. This is
// the "what if" harness interval analysis exists to support: the penalty
// columns show how the five contributors shift across the design space.
//
// Four engines are available. The default (-mode sim) runs the cycle-level
// simulator at every point, replaying branch-predictor and I-cache outcomes
// from a miss-event overlay computed once for the whole grid (the grid
// varies only timing parameters, so speculation outcomes are shared). -mode
// lockstep produces byte-identical rows through uarch.SimulateMany: the grid
// is chunked into K-sets that advance over the shared trace in lockstep,
// amortizing the trace memory traffic across configurations. -mode sampled
// runs SMARTS-style systematic sampling at every point (detailed phases with
// functional warming in between) and emits CPI with its confidence interval
// instead of the penalty decomposition — a fraction of the wall clock at
// quantified statistical precision. -mode model skips the detailed simulator
// entirely: it evaluates the analytic interval model at every point from the
// same shared overlay plus ILP characteristics profiled once per dispatch
// width — minutes of simulation become seconds of arithmetic, at the model's
// accuracy rather than the simulator's.
//
// Points run in parallel on a fail-soft worker pool: a design point that
// fails (or hangs past -timeout) is reported on stderr while every other
// point's CSV row is still emitted, in grid order, byte-identical to a
// serial run. The exit code is 0 only when every point succeeded. After the
// grid, stderr summarizes which simulator paths ran (generic, packed,
// overlay replay) and any fast-path fallbacks, so a sweep that silently
// degraded to a slower path is visible.
//
// Usage:
//
//	sweep [-bench crafty] [-mode sim|lockstep|sampled|model] [-insts N] [-warmup N] [-j N] [-timeout D] [-keep-going] > sweep.csv
//
// Exit codes: 0 success, 1 runtime error or failed points, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"intervalsim/internal/bpred"
	"intervalsim/internal/cluster"
	"intervalsim/internal/core"
	"intervalsim/internal/experiments"
	"intervalsim/internal/harness"
	"intervalsim/internal/overlay"
	"intervalsim/internal/report"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/version"
	"intervalsim/internal/vpred"
	"intervalsim/internal/workload"
)

func main() { os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr)) }

// testPointHook, when non-nil, mutates each grid point's configuration just
// before simulation. Tests use it to inject deliberately broken design
// points and assert the fail-soft behavior.
var testPointHook func(cfg *uarch.Config)

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "crafty", "benchmark to sweep")
	pred := fs.String("pred", "", "branch predictor preset for every grid point (e.g. tage, 2bc-gskew, gshare; empty = baseline tournament)")
	vpredName := fs.String("vpred", "", "value predictor preset for every grid point (e.g. last-value, stride, fcm; empty = no value speculation)")
	fetchRate := fs.Float64("fetchrate", 0, "fetch rate after low-confidence branches, in (0, 1] (0 = full rate, no throttling)")
	mode := fs.String("mode", "sim", "engine per grid point: sim (cycle-level), lockstep (K configs per trace pass, same rows as sim), sampled (systematic sampling with confidence intervals), or model (analytic interval model)")
	insts := fs.Int("insts", 1_000_000, "dynamic instructions per point")
	warmup := fs.Uint64("warmup", 200_000, "warmup instructions per point (the initial functional skip in sampled mode)")
	lockstepK := fs.Int("lockstep-k", 8, "configurations advanced per lockstep set (-mode lockstep)")
	sampleDetailed := fs.Uint64("sample-detailed", 2_000, "instructions per detailed phase (-mode sampled)")
	sampleSkip := fs.Uint64("sample-skip", 18_000, "instructions functionally warmed between detailed phases (-mode sampled)")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "design points simulated in parallel")
	keepGoing := fs.Bool("keep-going", true, "continue past failed design points (successful rows are always emitted)")
	timeout := fs.Duration("timeout", 0, "wall-clock deadline per design point (0 = none)")
	retries := fs.Int("retries", 0, "retries per transiently failing point")
	endpoints := fs.String("endpoints", "", "comma-separated intervalsimd endpoints: shard the sweep across a fleet instead of simulating in-process (see sweepctl for full control)")
	showVersion := fs.Bool("version", false, "print the build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, "sweep", version.String())
		return 0
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "sweep: unexpected arguments %q\n", fs.Args())
		return 2
	}
	wc, ok := workload.SuiteConfig(*bench)
	if !ok {
		fmt.Fprintf(stderr, "sweep: unknown benchmark %q\n", *bench)
		return 2
	}
	switch *mode {
	case "sim", "model", "lockstep", "sampled":
	default:
		fmt.Fprintf(stderr, "sweep: unknown mode %q (want sim, lockstep, sampled or model)\n", *mode)
		return 2
	}
	if *lockstepK < 1 {
		fmt.Fprintf(stderr, "sweep: -lockstep-k must be at least 1\n")
		return 2
	}
	if *mode == "sampled" && (*sampleDetailed == 0 || *sampleSkip == 0) {
		fmt.Fprintf(stderr, "sweep: -sample-detailed and -sample-skip must be positive in sampled mode\n")
		return 2
	}
	if *pred != "" {
		if _, ok := bpred.Preset(*pred); !ok {
			fmt.Fprintf(stderr, "sweep: unknown predictor preset %q (want one of %s)\n",
				*pred, strings.Join(bpred.PresetNames(), ", "))
			return 2
		}
	}
	if *vpredName != "" {
		if _, ok := vpred.Preset(*vpredName); !ok {
			fmt.Fprintf(stderr, "sweep: unknown value predictor preset %q (want one of %s)\n",
				*vpredName, strings.Join(vpred.PresetNames(), ", "))
			return 2
		}
	}
	if *fetchRate < 0 || *fetchRate > 1 {
		fmt.Fprintf(stderr, "sweep: -fetchrate %v outside (0, 1]\n", *fetchRate)
		return 2
	}
	params := sweepParams{
		mode:           *mode,
		insts:          *insts,
		warmup:         *warmup,
		pred:           *pred,
		vpred:          *vpredName,
		fetchRate:      *fetchRate,
		lockstepK:      *lockstepK,
		sampleDetailed: *sampleDetailed,
		sampleSkip:     *sampleSkip,
	}
	if *endpoints != "" {
		return runCluster(stdout, stderr, *endpoints, *bench, params, *timeout, *retries, *keepGoing)
	}
	err := run(context.Background(), stdout, stderr, wc, params, harness.Options{
		Workers:   *jobs,
		Timeout:   *timeout,
		Retries:   *retries,
		KeepGoing: *keepGoing,
	})
	if err != nil {
		fmt.Fprintln(stderr, "sweep:", err)
		return 1
	}
	return 0
}

// sweepParams bundles the engine selection of one sweep invocation.
type sweepParams struct {
	mode           string
	insts          int
	warmup         uint64
	pred           string  // predictor preset name; "" = baseline tournament
	vpred          string  // value predictor preset name; "" = no value speculation
	fetchRate      float64 // post-low-confidence-branch fetch rate; 0 = full
	lockstepK      int
	sampleDetailed uint64
	sampleSkip     uint64
}

// runCluster delegates the sweep to a fleet of intervalsimd daemons through
// the cluster coordinator. The grid and the CSV output are exactly the
// in-process sweep's; only the execution is distributed, so the bytes on
// stdout must not depend on which path ran.
func runCluster(stdout, stderr io.Writer, endpoints, bench string, p sweepParams, timeout time.Duration, retries int, keepGoing bool) int {
	var eps []string
	for _, ep := range strings.Split(endpoints, ",") {
		if ep = strings.TrimSpace(ep); ep != "" {
			eps = append(eps, ep)
		}
	}
	widths, depths, robs := gridAxes()
	sink := cluster.NewCSVSink(stdout, p.mode, false)
	stats, runErr := cluster.Run(context.Background(), cluster.Options{
		Endpoints:      eps,
		Benches:        []string{bench},
		Widths:         widths,
		Depths:         depths,
		ROBs:           robs,
		Mode:           p.mode,
		Insts:          p.insts,
		Warmup:         p.warmup,
		Pred:           p.pred,
		VPred:          p.vpred,
		FetchRate:      p.fetchRate,
		LockstepK:      p.lockstepK,
		SampleDetailed: p.sampleDetailed,
		SampleSkip:     p.sampleSkip,
		PointTimeout:   timeout,
		Retries:        retries,
		KeepGoing:      keepGoing,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	}, sink.Emit)
	if stats != nil {
		if err := sink.Finish(); err != nil && runErr == nil {
			runErr = err
		}
		stats.FprintSummary(stderr)
	}
	if runErr != nil {
		fmt.Fprintln(stderr, "sweep:", runErr)
		return 1
	}
	return 0
}

// gridAxes returns the swept (width, depth, rob) axes.
func gridAxes() (widths, depths, robs []int) {
	return []int{2, 4, 8}, []int{3, 7, 11}, []int{64, 128, 256}
}

// grid enumerates the design points in canonical (width, depth, rob) order —
// the order CSV rows are emitted in, regardless of execution schedule.
func grid() []uarch.Config {
	widths, depths, robs := gridAxes()
	var out []uarch.Config
	for _, width := range widths {
		for _, depth := range depths {
			for _, rob := range robs {
				cfg := experiments.Point(width, depth, rob)
				if testPointHook != nil {
					testPointHook(&cfg)
				}
				out = append(out, cfg)
			}
		}
	}
	return out
}

// pathTally counts which simulator execution paths the grid actually took,
// and any fast-path fallbacks, across concurrent points.
type pathTally struct {
	mu        sync.Mutex
	paths     map[string]int
	fallbacks map[string]int
}

func (pt *pathTally) note(res *uarch.Result) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.paths == nil {
		pt.paths = make(map[string]int)
		pt.fallbacks = make(map[string]int)
	}
	pt.paths[res.Path]++
	if res.Fallback != "" {
		pt.fallbacks[res.Fallback]++
	}
}

func (pt *pathTally) summarize(w io.Writer) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if len(pt.paths) == 0 {
		return
	}
	var parts []string
	for p, n := range pt.paths {
		parts = append(parts, fmt.Sprintf("%d×%s", n, p))
	}
	sort.Strings(parts)
	fmt.Fprintf(w, "sweep: simulator paths: %s\n", strings.Join(parts, ", "))
	var reasons []string
	for r := range pt.fallbacks {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(w, "sweep: %d× fallback: %s\n", pt.fallbacks[r], r)
	}
}

// simHeaders is the CSV schema shared by sim and lockstep modes: lockstep
// rows must be byte-identical to sim rows, starting with the header.
func simHeaders() []string {
	return []string{"width", "depth", "rob", "ipc", "avg_penalty",
		"penalty_frontend", "penalty_drain", "penalty_fu", "penalty_shortd", "penalty_longd"}
}

func run(ctx context.Context, stdout, stderr io.Writer, wc workload.Config, p sweepParams, hopts harness.Options) error {
	// Pack the trace once: every grid point reuses the struct-of-arrays
	// layout and its precomputed dependence metadata (the simulator's
	// index-based fast path), instead of re-decoding per configuration.
	soa, err := trace.PackReader(workload.MustNew(wc, p.insts))
	if err != nil {
		return err
	}

	// The grid varies only timing parameters — every point shares one
	// predictor (the -pred preset, or the baseline tournament) and cache
	// geometry — so one miss-event overlay serves the whole sweep. A point
	// whose speculation configuration diverges (e.g. via testPointHook) is
	// caught by the simulator's fingerprint check and falls back to live
	// simulation, which the path summary below makes visible. Sampled runs
	// bypass replay by design (precomputed dependences do not apply), so
	// that mode never computes the overlay at all.
	base := uarch.Baseline()
	if p.pred != "" {
		preset, ok := bpred.Preset(p.pred)
		if !ok {
			return fmt.Errorf("unknown predictor preset %q", p.pred)
		}
		base.Pred = preset
	}
	if p.vpred != "" {
		preset, ok := vpred.Preset(p.vpred)
		if !ok {
			return fmt.Errorf("unknown value predictor preset %q", p.vpred)
		}
		// The preset carries predictor geometry only; the value stream is the
		// workload's, so the same preset means the same run everywhere.
		preset.Stream = wc.ValueStream()
		base.VPred = &preset
	}
	base.FetchRate = p.fetchRate
	var ov *overlay.Overlay
	if p.mode != "sampled" {
		if ov, err = overlay.Shared.GetSpec(soa, base.Pred, base.Mem, base.VPred); err != nil {
			return err
		}
	}

	// Jobs yield whole CSV row groups: one row for per-point engines, K rows
	// for a lockstep set.
	points := grid()
	for i := range points {
		points[i].Pred = base.Pred
		points[i].VPred = base.VPred
		points[i].FetchRate = base.FetchRate
	}
	var jobs []harness.Job[[][]string]
	var headers []string
	var tally pathTally

	switch p.mode {
	case "sim":
		headers = simHeaders()
		tr := soa.Unpack() // AoS view for the decomposer
		for _, cfg := range points {
			cfg := cfg
			jobs = append(jobs, harness.Job[[][]string]{
				Name: cfg.Name,
				Run: func(ctx context.Context) ([][]string, error) {
					row, err := simPoint(ctx, soa, tr, ov, cfg, p.warmup, &tally)
					if err != nil {
						return nil, err
					}
					return [][]string{row}, nil
				},
			})
		}
	case "lockstep":
		headers = simHeaders()
		tr := soa.Unpack()
		for start := 0; start < len(points); start += p.lockstepK {
			set := points[start:min(start+p.lockstepK, len(points))]
			name := set[0].Name
			if len(set) > 1 {
				name = fmt.Sprintf("lockstep[%s..%s]", set[0].Name, set[len(set)-1].Name)
			}
			jobs = append(jobs, harness.Job[[][]string]{
				Name: name,
				Run: func(ctx context.Context) ([][]string, error) {
					return lockstepSet(ctx, soa, tr, ov, set, p.warmup, &tally)
				},
			})
		}
	case "sampled":
		headers = []string{"width", "depth", "rob", "ipc",
			"cpi", "cpi_lo", "cpi_hi", "cpi_rel_err", "units"}
		for _, cfg := range points {
			cfg := cfg
			jobs = append(jobs, harness.Job[[][]string]{
				Name: cfg.Name,
				Run: func(ctx context.Context) ([][]string, error) {
					row, err := sampledPoint(ctx, soa, cfg, p, &tally)
					if err != nil {
						return nil, err
					}
					return [][]string{row}, nil
				},
			})
		}
	case "model":
		headers = []string{"width", "depth", "rob", "ipc", "avg_penalty",
			"cpi_base", "cpi_bpred", "cpi_icache", "cpi_longd"}
		_, _, robs := gridAxes()
		set, err := core.NewModelSet(soa, ov, base, robs[len(robs)-1], p.warmup, p.insts)
		if err != nil {
			return err
		}
		for _, cfg := range points {
			cfg := cfg
			jobs = append(jobs, harness.Job[[][]string]{
				Name: cfg.Name,
				Run: func(ctx context.Context) ([][]string, error) {
					row, err := modelPoint(set, cfg)
					if err != nil {
						return nil, err
					}
					return [][]string{row}, nil
				},
			})
		}
	default:
		return fmt.Errorf("unknown mode %q", p.mode)
	}

	results, runErr := harness.Run(ctx, jobs, hopts)

	// Fail-soft emission: every completed row group, in grid order.
	t := report.New("", headers...)
	for _, r := range results {
		if r.Err == nil {
			for _, row := range r.Value {
				t.AddRow(row...)
			}
		}
	}
	if err := t.FprintCSV(stdout); err != nil {
		return err
	}
	harness.Summarize(stderr, results)
	tally.summarize(stderr)
	if hits, misses := overlay.Shared.Stats(); hits+misses > 0 {
		fmt.Fprintf(stderr, "sweep: overlay cache: %d hits, %d misses\n", hits, misses)
	}
	return runErr
}

// simPoint simulates one design point and renders its CSV row. Each point
// gets a fresh reader over the shared packed trace; the SoA itself is
// read-only during simulation, so concurrent points are safe.
func simPoint(ctx context.Context, soa *trace.SoA, tr *trace.Trace, ov *overlay.Overlay, cfg uarch.Config, warmup uint64, tally *pathTally) ([]string, error) {
	res, err := uarch.RunContext(ctx, soa.Reader(), cfg, uarch.Options{
		RecordMispredicts: true,
		RecordLoadLevels:  true,
		WarmupInsts:       warmup,
		Overlay:           ov,
	})
	if err != nil {
		// Invalid configurations and watchdog trips are deterministic:
		// re-running them wastes the retry budget.
		if errors.Is(err, uarch.ErrBadConfig) || errors.Is(err, uarch.ErrWatchdog) {
			return nil, harness.Permanent(err)
		}
		return nil, err
	}
	tally.note(res)
	return simRow(tr, cfg, res)
}

// simRow renders the sim/lockstep CSV row for one simulated design point:
// IPC plus the mean misprediction-penalty decomposition.
func simRow(tr *trace.Trace, cfg uarch.Config, res *uarch.Result) ([]string, error) {
	dec, err := core.NewDecomposer(tr, res)
	if err != nil {
		return nil, harness.Permanent(err)
	}
	m := core.Mean(dec.DecomposeAll())
	return []string{
		fmt.Sprintf("%d", cfg.DispatchWidth), fmt.Sprintf("%d", cfg.FrontendDepth), fmt.Sprintf("%d", cfg.ROBSize),
		fmt.Sprintf("%.3f", res.IPC()),
		fmt.Sprintf("%.2f", m.Total),
		fmt.Sprintf("%.2f", m.Frontend),
		fmt.Sprintf("%.2f", m.BaseILP),
		fmt.Sprintf("%.2f", m.FULatency),
		fmt.Sprintf("%.2f", m.ShortDMiss),
		fmt.Sprintf("%.2f", m.LongDMiss),
	}, nil
}

// lockstepSet simulates one K-set of design points in lockstep over the
// shared trace and renders their CSV rows — the same rows, byte for byte,
// that simPoint would produce for each member. Per-config path/fallback
// provenance is tallied per result, not once per batch. A failure of any
// member (bad config, watchdog) cancels and fails the whole set, matching
// SimulateMany's contract.
func lockstepSet(ctx context.Context, soa *trace.SoA, tr *trace.Trace, ov *overlay.Overlay, cfgs []uarch.Config, warmup uint64, tally *pathTally) ([][]string, error) {
	results, err := uarch.SimulateMany(ctx, soa, ov, cfgs, uarch.Options{
		RecordMispredicts: true,
		RecordLoadLevels:  true,
		WarmupInsts:       warmup,
	})
	if err != nil {
		if errors.Is(err, uarch.ErrBadConfig) || errors.Is(err, uarch.ErrWatchdog) {
			return nil, harness.Permanent(err)
		}
		return nil, err
	}
	rows := make([][]string, len(results))
	for i, res := range results {
		tally.note(res)
		row, err := simRow(tr, cfgs[i], res)
		if err != nil {
			return nil, err
		}
		rows[i] = row
	}
	return rows, nil
}

// sampledPoint runs one design point under systematic sampling and renders
// the CPI confidence-interval row. The warmup budget becomes the initial
// functional skip; no overlay is involved (sampled runs track dependences
// live by design).
func sampledPoint(ctx context.Context, soa *trace.SoA, cfg uarch.Config, p sweepParams, tally *pathTally) ([]string, error) {
	res, err := uarch.RunContext(ctx, soa.Reader(), cfg, uarch.Options{
		SampleStartSkip: p.warmup,
		SampleDetailed:  p.sampleDetailed,
		SampleSkip:      p.sampleSkip,
	})
	if err != nil {
		if errors.Is(err, uarch.ErrBadConfig) || errors.Is(err, uarch.ErrWatchdog) {
			return nil, harness.Permanent(err)
		}
		return nil, err
	}
	tally.note(res)
	st := res.Sample
	if st == nil {
		return nil, harness.Permanent(fmt.Errorf("%s: sampled run carries no sample statistics", cfg.Name))
	}
	return []string{
		fmt.Sprintf("%d", cfg.DispatchWidth), fmt.Sprintf("%d", cfg.FrontendDepth), fmt.Sprintf("%d", cfg.ROBSize),
		fmt.Sprintf("%.3f", res.IPC()),
		fmt.Sprintf("%.4f", st.CPI.Mean),
		fmt.Sprintf("%.4f", st.CPI.Lower),
		fmt.Sprintf("%.4f", st.CPI.Upper),
		fmt.Sprintf("%.4f", st.CPI.RelErr),
		fmt.Sprintf("%d", st.Units),
	}, nil
}

// modelPoint evaluates the analytic interval model at one design point: the
// shared-characteristic model plus the overlay-derived functional profile,
// no cycle-level simulation. Model errors are deterministic, so they never
// consume the retry budget.
func modelPoint(set *core.ModelSet, cfg uarch.Config) ([]string, error) {
	m, prof, err := set.For(cfg)
	if err != nil {
		return nil, harness.Permanent(err)
	}
	pred, err := m.PredictCPI(prof)
	if err != nil {
		return nil, harness.Permanent(err)
	}
	ivs, err := core.Segment(prof.Events, prof.Insts)
	if err != nil {
		return nil, harness.Permanent(err)
	}
	var pen, n float64
	for _, iv := range ivs {
		if !iv.Final && iv.Kind == uarch.EvBranchMispredict {
			pen += m.MispredictPenalty(iv.Len() - 1)
			n++
		}
	}
	if n > 0 {
		pen /= n
	}
	insts := float64(pred.Insts)
	ipc := 0.0
	if cpi := pred.CPI(); cpi > 0 {
		ipc = 1 / cpi
	}
	return []string{
		fmt.Sprintf("%d", cfg.DispatchWidth), fmt.Sprintf("%d", cfg.FrontendDepth), fmt.Sprintf("%d", cfg.ROBSize),
		fmt.Sprintf("%.3f", ipc),
		fmt.Sprintf("%.2f", pen),
		fmt.Sprintf("%.3f", pred.Base/insts),
		fmt.Sprintf("%.3f", pred.Bpred/insts),
		fmt.Sprintf("%.3f", pred.ICache/insts),
		fmt.Sprintf("%.3f", pred.LongData/insts),
	}, nil
}
