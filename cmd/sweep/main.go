// Command sweep explores the design space: it runs one benchmark over a
// grid of (dispatch width, frontend depth, ROB size) points and emits a CSV
// of IPC and misprediction-penalty statistics, ready for plotting. This is
// the "what if" harness interval analysis exists to support: the penalty
// columns show how the five contributors shift across the design space.
//
// Points run in parallel on a fail-soft worker pool: a design point that
// fails (or hangs past -timeout) is reported on stderr while every other
// point's CSV row is still emitted, in grid order, byte-identical to a
// serial run. The exit code is 0 only when every point succeeded.
//
// Usage:
//
//	sweep [-bench crafty] [-insts N] [-warmup N] [-j N] [-timeout D] [-keep-going] > sweep.csv
//
// Exit codes: 0 success, 1 runtime error or failed points, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"intervalsim/internal/core"
	"intervalsim/internal/harness"
	"intervalsim/internal/report"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

func main() { os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr)) }

// testPointHook, when non-nil, mutates each grid point's configuration just
// before simulation. Tests use it to inject deliberately broken design
// points and assert the fail-soft behavior.
var testPointHook func(cfg *uarch.Config)

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "crafty", "benchmark to sweep")
	insts := fs.Int("insts", 1_000_000, "dynamic instructions per point")
	warmup := fs.Uint64("warmup", 200_000, "warmup instructions per point")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "design points simulated in parallel")
	keepGoing := fs.Bool("keep-going", true, "continue past failed design points (successful rows are always emitted)")
	timeout := fs.Duration("timeout", 0, "wall-clock deadline per design point (0 = none)")
	retries := fs.Int("retries", 0, "retries per transiently failing point")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "sweep: unexpected arguments %q\n", fs.Args())
		return 2
	}
	wc, ok := workload.SuiteConfig(*bench)
	if !ok {
		fmt.Fprintf(stderr, "sweep: unknown benchmark %q\n", *bench)
		return 2
	}
	err := run(context.Background(), stdout, stderr, wc, *insts, *warmup, harness.Options{
		Workers:   *jobs,
		Timeout:   *timeout,
		Retries:   *retries,
		KeepGoing: *keepGoing,
	})
	if err != nil {
		fmt.Fprintln(stderr, "sweep:", err)
		return 1
	}
	return 0
}

// gridAxes returns the swept (width, depth, rob) axes.
func gridAxes() (widths, depths, robs []int) {
	return []int{2, 4, 8}, []int{3, 7, 11}, []int{64, 128, 256}
}

// grid enumerates the design points in canonical (width, depth, rob) order —
// the order CSV rows are emitted in, regardless of execution schedule.
func grid() []uarch.Config {
	widths, depths, robs := gridAxes()
	var out []uarch.Config
	for _, width := range widths {
		for _, depth := range depths {
			for _, rob := range robs {
				cfg := point(width, depth, rob)
				if testPointHook != nil {
					testPointHook(&cfg)
				}
				out = append(out, cfg)
			}
		}
	}
	return out
}

func run(ctx context.Context, stdout, stderr io.Writer, wc workload.Config, insts int, warmup uint64, hopts harness.Options) error {
	// Pack the trace once: every grid point reuses the struct-of-arrays
	// layout and its precomputed dependence metadata (the simulator's
	// index-based fast path), instead of re-decoding per configuration.
	soa, err := trace.PackReader(workload.MustNew(wc, insts))
	if err != nil {
		return err
	}
	tr := soa.Unpack() // AoS view for the decomposer

	points := grid()
	jobs := make([]harness.Job[[]string], len(points))
	for i, cfg := range points {
		cfg := cfg
		jobs[i] = harness.Job[[]string]{
			Name: cfg.Name,
			Run: func(ctx context.Context) ([]string, error) {
				return simPoint(ctx, soa, tr, cfg, warmup)
			},
		}
	}
	results, runErr := harness.Run(ctx, jobs, hopts)

	// Fail-soft emission: every completed point's row, in grid order.
	t := report.New("", "width", "depth", "rob", "ipc", "avg_penalty",
		"penalty_frontend", "penalty_drain", "penalty_fu", "penalty_shortd", "penalty_longd")
	for _, r := range results {
		if r.Err == nil {
			t.AddRow(r.Value...)
		}
	}
	if err := t.FprintCSV(stdout); err != nil {
		return err
	}
	harness.Summarize(stderr, results)
	return runErr
}

// simPoint simulates one design point and renders its CSV row. Each point
// gets a fresh reader over the shared packed trace; the SoA itself is
// read-only during simulation, so concurrent points are safe.
func simPoint(ctx context.Context, soa *trace.SoA, tr *trace.Trace, cfg uarch.Config, warmup uint64) ([]string, error) {
	res, err := uarch.RunContext(ctx, soa.Reader(), cfg, uarch.Options{
		RecordMispredicts: true,
		RecordLoadLevels:  true,
		WarmupInsts:       warmup,
	})
	if err != nil {
		// Invalid configurations and watchdog trips are deterministic:
		// re-running them wastes the retry budget.
		if errors.Is(err, uarch.ErrBadConfig) || errors.Is(err, uarch.ErrWatchdog) {
			return nil, harness.Permanent(err)
		}
		return nil, err
	}
	dec, err := core.NewDecomposer(tr, res)
	if err != nil {
		return nil, harness.Permanent(err)
	}
	m := core.Mean(dec.DecomposeAll())
	return []string{
		fmt.Sprintf("%d", cfg.DispatchWidth), fmt.Sprintf("%d", cfg.FrontendDepth), fmt.Sprintf("%d", cfg.ROBSize),
		fmt.Sprintf("%.3f", res.IPC()),
		fmt.Sprintf("%.2f", m.Total),
		fmt.Sprintf("%.2f", m.Frontend),
		fmt.Sprintf("%.2f", m.BaseILP),
		fmt.Sprintf("%.2f", m.FULatency),
		fmt.Sprintf("%.2f", m.ShortDMiss),
		fmt.Sprintf("%.2f", m.LongDMiss),
	}, nil
}

// point builds a machine at one design point, scaling FU counts with width.
func point(width, depth, rob int) uarch.Config {
	cfg := uarch.Baseline()
	cfg.Name = fmt.Sprintf("w%d-d%d-r%d", width, depth, rob)
	cfg.FetchWidth = width
	cfg.DispatchWidth = width
	cfg.IssueWidth = width
	cfg.CommitWidth = width
	cfg.FrontendDepth = depth
	cfg.ROBSize = rob
	cfg.IQSize = rob / 2
	cfg.FU.IntALU.Count = width
	if width > 4 {
		cfg.FU.MemPort.Count = 4
		cfg.FU.IntMul.Count = 4
	}
	return cfg
}
