// Command sweep explores the design space: it runs one benchmark over a
// grid of (dispatch width, frontend depth, ROB size) points and emits a CSV
// of IPC and misprediction-penalty statistics, ready for plotting. This is
// the "what if" harness interval analysis exists to support: the penalty
// columns show how the five contributors shift across the design space.
//
// Two engines are available. The default (-mode sim) runs the cycle-level
// simulator at every point, replaying branch-predictor and I-cache outcomes
// from a miss-event overlay computed once for the whole grid (the grid
// varies only timing parameters, so speculation outcomes are shared). -mode
// model skips the detailed simulator entirely: it evaluates the analytic
// interval model at every point from the same shared overlay plus ILP
// characteristics profiled once per dispatch width — minutes of simulation
// become seconds of arithmetic, at the model's accuracy rather than the
// simulator's.
//
// Points run in parallel on a fail-soft worker pool: a design point that
// fails (or hangs past -timeout) is reported on stderr while every other
// point's CSV row is still emitted, in grid order, byte-identical to a
// serial run. The exit code is 0 only when every point succeeded. After the
// grid, stderr summarizes which simulator paths ran (generic, packed,
// overlay replay) and any fast-path fallbacks, so a sweep that silently
// degraded to a slower path is visible.
//
// Usage:
//
//	sweep [-bench crafty] [-mode sim|model] [-insts N] [-warmup N] [-j N] [-timeout D] [-keep-going] > sweep.csv
//
// Exit codes: 0 success, 1 runtime error or failed points, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"intervalsim/internal/cluster"
	"intervalsim/internal/core"
	"intervalsim/internal/experiments"
	"intervalsim/internal/harness"
	"intervalsim/internal/overlay"
	"intervalsim/internal/report"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/version"
	"intervalsim/internal/workload"
)

func main() { os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr)) }

// testPointHook, when non-nil, mutates each grid point's configuration just
// before simulation. Tests use it to inject deliberately broken design
// points and assert the fail-soft behavior.
var testPointHook func(cfg *uarch.Config)

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "crafty", "benchmark to sweep")
	mode := fs.String("mode", "sim", "engine per grid point: sim (cycle-level) or model (analytic interval model)")
	insts := fs.Int("insts", 1_000_000, "dynamic instructions per point")
	warmup := fs.Uint64("warmup", 200_000, "warmup instructions per point")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "design points simulated in parallel")
	keepGoing := fs.Bool("keep-going", true, "continue past failed design points (successful rows are always emitted)")
	timeout := fs.Duration("timeout", 0, "wall-clock deadline per design point (0 = none)")
	retries := fs.Int("retries", 0, "retries per transiently failing point")
	endpoints := fs.String("endpoints", "", "comma-separated intervalsimd endpoints: shard the sweep across a fleet instead of simulating in-process (see sweepctl for full control)")
	showVersion := fs.Bool("version", false, "print the build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, "sweep", version.String())
		return 0
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "sweep: unexpected arguments %q\n", fs.Args())
		return 2
	}
	wc, ok := workload.SuiteConfig(*bench)
	if !ok {
		fmt.Fprintf(stderr, "sweep: unknown benchmark %q\n", *bench)
		return 2
	}
	if *mode != "sim" && *mode != "model" {
		fmt.Fprintf(stderr, "sweep: unknown mode %q (want sim or model)\n", *mode)
		return 2
	}
	if *endpoints != "" {
		return runCluster(stdout, stderr, *endpoints, *bench, *mode, *insts, *warmup, *timeout, *retries, *keepGoing)
	}
	err := run(context.Background(), stdout, stderr, wc, *mode, *insts, *warmup, harness.Options{
		Workers:   *jobs,
		Timeout:   *timeout,
		Retries:   *retries,
		KeepGoing: *keepGoing,
	})
	if err != nil {
		fmt.Fprintln(stderr, "sweep:", err)
		return 1
	}
	return 0
}

// runCluster delegates the sweep to a fleet of intervalsimd daemons through
// the cluster coordinator. The grid and the CSV output are exactly the
// in-process sweep's; only the execution is distributed, so the bytes on
// stdout must not depend on which path ran.
func runCluster(stdout, stderr io.Writer, endpoints, bench, mode string, insts int, warmup uint64, timeout time.Duration, retries int, keepGoing bool) int {
	var eps []string
	for _, ep := range strings.Split(endpoints, ",") {
		if ep = strings.TrimSpace(ep); ep != "" {
			eps = append(eps, ep)
		}
	}
	widths, depths, robs := gridAxes()
	sink := cluster.NewCSVSink(stdout, mode, false)
	stats, runErr := cluster.Run(context.Background(), cluster.Options{
		Endpoints:    eps,
		Benches:      []string{bench},
		Widths:       widths,
		Depths:       depths,
		ROBs:         robs,
		Mode:         mode,
		Insts:        insts,
		Warmup:       warmup,
		PointTimeout: timeout,
		Retries:      retries,
		KeepGoing:    keepGoing,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	}, sink.Emit)
	if stats != nil {
		if err := sink.Finish(); err != nil && runErr == nil {
			runErr = err
		}
		stats.FprintSummary(stderr)
	}
	if runErr != nil {
		fmt.Fprintln(stderr, "sweep:", runErr)
		return 1
	}
	return 0
}

// gridAxes returns the swept (width, depth, rob) axes.
func gridAxes() (widths, depths, robs []int) {
	return []int{2, 4, 8}, []int{3, 7, 11}, []int{64, 128, 256}
}

// grid enumerates the design points in canonical (width, depth, rob) order —
// the order CSV rows are emitted in, regardless of execution schedule.
func grid() []uarch.Config {
	widths, depths, robs := gridAxes()
	var out []uarch.Config
	for _, width := range widths {
		for _, depth := range depths {
			for _, rob := range robs {
				cfg := experiments.Point(width, depth, rob)
				if testPointHook != nil {
					testPointHook(&cfg)
				}
				out = append(out, cfg)
			}
		}
	}
	return out
}

// pathTally counts which simulator execution paths the grid actually took,
// and any fast-path fallbacks, across concurrent points.
type pathTally struct {
	mu        sync.Mutex
	paths     map[string]int
	fallbacks map[string]int
}

func (pt *pathTally) note(res *uarch.Result) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.paths == nil {
		pt.paths = make(map[string]int)
		pt.fallbacks = make(map[string]int)
	}
	pt.paths[res.Path]++
	if res.Fallback != "" {
		pt.fallbacks[res.Fallback]++
	}
}

func (pt *pathTally) summarize(w io.Writer) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if len(pt.paths) == 0 {
		return
	}
	var parts []string
	for p, n := range pt.paths {
		parts = append(parts, fmt.Sprintf("%d×%s", n, p))
	}
	sort.Strings(parts)
	fmt.Fprintf(w, "sweep: simulator paths: %s\n", strings.Join(parts, ", "))
	var reasons []string
	for r := range pt.fallbacks {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(w, "sweep: %d× fallback: %s\n", pt.fallbacks[r], r)
	}
}

func run(ctx context.Context, stdout, stderr io.Writer, wc workload.Config, mode string, insts int, warmup uint64, hopts harness.Options) error {
	// Pack the trace once: every grid point reuses the struct-of-arrays
	// layout and its precomputed dependence metadata (the simulator's
	// index-based fast path), instead of re-decoding per configuration.
	soa, err := trace.PackReader(workload.MustNew(wc, insts))
	if err != nil {
		return err
	}

	// The grid varies only timing parameters — every point shares the
	// baseline predictor and cache geometry — so one miss-event overlay
	// serves the whole sweep. A point whose speculation configuration
	// diverges (e.g. via testPointHook) is caught by the simulator's
	// fingerprint check and falls back to live simulation, which the path
	// summary below makes visible.
	base := uarch.Baseline()
	ov, err := overlay.Shared.Get(soa, base.Pred, base.Mem)
	if err != nil {
		return err
	}

	points := grid()
	jobs := make([]harness.Job[[]string], len(points))
	var headers []string
	var tally pathTally

	switch mode {
	case "sim":
		headers = []string{"width", "depth", "rob", "ipc", "avg_penalty",
			"penalty_frontend", "penalty_drain", "penalty_fu", "penalty_shortd", "penalty_longd"}
		tr := soa.Unpack() // AoS view for the decomposer
		for i, cfg := range points {
			cfg := cfg
			jobs[i] = harness.Job[[]string]{
				Name: cfg.Name,
				Run: func(ctx context.Context) ([]string, error) {
					return simPoint(ctx, soa, tr, ov, cfg, warmup, &tally)
				},
			}
		}
	case "model":
		headers = []string{"width", "depth", "rob", "ipc", "avg_penalty",
			"cpi_base", "cpi_bpred", "cpi_icache", "cpi_longd"}
		_, _, robs := gridAxes()
		set, err := core.NewModelSet(soa, ov, base, robs[len(robs)-1], warmup, insts)
		if err != nil {
			return err
		}
		for i, cfg := range points {
			cfg := cfg
			jobs[i] = harness.Job[[]string]{
				Name: cfg.Name,
				Run: func(ctx context.Context) ([]string, error) {
					return modelPoint(set, cfg)
				},
			}
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	results, runErr := harness.Run(ctx, jobs, hopts)

	// Fail-soft emission: every completed point's row, in grid order.
	t := report.New("", headers...)
	for _, r := range results {
		if r.Err == nil {
			t.AddRow(r.Value...)
		}
	}
	if err := t.FprintCSV(stdout); err != nil {
		return err
	}
	harness.Summarize(stderr, results)
	tally.summarize(stderr)
	if hits, misses := overlay.Shared.Stats(); hits+misses > 0 {
		fmt.Fprintf(stderr, "sweep: overlay cache: %d hits, %d misses\n", hits, misses)
	}
	return runErr
}

// simPoint simulates one design point and renders its CSV row. Each point
// gets a fresh reader over the shared packed trace; the SoA itself is
// read-only during simulation, so concurrent points are safe.
func simPoint(ctx context.Context, soa *trace.SoA, tr *trace.Trace, ov *overlay.Overlay, cfg uarch.Config, warmup uint64, tally *pathTally) ([]string, error) {
	res, err := uarch.RunContext(ctx, soa.Reader(), cfg, uarch.Options{
		RecordMispredicts: true,
		RecordLoadLevels:  true,
		WarmupInsts:       warmup,
		Overlay:           ov,
	})
	if err != nil {
		// Invalid configurations and watchdog trips are deterministic:
		// re-running them wastes the retry budget.
		if errors.Is(err, uarch.ErrBadConfig) || errors.Is(err, uarch.ErrWatchdog) {
			return nil, harness.Permanent(err)
		}
		return nil, err
	}
	tally.note(res)
	dec, err := core.NewDecomposer(tr, res)
	if err != nil {
		return nil, harness.Permanent(err)
	}
	m := core.Mean(dec.DecomposeAll())
	return []string{
		fmt.Sprintf("%d", cfg.DispatchWidth), fmt.Sprintf("%d", cfg.FrontendDepth), fmt.Sprintf("%d", cfg.ROBSize),
		fmt.Sprintf("%.3f", res.IPC()),
		fmt.Sprintf("%.2f", m.Total),
		fmt.Sprintf("%.2f", m.Frontend),
		fmt.Sprintf("%.2f", m.BaseILP),
		fmt.Sprintf("%.2f", m.FULatency),
		fmt.Sprintf("%.2f", m.ShortDMiss),
		fmt.Sprintf("%.2f", m.LongDMiss),
	}, nil
}

// modelPoint evaluates the analytic interval model at one design point: the
// shared-characteristic model plus the overlay-derived functional profile,
// no cycle-level simulation. Model errors are deterministic, so they never
// consume the retry budget.
func modelPoint(set *core.ModelSet, cfg uarch.Config) ([]string, error) {
	m, prof, err := set.For(cfg)
	if err != nil {
		return nil, harness.Permanent(err)
	}
	pred, err := m.PredictCPI(prof)
	if err != nil {
		return nil, harness.Permanent(err)
	}
	ivs, err := core.Segment(prof.Events, prof.Insts)
	if err != nil {
		return nil, harness.Permanent(err)
	}
	var pen, n float64
	for _, iv := range ivs {
		if !iv.Final && iv.Kind == uarch.EvBranchMispredict {
			pen += m.MispredictPenalty(iv.Len() - 1)
			n++
		}
	}
	if n > 0 {
		pen /= n
	}
	insts := float64(pred.Insts)
	ipc := 0.0
	if cpi := pred.CPI(); cpi > 0 {
		ipc = 1 / cpi
	}
	return []string{
		fmt.Sprintf("%d", cfg.DispatchWidth), fmt.Sprintf("%d", cfg.FrontendDepth), fmt.Sprintf("%d", cfg.ROBSize),
		fmt.Sprintf("%.3f", ipc),
		fmt.Sprintf("%.2f", pen),
		fmt.Sprintf("%.3f", pred.Base/insts),
		fmt.Sprintf("%.3f", pred.Bpred/insts),
		fmt.Sprintf("%.3f", pred.ICache/insts),
		fmt.Sprintf("%.3f", pred.LongData/insts),
	}, nil
}
