// Command sweep explores the design space: it runs one benchmark over a
// grid of (dispatch width, frontend depth, ROB size) points and emits a CSV
// of IPC and misprediction-penalty statistics, ready for plotting. This is
// the "what if" harness interval analysis exists to support: the penalty
// columns show how the five contributors shift across the design space.
//
// Usage:
//
//	sweep [-bench crafty] [-insts N] [-warmup N] > sweep.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"intervalsim/internal/core"
	"intervalsim/internal/report"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

func main() {
	bench := flag.String("bench", "crafty", "benchmark to sweep")
	insts := flag.Int("insts", 1_000_000, "dynamic instructions per point")
	warmup := flag.Uint64("warmup", 200_000, "warmup instructions per point")
	flag.Parse()

	wc, ok := workload.SuiteConfig(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "sweep: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	if err := run(wc, *insts, *warmup); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(wc workload.Config, insts int, warmup uint64) error {
	tr, err := trace.ReadAll(workload.MustNew(wc, insts))
	if err != nil {
		return err
	}

	t := report.New("", "width", "depth", "rob", "ipc", "avg_penalty",
		"penalty_frontend", "penalty_drain", "penalty_fu", "penalty_shortd", "penalty_longd")
	for _, width := range []int{2, 4, 8} {
		for _, depth := range []int{3, 7, 11} {
			for _, rob := range []int{64, 128, 256} {
				cfg := point(width, depth, rob)
				res, err := uarch.Run(tr.Reader(), cfg, uarch.Options{
					RecordMispredicts: true,
					RecordLoadLevels:  true,
					WarmupInsts:       warmup,
				})
				if err != nil {
					return err
				}
				dec, err := core.NewDecomposer(tr, res)
				if err != nil {
					return err
				}
				m := core.Mean(dec.DecomposeAll())
				t.AddRow(
					fmt.Sprintf("%d", width), fmt.Sprintf("%d", depth), fmt.Sprintf("%d", rob),
					fmt.Sprintf("%.3f", res.IPC()),
					fmt.Sprintf("%.2f", m.Total),
					fmt.Sprintf("%.2f", m.Frontend),
					fmt.Sprintf("%.2f", m.BaseILP),
					fmt.Sprintf("%.2f", m.FULatency),
					fmt.Sprintf("%.2f", m.ShortDMiss),
					fmt.Sprintf("%.2f", m.LongDMiss),
				)
			}
		}
	}
	return t.FprintCSV(os.Stdout)
}

// point builds a machine at one design point, scaling FU counts with width.
func point(width, depth, rob int) uarch.Config {
	cfg := uarch.Baseline()
	cfg.Name = fmt.Sprintf("w%d-d%d-r%d", width, depth, rob)
	cfg.FetchWidth = width
	cfg.DispatchWidth = width
	cfg.IssueWidth = width
	cfg.CommitWidth = width
	cfg.FrontendDepth = depth
	cfg.ROBSize = rob
	cfg.IQSize = rob / 2
	cfg.FU.IntALU.Count = width
	if width > 4 {
		cfg.FU.MemPort.Count = 4
		cfg.FU.IntMul.Count = 4
	}
	return cfg
}
