package main

import (
	"strings"
	"testing"

	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

func TestPointConfigsValid(t *testing.T) {
	for _, width := range []int{2, 4, 8} {
		for _, depth := range []int{3, 7, 11} {
			for _, rob := range []int{64, 128, 256} {
				cfg := point(width, depth, rob)
				if err := cfg.Validate(); err != nil {
					t.Errorf("point(%d,%d,%d): %v", width, depth, rob, err)
				}
				if cfg.DispatchWidth != width || cfg.FrontendDepth != depth || cfg.ROBSize != rob {
					t.Errorf("point(%d,%d,%d) mis-set: %+v", width, depth, rob, cfg)
				}
			}
		}
	}
}

func TestSweepRowShape(t *testing.T) {
	// One tiny point through the same plumbing run() uses: the decomposition
	// columns must be available at every grid point.
	wc, _ := workload.SuiteConfig("gzip")
	cfg := point(2, 3, 64)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = wc
	if !strings.Contains(cfg.Name, "w2-d3-r64") {
		t.Errorf("point name = %q", cfg.Name)
	}
	if cfg.FU.IntALU.Count != 2 {
		t.Errorf("ALU count not scaled with width: %d", cfg.FU.IntALU.Count)
	}
	wide := point(8, 3, 64)
	if wide.FU.MemPort.Count != 4 || wide.FU.IntMul.Count != 4 {
		t.Errorf("wide point FU scaling wrong: %+v", wide.FU)
	}
	if uarch.Baseline().FU.MemPort.Count != 2 {
		t.Error("baseline mutated by point()")
	}
}
