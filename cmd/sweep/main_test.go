package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"intervalsim/internal/experiments"
	"intervalsim/internal/overlay"
	"intervalsim/internal/service"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

func TestPointConfigsValid(t *testing.T) {
	for _, width := range []int{2, 4, 8} {
		for _, depth := range []int{3, 7, 11} {
			for _, rob := range []int{64, 128, 256} {
				cfg := experiments.Point(width, depth, rob)
				if err := cfg.Validate(); err != nil {
					t.Errorf("point(%d,%d,%d): %v", width, depth, rob, err)
				}
				if cfg.DispatchWidth != width || cfg.FrontendDepth != depth || cfg.ROBSize != rob {
					t.Errorf("point(%d,%d,%d) mis-set: %+v", width, depth, rob, cfg)
				}
			}
		}
	}
}

func TestSweepRowShape(t *testing.T) {
	// One tiny point through the same plumbing run() uses: the decomposition
	// columns must be available at every grid point.
	wc, _ := workload.SuiteConfig("gzip")
	cfg := experiments.Point(2, 3, 64)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = wc
	if !strings.Contains(cfg.Name, "w2-d3-r64") {
		t.Errorf("point name = %q", cfg.Name)
	}
	if cfg.FU.IntALU.Count != 2 {
		t.Errorf("ALU count not scaled with width: %d", cfg.FU.IntALU.Count)
	}
	wide := experiments.Point(8, 3, 64)
	if wide.FU.MemPort.Count != 4 || wide.FU.IntMul.Count != 4 {
		t.Errorf("wide point FU scaling wrong: %+v", wide.FU)
	}
	if uarch.Baseline().FU.MemPort.Count != 2 {
		t.Error("baseline mutated by point()")
	}
}

// sweepArgs shrinks the per-point simulation so the full 27-point grid runs
// in test time.
func sweepArgs(extra ...string) []string {
	return append([]string{"-bench", "gzip", "-insts", "12000", "-warmup", "2000"}, extra...)
}

// TestSimModeReplaysOverlay pins satellite behavior of the overlay rollout:
// a timing-only sweep must run every point on the overlay-replay fast path
// and say so on stderr, with no fallbacks reported.
func TestSimModeReplaysOverlay(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain(sweepArgs("-j", "4"), &out, &errb); code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errb.String())
	}
	se := errb.String()
	if !strings.Contains(se, "simulator paths: 27×soa+overlay") {
		t.Errorf("stderr missing overlay path summary: %q", se)
	}
	if strings.Contains(se, "fallback:") {
		t.Errorf("unexpected fallback reported: %q", se)
	}
	if !strings.Contains(se, "overlay cache:") {
		t.Errorf("stderr missing overlay cache stats: %q", se)
	}
}

// TestModelMode exercises the analytic engine: full grid, model CSV schema,
// deterministic under parallelism, and physically sensible outputs.
func TestModelMode(t *testing.T) {
	render := func(j string) string {
		var out, errb bytes.Buffer
		if code := realMain(sweepArgs("-mode", "model", "-j", j), &out, &errb); code != 0 {
			t.Fatalf("-j %s exit = %d (stderr: %s)", j, code, errb.String())
		}
		return out.String()
	}
	serial := render("1")
	if parallel := render("8"); serial != parallel {
		t.Fatalf("model-mode CSV not deterministic:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	lines := strings.Split(strings.TrimSpace(serial), "\n")
	if len(lines) != 1+27 {
		t.Fatalf("CSV has %d lines, want 28:\n%s", len(lines), serial)
	}
	if lines[0] != "width,depth,rob,ipc,avg_penalty,cpi_base,cpi_bpred,cpi_icache,cpi_longd" {
		t.Fatalf("model CSV header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		cols := strings.Split(l, ",")
		if len(cols) != 9 {
			t.Fatalf("row %q has %d columns", l, len(cols))
		}
		if cols[3] == "0.000" {
			t.Errorf("row %q predicts zero IPC", l)
		}
	}
}

func TestModelModeBrokenPointFailSoft(t *testing.T) {
	testPointHook = func(cfg *uarch.Config) {
		if cfg.Name == "w4-d7-r128" {
			cfg.ROBSize = -1
		}
	}
	defer func() { testPointHook = nil }()
	var out, errb bytes.Buffer
	if code := realMain(sweepArgs("-mode", "model"), &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if lines := strings.Count(out.String(), "\n"); lines != 1+26 {
		t.Fatalf("CSV has %d lines, want 27:\n%s", lines, out.String())
	}
	if !strings.Contains(errb.String(), "FAIL w4-d7-r128") {
		t.Fatalf("stderr missing failure: %q", errb.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-bench", "nonesuch"}, &out, &errb); code != 2 {
		t.Fatalf("unknown benchmark exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown benchmark") {
		t.Fatalf("stderr = %q", errb.String())
	}
	errb.Reset()
	if code := realMain([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
	errb.Reset()
	if code := realMain([]string{"positional"}, &out, &errb); code != 2 {
		t.Fatalf("positional arg exit = %d, want 2", code)
	}
	errb.Reset()
	if code := realMain([]string{"-mode", "oracular"}, &out, &errb); code != 2 {
		t.Fatalf("unknown mode exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown mode") {
		t.Fatalf("stderr = %q", errb.String())
	}
}

// TestPredFlag pins the predictor axis: an unknown preset is a usage error
// that names the alternatives; -pred tournament (the baseline) is
// byte-identical to the default; -pred tage changes the rows while every
// point still rides the overlay-replay fast path (the overlay must follow
// the selected predictor).
func TestPredFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain(sweepArgs("-pred", "oracle-9000"), &out, &errb); code != 2 {
		t.Fatalf("unknown preset exit = %d, want 2 (stderr: %s)", code, errb.String())
	}
	if se := errb.String(); !strings.Contains(se, "unknown predictor preset") || !strings.Contains(se, "tage") {
		t.Fatalf("stderr = %q, want preset listing", se)
	}

	render := func(pred string) (string, string) {
		var out, errb bytes.Buffer
		args := sweepArgs("-j", "4")
		if pred != "" {
			args = sweepArgs("-j", "4", "-pred", pred)
		}
		if code := realMain(args, &out, &errb); code != 0 {
			t.Fatalf("-pred %q exit = %d (stderr: %s)", pred, code, errb.String())
		}
		return out.String(), errb.String()
	}
	def, _ := render("")
	tour, _ := render("tournament")
	if def != tour {
		t.Errorf("-pred tournament differs from the default sweep:\n--- default ---\n%s\n--- tournament ---\n%s", def, tour)
	}
	tage, tageErr := render("tage")
	if tage == def {
		t.Errorf("-pred tage produced the baseline CSV (axis not wired?)")
	}
	if !strings.Contains(tageErr, "simulator paths: 27×soa+overlay") {
		t.Errorf("tage sweep left the overlay fast path: %q", tageErr)
	}
}

// TestBrokenPointFailSoft injects one deliberately broken design point into
// the grid: the sweep must complete every other point, emit their CSV rows,
// report the failure on stderr, and exit nonzero.
func TestBrokenPointFailSoft(t *testing.T) {
	testPointHook = func(cfg *uarch.Config) {
		if cfg.Name == "w4-d7-r128" {
			cfg.ROBSize = -1 // fails Validate with ErrBadConfig
		}
	}
	defer func() { testPointHook = nil }()

	var out, errb bytes.Buffer
	code := realMain(sweepArgs("-j", "4"), &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1+26 { // header + 26 surviving grid points
		t.Fatalf("CSV has %d lines, want 27:\n%s", len(lines), out.String())
	}
	for _, l := range lines[1:] {
		if strings.HasPrefix(l, "4,7,128,") {
			t.Fatalf("broken point emitted a row: %q", l)
		}
	}
	se := errb.String()
	if !strings.Contains(se, "FAIL w4-d7-r128") || !strings.Contains(se, "invalid configuration") {
		t.Fatalf("stderr missing failure summary: %q", se)
	}
}

// TestParallelDeterminism asserts the acceptance criterion for -j: the CSV
// from a parallel sweep is byte-identical (rows in grid order) to the
// serial run's.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid sweep skipped in -short mode")
	}
	render := func(j string) string {
		var out, errb bytes.Buffer
		if code := realMain(sweepArgs("-j", j), &out, &errb); code != 0 {
			t.Fatalf("-j %s exit = %d (stderr: %s)", j, code, errb.String())
		}
		return out.String()
	}
	serial := render("1")
	parallel := render("8")
	if serial != parallel {
		t.Fatalf("-j 8 CSV differs from serial run:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if lines := strings.Count(serial, "\n"); lines != 28 { // header + 27 rows
		t.Fatalf("CSV has %d lines, want 28", lines)
	}
}

// TestLockstepModeMatchesSim is the lockstep acceptance gate at the command
// level: `-mode lockstep` must write byte-identical CSV to `-mode sim` over
// the same grid — header included — for set sizes that do and do not divide
// the 27-point grid, and must still run every point on the overlay-replay
// fast path.
func TestLockstepModeMatchesSim(t *testing.T) {
	render := func(extra ...string) (string, string) {
		var out, errb bytes.Buffer
		if code := realMain(sweepArgs(extra...), &out, &errb); code != 0 {
			t.Fatalf("%v exit = %d (stderr: %s)", extra, code, errb.String())
		}
		return out.String(), errb.String()
	}
	sim, _ := render("-j", "4")
	for _, k := range []string{"2", "5", "8", "27"} {
		lockstep, se := render("-mode", "lockstep", "-lockstep-k", k, "-j", "4")
		if lockstep != sim {
			t.Errorf("-lockstep-k %s CSV differs from sim mode:\n--- sim ---\n%s--- lockstep ---\n%s", k, sim, lockstep)
		}
		if !strings.Contains(se, "simulator paths: 27×soa+overlay") {
			t.Errorf("-lockstep-k %s stderr missing overlay path summary: %q", k, se)
		}
		if strings.Contains(se, "fallback:") {
			t.Errorf("-lockstep-k %s unexpected fallback: %q", k, se)
		}
	}
}

// TestLockstepBrokenPointFailsSet pins SimulateMany's all-or-nothing set
// contract at the command level: one broken design point fails its whole
// K-set (those rows are withheld), every other set still emits, and the
// exit code reports the failure.
func TestLockstepBrokenPointFailsSet(t *testing.T) {
	testPointHook = func(cfg *uarch.Config) {
		if cfg.Name == "w4-d7-r128" {
			cfg.ROBSize = -1 // fails Validate with ErrBadConfig
		}
	}
	defer func() { testPointHook = nil }()

	var out, errb bytes.Buffer
	code := realMain(sweepArgs("-mode", "lockstep", "-lockstep-k", "8"), &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb.String())
	}
	// The broken point is grid index 13, inside the second 8-point set: the
	// whole set's rows are withheld, the other 19 points survive.
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1+19 {
		t.Fatalf("CSV has %d lines, want 20:\n%s", len(lines), out.String())
	}
	se := errb.String()
	if !strings.Contains(se, "FAIL lockstep[") || !strings.Contains(se, "invalid configuration") {
		t.Fatalf("stderr missing set failure: %q", se)
	}
}

// TestSampledMode exercises the sampling engine end to end: sampled CSV
// schema, deterministic under parallelism, well-ordered confidence bounds,
// and no overlay computed (sampled runs bypass replay by design).
func TestSampledMode(t *testing.T) {
	args := func(j string) []string {
		return sweepArgs("-mode", "sampled", "-sample-detailed", "500", "-sample-skip", "1500", "-j", j)
	}
	render := func(j string) (string, string) {
		var out, errb bytes.Buffer
		if code := realMain(args(j), &out, &errb); code != 0 {
			t.Fatalf("-j %s exit = %d (stderr: %s)", j, code, errb.String())
		}
		return out.String(), errb.String()
	}
	beforeHits, beforeMisses := overlay.Shared.Stats()
	serial, se := render("1")
	if parallel, _ := render("8"); serial != parallel {
		t.Fatalf("sampled-mode CSV not deterministic:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	lines := strings.Split(strings.TrimSpace(serial), "\n")
	if len(lines) != 1+27 {
		t.Fatalf("CSV has %d lines, want 28:\n%s", len(lines), serial)
	}
	if lines[0] != "width,depth,rob,ipc,cpi,cpi_lo,cpi_hi,cpi_rel_err,units" {
		t.Fatalf("sampled CSV header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		cols := strings.Split(l, ",")
		if len(cols) != 9 {
			t.Fatalf("row %q has %d columns", l, len(cols))
		}
		cpi, lo, hi := parseF(t, cols[4]), parseF(t, cols[5]), parseF(t, cols[6])
		if !(lo <= cpi && cpi <= hi) || cpi <= 0 {
			t.Errorf("row %q interval out of order", l)
		}
		if units := parseF(t, cols[8]); units < 4 || units > 6 {
			t.Errorf("row %q units = %v, want about (12000-2000)/2000 = 5", l, units)
		}
	}
	// Every point runs live (the sampled path rejects replay), and no
	// overlay is ever computed for the grid.
	if !strings.Contains(se, "simulator paths: 27×soa") || strings.Contains(se, "soa+overlay") {
		t.Errorf("stderr paths = %q, want 27×soa live runs", se)
	}
	if !strings.Contains(se, "fallback: sampled run") {
		t.Errorf("stderr missing the sampled-run fallback provenance: %q", se)
	}
	// The shared overlay cache is process-global, so compare against the
	// pre-test snapshot: both sampled sweeps must leave it untouched.
	if hits, misses := overlay.Shared.Stats(); hits != beforeHits || misses != beforeMisses {
		t.Errorf("sampled sweeps touched the overlay cache: %d hits %d misses, was %d/%d",
			hits, misses, beforeHits, beforeMisses)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// TestEndpointsModeMatchesInProcess is the distributed acceptance gate at
// the command level: `sweep -endpoints` sharded across two daemons must
// write byte-identical CSV to the in-process sweep of the same grid.
func TestEndpointsModeMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid distributed sweep skipped in -short mode")
	}
	boot := func() *httptest.Server {
		s := service.New(service.Options{Workers: 2})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("Shutdown: %v", err)
			}
		})
		return ts
	}
	a, b := boot(), boot()

	var local, localErr bytes.Buffer
	if code := realMain(sweepArgs("-j", "4"), &local, &localErr); code != 0 {
		t.Fatalf("in-process exit = %d (stderr: %s)", code, localErr.String())
	}
	var dist, distErr bytes.Buffer
	if code := realMain(sweepArgs("-endpoints", a.URL+","+b.URL), &dist, &distErr); code != 0 {
		t.Fatalf("distributed exit = %d (stderr: %s)", code, distErr.String())
	}
	if local.String() != dist.String() {
		t.Errorf("distributed CSV differs from in-process:\n--- local ---\n%s--- distributed ---\n%s",
			local.String(), dist.String())
	}
	if !strings.Contains(distErr.String(), "cluster: 27 points (27 ok, 0 failed)") {
		t.Errorf("stderr missing fleet summary: %q", distErr.String())
	}
}

// TestEndpointsLockstepAndSampledMatchInProcess extends the distributed gate
// to the new engines: a fleet-sharded lockstep sweep merges to the same bytes
// as the in-process sim sweep (lockstep rows are sim rows), and a sampled
// fleet sweep merges to the in-process sampled CSV, confidence columns
// included.
func TestEndpointsLockstepAndSampledMatchInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid distributed sweeps skipped in -short mode")
	}
	s := service.New(service.Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})

	run := func(args []string) string {
		var out, errb bytes.Buffer
		if code := realMain(args, &out, &errb); code != 0 {
			t.Fatalf("%v exit = %d (stderr: %s)", args, code, errb.String())
		}
		return out.String()
	}

	local := run(sweepArgs("-j", "4"))
	dist := run(sweepArgs("-mode", "lockstep", "-lockstep-k", "4", "-endpoints", ts.URL))
	if dist != local {
		t.Errorf("distributed lockstep CSV differs from in-process sim:\n--- local ---\n%s--- distributed ---\n%s", local, dist)
	}

	sampledArgs := []string{"-mode", "sampled", "-sample-detailed", "500", "-sample-skip", "1500"}
	localSampled := run(sweepArgs(append(sampledArgs, "-j", "4")...))
	distSampled := run(sweepArgs(append(sampledArgs, "-endpoints", ts.URL)...))
	if distSampled != localSampled {
		t.Errorf("distributed sampled CSV differs from in-process:\n--- local ---\n%s--- distributed ---\n%s",
			localSampled, distSampled)
	}
}
