package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer lets the realMain goroutine write logs while the test reads.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// waitForAddr polls the daemon's stdout for the resolved listen address.
func waitForAddr(t *testing.T, out *lockedBuffer) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon never reported its address; output:\n%s", out.String())
	return ""
}

// TestVersionFlag: -version prints and exits 0 without binding a port.
func TestVersionFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	code := realMain(context.Background(), []string{"-version"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "intervalsimd ") {
		t.Fatalf("version output = %q", out.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := realMain(context.Background(), []string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestListenFailure(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := realMain(context.Background(), []string{"-addr", "256.0.0.1:0"}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr %q)", code, errOut.String())
	}
}

// TestGracefulLifecycle is the SIGTERM acceptance path: boot on a random
// port, serve a real request, submit a job, then cancel the signal context
// (what SIGTERM does via NotifyContext) and require exit 0 with the
// in-flight job drained, not dropped.
func TestGracefulLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out := &lockedBuffer{}
	errOut := &lockedBuffer{}
	exit := make(chan int, 1)
	go func() {
		exit <- realMain(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-drain", "60s"}, out, errOut)
	}()

	base := "http://" + waitForAddr(t, out)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var health struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Version == "" {
		t.Fatalf("healthz = %+v", health)
	}

	// Submit work, then immediately signal shutdown: the drain must let the
	// job finish.
	resp, err = http.Post(base+"/v1/simulate", "application/json",
		strings.NewReader(`{"benchmark":"gzip","insts":200000}`))
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatalf("job decode: %v", err)
	}
	resp.Body.Close()
	if job.ID == "" {
		t.Fatal("no job ID")
	}

	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errOut.String())
		}
	case <-time.After(90 * time.Second):
		t.Fatal("daemon did not exit after shutdown signal")
	}
	logs := out.String()
	if !strings.Contains(logs, "shutting down") || !strings.Contains(logs, "bye") {
		t.Fatalf("shutdown log incomplete:\n%s", logs)
	}
}

var _ io.Writer = (*lockedBuffer)(nil)
