// Command intervalsimd serves the interval-analysis substrate over HTTP:
// simulation, analytic-model, and design-sweep endpoints with bounded
// admission, shared trace/overlay caches, and live metrics. See the
// "Serving" section of the README for the API walkthrough.
//
// Shutdown is graceful: on SIGINT/SIGTERM the listener stops accepting,
// in-flight requests and queued jobs drain (bounded by -drain), and the
// process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"intervalsim/internal/service"
	"intervalsim/internal/store"
	"intervalsim/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	os.Exit(realMain(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// realMain runs the daemon until ctx is canceled (the signal path) or
// startup fails. Split from main so tests can drive the full lifecycle.
func realMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("intervalsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "job queue depth (0 = default 64)")
	timeout := fs.Duration("timeout", 0, "default per-job deadline (0 = 60s)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	storeDir := fs.String("store", "", "durable result-store directory (empty = in-memory only)")
	tenantQuota := fs.Int("tenant-quota", 0, "max admitted jobs per tenant (0 = unlimited)")
	peers := fs.String("peers", "", "comma-separated peer base URLs for fleet cache fills (the cluster coordinator's X-Peers header overrides this at runtime)")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintf(stdout, "intervalsimd %s\n", version.String())
		return 0
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(store.OS, *storeDir)
		if err != nil {
			fmt.Fprintf(stderr, "intervalsimd: open store: %v\n", err)
			return 1
		}
		defer st.Close()
		sn := st.StatsSnapshot()
		fmt.Fprintf(stdout, "intervalsimd: store %s: %d records (%d recovered, %d torn bytes truncated, index rebuilt %v)\n",
			*storeDir, sn.Records, sn.RecoveredRecords, sn.TruncatedBytes, sn.IndexRebuilt)
	}

	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
	}
	srv := service.New(service.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		TenantQuota:    *tenantQuota,
		Store:          st,
		Peers:          peerList,
	})
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "intervalsimd: listen: %v\n", err)
		return 1
	}
	// The resolved address matters when -addr requested port 0; the CI smoke
	// test and local scripts parse this line.
	fmt.Fprintf(stdout, "intervalsimd %s listening on %s\n", version.String(), ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "intervalsimd: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown, in dependency order: stop accepting and wait for
	// in-flight HTTP handlers (sweep streams included), then drain the job
	// pool. Handlers submit to the pool, so the pool must outlive them.
	fmt.Fprintf(stdout, "intervalsimd: shutting down (drain budget %s)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "intervalsimd: http shutdown: %v\n", err)
		code = 1
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(stderr, "intervalsimd: pool drain: %v\n", err)
		code = 1
	}
	<-serveErr // Serve has returned http.ErrServerClosed by now
	fmt.Fprintln(stdout, "intervalsimd: bye")
	return code
}
