// Command tracegen generates the synthetic benchmark traces to disk in the
// compact binary format, so experiments can run from files instead of
// regenerating (and so traces can be inspected or shipped).
//
// Usage:
//
//	tracegen -list
//	tracegen [-n insts] [-out dir] [name ...]
//	tracegen -config bench.json [-n insts] [-out dir]
//
// With no names, the whole suite is generated; -config generates a custom
// benchmark described by a JSON file (see workload.ParseConfig).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"intervalsim/internal/trace"
	"intervalsim/internal/version"
	"intervalsim/internal/workload"
)

func main() {
	n := flag.Int("n", 1_000_000, "dynamic instructions per trace")
	out := flag.String("out", ".", "output directory")
	list := flag.Bool("list", false, "list available benchmarks and exit")
	configFile := flag.String("config", "", "JSON workload configuration file")
	valueSeed := flag.Uint64("value-seed", 0, "value-stream seed override (0 = workload default)")
	valueConst := flag.Int("value-const", -1, "percent of result values that repeat a constant (-1 = workload default)")
	valueStride := flag.Int("value-stride", -1, "percent of result values that follow a stride (-1 = workload default)")
	valuePattern := flag.Int("value-pattern", -1, "percent of result values that cycle a short pattern (-1 = workload default)")
	showVersion := flag.Bool("version", false, "print the build identity and exit")
	flag.Parse()

	// applyValueStream overlays any explicit value-stream flags onto a
	// workload configuration before generation, so traces carry the
	// requested predictability mix.
	applyValueStream := func(cfg workload.Config) workload.Config {
		if *valueSeed != 0 {
			cfg.ValueSeed = *valueSeed
		}
		if *valueConst >= 0 {
			cfg.ValueConstPct = *valueConst
		}
		if *valueStride >= 0 {
			cfg.ValueStridePct = *valueStride
		}
		if *valuePattern >= 0 {
			cfg.ValuePatternPct = *valuePattern
		}
		return cfg
	}

	if *showVersion {
		fmt.Println("tracegen", version.String())
		return
	}

	if *list {
		for _, c := range workload.Suite() {
			fmt.Printf("%-8s regions=%d blocks=%d data=%dKB static≈%d insts\n",
				c.Name, c.Regions, c.BlocksPerRegion, c.DataFootprint>>10, c.StaticInsts())
		}
		return
	}

	if *configFile != "" {
		f, err := os.Open(*configFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		cfg, err := workload.ParseConfig(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		if err := writeTrace(applyValueStream(cfg), *n, *out); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	names := flag.Args()
	if len(names) == 0 {
		for _, c := range workload.Suite() {
			names = append(names, c.Name)
		}
	}
	for _, name := range names {
		cfg, ok := workload.SuiteConfig(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "tracegen: unknown benchmark %q (use -list)\n", name)
			os.Exit(2)
		}
		if err := writeTrace(applyValueStream(cfg), *n, *out); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	}
}

func writeTrace(cfg workload.Config, n int, dir string) error {
	tr, err := trace.ReadAll(workload.MustNew(cfg, n))
	if err != nil {
		return err
	}
	path := filepath.Join(dir, cfg.Name+".ivtr")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %d insts -> %s (%.1f MB, %.1f B/inst)\n",
		cfg.Name, tr.Len(), path, float64(st.Size())/(1<<20), float64(st.Size())/float64(tr.Len()))
	return nil
}
