package main

import (
	"os"
	"path/filepath"
	"testing"

	"intervalsim/internal/trace"
	"intervalsim/internal/workload"
)

func TestWriteTraceRoundTrips(t *testing.T) {
	dir := t.TempDir()
	cfg, ok := workload.SuiteConfig("vpr")
	if !ok {
		t.Fatal("suite missing vpr")
	}
	if err := writeTrace(cfg, 2000, dir); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "vpr.ivtr"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2000 {
		t.Fatalf("decoded %d insts", tr.Len())
	}
	// The file must be identical to a fresh generation (determinism).
	want, err := trace.ReadAll(workload.MustNew(cfg, 2000))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Insts {
		if want.Insts[i] != tr.Insts[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestWriteTraceBadDir(t *testing.T) {
	cfg, _ := workload.SuiteConfig("vpr")
	if err := writeTrace(cfg, 100, "/no/such/dir"); err == nil {
		t.Fatal("unwritable directory accepted")
	}
}
