// Command bench runs a pinned simulator workload matrix and reports
// throughput (inst/s), steady-state heap allocations per run, and CPI for
// each point, writing the results as JSON for CI artifact upload and
// benchstat-style regression tracking.
//
// The matrix is fixed on purpose: the same benchmarks, instruction counts,
// and configurations every run, so numbers are comparable across commits.
// Two simulator paths are measured per benchmark — the struct-of-arrays
// fast path (trace packed once, dependences precomputed) and the generic
// streaming-Reader path (live dependence tracking) — because regressions
// can hide in either.
//
// Usage:
//
//	bench [-quick] [-o BENCH_simulator.json] [-runs N]
//
// -quick shrinks the matrix for CI smoke runs (fewer instructions, fewer
// repetitions); full runs are for committed baselines. Exit codes: 0
// success, 1 runtime error, 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

func main() { os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr)) }

// benchPoint is one (benchmark, path) cell of the matrix.
type benchPoint struct {
	Benchmark string  `json:"benchmark"`
	Path      string  `json:"path"` // "soa" or "generic"
	Insts     uint64  `json:"insts"`
	Runs      int     `json:"runs"`
	InstPerS  float64 `json:"inst_per_s"`
	AllocsPerRun uint64 `json:"allocs_per_run"`
	CPI       float64 `json:"cpi"`
	IPC       float64 `json:"ipc"`
	Cycles    uint64  `json:"cycles"`
}

// benchReport is the BENCH_simulator.json schema.
type benchReport struct {
	Quick     bool         `json:"quick"`
	GoVersion string       `json:"go_version"`
	Config    string       `json:"config"`
	Points    []benchPoint `json:"points"`
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "smaller matrix for CI smoke runs")
	out := fs.String("o", "BENCH_simulator.json", "output JSON path (empty = stdout only)")
	runs := fs.Int("runs", 0, "repetitions per point (0 = auto: 3, or 2 with -quick)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "bench: unexpected arguments %q\n", fs.Args())
		return 2
	}
	rep, err := run(*quick, *runs, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "bench:", err)
		return 1
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "bench:", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(stderr, "bench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	return 0
}

// matrix returns the pinned (benchmark, insts) workload set.
func matrix(quick bool) ([]string, int) {
	if quick {
		return []string{"gzip", "crafty"}, 200_000
	}
	return []string{"gzip", "mcf", "crafty", "twolf"}, 1_000_000
}

func run(quick bool, runs int, stdout io.Writer) (*benchReport, error) {
	if runs <= 0 {
		runs = 3
		if quick {
			runs = 2
		}
	}
	benches, insts := matrix(quick)
	cfg := uarch.Baseline()
	rep := &benchReport{Quick: quick, GoVersion: runtime.Version(), Config: cfg.Name}

	fmt.Fprintf(stdout, "%-10s %-8s %12s %14s %8s\n", "benchmark", "path", "Minst/s", "allocs/run", "CPI")
	for _, name := range benches {
		wc, ok := workload.SuiteConfig(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		tr, err := trace.ReadAll(workload.MustNew(wc, insts))
		if err != nil {
			return nil, err
		}
		soa := trace.Pack(tr)
		paths := []struct {
			name string
			mk   func() trace.Reader
		}{
			{"soa", func() trace.Reader { return soa.Reader() }},
			{"generic", func() trace.Reader { return tr.Reader() }},
		}
		for _, p := range paths {
			pt, err := measure(name, p.name, p.mk, cfg, runs)
			if err != nil {
				return nil, err
			}
			rep.Points = append(rep.Points, *pt)
			fmt.Fprintf(stdout, "%-10s %-8s %12.2f %14d %8.3f\n",
				pt.Benchmark, pt.Path, pt.InstPerS/1e6, pt.AllocsPerRun, pt.CPI)
		}
	}
	return rep, nil
}

// measure runs one matrix point `runs` times and keeps the best throughput
// (least-interfered run) with the mean allocation count. A warmup run is
// excluded so one-time pool growth doesn't count against steady state.
func measure(bench, path string, mk func() trace.Reader, cfg uarch.Config, runs int) (*benchPoint, error) {
	res, err := uarch.Run(mk(), cfg, uarch.Options{}) // warmup, excluded
	if err != nil {
		return nil, err
	}
	var best float64
	var allocs uint64
	var ms0, ms1 runtime.MemStats
	for i := 0; i < runs; i++ {
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		res, err = uarch.Run(mk(), cfg, uarch.Options{})
		if err != nil {
			return nil, err
		}
		dur := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		allocs += ms1.Mallocs - ms0.Mallocs
		if ips := float64(res.Insts) / dur.Seconds(); ips > best {
			best = ips
		}
	}
	return &benchPoint{
		Benchmark:    bench,
		Path:         path,
		Insts:        res.Insts,
		Runs:         runs,
		InstPerS:     best,
		AllocsPerRun: allocs / uint64(runs),
		CPI:          res.CPI(),
		IPC:          res.IPC(),
		Cycles:       res.Cycles,
	}, nil
}
