// Command bench runs a pinned simulator workload matrix and reports
// throughput (inst/s), steady-state heap allocations per run, and CPI for
// each point, writing the results as JSON for CI artifact upload and
// benchstat-style regression tracking.
//
// The matrix is fixed on purpose: the same benchmarks, instruction counts,
// and configurations every run, so numbers are comparable across commits.
// Two simulator paths are measured per benchmark — the struct-of-arrays
// fast path (trace packed once, dependences precomputed) and the generic
// streaming-Reader path (live dependence tracking) — because regressions
// can hide in either. A sweep-level metric follows the matrix: the
// wall-clock of a whole depth×ROB sweep run live, with overlay replay, and
// with the analytic model off a shared overlay, plus the overlay cache hit
// rate — the end-to-end numbers the miss-event overlay exists to improve.
//
// Usage:
//
//	bench [-quick] [-o BENCH_simulator.json] [-runs N]
//
// -quick shrinks the matrix for CI smoke runs (fewer instructions, fewer
// repetitions); full runs are for committed baselines. Exit codes: 0
// success, 1 runtime error, 2 usage error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"intervalsim/internal/bpred"
	"intervalsim/internal/cluster"
	"intervalsim/internal/core"
	"intervalsim/internal/isa"
	"intervalsim/internal/experiments"
	"intervalsim/internal/overlay"
	"intervalsim/internal/service"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/version"
	"intervalsim/internal/vpred"
	"intervalsim/internal/workload"
)

func main() { os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr)) }

// benchPoint is one (benchmark, path) cell of the matrix.
type benchPoint struct {
	Benchmark    string  `json:"benchmark"`
	Path         string  `json:"path"` // "soa" or "generic"
	Insts        uint64  `json:"insts"`
	Runs         int     `json:"runs"`
	InstPerS     float64 `json:"inst_per_s"`
	AllocsPerRun uint64  `json:"allocs_per_run"`
	CPI          float64 `json:"cpi"`
	IPC          float64 `json:"ipc"`
	Cycles       uint64  `json:"cycles"`
}

// sweepBench is the sweep-level metric: the wall-clock of an entire
// depth×ROB design-space sweep at a fixed predictor and cache hierarchy,
// run five ways over the same packed trace — live cycle-level simulation,
// cycle-level simulation replaying a shared miss-event overlay, all points
// advanced together in lockstep over that overlay, SMARTS-style sampled
// simulation, and the analytic interval model evaluated straight off the
// overlay. Replay and lockstep must reproduce live cycle counts exactly
// (checked); sampling trades exactness for a confidence interval, and the
// number of points whose CPI interval covers the full-run CPI is recorded
// alongside its speedup; the model trades exactness for orders-of-magnitude
// less work, and its mean CPI error vs live is recorded as the sanity
// bound. Setup costs (overlay computation, shared ILP characteristics) are
// charged to the timings they benefit.
type sweepBench struct {
	Benchmark       string  `json:"benchmark"`
	Insts           int     `json:"insts"`
	Points          int     `json:"points"`
	LiveSeconds     float64 `json:"live_s"`
	ReplaySeconds   float64 `json:"replay_s"`
	LockstepSeconds float64 `json:"lockstep_s"`
	SampledSeconds  float64 `json:"sampled_s"`
	ModelSeconds    float64 `json:"model_s"`
	ReplaySpeedup   float64 `json:"replay_speedup"`
	LockstepSpeedup float64 `json:"lockstep_speedup"`
	SampledSpeedup  float64 `json:"sampled_speedup"`
	ModelSpeedup    float64 `json:"model_speedup"`
	OverlayHits     uint64  `json:"overlay_hits"`
	OverlayMisses   uint64  `json:"overlay_misses"`
	OverlayHitRate  float64 `json:"overlay_hit_rate"`
	ModelMeanErr    float64 `json:"model_cpi_mean_abs_err"`
	// Sampled-run accounting: the pinned phase lengths, the fewest
	// measurement units any point observed, how many of the Points'
	// 95% CPI intervals cover that point's full-run CPI, and the mean
	// absolute CPI error of the sampled point estimates vs live.
	SampledDetailed uint64  `json:"sampled_detailed"`
	SampledSkip     uint64  `json:"sampled_skip"`
	SampledMinUnits int     `json:"sampled_min_units"`
	SampledCovered  int     `json:"sampled_cpi_ci_covered"`
	SampledMeanErr  float64 `json:"sampled_cpi_mean_abs_err"`
}

// predPoint is one predictor preset of the direction-prediction timing
// matrix: the preset at its canonical sizing (BTB held out), driven over
// the crafty conditional-branch stream. PredPerS is raw Access calls per
// second — the per-branch cost the cycle-level frontend pays for this
// predictor family — and MPKI/accuracy record what that cost buys on the
// same stream, so a throughput regression and an accuracy regression are
// both visible in one row.
type predPoint struct {
	Kind        string  `json:"kind"`
	Entries     int     `json:"entries"`
	HistBits    uint    `json:"hist_bits"`
	StorageBits int64   `json:"storage_bits"`
	Branches    uint64  `json:"branches"`
	Runs        int     `json:"runs"`
	PredPerS    float64 `json:"pred_per_s"`
	MPKI        float64 `json:"mpki"`
	Accuracy    float64 `json:"accuracy"`
}

// vpredPoint is one value-predictor preset of the value-speculation timing
// matrix: the preset at its canonical sizing driven over crafty's eligible
// (load and register-writing ALU) instruction stream with the workload's own
// value stream. PredPerS is raw Access calls per second — the per-eligible-
// instruction cost a value-speculating overlay pre-pass or live run pays —
// and the hit/misspec rates record what that cost buys on the same stream.
type vpredPoint struct {
	Kind        string  `json:"kind"`
	Entries     int     `json:"entries"`
	StorageBits int64   `json:"storage_bits"`
	Eligible    uint64  `json:"eligible"`
	Runs        int     `json:"runs"`
	PredPerS    float64 `json:"pred_per_s"`
	HitRate     float64 `json:"hit_rate"`
	MisspecRate float64 `json:"misspec_rate"`
}

// clusterFleet is one fleet size of the cluster scale-out benchmark. Each
// fleet partitions the host's real cores across its daemons and is timed
// twice from cold — with peer cache fills off, then on — so the recorded
// delta is what fleet-native sharing is worth, and the fill counters say
// whether the fleet actually computed each artifact once.
type clusterFleet struct {
	Daemons    int    `json:"daemons"`
	Skipped    bool   `json:"skipped,omitempty"`
	SkipReason string `json:"skip_reason,omitempty"`
	// CoresPerDaemon is this fleet's per-daemon core budget (cores/daemons,
	// floored at 1) — the daemon's worker count. EffectiveCores is the
	// GOMAXPROCS pin during the timing: budget × daemons, never more than
	// the machine has.
	CoresPerDaemon int     `json:"cores_per_daemon"`
	EffectiveCores int     `json:"effective_cores"`
	Seconds        float64 `json:"seconds"`          // cold sweep, peer fills on
	NoShareSeconds float64 `json:"no_share_seconds"` // cold sweep, peer fills off
	Speedup        float64 `json:"speedup"`          // vs the 1-daemon fleet (fills on)
	Efficiency     float64 `json:"efficiency"`       // speedup / daemons
	Stolen         int     `json:"stolen_batches"`   // work-stealing activity (fills on)
	// Fleet-aggregated cache and peer-fill counters from the shared run.
	// Duplicate computations are OverlaysComputed beyond one per benchmark:
	// zero means every overlay was built exactly once fleet-wide and every
	// other daemon that needed it filled from a peer.
	TraceFills        uint64  `json:"peer_trace_fills"`
	OverlayFills      uint64  `json:"peer_overlay_fills"`
	TracesComputed    uint64  `json:"traces_computed"`
	OverlaysComputed  uint64  `json:"overlays_computed"`
	DuplicateOverlays uint64  `json:"duplicate_overlays"`
	OverlayHitRate    float64 `json:"overlay_hit_rate"`
	TraceHitRate      float64 `json:"trace_hit_rate"`
}

// clusterBench measures distributed-sweep scale-out honestly: a cold
// two-benchmark design-space grid dispatched through the cluster coordinator
// to fleets of 1, 2, and 4 in-process daemons. Honest means three things.
// The host's real cores are partitioned across each fleet (cores/daemons
// workers per daemon, GOMAXPROCS pinned to the fleet's effective total), so
// a bigger fleet never borrows parallelism the deployment story wouldn't
// have. Fleet sizes exceeding the physical core count are skipped and
// recorded as skipped, not timed as oversubscribed fictions. And every
// timing starts cold — private per-daemon trace caches, fresh overlay
// caches — so artifact computation is inside the measurement and the
// with/without-peer-fill delta is attributable to sharing alone.
type clusterBench struct {
	Benchmarks []string       `json:"benchmarks"`
	Insts      int            `json:"insts"`
	Points     int            `json:"points"` // total across benchmarks
	Cores      int            `json:"cores"`  // physical parallelism of the host
	Fleets     []clusterFleet `json:"fleets"`
}

// benchReport is the BENCH_simulator.json schema.
type benchReport struct {
	Quick      bool          `json:"quick"`
	GoVersion  string        `json:"go_version"`
	Config     string        `json:"config"`
	Points     []benchPoint  `json:"points"`
	Predictors []predPoint   `json:"predictors"`
	VPred      []vpredPoint  `json:"value_predictors"`
	Sweep      *sweepBench   `json:"sweep"`
	Cluster    *clusterBench `json:"cluster"`
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "smaller matrix for CI smoke runs")
	out := fs.String("o", "BENCH_simulator.json", "output JSON path (empty = stdout only)")
	runs := fs.Int("runs", 0, "repetitions per point (0 = auto: 3, or 2 with -quick)")
	showVersion := fs.Bool("version", false, "print the build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, "bench", version.String())
		return 0
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "bench: unexpected arguments %q\n", fs.Args())
		return 2
	}
	rep, err := run(*quick, *runs, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "bench:", err)
		return 1
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "bench:", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(stderr, "bench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	return 0
}

// matrix returns the pinned (benchmark, insts) workload set.
func matrix(quick bool) ([]string, int) {
	if quick {
		return []string{"gzip", "crafty"}, 200_000
	}
	return []string{"gzip", "mcf", "crafty", "twolf"}, 1_000_000
}

func run(quick bool, runs int, stdout io.Writer) (*benchReport, error) {
	if runs <= 0 {
		runs = 3
		if quick {
			runs = 2
		}
	}
	benches, insts := matrix(quick)
	cfg := uarch.Baseline()
	rep := &benchReport{Quick: quick, GoVersion: runtime.Version(), Config: cfg.Name}

	fmt.Fprintf(stdout, "%-10s %-8s %12s %14s %8s\n", "benchmark", "path", "Minst/s", "allocs/run", "CPI")
	for _, name := range benches {
		wc, ok := workload.SuiteConfig(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		tr, err := trace.ReadAll(workload.MustNew(wc, insts))
		if err != nil {
			return nil, err
		}
		soa := trace.Pack(tr)
		paths := []struct {
			name string
			mk   func() trace.Reader
		}{
			{"soa", func() trace.Reader { return soa.Reader() }},
			{"generic", func() trace.Reader { return tr.Reader() }},
		}
		for _, p := range paths {
			pt, err := measure(name, p.name, p.mk, cfg, runs)
			if err != nil {
				return nil, err
			}
			rep.Points = append(rep.Points, *pt)
			fmt.Fprintf(stdout, "%-10s %-8s %12.2f %14d %8.3f\n",
				pt.Benchmark, pt.Path, pt.InstPerS/1e6, pt.AllocsPerRun, pt.CPI)
		}
	}
	preds, err := measurePredictors(quick, runs, stdout)
	if err != nil {
		return nil, err
	}
	rep.Predictors = preds
	vps, err := measureValuePredictors(quick, runs, stdout)
	if err != nil {
		return nil, err
	}
	rep.VPred = vps
	sw, err := measureSweep(quick)
	if err != nil {
		return nil, err
	}
	rep.Sweep = sw
	fmt.Fprintf(stdout, "sweep %s (%d pts, %d insts): live %.2fs, replay %.2fs (%.2fx), lockstep %.2fs (%.2fx), sampled %.2fs (%.2fx, %d/%d CI cover, |err| %.1f%%), model %.2fs (%.1fx), overlay hit rate %.0f%%, model CPI |err| %.1f%%\n",
		sw.Benchmark, sw.Points, sw.Insts, sw.LiveSeconds,
		sw.ReplaySeconds, sw.ReplaySpeedup,
		sw.LockstepSeconds, sw.LockstepSpeedup,
		sw.SampledSeconds, sw.SampledSpeedup, sw.SampledCovered, sw.Points, sw.SampledMeanErr*100,
		sw.ModelSeconds, sw.ModelSpeedup,
		sw.OverlayHitRate*100, sw.ModelMeanErr*100)
	cb, err := measureCluster(quick, stdout)
	if err != nil {
		return nil, err
	}
	rep.Cluster = cb
	return rep, nil
}

// measureCluster times a cold two-benchmark sweep dispatched through the
// cluster coordinator to fleets of 1, 2, and 4 in-process daemons. Each
// fleet partitions the host's cores (cores/daemons workers per daemon,
// GOMAXPROCS pinned to the effective total) and is timed twice from cold:
// peer fills off, then on. Fleet sizes larger than the core count are
// recorded as skipped rather than timed oversubscribed.
func measureCluster(quick bool, stdout io.Writer) (*clusterBench, error) {
	benches := []string{"gzip", "crafty"}
	insts, widths, depths, robs := 400_000, []int{2, 4, 8}, []int{3, 7}, []int{64, 128}
	if quick {
		insts, widths, depths, robs = 100_000, []int{2, 4}, []int{3}, []int{64, 128}
	}
	fleets := []int{1, 2, 4}
	cb := &clusterBench{
		Benchmarks: benches,
		Insts:      insts,
		Points:     len(benches) * len(widths) * len(depths) * len(robs),
		Cores:      runtime.NumCPU(),
	}
	fmt.Fprintf(stdout, "cluster %v (%d pts, %d insts) on %d cores, cold, core-partitioned:\n",
		benches, cb.Points, insts, cb.Cores)

	for _, n := range fleets {
		if n > cb.Cores {
			fl := clusterFleet{
				Daemons: n, Skipped: true,
				SkipReason: fmt.Sprintf("%d daemons exceed %d physical cores", n, cb.Cores),
			}
			cb.Fleets = append(cb.Fleets, fl)
			fmt.Fprintf(stdout, "  %d daemon(s): skipped (%s)\n", n, fl.SkipReason)
			continue
		}
		fl := clusterFleet{Daemons: n, CoresPerDaemon: cb.Cores / n}
		fl.EffectiveCores = fl.CoresPerDaemon * n
		noShare, _, err := timeFleet(n, fl.CoresPerDaemon, false, benches, insts, widths, depths, robs)
		if err != nil {
			return nil, err
		}
		fl.NoShareSeconds = noShare
		secs, stats, err := timeFleet(n, fl.CoresPerDaemon, true, benches, insts, widths, depths, robs)
		if err != nil {
			return nil, err
		}
		fl.Seconds, fl.Stolen = secs, stats.Stolen
		fc := stats.Caches()
		fl.TraceFills, fl.OverlayFills = fc.TraceFills, fc.OverlayFills
		fl.TracesComputed, fl.OverlaysComputed = fc.TracesComputed, fc.OverlaysComputed
		if distinct := uint64(len(benches)); fc.OverlaysComputed > distinct {
			fl.DuplicateOverlays = fc.OverlaysComputed - distinct
		}
		fl.OverlayHitRate, fl.TraceHitRate = fc.OverlayHitRate(), fc.TraceHitRate()
		if len(cb.Fleets) > 0 && secs > 0 {
			base := cb.Fleets[0]
			if base.Seconds > 0 {
				fl.Speedup = base.Seconds / secs
				fl.Efficiency = fl.Speedup / float64(n)
			}
		} else if secs > 0 {
			fl.Speedup, fl.Efficiency = 1, 1
		}
		cb.Fleets = append(cb.Fleets, fl)
		fmt.Fprintf(stdout, "  %d daemon(s) @ %d cores each: no-share %.2fs, share %.2fs (%.2fx, eff %.2f); peer fills %d traces + %d overlays, computed %d/%d, dup overlays %d\n",
			n, fl.CoresPerDaemon, fl.NoShareSeconds, fl.Seconds, fl.Speedup, fl.Efficiency,
			fl.TraceFills, fl.OverlayFills, fl.TracesComputed, fl.OverlaysComputed, fl.DuplicateOverlays)
	}
	return cb, nil
}

// timeFleet boots n cold in-process daemons — each with its own private
// trace cache and cpd workers — and times one full distributed sweep, with
// GOMAXPROCS pinned to n × cpd for the duration (restored afterwards).
// The clock starts before any trace or overlay exists anywhere in the
// fleet: setup cost is inside the measurement on purpose, because the
// with/without-sharing delta lives in that setup. share toggles peer cache
// fills; the returned stats carry the end-of-run /metrics scrapes.
func timeFleet(n, cpd int, share bool, benches []string, insts int, widths, depths, robs []int) (float64, *cluster.RunStats, error) {
	prev := runtime.GOMAXPROCS(n * cpd)
	defer runtime.GOMAXPROCS(prev)
	ctx := context.Background()
	endpoints := make([]string, n)
	servers := make([]*httptest.Server, n)
	daemons := make([]*service.Server, n)
	for i := 0; i < n; i++ {
		// A private trace cache per daemon: in-process daemons must not
		// share artifacts through the process-wide memo, or the no-share
		// timing would be sharing through the back door.
		daemons[i] = service.New(service.Options{
			Workers:    cpd,
			TraceCache: experiments.NewTraceCache(2 * len(benches)),
		})
		servers[i] = httptest.NewServer(daemons[i].Handler())
		endpoints[i] = servers[i].URL
	}
	defer func() {
		for i := range servers {
			servers[i].Close()
			sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			daemons[i].Shutdown(sctx) //nolint:errcheck // bench teardown
			cancel()
		}
	}()

	t0 := time.Now()
	stats, err := cluster.Run(ctx, cluster.Options{
		Endpoints:       endpoints,
		Benches:         benches,
		Widths:          widths,
		Depths:          depths,
		ROBs:            robs,
		Insts:           insts,
		BatchSize:       1,
		KeepGoing:       true,
		DisablePeerFill: !share,
	}, func(*cluster.Row) error { return nil })
	if err != nil {
		return 0, nil, err
	}
	return time.Since(t0).Seconds(), stats, nil
}

// sweepGrid returns the pinned depth×ROB grid at fixed dispatch width and
// speculation configuration, the regime the overlay exists for.
func sweepGrid(quick bool) (string, int, []uarch.Config) {
	name, insts := "crafty", 1_000_000
	depths := []int{3, 5, 7, 9, 11}
	robs := []int{32, 64, 128, 256}
	if quick {
		insts = 200_000
		depths = []int{3, 7}
		robs = []int{64, 128}
	}
	var cfgs []uarch.Config
	for _, depth := range depths {
		for _, rob := range robs {
			cfg := uarch.Baseline()
			cfg.Name = fmt.Sprintf("d%d-r%d", depth, rob)
			cfg.FrontendDepth = depth
			cfg.ROBSize = rob
			cfg.IQSize = rob / 2
			cfgs = append(cfgs, cfg)
		}
	}
	return name, insts, cfgs
}

// measureSweep times the three sweep engines over the same grid and packed
// trace, single-threaded and in a fixed order, and cross-checks them:
// replay must be cycle-exact against live, and the model's CPI must stay
// within a loose sanity bound of the simulator's.
func measureSweep(quick bool) (*sweepBench, error) {
	name, insts, cfgs := sweepGrid(quick)
	wc, ok := workload.SuiteConfig(name)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", name)
	}
	soa, err := trace.PackReader(workload.MustNew(wc, insts))
	if err != nil {
		return nil, err
	}
	sw := &sweepBench{Benchmark: name, Insts: insts, Points: len(cfgs)}

	liveCPI := make([]float64, len(cfgs))
	liveCycles := make([]uint64, len(cfgs))
	t0 := time.Now()
	for i, cfg := range cfgs {
		res, err := uarch.Run(soa.Reader(), cfg, uarch.Options{})
		if err != nil {
			return nil, err
		}
		liveCPI[i], liveCycles[i] = res.CPI(), res.Cycles
	}
	sw.LiveSeconds = time.Since(t0).Seconds()

	// A fresh cache, not overlay.Shared, so the recorded hit rate is the
	// sweep's own: one miss (the first point computes the overlay), then a
	// hit per remaining point.
	oc := overlay.NewCache(2)
	t1 := time.Now()
	for i, cfg := range cfgs {
		ov, err := oc.Get(soa, cfg.Pred, cfg.Mem)
		if err != nil {
			return nil, err
		}
		res, err := uarch.Run(soa.Reader(), cfg, uarch.Options{Overlay: ov})
		if err != nil {
			return nil, err
		}
		if res.Path != "soa+overlay" {
			return nil, fmt.Errorf("sweep point %s did not replay (path %q: %s)", cfg.Name, res.Path, res.Fallback)
		}
		if res.Cycles != liveCycles[i] {
			return nil, fmt.Errorf("sweep point %s: replay %d cycles, live %d", cfg.Name, res.Cycles, liveCycles[i])
		}
	}
	sw.ReplaySeconds = time.Since(t1).Seconds()

	// Lockstep: the same grid advanced as one K-way set over the shared
	// overlay — one pass over the trace bytes instead of len(cfgs). Must be
	// cycle-exact against live, like replay.
	lov, err := oc.Get(soa, cfgs[0].Pred, cfgs[0].Mem)
	if err != nil {
		return nil, err
	}
	tl := time.Now()
	lres, err := uarch.SimulateMany(context.Background(), soa, lov, cfgs, uarch.Options{})
	if err != nil {
		return nil, err
	}
	sw.LockstepSeconds = time.Since(tl).Seconds()
	for i, res := range lres {
		if res.Cycles != liveCycles[i] {
			return nil, fmt.Errorf("lockstep point %s: %d cycles, live %d", cfgs[i].Name, res.Cycles, liveCycles[i])
		}
	}

	// Sampled: each point simulated in detail only during short systematic
	// phases, with functional warming between them. No start-skip, so the
	// sampled estimate targets the same whole-run CPI the live sweep
	// measured; the confidence interval of every point should cover it.
	sw.SampledDetailed, sw.SampledSkip = sampledPhases(quick)
	var sampErr float64
	ts := time.Now()
	for i, cfg := range cfgs {
		res, err := uarch.Run(soa.Reader(), cfg, uarch.Options{
			SampleDetailed: sw.SampledDetailed,
			SampleSkip:     sw.SampledSkip,
		})
		if err != nil {
			return nil, err
		}
		if res.Sample == nil {
			return nil, fmt.Errorf("sampled point %s carried no sampling stats", cfg.Name)
		}
		if u := res.Sample.Units; sw.SampledMinUnits == 0 || u < sw.SampledMinUnits {
			sw.SampledMinUnits = u
		}
		if res.Sample.CPI.Covers(liveCPI[i]) {
			sw.SampledCovered++
		}
		sampErr += math.Abs(res.Sample.CPI.Mean-liveCPI[i]) / liveCPI[i]
	}
	sw.SampledSeconds = time.Since(ts).Seconds()
	sw.SampledMeanErr = sampErr / float64(len(cfgs))
	if sw.SampledCovered*10 < len(cfgs)*9 {
		return nil, fmt.Errorf("sampled sweep: only %d/%d CPI intervals cover the full-run CPI", sw.SampledCovered, len(cfgs))
	}

	base := uarch.Baseline()
	maxROB := 0
	for _, cfg := range cfgs {
		if cfg.ROBSize > maxROB {
			maxROB = cfg.ROBSize
		}
	}
	var errSum float64
	t2 := time.Now()
	ov, err := oc.Get(soa, base.Pred, base.Mem)
	if err != nil {
		return nil, err
	}
	set, err := core.NewModelSet(soa, ov, base, maxROB, 0, insts)
	if err != nil {
		return nil, err
	}
	for i, cfg := range cfgs {
		m, prof, err := set.For(cfg)
		if err != nil {
			return nil, err
		}
		pred, err := m.PredictCPI(prof)
		if err != nil {
			return nil, err
		}
		errSum += math.Abs(pred.CPI()-liveCPI[i]) / liveCPI[i]
	}
	sw.ModelSeconds = time.Since(t2).Seconds()
	sw.ModelMeanErr = errSum / float64(len(cfgs))
	sw.OverlayHits, sw.OverlayMisses = oc.Stats()
	if total := sw.OverlayHits + sw.OverlayMisses; total > 0 {
		sw.OverlayHitRate = float64(sw.OverlayHits) / float64(total)
	}
	if sw.ModelMeanErr > 0.25 {
		return nil, fmt.Errorf("model sweep mean CPI error %.1f%% exceeds sanity bound", sw.ModelMeanErr*100)
	}
	if sw.ReplaySeconds > 0 {
		sw.ReplaySpeedup = sw.LiveSeconds / sw.ReplaySeconds
	}
	if sw.LockstepSeconds > 0 {
		sw.LockstepSpeedup = sw.LiveSeconds / sw.LockstepSeconds
	}
	if sw.SampledSeconds > 0 {
		sw.SampledSpeedup = sw.LiveSeconds / sw.SampledSeconds
	}
	if sw.ModelSeconds > 0 {
		sw.ModelSpeedup = sw.LiveSeconds / sw.ModelSeconds
	}
	return sw, nil
}

// sampledPhases returns the pinned detailed/fast-forward phase lengths of
// the sampled sweep timing: a 1-in-20 detail fraction, long enough phases
// that functional warming dominates the cost, short enough that the full
// grid still observes tens of measurement units per point.
func sampledPhases(quick bool) (detailed, skip uint64) {
	if quick {
		return 2_000, 18_000
	}
	return 2_000, 38_000
}

// measure runs one matrix point `runs` times and keeps the best throughput
// (least-interfered run) with the mean allocation count. A warmup run is
// excluded so one-time pool growth doesn't count against steady state.
func measure(bench, path string, mk func() trace.Reader, cfg uarch.Config, runs int) (*benchPoint, error) {
	res, err := uarch.Run(mk(), cfg, uarch.Options{}) // warmup, excluded
	if err != nil {
		return nil, err
	}
	var best float64
	var allocs uint64
	var ms0, ms1 runtime.MemStats
	for i := 0; i < runs; i++ {
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		res, err = uarch.Run(mk(), cfg, uarch.Options{})
		if err != nil {
			return nil, err
		}
		dur := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		allocs += ms1.Mallocs - ms0.Mallocs
		if ips := float64(res.Insts) / dur.Seconds(); ips > best {
			best = ips
		}
	}
	return &benchPoint{
		Benchmark:    bench,
		Path:         path,
		Insts:        res.Insts,
		Runs:         runs,
		InstPerS:     best,
		AllocsPerRun: allocs / uint64(runs),
		CPI:          res.CPI(),
		IPC:          res.IPC(),
		Cycles:       res.Cycles,
	}, nil
}

// measurePredictors times every stateful predictor preset over the crafty
// conditional-branch stream, extracted once from the packed trace so only
// the predictor's Access path is inside the clock. The BTB is held out of
// every preset (direction prediction only), the accuracy is counted on the
// same timed pass, and the best of `runs` repetitions is kept, mirroring
// the matrix points. Static kinds (perfect, taken, not-taken) hold no
// state and are skipped — their cost is a compare, not a table walk.
func measurePredictors(quick bool, runs int, stdout io.Writer) ([]predPoint, error) {
	_, insts := matrix(quick)
	wc, ok := workload.SuiteConfig("crafty")
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", "crafty")
	}
	soa, err := trace.PackReader(workload.MustNew(wc, insts))
	if err != nil {
		return nil, err
	}
	var pcs []uint64
	var takens []bool
	for i := 0; i < soa.Len(); i++ {
		if soa.Class(i) != isa.Branch {
			continue
		}
		pcs = append(pcs, soa.PC[i])
		takens = append(takens, soa.Taken(i))
	}
	fmt.Fprintf(stdout, "%-12s %8s %12s %12s %8s %10s\n", "predictor", "entries", "storage", "Mpred/s", "MPKI", "accuracy")
	var out []predPoint
	for _, name := range bpred.PresetNames() {
		spec, _ := bpred.Preset(name)
		if spec.StorageBits() == 0 {
			continue
		}
		spec.BTBEntries = 0
		pt := predPoint{
			Kind:        name,
			Entries:     spec.Entries,
			HistBits:    spec.HistBits,
			StorageBits: spec.StorageBits(),
			Branches:    uint64(len(pcs)),
			Runs:        runs,
		}
		var miss uint64
		for r := 0; r < runs; r++ {
			unit, err := spec.Build()
			if err != nil {
				return nil, err
			}
			dir := unit.Dir
			miss = 0
			t0 := time.Now()
			for i, pc := range pcs {
				if !dir.Access(pc, takens[i]) {
					miss++
				}
			}
			if pps := float64(len(pcs)) / time.Since(t0).Seconds(); pps > pt.PredPerS {
				pt.PredPerS = pps
			}
		}
		pt.MPKI = float64(miss) / float64(insts) * 1000
		if len(pcs) > 0 {
			pt.Accuracy = 1 - float64(miss)/float64(len(pcs))
		}
		fmt.Fprintf(stdout, "%-12s %8d %10.1f KB %12.2f %8.2f %10.3f\n",
			pt.Kind, pt.Entries, float64(pt.StorageBits)/8/1024, pt.PredPerS/1e6, pt.MPKI, pt.Accuracy)
		out = append(out, pt)
	}
	return out, nil
}

// measureValuePredictors times every value-predictor preset over crafty's
// eligible instruction stream (loads and register-writing ALU ops — the
// instructions overlay.VPredEligible admits), extracted once from the packed
// trace so only the Runner's Access path is inside the clock. The stream is
// the workload's own value stream, the hit/misspec rates are counted on the
// same timed pass, and the best of `runs` repetitions is kept, mirroring
// measurePredictors.
func measureValuePredictors(quick bool, runs int, stdout io.Writer) ([]vpredPoint, error) {
	_, insts := matrix(quick)
	wc, ok := workload.SuiteConfig("crafty")
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", "crafty")
	}
	soa, err := trace.PackReader(workload.MustNew(wc, insts))
	if err != nil {
		return nil, err
	}
	var pcs []uint64
	for i := 0; i < soa.Len(); i++ {
		if overlay.VPredEligible(soa.Class(i), soa.Dst[i]) {
			pcs = append(pcs, soa.PC[i])
		}
	}
	fmt.Fprintf(stdout, "%-12s %8s %12s %12s %10s %10s\n", "vpredictor", "entries", "storage", "Mpred/s", "hit rate", "misspec")
	var out []vpredPoint
	for _, name := range vpred.PresetNames() {
		cfg, _ := vpred.Preset(name)
		cfg.Stream = wc.ValueStream()
		pt := vpredPoint{
			Kind:        name,
			Entries:     cfg.Entries,
			StorageBits: cfg.StorageBits(),
			Eligible:    uint64(len(pcs)),
			Runs:        runs,
		}
		var hits, misspecs uint64
		for r := 0; r < runs; r++ {
			runner, err := vpred.NewRunner(cfg)
			if err != nil {
				return nil, err
			}
			hits, misspecs = 0, 0
			t0 := time.Now()
			for _, pc := range pcs {
				switch runner.Access(pc) {
				case vpred.Hit:
					hits++
				case vpred.Miss:
					misspecs++
				}
			}
			if pps := float64(len(pcs)) / time.Since(t0).Seconds(); pps > pt.PredPerS {
				pt.PredPerS = pps
			}
		}
		if len(pcs) > 0 {
			pt.HitRate = float64(hits) / float64(len(pcs))
			pt.MisspecRate = float64(misspecs) / float64(len(pcs))
		}
		fmt.Fprintf(stdout, "%-12s %8d %10.1f KB %12.2f %10.3f %10.3f\n",
			pt.Kind, pt.Entries, float64(pt.StorageBits)/8/1024, pt.PredPerS/1e6, pt.HitRate, pt.MisspecRate)
		out = append(out, pt)
	}
	return out, nil
}
