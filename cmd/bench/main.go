// Command bench runs a pinned simulator workload matrix and reports
// throughput (inst/s), steady-state heap allocations per run, and CPI for
// each point, writing the results as JSON for CI artifact upload and
// benchstat-style regression tracking.
//
// The matrix is fixed on purpose: the same benchmarks, instruction counts,
// and configurations every run, so numbers are comparable across commits.
// Two simulator paths are measured per benchmark — the struct-of-arrays
// fast path (trace packed once, dependences precomputed) and the generic
// streaming-Reader path (live dependence tracking) — because regressions
// can hide in either. A sweep-level metric follows the matrix: the
// wall-clock of a whole depth×ROB sweep run live, with overlay replay, and
// with the analytic model off a shared overlay, plus the overlay cache hit
// rate — the end-to-end numbers the miss-event overlay exists to improve.
//
// Usage:
//
//	bench [-quick] [-o BENCH_simulator.json] [-runs N]
//
// -quick shrinks the matrix for CI smoke runs (fewer instructions, fewer
// repetitions); full runs are for committed baselines. Exit codes: 0
// success, 1 runtime error, 2 usage error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"intervalsim/internal/cluster"
	"intervalsim/internal/core"
	"intervalsim/internal/overlay"
	"intervalsim/internal/service"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/version"
	"intervalsim/internal/workload"
)

func main() { os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr)) }

// benchPoint is one (benchmark, path) cell of the matrix.
type benchPoint struct {
	Benchmark    string  `json:"benchmark"`
	Path         string  `json:"path"` // "soa" or "generic"
	Insts        uint64  `json:"insts"`
	Runs         int     `json:"runs"`
	InstPerS     float64 `json:"inst_per_s"`
	AllocsPerRun uint64  `json:"allocs_per_run"`
	CPI          float64 `json:"cpi"`
	IPC          float64 `json:"ipc"`
	Cycles       uint64  `json:"cycles"`
}

// sweepBench is the sweep-level metric: the wall-clock of an entire
// depth×ROB design-space sweep at a fixed predictor and cache hierarchy,
// run five ways over the same packed trace — live cycle-level simulation,
// cycle-level simulation replaying a shared miss-event overlay, all points
// advanced together in lockstep over that overlay, SMARTS-style sampled
// simulation, and the analytic interval model evaluated straight off the
// overlay. Replay and lockstep must reproduce live cycle counts exactly
// (checked); sampling trades exactness for a confidence interval, and the
// number of points whose CPI interval covers the full-run CPI is recorded
// alongside its speedup; the model trades exactness for orders-of-magnitude
// less work, and its mean CPI error vs live is recorded as the sanity
// bound. Setup costs (overlay computation, shared ILP characteristics) are
// charged to the timings they benefit.
type sweepBench struct {
	Benchmark       string  `json:"benchmark"`
	Insts           int     `json:"insts"`
	Points          int     `json:"points"`
	LiveSeconds     float64 `json:"live_s"`
	ReplaySeconds   float64 `json:"replay_s"`
	LockstepSeconds float64 `json:"lockstep_s"`
	SampledSeconds  float64 `json:"sampled_s"`
	ModelSeconds    float64 `json:"model_s"`
	ReplaySpeedup   float64 `json:"replay_speedup"`
	LockstepSpeedup float64 `json:"lockstep_speedup"`
	SampledSpeedup  float64 `json:"sampled_speedup"`
	ModelSpeedup    float64 `json:"model_speedup"`
	OverlayHits     uint64  `json:"overlay_hits"`
	OverlayMisses   uint64  `json:"overlay_misses"`
	OverlayHitRate  float64 `json:"overlay_hit_rate"`
	ModelMeanErr    float64 `json:"model_cpi_mean_abs_err"`
	// Sampled-run accounting: the pinned phase lengths, the fewest
	// measurement units any point observed, how many of the Points'
	// 95% CPI intervals cover that point's full-run CPI, and the mean
	// absolute CPI error of the sampled point estimates vs live.
	SampledDetailed uint64  `json:"sampled_detailed"`
	SampledSkip     uint64  `json:"sampled_skip"`
	SampledMinUnits int     `json:"sampled_min_units"`
	SampledCovered  int     `json:"sampled_cpi_ci_covered"`
	SampledMeanErr  float64 `json:"sampled_cpi_mean_abs_err"`
}

// clusterFleet is one fleet size of the cluster scale-out benchmark.
type clusterFleet struct {
	Daemons    int     `json:"daemons"`
	Procs      int     `json:"gomaxprocs"` // GOMAXPROCS pinned during this fleet's timing
	Seconds    float64 `json:"seconds"`
	Speedup    float64 `json:"speedup"`        // vs the 1-daemon fleet
	Efficiency float64 `json:"efficiency"`     // speedup / daemons
	Stolen     int     `json:"stolen_batches"` // work-stealing activity during the run
}

// clusterBench measures distributed-sweep scale-out: the same design-space
// sweep dispatched through the cluster coordinator to 1, 2, and 4 local
// intervalsimd daemons (one worker each). Cores records how much hardware
// parallelism the host actually had, and CoresPerDaemon is the per-daemon
// core budget each fleet was pinned to (GOMAXPROCS = daemons ×
// CoresPerDaemon during its timing), so every fleet size sees the same
// per-daemon hardware and the speedup curve measures scale-out, not the
// 1-daemon fleet being gifted the whole machine. On a host with fewer cores
// than the largest fleet the budget floors at one core per daemon and the
// fleets contend honestly, so the numbers stay interpretable rather than
// misleading.
type clusterBench struct {
	Benchmark      string         `json:"benchmark"`
	Insts          int            `json:"insts"`
	Points         int            `json:"points"`
	Cores          int            `json:"cores"`
	CoresPerDaemon int            `json:"cores_per_daemon"`
	Fleets         []clusterFleet `json:"fleets"`
}

// benchReport is the BENCH_simulator.json schema.
type benchReport struct {
	Quick     bool          `json:"quick"`
	GoVersion string        `json:"go_version"`
	Config    string        `json:"config"`
	Points    []benchPoint  `json:"points"`
	Sweep     *sweepBench   `json:"sweep"`
	Cluster   *clusterBench `json:"cluster"`
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "smaller matrix for CI smoke runs")
	out := fs.String("o", "BENCH_simulator.json", "output JSON path (empty = stdout only)")
	runs := fs.Int("runs", 0, "repetitions per point (0 = auto: 3, or 2 with -quick)")
	showVersion := fs.Bool("version", false, "print the build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, "bench", version.String())
		return 0
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "bench: unexpected arguments %q\n", fs.Args())
		return 2
	}
	rep, err := run(*quick, *runs, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "bench:", err)
		return 1
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "bench:", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(stderr, "bench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	return 0
}

// matrix returns the pinned (benchmark, insts) workload set.
func matrix(quick bool) ([]string, int) {
	if quick {
		return []string{"gzip", "crafty"}, 200_000
	}
	return []string{"gzip", "mcf", "crafty", "twolf"}, 1_000_000
}

func run(quick bool, runs int, stdout io.Writer) (*benchReport, error) {
	if runs <= 0 {
		runs = 3
		if quick {
			runs = 2
		}
	}
	benches, insts := matrix(quick)
	cfg := uarch.Baseline()
	rep := &benchReport{Quick: quick, GoVersion: runtime.Version(), Config: cfg.Name}

	fmt.Fprintf(stdout, "%-10s %-8s %12s %14s %8s\n", "benchmark", "path", "Minst/s", "allocs/run", "CPI")
	for _, name := range benches {
		wc, ok := workload.SuiteConfig(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		tr, err := trace.ReadAll(workload.MustNew(wc, insts))
		if err != nil {
			return nil, err
		}
		soa := trace.Pack(tr)
		paths := []struct {
			name string
			mk   func() trace.Reader
		}{
			{"soa", func() trace.Reader { return soa.Reader() }},
			{"generic", func() trace.Reader { return tr.Reader() }},
		}
		for _, p := range paths {
			pt, err := measure(name, p.name, p.mk, cfg, runs)
			if err != nil {
				return nil, err
			}
			rep.Points = append(rep.Points, *pt)
			fmt.Fprintf(stdout, "%-10s %-8s %12.2f %14d %8.3f\n",
				pt.Benchmark, pt.Path, pt.InstPerS/1e6, pt.AllocsPerRun, pt.CPI)
		}
	}
	sw, err := measureSweep(quick)
	if err != nil {
		return nil, err
	}
	rep.Sweep = sw
	fmt.Fprintf(stdout, "sweep %s (%d pts, %d insts): live %.2fs, replay %.2fs (%.2fx), lockstep %.2fs (%.2fx), sampled %.2fs (%.2fx, %d/%d CI cover, |err| %.1f%%), model %.2fs (%.1fx), overlay hit rate %.0f%%, model CPI |err| %.1f%%\n",
		sw.Benchmark, sw.Points, sw.Insts, sw.LiveSeconds,
		sw.ReplaySeconds, sw.ReplaySpeedup,
		sw.LockstepSeconds, sw.LockstepSpeedup,
		sw.SampledSeconds, sw.SampledSpeedup, sw.SampledCovered, sw.Points, sw.SampledMeanErr*100,
		sw.ModelSeconds, sw.ModelSpeedup,
		sw.OverlayHitRate*100, sw.ModelMeanErr*100)
	cb, err := measureCluster(quick, stdout)
	if err != nil {
		return nil, err
	}
	rep.Cluster = cb
	return rep, nil
}

// measureCluster times the same sweep dispatched through the cluster
// coordinator to fleets of 1, 2, and 4 local daemons, each with a single
// worker, so the fleet size is the only parallelism knob. Every daemon is
// prewarmed (trace resolved, overlay built) before its fleet is timed, so
// the measurement is steady-state sweep throughput, not setup cost. Each
// fleet runs with GOMAXPROCS pinned to daemons × cores-per-daemon so the
// per-daemon core budget is constant across fleet sizes.
func measureCluster(quick bool, stdout io.Writer) (*clusterBench, error) {
	name := "crafty"
	insts, widths, depths, robs := 400_000, []int{2, 4, 8}, []int{3, 7}, []int{64, 128}
	if quick {
		insts, widths, depths, robs = 100_000, []int{2, 4}, []int{3}, []int{64, 128}
	}
	fleets := []int{1, 2, 4}
	maxFleet := fleets[len(fleets)-1]
	cb := &clusterBench{
		Benchmark: name,
		Insts:     insts,
		Points:    len(widths) * len(depths) * len(robs),
		Cores:     runtime.NumCPU(),
	}
	cb.CoresPerDaemon = cb.Cores / maxFleet
	if cb.CoresPerDaemon < 1 {
		cb.CoresPerDaemon = 1
	}
	fmt.Fprintf(stdout, "cluster %s (%d pts, %d insts) on %d cores, %d core(s) per daemon:\n",
		name, cb.Points, insts, cb.Cores, cb.CoresPerDaemon)

	for _, n := range fleets {
		if cb.Cores < n {
			fmt.Fprintf(stdout, "  note: %d daemons on %d cores; scale-out is core-bound\n", n, cb.Cores)
		}
		procs := cb.CoresPerDaemon * n
		secs, stolen, err := timeFleet(n, procs, name, insts, widths, depths, robs)
		if err != nil {
			return nil, err
		}
		fl := clusterFleet{Daemons: n, Procs: procs, Seconds: secs, Stolen: stolen}
		if len(cb.Fleets) > 0 && secs > 0 {
			fl.Speedup = cb.Fleets[0].Seconds / secs
			fl.Efficiency = fl.Speedup / float64(n)
		} else if secs > 0 {
			fl.Speedup, fl.Efficiency = 1, 1
		}
		cb.Fleets = append(cb.Fleets, fl)
		fmt.Fprintf(stdout, "  %d daemon(s) @ %d procs: %.2fs (%.2fx, eff %.2f)\n", n, procs, secs, fl.Speedup, fl.Efficiency)
	}
	return cb, nil
}

// timeFleet boots n in-process daemons, prewarms them, and times one full
// distributed sweep across the fleet with GOMAXPROCS pinned to procs for
// the duration (restored afterwards). Daemons share the bench process, so
// pinning the process-wide limit to n × cores-per-daemon is what holds each
// daemon's effective core share constant across fleet sizes.
func timeFleet(n, procs int, bench string, insts int, widths, depths, robs []int) (float64, int, error) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	ctx := context.Background()
	endpoints := make([]string, n)
	servers := make([]*httptest.Server, n)
	daemons := make([]*service.Server, n)
	for i := 0; i < n; i++ {
		daemons[i] = service.New(service.Options{Workers: 1})
		servers[i] = httptest.NewServer(daemons[i].Handler())
		endpoints[i] = servers[i].URL
	}
	defer func() {
		for i := range servers {
			servers[i].Close()
			sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			daemons[i].Shutdown(sctx) //nolint:errcheck // bench teardown
			cancel()
		}
	}()

	// Prewarm: one point through every daemon resolves the trace and builds
	// the overlay before the clock starts.
	for _, ep := range endpoints {
		_, err := cluster.NewClient(ep).Batch(ctx, service.BatchRequest{
			Benchmark: bench,
			Insts:     insts,
			Decompose: true,
			Points:    []service.BatchPointSpec{{Seq: 0, Width: widths[0], Depth: depths[0], ROB: robs[0]}},
		}, func(service.BatchPoint) {})
		if err != nil {
			return 0, 0, err
		}
	}

	t0 := time.Now()
	stats, err := cluster.Run(ctx, cluster.Options{
		Endpoints: endpoints,
		Benches:   []string{bench},
		Widths:    widths,
		Depths:    depths,
		ROBs:      robs,
		Insts:     insts,
		BatchSize: 1,
		KeepGoing: true,
	}, func(*cluster.Row) error { return nil })
	if err != nil {
		return 0, 0, err
	}
	return time.Since(t0).Seconds(), stats.Stolen, nil
}

// sweepGrid returns the pinned depth×ROB grid at fixed dispatch width and
// speculation configuration, the regime the overlay exists for.
func sweepGrid(quick bool) (string, int, []uarch.Config) {
	name, insts := "crafty", 1_000_000
	depths := []int{3, 5, 7, 9, 11}
	robs := []int{32, 64, 128, 256}
	if quick {
		insts = 200_000
		depths = []int{3, 7}
		robs = []int{64, 128}
	}
	var cfgs []uarch.Config
	for _, depth := range depths {
		for _, rob := range robs {
			cfg := uarch.Baseline()
			cfg.Name = fmt.Sprintf("d%d-r%d", depth, rob)
			cfg.FrontendDepth = depth
			cfg.ROBSize = rob
			cfg.IQSize = rob / 2
			cfgs = append(cfgs, cfg)
		}
	}
	return name, insts, cfgs
}

// measureSweep times the three sweep engines over the same grid and packed
// trace, single-threaded and in a fixed order, and cross-checks them:
// replay must be cycle-exact against live, and the model's CPI must stay
// within a loose sanity bound of the simulator's.
func measureSweep(quick bool) (*sweepBench, error) {
	name, insts, cfgs := sweepGrid(quick)
	wc, ok := workload.SuiteConfig(name)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", name)
	}
	soa, err := trace.PackReader(workload.MustNew(wc, insts))
	if err != nil {
		return nil, err
	}
	sw := &sweepBench{Benchmark: name, Insts: insts, Points: len(cfgs)}

	liveCPI := make([]float64, len(cfgs))
	liveCycles := make([]uint64, len(cfgs))
	t0 := time.Now()
	for i, cfg := range cfgs {
		res, err := uarch.Run(soa.Reader(), cfg, uarch.Options{})
		if err != nil {
			return nil, err
		}
		liveCPI[i], liveCycles[i] = res.CPI(), res.Cycles
	}
	sw.LiveSeconds = time.Since(t0).Seconds()

	// A fresh cache, not overlay.Shared, so the recorded hit rate is the
	// sweep's own: one miss (the first point computes the overlay), then a
	// hit per remaining point.
	oc := overlay.NewCache(2)
	t1 := time.Now()
	for i, cfg := range cfgs {
		ov, err := oc.Get(soa, cfg.Pred, cfg.Mem)
		if err != nil {
			return nil, err
		}
		res, err := uarch.Run(soa.Reader(), cfg, uarch.Options{Overlay: ov})
		if err != nil {
			return nil, err
		}
		if res.Path != "soa+overlay" {
			return nil, fmt.Errorf("sweep point %s did not replay (path %q: %s)", cfg.Name, res.Path, res.Fallback)
		}
		if res.Cycles != liveCycles[i] {
			return nil, fmt.Errorf("sweep point %s: replay %d cycles, live %d", cfg.Name, res.Cycles, liveCycles[i])
		}
	}
	sw.ReplaySeconds = time.Since(t1).Seconds()

	// Lockstep: the same grid advanced as one K-way set over the shared
	// overlay — one pass over the trace bytes instead of len(cfgs). Must be
	// cycle-exact against live, like replay.
	lov, err := oc.Get(soa, cfgs[0].Pred, cfgs[0].Mem)
	if err != nil {
		return nil, err
	}
	tl := time.Now()
	lres, err := uarch.SimulateMany(context.Background(), soa, lov, cfgs, uarch.Options{})
	if err != nil {
		return nil, err
	}
	sw.LockstepSeconds = time.Since(tl).Seconds()
	for i, res := range lres {
		if res.Cycles != liveCycles[i] {
			return nil, fmt.Errorf("lockstep point %s: %d cycles, live %d", cfgs[i].Name, res.Cycles, liveCycles[i])
		}
	}

	// Sampled: each point simulated in detail only during short systematic
	// phases, with functional warming between them. No start-skip, so the
	// sampled estimate targets the same whole-run CPI the live sweep
	// measured; the confidence interval of every point should cover it.
	sw.SampledDetailed, sw.SampledSkip = sampledPhases(quick)
	var sampErr float64
	ts := time.Now()
	for i, cfg := range cfgs {
		res, err := uarch.Run(soa.Reader(), cfg, uarch.Options{
			SampleDetailed: sw.SampledDetailed,
			SampleSkip:     sw.SampledSkip,
		})
		if err != nil {
			return nil, err
		}
		if res.Sample == nil {
			return nil, fmt.Errorf("sampled point %s carried no sampling stats", cfg.Name)
		}
		if u := res.Sample.Units; sw.SampledMinUnits == 0 || u < sw.SampledMinUnits {
			sw.SampledMinUnits = u
		}
		if res.Sample.CPI.Covers(liveCPI[i]) {
			sw.SampledCovered++
		}
		sampErr += math.Abs(res.Sample.CPI.Mean-liveCPI[i]) / liveCPI[i]
	}
	sw.SampledSeconds = time.Since(ts).Seconds()
	sw.SampledMeanErr = sampErr / float64(len(cfgs))
	if sw.SampledCovered*10 < len(cfgs)*9 {
		return nil, fmt.Errorf("sampled sweep: only %d/%d CPI intervals cover the full-run CPI", sw.SampledCovered, len(cfgs))
	}

	base := uarch.Baseline()
	maxROB := 0
	for _, cfg := range cfgs {
		if cfg.ROBSize > maxROB {
			maxROB = cfg.ROBSize
		}
	}
	var errSum float64
	t2 := time.Now()
	ov, err := oc.Get(soa, base.Pred, base.Mem)
	if err != nil {
		return nil, err
	}
	set, err := core.NewModelSet(soa, ov, base, maxROB, 0, insts)
	if err != nil {
		return nil, err
	}
	for i, cfg := range cfgs {
		m, prof, err := set.For(cfg)
		if err != nil {
			return nil, err
		}
		pred, err := m.PredictCPI(prof)
		if err != nil {
			return nil, err
		}
		errSum += math.Abs(pred.CPI()-liveCPI[i]) / liveCPI[i]
	}
	sw.ModelSeconds = time.Since(t2).Seconds()
	sw.ModelMeanErr = errSum / float64(len(cfgs))
	sw.OverlayHits, sw.OverlayMisses = oc.Stats()
	if total := sw.OverlayHits + sw.OverlayMisses; total > 0 {
		sw.OverlayHitRate = float64(sw.OverlayHits) / float64(total)
	}
	if sw.ModelMeanErr > 0.25 {
		return nil, fmt.Errorf("model sweep mean CPI error %.1f%% exceeds sanity bound", sw.ModelMeanErr*100)
	}
	if sw.ReplaySeconds > 0 {
		sw.ReplaySpeedup = sw.LiveSeconds / sw.ReplaySeconds
	}
	if sw.LockstepSeconds > 0 {
		sw.LockstepSpeedup = sw.LiveSeconds / sw.LockstepSeconds
	}
	if sw.SampledSeconds > 0 {
		sw.SampledSpeedup = sw.LiveSeconds / sw.SampledSeconds
	}
	if sw.ModelSeconds > 0 {
		sw.ModelSpeedup = sw.LiveSeconds / sw.ModelSeconds
	}
	return sw, nil
}

// sampledPhases returns the pinned detailed/fast-forward phase lengths of
// the sampled sweep timing: a 1-in-20 detail fraction, long enough phases
// that functional warming dominates the cost, short enough that the full
// grid still observes tens of measurement units per point.
func sampledPhases(quick bool) (detailed, skip uint64) {
	if quick {
		return 2_000, 18_000
	}
	return 2_000, 38_000
}

// measure runs one matrix point `runs` times and keeps the best throughput
// (least-interfered run) with the mean allocation count. A warmup run is
// excluded so one-time pool growth doesn't count against steady state.
func measure(bench, path string, mk func() trace.Reader, cfg uarch.Config, runs int) (*benchPoint, error) {
	res, err := uarch.Run(mk(), cfg, uarch.Options{}) // warmup, excluded
	if err != nil {
		return nil, err
	}
	var best float64
	var allocs uint64
	var ms0, ms1 runtime.MemStats
	for i := 0; i < runs; i++ {
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		res, err = uarch.Run(mk(), cfg, uarch.Options{})
		if err != nil {
			return nil, err
		}
		dur := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		allocs += ms1.Mallocs - ms0.Mallocs
		if ips := float64(res.Insts) / dur.Seconds(); ips > best {
			best = ips
		}
	}
	return &benchPoint{
		Benchmark:    bench,
		Path:         path,
		Insts:        res.Insts,
		Runs:         runs,
		InstPerS:     best,
		AllocsPerRun: allocs / uint64(runs),
		CPI:          res.CPI(),
		IPC:          res.IPC(),
		Cycles:       res.Cycles,
	}, nil
}
