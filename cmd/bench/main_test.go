package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestQuickRun exercises the full -quick path end to end: it must produce a
// valid JSON report covering both simulator paths for every benchmark in
// the quick matrix, with sane metric values.
func TestQuickRun(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-quick", "-runs", "1", "-o", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if !rep.Quick {
		t.Error("quick flag not recorded")
	}
	benches, _ := matrix(true)
	if want := 2 * len(benches); len(rep.Points) != want {
		t.Fatalf("got %d points, want %d", len(rep.Points), want)
	}
	for _, pt := range rep.Points {
		if pt.InstPerS <= 0 {
			t.Errorf("%s/%s: non-positive throughput %f", pt.Benchmark, pt.Path, pt.InstPerS)
		}
		if pt.CPI <= 0 || pt.CPI > 100 {
			t.Errorf("%s/%s: implausible CPI %f", pt.Benchmark, pt.Path, pt.CPI)
		}
		if pt.Insts == 0 || pt.Cycles == 0 {
			t.Errorf("%s/%s: empty run (insts=%d cycles=%d)", pt.Benchmark, pt.Path, pt.Insts, pt.Cycles)
		}
	}
	// Both paths must agree on the architectural result: the SoA fast path
	// is an optimization, not a different machine.
	byKey := map[string]benchPoint{}
	for _, pt := range rep.Points {
		byKey[pt.Benchmark+"/"+pt.Path] = pt
	}
	for _, b := range benches {
		soa, generic := byKey[b+"/soa"], byKey[b+"/generic"]
		if soa.Cycles != generic.Cycles || soa.Insts != generic.Insts {
			t.Errorf("%s: paths diverge (soa %d cycles / generic %d cycles)", b, soa.Cycles, generic.Cycles)
		}
	}
	// The sweep metric: all three engines timed, replay cycle-exactness
	// enforced inside measureSweep, overlay computed exactly once.
	sw := rep.Sweep
	if sw == nil {
		t.Fatal("report has no sweep section")
	}
	if sw.Points != 4 || sw.Benchmark == "" {
		t.Errorf("quick sweep shape wrong: %+v", sw)
	}
	if sw.LiveSeconds <= 0 || sw.ReplaySeconds <= 0 || sw.ModelSeconds <= 0 ||
		sw.LockstepSeconds <= 0 || sw.SampledSeconds <= 0 {
		t.Errorf("sweep timings not recorded: %+v", sw)
	}
	// The sampled engine must report its statistical accounting; at least
	// 90% interval coverage is enforced inside measureSweep itself.
	if sw.SampledMinUnits == 0 || sw.SampledCovered == 0 || sw.SampledDetailed == 0 || sw.SampledSkip == 0 {
		t.Errorf("sampled sweep accounting missing: %+v", sw)
	}
	// One miss computes the overlay; every replayed point hits it, plus one
	// more hit when the lockstep engine fetches the shared overlay.
	if sw.OverlayMisses != 1 || sw.OverlayHits != uint64(sw.Points)+1 {
		t.Errorf("overlay cache not shared across sweep: %d hits, %d misses", sw.OverlayHits, sw.OverlayMisses)
	}
	if sw.ModelMeanErr < 0 || sw.ModelMeanErr > 0.25 {
		t.Errorf("model mean CPI error out of range: %f", sw.ModelMeanErr)
	}
	// The cluster fleet block: honest core accounting per fleet. Skipped
	// fleets must say why; timed fleets must record both cold timings and
	// must have computed each benchmark's overlay at least once fleet-wide.
	cl := rep.Cluster
	if cl == nil {
		t.Fatal("report has no cluster section")
	}
	if len(cl.Benchmarks) != 2 || cl.Cores <= 0 || len(cl.Fleets) == 0 {
		t.Fatalf("cluster shape wrong: %+v", cl)
	}
	for _, fl := range cl.Fleets {
		if fl.Skipped {
			if fl.SkipReason == "" || fl.Daemons <= cl.Cores {
				t.Errorf("fleet %d skipped without honest reason: %+v", fl.Daemons, fl)
			}
			continue
		}
		if fl.CoresPerDaemon < 1 || fl.EffectiveCores != fl.CoresPerDaemon*fl.Daemons || fl.EffectiveCores > cl.Cores {
			t.Errorf("fleet %d core accounting wrong: %+v", fl.Daemons, fl)
		}
		if fl.Seconds <= 0 || fl.NoShareSeconds <= 0 {
			t.Errorf("fleet %d timings not recorded: %+v", fl.Daemons, fl)
		}
		if fl.OverlaysComputed+fl.OverlayFills < uint64(len(cl.Benchmarks)) {
			t.Errorf("fleet %d: %d overlays computed + %d filled, want >= %d benchmarks",
				fl.Daemons, fl.OverlaysComputed, fl.OverlayFills, len(cl.Benchmarks))
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"extra-arg"}, &stdout, &stderr); code != 2 {
		t.Errorf("positional arg: exit code %d, want 2", code)
	}
	if code := realMain([]string{"-nonsense"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit code %d, want 2", code)
	}
}
