// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-insts N] [-warmup N] [-quick] [-j N] [-timeout D] [-keep-going] <id>|all
//
// where id is one of t1, t2, e1..e12, a1..a4 (see DESIGN.md's experiment index).
//
// "all" regenerates every experiment concurrently on a fail-soft worker
// pool: a failing experiment never aborts the rest, completed tables are
// printed in canonical order, and a final pass/fail table summarizes the
// run. The exit code is 0 only when every experiment succeeded.
//
// Exit codes: 0 success, 1 runtime error or failed experiments, 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"intervalsim/internal/experiments"
	"intervalsim/internal/version"
)

func main() { os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr)) }

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	insts := fs.Int("insts", 0, "dynamic instructions per run (default per -quick)")
	warmup := fs.Uint64("warmup", 0, "warmup instructions excluded from statistics")
	quick := fs.Bool("quick", false, "use reduced sizing for a fast smoke run")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "experiments regenerated in parallel (with \"all\")")
	keepGoing := fs.Bool("keep-going", true, "continue past failed experiments (with \"all\")")
	timeout := fs.Duration("timeout", 0, "wall-clock deadline per experiment (0 = none)")
	deterministic := fs.Bool("deterministic", false, "normalize wall-clock-derived cells (A3 speedup) so the report is byte-reproducible")
	showVersion := fs.Bool("version", false, "print the build identity and exit")
	fs.Usage = func() { usage(fs, stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, "experiments", version.String())
		return 0
	}
	if fs.NArg() != 1 {
		usage(fs, stderr)
		return 2
	}

	p := experiments.DefaultParams()
	if *quick {
		p = experiments.QuickParams()
	}
	if *insts > 0 {
		p.Insts = *insts
	}
	if *warmup > 0 {
		p.Warmup = *warmup
	}
	p.Deterministic = *deterministic

	id := strings.ToLower(fs.Arg(0))
	if id == "all" {
		return runAll(stdout, stderr, p, experiments.RunOptions{
			Jobs:      *jobs,
			Timeout:   *timeout,
			KeepGoing: *keepGoing,
		})
	}
	fn, ok := experiments.Registry()[id]
	if !ok {
		fmt.Fprintf(stderr, "experiments: unknown experiment %q\n", id)
		usage(fs, stderr)
		return 2
	}
	if err := fn(stdout, p); err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	return 0
}

// runAll regenerates every experiment fail-soft and prints the pass/fail
// table last, so an unattended run always reports how far it got.
func runAll(stdout, stderr io.Writer, p experiments.Params, opts experiments.RunOptions) int {
	outcomes, err := experiments.RunAll(context.Background(), stdout, p, opts)
	if terr := experiments.PassFailTable(stdout, outcomes, p.Deterministic); terr != nil {
		fmt.Fprintln(stderr, "experiments:", terr)
		return 1
	}
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	return 0
}

func usage(fs *flag.FlagSet, w io.Writer) {
	fmt.Fprintf(w, "usage: experiments [-insts N] [-warmup N] [-quick] [-j N] [-timeout D] [-keep-going] [-deterministic] <%s|all>\n",
		strings.Join(experiments.Order(), "|"))
	fs.PrintDefaults()
}
