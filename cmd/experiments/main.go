// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-insts N] [-warmup N] [-quick] <id>|all
//
// where id is one of t1, t2, e1..e12, a1..a3 (see DESIGN.md's experiment index).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"intervalsim/internal/experiments"
)

func main() {
	insts := flag.Int("insts", 0, "dynamic instructions per run (default per -quick)")
	warmup := flag.Uint64("warmup", 0, "warmup instructions excluded from statistics")
	quick := flag.Bool("quick", false, "use reduced sizing for a fast smoke run")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}

	p := experiments.DefaultParams()
	if *quick {
		p = experiments.QuickParams()
	}
	if *insts > 0 {
		p.Insts = *insts
	}
	if *warmup > 0 {
		p.Warmup = *warmup
	}

	id := strings.ToLower(flag.Arg(0))
	if id == "all" {
		if err := experiments.All(os.Stdout, p); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	reg := experiments.Registry()
	fn, ok := reg[id]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
		usage()
		os.Exit(2)
	}
	if err := fn(os.Stdout, p); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func usage() {
	ids := make([]string, 0)
	for id := range experiments.Registry() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprintf(os.Stderr, "usage: experiments [-insts N] [-warmup N] [-quick] <%s|all>\n",
		strings.Join(ids, "|"))
	flag.PrintDefaults()
}
