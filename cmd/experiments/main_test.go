package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestExitCodes(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain(nil, &out, &errb); code != 2 {
		t.Fatalf("no args exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Fatalf("stderr = %q", errb.String())
	}
	errb.Reset()
	if code := realMain([]string{"nonesuch"}, &out, &errb); code != 2 {
		t.Fatalf("unknown experiment exit = %d, want 2", code)
	}
	errb.Reset()
	if code := realMain([]string{"-bogus-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
}

func TestSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"t1"}, &out, &errb); code != 0 {
		t.Fatalf("t1 exit = %d (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "baseline processor configuration") {
		t.Fatalf("t1 output = %q", out.String())
	}
}
