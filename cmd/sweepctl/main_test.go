package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"intervalsim/internal/core"
	"intervalsim/internal/experiments"
	"intervalsim/internal/overlay"
	"intervalsim/internal/service"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// bootDaemon starts an in-process intervalsimd behind httptest.
func bootDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	s := service.New(service.Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return ts
}

// TestDryRunPrintsPlanWithoutDispatching: -dry-run must render the shard
// plan and exit 0 even though the named endpoints don't exist — nothing may
// be contacted.
func TestDryRunPrintsPlanWithoutDispatching(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{
		"-endpoints", "nowhere-a:9,nowhere-b:9",
		"-bench", "gzip,gcc",
		"-widths", "2", "-depths", "3", "-robs", "64,128",
		"-dry-run",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errb.String())
	}
	plan := out.String()
	if !strings.Contains(plan, "plan: 4 points, 4 batches, 2 benchmarks, 2 endpoints") {
		t.Errorf("plan summary missing:\n%s", plan)
	}
	// Workload affinity: each benchmark pinned to one node of the pair.
	if !strings.Contains(plan, "gzip") || !strings.Contains(plan, "gcc") ||
		!strings.Contains(plan, "nowhere-a:9") || !strings.Contains(plan, "nowhere-b:9") {
		t.Errorf("plan missing benches/endpoints:\n%s", plan)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                                        // no endpoints
		{"-endpoints", "a", "-bench", "doom"},     // unknown benchmark
		{"-endpoints", "a", "-mode", "oracular"},  // bad mode
		{"-endpoints", "a", "-widths", "0"},       // bad axis value
		{"-endpoints", "a", "-format", "parquet"}, // bad format
		{"-endpoints", "a", "stray-arg"},          // positional junk
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := realMain(args, &out, &errb); code != 2 {
			t.Errorf("args %q: exit = %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-version"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.HasPrefix(out.String(), "sweepctl ") {
		t.Errorf("version output %q", out.String())
	}
}

// TestDistributedSweepMatchesReference drives sweepctl end to end against
// two real daemons and byte-compares the merged CSV with a directly computed
// single-process reference.
func TestDistributedSweepMatchesReference(t *testing.T) {
	a, b := bootDaemon(t), bootDaemon(t)

	const insts, warmup = 15_000, 3_000
	var out, errb bytes.Buffer
	code := realMain([]string{
		"-endpoints", a.URL + "," + b.URL,
		"-bench", "gzip",
		"-insts", fmt.Sprint(insts), "-warmup", fmt.Sprint(warmup),
		"-widths", "2,4", "-depths", "3", "-robs", "64,128",
		"-batch", "1",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errb.String())
	}

	wc, _ := workload.SuiteConfig("gzip")
	tr, soa, err := experiments.SharedTrace(wc, insts)
	if err != nil {
		t.Fatal(err)
	}
	base := uarch.Baseline()
	ov, err := overlay.Shared.Get(soa, base.Pred, base.Mem)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	want.WriteString("width,depth,rob,ipc,avg_penalty,penalty_frontend,penalty_drain,penalty_fu,penalty_shortd,penalty_longd\n")
	for _, w := range []int{2, 4} {
		for _, r := range []int{64, 128} {
			cfg := experiments.Point(w, 3, r)
			res, err := uarch.Run(soa.Reader(), cfg, uarch.Options{
				RecordMispredicts: true, RecordLoadLevels: true, WarmupInsts: warmup, Overlay: ov,
			})
			if err != nil {
				t.Fatal(err)
			}
			dec, err := core.NewDecomposer(tr, res)
			if err != nil {
				t.Fatal(err)
			}
			m := core.Mean(dec.DecomposeAll())
			fmt.Fprintf(&want, "%d,%d,%d,%.3f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n",
				w, 3, r, res.IPC(), m.Total, m.Frontend, m.BaseILP, m.FULatency, m.ShortDMiss, m.LongDMiss)
		}
	}
	if out.String() != want.String() {
		t.Errorf("distributed CSV differs from reference:\ngot:\n%swant:\n%s", out.String(), want.String())
	}
	if !strings.Contains(errb.String(), "cluster: 4 points (4 ok, 0 failed)") {
		t.Errorf("stderr missing fleet summary:\n%s", errb.String())
	}
}

// TestNDJSONFormat: -format ndjson emits one parseable object per point,
// in canonical order, with the benchmark named on every row.
func TestNDJSONFormat(t *testing.T) {
	a := bootDaemon(t)
	var out, errb bytes.Buffer
	code := realMain([]string{
		"-endpoints", a.URL,
		"-bench", "gzip",
		"-insts", "10000", "-warmup", "2000",
		"-widths", "2,4", "-depths", "3", "-robs", "64",
		"-format", "ndjson",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("rows = %d, want 2:\n%s", len(lines), out.String())
	}
	for i, line := range lines {
		var row struct {
			Bench string  `json:"bench"`
			Seq   int     `json:"seq"`
			Width int     `json:"width"`
			IPC   float64 `json:"ipc"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if row.Bench != "gzip" || row.Seq != i || row.IPC <= 0 {
			t.Errorf("line %d = %+v, want gzip seq %d with positive ipc", i, row, i)
		}
	}
}
