// Command sweepctl orchestrates a design-space sweep across a fleet of
// intervalsimd daemons. It shards the grid into workload-keyed batches (so
// each daemon's trace and overlay caches stay hot), dispatches them over
// HTTP with health checks, retry with backoff, and 429/Retry-After
// admission pushback, steals work from slow or dead nodes, and streams the
// merged results in canonical sweep order — for a single benchmark,
// byte-identical to running cmd/sweep on one machine.
//
// Usage:
//
//	sweepctl -endpoints host:8080,host:8081 [-bench crafty,gcc] [-mode sim|model]
//	         [-insts N] [-warmup N] [-widths 2,4,8] [-depths 3,7,11] [-robs 64,128,256]
//	         [-batch N] [-timeout D] [-retries N] [-keep-going] [-steal-after D]
//	         [-format csv|ndjson] [-dry-run] > sweep.csv
//
// -dry-run prints the shard plan — which batches would go to which endpoint
// — without dispatching anything. The end-of-sweep fleet summary (per-node
// throughput, dispatch latency quantiles, cache hit rates) goes to stderr.
//
// Exit codes: 0 success, 1 runtime error or failed points, 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"intervalsim/internal/bpred"
	"intervalsim/internal/cluster"
	"intervalsim/internal/version"
	"intervalsim/internal/vpred"
	"intervalsim/internal/workload"
)

func main() { os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr)) }

// splitList parses a comma-separated list, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// splitInts parses a comma-separated list of positive integers.
func splitInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad axis value %q (want positive integers)", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweepctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	endpoints := fs.String("endpoints", "", "comma-separated intervalsimd endpoints (host:port or URL)")
	bench := fs.String("bench", "crafty", "comma-separated benchmarks to sweep")
	mode := fs.String("mode", "sim", "engine per grid point: sim (cycle-level) or model (analytic interval model)")
	insts := fs.Int("insts", 1_000_000, "dynamic instructions per point")
	warmup := fs.Uint64("warmup", 200_000, "warmup instructions per point")
	pred := fs.String("pred", "", "branch predictor preset for every grid point (e.g. tage, 2bc-gskew; empty = baseline tournament)")
	vpredName := fs.String("vpred", "", "value predictor preset for every grid point (e.g. last-value, stride, fcm; empty = no value speculation)")
	fetchRate := fs.Float64("fetchrate", 0, "fetch rate after low-confidence branches, in (0, 1] (0 = full rate)")
	widths := fs.String("widths", "2,4,8", "dispatch-width axis")
	depths := fs.String("depths", "3,7,11", "frontend-depth axis")
	robs := fs.String("robs", "64,128,256", "ROB-size axis")
	batch := fs.Int("batch", 0, "design points per dispatched shard (0 = auto)")
	timeout := fs.Duration("timeout", 0, "wall-clock deadline per design point on the daemon (0 = none)")
	retries := fs.Int("retries", 1, "dispatch retries per batch per node before handing it back to the fleet")
	keepGoing := fs.Bool("keep-going", true, "continue past failed design points (successful rows are always emitted)")
	stealAfter := fs.Duration("steal-after", 5*time.Second, "steal a batch from a node after it has been in flight this long")
	ringReplicas := fs.Int("ring-replicas", 0, "consistent-hash virtual nodes per endpoint (0 = default 64)")
	peerFill := fs.Bool("peer-fill", true, "advertise the fleet to each daemon so they fill trace/overlay caches from peers")
	format := fs.String("format", "csv", "output format: csv (cmd/sweep-compatible) or ndjson (raw values)")
	dryRun := fs.Bool("dry-run", false, "print the shard plan and ring assignment without dispatching")
	showVersion := fs.Bool("version", false, "print the build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, "sweepctl", version.String())
		return 0
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "sweepctl: unexpected arguments %q\n", fs.Args())
		return 2
	}

	eps := splitList(*endpoints)
	if len(eps) == 0 {
		fmt.Fprintln(stderr, "sweepctl: -endpoints is required (comma-separated daemon addresses)")
		return 2
	}
	benches := splitList(*bench)
	if len(benches) == 0 {
		fmt.Fprintln(stderr, "sweepctl: -bench names no benchmarks")
		return 2
	}
	for _, b := range benches {
		if _, ok := workload.SuiteConfig(b); !ok {
			fmt.Fprintf(stderr, "sweepctl: unknown benchmark %q\n", b)
			return 2
		}
	}
	if *mode != "sim" && *mode != "model" {
		fmt.Fprintf(stderr, "sweepctl: unknown mode %q (want sim or model)\n", *mode)
		return 2
	}
	if *format != "csv" && *format != "ndjson" {
		fmt.Fprintf(stderr, "sweepctl: unknown format %q (want csv or ndjson)\n", *format)
		return 2
	}
	if *ringReplicas < 0 {
		fmt.Fprintf(stderr, "sweepctl: bad -ring-replicas %d (want a positive count, or 0 for the default)\n", *ringReplicas)
		return 2
	}
	if *pred != "" {
		if _, ok := bpred.Preset(*pred); !ok {
			fmt.Fprintf(stderr, "sweepctl: unknown predictor preset %q (want one of %s)\n",
				*pred, strings.Join(bpred.PresetNames(), ", "))
			return 2
		}
	}
	if *vpredName != "" {
		if _, ok := vpred.Preset(*vpredName); !ok {
			fmt.Fprintf(stderr, "sweepctl: unknown value predictor preset %q (want one of %s)\n",
				*vpredName, strings.Join(vpred.PresetNames(), ", "))
			return 2
		}
	}
	if *fetchRate < 0 || *fetchRate > 1 {
		fmt.Fprintf(stderr, "sweepctl: -fetchrate %v outside (0, 1]\n", *fetchRate)
		return 2
	}
	ws, err := splitInts(*widths)
	if err == nil && len(ws) == 0 {
		err = fmt.Errorf("empty -widths")
	}
	var ds, rs []int
	if err == nil {
		ds, err = splitInts(*depths)
		if err == nil && len(ds) == 0 {
			err = fmt.Errorf("empty -depths")
		}
	}
	if err == nil {
		rs, err = splitInts(*robs)
		if err == nil && len(rs) == 0 {
			err = fmt.Errorf("empty -robs")
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, "sweepctl:", err)
		return 2
	}

	if *dryRun {
		// Hash the same normalized base URLs the live run hashes, so the
		// printed ring assignment matches what a real dispatch would do.
		bases := make([]string, len(eps))
		for i, e := range eps {
			bases[i] = cluster.NewClient(e).Base
		}
		plan, err := cluster.BuildPlan(bases, benches, ws, ds, rs, *batch, *ringReplicas)
		if err != nil {
			fmt.Fprintln(stderr, "sweepctl:", err)
			return 1
		}
		plan.Fprint(stdout)
		plan.FprintRing(stdout)
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := cluster.Options{
		Endpoints:       eps,
		Benches:         benches,
		Widths:          ws,
		Depths:          ds,
		ROBs:            rs,
		Mode:            *mode,
		Insts:           *insts,
		Warmup:          *warmup,
		Pred:            *pred,
		VPred:           *vpredName,
		FetchRate:       *fetchRate,
		BatchSize:       *batch,
		PointTimeout:    *timeout,
		Retries:         *retries,
		KeepGoing:       *keepGoing,
		StealAfter:      *stealAfter,
		RingReplicas:    *ringReplicas,
		DisablePeerFill: !*peerFill,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	}

	var (
		emit   func(*cluster.Row) error
		finish func() error
	)
	switch *format {
	case "csv":
		sink := cluster.NewCSVSink(stdout, *mode, len(benches) > 1)
		emit, finish = sink.Emit, sink.Finish
	case "ndjson":
		sink := cluster.NewNDJSONSink(stdout)
		emit, finish = sink.Emit, func() error { return nil }
	}

	stats, runErr := cluster.Run(ctx, opts, emit)
	if stats != nil {
		if err := finish(); err != nil && runErr == nil {
			runErr = err
		}
		stats.FprintSummary(stderr)
	}
	if runErr != nil {
		fmt.Fprintln(stderr, "sweepctl:", runErr)
		return 1
	}
	return 0
}
