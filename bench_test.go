// Benchmark harness: one testing.B benchmark per table/figure of the paper
// (the E*/T* experiment index in DESIGN.md), plus microbenchmarks for the
// substrates. Each experiment benchmark performs one full regeneration of
// its table per iteration at reduced sizing; run
//
//	go test -bench=. -benchmem
//
// for the whole set, or e.g. -bench=BenchmarkE5Decomposition for one. The
// full-size tables in EXPERIMENTS.md come from cmd/experiments.
package intervalsim_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"intervalsim/internal/bpred"
	"intervalsim/internal/cache"
	"intervalsim/internal/core"
	"intervalsim/internal/experiments"
	"intervalsim/internal/ilp"
	"intervalsim/internal/overlay"
	"intervalsim/internal/predictability"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/vpred"
	"intervalsim/internal/workload"
)

// benchParams keeps one iteration of an experiment benchmark around a
// second, so the full -bench=. sweep stays tractable.
func benchParams() experiments.Params { return experiments.QuickParams() }

func runExperiment(b *testing.B, fn func(io.Writer, experiments.Params) error) {
	b.Helper()
	p := benchParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT2Characterization(b *testing.B) { runExperiment(b, experiments.T2) }
func BenchmarkE1IntervalTimeline(b *testing.B) { runExperiment(b, experiments.E1) }
func BenchmarkE2IntervalLengths(b *testing.B)  { runExperiment(b, experiments.E2) }
func BenchmarkE3AvgPenalty(b *testing.B)       { runExperiment(b, experiments.E3) }
func BenchmarkE4PenaltyVsInterval(b *testing.B) {
	runExperiment(b, experiments.E4)
}
func BenchmarkE5Decomposition(b *testing.B)   { runExperiment(b, experiments.E5) }
func BenchmarkE6ILPSweep(b *testing.B)        { runExperiment(b, experiments.E6) }
func BenchmarkE7FULatency(b *testing.B)       { runExperiment(b, experiments.E7) }
func BenchmarkE8ShortDMiss(b *testing.B)      { runExperiment(b, experiments.E8) }
func BenchmarkE9ModelValidation(b *testing.B) { runExperiment(b, experiments.E9) }
func BenchmarkE10DepthROB(b *testing.B)       { runExperiment(b, experiments.E10) }

// --- Substrate microbenchmarks ------------------------------------------

// BenchmarkSimulator measures raw cycle-level simulation speed on a mixed
// workload; the metric that bounds every experiment above. It exercises the
// struct-of-arrays fast path (trace packed once, reused every iteration —
// exactly how sweeps run many configurations over one trace).
func BenchmarkSimulator(b *testing.B) {
	wc, _ := workload.SuiteConfig("crafty")
	tr, err := trace.ReadAll(workload.MustNew(wc, 200_000))
	if err != nil {
		b.Fatal(err)
	}
	soa := trace.Pack(tr)
	cfg := uarch.Baseline()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := uarch.Run(soa.Reader(), cfg, uarch.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Insts)*float64(b.N), "insts")
		}
	}
	b.ReportMetric(float64(soa.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkSimulatorGeneric measures the same run through the generic
// streaming Reader path (live dependence tracking), the fallback for
// sampled runs and arbitrary readers.
func BenchmarkSimulatorGeneric(b *testing.B) {
	wc, _ := workload.SuiteConfig("crafty")
	tr, err := trace.ReadAll(workload.MustNew(wc, 200_000))
	if err != nil {
		b.Fatal(err)
	}
	cfg := uarch.Baseline()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uarch.Run(tr.Reader(), cfg, uarch.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkSimulatorReplay measures the overlay-replay fast path: identical
// cycle-level results to BenchmarkSimulator, with branch-predictor and
// I-cache outcomes replayed from a precomputed miss-event overlay instead
// of simulated live — how every point after the first runs in a
// timing-parameter sweep.
func BenchmarkSimulatorReplay(b *testing.B) {
	wc, _ := workload.SuiteConfig("crafty")
	tr, err := trace.ReadAll(workload.MustNew(wc, 200_000))
	if err != nil {
		b.Fatal(err)
	}
	soa := trace.Pack(tr)
	cfg := uarch.Baseline()
	ov, err := overlay.Compute(soa, cfg.Pred, cfg.Mem)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := uarch.Run(soa.Reader(), cfg, uarch.Options{Overlay: ov})
		if err != nil {
			b.Fatal(err)
		}
		if res.Path != "soa+overlay" {
			b.Fatalf("not replaying: path %q (%s)", res.Path, res.Fallback)
		}
	}
	b.ReportMetric(float64(soa.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkSimulatorLockstep measures SimulateMany advancing four ROB
// configurations over one shared packed trace, each simulator stepped one
// cycle per round. The reported Minst/s is aggregate (trace length × K per
// iteration): the number to compare against K separate BenchmarkSimulator
// runs, since all K simulators touch the same resident trace window instead
// of streaming the trace K times.
func BenchmarkSimulatorLockstep(b *testing.B) {
	wc, _ := workload.SuiteConfig("crafty")
	soa, err := trace.PackReader(workload.MustNew(wc, 200_000))
	if err != nil {
		b.Fatal(err)
	}
	var cfgs []uarch.Config
	for _, rob := range []int{32, 64, 128, 256} {
		cfg := uarch.Baseline()
		cfg.Name = fmt.Sprintf("lockstep-r%d", rob)
		cfg.ROBSize = rob
		cfg.IQSize = rob / 2
		cfgs = append(cfgs, cfg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uarch.SimulateMany(context.Background(), soa, nil, cfgs, uarch.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(soa.Len())*float64(len(cfgs))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkSampledSweep measures a small depth×ROB sweep run in sampled mode
// (systematic detailed/fast-forward alternation with functional warming) —
// the per-point cost that buys a confidence interval instead of an exact
// cycle count. Points/s is the sweep-throughput headline; compare against
// BenchmarkSimulator for the full-run cost the sampling avoids.
func BenchmarkSampledSweep(b *testing.B) {
	wc, _ := workload.SuiteConfig("crafty")
	soa, err := trace.PackReader(workload.MustNew(wc, 200_000))
	if err != nil {
		b.Fatal(err)
	}
	var cfgs []uarch.Config
	for _, depth := range []int{3, 7} {
		for _, rob := range []int{64, 128} {
			cfg := uarch.Baseline()
			cfg.Name = fmt.Sprintf("sampled-d%d-r%d", depth, rob)
			cfg.FrontendDepth = depth
			cfg.ROBSize = rob
			cfg.IQSize = rob / 2
			cfgs = append(cfgs, cfg)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			res, err := uarch.Run(soa.Reader(), cfg, uarch.Options{
				SampleStartSkip: 20_000,
				SampleDetailed:  2_000,
				SampleSkip:      18_000,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Sample == nil || res.Sample.Units == 0 {
				b.Fatal("sampled run produced no sampling stats")
			}
		}
	}
	b.ReportMetric(float64(len(cfgs))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkOverlayCompute measures the one-time pre-pass that records
// speculation outcomes for a (trace, predictor, cache geometry) key —
// amortized across every timing configuration that replays it.
func BenchmarkOverlayCompute(b *testing.B) {
	wc, _ := workload.SuiteConfig("crafty")
	soa, err := trace.PackReader(workload.MustNew(wc, 200_000))
	if err != nil {
		b.Fatal(err)
	}
	cfg := uarch.Baseline()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := overlay.Compute(soa, cfg.Pred, cfg.Mem); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(soa.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkModelSweep measures an entire analytic depth×ROB sweep — overlay
// pre-pass, shared ILP characteristics, and nine model evaluations — the
// end-to-end unit of work `sweep -mode model` performs per benchmark.
func BenchmarkModelSweep(b *testing.B) {
	wc, _ := workload.SuiteConfig("crafty")
	const insts = 200_000
	soa, err := trace.PackReader(workload.MustNew(wc, insts))
	if err != nil {
		b.Fatal(err)
	}
	base := uarch.Baseline()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ov, err := overlay.Compute(soa, base.Pred, base.Mem)
		if err != nil {
			b.Fatal(err)
		}
		set, err := core.NewModelSet(soa, ov, base, 256, 0, insts)
		if err != nil {
			b.Fatal(err)
		}
		for _, depth := range []int{3, 7, 11} {
			for _, rob := range []int{64, 128, 256} {
				cfg := base
				cfg.FrontendDepth, cfg.ROBSize, cfg.IQSize = depth, rob, rob/2
				m, prof, err := set.For(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.PredictCPI(prof); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportMetric(9*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkTracePack measures the one-time cost of packing a trace into the
// struct-of-arrays layout (amortized across every configuration that reuses
// the packed trace).
func BenchmarkTracePack(b *testing.B) {
	wc, _ := workload.SuiteConfig("crafty")
	tr, err := trace.ReadAll(workload.MustNew(wc, 200_000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if trace.Pack(tr).Len() != tr.Len() {
			b.Fatal("bad pack")
		}
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkFunctionalProfile measures the fast model-input path.
func BenchmarkFunctionalProfile(b *testing.B) {
	wc, _ := workload.SuiteConfig("crafty")
	tr, err := trace.ReadAll(workload.MustNew(wc, 200_000))
	if err != nil {
		b.Fatal(err)
	}
	cfg := uarch.Baseline()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FunctionalProfile(tr.Reader(), cfg, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

func BenchmarkGenerator(b *testing.B) {
	wc, _ := workload.SuiteConfig("gcc")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := workload.MustNew(wc, 100_000)
		for {
			if _, err := g.Next(); err != nil {
				break
			}
		}
	}
	b.ReportMetric(100_000*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

func BenchmarkTraceEncodeDecode(b *testing.B) {
	wc, _ := workload.SuiteConfig("gzip")
	tr, err := trace.ReadAll(workload.MustNew(wc, 100_000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf discardCounter
		if err := trace.Write(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

type discardCounter struct{ n int64 }

func (d *discardCounter) Write(p []byte) (int, error) {
	d.n += int64(len(p))
	return len(p), nil
}

func BenchmarkGShare(b *testing.B) {
	g := bpred.NewGShare(16384, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Access(uint64(0x1000+(i%512)*4), i%3 != 0)
	}
}

func BenchmarkTAGE(b *testing.B) {
	p := bpred.NewTAGE(1024, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Access(uint64(0x1000+(i%512)*4), i%3 != 0)
	}
}

func Benchmark2BcGskew(b *testing.B) {
	p := bpred.NewGSkew(8192, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Access(uint64(0x1000+(i%512)*4), i%3 != 0)
	}
}

// BenchmarkPredictability times one full per-branch statistics pass — the
// three-predictor drive, taxon classification, and summaries — over a
// packed crafty trace.
func BenchmarkPredictability(b *testing.B) {
	wc, _ := workload.SuiteConfig("crafty")
	soa, err := trace.PackReader(workload.MustNew(wc, 100_000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prof, err := predictability.Collect(soa, predictability.Options{Warmup: 20_000})
		if err != nil {
			b.Fatal(err)
		}
		prof.Summaries()
	}
	b.ReportMetric(100_000*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(cache.Config{Name: "b", Size: 64 << 10, LineSize: 64, Ways: 4, Repl: cache.LRU})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%4096) * 64)
	}
}

func BenchmarkCriticalPath(b *testing.B) {
	wc, _ := workload.SuiteConfig("crafty")
	tr, err := trace.ReadAll(workload.MustNew(wc, 4096))
	if err != nil {
		b.Fatal(err)
	}
	window := tr.Insts[:128]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ilp.CriticalPathTo(window, ilp.UnitLatency)
	}
}

func BenchmarkE11CPIStacks(b *testing.B)        { runExperiment(b, experiments.E11) }
func BenchmarkA1ModelAblation(b *testing.B)     { runExperiment(b, experiments.A1) }
func BenchmarkA2PredictorSweep(b *testing.B)    { runExperiment(b, experiments.A2) }
func BenchmarkE12Predication(b *testing.B)      { runExperiment(b, experiments.E12) }
func BenchmarkA3SampledSimulation(b *testing.B) { runExperiment(b, experiments.A3) }
func BenchmarkA4SampledCI(b *testing.B)         { runExperiment(b, experiments.A4) }
func BenchmarkB1PredictorShootout(b *testing.B) { runExperiment(b, experiments.B1) }
func BenchmarkB2PredictabilityTaxa(b *testing.B) {
	runExperiment(b, experiments.B2)
}
func BenchmarkC1ValuePrediction(b *testing.B) { runExperiment(b, experiments.C1) }
func BenchmarkC2FetchThrottle(b *testing.B)   { runExperiment(b, experiments.C2) }

// BenchmarkVPred times the raw value-prediction unit on a cyclic PC stream:
// the per-access cost every eligible instruction pays in a value-speculating
// overlay pre-pass or live run.
func BenchmarkVPred(b *testing.B) {
	cfg, _ := vpred.Preset("stride")
	cfg.Stream = vpred.DefaultStream()
	r, err := vpred.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Access(uint64(0x1000 + (i%512)*4))
	}
}

// BenchmarkFetchRate measures the cycle-level simulator with value
// prediction and fetch throttling both enabled — the full value-speculation
// slow path against plain BenchmarkSimulator.
func BenchmarkFetchRate(b *testing.B) {
	wc, _ := workload.SuiteConfig("crafty")
	soa, err := trace.PackReader(workload.MustNew(wc, 200_000))
	if err != nil {
		b.Fatal(err)
	}
	cfg := uarch.Baseline()
	vp, _ := vpred.Preset("stride")
	vp.Stream = wc.ValueStream()
	cfg.VPred = &vp
	cfg.FetchRate = 0.5
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uarch.Run(soa.Reader(), cfg, uarch.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(soa.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}
