// Quickstart: generate a synthetic benchmark, run it through the cycle-level
// simulator, and print the headline result of the paper — the average branch
// misprediction penalty is a multiple of the frontend pipeline length.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"intervalsim/internal/core"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

func main() {
	// A benchmark from the built-in suite (a synthetic stand-in for SPEC
	// CPU2000 gcc: large code footprint, mixed branch behaviour).
	wc, ok := workload.SuiteConfig("gcc")
	if !ok {
		log.Fatal("benchmark not found")
	}
	tr, err := trace.ReadAll(workload.MustNew(wc, 500_000))
	if err != nil {
		log.Fatal(err)
	}

	// The paper's 4-wide baseline processor with a 5-stage frontend.
	cfg := uarch.Baseline()
	res, err := uarch.Run(tr.Reader(), cfg, uarch.Options{
		RecordEvents:      true,
		RecordMispredicts: true,
		WarmupInsts:       100_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark        : %s (%d instructions measured)\n", wc.Name, res.Insts)
	fmt.Printf("IPC              : %.2f\n", res.IPC())
	fmt.Printf("mispredictions   : %d (%.1f MPKI)\n",
		res.Mispredicts, float64(res.Mispredicts)/float64(res.Insts)*1000)

	// Interval analysis: execution as a sequence of inter-miss intervals.
	intervals, err := core.Segment(res.Events, uint64(tr.Len()))
	if err != nil {
		log.Fatal(err)
	}
	sum := core.Summarize(intervals, 16)
	fmt.Printf("intervals        : %d, mean length %.0f instructions\n",
		sum.Count, sum.Lengths.Mean())

	// The headline: the misprediction penalty is far larger than the
	// frontend pipeline length it is usually equated with.
	penalty := res.AvgMispredictPenalty()
	fmt.Printf("frontend depth   : %d cycles\n", cfg.FrontendDepth)
	fmt.Printf("avg penalty      : %.1f cycles  (%.1f× the frontend depth)\n",
		penalty, penalty/float64(cfg.FrontendDepth))
}
