// Pipeline depth sweep: measure the average misprediction penalty while
// sweeping the frontend pipeline depth, and compare with the analytic
// interval model's prediction — contributor (i) is additive, and the rest of
// the penalty (the window drain) is independent of the depth.
//
// Run with:
//
//	go run ./examples/pipelinedepth
package main

import (
	"fmt"
	"log"
	"os"

	"intervalsim/internal/core"
	"intervalsim/internal/report"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

func main() {
	wc, ok := workload.SuiteConfig("crafty")
	if !ok {
		log.Fatal("benchmark not found")
	}
	tr, err := trace.ReadAll(workload.MustNew(wc, 400_000))
	if err != nil {
		log.Fatal(err)
	}

	t := report.New("misprediction penalty vs frontend pipeline depth (crafty)",
		"depth", "measured penalty", "model penalty", "measured - depth")
	for _, depth := range []int{3, 5, 8, 11, 14} {
		cfg := uarch.Baseline()
		cfg.FrontendDepth = depth

		res, err := uarch.Run(tr.Reader(), cfg, uarch.Options{
			RecordMispredicts: true,
			WarmupInsts:       100_000,
		})
		if err != nil {
			log.Fatal(err)
		}

		// The analytic side needs only a functional profile (predictor +
		// caches, no timing) and the program's ILP characteristic.
		prof, err := core.FunctionalProfile(tr.Reader(), cfg, 100_000, 0)
		if err != nil {
			log.Fatal(err)
		}
		model, err := core.BuildModel(func() trace.Reader { return tr.Reader() },
			cfg, prof.ShortMissRatio(), tr.Len())
		if err != nil {
			log.Fatal(err)
		}
		ivs, err := core.Segment(prof.Events, prof.Insts)
		if err != nil {
			log.Fatal(err)
		}
		var modelPen, n float64
		for _, iv := range ivs {
			if !iv.Final && iv.Kind == uarch.EvBranchMispredict {
				modelPen += model.MispredictPenalty(iv.Len() - 1)
				n++
			}
		}
		if n > 0 {
			modelPen /= n
		}

		measured := res.AvgMispredictPenalty()
		t.AddRow(fmt.Sprintf("%d", depth),
			fmt.Sprintf("%.1f", measured),
			fmt.Sprintf("%.1f", modelPen),
			fmt.Sprintf("%.1f", measured-float64(depth)),
		)
	}
	if err := t.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe last column is nearly constant: the frontend contributes exactly its")
	fmt.Println("depth, and everything above it is window drain — which a deeper pipeline")
	fmt.Println("does not change. Equating the penalty with the pipeline length therefore")
	fmt.Println("underestimates it by that constant, exactly the paper's point.")
}
