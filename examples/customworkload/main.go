// Custom workload and custom machine: build your own synthetic program and
// processor configuration instead of using the built-in suite and baseline.
// This example constructs a branchy, low-ILP workload, runs it on a narrow
// deep-pipeline machine and on a wide shallow one, and compares where the
// misprediction penalty comes from on each.
//
// Run with:
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"
	"os"

	"intervalsim/internal/cache"
	"intervalsim/internal/core"
	"intervalsim/internal/report"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

func main() {
	// A hand-rolled workload: hard-to-predict branches on long dependence
	// chains, with a data set that lives comfortably in the L2.
	wl := workload.Config{
		Name: "branchy", Seed: 2026,
		Regions: 12, BlocksPerRegion: 12,
		BlockSize: workload.Range{Min: 4, Max: 8},
		LoopTrip:  workload.Range{Min: 6, Max: 24}, RegionTheta: 0.7,
		LoadFrac: 0.25, StoreFrac: 0.10, MulFrac: 0.03, DivFrac: 0.003,
		ChainProb:        0.7,
		RandomBranchFrac: 0.25, RandomBranchBias: 0.5,
		PatternBranchFrac: 0.10, TakenBias: 0.92,
		DataFootprint: 256 << 10, StrideFrac: 0.3, Locality: 1.2,
	}
	if err := wl.Validate(); err != nil {
		log.Fatal(err)
	}
	tr, err := trace.ReadAll(workload.MustNew(wl, 400_000))
	if err != nil {
		log.Fatal(err)
	}

	// Two machines built from scratch rather than from Baseline().
	narrowDeep := machine("narrow-deep", 2, 14, 64)
	wideShallow := machine("wide-shallow", 6, 4, 192)

	t := report.New("one workload, two machines",
		"machine", "IPC", "avg penalty", "frontend", "drain+FU+D$", "residual")
	for _, cfg := range []uarch.Config{narrowDeep, wideShallow} {
		res, err := uarch.Run(tr.Reader(), cfg, uarch.Options{
			RecordEvents:      true,
			RecordMispredicts: true,
			RecordLoadLevels:  true,
			WarmupInsts:       100_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		dec, err := core.NewDecomposer(tr, res)
		if err != nil {
			log.Fatal(err)
		}
		m := core.Mean(dec.DecomposeAll())
		t.AddRow(cfg.Name,
			fmt.Sprintf("%.2f", res.IPC()),
			fmt.Sprintf("%.1f", m.Total),
			fmt.Sprintf("%.1f", m.Frontend),
			fmt.Sprintf("%.1f", m.BaseILP+m.FULatency+m.ShortDMiss+m.LongDMiss),
			fmt.Sprintf("%.1f", m.Residual),
		)
	}
	if err := t.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOn the deep narrow machine the refill dominates; on the wide shallow one")
	fmt.Println("the same program pays mostly window drain — the five contributors shift")
	fmt.Println("with the design, which is why a single 'pipeline length' number misleads.")
}

// machine builds a processor configuration from scratch: width-wide,
// depth-stage frontend, rob-entry window, with FU counts scaled to width.
func machine(name string, width, depth, rob int) uarch.Config {
	return uarch.Config{
		Name:          name,
		FetchWidth:    width,
		DispatchWidth: width,
		IssueWidth:    width,
		CommitWidth:   width,
		FrontendDepth: depth,
		ROBSize:       rob,
		IQSize:        rob / 2,
		FU: uarch.FUs{
			IntALU:  uarch.FUPool{Count: width, Latency: 1, Pipelined: true},
			IntMul:  uarch.FUPool{Count: 2, Latency: 3, Pipelined: true},
			IntDiv:  uarch.FUPool{Count: 1, Latency: 20, Pipelined: false},
			FPAdd:   uarch.FUPool{Count: 2, Latency: 2, Pipelined: true},
			FPMul:   uarch.FUPool{Count: 1, Latency: 4, Pipelined: true},
			FPDiv:   uarch.FUPool{Count: 1, Latency: 12, Pipelined: false},
			MemPort: uarch.FUPool{Count: 2, Latency: 1, Pipelined: true},
		},
		Pred: uarch.PredictorSpec{Kind: "gshare", Entries: 8192, HistBits: 11, BTBEntries: 2048},
		Mem: cache.HierarchyConfig{
			L1I: cache.Config{Name: "L1I", Size: 32 << 10, LineSize: 64, Ways: 2, Repl: cache.LRU},
			L1D: cache.Config{Name: "L1D", Size: 32 << 10, LineSize: 64, Ways: 4, Repl: cache.LRU},
			L2:  cache.Config{Name: "L2", Size: 512 << 10, LineSize: 64, Ways: 8, Repl: cache.LRU},
			Lat: cache.Latencies{L1: 2, L2: 10, Mem: 200},
		},
	}
}
