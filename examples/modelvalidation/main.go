// Model validation walkthrough: build the analytic interval model for one
// benchmark — functional profile (no timing), ILP characteristics, penalty
// model — then compare its CPI stack against the cycle-level simulator.
// This is the paper's methodology end to end in one file.
//
// Run with:
//
//	go run ./examples/modelvalidation
package main

import (
	"fmt"
	"log"

	"intervalsim/internal/core"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

func main() {
	const (
		insts  = 600_000
		warmup = 150_000
	)
	wc, ok := workload.SuiteConfig("parser")
	if !ok {
		log.Fatal("benchmark not found")
	}
	cfg := uarch.Baseline()
	tr, err := trace.ReadAll(workload.MustNew(wc, insts))
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 — fast functional profile: drive only the branch predictor and
	// the caches over the trace to collect the miss-event population.
	prof, err := core.FunctionalProfile(tr.Reader(), cfg, warmup, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional profile: %d mispredicts, %d I$ misses, %d long D-misses (%d serial)\n",
		prof.Mispredicts, prof.ICacheMisses, prof.LongDMisses, prof.LongSerial)

	// Step 2 — ILP characteristics: critical-path statistics of the program
	// under unit and machine latencies, plus the branch-resolution curve.
	model, err := core.BuildModel(func() trace.Reader { return tr.Reader() },
		cfg, prof.ShortMissRatio(), insts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ILP characteristic: K(%d) = %.1f (unit), beta = %.2f\n",
		cfg.ROBSize, model.KUnit.EvalInterp(cfg.ROBSize), model.KUnit.Beta)
	fmt.Printf("penalty model: P(8) = %.1f, P(64) = %.1f, P(saturated) = %.1f cycles\n",
		model.MispredictPenalty(8), model.MispredictPenalty(64),
		model.MispredictPenalty(uint64(cfg.ROBSize)))

	// Step 3 — predict the cycle stack analytically (no timing simulation).
	pred, err := model.PredictCPI(prof)
	if err != nil {
		log.Fatal(err)
	}

	// Step 4 — the expensive ground truth: cycle-level simulation.
	res, err := uarch.Run(tr.Reader(), cfg, uarch.Options{WarmupInsts: warmup})
	if err != nil {
		log.Fatal(err)
	}
	relErr, err := core.ValidationError(pred, res)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("model cycle stack  : base %.0f + bpred %.0f + I$ %.0f + longD %.0f = %.0f cycles\n",
		pred.Base, pred.Bpred, pred.ICache, pred.LongData, pred.Total())
	fmt.Printf("model CPI          : %.3f\n", pred.CPI())
	fmt.Printf("simulated CPI      : %.3f\n", res.CPI())
	fmt.Printf("model error        : %+.1f%%\n", relErr*100)
	fmt.Println("\nThe model used only in-order functional simulation plus dependence")
	fmt.Println("statistics — no cycle-level timing — which is the point of interval")
	fmt.Println("analysis: understanding (and predicting) where the cycles go.")
}
