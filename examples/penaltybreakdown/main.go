// Penalty breakdown: decompose every measured branch misprediction penalty
// into the paper's five contributors, side by side for a compute-bound
// program (gzip) and a memory-bound pointer chaser (mcf).
//
// Run with:
//
//	go run ./examples/penaltybreakdown
package main

import (
	"fmt"
	"log"
	"os"

	"intervalsim/internal/core"
	"intervalsim/internal/report"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

func main() {
	cfg := uarch.Baseline()
	t := report.New("mean misprediction penalty decomposition (cycles)",
		"benchmark", "frontend", "drain(ILP)", "FU lat", "short D$", "long D$", "residual", "total", "occupancy")
	for _, name := range []string{"gzip", "mcf"} {
		wc, ok := workload.SuiteConfig(name)
		if !ok {
			log.Fatalf("benchmark %s not found", name)
		}
		tr, err := trace.ReadAll(workload.MustNew(wc, 400_000))
		if err != nil {
			log.Fatal(err)
		}
		res, err := uarch.Run(tr.Reader(), cfg, uarch.Options{
			RecordEvents:      true,
			RecordMispredicts: true,
			RecordLoadLevels:  true, // required by the decomposer
			WarmupInsts:       100_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		dec, err := core.NewDecomposer(tr, res)
		if err != nil {
			log.Fatal(err)
		}
		m := core.Mean(dec.DecomposeAll())
		t.AddRow(name,
			fmt.Sprintf("%.1f", m.Frontend),
			fmt.Sprintf("%.1f", m.BaseILP),
			fmt.Sprintf("%.1f", m.FULatency),
			fmt.Sprintf("%.1f", m.ShortDMiss),
			fmt.Sprintf("%.1f", m.LongDMiss),
			fmt.Sprintf("%.1f", m.Residual),
			fmt.Sprintf("%.1f", m.Total),
			fmt.Sprintf("%d", m.Occupancy),
		)
	}
	if err := t.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading the table: gzip resolves branches off short ALU chains, so its")
	fmt.Println("penalty is refill + a small drain; mcf's branches wait on pointer-chase")
	fmt.Println("loads that miss to memory, so the long-D$ overlap dominates — the same")
	fmt.Println("misprediction costs an order of magnitude more on a memory-bound program.")
}
