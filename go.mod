module intervalsim

go 1.22
