package ilp

import (
	"io"
	"testing"

	"intervalsim/internal/isa"
)

func TestScheduledResolutionEmptyAndWidth(t *testing.T) {
	if ScheduledResolution(nil, UnitLatency, 4) != 0 {
		t.Error("empty window should resolve in 0")
	}
	// Non-positive width treated as 1.
	in := []isa.Inst{alu(isa.NoReg, 8)}
	if got := ScheduledResolution(in, UnitLatency, 0); got != 2 {
		t.Errorf("single inst at width 0 = %v, want 2 (dispatch 0, issue 1, done 2)", got)
	}
}

func TestScheduledResolutionIndependentLastInst(t *testing.T) {
	// The final instruction is independent: it dispatches at 0, issues at 1,
	// completes at 1+lat regardless of how much older work is in the window.
	window := make([]isa.Inst, 64)
	for i := range window {
		window[i] = alu(8, 8) // long serial chain
	}
	window[63] = alu(isa.NoReg, 30)
	if got := ScheduledResolution(window, UnitLatency, 4); got != 2 {
		t.Errorf("independent branch resolution = %v, want 2", got)
	}
}

func TestScheduledResolutionCreditsOldWork(t *testing.T) {
	// A chain of 8 unit-latency ops ending at the "branch": the raw critical
	// path to it is 8, but the older links dispatched earlier and already
	// executed, so the scheduled resolution is much smaller.
	window := make([]isa.Inst, 8)
	for i := range window {
		window[i] = alu(8, 8)
	}
	raw := CriticalPathTo(window, UnitLatency)
	sched := ScheduledResolution(window, UnitLatency, 4)
	if raw != 8 {
		t.Fatalf("raw = %v", raw)
	}
	if sched >= raw {
		t.Errorf("scheduled (%v) not below raw critical path (%v)", sched, raw)
	}
	if sched < 2 {
		t.Errorf("scheduled = %v, below the minimum dispatch→complete time", sched)
	}
}

func TestScheduledResolutionChainDominatesWhenSteep(t *testing.T) {
	// With 20-cycle ops, the chain grows faster than dispatch retires it:
	// the resolution approaches the raw weighted path.
	lat20 := func(_ int, _ *isa.Inst) float64 { return 20 }
	window := make([]isa.Inst, 6)
	for i := range window {
		window[i] = alu(8, 8)
	}
	raw := CriticalPathTo(window, lat20)
	sched := ScheduledResolution(window, lat20, 4)
	if sched < raw-10 {
		t.Errorf("scheduled %v far below raw %v despite steep chain", sched, raw)
	}
}

func TestScheduledResolutionNeverNegative(t *testing.T) {
	// A huge window of independent work that completed long ago still
	// reports a non-negative resolution.
	window := make([]isa.Inst, 256)
	for i := range window {
		window[i] = alu(isa.NoReg, int8(8+i%32))
	}
	if got := ScheduledResolution(window, UnitLatency, 8); got < 0 {
		t.Errorf("negative resolution %v", got)
	}
}

func TestProfileResolutionSaturates(t *testing.T) {
	// Programs whose branches test short block-local chains: the resolution
	// characteristic must flatten while the whole-window K keeps rising.
	tr := branchyTrace(11, 60_000)
	windows := []int{2, 4, 8, 16, 32, 64, 128}
	res, err := ProfileResolution(tr.Reader(), windows, UnitLatency, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Profile(tr.Reader(), windows, UnitLatency, 0)
	if err != nil {
		t.Fatal(err)
	}
	last := len(windows) - 1
	growRes := res.K[last] - res.K[2]
	growFull := full.K[last] - full.K[2]
	if growRes > growFull/2 {
		t.Errorf("resolution characteristic grows like the full window: %+.2f vs %+.2f", growRes, growFull)
	}
	for i := 1; i < len(res.K); i++ {
		if res.K[i]+1e-9 < res.K[i-1] {
			t.Errorf("resolution K not monotone at window %d: %v < %v", windows[i], res.K[i], res.K[i-1])
		}
	}
}

func TestProfileResolutionSampling(t *testing.T) {
	tr := branchyTrace(13, 30_000)
	windows := []int{4, 16, 64}
	all, err := ProfileResolution(tr.Reader(), windows, UnitLatency, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := ProfileResolution(tr.Reader(), windows, UnitLatency, 4, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range windows {
		if all.K[i] == 0 || sampled.K[i] == 0 {
			t.Fatalf("empty characteristic at window %d", windows[i])
		}
		diff := all.K[i] - sampled.K[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > all.K[i]*0.25 {
			t.Errorf("sampling shifted K(%d) by %.2f (from %.2f)", windows[i], diff, all.K[i])
		}
	}
}

func TestProfileResolutionValidation(t *testing.T) {
	tr := branchyTrace(17, 1000)
	if _, err := ProfileResolution(tr.Reader(), nil, UnitLatency, 4, 0, 1); err == nil {
		t.Error("empty windows accepted")
	}
	if _, err := ProfileResolution(tr.Reader(), []int{8, 4}, UnitLatency, 4, 0, 1); err == nil {
		t.Error("descending windows accepted")
	}
}

// branchyTrace builds blocks of chained ALU work ending in a branch that
// tests the block's chain result.
func branchyTrace(seed uint64, n int) *traceWrap {
	t := &traceWrap{}
	pc := uint64(0x1000)
	for len(t.insts) < n {
		chain := int8(8 + len(t.insts)%16)
		for k := 0; k < 6; k++ {
			t.insts = append(t.insts, alu(chain, chain))
			pc += 4
		}
		t.insts = append(t.insts, isa.Inst{
			PC: pc, Class: isa.Branch, Src1: chain, Src2: isa.NoReg, Dst: isa.NoReg,
			Target: 0x1000, Taken: len(t.insts)%3 != 0,
		})
		pc += 4
	}
	return t
}

// traceWrap is a minimal in-package stand-in for trace.Trace to avoid the
// import in this focused test file.
type traceWrap struct{ insts []isa.Inst }

func (t *traceWrap) Reader() *wrapReader { return &wrapReader{insts: t.insts} }

type wrapReader struct {
	insts []isa.Inst
	pos   int
}

func (r *wrapReader) Next() (isa.Inst, error) {
	if r.pos >= len(r.insts) {
		return isa.Inst{}, errEOF
	}
	in := r.insts[r.pos]
	r.pos++
	return in, nil
}

var errEOF = io.EOF
