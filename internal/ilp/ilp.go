// Package ilp analyzes the inherent instruction-level parallelism of a
// dynamic instruction stream through dependence-graph critical paths.
//
// Two of the paper's five misprediction-penalty contributors live here:
// the inherent ILP of the program (the unit-latency critical path of the
// instructions in the window when a mispredicted branch enters it) and the
// amplification of that path by functional-unit and short-miss latencies.
// The package also measures the program's ILP characteristic K(w) — the
// mean critical path over windows of w instructions — with the power-law
// fit K(w) ≈ (w/α)^(1/β) used by first-order superscalar models, which the
// analytic interval model in package core consumes.
package ilp

import (
	"fmt"
	"io"
	"math"

	"intervalsim/internal/isa"
	"intervalsim/internal/trace"
)

// LatencyFunc assigns an execution latency (in cycles) to an instruction;
// idx is the instruction's position within the slice being analyzed, letting
// callers key latencies off side tables (e.g. observed per-load cache
// levels). Fractional values are allowed so expected-value latencies (e.g.
// an average short-miss uplift on loads) can be modeled.
type LatencyFunc func(idx int, in *isa.Inst) float64

// UnitLatency treats every instruction as single-cycle: the latency function
// of the paper's "inherent ILP" contributor.
func UnitLatency(int, *isa.Inst) float64 { return 1 }

// CriticalPath returns the longest dependence chain through insts under lat,
// honoring register read-after-write dependences and store→load forwarding
// on exact word addresses. An empty slice yields 0.
func CriticalPath(insts []isa.Inst, lat LatencyFunc) float64 {
	_, max := pathDepths(insts, lat)
	return max
}

// CriticalPathTo returns the length of the longest dependence chain ending
// at the last instruction of insts — the resolution time of a branch sitting
// at the end of the window. An empty slice yields 0.
func CriticalPathTo(insts []isa.Inst, lat LatencyFunc) float64 {
	depths, _ := pathDepths(insts, lat)
	if len(depths) == 0 {
		return 0
	}
	return depths[len(depths)-1]
}

// pathDepths returns, for each instruction, the earliest completion time of
// its dependence chain (its "depth"), plus the maximum depth.
func pathDepths(insts []isa.Inst, lat LatencyFunc) ([]float64, float64) {
	if len(insts) == 0 {
		return nil, 0
	}
	depths := make([]float64, len(insts))
	var regDepth [isa.NumRegs]float64
	storeDepth := make(map[uint64]float64)
	var maxDepth float64
	for i := range insts {
		in := &insts[i]
		var ready float64
		if r := in.Src1; r != isa.NoReg && regDepth[r] > ready {
			ready = regDepth[r]
		}
		if r := in.Src2; r != isa.NoReg && regDepth[r] > ready {
			ready = regDepth[r]
		}
		if in.Class == isa.Load {
			if d, ok := storeDepth[in.Addr/8]; ok && d > ready {
				ready = d
			}
		}
		d := ready + lat(i, in)
		depths[i] = d
		if d > maxDepth {
			maxDepth = d
		}
		if in.Dst != isa.NoReg {
			regDepth[in.Dst] = d
		}
		if in.Class == isa.Store {
			storeDepth[in.Addr/8] = d
		}
	}
	return depths, maxDepth
}

// Characteristic is a program's ILP profile: the mean unit-latency critical
// path K(w) over windows of w consecutive instructions, together with the
// power-law fit K(w) ≈ (w/Alpha)^(1/Beta). Beta ≈ 2 corresponds to the
// square-root ILP scaling of classic first-order models; larger Beta means
// more parallelism.
type Characteristic struct {
	Windows []int     // window sizes profiled, ascending
	K       []float64 // mean critical path per window size
	Alpha   float64
	Beta    float64
}

// IPC returns the steady-state ILP limit w/K(w) for window size w using the
// fitted model.
func (c Characteristic) IPC(w int) float64 {
	k := c.Eval(w)
	if k <= 0 {
		return 0
	}
	return float64(w) / k
}

// Eval returns the fitted K(w).
func (c Characteristic) Eval(w int) float64 {
	if w <= 0 {
		return 0
	}
	if c.Alpha <= 0 || c.Beta <= 0 {
		return float64(w) // degenerate fit: fully serial
	}
	return math.Pow(float64(w)/c.Alpha, 1/c.Beta)
}

// EvalInterp returns K(w) by piecewise-linear interpolation of the measured
// points, extrapolating with the power-law fit outside the profiled range.
func (c Characteristic) EvalInterp(w int) float64 {
	if len(c.Windows) == 0 {
		return c.Eval(w)
	}
	if w <= c.Windows[0] || w > c.Windows[len(c.Windows)-1] {
		if w == c.Windows[0] {
			return c.K[0]
		}
		return c.Eval(w)
	}
	for i := 1; i < len(c.Windows); i++ {
		if w <= c.Windows[i] {
			w0, w1 := float64(c.Windows[i-1]), float64(c.Windows[i])
			f := (float64(w) - w0) / (w1 - w0)
			return c.K[i-1]*(1-f) + c.K[i]*f
		}
	}
	return c.K[len(c.K)-1]
}

// Profile measures the ILP characteristic of the stream from r under lat.
// It computes critical paths over non-overlapping windows of each size in
// windows (which must be positive and ascending) across at most maxInsts
// instructions (0 = the whole stream).
func Profile(r trace.Reader, windows []int, lat LatencyFunc, maxInsts int) (Characteristic, error) {
	if len(windows) == 0 {
		return Characteristic{}, fmt.Errorf("ilp: no window sizes given")
	}
	for i, w := range windows {
		if w <= 0 || (i > 0 && w <= windows[i-1]) {
			return Characteristic{}, fmt.Errorf("ilp: window sizes must be positive and ascending")
		}
	}
	largest := windows[len(windows)-1]
	buf := make([]isa.Inst, 0, largest)
	sums := make([]float64, len(windows))
	counts := make([]int, len(windows))
	total := 0
	flush := func() {
		if len(buf) == 0 {
			return
		}
		for i, w := range windows {
			// Chop the buffer into non-overlapping windows of size w.
			for off := 0; off+w <= len(buf); off += w {
				sums[i] += CriticalPath(buf[off:off+w], lat)
				counts[i]++
			}
		}
		buf = buf[:0]
	}
	for maxInsts <= 0 || total < maxInsts {
		in, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Characteristic{}, err
		}
		buf = append(buf, in)
		total++
		if len(buf) == largest {
			flush()
		}
	}
	flush()
	c := Characteristic{Windows: append([]int(nil), windows...), K: make([]float64, len(windows))}
	for i := range windows {
		if counts[i] > 0 {
			c.K[i] = sums[i] / float64(counts[i])
		}
	}
	c.fit()
	return c, nil
}

// fit performs a least-squares power-law fit of the measured (w, K) points
// in log space: log K = (1/β) log w − (1/β) log α.
func (c *Characteristic) fit() {
	var n float64
	var sx, sy, sxx, sxy float64
	for i, w := range c.Windows {
		if c.K[i] <= 0 {
			continue
		}
		x, y := math.Log(float64(w)), math.Log(c.K[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 2 {
		return
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	if slope <= 0 {
		return
	}
	c.Beta = 1 / slope
	c.Alpha = math.Exp(-intercept / slope)
}

// DefaultWindows is the window-size ladder used by the experiments: powers
// of two through a 256-entry window.
func DefaultWindows() []int {
	return []int{2, 4, 8, 16, 32, 64, 128, 256}
}

// ScheduledResolution estimates the resolution time of the last instruction
// of insts (a branch) on a machine dispatching width instructions per cycle,
// with unlimited functional units. Instruction i dispatches at cycle
// (i+1-n)·/width relative to the branch (which dispatches at cycle 0),
// issues no earlier than one cycle after dispatch and when its producers
// complete, and completes lat(i) cycles later. Unlike a raw critical path,
// this credits older window contents with the execution time they already
// had before the branch arrived — which is why measured branch resolution
// saturates well below the whole-window critical path.
func ScheduledResolution(insts []isa.Inst, lat LatencyFunc, width int) float64 {
	n := len(insts)
	if n == 0 {
		return 0
	}
	if width <= 0 {
		width = 1
	}
	completion := make([]float64, n)
	var regDone [isa.NumRegs]float64
	for i := range regDone {
		regDone[i] = negInf
	}
	storeDone := make(map[uint64]float64)
	for i := range insts {
		in := &insts[i]
		issue := float64(i+1-n)/float64(width) + 1
		if r := in.Src1; r != isa.NoReg && regDone[r] > issue {
			issue = regDone[r]
		}
		if r := in.Src2; r != isa.NoReg && regDone[r] > issue {
			issue = regDone[r]
		}
		if in.Class == isa.Load {
			if d, ok := storeDone[in.Addr/8]; ok && d > issue {
				issue = d
			}
		}
		done := issue + lat(i, in)
		completion[i] = done
		if in.Dst != isa.NoReg {
			regDone[in.Dst] = done
		}
		if in.Class == isa.Store {
			storeDone[in.Addr/8] = done
		}
	}
	res := completion[n-1]
	if res < 0 {
		return 0
	}
	return res
}

const negInf = float64(-1 << 40)

// ProfileResolution measures the branch-resolution characteristic: for each
// window size w, the mean ScheduledResolution of a conditional branch over
// the w instructions leading up to and including it, on a width-wide
// machine. This is the drain curve a mispredicted branch actually sees — it
// saturates once w exceeds the typical depth of the chains feeding branches,
// unlike the whole-window characteristic which keeps growing. Branches are
// sampled (every sample-th) to bound cost; sample <= 0 means every branch.
func ProfileResolution(r trace.Reader, windows []int, lat LatencyFunc, width, maxInsts, sample int) (Characteristic, error) {
	if len(windows) == 0 {
		return Characteristic{}, fmt.Errorf("ilp: no window sizes given")
	}
	for i, w := range windows {
		if w <= 0 || (i > 0 && w <= windows[i-1]) {
			return Characteristic{}, fmt.Errorf("ilp: window sizes must be positive and ascending")
		}
	}
	if sample <= 0 {
		sample = 1
	}
	largest := windows[len(windows)-1]
	buf := make([]isa.Inst, 0, 2*largest)
	sums := make([]float64, len(windows))
	counts := make([]int, len(windows))
	total, branchSeen := 0, 0
	for maxInsts <= 0 || total < maxInsts {
		in, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Characteristic{}, err
		}
		if len(buf) == 2*largest {
			copy(buf, buf[largest:])
			buf = buf[:largest]
		}
		buf = append(buf, in)
		total++
		if in.Class != isa.Branch {
			continue
		}
		branchSeen++
		if branchSeen%sample != 0 {
			continue
		}
		for i, w := range windows {
			lo := len(buf) - w
			if lo < 0 {
				continue
			}
			sums[i] += ScheduledResolution(buf[lo:], lat, width)
			counts[i]++
		}
	}
	c := Characteristic{Windows: append([]int(nil), windows...), K: make([]float64, len(windows))}
	for i := range windows {
		if counts[i] > 0 {
			c.K[i] = sums[i] / float64(counts[i])
		}
	}
	c.fit()
	return c, nil
}
