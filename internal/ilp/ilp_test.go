package ilp

import (
	"math"
	"testing"
	"testing/quick"

	"intervalsim/internal/isa"
	"intervalsim/internal/rng"
	"intervalsim/internal/trace"
)

func alu(src, dst int8) isa.Inst {
	return isa.Inst{Class: isa.IntALU, Src1: src, Src2: isa.NoReg, Dst: dst}
}

func TestCriticalPathEmpty(t *testing.T) {
	if CriticalPath(nil, UnitLatency) != 0 || CriticalPathTo(nil, UnitLatency) != 0 {
		t.Fatal("empty window should have zero critical path")
	}
}

func TestCriticalPathSerialChain(t *testing.T) {
	// r8 = f(r8) × 10: fully serial.
	insts := make([]isa.Inst, 10)
	for i := range insts {
		insts[i] = alu(8, 8)
	}
	if got := CriticalPath(insts, UnitLatency); got != 10 {
		t.Errorf("serial chain CP = %v, want 10", got)
	}
	if got := CriticalPathTo(insts, UnitLatency); got != 10 {
		t.Errorf("serial chain CPTo = %v, want 10", got)
	}
}

func TestCriticalPathIndependent(t *testing.T) {
	insts := make([]isa.Inst, 10)
	for i := range insts {
		insts[i] = alu(isa.NoReg, int8(8+i))
	}
	if got := CriticalPath(insts, UnitLatency); got != 1 {
		t.Errorf("independent CP = %v, want 1", got)
	}
}

func TestCriticalPathToVersusMax(t *testing.T) {
	// A long chain into r8 plus a final independent instruction: the window
	// max is the chain, but the path TO the last instruction is 1.
	insts := []isa.Inst{alu(8, 8), alu(8, 8), alu(8, 8), alu(isa.NoReg, 20)}
	if got := CriticalPath(insts, UnitLatency); got != 3 {
		t.Errorf("CP = %v, want 3", got)
	}
	if got := CriticalPathTo(insts, UnitLatency); got != 1 {
		t.Errorf("CPTo = %v, want 1", got)
	}
	// If the last instruction reads the chain, it extends it.
	insts[3] = alu(8, 20)
	if got := CriticalPathTo(insts, UnitLatency); got != 4 {
		t.Errorf("CPTo with dependence = %v, want 4", got)
	}
}

func TestCriticalPathLatencies(t *testing.T) {
	lat := func(_ int, in *isa.Inst) float64 {
		if in.Class == isa.IntMul {
			return 3
		}
		return 1
	}
	insts := []isa.Inst{
		{Class: isa.IntMul, Src1: 8, Src2: isa.NoReg, Dst: 8},
		{Class: isa.IntMul, Src1: 8, Src2: isa.NoReg, Dst: 8},
		alu(8, 9),
	}
	if got := CriticalPathTo(insts, lat); got != 7 {
		t.Errorf("latency-weighted CPTo = %v, want 7", got)
	}
}

func TestCriticalPathMemoryDependence(t *testing.T) {
	st := isa.Inst{Class: isa.Store, Src1: 1, Src2: 8, Addr: 0x1000}
	ld := isa.Inst{Class: isa.Load, Src1: 1, Src2: isa.NoReg, Dst: 9, Addr: 0x1000}
	use := alu(9, 10)
	chain := []isa.Inst{alu(8, 8), alu(8, 8), st, ld, use}
	// 2 (chain) + 1 (store) + 1 (load) + 1 (use) = 5 through memory.
	if got := CriticalPathTo(chain, UnitLatency); got != 5 {
		t.Errorf("store→load chain CPTo = %v, want 5", got)
	}
	// Different address: no memory dependence, use path = load(1)+use(1) = 2.
	chain[3].Addr = 0x2000
	if got := CriticalPathTo(chain, UnitLatency); got != 2 {
		t.Errorf("no-alias CPTo = %v, want 2", got)
	}
}

func TestCriticalPathIndexPassedThrough(t *testing.T) {
	seen := map[int]bool{}
	lat := func(i int, _ *isa.Inst) float64 {
		seen[i] = true
		return 1
	}
	CriticalPath([]isa.Inst{alu(8, 8), alu(8, 8), alu(8, 8)}, lat)
	if len(seen) != 3 || !seen[0] || !seen[2] {
		t.Errorf("indices seen: %v", seen)
	}
}

// Property: critical path is monotone in latency and bounded by
// sum-of-latencies and below by max latency.
func TestCriticalPathBoundsProperty(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%40) + 1
		s := rng.New(seed)
		insts := make([]isa.Inst, n)
		for i := range insts {
			var src int8 = isa.NoReg
			if s.Bool(0.5) && i > 0 {
				src = insts[i-1].Dst
			}
			insts[i] = alu(src, int8(8+s.Intn(16)))
		}
		cp1 := CriticalPath(insts, UnitLatency)
		cp2 := CriticalPath(insts, func(_ int, _ *isa.Inst) float64 { return 2 })
		if cp2 != 2*cp1 {
			return false // uniform scaling must scale the path
		}
		return cp1 >= 1 && cp1 <= float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// chainTrace emits a stream where each instruction depends on the previous
// with probability p.
func chainTrace(seed uint64, n int, p float64) *trace.Trace {
	s := rng.New(seed)
	tr := &trace.Trace{Insts: make([]isa.Inst, 0, n)}
	prev := int8(8)
	for i := 0; i < n; i++ {
		var src int8 = isa.NoReg
		if s.Bool(p) {
			src = prev
		}
		dst := int8(8 + s.Intn(32))
		tr.Insts = append(tr.Insts, alu(src, dst))
		prev = dst
	}
	return tr
}

func TestProfileValidation(t *testing.T) {
	tr := chainTrace(1, 100, 0.5)
	if _, err := Profile(tr.Reader(), nil, UnitLatency, 0); err == nil {
		t.Error("empty windows accepted")
	}
	if _, err := Profile(tr.Reader(), []int{4, 4}, UnitLatency, 0); err == nil {
		t.Error("non-ascending windows accepted")
	}
	if _, err := Profile(tr.Reader(), []int{0, 4}, UnitLatency, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestProfileKGrowsWithWindow(t *testing.T) {
	tr := chainTrace(2, 50000, 0.6)
	c, err := Profile(tr.Reader(), DefaultWindows(), UnitLatency, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(c.K); i++ {
		if c.K[i] < c.K[i-1] {
			t.Errorf("K not monotone: K[%d]=%v < K[%d]=%v", c.Windows[i], c.K[i], c.Windows[i-1], c.K[i-1])
		}
	}
	if c.Alpha <= 0 || c.Beta <= 0 {
		t.Errorf("fit failed: alpha=%v beta=%v", c.Alpha, c.Beta)
	}
}

func TestProfileSeparatesILPLevels(t *testing.T) {
	lo, err := Profile(chainTrace(3, 50000, 0.9).Reader(), DefaultWindows(), UnitLatency, 0)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Profile(chainTrace(3, 50000, 0.1).Reader(), DefaultWindows(), UnitLatency, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Low-ILP program: longer critical paths at every window size.
	for i := range lo.K {
		if lo.K[i] <= hi.K[i] {
			t.Errorf("window %d: low-ILP K %v <= high-ILP K %v", lo.Windows[i], lo.K[i], hi.K[i])
		}
	}
	if lo.IPC(128) >= hi.IPC(128) {
		t.Errorf("IPC ordering violated: %v >= %v", lo.IPC(128), hi.IPC(128))
	}
}

func TestFitRecoversPowerLaw(t *testing.T) {
	// Synthetic exact power law K = (w/2)^(1/2).
	c := Characteristic{Windows: []int{4, 16, 64, 256}}
	for _, w := range c.Windows {
		c.K = append(c.K, math.Sqrt(float64(w)/2))
	}
	c.fit()
	if math.Abs(c.Alpha-2) > 0.01 || math.Abs(c.Beta-2) > 0.01 {
		t.Errorf("fit alpha=%v beta=%v, want 2, 2", c.Alpha, c.Beta)
	}
	if got := c.Eval(100); math.Abs(got-math.Sqrt(50)) > 0.1 {
		t.Errorf("Eval(100) = %v", got)
	}
}

func TestEvalInterp(t *testing.T) {
	c := Characteristic{Windows: []int{2, 4}, K: []float64{2, 4}, Alpha: 1, Beta: 1}
	if got := c.EvalInterp(3); got != 3 {
		t.Errorf("interp(3) = %v, want 3", got)
	}
	if got := c.EvalInterp(2); got != 2 {
		t.Errorf("interp(2) = %v, want 2", got)
	}
	// Outside the profiled range: falls back to the fit (w/1)^(1/1) = w.
	if got := c.EvalInterp(10); got != 10 {
		t.Errorf("interp(10) = %v, want 10 (fit)", got)
	}
}

func TestEvalDegenerate(t *testing.T) {
	var c Characteristic
	if got := c.Eval(5); got != 5 {
		t.Errorf("degenerate Eval = %v, want fully-serial 5", got)
	}
	if c.Eval(0) != 0 || c.IPC(0) != 0 {
		t.Error("zero window should be zero")
	}
}

func TestProfileMaxInsts(t *testing.T) {
	tr := chainTrace(4, 10000, 0.5)
	c, err := Profile(tr.Reader(), []int{2, 4}, UnitLatency, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.K[0] == 0 {
		t.Error("no windows profiled within limit")
	}
}
