package cache

// Fingerprint returns a canonical stable hash of the cache geometry: size,
// line size, associativity, and replacement policy — every field that can
// change which accesses hit and which miss. Name is deliberately excluded:
// it is a report label, and two caches differing only in label behave
// identically. The serialization is explicit and tagged (field name before
// each value), so the hash is independent of struct declaration order and a
// zero-valued field cannot alias an absent one.
func (c Config) Fingerprint() uint64 {
	h := newFNV()
	c.fingerprint(h)
	return h.sum
}

func (c Config) fingerprint(h *fnv) {
	h.int("size", int64(c.Size))
	h.int("line", int64(c.LineSize))
	h.int("ways", int64(c.Ways))
	h.int("repl", int64(c.Repl))
}

// Fingerprint returns a canonical stable hash of the hit/miss behavior of
// the hierarchy: the geometry of all three caches, nothing else.
//
// The Lat field is deliberately NOT hashed. Latencies decide how many cycles
// an access costs, never which level serves it: replacement state evolves
// only from the sequence of addresses presented to each cache, which a
// latency cannot alter. Two hierarchies differing only in Lat therefore
// classify every access of any given stream identically — this is the
// timing-invariance property that lets one precomputed miss-event overlay
// (package overlay) be replayed across every timing configuration of a
// sweep. Widening the fingerprint to include Lat would silently disable
// that sharing; narrowing it below the geometry would corrupt results.
func (h HierarchyConfig) Fingerprint() uint64 {
	f := newFNV()
	f.string("l1i", "")
	h.L1I.fingerprint(f)
	f.string("l1d", "")
	h.L1D.fingerprint(f)
	f.string("l2", "")
	h.L2.fingerprint(f)
	return f.sum
}

// fnv is a minimal FNV-1a 64-bit hasher over tagged fields (see the twin in
// package bpred; duplicated to keep the two leaf packages dependency-free).
type fnv struct{ sum uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func newFNV() *fnv { return &fnv{sum: fnvOffset} }

func (h *fnv) byte(b byte) {
	h.sum ^= uint64(b)
	h.sum *= fnvPrime
}

func (h *fnv) string(tag, s string) {
	for i := 0; i < len(tag); i++ {
		h.byte(tag[i])
	}
	h.byte('=')
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
	h.byte(';')
}

func (h *fnv) int(tag string, v int64) {
	for i := 0; i < len(tag); i++ {
		h.byte(tag[i])
	}
	h.byte('=')
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
	h.byte(';')
}
