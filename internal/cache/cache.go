// Package cache implements the memory-hierarchy substrate: a generic
// set-associative cache with LRU or random replacement, and a two-level
// hierarchy (split L1 instruction/data caches in front of a unified L2)
// that classifies every access into the latency classes interval analysis
// cares about: L1 hit, short miss (L1 miss that hits in L2), and long miss
// (all the way to memory).
//
// The model is timing-only: no data is stored, writes allocate like reads,
// and write-back traffic is not modeled — none of it affects the latency
// classes that drive the penalty model.
package cache

import (
	"fmt"

	"intervalsim/internal/rng"
)

// Replacement selects the victim policy of a cache.
type Replacement uint8

// Replacement policies.
const (
	LRU Replacement = iota
	Random
)

// String returns the policy name.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Replacement(%d)", uint8(r))
	}
}

// Config describes one cache.
type Config struct {
	Name     string      // label for reports, e.g. "L1D"
	Size     int         // total capacity in bytes
	LineSize int         // bytes per line (power of two)
	Ways     int         // associativity
	Repl     Replacement // victim policy
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.Size / (c.LineSize * c.Ways) }

// Validate reports the first configuration error, if any.
func (c Config) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %q: non-positive size/line/ways", c.Name)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineSize)
	}
	sets := c.Sets()
	if sets <= 0 || c.Size != sets*c.LineSize*c.Ways {
		return fmt.Errorf("cache %q: size %d not divisible into %d-way sets of %dB lines",
			c.Name, c.Size, c.Ways, c.LineSize)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// String summarizes the geometry, e.g. "L1D 64KB/4-way/64B LRU".
func (c Config) String() string {
	return fmt.Sprintf("%s %dKB/%d-way/%dB %v", c.Name, c.Size/1024, c.Ways, c.LineSize, c.Repl)
}

// Stats counts accesses and misses of one cache.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRatio returns misses/accesses, or 0 before any access.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg      Config
	tags     []uint64 // sets × ways, tag per line
	valid    []bool
	stamps   []uint64 // LRU timestamps
	clock    uint64
	setShift uint
	setMask  uint64
	rand     *rng.Source
	Stats    Stats
}

// New builds a cache from cfg; it panics on invalid geometry (configurations
// are programmer input, not runtime data).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	n := cfg.Sets() * cfg.Ways
	return &Cache{
		cfg:      cfg,
		tags:     make([]uint64, n),
		valid:    make([]bool, n),
		stamps:   make([]uint64, n),
		setShift: shift,
		setMask:  uint64(cfg.Sets() - 1),
		rand:     rng.New(0x9d9e0a7c0f2b3d41),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access looks up the line containing addr, allocating it on a miss, and
// reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	c.Stats.Accesses++
	line := addr >> c.setShift
	set := int(line & c.setMask)
	base := set * c.cfg.Ways
	// Hit path.
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.stamps[i] = c.clock
			return true
		}
	}
	// Miss: fill an invalid way or evict per policy.
	c.Stats.Misses++
	victim := base
	switch c.cfg.Repl {
	case Random:
		found := false
		for w := 0; w < c.cfg.Ways; w++ {
			if !c.valid[base+w] {
				victim, found = base+w, true
				break
			}
		}
		if !found {
			victim = base + c.rand.Intn(c.cfg.Ways)
		}
	default: // LRU; invalid ways have stamp 0 and lose automatically
		oldest := c.stamps[base]
		for w := 1; w < c.cfg.Ways; w++ {
			if c.stamps[base+w] < oldest {
				oldest = c.stamps[base+w]
				victim = base + w
			}
		}
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.stamps[victim] = c.clock
	return false
}

// Probe looks up the line containing addr, refreshing its recency on a hit,
// but does not allocate on a miss and does not touch the statistics. It
// models accesses a real machine would abandon rather than fill for — e.g.
// wrong-path fetches past the first memory miss.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.setShift
	base := int(line&c.setMask) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.clock++
			c.stamps[i] = c.clock
			return true
		}
	}
	return false
}

// Contains reports whether the line holding addr is currently resident,
// without touching replacement state. Intended for tests and inspection.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.setShift
	base := int(line&c.setMask) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// Flush invalidates every line and resets statistics.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
		c.stamps[i] = 0
	}
	c.clock = 0
	c.Stats = Stats{}
}

// Level classifies where an access was satisfied.
type Level uint8

// Access outcome levels, ordered by distance from the core.
const (
	L1Hit     Level = iota // satisfied by the first-level cache
	ShortMiss              // L1 miss, L2 hit — the paper's "short (L1) D-cache miss"
	LongMiss               // L2 miss, served from memory
)

// String names the level.
func (l Level) String() string {
	switch l {
	case L1Hit:
		return "L1-hit"
	case ShortMiss:
		return "short-miss"
	case LongMiss:
		return "long-miss"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// Latencies holds the load-to-use latency of each hierarchy level, in cycles.
type Latencies struct {
	L1  int // L1 hit
	L2  int // L1 miss, L2 hit
	Mem int // full memory access
}

// HierarchyConfig describes the full memory hierarchy.
type HierarchyConfig struct {
	L1I Config
	L1D Config
	L2  Config
	Lat Latencies
}

// Validate reports the first configuration error, if any.
func (h HierarchyConfig) Validate() error {
	for _, c := range []Config{h.L1I, h.L1D, h.L2} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	if h.Lat.L1 <= 0 || h.Lat.L2 <= h.Lat.L1 || h.Lat.Mem <= h.Lat.L2 {
		return fmt.Errorf("cache: latencies must satisfy 0 < L1 < L2 < Mem, got %+v", h.Lat)
	}
	return nil
}

// Hierarchy is a split-L1, unified-L2 memory hierarchy.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	Lat Latencies
}

// NewHierarchy builds the hierarchy; it panics on invalid configuration.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Hierarchy{
		L1I: New(cfg.L1I),
		L1D: New(cfg.L1D),
		L2:  New(cfg.L2),
		Lat: cfg.Lat,
	}
}

// Data performs a data access at addr and returns its latency class and
// latency in cycles. Stores time like loads (allocate on write).
func (h *Hierarchy) Data(addr uint64) (Level, int) {
	if h.L1D.Access(addr) {
		return L1Hit, h.Lat.L1
	}
	if h.L2.Access(addr) {
		return ShortMiss, h.Lat.L2
	}
	return LongMiss, h.Lat.Mem
}

// Fetch performs an instruction fetch at pc and returns its latency class
// and latency in cycles.
func (h *Hierarchy) Fetch(pc uint64) (Level, int) {
	if h.L1I.Access(pc) {
		return L1Hit, h.Lat.L1
	}
	if h.L2.Access(pc) {
		return ShortMiss, h.Lat.L2
	}
	return LongMiss, h.Lat.Mem
}

// FetchWrongPath performs a wrong-path instruction fetch at pc: an L1I hit
// refreshes recency; an L1I miss that probes into the L2 fills the L1I (the
// fill beats any realistic branch resolution); an L2 miss is abandoned with
// nothing allocated (a frontend does not chase memory for a path it will
// squash). Returns the level that would have served the access.
func (h *Hierarchy) FetchWrongPath(pc uint64) Level {
	if h.L1I.Probe(pc) {
		return L1Hit
	}
	if h.L2.Probe(pc) {
		h.L1I.Access(pc) // fill into L1I
		return ShortMiss
	}
	return LongMiss
}

// LineSizeI returns the I-side line size in bytes, used by fetch units to
// detect line crossings.
func (h *Hierarchy) LineSizeI() int { return h.L1I.cfg.LineSize }
