package cache

import (
	"strings"
	"testing"
	"testing/quick"

	"intervalsim/internal/rng"
)

func small(name string, size, ways int) Config {
	return Config{Name: name, Size: size, LineSize: 64, Ways: ways, Repl: LRU}
}

func TestConfigValidate(t *testing.T) {
	good := small("L1", 4096, 2)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if got := good.Sets(); got != 32 {
		t.Errorf("Sets() = %d, want 32", got)
	}
	bad := []Config{
		{Name: "z", Size: 0, LineSize: 64, Ways: 1},
		{Name: "z", Size: 4096, LineSize: 0, Ways: 1},
		{Name: "z", Size: 4096, LineSize: 64, Ways: 0},
		{Name: "z", Size: 4096, LineSize: 48, Ways: 1},       // line not pow2
		{Name: "z", Size: 4000, LineSize: 64, Ways: 2},       // not divisible
		{Name: "z", Size: 64 * 3 * 2, LineSize: 64, Ways: 2}, // sets=3 not pow2
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestConfigString(t *testing.T) {
	s := small("L1D", 65536, 4).String()
	for _, want := range []string{"L1D", "64KB", "4-way", "64B", "LRU"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if !strings.Contains((Config{Repl: Random}).String(), "random") {
		t.Error("random policy not named")
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted invalid config")
		}
	}()
	New(Config{Name: "bad", Size: 100, LineSize: 64, Ways: 1})
}

func TestColdMissThenHit(t *testing.T) {
	c := New(small("t", 4096, 2))
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("warm access missed")
	}
	if !c.Access(0x103f) { // same 64B line
		t.Error("same-line access missed")
	}
	if c.Access(0x1040) { // next line
		t.Error("next-line access hit cold")
	}
	if c.Stats.Accesses != 4 || c.Stats.Misses != 2 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache: touch three conflicting lines; the least recently used
	// must be the one evicted.
	c := New(small("t", 4096, 2))
	sets := uint64(c.Config().Sets())
	stride := sets * 64 // same set, different tag
	a, b, d := uint64(0x10000), uint64(0x10000)+stride, uint64(0x10000)+2*stride
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU, b is LRU
	c.Access(d) // evicts b
	if !c.Contains(a) {
		t.Error("a evicted; expected b")
	}
	if c.Contains(b) {
		t.Error("b still resident")
	}
	if !c.Contains(d) {
		t.Error("d not resident")
	}
}

func TestFlush(t *testing.T) {
	c := New(small("t", 4096, 2))
	c.Access(0x1000)
	c.Flush()
	if c.Contains(0x1000) {
		t.Error("flush left line resident")
	}
	if c.Stats.Accesses != 0 {
		t.Error("flush did not reset stats")
	}
}

func TestRandomReplacementFillsInvalidFirst(t *testing.T) {
	cfg := small("t", 4096, 4)
	cfg.Repl = Random
	c := New(cfg)
	stride := uint64(c.Config().Sets()) * 64
	// Four conflicting lines fit in 4 ways without eviction even randomly.
	for i := uint64(0); i < 4; i++ {
		c.Access(0x2000 + i*stride)
	}
	for i := uint64(0); i < 4; i++ {
		if !c.Contains(0x2000 + i*stride) {
			t.Errorf("line %d evicted with free ways available", i)
		}
	}
	// A fifth line must evict exactly one.
	c.Access(0x2000 + 4*stride)
	resident := 0
	for i := uint64(0); i <= 4; i++ {
		if c.Contains(0x2000 + i*stride) {
			resident++
		}
	}
	if resident != 4 {
		t.Errorf("%d lines resident, want 4", resident)
	}
}

// LRU set-wise inclusion: with identical sets, every hit in a w-way LRU
// cache is also a hit in a 2w-way LRU cache over any access stream.
func TestLRUInclusionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		smallC := New(Config{Name: "s", Size: 16 * 64 * 2, LineSize: 64, Ways: 2, Repl: LRU})
		bigC := New(Config{Name: "b", Size: 16 * 64 * 4, LineSize: 64, Ways: 4, Repl: LRU})
		s := rng.New(seed)
		for i := 0; i < 3000; i++ {
			addr := uint64(s.Intn(256)) * 64 // 256 lines over 16 sets
			hitSmall := smallC.Access(addr)
			hitBig := bigC.Access(addr)
			if hitSmall && !hitBig {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Working set smaller than capacity must converge to ~100% hits.
func TestCapacityBehaviour(t *testing.T) {
	c := New(small("t", 64*64, 4)) // 64 lines
	s := rng.New(7)
	// 32 distinct lines, repeatedly accessed: after warmup, all hits.
	for i := 0; i < 1000; i++ {
		c.Access(uint64(s.Intn(32)) * 64)
	}
	c.Stats = Stats{}
	for i := 0; i < 1000; i++ {
		if !c.Access(uint64(s.Intn(32)) * 64) {
			t.Fatal("miss within cached working set")
		}
	}
	// Working set 4x capacity with uniform random access: plenty of misses.
	c2 := New(small("t2", 64*64, 4))
	for i := 0; i < 4000; i++ {
		c2.Access(uint64(s.Intn(256)) * 64)
	}
	if c2.Stats.MissRatio() < 0.5 {
		t.Errorf("thrashing miss ratio = %.2f, want > 0.5", c2.Stats.MissRatio())
	}
}

func TestMissRatio(t *testing.T) {
	if (Stats{}).MissRatio() != 0 {
		t.Error("empty stats miss ratio should be 0")
	}
	s := Stats{Accesses: 4, Misses: 1}
	if s.MissRatio() != 0.25 {
		t.Errorf("miss ratio = %v", s.MissRatio())
	}
}

func baseHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1I: Config{Name: "L1I", Size: 4 * 1024, LineSize: 64, Ways: 2, Repl: LRU},
		L1D: Config{Name: "L1D", Size: 4 * 1024, LineSize: 64, Ways: 4, Repl: LRU},
		L2:  Config{Name: "L2", Size: 64 * 1024, LineSize: 64, Ways: 8, Repl: LRU},
		Lat: Latencies{L1: 3, L2: 12, Mem: 250},
	}
}

func TestHierarchyValidate(t *testing.T) {
	if err := baseHierarchy().Validate(); err != nil {
		t.Fatalf("valid hierarchy rejected: %v", err)
	}
	h := baseHierarchy()
	h.Lat = Latencies{L1: 5, L2: 3, Mem: 100}
	if err := h.Validate(); err == nil {
		t.Error("inverted latencies accepted")
	}
	h = baseHierarchy()
	h.L1D.Size = 100
	if err := h.Validate(); err == nil {
		t.Error("bad L1D accepted")
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(baseHierarchy())
	lvl, lat := h.Data(0x10000)
	if lvl != LongMiss || lat != 250 {
		t.Errorf("cold access: %v/%d, want long-miss/250", lvl, lat)
	}
	lvl, lat = h.Data(0x10000)
	if lvl != L1Hit || lat != 3 {
		t.Errorf("warm access: %v/%d, want L1-hit/3", lvl, lat)
	}
	// Evict from tiny L1D (64 sets? 4KB/64B/4 = 16 sets) but keep in L2.
	stride := uint64(h.L1D.Config().Sets()) * 64
	for i := uint64(1); i <= 8; i++ {
		h.Data(0x10000 + i*stride)
	}
	lvl, lat = h.Data(0x10000)
	if lvl != ShortMiss || lat != 12 {
		t.Errorf("L1-evicted access: %v/%d, want short-miss/12", lvl, lat)
	}
}

func TestHierarchyFetchSeparateFromData(t *testing.T) {
	h := NewHierarchy(baseHierarchy())
	h.Data(0x40000) // fills L1D and L2
	lvl, _ := h.Fetch(0x40000)
	if lvl == L1Hit {
		t.Error("fetch hit in L1I after only a data access")
	}
	if lvl != ShortMiss {
		t.Errorf("fetch should have hit L2: %v", lvl)
	}
	lvl, _ = h.Fetch(0x40000)
	if lvl != L1Hit {
		t.Errorf("second fetch: %v, want L1 hit", lvl)
	}
}

func TestLevelString(t *testing.T) {
	if L1Hit.String() != "L1-hit" || ShortMiss.String() != "short-miss" || LongMiss.String() != "long-miss" {
		t.Error("level names wrong")
	}
	if !strings.Contains(Level(9).String(), "9") {
		t.Error("unknown level not numbered")
	}
}

func TestLineSizeI(t *testing.T) {
	h := NewHierarchy(baseHierarchy())
	if h.LineSizeI() != 64 {
		t.Errorf("LineSizeI = %d", h.LineSizeI())
	}
}

func TestHierarchyDeterminism(t *testing.T) {
	run := func() (Stats, Stats, Stats) {
		h := NewHierarchy(baseHierarchy())
		s := rng.New(123)
		for i := 0; i < 5000; i++ {
			h.Data(uint64(s.Intn(4096)) * 64)
			h.Fetch(uint64(s.Intn(512)) * 64)
		}
		return h.L1I.Stats, h.L1D.Stats, h.L2.Stats
	}
	i1, d1, l1 := run()
	i2, d2, l2 := run()
	if i1 != i2 || d1 != d2 || l1 != l2 {
		t.Error("hierarchy simulation not deterministic")
	}
}

func TestProbeDoesNotAllocate(t *testing.T) {
	c := New(small("t", 4096, 2))
	if c.Probe(0x1000) {
		t.Fatal("probe hit on a cold cache")
	}
	if c.Contains(0x1000) {
		t.Fatal("probe allocated")
	}
	if c.Stats.Accesses != 0 {
		t.Fatal("probe counted as an access")
	}
	c.Access(0x1000)
	if !c.Probe(0x1000) {
		t.Fatal("probe missed a resident line")
	}
	// Probe refreshes recency: after probing a, inserting two conflicting
	// lines must evict the other resident line first.
	sets := uint64(c.Config().Sets())
	stride := sets * 64
	c.Access(0x1000 + stride) // ways now: 0x1000, 0x1000+stride
	c.Probe(0x1000)           // 0x1000 becomes MRU
	c.Access(0x1000 + 2*stride)
	if !c.Contains(0x1000) {
		t.Error("probe did not refresh recency")
	}
	if c.Contains(0x1000 + stride) {
		t.Error("LRU victim not evicted")
	}
}

func TestFetchWrongPath(t *testing.T) {
	h := NewHierarchy(baseHierarchy())
	// Cold: long miss, nothing allocated.
	if lvl := h.FetchWrongPath(0x9000); lvl != LongMiss {
		t.Fatalf("cold wrong-path fetch = %v", lvl)
	}
	if h.L1I.Contains(0x9000) || h.L2.Contains(0x9000) {
		t.Fatal("abandoned wrong-path fetch allocated")
	}
	// Resident in L2 only: fills L1I.
	h.Data(0x9000) // brings the line into L1D and L2
	if lvl := h.FetchWrongPath(0x9000); lvl != ShortMiss {
		t.Fatalf("L2-resident wrong-path fetch = %v", lvl)
	}
	if !h.L1I.Contains(0x9000) {
		t.Fatal("short wrong-path fetch did not fill L1I")
	}
	if lvl := h.FetchWrongPath(0x9000); lvl != L1Hit {
		t.Fatalf("warm wrong-path fetch = %v", lvl)
	}
}
