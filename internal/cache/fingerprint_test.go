package cache

import "testing"

func fpHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1I: Config{Name: "L1I", Size: 64 << 10, LineSize: 64, Ways: 2, Repl: LRU},
		L1D: Config{Name: "L1D", Size: 64 << 10, LineSize: 64, Ways: 4, Repl: LRU},
		L2:  Config{Name: "L2", Size: 1 << 20, LineSize: 64, Ways: 8, Repl: LRU},
		Lat: Latencies{L1: 3, L2: 12, Mem: 250},
	}
}

// TestHierarchyFingerprintLatencyInvariant is the timing-invariance contract
// in test form: latencies decide access cost, never which level serves an
// access, so hierarchies differing only in Lat must share a fingerprint —
// that sharing is what lets one overlay serve a whole latency sweep. Labels
// are cosmetic and must not matter either.
func TestHierarchyFingerprintLatencyInvariant(t *testing.T) {
	a := fpHierarchy()
	b := fpHierarchy()
	b.Lat = Latencies{L1: 1, L2: 40, Mem: 900}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("changing only latencies changed the hierarchy fingerprint")
	}
	c := fpHierarchy()
	c.L1I.Name, c.L1D.Name, c.L2.Name = "a", "b", "c"
	if a.Fingerprint() != c.Fingerprint() {
		t.Error("changing only cache labels changed the hierarchy fingerprint")
	}
}

// TestHierarchyFingerprintDistinct checks that every geometry change — in
// any of the three caches — moves the fingerprint, including swapping the
// same geometry tweak between L1I and L1D (the positional tags at work).
func TestHierarchyFingerprintDistinct(t *testing.T) {
	mutations := map[string]func(*HierarchyConfig){
		"L1I size":  func(h *HierarchyConfig) { h.L1I.Size = 32 << 10 },
		"L1I line":  func(h *HierarchyConfig) { h.L1I.LineSize = 32 },
		"L1I ways":  func(h *HierarchyConfig) { h.L1I.Ways = 4 },
		"L1I repl":  func(h *HierarchyConfig) { h.L1I.Repl = Random },
		"L1D size":  func(h *HierarchyConfig) { h.L1D.Size = 32 << 10 },
		"L1D ways":  func(h *HierarchyConfig) { h.L1D.Ways = 8 },
		"L2 size":   func(h *HierarchyConfig) { h.L2.Size = 2 << 20 },
		"L2 ways":   func(h *HierarchyConfig) { h.L2.Ways = 16 },
		"swap I/D ways": func(h *HierarchyConfig) {
			h.L1I.Ways, h.L1D.Ways = h.L1D.Ways, h.L1I.Ways
		},
	}
	base := fpHierarchy().Fingerprint()
	seen := map[uint64]string{}
	for name, mutate := range mutations {
		h := fpHierarchy()
		mutate(&h)
		fp := h.Fingerprint()
		if fp == base {
			t.Errorf("%s: geometry change did not change the fingerprint", name)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("fingerprint collision between %s and %s", prev, name)
		}
		seen[fp] = name
	}
}

// TestHierarchyFingerprintStable pins the baseline hierarchy's hash: the
// fingerprint is a persistent cache key, so any change to the canonical
// serialization must be deliberate.
func TestHierarchyFingerprintStable(t *testing.T) {
	const want uint64 = 0xaa0e5d36d151d43e
	if got := fpHierarchy().Fingerprint(); got != want {
		t.Errorf("baseline hierarchy fingerprint = %#x, want %#x (canonical serialization changed?)", got, want)
	}
}
