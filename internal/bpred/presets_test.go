package bpred

import "testing"

func TestPresetsBuildAndMatchKind(t *testing.T) {
	for _, name := range PresetNames() {
		c, ok := Preset(name)
		if !ok {
			t.Fatalf("PresetNames listed unknown kind %q", name)
		}
		if c.Kind != name {
			t.Errorf("preset %q has Kind %q", name, c.Kind)
		}
		if _, err := c.Build(); err != nil {
			t.Errorf("preset %q does not build: %v", name, err)
		}
	}
	if _, ok := Preset("oracle-3000"); ok {
		t.Error("unknown kind reported as a preset")
	}
}

func TestPresetTournamentMatchesBaseline(t *testing.T) {
	// uarch.Baseline() hardcodes this exact predictor; the preset must stay
	// in lockstep so "-pred tournament" is byte-identical to a default run.
	want := Config{Kind: "tournament", Entries: 16384, HistBits: 12, BTBEntries: 4096}
	if got, _ := Preset("tournament"); got != want {
		t.Errorf("tournament preset = %+v, want %+v", got, want)
	}
}

func TestStorageBits(t *testing.T) {
	cases := []struct {
		c    Config
		want int64
	}{
		{Config{Kind: "bimodal", Entries: 16384}, 32768},
		{Config{Kind: "gshare", Entries: 16384, HistBits: 12}, 32780},
		{Config{Kind: "tournament", Entries: 16384, HistBits: 12}, 98316},
		{Config{Kind: "local", Entries: 16384, HistBits: 10}, 16384*10 + 2048},
		{Config{Kind: "perceptron", Entries: 1024, HistBits: 24}, 1024*25*8 + 24},
		// 2×E base counters + per-table (3+2+tag) with tags 8,9,10,11.
		{Config{Kind: "tage", Entries: 1024, HistBits: 64}, 4*1024 + 1024*(13+14+15+16) + 64},
		{Config{Kind: "2bc-gskew", Entries: 8192, HistBits: 13}, 8*8192 + 13},
		{Config{Kind: "perfect"}, 0},
		{Config{Kind: "taken", BTBEntries: 4096}, 0},
	}
	for _, tc := range cases {
		if got := tc.c.StorageBits(); got != tc.want {
			t.Errorf("StorageBits(%+v) = %d, want %d", tc.c, got, tc.want)
		}
	}
}

func TestConfigForBudget(t *testing.T) {
	// The B1 shootout budget: the baseline tournament's storage.
	budget := Config{Kind: "tournament", Entries: 16384, HistBits: 12}.StorageBits()
	for _, kind := range PresetNames() {
		c, ok := ConfigForBudget(kind, budget)
		if !ok {
			t.Errorf("ConfigForBudget(%q) failed at budget %d", kind, budget)
			continue
		}
		if got := c.StorageBits(); got > budget {
			t.Errorf("%q sizing %d bits exceeds budget %d", kind, got, budget)
		}
		if c.Entries > 0 {
			grown := c
			grown.Entries *= 2
			if grown.StorageBits() <= budget {
				t.Errorf("%q not maximal: %d entries also fits", kind, grown.Entries)
			}
		}
		if _, err := c.Build(); err != nil {
			t.Errorf("budget sizing for %q does not build: %v", kind, err)
		}
	}
	// Exact-fit boundary: tournament at 16384 entries is exactly the budget.
	c, _ := ConfigForBudget("tournament", budget)
	if c.Entries != 16384 {
		t.Errorf("tournament at its own budget sized to %d entries", c.Entries)
	}
	if _, ok := ConfigForBudget("nonsense", budget); ok {
		t.Error("unknown kind accepted")
	}
	if _, ok := ConfigForBudget("bimodal", 1); ok {
		t.Error("impossible budget accepted")
	}
	if c, ok := ConfigForBudget("perfect", 0); !ok || c.Kind != "perfect" {
		t.Error("stateless kind should fit any budget")
	}
}

func TestBuildNewKinds(t *testing.T) {
	for _, kind := range []string{"tage", "2bc-gskew"} {
		c, _ := Preset(kind)
		u, err := c.Build()
		if err != nil {
			t.Fatalf("Build(%q): %v", kind, err)
		}
		if u.BTB == nil {
			t.Errorf("%q preset should carry a BTB", kind)
		}
		// Smoke the built unit through the Predictor interface.
		for i := 0; i < 100; i++ {
			u.Dir.Access(uint64(0x1000+i*4), i%3 != 0)
		}
	}
	if _, err := (Config{Kind: "oracle-3000"}).Build(); err == nil {
		t.Error("unknown kind built without error")
	}
}
