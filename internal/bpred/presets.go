package bpred

import "sort"

// presets are the canonical sizings for each predictor kind: the same
// configurations the A2/B1 experiments compare, so "-pred tage" on a sweep
// CLI and a TAGE row in a shootout table mean the same machine. The
// tournament preset is identical to the uarch baseline predictor, which
// keeps "-pred tournament" byte-identical to a default run.
var presets = map[string]Config{
	"perfect":    {Kind: "perfect"},
	"taken":      {Kind: "taken", BTBEntries: 4096},
	"not-taken":  {Kind: "not-taken", BTBEntries: 4096},
	"bimodal":    {Kind: "bimodal", Entries: 16384, BTBEntries: 4096},
	"gshare":     {Kind: "gshare", Entries: 16384, HistBits: 12, BTBEntries: 4096},
	"local":      {Kind: "local", Entries: 16384, HistBits: 10, BTBEntries: 4096},
	"tournament": {Kind: "tournament", Entries: 16384, HistBits: 12, BTBEntries: 4096},
	"perceptron": {Kind: "perceptron", Entries: 1024, HistBits: 24, BTBEntries: 4096},
	"tage":       {Kind: "tage", Entries: 1024, HistBits: 64, BTBEntries: 4096},
	"2bc-gskew":  {Kind: "2bc-gskew", Entries: 8192, HistBits: 13, BTBEntries: 4096},
}

// Preset returns the canonical configuration for a predictor kind, and
// whether the kind is known. Service and CLI layers use this to validate a
// predictor name at admission time, before any machine is built.
func Preset(kind string) (Config, bool) {
	c, ok := presets[kind]
	return c, ok
}

// PresetNames returns every known predictor kind, sorted, for error
// messages and usage strings.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for k := range presets {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// StorageBits returns the direction-predictor state the configuration
// implies, in bits. The BTB is deliberately excluded: every comparison in
// the B1 shootout holds the BTB constant, and the interesting budget axis
// is direction-prediction storage. History registers are counted; valid
// bits and comparators are not (they follow entry counts for every kind).
func (c Config) StorageBits() int64 {
	e := int64(c.Entries)
	h := int64(c.HistBits)
	switch c.Kind {
	case "bimodal":
		return e * 2
	case "gshare":
		return e*2 + h
	case "local":
		// Per-branch history registers plus the shared pattern table.
		return e*h + (int64(1)<<uint(c.HistBits))*2
	case "tournament":
		// gshare + bimodal components + chooser, all at Entries.
		return 3*e*2 + h
	case "perceptron":
		// (hist+1) 8-bit weights per entry plus the history register.
		return e*(h+1)*8 + h
	case "tage":
		// Base bimodal at 2×Entries, then per tagged table: tag + 3-bit
		// counter + 2-bit usefulness per entry, plus the history register.
		bits := int64(2*2) * e
		for i := 0; i < tageTables; i++ {
			bits += e * int64(3+2+8+i)
		}
		return bits + h
	case "2bc-gskew":
		// Four banks of 2-bit counters plus the history register.
		return 4*e*2 + h
	default: // perfect, taken, not-taken
		return 0
	}
}

// ConfigForBudget returns the largest power-of-two sizing of kind whose
// StorageBits fits within budgetBits, scaling the preset's entry count and
// keeping its history geometry. It reports false for unknown kinds or
// budgets too small for even a single-entry table. Static and perfect
// predictors always fit (they hold no state).
func ConfigForBudget(kind string, budgetBits int64) (Config, bool) {
	c, ok := Preset(kind)
	if !ok {
		return Config{}, false
	}
	if c.Entries == 0 {
		return c, true
	}
	c.Entries = 1
	if c.StorageBits() > budgetBits {
		return Config{}, false
	}
	for {
		next := c
		next.Entries = c.Entries * 2
		if next.StorageBits() > budgetBits {
			return c, true
		}
		c = next
	}
}
