package bpred

import "fmt"

// Config selects and sizes the branch prediction unit. It is the
// speculation half of a machine configuration: together with the cache
// hierarchy geometry it fully determines every prediction outcome on a
// given trace, independent of any pipeline timing parameter — which is why
// it carries a canonical Fingerprint for keying precomputed miss-event
// overlays (package overlay).
type Config struct {
	Kind       string // "perfect", "taken", "not-taken", "bimodal", "gshare", "local", "tournament", "perceptron", "tage", "2bc-gskew"
	Entries    int    // table entries for table-based kinds
	HistBits   uint   // history length for gshare/local
	BTBEntries int    // 0 disables target misses
}

// Build constructs the configured prediction unit.
func (c Config) Build() (*Unit, error) {
	var dir Predictor
	switch c.Kind {
	case "perfect":
		dir = Perfect{}
	case "taken":
		dir = &Static{Taken: true}
	case "not-taken":
		dir = &Static{Taken: false}
	case "bimodal":
		dir = NewBimodal(c.Entries)
	case "gshare":
		dir = NewGShare(c.Entries, c.HistBits)
	case "local":
		dir = NewLocal(c.Entries, c.HistBits)
	case "tournament":
		dir = NewTournament(
			NewGShare(c.Entries, c.HistBits),
			NewBimodal(c.Entries),
			c.Entries,
		)
	case "perceptron":
		dir = NewPerceptron(c.Entries, int(c.HistBits))
	case "tage":
		dir = NewTAGE(c.Entries, c.HistBits)
	case "2bc-gskew":
		dir = NewGSkew(c.Entries, c.HistBits)
	default:
		return nil, fmt.Errorf("bpred: unknown predictor kind %q", c.Kind)
	}
	u := &Unit{Dir: dir}
	if c.BTBEntries > 0 {
		u.BTB = NewBTB(c.BTBEntries)
	}
	return u, nil
}

// Fingerprint returns a canonical stable hash of the configuration: two
// Configs produce the same fingerprint if and only if they build behaviorally
// identical prediction units (up to hash collisions). Every field of Config
// affects prediction outcomes, so every field is hashed. The serialization
// is explicit and tagged — field by field, each preceded by its name — so
// the hash does not depend on struct declaration order and cannot conflate
// a zero field with an absent one.
func (c Config) Fingerprint() uint64 {
	h := newFNV()
	h.string("kind", c.Kind)
	h.int("entries", int64(c.Entries))
	h.int("histbits", int64(c.HistBits))
	h.int("btbentries", int64(c.BTBEntries))
	return h.sum
}

// fnv is a minimal FNV-1a 64-bit hasher over tagged fields. A hand-rolled
// serialization (rather than fmt or reflection) keeps the fingerprint stable
// across Go versions and struct refactors: the byte stream is defined by
// this file alone.
type fnv struct{ sum uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func newFNV() *fnv { return &fnv{sum: fnvOffset} }

func (h *fnv) byte(b byte) {
	h.sum ^= uint64(b)
	h.sum *= fnvPrime
}

func (h *fnv) string(tag, s string) {
	for i := 0; i < len(tag); i++ {
		h.byte(tag[i])
	}
	h.byte('=')
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
	h.byte(';')
}

func (h *fnv) int(tag string, v int64) {
	for i := 0; i < len(tag); i++ {
		h.byte(tag[i])
	}
	h.byte('=')
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
	h.byte(';')
}
