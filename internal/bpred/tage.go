package bpred

import (
	"fmt"
	"math"
)

// TAGE geometry shared by every instance. Four tagged components cover
// history lengths from a handful of branches up to the configured maximum in
// geometric steps; more components buy little on traces this size and would
// complicate the storage-budget comparison in experiment B1.
const (
	tageTables  = 4
	tageMinHist = 4
	// tageResetPeriod is how many accesses pass between gracefully aging the
	// usefulness counters (halving them), so stale "useful" entries do not
	// block allocation forever.
	tageResetPeriod = 1 << 18
)

// tageEntry is one tagged-component slot: a partial tag, a 3-bit signed
// prediction counter, and a 2-bit usefulness counter.
type tageEntry struct {
	tag uint16
	ctr int8  // [-4, 3]; >= 0 predicts taken
	u   uint8 // [0, 3]; 0 means the entry may be reallocated
}

// folded maintains a history register XOR-folded down to clen bits, updated
// incrementally in O(1) per branch instead of re-XORing the whole history on
// every lookup (the circular-shift-register trick from Seznec's TAGE
// reference implementations).
type folded struct {
	comp     uint32
	clen     uint // compressed width in bits
	outpoint uint // where the expiring bit re-enters: olen % clen
}

func newFolded(olen, clen uint) folded {
	return folded{clen: clen, outpoint: olen % clen}
}

// update shifts newBit in and cancels oldBit (the outcome falling out of the
// history window) from the folded image.
func (f *folded) update(newBit, oldBit uint32) {
	f.comp = (f.comp << 1) | newBit
	f.comp ^= oldBit << f.outpoint
	f.comp ^= f.comp >> f.clen
	f.comp &= (1 << f.clen) - 1
}

// TAGE is a TAgged GEometric-history-length predictor (Seznec & Michaud): a
// bimodal base predictor backed by tagged components indexed with
// geometrically increasing slices of global history. The longest-history
// component whose tag matches provides the prediction; usefulness counters
// arbitrate allocation on mispredicts; a use-alt-on-newly-allocated counter
// decides when to trust the alternate prediction over a freshly allocated,
// still-cold provider entry.
type TAGE struct {
	base     []counter2 // bimodal base, 2× the per-table entry count
	baseMask uint64

	tables  [tageTables][]tageEntry
	mask    uint64 // per-table index mask
	idxBits uint
	tagBits [tageTables]uint
	histLen [tageTables]uint

	// Global history as a ring of single-bit outcomes, so folded registers
	// can retrieve the bit expiring from each geometric window.
	ghist []uint8
	gmask int
	gpos  int

	foldIdx  [tageTables]folded
	foldTag0 [tageTables]folded
	foldTag1 [tageTables]folded

	maxHist    uint
	useAltOnNA int8   // [-8, 7]; >= 0 means trust alt over newly allocated
	lfsr       uint32 // deterministic PRNG for allocation spreading
	tick       int
}

// NewTAGE returns a TAGE predictor with entries slots per tagged component
// (a positive power of two) and a maximum history length of maxHist bits
// (clamped to [8, 512]). The base bimodal table holds 2×entries counters.
func NewTAGE(entries int, maxHist uint) *TAGE {
	checkPow2(entries, "tage entries")
	if maxHist < 2*tageMinHist {
		maxHist = 2 * tageMinHist
	}
	if maxHist > 512 {
		maxHist = 512
	}
	idxBits := uint(0)
	for 1<<idxBits < entries {
		idxBits++
	}
	t := &TAGE{
		base:     make([]counter2, 2*entries),
		baseMask: uint64(2*entries - 1),
		mask:     uint64(entries - 1),
		idxBits:  idxBits,
		maxHist:  maxHist,
		lfsr:     0x2545f491, // any nonzero seed; fixed for determinism
	}
	for i := range t.base {
		t.base[i] = 2 // weakly taken, matching the other table predictors
	}
	// Geometric history series: L(i) = minHist · (maxHist/minHist)^(i/(n-1)),
	// forced strictly increasing and pinned to maxHist at the top.
	ratio := float64(maxHist) / float64(tageMinHist)
	for i := 0; i < tageTables; i++ {
		l := uint(math.Round(tageMinHist * math.Pow(ratio, float64(i)/float64(tageTables-1))))
		if i > 0 && l <= t.histLen[i-1] {
			l = t.histLen[i-1] + 1
		}
		t.histLen[i] = l
		t.tagBits[i] = uint(8 + i)
		t.tables[i] = make([]tageEntry, entries)
		t.foldIdx[i] = newFolded(l, idxBits)
		t.foldTag0[i] = newFolded(l, t.tagBits[i])
		t.foldTag1[i] = newFolded(l, t.tagBits[i]-1)
	}
	t.histLen[tageTables-1] = maxHist
	ring := 1
	for ring < int(maxHist)+1 {
		ring <<= 1
	}
	t.ghist = make([]uint8, ring)
	t.gmask = ring - 1
	return t
}

func (t *TAGE) index(pc uint64, i int) uint64 {
	return ((pc >> 2) ^ ((pc >> 2) >> (uint(i) + 1)) ^ uint64(t.foldIdx[i].comp)) & t.mask
}

func (t *TAGE) tagOf(pc uint64, i int) uint16 {
	tag := uint16(pc>>2) ^ uint16(t.foldTag0[i].comp) ^ (uint16(t.foldTag1[i].comp) << 1)
	return tag & uint16((1<<t.tagBits[i])-1)
}

func (t *TAGE) rand() uint32 {
	t.lfsr ^= t.lfsr << 13
	t.lfsr ^= t.lfsr >> 17
	t.lfsr ^= t.lfsr << 5
	return t.lfsr
}

// Access implements Predictor.
func (t *TAGE) Access(pc uint64, taken bool) bool {
	var idx [tageTables]uint64
	var tag [tageTables]uint16
	for i := 0; i < tageTables; i++ {
		idx[i] = t.index(pc, i)
		tag[i] = t.tagOf(pc, i)
	}

	// Provider = longest-history tag match; alternate = next match below it,
	// falling back to the bimodal base.
	provider, altTable := -1, -1
	for i := tageTables - 1; i >= 0; i-- {
		if t.tables[i][idx[i]].tag == tag[i] {
			if provider < 0 {
				provider = i
			} else {
				altTable = i
				break
			}
		}
	}

	bi := (pc >> 2) & t.baseMask
	basePred := t.base[bi].taken()
	altPred := basePred
	if altTable >= 0 {
		altPred = t.tables[altTable][idx[altTable]].ctr >= 0
	}

	pred := basePred
	providerPred := basePred
	providerNew := false
	if provider >= 0 {
		e := &t.tables[provider][idx[provider]]
		providerPred = e.ctr >= 0
		// A weak counter with zero usefulness marks a freshly allocated
		// entry; the use-alt counter tracks whether alt beats it on average.
		providerNew = e.u == 0 && (e.ctr == 0 || e.ctr == -1)
		if providerNew && t.useAltOnNA >= 0 {
			pred = altPred
		} else {
			pred = providerPred
		}
	}
	correct := pred == taken

	// --- Update ---
	if provider >= 0 {
		e := &t.tables[provider][idx[provider]]
		if providerPred != altPred {
			// The provider only proved (un)useful when it disagreed with alt.
			if providerPred == taken {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
			if providerNew {
				if altPred == taken {
					if t.useAltOnNA < 7 {
						t.useAltOnNA++
					}
				} else if t.useAltOnNA > -8 {
					t.useAltOnNA--
				}
			}
		}
		e.ctr = train3(e.ctr, taken)
		// Keep the base predictor warm only while it is still the alternate,
		// so a confident tagged entry does not drag the base around.
		if altTable < 0 {
			t.base[bi] = t.base[bi].train(taken)
		}
	} else {
		t.base[bi] = t.base[bi].train(taken)
	}

	// On a mispredict, try to allocate an entry with a longer history than
	// the provider; start one table up, sometimes two (LFSR spreads
	// allocation pressure), take the first slot with u == 0, and decay the
	// candidates' usefulness when none is free.
	if !correct && provider < tageTables-1 {
		start := provider + 1
		if start < tageTables-1 && t.rand()&1 == 1 {
			start++
		}
		alloc := -1
		for i := start; i < tageTables; i++ {
			if t.tables[i][idx[i]].u == 0 {
				alloc = i
				break
			}
		}
		if alloc < 0 {
			for i := start; i < tageTables; i++ {
				if e := &t.tables[i][idx[i]]; e.u > 0 {
					e.u--
				}
			}
		} else {
			e := &t.tables[alloc][idx[alloc]]
			e.tag = tag[alloc]
			e.u = 0
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
		}
	}

	// Graceful aging of usefulness so the tables never wedge.
	t.tick++
	if t.tick >= tageResetPeriod {
		t.tick = 0
		for i := range t.tables {
			for j := range t.tables[i] {
				t.tables[i][j].u >>= 1
			}
		}
	}

	t.updateHistory(taken)
	return correct
}

func (t *TAGE) updateHistory(taken bool) {
	nb := uint32(0)
	if taken {
		nb = 1
	}
	t.ghist[t.gpos&t.gmask] = uint8(nb)
	for i := 0; i < tageTables; i++ {
		ob := uint32(t.ghist[(t.gpos-int(t.histLen[i]))&t.gmask])
		t.foldIdx[i].update(nb, ob)
		t.foldTag0[i].update(nb, ob)
		t.foldTag1[i].update(nb, ob)
	}
	t.gpos++
}

// Name implements Predictor.
func (t *TAGE) Name() string {
	return fmt.Sprintf("tage-%dx%d-h%d", tageTables, len(t.tables[0]), t.maxHist)
}

// train3 is a 3-bit signed saturating counter update, range [-4, 3].
func train3(c int8, taken bool) int8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > -4 {
		return c - 1
	}
	return -4
}
