// Package bpred implements the branch-prediction substrate: conditional
// direction predictors (static, bimodal, gshare, two-level local,
// tournament, perfect), a branch target buffer, and a frontend prediction
// Unit that combines them the way a fetch stage does.
//
// Predictors use the trace-driven simulator convention: one Access call per
// dynamic branch performs predict-then-train and reports whether the
// prediction was correct. This is what lets a perfect predictor exist as an
// ordinary implementation, and keeps simulator loops branch-predictor
// agnostic.
package bpred

import (
	"fmt"

	"intervalsim/internal/isa"
)

// Predictor models a conditional-branch direction predictor.
type Predictor interface {
	// Access predicts the branch at pc, trains on the actual outcome, and
	// reports whether the prediction was correct.
	Access(pc uint64, taken bool) bool
	// Name identifies the configuration for reports.
	Name() string
}

// --- Static ---------------------------------------------------------------

// Static predicts every branch the same direction and never learns.
type Static struct {
	Taken bool
}

// Access implements Predictor.
func (s *Static) Access(_ uint64, taken bool) bool { return taken == s.Taken }

// Name implements Predictor.
func (s *Static) Name() string {
	if s.Taken {
		return "static-taken"
	}
	return "static-not-taken"
}

// --- Perfect ---------------------------------------------------------------

// Perfect is an oracle: every prediction is correct. It isolates the other
// miss events in experiments that need mispredictions switched off.
type Perfect struct{}

// Access implements Predictor.
func (Perfect) Access(_ uint64, _ bool) bool { return true }

// Name implements Predictor.
func (Perfect) Name() string { return "perfect" }

// --- Saturating counters ----------------------------------------------------

// counter2 is a 2-bit saturating counter; values 0–1 predict not-taken,
// 2–3 predict taken.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) train(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

// --- Bimodal ----------------------------------------------------------------

// Bimodal is a PC-indexed table of 2-bit saturating counters.
type Bimodal struct {
	table []counter2
	mask  uint64
}

// NewBimodal returns a bimodal predictor with entries counters; entries must
// be a positive power of two.
func NewBimodal(entries int) *Bimodal {
	checkPow2(entries, "bimodal entries")
	t := make([]counter2, entries)
	for i := range t {
		t[i] = 2 // weakly taken: matches common hardware reset state
	}
	return &Bimodal{table: t, mask: uint64(entries - 1)}
}

func (b *Bimodal) index(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Access implements Predictor.
func (b *Bimodal) Access(pc uint64, taken bool) bool {
	i := b.index(pc)
	pred := b.table[i].taken()
	b.table[i] = b.table[i].train(taken)
	return pred == taken
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return fmt.Sprintf("bimodal-%d", len(b.table)) }

// --- GShare -----------------------------------------------------------------

// GShare XORs a global branch-history register with the PC to index a table
// of 2-bit counters, exposing correlations between branches.
type GShare struct {
	table    []counter2
	history  uint64
	histBits uint
	mask     uint64
}

// NewGShare returns a gshare predictor with entries counters (a positive
// power of two) and histBits bits of global history (clamped to the index
// width).
func NewGShare(entries int, histBits uint) *GShare {
	checkPow2(entries, "gshare entries")
	idxBits := uint(0)
	for 1<<idxBits < entries {
		idxBits++
	}
	if histBits > idxBits {
		histBits = idxBits
	}
	t := make([]counter2, entries)
	for i := range t {
		t[i] = 2
	}
	return &GShare{table: t, histBits: histBits, mask: uint64(entries - 1)}
}

func (g *GShare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Access implements Predictor.
func (g *GShare) Access(pc uint64, taken bool) bool {
	i := g.index(pc)
	pred := g.table[i].taken()
	g.table[i] = g.table[i].train(taken)
	// Mask after inserting the outcome, so histBits == 0 really means no
	// history: the old order let a taken branch leak bit 0 into the index.
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= (1 << g.histBits) - 1
	return pred == taken
}

// Name implements Predictor.
func (g *GShare) Name() string {
	return fmt.Sprintf("gshare-%d-h%d", len(g.table), g.histBits)
}

// --- Two-level local ----------------------------------------------------------

// Local is a two-level predictor: a PC-indexed table of per-branch history
// registers selects a pattern-table counter, capturing periodic per-branch
// behaviour (e.g. loop branches) that bimodal cannot.
type Local struct {
	histories []uint16
	pattern   []counter2
	histBits  uint
	l1mask    uint64
}

// NewLocal returns a local predictor with l1entries history registers of
// histBits bits each (pattern table size 2^histBits). l1entries must be a
// positive power of two and histBits in [1, 16].
func NewLocal(l1entries int, histBits uint) *Local {
	checkPow2(l1entries, "local level-1 entries")
	if histBits < 1 || histBits > 16 {
		panic("bpred: local history bits out of [1,16]")
	}
	p := make([]counter2, 1<<histBits)
	for i := range p {
		p[i] = 2
	}
	return &Local{
		histories: make([]uint16, l1entries),
		pattern:   p,
		histBits:  histBits,
		l1mask:    uint64(l1entries - 1),
	}
}

// Access implements Predictor.
func (l *Local) Access(pc uint64, taken bool) bool {
	h := (pc >> 2) & l.l1mask
	idx := uint64(l.histories[h]) & ((1 << l.histBits) - 1)
	pred := l.pattern[idx].taken()
	l.pattern[idx] = l.pattern[idx].train(taken)
	l.histories[h] <<= 1
	if taken {
		l.histories[h] |= 1
	}
	return pred == taken
}

// Name implements Predictor.
func (l *Local) Name() string {
	return fmt.Sprintf("local-%d-h%d", len(l.histories), l.histBits)
}

// --- Tournament -----------------------------------------------------------------

// Tournament combines two component predictors with a PC-indexed chooser of
// 2-bit counters, in the style of the Alpha 21264 meta predictor.
type Tournament struct {
	a, b    Predictor
	chooser []counter2
	mask    uint64
}

// NewTournament returns a tournament predictor choosing between a and b with
// chooserEntries counters (a positive power of two). Counter high means
// "trust a".
func NewTournament(a, b Predictor, chooserEntries int) *Tournament {
	checkPow2(chooserEntries, "tournament chooser entries")
	c := make([]counter2, chooserEntries)
	for i := range c {
		c[i] = 2
	}
	return &Tournament{a: a, b: b, chooser: c, mask: uint64(chooserEntries - 1)}
}

// Access implements Predictor.
func (t *Tournament) Access(pc uint64, taken bool) bool {
	i := (pc >> 2) & t.mask
	useA := t.chooser[i].taken()
	// Train both components; their Access results say who was right.
	aCorrect := t.a.Access(pc, taken)
	bCorrect := t.b.Access(pc, taken)
	if aCorrect != bCorrect {
		t.chooser[i] = t.chooser[i].train(aCorrect)
	}
	if useA {
		return aCorrect
	}
	return bCorrect
}

// Name implements Predictor.
func (t *Tournament) Name() string {
	return fmt.Sprintf("tournament(%s,%s)", t.a.Name(), t.b.Name())
}

// --- BTB ---------------------------------------------------------------------

// BTB is a direct-mapped branch target buffer: tag + target per entry. A
// taken control transfer whose target is absent redirects fetch late, which
// the frontend treats as a misprediction.
type BTB struct {
	tags    []uint64
	targets []uint64
	valid   []bool
	mask    uint64
}

// NewBTB returns a BTB with entries slots; entries must be a positive power
// of two.
func NewBTB(entries int) *BTB {
	checkPow2(entries, "BTB entries")
	return &BTB{
		tags:    make([]uint64, entries),
		targets: make([]uint64, entries),
		valid:   make([]bool, entries),
		mask:    uint64(entries - 1),
	}
}

// Access looks up pc, installs/updates the mapping pc→target, and reports
// whether the lookup hit with the correct target.
func (b *BTB) Access(pc, target uint64) bool {
	i := (pc >> 2) & b.mask
	hit := b.valid[i] && b.tags[i] == pc && b.targets[i] == target
	b.tags[i], b.targets[i], b.valid[i] = pc, target, true
	return hit
}

// --- Unit ---------------------------------------------------------------------

// Stats counts the prediction outcomes a Unit has seen.
type Stats struct {
	Branches      uint64 // conditional branches seen
	Jumps         uint64 // unconditional transfers seen
	DirMispredict uint64 // wrong conditional direction
	BTBMispredict uint64 // right direction (or unconditional) but target missing
}

// Mispredicts returns the total frontend redirects.
func (s Stats) Mispredicts() uint64 { return s.DirMispredict + s.BTBMispredict }

// MPKI returns mispredictions per thousand instructions given the total
// instruction count.
func (s Stats) MPKI(totalInsts uint64) float64 {
	if totalInsts == 0 {
		return 0
	}
	return float64(s.Mispredicts()) / float64(totalInsts) * 1000
}

// Unit is the frontend prediction unit: a direction predictor plus a BTB.
// A nil BTB disables target misses (ideal target prediction).
type Unit struct {
	Dir   Predictor
	BTB   *BTB
	Stats Stats
}

// Access simulates prediction of one control-flow instruction and reports
// whether the frontend mispredicted it (wrong direction, or taken with an
// unknown target). A Perfect direction predictor makes the whole frontend
// ideal: target misses are suppressed too, so experiments can switch branch
// miss events off entirely.
func (u *Unit) Access(in *isa.Inst) bool {
	_, ideal := u.Dir.(Perfect)
	switch in.Class {
	case isa.Branch:
		u.Stats.Branches++
		correct := u.Dir.Access(in.PC, in.Taken)
		// Warm the BTB on every taken branch regardless of direction outcome.
		btbHit := true
		if in.Taken && u.BTB != nil {
			btbHit = u.BTB.Access(in.PC, in.Target)
		}
		if ideal {
			return false
		}
		if !correct {
			u.Stats.DirMispredict++
			return true
		}
		if !btbHit {
			u.Stats.BTBMispredict++
			return true
		}
		return false
	case isa.Jump:
		u.Stats.Jumps++
		btbHit := true
		if u.BTB != nil {
			btbHit = u.BTB.Access(in.PC, in.Target)
		}
		if ideal || btbHit {
			return false
		}
		u.Stats.BTBMispredict++
		return true
	default:
		panic(fmt.Sprintf("bpred: Access on non-control %v", in.Class))
	}
}

func checkPow2(n int, what string) {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("bpred: %s must be a positive power of two, got %d", what, n))
	}
}
