package bpred

import "testing"

// TestFingerprintDistinct checks that every behaviorally distinct predictor
// configuration hashes differently: the overlay cache keys on these values,
// so a collision here would silently share speculation outcomes between
// different predictors.
func TestFingerprintDistinct(t *testing.T) {
	configs := []Config{
		{Kind: "perfect"},
		{Kind: "taken"},
		{Kind: "not-taken"},
		{Kind: "bimodal", Entries: 4096},
		{Kind: "bimodal", Entries: 8192},
		{Kind: "bimodal", Entries: 4096, BTBEntries: 512},
		{Kind: "bimodal", Entries: 4096, BTBEntries: 1024},
		{Kind: "gshare", Entries: 4096, HistBits: 8},
		{Kind: "gshare", Entries: 4096, HistBits: 10},
		{Kind: "gshare", Entries: 8192, HistBits: 8},
		{Kind: "local", Entries: 4096, HistBits: 8},
		{Kind: "tournament", Entries: 16384, HistBits: 12, BTBEntries: 4096},
		{Kind: "perceptron", Entries: 512, HistBits: 24},
	}
	seen := map[uint64]Config{}
	for _, c := range configs {
		fp := c.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("fingerprint collision: %+v and %+v both hash to %#x", prev, c, fp)
		}
		seen[fp] = c
	}
}

// TestFingerprintStable pins the hash of the repo's baseline predictor: the
// fingerprint is a persistent cache key, so any change to the canonical
// serialization must be deliberate (and must invalidate cached overlays).
// It also checks determinism across calls and that the hash distinguishes a
// value landing in one field from the same value landing in another (the
// tagged serialization's reason to exist).
func TestFingerprintStable(t *testing.T) {
	base := Config{Kind: "tournament", Entries: 16384, HistBits: 12, BTBEntries: 4096}
	const want = 0x5526c97bdbd3b0b6
	if got := base.Fingerprint(); got != want {
		t.Errorf("baseline predictor fingerprint = %#x, want %#x (canonical serialization changed?)", got, want)
	}
	if base.Fingerprint() != base.Fingerprint() {
		t.Error("fingerprint is not deterministic")
	}
	a := Config{Kind: "bimodal", Entries: 512, BTBEntries: 0}
	b := Config{Kind: "bimodal", Entries: 0, BTBEntries: 512}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("moving a value between fields did not change the fingerprint")
	}
}
