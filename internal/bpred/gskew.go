package bpred

import "fmt"

// GSkew is the 2Bc-gskew hybrid predictor (Seznec & Michaud; the EV8 design
// point): three prediction banks — a PC-indexed bimodal bank BIM and two
// global-history banks G0/G1 whose indices are *skewed* by invertible
// mixing functions so a pair of branches that collide in one bank almost
// never collide in the others — voted by majority, plus a PC-indexed META
// bank choosing between the bimodal prediction and the majority vote.
// Updates are partial: on a correct prediction only the banks that
// participated and agreed are strengthened, which preserves the
// de-aliasing the skewing bought.
type GSkew struct {
	bim, g0, g1, meta []counter2
	mask              uint64
	idxBits           uint
	histBits          uint
	history           uint64
}

// NewGSkew returns a 2Bc-gskew predictor with entries 2-bit counters per
// bank (a positive power of two; four banks total) and histBits bits of
// global history (clamped to [1, 32]).
func NewGSkew(entries int, histBits uint) *GSkew {
	checkPow2(entries, "2bc-gskew entries")
	if histBits < 1 {
		histBits = 1
	}
	if histBits > 32 {
		histBits = 32
	}
	idxBits := uint(0)
	for 1<<idxBits < entries {
		idxBits++
	}
	g := &GSkew{
		bim:      make([]counter2, entries),
		g0:       make([]counter2, entries),
		g1:       make([]counter2, entries),
		meta:     make([]counter2, entries),
		mask:     uint64(entries - 1),
		idxBits:  idxBits,
		histBits: histBits,
	}
	for i := range g.bim {
		g.bim[i] = 2
		g.g0[i] = 2
		g.g1[i] = 2
		g.meta[i] = 2 // reset to "trust the gskew vote"
	}
	return g
}

// skewH is the invertible mixing function H from Seznec & Michaud's skewed
// associativity work: rotate right by one with the new top bit a parity of
// the two low bits. Invertibility is what guarantees distinct (pc, history)
// pairs stay distinct after mixing, so skewing spreads conflicts instead of
// creating new ones.
func (g *GSkew) skewH(v uint64) uint64 {
	n := g.idxBits
	return ((v >> 1) | (((v ^ (v >> 1)) & 1) << (n - 1))) & g.mask
}

// skewHInv is H's inverse: shift left by one with the low bit recovered
// from the parity relation (bit0 = top(y) XOR y0).
func (g *GSkew) skewHInv(v uint64) uint64 {
	n := g.idxBits
	return ((v << 1) | ((v >> (n - 1)) ^ (v & 1))) & g.mask
}

// bankIndexes computes the three bank indices for (pc, history). v1 is the
// low PC slice, v2 mixes the next PC slice with global history; G0 and G1
// combine them through different H/H⁻¹ compositions so the banks hash
// differently.
func (g *GSkew) bankIndexes(pc uint64) (ib, i0, i1 uint64) {
	word := pc >> 2
	v1 := word & g.mask
	v2 := ((word >> g.idxBits) ^ g.history) & g.mask
	ib = v1
	i0 = g.skewH(v1) ^ g.skewHInv(v2) ^ v2
	i1 = g.skewH(v1) ^ g.skewHInv(v2) ^ v1
	return ib, i0 & g.mask, i1 & g.mask
}

// Access implements Predictor.
func (g *GSkew) Access(pc uint64, taken bool) bool {
	ib, i0, i1 := g.bankIndexes(pc)
	bp := g.bim[ib].taken()
	p0 := g.g0[i0].taken()
	p1 := g.g1[i1].taken()
	votes := 0
	if bp {
		votes++
	}
	if p0 {
		votes++
	}
	if p1 {
		votes++
	}
	maj := votes >= 2
	useSkew := g.meta[ib].taken()
	pred := bp
	if useSkew {
		pred = maj
	}
	correct := pred == taken

	// META trains toward whichever side was right, only when they disagree.
	if bp != maj {
		g.meta[ib] = g.meta[ib].train(maj == taken)
	}

	if correct {
		// Partial update: strengthen only the banks that voted with the
		// prediction actually used.
		if useSkew {
			if bp == taken {
				g.bim[ib] = g.bim[ib].train(taken)
			}
			if p0 == taken {
				g.g0[i0] = g.g0[i0].train(taken)
			}
			if p1 == taken {
				g.g1[i1] = g.g1[i1].train(taken)
			}
		} else {
			g.bim[ib] = g.bim[ib].train(taken)
		}
	} else {
		// Full update on a mispredict: every bank relearns the outcome.
		g.bim[ib] = g.bim[ib].train(taken)
		g.g0[i0] = g.g0[i0].train(taken)
		g.g1[i1] = g.g1[i1].train(taken)
	}

	g.history = (g.history << 1) & ((1 << g.histBits) - 1)
	if taken {
		g.history |= 1
	}
	return correct
}

// Name implements Predictor.
func (g *GSkew) Name() string {
	return fmt.Sprintf("2bc-gskew-%d-h%d", len(g.bim), g.histBits)
}
