package bpred

import (
	"strings"
	"testing"

	"intervalsim/internal/rng"
)

// TestGSkewMixingInvertible verifies the skewing functions are bijections
// and mutual inverses over the full index space — the property that makes
// skewed indexing spread aliases instead of creating new ones.
func TestGSkewMixingInvertible(t *testing.T) {
	g := NewGSkew(256, 12)
	seen := map[uint64]bool{}
	for v := uint64(0); v < 256; v++ {
		y := g.skewH(v)
		if seen[y] {
			t.Fatalf("skewH not injective at %d", v)
		}
		seen[y] = true
		if got := g.skewHInv(y); got != v {
			t.Fatalf("skewHInv(skewH(%d)) = %d", v, got)
		}
		if got := g.skewH(g.skewHInv(v)); got != v {
			t.Fatalf("skewH(skewHInv(%d)) = %d", v, got)
		}
	}
}

// TestGSkewBanksDealias checks the motivating property: two PCs that
// collide in one skewed bank index differently in the other, for at least
// the vast majority of colliding pairs.
func TestGSkewBanksDealias(t *testing.T) {
	g := NewGSkew(64, 8)
	bothCollide, oneCollides := 0, 0
	for a := uint64(0); a < 512; a++ {
		for b := a + 1; b < 512; b++ {
			_, a0, a1 := g.bankIndexes(0x1000 + a*4)
			_, b0, b1 := g.bankIndexes(0x1000 + b*4)
			if a0 == b0 && a1 == b1 {
				bothCollide++
			} else if a0 == b0 || a1 == b1 {
				oneCollides++
			}
		}
	}
	if oneCollides == 0 {
		t.Fatal("no single-bank collisions at all; test space too small?")
	}
	if bothCollide*4 > oneCollides {
		t.Errorf("double collisions (%d) not rare vs single (%d)", bothCollide, oneCollides)
	}
}

func TestGSkewLearnsBias(t *testing.T) {
	p := NewGSkew(1024, 12)
	correct := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if p.Access(0x400100, true) {
			correct++
		}
	}
	if float64(correct)/trials < 0.98 {
		t.Errorf("2bc-gskew on always-taken: %d/%d", correct, trials)
	}
}

func TestGSkewLearnsPattern(t *testing.T) {
	pattern := []bool{true, true, false}
	p := NewGSkew(4096, 12)
	if acc := patternAccuracy(p, pattern, 4000); acc < 0.95 {
		t.Errorf("2bc-gskew accuracy on TTN pattern = %.3f, want > 0.95", acc)
	}
}

func TestGSkewHistClamp(t *testing.T) {
	if g := NewGSkew(64, 0); g.histBits != 1 {
		t.Errorf("histBits 0 clamped to %d, want 1", g.histBits)
	}
	if g := NewGSkew(64, 100); g.histBits != 32 {
		t.Errorf("histBits 100 clamped to %d, want 32", g.histBits)
	}
}

func TestGSkewDeterministic(t *testing.T) {
	run := func() []bool {
		p := NewGSkew(512, 13)
		s := rng.New(9)
		out := make([]bool, 2000)
		for i := range out {
			out[i] = p.Access(uint64(0x1000+s.Intn(256)*4), s.Bool(0.6))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("2bc-gskew not deterministic")
		}
	}
}

func TestGSkewName(t *testing.T) {
	if got := NewGSkew(8192, 13).Name(); !strings.Contains(got, "8192") || !strings.Contains(got, "h13") {
		t.Errorf("name = %q", got)
	}
}

func TestGSkewPanicsOnBadEntries(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGSkew(100, 12)
}
