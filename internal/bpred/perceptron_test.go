package bpred

import (
	"strings"
	"testing"

	"intervalsim/internal/rng"
)

func TestPerceptronLearnsBias(t *testing.T) {
	p := NewPerceptron(256, 16)
	correct := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if p.Access(0x400100, true) {
			correct++
		}
	}
	if float64(correct)/trials < 0.98 {
		t.Errorf("perceptron on always-taken: %d/%d", correct, trials)
	}
}

func TestPerceptronLearnsLongCorrelation(t *testing.T) {
	// Outcome = outcome 12 branches ago: beyond a bimodal's reach, easily
	// linearly separable for a perceptron with ≥ 12 history bits.
	run := func(p Predictor) float64 {
		s := rng.New(41)
		hist := make([]bool, 0, 4096)
		correct, counted := 0, 0
		for i := 0; i < 6000; i++ {
			var taken bool
			if i < 12 {
				taken = s.Bool(0.5)
			} else {
				taken = hist[i-12]
			}
			hist = append(hist, taken)
			ok := p.Access(0x400200, taken)
			if i > 3000 {
				counted++
				if ok {
					correct++
				}
			}
		}
		return float64(correct) / float64(counted)
	}
	perc := run(NewPerceptron(256, 24))
	bim := run(NewBimodal(256))
	if perc < 0.95 {
		t.Errorf("perceptron accuracy on 12-back correlation = %.3f", perc)
	}
	if perc < bim+0.1 {
		t.Errorf("perceptron (%.3f) not clearly above bimodal (%.3f)", perc, bim)
	}
}

func TestPerceptronXORHistory(t *testing.T) {
	// Outcome = h[1] XOR'd pattern is NOT linearly separable; accuracy on a
	// true XOR of two history bits should be poor — documents the known
	// limitation rather than an aspiration.
	s := rng.New(43)
	p := NewPerceptron(64, 8)
	h1, h2 := false, false
	correct, counted := 0, 0
	for i := 0; i < 6000; i++ {
		taken := h1 != h2
		h2 = h1
		h1 = s.Bool(0.5)
		// Interleave the random "input" branches so they enter history.
		p.Access(0x500000, h1)
		ok := p.Access(0x500100, taken)
		if i > 3000 {
			counted++
			if ok {
				correct++
			}
		}
	}
	acc := float64(correct) / float64(counted)
	if acc > 0.9 {
		t.Errorf("perceptron claims %.3f on XOR; linear model should not do that", acc)
	}
}

func TestPerceptronWeightsClamp(t *testing.T) {
	p := NewPerceptron(16, 4)
	for i := 0; i < 10000; i++ {
		p.Access(0x1000, true)
	}
	for _, w := range p.weights[(0x1000>>2)&p.mask] {
		if w > 127 || w < -127 {
			t.Fatalf("weight %d escaped clamp", w)
		}
	}
}

func TestPerceptronPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewPerceptron(100, 8) },
		func() { NewPerceptron(64, 0) },
		func() { NewPerceptron(64, 65) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPerceptronName(t *testing.T) {
	if got := NewPerceptron(128, 20).Name(); !strings.Contains(got, "128") || !strings.Contains(got, "h20") {
		t.Errorf("name = %q", got)
	}
}

func TestPerceptronDeterministic(t *testing.T) {
	run := func() []bool {
		p := NewPerceptron(128, 12)
		s := rng.New(7)
		out := make([]bool, 500)
		for i := range out {
			out[i] = p.Access(uint64(0x1000+s.Intn(64)*4), s.Bool(0.7))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("perceptron not deterministic")
		}
	}
}
