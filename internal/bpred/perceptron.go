package bpred

import "fmt"

// Perceptron is Jiménez & Lin's perceptron branch predictor: a PC-indexed
// table of weight vectors dotted with the global history. It captures
// linearly separable correlations longer than a counter-table predictor can,
// at the cost of an adder tree in hardware. Included as an extension beyond
// the paper's setup: interval analysis is predictor-agnostic, and the A2
// experiment uses this to show how the *number* of miss events scales while
// the per-event penalty structure stays put.
type Perceptron struct {
	weights [][]int16 // [entry][history+1], index 0 is the bias weight
	history []int8    // ±1 per past outcome, most recent first
	mask    uint64
	theta   int32 // training threshold ≈ 1.93·h + 14 (from the paper)
}

// NewPerceptron returns a perceptron predictor with entries weight vectors
// (a positive power of two) over hist bits of global history.
func NewPerceptron(entries int, hist int) *Perceptron {
	checkPow2(entries, "perceptron entries")
	if hist < 1 || hist > 64 {
		panic("bpred: perceptron history out of [1,64]")
	}
	w := make([][]int16, entries)
	for i := range w {
		w[i] = make([]int16, hist+1)
	}
	return &Perceptron{
		weights: w,
		history: make([]int8, hist),
		mask:    uint64(entries - 1),
		theta:   int32(1.93*float64(hist) + 14),
	}
}

// Access implements Predictor.
func (p *Perceptron) Access(pc uint64, taken bool) bool {
	w := p.weights[(pc>>2)&p.mask]
	sum := int32(w[0])
	for i, h := range p.history {
		sum += int32(w[i+1]) * int32(h)
	}
	pred := sum >= 0
	correct := pred == taken

	// Train on a wrong prediction or a low-confidence right one.
	if !correct || abs32(sum) <= p.theta {
		t := int16(-1)
		if taken {
			t = 1
		}
		w[0] = clampW(w[0] + t)
		for i, h := range p.history {
			w[i+1] = clampW(w[i+1] + t*int16(h))
		}
	}

	// Shift the new outcome into the history (most recent first).
	copy(p.history[1:], p.history[:len(p.history)-1])
	if taken {
		p.history[0] = 1
	} else {
		p.history[0] = -1
	}
	return correct
}

// Name implements Predictor.
func (p *Perceptron) Name() string {
	return fmt.Sprintf("perceptron-%d-h%d", len(p.weights), len(p.history))
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

// clampW keeps weights in the 8-bit signed range hardware would use.
func clampW(v int16) int16 {
	const lim = 127
	if v > lim {
		return lim
	}
	if v < -lim {
		return -lim
	}
	return v
}
