package bpred

import (
	"testing"
	"testing/quick"

	"intervalsim/internal/rng"
)

// scripted is a test predictor whose correctness per access is dictated by
// a script, for pinning down chooser behaviour exactly.
type scripted struct {
	script []bool
	pos    int
}

func (s *scripted) Access(_ uint64, taken bool) bool {
	ok := s.script[s.pos%len(s.script)]
	s.pos++
	// Report "correct" by predicting the actual outcome when scripted right,
	// its inverse when scripted wrong.
	if ok {
		return taken == taken
	}
	return false
}

func (s *scripted) Name() string { return "scripted" }

// TestTournamentChooserUpdateSymmetry is the satellite property test: the
// chooser must move if and only if exactly one component was correct, it
// must move toward the correct component, and the movement must be
// symmetric — swapping the components mirrors every chooser step.
func TestTournamentChooserUpdateSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		script := make([]bool, 64)
		for i := range script {
			script[i] = s.Bool(0.5)
		}
		aScript := &scripted{script: script}
		bScript := &scripted{script: make([]bool, 64)}
		for i := range bScript.script {
			bScript.script[i] = s.Bool(0.5)
		}

		fwd := NewTournament(aScript, bScript, 16)
		rev := NewTournament(
			&scripted{script: bScript.script},
			&scripted{script: aScript.script},
			16,
		)
		const pc = 0x1000 // single PC: one chooser counter
		ci := (uint64(pc) >> 2) & fwd.mask
		for i := 0; i < 64; i++ {
			prevF := fwd.chooser[ci]
			prevR := rev.chooser[ci]
			fwd.Access(pc, true)
			rev.Access(pc, true)
			aOK := aScript.script[i]
			bOK := bScript.script[i]
			dF := int(fwd.chooser[ci]) - int(prevF)
			dR := int(rev.chooser[ci]) - int(prevR)
			switch {
			case aOK == bOK:
				// Agreement (both right or both wrong): no movement.
				if dF != 0 || dR != 0 {
					return false
				}
			case aOK:
				// Only A right: forward chooser moves toward A (up),
				// reversed chooser moves toward its B slot (down) —
				// saturation permitting.
				if dF < 0 || dR > 0 {
					return false
				}
				if prevF < 3 && dF != 1 {
					return false
				}
				if prevR > 0 && dR != -1 {
					return false
				}
			default:
				if dF > 0 || dR < 0 {
					return false
				}
				if prevF > 0 && dF != -1 {
					return false
				}
				if prevR < 3 && dR != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPerceptronSaturationProperty: under any access stream, every weight
// stays within the hardware clamp and the bias weight saturates (not wraps)
// under a constant outcome.
func TestPerceptronSaturationProperty(t *testing.T) {
	f := func(seed uint64, biasTaken bool) bool {
		s := rng.New(seed)
		p := NewPerceptron(32, 8)
		for i := 0; i < 4000; i++ {
			pc := uint64(0x1000 + s.Intn(64)*4)
			p.Access(pc, s.Bool(0.5))
		}
		for _, ws := range p.weights {
			for _, w := range ws {
				if w > 127 || w < -127 {
					return false
				}
			}
		}
		// Constant stream: training stops once confidence clears theta, so
		// the bias must settle past zero with the outcome's sign, inside the
		// clamp, and the prediction must be reliably correct.
		q := NewPerceptron(16, 4)
		for i := 0; i < 5000; i++ {
			q.Access(0x2000, biasTaken)
		}
		for i := 0; i < 50; i++ {
			if !q.Access(0x2000, biasTaken) {
				return false
			}
		}
		bias := q.weights[(0x2000>>2)&q.mask][0]
		if bias > 127 || bias < -127 {
			return false
		}
		if biasTaken {
			return bias > 0
		}
		return bias < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestGShareHistBitsEdges covers the degenerate history widths: zero bits
// must behave exactly like a bimodal table (history contributes nothing),
// and an oversized width must clamp to the index width and still learn.
func TestGShareHistBitsEdges(t *testing.T) {
	// histBits = 0: outcome stream must match a bimodal of the same size.
	g := NewGShare(1024, 0)
	b := NewBimodal(1024)
	s := rng.New(17)
	for i := 0; i < 3000; i++ {
		pc := uint64(0x1000 + s.Intn(512)*4)
		taken := s.Bool(0.7)
		if g.Access(pc, taken) != b.Access(pc, taken) {
			t.Fatal("gshare with 0 history bits diverged from bimodal")
		}
	}
	if g.history != 0 {
		t.Errorf("history register moved with 0 bits: %#x", g.history)
	}

	// histBits far above the index width: clamps, history register never
	// exceeds its mask, and the predictor still learns a pattern.
	gm := NewGShare(256, 64)
	if gm.histBits != 8 {
		t.Fatalf("histBits = %d, want clamp to 8", gm.histBits)
	}
	for i := 0; i < 2000; i++ {
		gm.Access(0x4000, i%3 != 0)
		if gm.history >= 1<<gm.histBits {
			t.Fatalf("history %#x escaped %d-bit mask", gm.history, gm.histBits)
		}
	}
	if acc := patternAccuracy(NewGShare(256, 64), []bool{true, true, false}, 3000); acc < 0.9 {
		t.Errorf("clamped gshare accuracy = %.3f", acc)
	}
}

// TestNewPredictorsNoCrossKindCollision: TAGE and 2bc-gskew configs must
// fingerprint differently from every existing kind at identical sizing
// fields, since the overlay cache keys on these values.
func TestNewPredictorsNoCrossKindCollision(t *testing.T) {
	kinds := PresetNames()
	seen := map[uint64]string{}
	for _, k := range kinds {
		c := Config{Kind: k, Entries: 4096, HistBits: 12, BTBEntries: 1024}
		fp := c.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("kinds %q and %q share fingerprint %#x", prev, k, fp)
		}
		seen[fp] = k
	}
}
