package bpred

import (
	"strings"
	"testing"
	"testing/quick"

	"intervalsim/internal/isa"
	"intervalsim/internal/rng"
)

func TestStatic(t *testing.T) {
	at := &Static{Taken: true}
	if !at.Access(0x100, true) || at.Access(0x100, false) {
		t.Error("static-taken misbehaved")
	}
	ant := &Static{Taken: false}
	if ant.Access(0x100, true) || !ant.Access(0x100, false) {
		t.Error("static-not-taken misbehaved")
	}
	if at.Name() != "static-taken" || ant.Name() != "static-not-taken" {
		t.Error("names wrong")
	}
}

func TestPerfect(t *testing.T) {
	var p Perfect
	for i := 0; i < 100; i++ {
		if !p.Access(uint64(i*4), i%3 == 0) {
			t.Fatal("perfect predictor was wrong")
		}
	}
}

func TestCounter2Saturation(t *testing.T) {
	c := counter2(0)
	for i := 0; i < 10; i++ {
		c = c.train(true)
	}
	if c != 3 || !c.taken() {
		t.Errorf("saturated up to %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.train(false)
	}
	if c != 0 || c.taken() {
		t.Errorf("saturated down to %d", c)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(1024)
	correct := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		if b.Access(0x400100, true) {
			correct++
		}
	}
	if correct < trials-2 {
		t.Errorf("bimodal on always-taken branch: %d/%d correct", correct, trials)
	}
}

func TestBimodalAliasesByPC(t *testing.T) {
	b := NewBimodal(16)
	// Two PCs 16*4 bytes apart collide in a 16-entry table; train one to
	// not-taken, the alias must see the trained state.
	for i := 0; i < 10; i++ {
		b.Access(0x1000, false)
	}
	if b.Access(0x1000+16*4, true) {
		t.Error("aliased entry unexpectedly predicted taken")
	}
}

// patternAccuracy trains p on a repeating direction pattern at a single PC
// and returns the accuracy over the last half of the trials.
func patternAccuracy(p Predictor, pattern []bool, trials int) float64 {
	correct := 0
	for i := 0; i < trials; i++ {
		ok := p.Access(0x400200, pattern[i%len(pattern)])
		if i >= trials/2 && ok {
			correct++
		}
	}
	return float64(correct) / float64(trials/2)
}

func TestGShareLearnsPattern(t *testing.T) {
	// T T N repeating: a bimodal predictor cannot exceed ~2/3, gshare with
	// history resolves it nearly perfectly.
	pattern := []bool{true, true, false}
	g := NewGShare(4096, 12)
	if acc := patternAccuracy(g, pattern, 3000); acc < 0.95 {
		t.Errorf("gshare accuracy on TTN pattern = %.3f, want > 0.95", acc)
	}
	b := NewBimodal(4096)
	if acc := patternAccuracy(b, pattern, 3000); acc > 0.75 {
		t.Errorf("bimodal accuracy on TTN pattern = %.3f, expected to be poor", acc)
	}
}

func TestLocalLearnsLoopExit(t *testing.T) {
	// 7 taken, 1 not-taken (an 8-iteration loop): local history of 10 bits
	// captures it.
	pattern := []bool{true, true, true, true, true, true, true, false}
	l := NewLocal(1024, 10)
	if acc := patternAccuracy(l, pattern, 4000); acc < 0.95 {
		t.Errorf("local accuracy on loop pattern = %.3f, want > 0.95", acc)
	}
}

func TestGShareHistoryClamped(t *testing.T) {
	g := NewGShare(16, 40) // history must clamp to index width (4)
	if g.histBits != 4 {
		t.Errorf("histBits = %d, want 4", g.histBits)
	}
	if !strings.Contains(g.Name(), "h4") {
		t.Errorf("name = %q", g.Name())
	}
}

func TestTournamentTracksBest(t *testing.T) {
	// Pattern TTN: gshare component should win over static-not-taken, and
	// the tournament should converge to gshare-level accuracy.
	pattern := []bool{true, true, false}
	tp := NewTournament(NewGShare(4096, 12), &Static{Taken: false}, 1024)
	if acc := patternAccuracy(tp, pattern, 4000); acc < 0.9 {
		t.Errorf("tournament accuracy = %.3f, want > 0.9", acc)
	}
	if !strings.Contains(tp.Name(), "tournament(") {
		t.Errorf("name = %q", tp.Name())
	}
}

func TestTournamentBeatsWorseComponentOnBiasedStream(t *testing.T) {
	s := rng.New(99)
	tp := NewTournament(&Static{Taken: true}, &Static{Taken: false}, 256)
	correct := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if tp.Access(0x1000+uint64(s.Intn(64))*4, s.Bool(0.9)) {
			correct++
		}
	}
	// Should converge to the taken component: ~90% accuracy.
	if float64(correct)/trials < 0.8 {
		t.Errorf("tournament on 90%% taken stream: %d/%d", correct, trials)
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(64)
	if b.Access(0x1000, 0x2000) {
		t.Error("cold BTB hit")
	}
	if !b.Access(0x1000, 0x2000) {
		t.Error("warm BTB missed")
	}
	// Target change is a miss (wrong target) and retrains.
	if b.Access(0x1000, 0x3000) {
		t.Error("stale target reported as hit")
	}
	if !b.Access(0x1000, 0x3000) {
		t.Error("retrained target missed")
	}
	// Conflicting PC evicts.
	b.Access(0x1000+64*4, 0x4000)
	if b.Access(0x1000, 0x3000) {
		t.Error("evicted entry reported as hit")
	}
}

func TestPow2Panics(t *testing.T) {
	cases := []func(){
		func() { NewBimodal(0) },
		func() { NewBimodal(100) },
		func() { NewGShare(-4, 2) },
		func() { NewLocal(8, 0) },
		func() { NewLocal(8, 17) },
		func() { NewBTB(3) },
		func() { NewTournament(Perfect{}, Perfect{}, 5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestUnitCountsAndMispredicts(t *testing.T) {
	u := &Unit{Dir: &Static{Taken: false}, BTB: NewBTB(16)}
	br := &isa.Inst{PC: 0x100, Class: isa.Branch, Src1: isa.NoReg, Src2: isa.NoReg, Dst: isa.NoReg, Target: 0x200, Taken: true}
	if !u.Access(br) {
		t.Error("static-not-taken should mispredict a taken branch")
	}
	nt := &isa.Inst{PC: 0x104, Class: isa.Branch, Src1: isa.NoReg, Src2: isa.NoReg, Dst: isa.NoReg, Target: 0x200, Taken: false}
	if u.Access(nt) {
		t.Error("static-not-taken should predict a not-taken branch")
	}
	if u.Stats.Branches != 2 || u.Stats.DirMispredict != 1 {
		t.Errorf("stats = %+v", u.Stats)
	}
}

func TestUnitBTBMiss(t *testing.T) {
	u := &Unit{Dir: &Static{Taken: true}, BTB: NewBTB(16)}
	br := &isa.Inst{PC: 0x100, Class: isa.Branch, Src1: isa.NoReg, Src2: isa.NoReg, Dst: isa.NoReg, Target: 0x200, Taken: true}
	if !u.Access(br) {
		t.Error("first taken branch should miss the cold BTB")
	}
	if u.Access(br) {
		t.Error("second access should hit BTB and direction")
	}
	if u.Stats.BTBMispredict != 1 {
		t.Errorf("stats = %+v", u.Stats)
	}
}

func TestUnitJump(t *testing.T) {
	u := &Unit{Dir: &Static{Taken: true}, BTB: NewBTB(16)}
	j := &isa.Inst{PC: 0x100, Class: isa.Jump, Src1: isa.NoReg, Src2: isa.NoReg, Dst: isa.NoReg, Target: 0x900, Taken: true}
	if !u.Access(j) {
		t.Error("cold jump should BTB-miss")
	}
	if u.Access(j) {
		t.Error("warm jump should hit")
	}
	if u.Stats.Jumps != 2 {
		t.Errorf("stats = %+v", u.Stats)
	}
}

func TestUnitPerfectNeverMispredicts(t *testing.T) {
	u := &Unit{Dir: Perfect{}, BTB: NewBTB(16)}
	s := rng.New(5)
	for i := 0; i < 500; i++ {
		in := &isa.Inst{
			PC: uint64(0x1000 + s.Intn(1024)*4), Class: isa.Branch,
			Src1: isa.NoReg, Src2: isa.NoReg, Dst: isa.NoReg,
			Target: 0x5000, Taken: s.Bool(0.5),
		}
		if u.Access(in) {
			t.Fatal("perfect unit mispredicted")
		}
	}
	j := &isa.Inst{PC: 0x100, Class: isa.Jump, Src1: isa.NoReg, Src2: isa.NoReg, Dst: isa.NoReg, Target: 0x900, Taken: true}
	if u.Access(j) {
		t.Fatal("perfect unit mispredicted a jump")
	}
}

func TestUnitPanicsOnNonControl(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	u := &Unit{Dir: Perfect{}}
	u.Access(&isa.Inst{Class: isa.IntALU, Src1: isa.NoReg, Src2: isa.NoReg, Dst: isa.NoReg})
}

func TestMPKI(t *testing.T) {
	s := Stats{DirMispredict: 5, BTBMispredict: 5}
	if got := s.MPKI(1000); got != 10 {
		t.Errorf("MPKI = %v, want 10", got)
	}
	if got := (Stats{}).MPKI(0); got != 0 {
		t.Errorf("MPKI(0 insts) = %v", got)
	}
}

// Determinism: identical access streams produce identical outcome streams.
func TestPredictorDeterminismProperty(t *testing.T) {
	mk := func() []Predictor {
		return []Predictor{
			NewBimodal(256),
			NewGShare(256, 8),
			NewLocal(64, 6),
			NewTournament(NewBimodal(128), NewGShare(128, 6), 128),
		}
	}
	f := func(seed uint64) bool {
		a, b := mk(), mk()
		s1, s2 := rng.New(seed), rng.New(seed)
		for k := range a {
			for i := 0; i < 300; i++ {
				pc1 := uint64(0x1000 + s1.Intn(128)*4)
				pc2 := uint64(0x1000 + s2.Intn(128)*4)
				if a[k].Access(pc1, s1.Bool(0.7)) != b[k].Access(pc2, s2.Bool(0.7)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Accuracy ordering on a predictable stream: perfect >= gshare >= static on
// a strongly biased, patterned workload.
func TestAccuracyOrdering(t *testing.T) {
	run := func(p Predictor) float64 {
		s := rng.New(31)
		correct, total := 0, 0
		for i := 0; i < 5000; i++ {
			pc := uint64(0x1000 + s.Intn(32)*4)
			taken := (i/3)%2 == 0 // patterned
			if p.Access(pc, taken) {
				correct++
			}
			total++
		}
		return float64(correct) / float64(total)
	}
	perfect := run(Perfect{})
	gshare := run(NewGShare(4096, 10))
	static := run(&Static{Taken: true})
	if !(perfect >= gshare && gshare > static) {
		t.Errorf("ordering violated: perfect=%.3f gshare=%.3f static=%.3f", perfect, gshare, static)
	}
}
