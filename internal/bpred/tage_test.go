package bpred

import (
	"strings"
	"testing"
	"testing/quick"

	"intervalsim/internal/rng"
)

func TestTAGELearnsBias(t *testing.T) {
	p := NewTAGE(256, 32)
	correct := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if p.Access(0x400100, true) {
			correct++
		}
	}
	if float64(correct)/trials < 0.98 {
		t.Errorf("tage on always-taken: %d/%d", correct, trials)
	}
}

func TestTAGELearnsPattern(t *testing.T) {
	// T T N repeating resolves with short history.
	pattern := []bool{true, true, false}
	p := NewTAGE(512, 32)
	if acc := patternAccuracy(p, pattern, 4000); acc < 0.95 {
		t.Errorf("tage accuracy on TTN pattern = %.3f, want > 0.95", acc)
	}
}

func TestTAGELearnsLongLoop(t *testing.T) {
	// A 50-iteration loop (49 taken, 1 not-taken). A 12-bit gshare sees an
	// all-taken history for most of the body and cannot pinpoint the exit
	// (ceiling 49/50); TAGE's longest component spans the whole period and
	// learns the exit exactly.
	run := func(p Predictor) float64 {
		correct, counted := 0, 0
		const trials = 10000
		for i := 0; i < trials; i++ {
			taken := i%50 != 49
			ok := p.Access(0x400200, taken)
			if i > trials/2 {
				counted++
				if ok {
					correct++
				}
			}
		}
		return float64(correct) / float64(counted)
	}
	tage := run(NewTAGE(1024, 64))
	gshare := run(NewGShare(16384, 12))
	if tage < 0.995 {
		t.Errorf("tage accuracy on 50-iteration loop = %.4f, want ~1", tage)
	}
	if gshare > 0.985 {
		t.Errorf("gshare accuracy = %.4f; expected the exit to be out of reach", gshare)
	}
}

func TestTAGEGeometry(t *testing.T) {
	p := NewTAGE(256, 64)
	for i := 1; i < tageTables; i++ {
		if p.histLen[i] <= p.histLen[i-1] {
			t.Fatalf("history lengths not strictly increasing: %v", p.histLen)
		}
	}
	if p.histLen[0] != tageMinHist {
		t.Errorf("shortest history = %d, want %d", p.histLen[0], tageMinHist)
	}
	if p.histLen[tageTables-1] != 64 {
		t.Errorf("longest history = %d, want 64", p.histLen[tageTables-1])
	}
	// Clamping at both ends.
	if lo := NewTAGE(64, 1); lo.maxHist != 2*tageMinHist {
		t.Errorf("tiny maxHist clamped to %d", lo.maxHist)
	}
	if hi := NewTAGE(64, 100000); hi.maxHist != 512 {
		t.Errorf("huge maxHist clamped to %d", hi.maxHist)
	}
}

func TestTAGEDeterministic(t *testing.T) {
	run := func() []bool {
		p := NewTAGE(256, 48)
		s := rng.New(7)
		out := make([]bool, 2000)
		for i := range out {
			out[i] = p.Access(uint64(0x1000+s.Intn(256)*4), s.Bool(0.6))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tage not deterministic")
		}
	}
}

func TestTAGEName(t *testing.T) {
	if got := NewTAGE(1024, 64).Name(); !strings.Contains(got, "1024") || !strings.Contains(got, "h64") {
		t.Errorf("name = %q", got)
	}
}

func TestTAGEPanicsOnBadEntries(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTAGE(100, 32)
}

// TestFoldedWindowProperty checks the incremental folded-history registers
// only depend on the last olen outcomes: two registers fed different
// prefixes but the same olen-bit suffix must converge to the same image.
// This is the invariant the O(1) update (insert new bit, cancel expiring
// bit) must preserve.
func TestFoldedWindowProperty(t *testing.T) {
	f := func(seed uint64, olen8, clen8 uint8) bool {
		olen := uint(olen8%60) + 2
		clen := uint(clen8%14) + 2
		feed := func(prefix []uint32, suffix []uint32) uint32 {
			fr := newFolded(olen, clen)
			all := append(append([]uint32{}, prefix...), suffix...)
			// Reconstruct the expiring bit exactly as TAGE does, from a
			// ring of past outcomes.
			for i, nb := range all {
				ob := uint32(0)
				if i >= int(olen) {
					ob = all[i-int(olen)]
				}
				fr.update(nb, ob)
			}
			return fr.comp
		}
		s := rng.New(seed)
		suffix := make([]uint32, olen)
		for i := range suffix {
			if s.Bool(0.5) {
				suffix[i] = 1
			}
		}
		p1 := make([]uint32, 37)
		p2 := make([]uint32, 91)
		for i := range p1 {
			if s.Bool(0.3) {
				p1[i] = 1
			}
		}
		for i := range p2 {
			if s.Bool(0.8) {
				p2[i] = 1
			}
		}
		return feed(p1, suffix) == feed(p2, suffix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTrain3Saturates(t *testing.T) {
	c := int8(0)
	for i := 0; i < 10; i++ {
		c = train3(c, true)
	}
	if c != 3 {
		t.Errorf("saturated up to %d", c)
	}
	for i := 0; i < 20; i++ {
		c = train3(c, false)
	}
	if c != -4 {
		t.Errorf("saturated down to %d", c)
	}
}
