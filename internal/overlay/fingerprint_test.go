package overlay

import (
	"encoding/json"
	"testing"

	"intervalsim/internal/bpred"
	"intervalsim/internal/cache"
)

// TestSpecFingerprintDistinctAcrossPredictorKinds: configurations that
// differ only in predictor must never share a speculation fingerprint —
// that fingerprint keys the memoized overlay cache and the durable result
// store, so a collision would silently replay one predictor's mispredict
// stream as another's.
func TestSpecFingerprintDistinctAcrossPredictorKinds(t *testing.T) {
	mem := cache.HierarchyConfig{
		L1I: cache.Config{Name: "L1I", Size: 64 << 10, LineSize: 64, Ways: 2, Repl: cache.LRU},
		L1D: cache.Config{Name: "L1D", Size: 64 << 10, LineSize: 64, Ways: 4, Repl: cache.LRU},
		L2:  cache.Config{Name: "L2", Size: 1 << 20, LineSize: 64, Ways: 8, Repl: cache.LRU},
		Lat: cache.Latencies{L1: 3, L2: 12, Mem: 250},
	}
	seen := map[uint64]string{}
	// Every preset kind, plus same-kind sizing variants.
	var preds []bpred.Config
	for _, name := range bpred.PresetNames() {
		c, _ := bpred.Preset(name)
		preds = append(preds, c)
	}
	preds = append(preds,
		bpred.Config{Kind: "tage", Entries: 2048, HistBits: 64, BTBEntries: 4096},
		bpred.Config{Kind: "tage", Entries: 1024, HistBits: 128, BTBEntries: 4096},
		bpred.Config{Kind: "2bc-gskew", Entries: 4096, HistBits: 13, BTBEntries: 4096},
	)
	for _, p := range preds {
		fp := SpecFingerprint(p, mem)
		if prev, dup := seen[fp]; dup {
			t.Errorf("predictors %q and %+v share spec fingerprint %#x", prev, p, fp)
		}
		seen[fp] = p.Kind
	}
}

// TestOverlayCacheSeparatesPredictorKinds drives the real shared cache: the
// same trace requested under two predictor kinds must come back as two
// distinct overlays with distinct outcome streams, never a shared entry.
func TestOverlayCacheSeparatesPredictorKinds(t *testing.T) {
	soa, _, mem := testSetup(t, 20_000)
	c := NewCache(8)
	tage, _ := bpred.Preset("tage")
	tour, _ := bpred.Preset("tournament")
	ovA, err := c.Get(soa, tage, mem)
	if err != nil {
		t.Fatal(err)
	}
	ovB, err := c.Get(soa, tour, mem)
	if err != nil {
		t.Fatal(err)
	}
	if ovA == ovB {
		t.Fatal("two predictor kinds shared one overlay")
	}
	if ovA.PredFP == ovB.PredFP {
		t.Fatal("predictor fingerprints collide")
	}
	diff := 0
	for i := range ovA.Code {
		if ovA.Code[i]&DirMiss != ovB.Code[i]&DirMiss {
			diff++
		}
	}
	if diff == 0 {
		t.Error("tage and tournament produced identical mispredict streams (suspicious)")
	}
	// Same config requested again must hit the memo, not recompute.
	ovA2, err := c.Get(soa, tage, mem)
	if err != nil {
		t.Fatal(err)
	}
	if ovA2 != ovA {
		t.Error("identical predictor config did not share the cached overlay")
	}
}

// TestPredFingerprintJSONFieldOrderInsensitive: the service layer round-trips
// predictor configs through JSON documents; two documents carrying the same
// fields in different order must decode to configs with identical
// fingerprints, while changing any field value must change it.
func TestPredFingerprintJSONFieldOrderInsensitive(t *testing.T) {
	docA := []byte(`{"Kind":"tage","Entries":1024,"HistBits":64,"BTBEntries":4096}`)
	docB := []byte(`{"BTBEntries":4096,"HistBits":64,"Kind":"tage","Entries":1024}`)
	var a, b bpred.Config
	if err := json.Unmarshal(docA, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(docB, &b); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("field order changed the fingerprint")
	}
	var c bpred.Config
	if err := json.Unmarshal([]byte(`{"Kind":"tage","Entries":2048,"HistBits":64,"BTBEntries":4096}`), &c); err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == a.Fingerprint() {
		t.Error("entry-count change did not move the fingerprint")
	}
	// A field's value landing in a different field must not alias (the
	// tagged serialization's job).
	var d, e bpred.Config
	json.Unmarshal([]byte(`{"Kind":"gshare","Entries":512}`), &d)
	json.Unmarshal([]byte(`{"Kind":"gshare","BTBEntries":512}`), &e)
	if d.Fingerprint() == e.Fingerprint() {
		t.Error("cross-field alias in fingerprint")
	}
}
