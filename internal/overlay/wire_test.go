package overlay

import (
	"bytes"
	"testing"
)

// TestOverlayWireRoundTrip: EncodeWire → DecodeWire reproduces the code
// bytes and spec fingerprints exactly, attached to the local trace.
func TestOverlayWireRoundTrip(t *testing.T) {
	soa, pred, mem := testSetup(t, 5_000)
	ov, err := Compute(soa, pred, mem)
	if err != nil {
		t.Fatal(err)
	}
	const fp = "f00dfeed00112233-0123456789abcdef"
	data := ov.EncodeWire(fp)
	got, err := DecodeWire(data, fp, soa)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != soa {
		t.Fatal("decoded overlay not attached to the local trace")
	}
	if got.PredFP != ov.PredFP || got.MemFP != ov.MemFP {
		t.Fatalf("spec fingerprints differ: got (%x,%x), want (%x,%x)",
			got.PredFP, got.MemFP, ov.PredFP, ov.MemFP)
	}
	if !bytes.Equal(got.Code, ov.Code) {
		t.Fatal("decoded code bytes differ")
	}
}

// TestOverlayWireRejects: cross-trace attachment, length mismatch, and
// corruption are all refused.
func TestOverlayWireRejects(t *testing.T) {
	soa, pred, mem := testSetup(t, 3_000)
	ov, err := Compute(soa, pred, mem)
	if err != nil {
		t.Fatal(err)
	}
	const fp = "aaaa-bbbb"
	data := ov.EncodeWire(fp)

	// A frame encoded for one trace must not attach to another.
	if _, err := DecodeWire(data, "cccc-dddd", soa); err == nil {
		t.Fatal("frame accepted under a different trace fingerprint")
	}
	// Nor to a trace of a different length, even under the right name.
	other, _, _ := testSetup(t, 2_000)
	if _, err := DecodeWire(data, fp, other); err == nil {
		t.Fatal("frame accepted against a shorter trace")
	}
	// Any single-byte flip is rejected (magic, structure, or checksum).
	for _, at := range []int{0, 5, 9, 12, len(data) / 2, len(data) - 2} {
		mut := append([]byte(nil), data...)
		mut[at] ^= 0x01
		if _, err := DecodeWire(mut, fp, soa); err == nil {
			t.Fatalf("flip at byte %d accepted", at)
		}
	}
	// Truncations.
	for _, cut := range []int{0, 8, 20, len(data) - 1} {
		if _, err := DecodeWire(data[:cut], fp, soa); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}
