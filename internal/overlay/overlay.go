// Package overlay precomputes speculation outcomes once per (trace,
// predictor config, cache geometry) and shares them across every timing
// configuration of a sweep.
//
// Interval analysis rests on a separation the detailed simulator does not
// exploit on its own: branch prediction outcomes and instruction-cache
// hit/miss classifications are properties of the program and the
// speculation structures, not of the pipeline timing parameters (frontend
// depth, ROB size, widths, FU and memory latencies) that design-space
// sweeps vary. The branch predictor and the L1 instruction cache are
// touched in strict program order by a trace-driven fetch stage, so their
// entire outcome stream can be computed by one fast pre-pass and then
// replayed — exactly — under any timing configuration.
//
// The data side is different, and the package is honest about it: L1D and
// L2 are accessed at issue time, whose order depends on timing, so
// per-access data classifications are NOT timing-invariant (measured: tens
// to hundreds of divergent load classifications per 200K loads between ROB
// sizes). The overlay still records a program-order D-class per memory
// access — that is what the functional profile behind the analytic interval
// model is defined over — but the cycle-level replay mode (uarch.Options.
// Overlay) deliberately keeps L1D/L2 live and replays only the provably
// invariant predictor and L1I outcomes, driving the shared L2 with the
// identical fetch-miss stream so results stay bit-for-bit equal to live
// simulation (gated by TestOverlayReplayMatchesLive).
//
// One byte per instruction, bit-packed:
//
//	bits 0-1  D-access class: 0 none, 1 L1 hit, 2 short miss, 3 long miss
//	          (loads and stores; program-order semantics)
//	bits 2-3  I-fetch class: 0 no access (same line as previous fetch),
//	          1 L1I hit, 2 short miss, 3 long miss
//	bit 4     direction misprediction (conditional branches)
//	bit 5     BTB misprediction (taken branches and jumps)
//	bit 6     value prediction hit (confident correct: dependence broken)
//	bit 7     value misspeculation (confident wrong: pipeline flush)
//
// Bits 6 and 7 are mutually exclusive and only ever set when the overlay
// was computed with a value-predictor configuration (VPredFP != 0); value
// prediction is driven in strict program order at fetch, so its outcomes
// are timing-invariant for the same reason the branch predictor's are.
package overlay

import (
	"fmt"

	"intervalsim/internal/bpred"
	"intervalsim/internal/cache"
	"intervalsim/internal/isa"
	"intervalsim/internal/trace"
	"intervalsim/internal/vpred"
)

// Code-byte layout. The D and I classes store cache.Level+1 so that zero
// means "no access".
const (
	DMask     uint8 = 0b11
	IShift          = 2
	IMask     uint8 = 0b11 << IShift
	DirMiss   uint8 = 1 << 4
	BTBMiss   uint8 = 1 << 5
	AnyMiss         = DirMiss | BTBMiss
	VPredHit  uint8 = 1 << 6
	VPredMiss uint8 = 1 << 7
)

// Overlay is the precomputed per-instruction miss-event stream of one trace
// under one speculation configuration. It is immutable once computed and
// safe to share across goroutines.
type Overlay struct {
	// Trace is the packed trace the overlay was computed over. Consumers
	// match by pointer identity: an overlay is only valid for replay against
	// the exact SoA it was built from.
	Trace *trace.SoA
	// PredFP and MemFP are the canonical fingerprints of the predictor
	// configuration and the cache-hierarchy geometry the outcomes were
	// computed under (bpred.Config.Fingerprint, cache.HierarchyConfig.
	// Fingerprint). A consumer whose configuration hashes differently must
	// fall back to live simulation.
	PredFP uint64
	MemFP  uint64
	// VPredFP is the canonical fingerprint of the value-predictor
	// configuration (vpred.Config.Fingerprint), or 0 when the overlay was
	// computed without value prediction — the pre-value-speculation state,
	// so legacy overlays remain valid for vpred-less consumers.
	VPredFP uint64
	// Code holds one packed outcome byte per trace record (see the package
	// comment for the bit layout).
	Code []uint8
}

// Len returns the number of per-instruction codes.
func (o *Overlay) Len() int { return len(o.Code) }

// DClass returns the D-access class of record i: the cache level that
// served the load or store, and whether the record accessed the data
// hierarchy at all.
func (o *Overlay) DClass(i int) (cache.Level, bool) {
	c := o.Code[i] & DMask
	if c == 0 {
		return 0, false
	}
	return cache.Level(c - 1), true
}

// IClass returns the I-fetch class of record i: the level that served the
// fetch, and whether the record began a new I-cache line at all (false for
// the straight-line instructions after the first of a line).
func (o *Overlay) IClass(i int) (cache.Level, bool) {
	c := (o.Code[i] & IMask) >> IShift
	if c == 0 {
		return 0, false
	}
	return cache.Level(c - 1), true
}

// Mispredicted reports whether the control instruction at record i was
// mispredicted (direction or target).
func (o *Overlay) Mispredicted(i int) bool { return o.Code[i]&AnyMiss != 0 }

// ValuePredHit reports whether record i's result was confidently and
// correctly value-predicted (its register dependence is broken).
func (o *Overlay) ValuePredHit(i int) bool { return o.Code[i]&VPredHit != 0 }

// ValueMisspec reports whether record i was confidently value-mispredicted
// (a misspeculation flush at dispatch).
func (o *Overlay) ValueMisspec(i int) bool { return o.Code[i]&VPredMiss != 0 }

// VPredEligible reports whether an instruction of the given class and
// destination register is value-predicted: loads and register-writing
// integer ALU results, the two streams the potential studies speculate on.
// The overlay pre-pass and the live simulator must agree on this predicate
// exactly, so it lives here and both call it.
func VPredEligible(class isa.Class, dst int8) bool {
	return class == isa.Load || (class == isa.IntALU && dst != isa.NoReg)
}

// Compute runs the speculation pre-pass: one program-order walk of the
// packed trace through a freshly built prediction unit and cache hierarchy,
// recording every outcome. The access interleaving matches both the
// trace-driven fetch stage (I-side: one hierarchy access per L1I line
// crossing) and core.FunctionalProfile (I access before the D or predictor
// access of the same instruction), which is what makes the overlay exact
// for both consumers.
//
// The cost is roughly one functional simulation — paid once per (trace,
// predictor, cache geometry) key and then amortized over every timing
// point that shares it.
func Compute(soa *trace.SoA, pred bpred.Config, mem cache.HierarchyConfig) (*Overlay, error) {
	return ComputeSpec(soa, pred, mem, nil)
}

// ComputeSpec is Compute with an optional value-predictor configuration:
// when vp is non-nil, a vpred.Runner walks the same program-order pass and
// bits 6/7 record each eligible instruction's speculation outcome. A nil vp
// is the legacy pre-pass, byte-identical to what Compute always produced.
func ComputeSpec(soa *trace.SoA, pred bpred.Config, mem cache.HierarchyConfig, vp *vpred.Config) (*Overlay, error) {
	unit, err := pred.Build()
	if err != nil {
		return nil, err
	}
	if err := mem.Validate(); err != nil {
		return nil, err
	}
	var vrun *vpred.Runner
	var vpredFP uint64
	if vp != nil {
		if vrun, err = vpred.NewRunner(*vp); err != nil {
			return nil, err
		}
		vpredFP = vp.Fingerprint()
	}
	h := cache.NewHierarchy(mem)
	lineMask := ^uint64(h.LineSizeI() - 1)

	n := soa.Len()
	ov := &Overlay{
		Trace:   soa,
		PredFP:  pred.Fingerprint(),
		MemFP:   mem.Fingerprint(),
		VPredFP: vpredFP,
		Code:    make([]uint8, n),
	}
	var curLine uint64
	haveLine := false
	var in isa.Inst
	for i := 0; i < n; i++ {
		var code uint8
		pc := soa.PC[i]
		if line := pc & lineMask; !haveLine || line != curLine {
			curLine, haveLine = line, true
			lvl, _ := h.Fetch(pc)
			code |= (uint8(lvl) + 1) << IShift
		}
		meta := soa.Meta[i]
		class := isa.Class(meta & trace.MetaClassMask)
		if vrun != nil && VPredEligible(class, soa.Dst[i]) {
			switch vrun.Access(pc) {
			case vpred.Hit:
				code |= VPredHit
			case vpred.Miss:
				code |= VPredMiss
			}
		}
		switch {
		case class == isa.Load || class == isa.Store:
			lvl, _ := h.Data(soa.Addr[i])
			code |= uint8(lvl) + 1
		case class.IsControl():
			// Unit.Access reads only PC, Target, Taken, and Class; fill just
			// those instead of materializing the full record.
			in.PC = pc
			in.Target = soa.Target[i]
			in.Taken = meta&trace.MetaTakenBit != 0
			in.Class = class
			dir0, btb0 := unit.Stats.DirMispredict, unit.Stats.BTBMispredict
			if unit.Access(&in) {
				// Attribute the redirect from the stat that moved; Unit
				// counts exactly one per mispredict.
				if unit.Stats.DirMispredict != dir0 {
					code |= DirMiss
				} else if unit.Stats.BTBMispredict != btb0 {
					code |= BTBMiss
				} else {
					return nil, fmt.Errorf("overlay: predictor mispredicted without counting (record %d)", i)
				}
			}
		}
		ov.Code[i] = code
	}
	return ov, nil
}
