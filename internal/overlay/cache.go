package overlay

import (
	"intervalsim/internal/bpred"
	icache "intervalsim/internal/cache"
	"intervalsim/internal/harness"
	"intervalsim/internal/trace"
	"intervalsim/internal/vpred"
)

// key identifies one overlay: the exact packed trace (by identity — a SoA
// is immutable after Pack, so the pointer is a stable name for its content)
// and the canonical speculation fingerprint (see SpecFingerprint).
type key struct {
	soa    *trace.SoA
	specFP uint64
}

// Cache is a bounded in-process overlay cache: sweeps and `experiments all`
// ask it for overlays instead of calling Compute, so each (trace, predictor,
// cache geometry) pre-pass runs exactly once no matter how many timing
// points — or concurrent harness workers — share it. Keeping an entry alive
// also pins its SoA, so the bound doubles as a memory cap.
type Cache struct {
	memo *harness.Memo[key, *Overlay]
}

// NewCache returns a Cache bounded to capacity overlays (LRU-ish eviction).
func NewCache(capacity int) *Cache {
	return &Cache{memo: harness.NewMemo[key, *Overlay](capacity)}
}

// Get returns the overlay for (soa, pred, mem), computing it on first use.
// Concurrent callers with the same key share one computation.
func (c *Cache) Get(soa *trace.SoA, pred bpred.Config, mem icache.HierarchyConfig) (*Overlay, error) {
	k := key{soa: soa, specFP: SpecFingerprint(pred, mem)}
	return c.memo.Get(k, func() (*Overlay, error) {
		return Compute(soa, pred, mem)
	})
}

// GetVia is Get with a caller-supplied producer: on a miss the cache invokes
// fill instead of calling Compute directly, which lets the service layer try
// a peer cache fill before falling back to local computation. fill must
// return an overlay for exactly (soa, pred, mem); concurrent callers with
// the same key share one invocation.
func (c *Cache) GetVia(soa *trace.SoA, pred bpred.Config, mem icache.HierarchyConfig, fill func() (*Overlay, error)) (*Overlay, error) {
	k := key{soa: soa, specFP: SpecFingerprint(pred, mem)}
	return c.memo.Get(k, fill)
}

// GetSpec is Get extended with an optional value-predictor configuration.
// A nil vp is exactly Get — same key, same pre-pass — so vpred-less callers
// share entries with code that has never heard of value prediction.
func (c *Cache) GetSpec(soa *trace.SoA, pred bpred.Config, mem icache.HierarchyConfig, vp *vpred.Config) (*Overlay, error) {
	k := key{soa: soa, specFP: SpecFingerprintV(pred, mem, vp)}
	return c.memo.Get(k, func() (*Overlay, error) {
		return ComputeSpec(soa, pred, mem, vp)
	})
}

// GetSpecVia is GetVia keyed on the full speculation configuration
// including the optional value predictor.
func (c *Cache) GetSpecVia(soa *trace.SoA, pred bpred.Config, mem icache.HierarchyConfig, vp *vpred.Config, fill func() (*Overlay, error)) (*Overlay, error) {
	k := key{soa: soa, specFP: SpecFingerprintV(pred, mem, vp)}
	return c.memo.Get(k, fill)
}

// Stats returns the hit/miss counts of the cache so far.
func (c *Cache) Stats() (hits, misses uint64) { return c.memo.Stats() }

// Counters returns the full counter snapshot — hits, misses, evictions, and
// live entries — for observability surfaces like intervalsimd's /metrics.
func (c *Cache) Counters() harness.MemoStats { return c.memo.Counters() }

// Shared is the process-wide overlay cache used by the experiments registry
// and the sweep tools. Sized generously relative to overlay cost (one byte
// per instruction): sixteen 2M-instruction overlays are 32MB.
var Shared = NewCache(16)
