package overlay

import (
	"sync"
	"testing"

	"intervalsim/internal/harness"
)

// TestCacheStressContention hammers one overlay cache from many goroutines
// requesting a mix of identical and distinct (predictor, geometry)
// fingerprints concurrently. It asserts the single-flight contract the
// service daemon depends on under -race: each distinct key is computed
// exactly once (misses == distinct keys), every caller of a key receives
// the identity-same overlay (proof of a single computation), and the
// counters reconcile with the request volume.
func TestCacheStressContention(t *testing.T) {
	soa, pred, mem := testSetup(t, 2_000)

	// Distinct keys: vary the predictor size and the L1I geometry, both of
	// which change a fingerprint. Latency-only variants of key 0 are also
	// thrown in — they must alias to key 0's entry, not add a key.
	type specKey struct {
		predEntries int
		l1iSize     int
	}
	specs := []specKey{
		{16384, 64 << 10},
		{8192, 64 << 10},
		{16384, 32 << 10},
		{8192, 32 << 10},
	}
	const (
		goroutines = 24
		rounds     = 12
	)
	c := NewCache(len(specs))

	results := make([]sync.Map, len(specs)) // key index → set of *Overlay seen
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				k := (g + r) % len(specs)
				p := pred
				p.Entries = specs[k].predEntries
				m := mem
				m.L1I.Size = specs[k].l1iSize
				if k == 0 && r%3 == 0 {
					// Latency-only change: same fingerprints, same key.
					m.Lat.Mem = 100 + r
				}
				ov, err := c.Get(soa, p, m)
				if err != nil {
					t.Error(err)
					return
				}
				results[k].Store(ov, true)
			}
		}(g)
	}
	close(start)
	wg.Wait()

	for k := range specs {
		n := 0
		results[k].Range(func(_, _ any) bool { n++; return true })
		if n != 1 {
			t.Errorf("key %d: callers saw %d distinct overlays, want 1 (exactly-once compute)", k, n)
		}
	}
	s := c.Counters()
	if s.Misses != uint64(len(specs)) {
		t.Errorf("misses = %d, want %d (one compute per distinct fingerprint)", s.Misses, len(specs))
	}
	total := uint64(goroutines * rounds)
	if s.Hits != total-uint64(len(specs)) {
		t.Errorf("hits = %d, want %d", s.Hits, total-uint64(len(specs)))
	}
	if s.Evictions != 0 || s.Entries != len(specs) {
		t.Errorf("evictions/entries = %d/%d, want 0/%d", s.Evictions, s.Entries, len(specs))
	}
	if got := s.HitRate(); got <= 0.9 {
		t.Errorf("hit rate = %v, want > 0.9 under this request mix", got)
	}
}

// TestCacheCountersEviction checks that overlay-cache evictions are counted
// and exported: a capacity-1 cache alternating between two keys must evict
// on every switch.
func TestCacheCountersEviction(t *testing.T) {
	soa, pred, mem := testSetup(t, 1_000)
	small := mem
	small.L1I.Size = 16 << 10

	c := NewCache(1)
	if _, err := c.Get(soa, pred, mem); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(soa, pred, small); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(soa, pred, mem); err != nil {
		t.Fatal(err)
	}
	want := harness.MemoStats{Hits: 0, Misses: 3, Evictions: 2, Entries: 1}
	if s := c.Counters(); s != want {
		t.Fatalf("Counters = %+v, want %+v", s, want)
	}
}
