package overlay

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"intervalsim/internal/trace"
)

// Wire format for overlays, used by the fleet's peer cache-fill RPC
// (GET/POST /v1/cache/overlay/<fingerprint>). An overlay is meaningless
// without its trace, so the frame names the trace it annotates by the
// trace's content fingerprint; the decoder refuses to attach the code
// bytes to any other trace. Like the trace frame, the payload carries a
// trailing CRC32C so torn or corrupted fills are rejected.
//
// Layout (little-endian):
//
//	8-byte magic "ISOVL1\r\n" (or "ISOVL2\r\n", see below)
//	u16 trace fingerprint length, then the fingerprint bytes
//	u64 PredFP
//	u64 MemFP
//	u64 VPredFP               (v2 frames only)
//	u32 code length n
//	n bytes of per-instruction code
//	u32 crc32c over everything after the magic, up to here
//
// Overlays computed without value prediction (VPredFP == 0) encode as v1,
// byte-identical to every frame the fleet has ever exchanged; overlays with
// value speculation need the extra fingerprint field and encode as v2. The
// decoder accepts both, so a mixed fleet degrades safely: an old daemon
// rejects v2 frames on the magic check and computes locally.
var (
	overlayWireMagic   = [8]byte{'I', 'S', 'O', 'V', 'L', '1', '\r', '\n'}
	overlayWireMagicV2 = [8]byte{'I', 'S', 'O', 'V', 'L', '2', '\r', '\n'}
)

var overlayCRCTable = crc32.MakeTable(crc32.Castagnoli)

const maxTraceFPLen = 256

// EncodeWire serializes the overlay, labeled with the fingerprint of the
// trace it annotates.
func (o *Overlay) EncodeWire(traceFP string) []byte {
	if len(traceFP) > maxTraceFPLen {
		traceFP = traceFP[:maxTraceFPLen]
	}
	v2 := o.VPredFP != 0
	n := len(o.Code)
	extra := 0
	if v2 {
		extra = 8
	}
	buf := make([]byte, 0, len(overlayWireMagic)+2+len(traceFP)+8+8+extra+4+n+4)
	if v2 {
		buf = append(buf, overlayWireMagicV2[:]...)
	} else {
		buf = append(buf, overlayWireMagic[:]...)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(traceFP)))
	buf = append(buf, traceFP...)
	buf = binary.LittleEndian.AppendUint64(buf, o.PredFP)
	buf = binary.LittleEndian.AppendUint64(buf, o.MemFP)
	if v2 {
		buf = binary.LittleEndian.AppendUint64(buf, o.VPredFP)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = append(buf, o.Code...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[8:], overlayCRCTable))
	return buf
}

// DecodeWire parses an overlay frame and attaches it to soa, which must be
// the local copy of the trace the frame was encoded against: the caller
// passes the fingerprint it computed for soa, and the decode fails unless
// the frame names the same trace, the checksum holds, and the code length
// matches soa exactly. The spec fingerprint (PredFP, MemFP, VPredFP) is
// returned to the caller via the Overlay for its own verification.
func DecodeWire(data []byte, traceFP string, soa *trace.SoA) (*Overlay, error) {
	const head = 8 + 2
	if len(data) < head+8+8+4+4 {
		return nil, fmt.Errorf("overlay: wire frame too short (%d bytes)", len(data))
	}
	var v2 bool
	switch [8]byte(data[:8]) {
	case overlayWireMagic:
	case overlayWireMagicV2:
		v2 = true
	default:
		return nil, fmt.Errorf("overlay: bad wire magic")
	}
	extra := 0
	if v2 {
		extra = 8
	}
	fpLen := int(binary.LittleEndian.Uint16(data[8:]))
	if fpLen > maxTraceFPLen || len(data) < head+fpLen+8+8+extra+4+4 {
		return nil, fmt.Errorf("overlay: wire frame truncated")
	}
	gotFP := string(data[head : head+fpLen])
	at := head + fpLen
	predFP := binary.LittleEndian.Uint64(data[at:])
	memFP := binary.LittleEndian.Uint64(data[at+8:])
	at += 16
	var vpredFP uint64
	if v2 {
		vpredFP = binary.LittleEndian.Uint64(data[at:])
		at += 8
	}
	n := int(binary.LittleEndian.Uint32(data[at:])) // u32, so never negative after widening
	at += 4
	if len(data) != at+n+4 {
		return nil, fmt.Errorf("overlay: wire frame is %d bytes, want %d for %d code bytes", len(data), at+n+4, n)
	}
	if got := crc32.Checksum(data[8:len(data)-4], overlayCRCTable); got != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, fmt.Errorf("overlay: wire frame checksum mismatch")
	}
	if gotFP != traceFP {
		return nil, fmt.Errorf("overlay: frame is for trace %s, want %s", gotFP, traceFP)
	}
	if v2 && vpredFP == 0 {
		return nil, fmt.Errorf("overlay: v2 wire frame without a value-predictor fingerprint")
	}
	if n != soa.Len() {
		return nil, fmt.Errorf("overlay: frame carries %d code bytes for a %d-record trace", n, soa.Len())
	}
	code := make([]uint8, n)
	copy(code, data[at:at+n])
	return &Overlay{Trace: soa, PredFP: predFP, MemFP: memFP, VPredFP: vpredFP, Code: code}, nil
}
