package overlay

import (
	"sync"
	"testing"

	"intervalsim/internal/bpred"
	"intervalsim/internal/cache"
	"intervalsim/internal/isa"
	"intervalsim/internal/trace"
	"intervalsim/internal/workload"
)

func testSetup(t *testing.T, insts int) (*trace.SoA, bpred.Config, cache.HierarchyConfig) {
	t.Helper()
	wc, ok := workload.SuiteConfig("gzip")
	if !ok {
		t.Fatal("unknown workload gzip")
	}
	tr, err := trace.ReadAll(workload.MustNew(wc, insts))
	if err != nil {
		t.Fatal(err)
	}
	pred := bpred.Config{Kind: "tournament", Entries: 16384, HistBits: 12, BTBEntries: 4096}
	mem := cache.HierarchyConfig{
		L1I: cache.Config{Name: "L1I", Size: 64 << 10, LineSize: 64, Ways: 2, Repl: cache.LRU},
		L1D: cache.Config{Name: "L1D", Size: 64 << 10, LineSize: 64, Ways: 4, Repl: cache.LRU},
		L2:  cache.Config{Name: "L2", Size: 1 << 20, LineSize: 64, Ways: 8, Repl: cache.LRU},
		Lat: cache.Latencies{L1: 3, L2: 12, Mem: 250},
	}
	return trace.Pack(tr), pred, mem
}

// TestComputeMatchesDirectWalk cross-checks the packed overlay against an
// independent program-order walk of the same trace through freshly built
// structures: every D class, I class, and misprediction bit must agree, and
// the aggregate counts must match the walk's predictor and cache statistics.
func TestComputeMatchesDirectWalk(t *testing.T) {
	soa, pred, mem := testSetup(t, 30_000)
	ov, err := Compute(soa, pred, mem)
	if err != nil {
		t.Fatal(err)
	}
	if ov.Len() != soa.Len() {
		t.Fatalf("overlay length %d, trace length %d", ov.Len(), soa.Len())
	}
	if ov.Trace != soa || ov.PredFP != pred.Fingerprint() || ov.MemFP != mem.Fingerprint() {
		t.Fatal("overlay provenance fields do not match inputs")
	}

	unit, err := pred.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := cache.NewHierarchy(mem)
	lineMask := ^uint64(h.LineSizeI() - 1)
	var curLine uint64
	haveLine := false
	var mispredicts, iAccesses, iMisses int
	var in isa.Inst
	for i := 0; i < soa.Len(); i++ {
		soa.InstAt(i, &in)
		if line := in.PC & lineMask; !haveLine || line != curLine {
			curLine, haveLine = line, true
			lvl, _ := h.Fetch(in.PC)
			gotLvl, accessed := ov.IClass(i)
			if !accessed || gotLvl != lvl {
				t.Fatalf("record %d: I class = (%v,%v), walk says (%v,true)", i, gotLvl, accessed, lvl)
			}
			iAccesses++
			if lvl != cache.L1Hit {
				iMisses++
			}
		} else if _, accessed := ov.IClass(i); accessed {
			t.Fatalf("record %d: overlay has an I access on a straight-line instruction", i)
		}
		switch {
		case in.Class == isa.Load || in.Class == isa.Store:
			lvl, _ := h.Data(in.Addr)
			gotLvl, accessed := ov.DClass(i)
			if !accessed || gotLvl != lvl {
				t.Fatalf("record %d: D class = (%v,%v), walk says (%v,true)", i, gotLvl, accessed, lvl)
			}
		case in.Class.IsControl():
			miss := unit.Access(&in)
			if ov.Mispredicted(i) != miss {
				t.Fatalf("record %d: overlay mispredict %v, walk says %v", i, ov.Mispredicted(i), miss)
			}
			if miss {
				mispredicts++
			}
		default:
			if _, accessed := ov.DClass(i); accessed {
				t.Fatalf("record %d: D access on a non-memory instruction", i)
			}
			if ov.Mispredicted(i) {
				t.Fatalf("record %d: mispredict bit on a non-control instruction", i)
			}
		}
	}
	if mispredicts == 0 || iMisses == 0 {
		t.Fatalf("degenerate trace: %d mispredicts, %d I-misses (test proves nothing)", mispredicts, iMisses)
	}
	// The DirMiss/BTBMiss split must account for every redirect exactly once.
	var dir, btb int
	for i := 0; i < ov.Len(); i++ {
		c := ov.Code[i]
		if c&DirMiss != 0 {
			dir++
		}
		if c&BTBMiss != 0 {
			btb++
		}
		if c&AnyMiss == AnyMiss {
			t.Fatalf("record %d: both mispredict bits set", i)
		}
	}
	if uint64(dir) != unit.Stats.DirMispredict || uint64(btb) != unit.Stats.BTBMispredict {
		t.Fatalf("mispredict split %d/%d, walk stats %d/%d",
			dir, btb, unit.Stats.DirMispredict, unit.Stats.BTBMispredict)
	}
}

// TestCacheSharesComputation checks the cache contract: one computation per
// distinct (trace, predictor, geometry) key no matter how many concurrent
// callers, identity-shared results, and keys that ignore latency-only and
// label-only differences.
func TestCacheSharesComputation(t *testing.T) {
	soa, pred, mem := testSetup(t, 5_000)
	c := NewCache(8)

	const callers = 8
	got := make([]*Overlay, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ov, err := c.Get(soa, pred, mem)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = ov
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent Gets returned different overlay instances")
		}
	}
	if hits, misses := c.Stats(); misses != 1 || hits != callers-1 {
		t.Errorf("stats = %d hits / %d misses, want %d/1", hits, misses, callers-1)
	}

	// Latency-only config changes hit the same entry (the sweep-sharing
	// property); a geometry change misses.
	slow := mem
	slow.Lat = cache.Latencies{L1: 1, L2: 30, Mem: 800}
	ov2, err := c.Get(soa, pred, slow)
	if err != nil {
		t.Fatal(err)
	}
	if ov2 != got[0] {
		t.Error("latency-only change recomputed the overlay")
	}
	smallL1I := mem
	smallL1I.L1I.Size = 16 << 10
	ov3, err := c.Get(soa, pred, smallL1I)
	if err != nil {
		t.Fatal(err)
	}
	if ov3 == got[0] {
		t.Error("geometry change shared an overlay")
	}
}

// TestComputeRejectsBadConfigs checks that configuration errors surface
// instead of producing a bogus overlay.
func TestComputeRejectsBadConfigs(t *testing.T) {
	soa, pred, mem := testSetup(t, 1_000)
	badPred := pred
	badPred.Kind = "oracle-of-delphi"
	if _, err := Compute(soa, badPred, mem); err == nil {
		t.Error("unknown predictor kind: want error")
	}
	badMem := mem
	badMem.L1I.LineSize = 48
	if _, err := Compute(soa, pred, badMem); err == nil {
		t.Error("invalid cache geometry: want error")
	}
}
