package overlay

import (
	"intervalsim/internal/bpred"
	icache "intervalsim/internal/cache"
	"intervalsim/internal/vpred"
)

// SpecFingerprint canonically names one speculation configuration: the
// combination of branch-predictor and cache-hierarchy geometry that fully
// determines an overlay's per-instruction outcomes. It mixes the two
// config fingerprints (which already exclude timing-only knobs such as
// latencies) so callers that key on "what speculation behavior will this
// machine exhibit" — the overlay cache, the durable result store's identity
// keys — share one canonical value.
func SpecFingerprint(pred bpred.Config, mem icache.HierarchyConfig) uint64 {
	h := pred.Fingerprint()
	// Boost-style mix: order-sensitive, avalanches both inputs.
	h ^= mem.Fingerprint() + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	return h
}

// SpecFingerprintV extends SpecFingerprint with an optional value-predictor
// configuration. A nil vp returns exactly the legacy SpecFingerprint value,
// so every pre-value-prediction cache key, store key, and peer-fill name is
// untouched; a non-nil vp mixes its fingerprint in the same boost style.
func SpecFingerprintV(pred bpred.Config, mem icache.HierarchyConfig, vp *vpred.Config) uint64 {
	h := SpecFingerprint(pred, mem)
	if vp != nil {
		h ^= vp.Fingerprint() + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	return h
}
