package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// ParseConfig decodes a benchmark configuration from JSON and validates it.
// Unknown fields are rejected so typos in hand-written configuration files
// fail loudly. The field names match the Config struct, e.g.:
//
//	{
//	  "Name": "mybench", "Seed": 7,
//	  "Regions": 16, "BlocksPerRegion": 12,
//	  "BlockSize": {"Min": 4, "Max": 9},
//	  "LoopTrip": {"Min": 8, "Max": 32},
//	  "RegionTheta": 0.8,
//	  "LoadFrac": 0.25, "StoreFrac": 0.1,
//	  "ChainProb": 0.5,
//	  "TakenBias": 0.95,
//	  "DataFootprint": 262144, "StrideFrac": 0.3, "Locality": 1.2
//	}
func ParseConfig(r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("workload: parsing config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// EncodeConfig writes c as indented JSON, the inverse of ParseConfig.
func EncodeConfig(w io.Writer, c Config) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}
