package workload

// Suite returns the built-in ten-benchmark suite. Each configuration is a
// synthetic stand-in for a SPEC CPU2000 integer benchmark, tuned so its
// *first-order characteristics* — branch misprediction rate, inherent ILP,
// code footprint (I-cache behaviour), and data footprint/locality (short and
// long D-cache misses) — land in the regime reported for the original
// program in the published characterization literature. The names are kept
// for readability of the experiment tables; these are mimics, not the SPEC
// programs (see DESIGN.md, "Substitutions").
//
// The knobs that matter per benchmark:
//   - branch-heavy / hard-to-predict: twolf, vpr, crafty (higher
//     RandomBranchFrac, random bias near 0.5)
//   - big-code / I-cache-bound: gcc, perlbmk, vortex (many regions, low
//     RegionTheta so the dispatcher sprays over cold code)
//   - memory-bound / long D-misses: mcf (huge footprint, low locality, long
//     serial chains — classic pointer chasing)
//   - high-ILP compute: gap, gzip (low ChainProb, streaming accesses)
func Suite() []Config {
	return []Config{
		{
			Name: "gzip", Seed: 0x67a1b001,
			Regions: 8, BlocksPerRegion: 12,
			BlockSize: Range{4, 10}, LoopTrip: Range{16, 64}, RegionTheta: 1.2,
			LoadFrac: 0.24, StoreFrac: 0.12, MulFrac: 0.01, DivFrac: 0.001,
			ChainProb:        0.45,
			RandomBranchFrac: 0.06, RandomBranchBias: 0.4,
			PatternBranchFrac: 0.15, TakenBias: 0.96,
			DataFootprint: 256 << 10, StrideFrac: 0.7, Locality: 1.4,
		},
		{
			Name: "vpr", Seed: 0x67a1b002,
			Regions: 16, BlocksPerRegion: 16,
			BlockSize: Range{4, 9}, LoopTrip: Range{8, 32}, RegionTheta: 1.0,
			LoadFrac: 0.28, StoreFrac: 0.10, MulFrac: 0.02, DivFrac: 0.002, FPFrac: 0.08,
			ChainProb:        0.55,
			RandomBranchFrac: 0.08, RandomBranchBias: 0.45,
			PatternBranchFrac: 0.10, TakenBias: 0.96,
			DataFootprint: 384 << 10, StrideFrac: 0.3, Locality: 1.3,
		},
		{
			Name: "gcc", Seed: 0x67a1b003,
			Regions: 96, BlocksPerRegion: 24,
			BlockSize: Range{4, 10}, LoopTrip: Range{6, 24}, RegionTheta: 0.3,
			LoadFrac: 0.25, StoreFrac: 0.13, MulFrac: 0.01, DivFrac: 0.001,
			ChainProb:        0.5,
			RandomBranchFrac: 0.05, RandomBranchBias: 0.45,
			PatternBranchFrac: 0.12, TakenBias: 0.97,
			DataFootprint: 512 << 10, StrideFrac: 0.3, Locality: 1.5,
		},
		{
			Name: "mcf", Seed: 0x67a1b004,
			Regions: 6, BlocksPerRegion: 10,
			BlockSize: Range{4, 8}, LoopTrip: Range{8, 32}, RegionTheta: 1.2,
			LoadFrac: 0.34, StoreFrac: 0.09, MulFrac: 0.01,
			ChainProb:        0.75,
			RandomBranchFrac: 0.08, RandomBranchBias: 0.45,
			PatternBranchFrac: 0.05, TakenBias: 0.95,
			DataFootprint: 8 << 20, StrideFrac: 0.05, Locality: 1.0,
		},
		{
			Name: "crafty", Seed: 0x67a1b005,
			Regions: 48, BlocksPerRegion: 16,
			BlockSize: Range{4, 9}, LoopTrip: Range{6, 20}, RegionTheta: 0.6,
			LoadFrac: 0.27, StoreFrac: 0.08, MulFrac: 0.02, DivFrac: 0.005,
			ChainProb:        0.4,
			RandomBranchFrac: 0.08, RandomBranchBias: 0.5,
			PatternBranchFrac: 0.08, TakenBias: 0.95,
			DataFootprint: 256 << 10, StrideFrac: 0.2, Locality: 1.5,
		},
		{
			Name: "parser", Seed: 0x67a1b006,
			Regions: 32, BlocksPerRegion: 20,
			BlockSize: Range{3, 8}, LoopTrip: Range{6, 24}, RegionTheta: 0.8,
			LoadFrac: 0.26, StoreFrac: 0.11, MulFrac: 0.01, DivFrac: 0.001,
			ChainProb:        0.5,
			RandomBranchFrac: 0.06, RandomBranchBias: 0.5,
			PatternBranchFrac: 0.12, TakenBias: 0.96,
			DataFootprint: 768 << 10, StrideFrac: 0.2, Locality: 1.2,
		},
		{
			Name: "perlbmk", Seed: 0x67a1b007,
			Regions: 80, BlocksPerRegion: 20,
			BlockSize: Range{4, 10}, LoopTrip: Range{6, 24}, RegionTheta: 0.2,
			LoadFrac: 0.27, StoreFrac: 0.14, MulFrac: 0.01, DivFrac: 0.001,
			ChainProb:        0.5,
			RandomBranchFrac: 0.03, RandomBranchBias: 0.45,
			PatternBranchFrac: 0.12, TakenBias: 0.975,
			DataFootprint: 384 << 10, StrideFrac: 0.3, Locality: 1.4,
		},
		{
			Name: "gap", Seed: 0x67a1b008,
			Regions: 12, BlocksPerRegion: 14,
			BlockSize: Range{5, 11}, LoopTrip: Range{16, 48}, RegionTheta: 1.0,
			LoadFrac: 0.24, StoreFrac: 0.10, MulFrac: 0.04, DivFrac: 0.002, FPFrac: 0.05,
			ChainProb:        0.3,
			RandomBranchFrac: 0.02, RandomBranchBias: 0.35,
			PatternBranchFrac: 0.10, TakenBias: 0.98,
			DataFootprint: 512 << 10, StrideFrac: 0.5, Locality: 1.4,
		},
		{
			Name: "vortex", Seed: 0x67a1b009,
			Regions: 112, BlocksPerRegion: 24,
			BlockSize: Range{4, 10}, LoopTrip: Range{8, 24}, RegionTheta: 0.25,
			LoadFrac: 0.28, StoreFrac: 0.15, MulFrac: 0.01,
			ChainProb:        0.5,
			RandomBranchFrac: 0.01, RandomBranchBias: 0.4,
			PatternBranchFrac: 0.08, TakenBias: 0.98,
			DataFootprint: 512 << 10, StrideFrac: 0.4, Locality: 1.5,
		},
		{
			Name: "twolf", Seed: 0x67a1b00a,
			Regions: 24, BlocksPerRegion: 14,
			BlockSize: Range{3, 8}, LoopTrip: Range{6, 20}, RegionTheta: 0.8,
			LoadFrac: 0.27, StoreFrac: 0.09, MulFrac: 0.03, DivFrac: 0.003, FPFrac: 0.04,
			ChainProb:        0.6,
			RandomBranchFrac: 0.12, RandomBranchBias: 0.5,
			PatternBranchFrac: 0.05, TakenBias: 0.94,
			DataFootprint: 256 << 10, StrideFrac: 0.2, Locality: 1.2,
		},
	}
}

// SuiteConfig returns the suite entry with the given name.
func SuiteConfig(name string) (Config, bool) {
	for _, c := range Suite() {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}

// ILPVariants returns low/medium/high inherent-ILP variants of base, equal
// in everything except dependence-chain density. Used by the E6 experiment
// (contributor iii: inherent program ILP).
func ILPVariants(base Config) []Config {
	out := make([]Config, 0, 3)
	for _, v := range []struct {
		suffix string
		chain  float64
	}{
		{"low-ilp", 0.9},
		{"mid-ilp", 0.55},
		{"high-ilp", 0.15},
	} {
		c := base
		c.Name = base.Name + "-" + v.suffix
		c.ChainProb = v.chain
		out = append(out, c)
	}
	return out
}
