package workload

import (
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"intervalsim/internal/isa"
	"intervalsim/internal/rng"
	"intervalsim/internal/trace"
)

func testConfig() Config {
	return Config{
		Name: "test", Seed: 42,
		Regions: 4, BlocksPerRegion: 8,
		BlockSize: Range{4, 8}, LoopTrip: Range{4, 16}, RegionTheta: 0.8,
		LoadFrac: 0.25, StoreFrac: 0.10, MulFrac: 0.02, DivFrac: 0.002, FPFrac: 0.05,
		ChainProb:        0.5,
		RandomBranchFrac: 0.2, RandomBranchBias: 0.5,
		PatternBranchFrac: 0.2, TakenBias: 0.9,
		DataFootprint: 1 << 20, StrideFrac: 0.4, Locality: 0.8,
	}
}

func TestValidateAcceptsSuiteAndTestConfig(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("test config invalid: %v", err)
	}
	for _, c := range Suite() {
		if err := c.Validate(); err != nil {
			t.Errorf("suite config %s invalid: %v", c.Name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"empty name", func(c *Config) { c.Name = "" }},
		{"zero regions", func(c *Config) { c.Regions = 0 }},
		{"one block", func(c *Config) { c.BlocksPerRegion = 1 }},
		{"bad block size", func(c *Config) { c.BlockSize = Range{0, 4} }},
		{"inverted block size", func(c *Config) { c.BlockSize = Range{8, 4} }},
		{"bad trip", func(c *Config) { c.LoopTrip = Range{0, 0} }},
		{"no data", func(c *Config) { c.DataFootprint = 0 }},
		{"load frac > 1", func(c *Config) { c.LoadFrac = 1.5 }},
		{"negative frac", func(c *Config) { c.StoreFrac = -0.1 }},
		{"mix over 1", func(c *Config) { c.LoadFrac, c.StoreFrac = 0.7, 0.7 }},
		{"branch fracs over 1", func(c *Config) { c.RandomBranchFrac, c.PatternBranchFrac = 0.6, 0.6 }},
		{"negative theta", func(c *Config) { c.RegionTheta = -1 }},
		{"negative locality", func(c *Config) { c.Locality = -0.5 }},
	}
	for _, m := range mutations {
		c := testConfig()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestNewRejectsBadLength(t *testing.T) {
	if _, err := New(testConfig(), 0); err == nil {
		t.Error("length 0 accepted")
	}
	if _, err := New(Config{}, 100); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestGeneratorEmitsExactlyLength(t *testing.T) {
	g := MustNew(testConfig(), 5000)
	n := 0
	for {
		_, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 5000 {
		t.Fatalf("emitted %d, want 5000", n)
	}
	// EOF is sticky.
	if _, err := g.Next(); err != io.EOF {
		t.Fatal("EOF not sticky")
	}
}

func TestGeneratorInstructionsValid(t *testing.T) {
	g := MustNew(testConfig(), 20000)
	for i := 0; ; i++ {
		in, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if verr := in.Validate(); verr != nil {
			t.Fatalf("instruction %d invalid: %v (%v)", i, verr, in)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	read := func() []isa.Inst {
		tr, err := trace.ReadAll(MustNew(testConfig(), 3000))
		if err != nil {
			t.Fatal(err)
		}
		return tr.Insts
	}
	a, b := read(), read()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
}

func TestGeneratorSeedSensitivity(t *testing.T) {
	c1, c2 := testConfig(), testConfig()
	c2.Seed = 43
	t1, err := trace.ReadAll(MustNew(c1, 2000))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := trace.ReadAll(MustNew(c2, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(t1.Insts, t2.Insts) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGeneratorDeterminismProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c := testConfig()
		c.Seed = seed
		t1, err1 := trace.ReadAll(MustNew(c, 500))
		t2, err2 := trace.ReadAll(MustNew(c, 500))
		return err1 == nil && err2 == nil && reflect.DeepEqual(t1.Insts, t2.Insts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// classMix counts dynamic class fractions.
func classMix(t *testing.T, cfg Config, n int) map[isa.Class]float64 {
	t.Helper()
	counts := make(map[isa.Class]int)
	g := MustNew(cfg, n)
	total := 0
	for {
		in, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		counts[in.Class]++
		total++
	}
	out := make(map[isa.Class]float64)
	for c, k := range counts {
		out[c] = float64(k) / float64(total)
	}
	return out
}

func TestMixRoughlyMatchesConfig(t *testing.T) {
	cfg := testConfig()
	mix := classMix(t, cfg, 100000)
	// Branches+jumps take roughly 1/(avg block size+1) of the slots, the rest
	// follow the configured mix. Just check the orderings and coarse levels.
	if mix[isa.Branch] < 0.08 || mix[isa.Branch] > 0.25 {
		t.Errorf("branch fraction = %.3f, want ~0.1–0.25", mix[isa.Branch])
	}
	loadWant := cfg.LoadFrac * (1 - mix[isa.Branch] - mix[isa.Jump])
	if mix[isa.Load] < loadWant*0.7 || mix[isa.Load] > loadWant*1.3 {
		t.Errorf("load fraction = %.3f, want about %.3f", mix[isa.Load], loadWant)
	}
	if mix[isa.IntALU] < 0.3 {
		t.Errorf("ALU fraction = %.3f suspiciously low", mix[isa.IntALU])
	}
	if mix[isa.Store] >= mix[isa.Load] {
		t.Errorf("stores (%.3f) should be rarer than loads (%.3f)", mix[isa.Store], mix[isa.Load])
	}
}

func TestBranchTargetsAreBackwardOrLocalForward(t *testing.T) {
	g := MustNew(testConfig(), 30000)
	for {
		in, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if in.Class != isa.Branch {
			continue
		}
		// Diamond branches jump forward a few blocks; back-edges jump
		// backward within the region. Either way the distance is bounded by
		// a region's code size.
		maxRegion := uint64(testConfig().BlocksPerRegion * (testConfig().BlockSize.Max + 1) * instBytes)
		var dist uint64
		if in.Target > in.PC {
			dist = in.Target - in.PC
		} else {
			dist = in.PC - in.Target
		}
		if dist > maxRegion {
			t.Fatalf("branch at %#x targets %#x: outside its region", in.PC, in.Target)
		}
	}
}

func TestControlFlowConsistency(t *testing.T) {
	// The instruction after a taken control transfer must be at its target;
	// after a not-taken branch, at pc+4.
	g := MustNew(testConfig(), 30000)
	prev, err := g.Next()
	if err != nil {
		t.Fatal(err)
	}
	for {
		in, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case prev.Class.IsControl() && (prev.Taken || prev.Class == isa.Jump):
			if in.PC != prev.Target {
				t.Fatalf("after taken %v, next pc = %#x, want %#x", prev, in.PC, prev.Target)
			}
		default:
			if in.PC != prev.PC+instBytes {
				t.Fatalf("after %v, next pc = %#x, want %#x", prev, in.PC, prev.PC+instBytes)
			}
		}
		prev = in
	}
}

func TestMemoryAddressesInFootprint(t *testing.T) {
	cfg := testConfig()
	g := MustNew(cfg, 50000)
	for {
		in, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !in.Class.IsMem() {
			continue
		}
		inShared := in.Addr >= dataBase && in.Addr < dataBase+uint64(cfg.DataFootprint)
		inStride := in.Addr >= strideBase
		if !inShared && !inStride {
			t.Fatalf("address %#x outside data regions", in.Addr)
		}
	}
}

func TestChainProbControlsDependencies(t *testing.T) {
	// Higher ChainProb must produce more prev-dst → src1 links.
	chainRate := func(chain float64) float64 {
		cfg := testConfig()
		cfg.ChainProb = chain
		g := MustNew(cfg, 50000)
		var prevDst int8 = isa.NoReg
		links, ops := 0, 0
		for {
			in, err := g.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if !in.Class.IsControl() {
				if prevDst != isa.NoReg {
					ops++
					if in.Src1 == prevDst {
						links++
					}
				}
				if in.Dst != isa.NoReg {
					prevDst = in.Dst
				}
			} else {
				prevDst = isa.NoReg
			}
		}
		return float64(links) / float64(ops)
	}
	lo, hi := chainRate(0.1), chainRate(0.9)
	if hi < lo+0.3 {
		t.Errorf("chain rates: ChainProb 0.9 → %.2f vs 0.1 → %.2f; knob ineffective", hi, lo)
	}
}

func TestSuiteNamesUniqueAndLookup(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Suite() {
		if seen[c.Name] {
			t.Errorf("duplicate suite name %s", c.Name)
		}
		seen[c.Name] = true
		got, ok := SuiteConfig(c.Name)
		if !ok || got.Name != c.Name {
			t.Errorf("SuiteConfig(%s) failed", c.Name)
		}
	}
	if len(seen) != 10 {
		t.Errorf("suite has %d entries, want 10", len(seen))
	}
	if _, ok := SuiteConfig("nonesuch"); ok {
		t.Error("SuiteConfig invented a benchmark")
	}
}

func TestILPVariants(t *testing.T) {
	base, _ := SuiteConfig("gzip")
	vars := ILPVariants(base)
	if len(vars) != 3 {
		t.Fatalf("got %d variants", len(vars))
	}
	if !(vars[0].ChainProb > vars[1].ChainProb && vars[1].ChainProb > vars[2].ChainProb) {
		t.Error("variants not ordered low→high ILP")
	}
	for _, v := range vars {
		if err := v.Validate(); err != nil {
			t.Errorf("variant %s invalid: %v", v.Name, err)
		}
		if v.Name == base.Name {
			t.Error("variant name not distinguished")
		}
	}
}

func TestStaticInstsEstimate(t *testing.T) {
	cfg := testConfig()
	est := cfg.StaticInsts()
	// Count distinct PCs over a long run; should be within 2x of estimate.
	g := MustNew(cfg, 200000)
	pcs := map[uint64]bool{}
	for {
		in, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pcs[in.PC] = true
	}
	if len(pcs) < est/2 || len(pcs) > est*2 {
		t.Errorf("distinct PCs = %d, estimate = %d", len(pcs), est)
	}
}

func TestRangeSample(t *testing.T) {
	s := rng.New(1)
	r := Range{3, 7}
	for i := 0; i < 100; i++ {
		v := r.sample(s)
		if v < 3 || v > 7 {
			t.Fatalf("sample %d outside range", v)
		}
	}
	if (Range{5, 5}).sample(s) != 5 {
		t.Error("degenerate range broken")
	}
}

func TestStridePatternsShareStreamPool(t *testing.T) {
	// All stride addresses must fall in at most 4 stream regions (the shared
	// pool), not one region per static instruction.
	cfg := testConfig()
	cfg.StrideFrac = 1 // every memory instruction streams
	g := MustNew(cfg, 50000)
	regions := map[uint64]bool{}
	for {
		in, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if in.Class.IsMem() {
			regions[in.Addr>>26] = true
		}
	}
	if len(regions) == 0 || len(regions) > 4 {
		t.Fatalf("stride addresses span %d regions, want 1–4", len(regions))
	}
}

func TestLoopTripsRespectRange(t *testing.T) {
	// Count consecutive taken back-edges per loop visit: must stay within
	// the configured LoopTrip range.
	cfg := testConfig()
	cfg.Regions = 1
	cfg.RandomBranchFrac, cfg.PatternBranchFrac = 0, 0
	cfg.TakenBias = 0 // diamonds always fall through: simplifies the walk
	g := MustNew(cfg, 60000)
	prog := g.prog
	backPC := prog.regions[0].blocks[len(prog.regions[0].blocks)-1].term.pc
	trips := 0
	for {
		in, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if in.PC != backPC {
			continue
		}
		trips++
		if !in.Taken {
			if trips < cfg.LoopTrip.Min || trips > cfg.LoopTrip.Max {
				t.Fatalf("loop ran %d trips, range [%d,%d]", trips, cfg.LoopTrip.Min, cfg.LoopTrip.Max)
			}
			trips = 0
		}
	}
}
