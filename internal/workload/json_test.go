package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	orig := testConfig()
	var buf bytes.Buffer
	if err := EncodeConfig(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ParseConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip changed config:\n%+v\n%+v", orig, got)
	}
}

func TestParseConfigRejectsUnknownField(t *testing.T) {
	js := `{"Name":"x","Seed":1,"Regions":2,"BlocksPerRegion":4,
	        "BlockSize":{"Min":2,"Max":4},"LoopTrip":{"Min":2,"Max":4},
	        "DataFootprint":65536,"Typo":true}`
	if _, err := ParseConfig(strings.NewReader(js)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestParseConfigRejectsInvalid(t *testing.T) {
	js := `{"Name":"x","Seed":1,"Regions":0,"BlocksPerRegion":4,
	        "BlockSize":{"Min":2,"Max":4},"LoopTrip":{"Min":2,"Max":4},
	        "DataFootprint":65536}`
	if _, err := ParseConfig(strings.NewReader(js)); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := ParseConfig(strings.NewReader("{nope")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestParseConfigMinimalValid(t *testing.T) {
	js := `{"Name":"mini","Seed":3,"Regions":2,"BlocksPerRegion":4,
	        "BlockSize":{"Min":2,"Max":4},"LoopTrip":{"Min":2,"Max":8},
	        "DataFootprint":65536}`
	c, err := ParseConfig(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	// It must also actually generate.
	g := MustNew(c, 1000)
	n := 0
	for {
		if _, err := g.Next(); err != nil {
			break
		}
		n++
	}
	if n != 1000 {
		t.Fatalf("generated %d insts", n)
	}
}
