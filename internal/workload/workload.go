// Package workload synthesizes benchmark programs and executes them into
// dynamic instruction traces.
//
// The paper drives interval analysis with SPEC CPU2000 traces. Those binaries
// and traces are unavailable here, so this package builds the closest
// synthetic equivalent: it generates a *static program* — a control-flow
// graph of basic blocks with loops, if-diamonds, per-branch behaviour
// specifications, register dependence structure, and per-instruction memory
// access patterns — and then *executes* that program functionally to emit a
// dynamic trace. Because the dynamic stream comes from re-executing static
// code, branch predictors, BTBs, and caches observe learnable, realistic
// locality (the same static branch recurs with its own behaviour; code and
// data addresses have genuine reuse), which is exactly the structure interval
// analysis depends on.
//
// The generator exposes the knobs that matter to the five penalty
// contributors: dependence-chain density (inherent ILP), instruction-class
// mix (functional-unit latency exposure), branch predictability (miss-event
// rate), code footprint (I-cache behaviour) and data footprint/locality
// (short and long D-cache misses).
package workload

import (
	"fmt"

	"intervalsim/internal/isa"
	"intervalsim/internal/rng"
	"intervalsim/internal/vpred"
)

// Range is an inclusive integer interval sampled uniformly.
type Range struct {
	Min, Max int
}

func (r Range) sample(s *rng.Source) int {
	if r.Max <= r.Min {
		return r.Min
	}
	return r.Min + s.Intn(r.Max-r.Min+1)
}

func (r Range) valid() bool { return r.Min > 0 && r.Max >= r.Min }

// Config parameterizes one synthetic benchmark.
type Config struct {
	Name string // benchmark label
	Seed uint64 // all randomness derives from this

	// Structure: the program is a dispatcher that picks among Regions
	// (function-like loops) with Zipf locality RegionTheta; each region is a
	// loop of BlocksPerRegion basic blocks of BlockSize non-control
	// instructions, iterated LoopTrip times per visit.
	Regions         int
	BlocksPerRegion int
	BlockSize       Range
	LoopTrip        Range
	RegionTheta     float64 // Zipf exponent of region choice; 0 = uniform (cold I-cache)

	// Instruction mix: fractions of non-control slots, remainder is IntALU.
	LoadFrac  float64
	StoreFrac float64
	MulFrac   float64
	DivFrac   float64
	FPFrac    float64 // split evenly between FPAdd and FPMul

	// ChainProb is the probability that an instruction's first source is the
	// destination of the immediately preceding instruction in its block,
	// forming serial dependence chains. High values lower the program's
	// inherent ILP.
	ChainProb float64

	// Branch behaviour. Within-block conditional branches (if-diamonds) are
	// assigned one of three behaviours: data-dependent quasi-random
	// (probability RandomBranchFrac, direction i.i.d. with RandomBranchBias),
	// short periodic patterns (PatternBranchFrac), otherwise strongly biased
	// with TakenBias. Loop back-edges are always loop-behaviour branches.
	RandomBranchFrac  float64
	RandomBranchBias  float64
	PatternBranchFrac float64
	TakenBias         float64

	// Memory behaviour: memory instructions with probability StrideFrac walk
	// a private streaming region; the rest make Zipf(Locality)-distributed
	// accesses into the shared DataFootprint bytes.
	DataFootprint int
	StrideFrac    float64
	Locality      float64

	// Value stream: the data values producing instructions emit, as seen by
	// value prediction (package vpred). Traces carry no value column — the
	// stream is synthesized deterministically from these knobs downstream.
	// All-zero fields select the canonical default mix; omitempty keeps
	// pre-existing trace fingerprints and store keys byte-stable.
	ValueSeed       uint64 `json:",omitempty"`
	ValueConstPct   int    `json:",omitempty"`
	ValueStridePct  int    `json:",omitempty"`
	ValuePatternPct int    `json:",omitempty"`
}

// ValueStream resolves the workload's value-stream configuration. The
// all-zero state (every pre-value-prediction workload) maps to the
// canonical default stream, so value locality is always well-defined.
func (c Config) ValueStream() vpred.StreamConfig {
	if c.ValueSeed == 0 && c.ValueConstPct == 0 && c.ValueStridePct == 0 && c.ValuePatternPct == 0 {
		return vpred.DefaultStream()
	}
	return vpred.StreamConfig{
		Seed:       c.ValueSeed,
		ConstPct:   c.ValueConstPct,
		StridePct:  c.ValueStridePct,
		PatternPct: c.ValuePatternPct,
	}
}

// Validate reports the first configuration problem, if any.
func (c Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("workload: empty name")
	case c.Regions <= 0:
		return fmt.Errorf("workload %s: Regions must be positive", c.Name)
	case c.BlocksPerRegion < 2:
		return fmt.Errorf("workload %s: BlocksPerRegion must be at least 2", c.Name)
	case !c.BlockSize.valid():
		return fmt.Errorf("workload %s: invalid BlockSize %+v", c.Name, c.BlockSize)
	case !c.LoopTrip.valid():
		return fmt.Errorf("workload %s: invalid LoopTrip %+v", c.Name, c.LoopTrip)
	case c.DataFootprint <= 0:
		return fmt.Errorf("workload %s: DataFootprint must be positive", c.Name)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"LoadFrac", c.LoadFrac}, {"StoreFrac", c.StoreFrac},
		{"MulFrac", c.MulFrac}, {"DivFrac", c.DivFrac}, {"FPFrac", c.FPFrac},
		{"ChainProb", c.ChainProb}, {"RandomBranchFrac", c.RandomBranchFrac},
		{"RandomBranchBias", c.RandomBranchBias},
		{"PatternBranchFrac", c.PatternBranchFrac}, {"TakenBias", c.TakenBias},
		{"StrideFrac", c.StrideFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("workload %s: %s = %v out of [0,1]", c.Name, f.name, f.v)
		}
	}
	if s := c.LoadFrac + c.StoreFrac + c.MulFrac + c.DivFrac + c.FPFrac; s > 1 {
		return fmt.Errorf("workload %s: class fractions sum to %v > 1", c.Name, s)
	}
	if c.RandomBranchFrac+c.PatternBranchFrac > 1 {
		return fmt.Errorf("workload %s: branch fractions sum past 1", c.Name)
	}
	if c.RegionTheta < 0 || c.Locality < 0 {
		return fmt.Errorf("workload %s: negative Zipf exponent", c.Name)
	}
	for _, p := range []struct {
		name string
		v    int
	}{
		{"ValueConstPct", c.ValueConstPct},
		{"ValueStridePct", c.ValueStridePct},
		{"ValuePatternPct", c.ValuePatternPct},
	} {
		if p.v < 0 || p.v > 100 {
			return fmt.Errorf("workload %s: %s = %d out of [0,100]", c.Name, p.name, p.v)
		}
	}
	if s := c.ValueConstPct + c.ValueStridePct + c.ValuePatternPct; s > 100 {
		return fmt.Errorf("workload %s: value class percentages sum to %d > 100", c.Name, s)
	}
	return nil
}

// StaticInsts returns the approximate static code size in instructions.
func (c Config) StaticInsts() int {
	avg := (c.BlockSize.Min+c.BlockSize.Max)/2 + 1
	return c.Regions*c.BlocksPerRegion*avg + 1
}

// --- Static program representation ------------------------------------------

const (
	codeBase   = 0x0040_0000 // PC of the first instruction
	dataBase   = 0x1000_0000 // base of the shared data footprint
	strideBase = 0x4000_0000 // base of private streaming regions
	instBytes  = 4
	wordBytes  = 8
)

type branchKind uint8

const (
	loopBranch    branchKind = iota // taken trip−1 times, then not taken
	biasedBranch                    // i.i.d. with TakenBias
	patternBranch                   // short periodic pattern
	randomBranch                    // i.i.d. with RandomBranchBias
)

type memKind uint8

const (
	strideMem memKind = iota
	zipfMem
)

// memPattern is the address generator of one static memory instruction.
type memPattern struct {
	kind      memKind
	base      uint64
	footprint uint64 // bytes, power-of-two rounded region
	stride    uint64
	offset    uint64  // streaming position
	theta     float64 // zipf exponent for zipfMem
}

func (m *memPattern) next(s *rng.Source) uint64 {
	switch m.kind {
	case strideMem:
		a := m.base + m.offset
		m.offset += m.stride
		if m.offset >= m.footprint {
			m.offset = 0
		}
		return a
	default:
		words := int(m.footprint / wordBytes)
		return m.base + uint64(s.Zipf(words, m.theta))*wordBytes
	}
}

// staticInst is one non-control instruction template.
type staticInst struct {
	class isa.Class
	src1  int8
	src2  int8
	dst   int8
	mem   *memPattern // nil unless Load/Store
}

// terminator ends a basic block.
type terminator struct {
	pc      uint64
	kind    branchKind
	src1    int8 // the register the branch tests (end of the block's chain)
	bias    float64
	pattern []bool
	pos     int
	taken   int // block index reached when taken
	fall    int // block index reached when not taken; -1 exits the region
}

type block struct {
	pc    uint64
	insts []staticInst
	term  *terminator // nil for the region's final block (handled by loop edge)
}

type region struct {
	blocks []block // blocks[0] is the loop header
	// The last block's terminator is the loop back-edge: taken → header,
	// not taken → region exit through the return jump at retPC.
	retPC uint64
}

// program is the generated static code.
type program struct {
	cfg        Config
	regions    []region
	dispatchPC uint64 // PC of the dispatcher's indirect jump
}
