package workload

import (
	"fmt"
	"io"

	"intervalsim/internal/isa"
	"intervalsim/internal/rng"
	"intervalsim/internal/trace"
)

// Register convention: r0–r7 are long-lived bases/counters that the
// generated code reads but never writes (like stack/global pointers and loop
// bounds); r8 and up are the allocatable pool.
const (
	liveRegs = 8
	poolLo   = int8(liveRegs)
)

// build synthesizes the static program for cfg. All structure derives from
// cfg.Seed; the dynamic execution stream uses an independent split of the
// same seed so structure and behaviour are individually stable.
func build(cfg Config) *program {
	s := rng.New(cfg.Seed)
	p := &program{cfg: cfg, dispatchPC: codeBase}
	pc := uint64(codeBase) + instBytes // dispatcher occupies the first slot

	// A small pool of shared streams: static stride instructions are bound
	// to one of a handful of sequential streams (the arrays a real program
	// walks), rather than each owning a private region — otherwise the
	// streaming footprint would be multiplied by static code size.
	streamFoot := uint64(cfg.DataFootprint / 16)
	if streamFoot < 8<<10 {
		streamFoot = 8 << 10
	}
	if streamFoot > 48<<10 {
		streamFoot = 48 << 10
	}
	streams := make([]*memPattern, 4)
	for i := range streams {
		streams[i] = &memPattern{
			kind:      strideMem,
			base:      strideBase + uint64(i)*(1<<26),
			footprint: streamFoot,
			stride:    uint64(8 << s.Intn(2)), // 8 or 16 bytes
		}
	}
	newMem := func() *memPattern {
		if s.Bool(cfg.StrideFrac) {
			return streams[s.Intn(len(streams))]
		}
		return &memPattern{
			kind:      zipfMem,
			base:      dataBase,
			footprint: uint64(cfg.DataFootprint),
			theta:     cfg.Locality,
		}
	}

	newInst := func(prevDst int8) staticInst {
		var in staticInst
		r := s.Float64()
		switch {
		case r < cfg.LoadFrac:
			in.class = isa.Load
		case r < cfg.LoadFrac+cfg.StoreFrac:
			in.class = isa.Store
		case r < cfg.LoadFrac+cfg.StoreFrac+cfg.MulFrac:
			in.class = isa.IntMul
		case r < cfg.LoadFrac+cfg.StoreFrac+cfg.MulFrac+cfg.DivFrac:
			in.class = isa.IntDiv
		case r < cfg.LoadFrac+cfg.StoreFrac+cfg.MulFrac+cfg.DivFrac+cfg.FPFrac:
			if s.Bool(0.5) {
				in.class = isa.FPAdd
			} else {
				in.class = isa.FPMul
			}
		default:
			in.class = isa.IntALU
		}
		pick := func() int8 { return poolLo + int8(s.Intn(isa.NumRegs-liveRegs)) }
		// First source: continue the block's serial chain with ChainProb,
		// otherwise an arbitrary register (a long-lived one 25% of the time).
		if prevDst != isa.NoReg && s.Bool(cfg.ChainProb) {
			in.src1 = prevDst
		} else if s.Bool(0.25) {
			in.src1 = int8(s.Intn(liveRegs))
		} else {
			in.src1 = pick()
		}
		if s.Bool(0.5) {
			in.src2 = pick()
		} else {
			in.src2 = isa.NoReg
		}
		switch in.class {
		case isa.Store:
			in.dst = isa.NoReg
			if in.src2 == isa.NoReg {
				in.src2 = pick() // the stored value
			}
			in.mem = newMem()
		case isa.Load:
			in.dst = pick()
			in.src2 = isa.NoReg // address register only
			in.mem = newMem()
		default:
			in.dst = pick()
		}
		return in
	}

	newPattern := func() []bool {
		n := 3 + s.Intn(5) // period 3–7
		pat := make([]bool, n)
		ones := 0
		for i := range pat {
			pat[i] = s.Bool(0.5)
			if pat[i] {
				ones++
			}
		}
		// Degenerate all-same patterns are just biased branches; force a mix.
		if ones == 0 {
			pat[0] = true
		} else if ones == n {
			pat[0] = false
		}
		return pat
	}

	p.regions = make([]region, cfg.Regions)
	for ri := range p.regions {
		reg := &p.regions[ri]
		reg.blocks = make([]block, cfg.BlocksPerRegion)
		n := cfg.BlocksPerRegion
		for bi := 0; bi < n; bi++ {
			b := &reg.blocks[bi]
			b.pc = pc
			size := cfg.BlockSize.sample(s)
			b.insts = make([]staticInst, 0, size)
			prevDst := isa.NoReg
			for k := 0; k < size; k++ {
				in := newInst(prevDst)
				b.insts = append(b.insts, in)
				if in.dst != isa.NoReg {
					prevDst = in.dst
				}
				pc += instBytes
			}
			t := &terminator{pc: pc, src1: prevDst, fall: bi + 1}
			pc += instBytes
			if bi == n-1 {
				t.kind = loopBranch
				t.taken = 0
				t.fall = -1 // region exit
			} else {
				r := s.Float64()
				switch {
				case r < cfg.RandomBranchFrac:
					t.kind = randomBranch
					t.bias = cfg.RandomBranchBias
				case r < cfg.RandomBranchFrac+cfg.PatternBranchFrac:
					t.kind = patternBranch
					t.pattern = newPattern()
				default:
					t.kind = biasedBranch
					t.bias = cfg.TakenBias
				}
				// Taken skips the next block (bounded by the back-edge block).
				t.taken = bi + 2
				if t.taken > n-1 {
					t.taken = n - 1
				}
			}
			b.term = t
		}
		reg.retPC = pc // region's return jump to the dispatcher
		pc += instBytes
	}
	return p
}

// Generator executes the static program and streams its dynamic trace.
// It implements trace.Reader; Next returns io.EOF after Length instructions.
type Generator struct {
	prog   *program
	run    *rng.Source // runtime randomness: branch outcomes, addresses, trips
	length int
	count  int

	atDispatch bool
	returning  bool // emit the region's return jump next
	regionIdx  int
	blockIdx   int
	instPos    int
	tripsLeft  int
}

// New validates cfg and returns a generator producing length dynamic
// instructions.
func New(cfg Config, length int) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if length <= 0 {
		return nil, fmt.Errorf("workload %s: non-positive trace length %d", cfg.Name, length)
	}
	return &Generator{
		prog:       buildCached(cfg),
		run:        rng.New(cfg.Seed).Split(),
		length:     length,
		atDispatch: true,
	}, nil
}

// MustNew is New for known-good configurations (the built-in suite).
func MustNew(cfg Config, length int) *Generator {
	g, err := New(cfg, length)
	if err != nil {
		panic(err)
	}
	return g
}

// buildCached is a seam for tests; currently a direct call.
func buildCached(cfg Config) *program { return build(cfg) }

var _ trace.Reader = (*Generator)(nil)

// Next implements trace.Reader.
func (g *Generator) Next() (isa.Inst, error) {
	if g.count >= g.length {
		return isa.Inst{}, io.EOF
	}
	g.count++

	if g.returning {
		g.returning = false
		g.atDispatch = true
		reg := &g.prog.regions[g.regionIdx]
		return isa.Inst{
			PC: reg.retPC, Class: isa.Jump, Taken: true,
			Src1: isa.NoReg, Src2: isa.NoReg, Dst: isa.NoReg,
			Target: g.prog.dispatchPC,
		}, nil
	}

	if g.atDispatch {
		g.atDispatch = false
		g.regionIdx = g.run.Zipf(len(g.prog.regions), g.prog.cfg.RegionTheta)
		g.blockIdx, g.instPos = 0, 0
		g.tripsLeft = g.prog.cfg.LoopTrip.sample(g.run)
		return isa.Inst{
			PC: g.prog.dispatchPC, Class: isa.Jump, Taken: true,
			Src1: isa.NoReg, Src2: isa.NoReg, Dst: isa.NoReg,
			Target: g.prog.regions[g.regionIdx].blocks[0].pc,
		}, nil
	}

	reg := &g.prog.regions[g.regionIdx]
	blk := &reg.blocks[g.blockIdx]
	if g.instPos < len(blk.insts) {
		si := &blk.insts[g.instPos]
		pc := blk.pc + uint64(g.instPos)*instBytes
		g.instPos++
		in := isa.Inst{
			PC: pc, Class: si.class,
			Src1: si.src1, Src2: si.src2, Dst: si.dst,
		}
		if si.mem != nil {
			in.Addr = si.mem.next(g.run)
		}
		return in, nil
	}

	// Terminator.
	t := blk.term
	var taken bool
	switch t.kind {
	case loopBranch:
		g.tripsLeft--
		taken = g.tripsLeft > 0
	case biasedBranch, randomBranch:
		taken = g.run.Bool(t.bias)
	case patternBranch:
		taken = t.pattern[t.pos]
		t.pos++
		if t.pos == len(t.pattern) {
			t.pos = 0
		}
	}
	in := isa.Inst{
		PC: t.pc, Class: isa.Branch, Taken: taken,
		Src1: t.src1, Src2: isa.NoReg, Dst: isa.NoReg,
		Target: reg.blocks[t.taken].pc,
	}
	if taken {
		g.blockIdx = t.taken
	} else if t.fall < 0 {
		g.returning = true
	} else {
		g.blockIdx = t.fall
	}
	g.instPos = 0
	return in, nil
}
