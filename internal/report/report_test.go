package report

import (
	"strings"
	"testing"
)

func TestFprintAlignment(t *testing.T) {
	tab := New("title", "name", "value")
	tab.AddRow("a", "1")
	tab.AddRow("longer", "123")
	var sb strings.Builder
	if err := tab.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Errorf("rule line = %q", lines[2])
	}
	// Numbers right-aligned: "1" ends at the same column as "123".
	if !strings.HasSuffix(lines[3], "  1") && !strings.HasSuffix(lines[3], "  1") {
		t.Errorf("row = %q", lines[3])
	}
	iv, i123 := strings.Index(lines[3], "1"), strings.Index(lines[4], "123")
	if iv+1 != i123+3 {
		t.Errorf("right alignment broken: %q vs %q", lines[3], lines[4])
	}
	// First column left-aligned.
	if !strings.HasPrefix(lines[3], "a ") {
		t.Errorf("label not left aligned: %q", lines[3])
	}
}

func TestFprintNoTitleNoHeaders(t *testing.T) {
	tab := &Table{}
	tab.AddRow("x", "y")
	var sb strings.Builder
	if err := tab.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "--") {
		t.Error("rule printed without headers")
	}
}

func TestRaggedRows(t *testing.T) {
	tab := New("", "a", "b")
	tab.AddRow("1")
	tab.AddRow("1", "2", "3")
	var sb strings.Builder
	if err := tab.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "3") {
		t.Error("extra cell dropped")
	}
}

func TestAddRowf(t *testing.T) {
	tab := New("", "n", "v")
	tab.AddRowf([]string{"%s", "%.2f"}, "pi", 3.14159)
	if tab.Rows[0][1] != "3.14" {
		t.Errorf("formatted cell = %q", tab.Rows[0][1])
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched verbs did not panic")
		}
	}()
	tab.AddRowf([]string{"%s"}, "a", "b")
}

func TestFprintCSV(t *testing.T) {
	tab := New("t", "a", "b")
	tab.AddRow(`quo"te`, "with,comma")
	tab.AddRow("plain", "line\nbreak")
	var sb strings.Builder
	if err := tab.FprintCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("csv header = %q", out)
	}
	if !strings.Contains(out, `"quo""te"`) {
		t.Errorf("quote escaping wrong: %q", out)
	}
	if !strings.Contains(out, `"with,comma"`) {
		t.Errorf("comma quoting wrong: %q", out)
	}
	if !strings.Contains(out, "\"line\nbreak\"") {
		t.Errorf("newline quoting wrong: %q", out)
	}
}
