// Package report renders experiment results as fixed-width text tables and
// CSV, so every figure and table the harness regenerates is produced through
// one tested formatting path.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; missing cells render empty, extra cells widen the
// table.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// the matching verb in verbs (e.g. "%s", "%.1f", "%d").
func (t *Table) AddRowf(verbs []string, args ...interface{}) {
	if len(verbs) != len(args) {
		panic("report: verbs/args length mismatch")
	}
	row := make([]string, len(args))
	for i, a := range args {
		row[i] = fmt.Sprintf(verbs[i], a)
	}
	t.Rows = append(t.Rows, row)
}

// columns returns the width of each column.
func (t *Table) columns() []int {
	n := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	return w
}

// Fprint writes the table as aligned text. The first column is left-aligned
// (labels), the rest right-aligned (numbers).
func (t *Table) Fprint(w io.Writer) error {
	widths := t.columns()
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, width := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				b.WriteString(pad(c, width, false))
			} else {
				b.WriteString(pad(c, width, true))
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if len(t.Headers) > 0 {
		if err := line(t.Headers); err != nil {
			return err
		}
		rule := make([]string, len(widths))
		for i, width := range widths {
			rule[i] = strings.Repeat("-", width)
		}
		if err := line(rule); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, width int, right bool) string {
	if len(s) >= width {
		return s
	}
	fill := strings.Repeat(" ", width-len(s))
	if right {
		return fill + s
	}
	return s + fill
}

// FprintCSV writes the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) FprintCSV(w io.Writer) error {
	write := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = csvEscape(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if len(t.Headers) > 0 {
		if err := write(t.Headers); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := write(r); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
