package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"intervalsim/internal/overlay"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// Content-addressed identity. A simulation's answer is fully determined by
// the resolved workload, the instruction budget and warmup, and the machine
// configuration; the canonical key below is the durable store's name for
// that answer and the basis of idempotent job IDs (same identity → same job,
// no matter how many times or from how many clients it is submitted).
//
// Keys are canonical JSON of *resolved* inputs — after defaults have been
// applied — so two requests that mean the same run ("insts omitted" and
// "insts: 1000000") collapse to one identity. The speculation fingerprint
// (overlay.SpecFingerprint) is embedded alongside the full config so the key
// survives config-field renames that keep speculation behavior identical
// in spirit with an explicit, versioned component.

// keyVersion bumps when the key layout (or anything upstream that changes
// result bytes for the same inputs) changes incompatibly: old store entries
// then simply miss instead of serving stale shapes.
const keyVersion = 1

// simKeyDoc is the canonical identity of one cycle-level simulation.
type simKeyDoc struct {
	V        int             `json:"v"`
	Kind     string          `json:"kind"`
	Workload workload.Config `json:"workload"`
	Insts    int             `json:"insts"`
	Warmup   uint64          `json:"warmup"`
	Config   uarch.Config    `json:"config"`
	SpecFP   uint64          `json:"spec_fp"`
}

// simKey builds the canonical store key for one resolved simulate request.
func simKey(in simInputs) []byte {
	raw, err := json.Marshal(simKeyDoc{
		V:        keyVersion,
		Kind:     "simulate",
		Workload: in.wc,
		Insts:    in.insts,
		Warmup:   in.warmup,
		Config:   in.cfg,
		// SpecFingerprintV with a nil vpred config returns the legacy
		// SpecFingerprint value, so default-machine keys keep their exact
		// historical bytes (TestSimKeyBytesStable).
		SpecFP: overlay.SpecFingerprintV(in.cfg.Pred, in.cfg.Mem, in.cfg.VPred),
	})
	if err != nil {
		// Marshaling fixed structs of scalars cannot fail; if it ever does,
		// failing loud beats silently aliasing identities.
		panic(fmt.Sprintf("service: canonical key marshal: %v", err))
	}
	return raw
}

// sweepKeyDoc is the canonical identity of one durable sweep job: the
// resolved grid over one workload. Tenant and priority are deliberately
// excluded — they affect scheduling, not the answer — so identical sweeps
// from different tenants deduplicate onto one job.
type sweepKeyDoc struct {
	V        int             `json:"v"`
	Kind     string          `json:"kind"`
	Workload workload.Config `json:"workload"`
	Insts    int             `json:"insts"`
	Warmup   uint64          `json:"warmup"`
	Widths   []int           `json:"widths"`
	Depths   []int           `json:"depths"`
	ROBs     []int           `json:"robs"`
	Mode     string          `json:"mode"`
	// Sampling phase lengths, set only in sampled mode. omitempty keeps the
	// key bytes of every pre-existing sim/model identity unchanged, so no
	// keyVersion bump: stored results stay addressable.
	SampleDetailed uint64 `json:"sample_detailed,omitempty"`
	SampleSkip     uint64 `json:"sample_skip,omitempty"`
	// Predictor preset name, empty for the baseline tournament. omitempty
	// for the same reason: a default-predictor sweep keeps its historical
	// key bytes, and SpecFP below already pins the resolved predictor.
	Pred string `json:"pred,omitempty"`
	// Value-speculation axes, zero for the classic machine. omitempty again:
	// a sweep that does not value-predict or throttle fetch keeps its
	// historical key bytes (and SpecFP pins the resolved value predictor).
	VPred     string  `json:"vpred,omitempty"`
	FetchRate float64 `json:"fetchrate,omitempty"`
	SpecFP    uint64  `json:"spec_fp"`
}

// sweepKey builds the canonical identity bytes for a resolved sweep.
func sweepKey(in sweepInputs) []byte {
	raw, err := json.Marshal(sweepKeyDoc{
		V:              keyVersion,
		Kind:           "sweep",
		Workload:       in.wc,
		Insts:          in.insts,
		Warmup:         in.warmup,
		Widths:         in.widths,
		Depths:         in.depths,
		ROBs:           in.robs,
		Mode:           in.mode,
		SampleDetailed: in.sampleDetailed,
		SampleSkip:     in.sampleSkip,
		Pred:           in.pred,
		VPred:          in.vpred,
		FetchRate:      in.cfg.FetchRate,
		SpecFP:         overlay.SpecFingerprintV(in.cfg.Pred, in.cfg.Mem, in.cfg.VPred),
	})
	if err != nil {
		panic(fmt.Sprintf("service: canonical key marshal: %v", err))
	}
	return raw
}

// jobID derives the idempotent job ID for a canonical key: prefix + 128 bits
// of SHA-256 over the key bytes. 128 bits makes accidental ID collisions a
// non-concern; the store itself always verifies full key bytes, so even an
// adversarial collision could only alias job *views*, never results.
func jobID(prefix string, key []byte) string {
	sum := sha256.Sum256(key)
	return prefix + hex.EncodeToString(sum[:16])
}

// csvKey names the finished CSV artifact of sweep job id in the result
// store. Keyed by job ID (itself content-derived), so a re-submitted
// identical sweep finds its artifact across daemon restarts.
func csvKey(id string) []byte { return []byte("sweep-csv:" + id) }
