package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"intervalsim/internal/bpred"
	"intervalsim/internal/experiments"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// TestUnknownPredictorRejected pins the admission contract for the predictor
// axis: a request naming a predictor the server does not know is the
// client's mistake — HTTP 400 with a JSON error naming the valid presets,
// counted under bad_input — never a 500 from a worker that already accepted
// the job.
func TestUnknownPredictorRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	cases := []struct {
		name string
		url  string
		body string
	}{
		{"simulate preset", "/v1/simulate", `{"benchmark":"gzip","machine":{"pred":"neural-magic"}}`},
		{"simulate inline kind", "/v1/simulate", `{"benchmark":"gzip","machine":{"config":{"Name":"x","Pred":{"Kind":"neural-magic"}}}}`},
		{"simulate pred and config", "/v1/simulate", `{"benchmark":"gzip","machine":{"pred":"tage","config":{}}}`},
		{"sweep preset", "/v1/sweep", `{"benchmark":"gzip","insts":20000,"widths":[2],"depths":[4],"robs":[64],"pred":"neural-magic"}`},
		{"batch preset", "/v1/batch", `{"benchmark":"gzip","insts":20000,"points":[{"seq":0,"width":2,"depth":4,"rob":64}],"pred":"neural-magic"}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		body := decodeBody[errorResponse](t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body.Error)
		}
		if body.Error == "" {
			t.Errorf("%s: empty error body", tc.name)
		}
		if strings.Contains(tc.body, "neural-magic") && !strings.Contains(tc.body, "config") {
			// Preset rejections must name the valid choices.
			if !strings.Contains(body.Error, "tage") || !strings.Contains(body.Error, "tournament") {
				t.Errorf("%s: error %q does not list the valid presets", tc.name, body.Error)
			}
		}
	}

	m := decodeBody[MetricsResponse](t, mustGet(t, ts.URL+"/metrics"))
	if m.Jobs[outcomeBadInput] != uint64(len(cases)) {
		t.Errorf("bad_input count = %d, want %d", m.Jobs[outcomeBadInput], len(cases))
	}
}

// TestSimulatePredictorPreset runs the full pipeline under a non-default
// predictor: the service result must match a direct in-process run with the
// same preset bit for bit, and must still come from overlay replay (the
// overlay must follow the requested predictor, not the baseline).
func TestSimulatePredictorPreset(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	const insts = 50_000
	resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Benchmark: "gzip",
		Insts:     insts,
		Machine:   MachineSpec{Width: 4, Depth: 5, ROB: 64, Pred: "tage"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	job := decodeBody[JobView](t, resp)
	done := pollJob(t, ts.URL, job.ID)
	if done.Status != JobDone || done.Outcome != outcomeOK {
		t.Fatalf("job finished %+v, want done/ok", done)
	}
	var got SimulateResult
	if err := json.Unmarshal(done.Result, &got); err != nil {
		t.Fatalf("unmarshal result: %v", err)
	}

	wc, _ := workload.SuiteConfig("gzip")
	_, soa, err := experiments.SharedTrace(wc, insts)
	if err != nil {
		t.Fatalf("SharedTrace: %v", err)
	}
	cfg := experiments.Point(4, 5, 64)
	cfg.Pred, _ = bpred.Preset("tage")
	want, err := uarch.Run(soa.Reader(), cfg, uarch.Options{RecordMispredicts: true})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	if got.Cycles != want.Cycles || got.Mispredicts != want.Mispredicts {
		t.Errorf("cycles/mispredicts = %d/%d, want %d/%d", got.Cycles, got.Mispredicts, want.Cycles, want.Mispredicts)
	}
	if got.Path != "soa+overlay" {
		t.Errorf("path = %q, want soa+overlay", got.Path)
	}

	// The baseline run must differ: if tage and tournament produce the same
	// mispredict count on this workload the axis is probably not wired.
	base := experiments.Point(4, 5, 64)
	baseRes, err := uarch.Run(soa.Reader(), base, uarch.Options{RecordMispredicts: true})
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if baseRes.Mispredicts == got.Mispredicts {
		t.Errorf("tage and baseline tournament agree on %d mispredicts (suspicious)", got.Mispredicts)
	}
}

// TestSweepPredictorAxis covers the sweep path: an explicit default preset
// is the same identity and answer as no preset, a non-default preset is a
// distinct store identity whose rows reflect the different predictor, and
// the default key bytes never mention the new field (old stored results
// stay addressable).
func TestSweepPredictorAxis(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})

	base := SweepRequest{
		Benchmark: "twolf",
		Insts:     20_000,
		Widths:    []int{4},
		Depths:    []int{4},
		ROBs:      []int{64},
	}
	resolve := func(req SweepRequest) sweepInputs {
		in, err := s.resolveSweep(&req)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	defKey := sweepKey(resolve(base))
	if bytes.Contains(defKey, []byte(`"pred"`)) {
		t.Errorf("default sweep key carries the pred field (old store entries would miss): %s", defKey)
	}
	tour := base
	tour.Pred = "tournament"
	tage := base
	tage.Pred = "tage"
	if k := sweepKey(resolve(tage)); bytes.Equal(k, defKey) {
		t.Error("tage sweep shares the default identity")
	} else if !bytes.Contains(k, []byte(`"pred":"tage"`)) {
		t.Errorf("tage sweep key missing the pred field: %s", k)
	}

	defPts, _ := readSweep(t, postJSON(t, ts.URL+"/v1/sweep", base))
	tourPts, _ := readSweep(t, postJSON(t, ts.URL+"/v1/sweep", tour))
	tagePts, _ := readSweep(t, postJSON(t, ts.URL+"/v1/sweep", tage))
	if len(defPts) != 1 || len(tourPts) != 1 || len(tagePts) != 1 {
		t.Fatalf("point counts %d/%d/%d, want 1 each", len(defPts), len(tourPts), len(tagePts))
	}
	if defPts[0] != tourPts[0] {
		t.Errorf("explicit tournament differs from the default:\n  %+v\n  %+v", tourPts[0], defPts[0])
	}
	if tagePts[0].Error != "" {
		t.Fatalf("tage point failed: %s", tagePts[0].Error)
	}
	if tagePts[0].Cycles == defPts[0].Cycles {
		t.Errorf("tage and tournament sweeps agree on %d cycles (suspicious)", tagePts[0].Cycles)
	}
}

// TestSweepJobPredictorIdentity: the durable-job spec journals the predictor
// and round-trips it, so a resumed job re-resolves the same machine.
func TestSweepJobPredictorIdentity(t *testing.T) {
	s := New(Options{})
	defer s.Shutdown(context.Background()) //nolint:errcheck

	spec := sweepJobSpec{
		Benchmark: "gzip", Insts: 20_000,
		Widths: []int{2}, Depths: []int{4}, ROBs: []int{64},
		Pred: "2bc-gskew", Mode: "sim",
	}
	raw := mustJSON(spec)
	var back sweepJobSpec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Pred != "2bc-gskew" {
		t.Fatalf("journaled spec lost the predictor: %+v", back)
	}
	in, err := s.resolveSweep(back.request())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := bpred.Preset("2bc-gskew")
	if in.cfg.Pred != want {
		t.Errorf("resumed job resolved predictor %+v, want %+v", in.cfg.Pred, want)
	}
}
