package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"intervalsim/internal/core"
	"intervalsim/internal/experiments"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// readBatch consumes an NDJSON batch stream.
func readBatch(t *testing.T, resp *http.Response) ([]BatchPoint, BatchTrailer) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("batch: content-type %q", ct)
	}
	var (
		points  []BatchPoint
		trailer BatchTrailer
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done"`)) {
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatalf("trailer: %v", err)
			}
			continue
		}
		var pt BatchPoint
		if err := json.Unmarshal(line, &pt); err != nil {
			t.Fatalf("point: %v", err)
		}
		points = append(points, pt)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return points, trailer
}

// TestBatchDecomposeMatchesDirect pins the distributed-sweep contract: a
// batch point with Decompose returns exactly the numbers cmd/sweep's
// sim-mode row is built from — same simulation, same overlay replay, same
// penalty decomposition.
func TestBatchDecomposeMatchesDirect(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	const insts, warmup = 20_000, 4_000
	resp := postJSON(t, ts.URL+"/v1/batch", BatchRequest{
		Benchmark: "gzip",
		Insts:     insts,
		Warmup:    warmup,
		Decompose: true,
		Points: []BatchPointSpec{
			{Seq: 7, Width: 2, Depth: 3, ROB: 64},
			{Seq: 3, Width: 4, Depth: 7, ROB: 128},
		},
	})
	points, trailer := readBatch(t, resp)
	if trailer.OK != 2 || trailer.Failed != 0 || !trailer.Done {
		t.Fatalf("trailer = %+v, want 2 ok", trailer)
	}
	bySeq := map[int]BatchPoint{}
	for _, pt := range points {
		bySeq[pt.Seq] = pt
	}

	wc, _ := workload.SuiteConfig("gzip")
	tr, soa, err := experiments.SharedTrace(wc, insts)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []BatchPointSpec{{7, 2, 3, 64}, {3, 4, 7, 128}} {
		got, ok := bySeq[spec.Seq]
		if !ok {
			t.Fatalf("missing seq %d in %+v", spec.Seq, points)
		}
		cfg := experiments.Point(spec.Width, spec.Depth, spec.ROB)
		res, err := uarch.Run(soa.Reader(), cfg, uarch.Options{
			RecordMispredicts: true,
			RecordLoadLevels:  true,
			WarmupInsts:       warmup,
		})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := core.NewDecomposer(tr, res)
		if err != nil {
			t.Fatal(err)
		}
		m := core.Mean(dec.DecomposeAll())
		if got.IPC != res.IPC() || got.Cycles != res.Cycles {
			t.Errorf("seq %d: ipc/cycles = %v/%d, want %v/%d", spec.Seq, got.IPC, got.Cycles, res.IPC(), res.Cycles)
		}
		if got.AvgPenalty != m.Total || got.PenFrontend != m.Frontend || got.PenDrain != m.BaseILP ||
			got.PenFU != m.FULatency || got.PenShortD != m.ShortDMiss || got.PenLongD != m.LongDMiss {
			t.Errorf("seq %d decomposition = %+v, want %+v", spec.Seq, got, m)
		}
		if got.Path != "soa+overlay" {
			t.Errorf("seq %d path = %q, want soa+overlay", spec.Seq, got.Path)
		}
	}
}

// TestBatchModelMode: model-mode batches carry the analytic cycle stack.
func TestBatchModelMode(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	points, trailer := readBatch(t, postJSON(t, ts.URL+"/v1/batch", BatchRequest{
		Benchmark: "gcc",
		Insts:     20_000,
		Mode:      "model",
		Points: []BatchPointSpec{
			{Seq: 0, Width: 4, Depth: 4, ROB: 32},
			{Seq: 1, Width: 4, Depth: 4, ROB: 128},
		},
	}))
	if trailer.OK != 2 || trailer.Mode != "model" {
		t.Fatalf("trailer = %+v", trailer)
	}
	for _, pt := range points {
		if pt.Path != "model" || pt.CPIBase <= 0 || pt.IPC <= 0 {
			t.Errorf("point %+v, want model path with positive cpi_base/ipc", pt)
		}
	}
}

// TestBatchLockstepMatchesSim pins the lockstep shard contract: a lockstep
// batch returns, per point, exactly the values the per-point sim path
// returns — measurements, decomposition, path, and each config's own
// fallback provenance — for set sizes that do and do not divide the batch.
func TestBatchLockstepMatchesSim(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	specs := []BatchPointSpec{
		{Seq: 0, Width: 2, Depth: 3, ROB: 64},
		{Seq: 1, Width: 4, Depth: 7, ROB: 128},
		{Seq: 2, Width: 8, Depth: 11, ROB: 256},
		{Seq: 3, Width: 4, Depth: 3, ROB: 96},
		{Seq: 4, Width: 2, Depth: 7, ROB: 192},
	}
	req := BatchRequest{Benchmark: "gzip", Insts: 20_000, Warmup: 4_000, Decompose: true, Points: specs}
	collect := func(req BatchRequest) map[int]BatchPoint {
		points, trailer := readBatch(t, postJSON(t, ts.URL+"/v1/batch", req))
		if trailer.OK != len(specs) || trailer.Failed != 0 {
			t.Fatalf("mode %q trailer = %+v, want %d ok", req.Mode, trailer, len(specs))
		}
		bySeq := make(map[int]BatchPoint, len(points))
		for _, pt := range points {
			bySeq[pt.Seq] = pt
		}
		return bySeq
	}

	sim := collect(req)
	for _, k := range []int{2, 3, 5} {
		lreq := req
		lreq.Mode, lreq.LockstepK = "lockstep", k
		lockstep := collect(lreq)
		for seq, want := range sim {
			if got := lockstep[seq]; got != want {
				t.Errorf("lockstep_k %d seq %d = %+v, want sim point %+v", k, seq, got, want)
			}
		}
	}
	for seq, pt := range sim {
		if pt.Path != "soa+overlay" || pt.Fallback != "" {
			t.Errorf("seq %d path/fallback = %q/%q, want clean overlay replay", seq, pt.Path, pt.Fallback)
		}
	}
}

// TestBatchLockstepSetFailsTogether pins the all-or-nothing set contract at
// the service: when a lockstep set dies (here: per-point timeout), every
// member of the set reports the error — no partial sets.
func TestBatchLockstepSetFailsTogether(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	points, trailer := readBatch(t, postJSON(t, ts.URL+"/v1/batch", BatchRequest{
		Benchmark: "mcf",
		Insts:     5_000_000,
		Mode:      "lockstep",
		LockstepK: 2,
		TimeoutMS: 1, // far below the work
		Points: []BatchPointSpec{
			{Seq: 0, Width: 4, Depth: 7, ROB: 128},
			{Seq: 1, Width: 4, Depth: 7, ROB: 256},
		},
	}))
	if trailer.Failed != 2 || trailer.OK != 0 {
		t.Fatalf("trailer = %+v, want the whole set failed", trailer)
	}
	for _, pt := range points {
		if pt.Error == "" || pt.Outcome != outcomeTimeout {
			t.Errorf("point %+v, want a timeout error line", pt)
		}
	}
}

// TestBatchSampledCarriesCI: sampled batch points carry the ratio-estimator
// CPI interval and the per-point fallback provenance explaining that replay
// was bypassed — the CI fields a distributed sampled sweep's CSV is built
// from.
func TestBatchSampledCarriesCI(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	points, trailer := readBatch(t, postJSON(t, ts.URL+"/v1/batch", BatchRequest{
		Benchmark:      "gzip",
		Insts:          60_000,
		Warmup:         10_000,
		Mode:           "sampled",
		SampleDetailed: 1_000,
		SampleSkip:     4_000,
		Points: []BatchPointSpec{
			{Seq: 0, Width: 4, Depth: 7, ROB: 128},
			{Seq: 1, Width: 2, Depth: 3, ROB: 64},
		},
	}))
	if trailer.OK != 2 || trailer.Mode != "sampled" {
		t.Fatalf("trailer = %+v", trailer)
	}
	for _, pt := range points {
		if !(pt.CPILo <= pt.CPI && pt.CPI <= pt.CPIHi) || pt.CPI <= 0 {
			t.Errorf("seq %d interval out of order: %+v", pt.Seq, pt)
		}
		// (60000-10000)/(1000+4000) periods, ±1 for the trailing partial unit.
		if pt.SampleUnits < 10 || pt.SampleUnits > 11 {
			t.Errorf("seq %d units = %d, want about 10", pt.Seq, pt.SampleUnits)
		}
		if pt.Path != "soa" || !strings.Contains(pt.Fallback, "sampled") {
			t.Errorf("seq %d path/fallback = %q/%q, want a live run with sampled-fallback provenance",
				pt.Seq, pt.Path, pt.Fallback)
		}
		if pt.AvgPenalty != 0 || pt.PenFrontend != 0 {
			t.Errorf("seq %d carries penalty columns in sampled mode: %+v", pt.Seq, pt)
		}
	}
}

// TestBatchValidation: malformed batches are rejected up front.
func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	cases := []struct {
		name string
		body string
	}{
		{"no points", `{"benchmark":"gzip"}`},
		{"bad knobs", `{"benchmark":"gzip","points":[{"seq":0,"width":0,"depth":3,"rob":64}]}`},
		{"decompose model", `{"benchmark":"gzip","mode":"model","decompose":true,"points":[{"seq":0,"width":2,"depth":3,"rob":64}]}`},
		{"decompose sampled", `{"benchmark":"gzip","mode":"sampled","decompose":true,"sample_detailed":1000,"sample_skip":4000,"points":[{"seq":0,"width":2,"depth":3,"rob":64}]}`},
		{"bad mode", `{"benchmark":"gzip","mode":"oracular","points":[{"seq":0,"width":2,"depth":3,"rob":64}]}`},
		{"sampled without phases", `{"benchmark":"gzip","mode":"sampled","points":[{"seq":0,"width":2,"depth":3,"rob":64}]}`},
		{"unknown benchmark", `{"benchmark":"doom","points":[{"seq":0,"width":2,"depth":3,"rob":64}]}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestBatchFailSoftPoint: a point that times out yields an error line while
// the rest of the batch completes — the daemon never aborts a shard for one
// bad point.
func TestBatchFailSoftPoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	points, trailer := readBatch(t, postJSON(t, ts.URL+"/v1/batch", BatchRequest{
		Benchmark: "mcf",
		Insts:     5_000_000,
		TimeoutMS: 1, // far below the work
		Points:    []BatchPointSpec{{Seq: 0, Width: 4, Depth: 7, ROB: 128}},
	}))
	if trailer.Failed != 1 || trailer.OK != 0 {
		t.Fatalf("trailer = %+v, want 1 failed", trailer)
	}
	if len(points) != 1 || points[0].Error == "" || points[0].Outcome != outcomeTimeout {
		t.Fatalf("points = %+v, want one timeout error line", points)
	}
}

// TestRetryAfterDrainDerived pins the Retry-After contract: a 429 carries a
// parseable positive integer, and once the daemon has observed completions
// the value reflects the measured drain rate rather than a constant.
func TestRetryAfterDrainDerived(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})

	// Warm the drain-rate estimator with a few completed jobs.
	for i := 0; i < 3; i++ {
		job := decodeBody[JobView](t, postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
			Benchmark: "gzip", Insts: 2000,
		}))
		pollJob(t, ts.URL, job.ID)
	}

	// Occupy the worker and the queue slot with slow jobs, then overflow.
	slow := SimulateRequest{Benchmark: "mcf", Insts: 2_000_000}
	first := decodeBody[JobView](t, postJSON(t, ts.URL+"/v1/simulate", slow))
	deadline := time.Now().Add(30 * time.Second)
	for {
		job := decodeBody[JobView](t, mustGet(t, ts.URL+"/v1/jobs/"+first.ID))
		if job.Status == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Distinct identities, so idempotent submission doesn't join the first.
	slow2, slow3 := slow, slow
	slow2.Warmup, slow3.Warmup = 1, 2
	second := postJSON(t, ts.URL+"/v1/simulate", slow2)
	second.Body.Close()

	third := postJSON(t, ts.URL+"/v1/simulate", slow3)
	third.Body.Close()
	if third.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", third.StatusCode)
	}
	ra := third.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q not parseable: %v", ra, err)
	}
	if secs < 1 || secs > 60 {
		t.Fatalf("Retry-After = %d, want within [1, 60]", secs)
	}
	// The estimator itself must agree with what the header reported at
	// that queue depth: the derivation is live, not a constant.
	if got := s.metrics.retryAfterSeconds(1); got < 1 || got > 60 {
		t.Fatalf("retryAfterSeconds(1) = %d, want within [1, 60]", got)
	}
}

// TestSweepClientDisconnectFreesWorkers is the satellite regression test: a
// dropped sweep connection must cancel queued and running points so the
// worker slots free up promptly for other clients.
func TestSweepClientDisconnectFreesWorkers(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 64})

	// A sweep big enough to outlive the client: many heavy points through
	// one worker.
	raw, _ := json.Marshal(SweepRequest{
		Benchmark: "mcf",
		Insts:     4_000_000,
		Widths:    []int{2, 4, 8},
		Depths:    []int{3, 7, 11},
		ROBs:      []int{64, 128, 256},
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the status header, then hang up mid-stream.
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d", resp.StatusCode)
	}
	time.Sleep(50 * time.Millisecond) // let points queue up behind the worker
	cancel()
	resp.Body.Close()

	// The pool must drain to idle: the running point sees its context
	// canceled and queued points are skipped without executing.
	deadline := time.Now().Add(30 * time.Second)
	for {
		ps := s.pool.Stats()
		if ps.Queued == 0 && ps.InFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool still busy after disconnect: %+v", ps)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And the freed worker must serve new clients promptly.
	start := time.Now()
	job := decodeBody[JobView](t, postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Benchmark: "gzip", Insts: 2000,
	}))
	done := pollJob(t, ts.URL, job.ID)
	if done.Status != JobDone {
		t.Fatalf("post-disconnect job = %+v", done)
	}
	if d := time.Since(start); d > 20*time.Second {
		t.Fatalf("post-disconnect job took %v, worker slot not freed", d)
	}
}
