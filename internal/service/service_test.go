package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"intervalsim/internal/experiments"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// newTestServer boots a Server behind httptest and registers a draining
// cleanup, so every test exercises the real HTTP surface.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

// pollJob polls GET /v1/jobs/{id} until the job reaches a terminal state.
func pollJob(t *testing.T, baseURL, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("GET job: status %d", resp.StatusCode)
		}
		job := decodeBody[JobView](t, resp)
		if job.Status == JobDone || job.Status == JobFailed {
			return job
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

// TestSimulateEndToEnd is the headline acceptance test: submit, poll, and
// check the result matches a direct in-process simulation bit for bit.
func TestSimulateEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	const insts = 50_000
	req := SimulateRequest{
		Benchmark: "gzip",
		Insts:     insts,
		Machine:   MachineSpec{Width: 4, Depth: 5, ROB: 64},
	}
	resp := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	job := decodeBody[JobView](t, resp)
	if job.ID == "" || job.Status != JobQueued {
		t.Fatalf("submit returned %+v, want queued job with ID", job)
	}

	done := pollJob(t, ts.URL, job.ID)
	if done.Status != JobDone || done.Outcome != outcomeOK {
		t.Fatalf("job finished %+v, want done/ok", done)
	}
	var got SimulateResult
	if err := json.Unmarshal(done.Result, &got); err != nil {
		t.Fatalf("unmarshal result: %v", err)
	}

	// Direct reference run: same trace, same config, live simulation with
	// no overlay. The service's overlay replay must be indistinguishable.
	wc, ok := workload.SuiteConfig("gzip")
	if !ok {
		t.Fatal("gzip missing from suite")
	}
	_, soa, err := experiments.SharedTrace(wc, insts)
	if err != nil {
		t.Fatalf("SharedTrace: %v", err)
	}
	cfg := experiments.Point(4, 5, 64)
	want, err := uarch.Run(soa.Reader(), cfg, uarch.Options{RecordMispredicts: true})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}

	if got.Cycles != want.Cycles || got.Insts != want.Insts {
		t.Errorf("cycles/insts = %d/%d, want %d/%d", got.Cycles, got.Insts, want.Cycles, want.Insts)
	}
	if got.Mispredicts != want.Mispredicts {
		t.Errorf("mispredicts = %d, want %d", got.Mispredicts, want.Mispredicts)
	}
	if got.ICacheMisses != want.ICacheMisses || got.LongDMisses != want.LongDMisses || got.ShortDMisses != want.ShortDMisses {
		t.Errorf("miss counts = %d/%d/%d, want %d/%d/%d",
			got.ICacheMisses, got.ShortDMisses, got.LongDMisses,
			want.ICacheMisses, want.ShortDMisses, want.LongDMisses)
	}
	if got.IPC != want.IPC() || got.AvgMispredictPenalty != want.AvgMispredictPenalty() {
		t.Errorf("ipc/penalty = %v/%v, want %v/%v", got.IPC, got.AvgMispredictPenalty, want.IPC(), want.AvgMispredictPenalty())
	}
	if got.Path != "soa+overlay" {
		t.Errorf("path = %q, want soa+overlay (service must be replaying the shared overlay)", got.Path)
	}
	if got.Benchmark != "gzip" {
		t.Errorf("benchmark = %q", got.Benchmark)
	}
}

// TestModelEndpoint: the synchronous analytic-model endpoint returns a
// plausible cycle stack.
func TestModelEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	resp := postJSON(t, ts.URL+"/v1/model", ModelRequest{
		Benchmark: "vpr",
		Insts:     50_000,
		Machine:   MachineSpec{ROB: 64},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model: status %d", resp.StatusCode)
	}
	got := decodeBody[ModelResult](t, resp)
	if got.CPI <= 0 || got.IPC <= 0 {
		t.Fatalf("model CPI/IPC = %v/%v, want positive", got.CPI, got.IPC)
	}
	if got.CPIBase <= 0 {
		t.Errorf("cpi_base = %v, want positive", got.CPIBase)
	}
	if got.AvgMispredictPenalty <= 0 {
		t.Errorf("avg penalty = %v, want positive", got.AvgMispredictPenalty)
	}
	sum := got.CPIBase + got.CPIBpred + got.CPIICache + got.CPILongData
	if diff := sum - got.CPI; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("cycle stack %v does not sum to CPI %v", sum, got.CPI)
	}
}

// TestBadRequests: validation failures are 400s with a JSON error, and are
// counted under the bad_input outcome.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	cases := []struct {
		name string
		body string
	}{
		{"empty", `{}`},
		{"unknown benchmark", `{"benchmark":"doom"}`},
		{"both sources", `{"benchmark":"gzip","workload":{"name":"x"}}`},
		{"unknown field", `{"benchmark":"gzip","bogus":1}`},
		{"insts too small", `{"benchmark":"gzip","insts":10}`},
		{"warmup >= insts", `{"benchmark":"gzip","insts":2000,"warmup":2000}`},
		{"negative timeout", `{"benchmark":"gzip","timeout_ms":-5}`},
		{"knobs and config", `{"benchmark":"gzip","machine":{"width":2,"config":{}}}`},
		{"malformed json", `{`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		body := decodeBody[errorResponse](t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body.Error)
		}
		if body.Error == "" {
			t.Errorf("%s: empty error body", tc.name)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/j99999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}

	m := decodeBody[MetricsResponse](t, mustGet(t, ts.URL+"/metrics"))
	if m.Jobs[outcomeBadInput] != uint64(len(cases)) {
		t.Errorf("bad_input count = %d, want %d", m.Jobs[outcomeBadInput], len(cases))
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp
}

// TestOverload429: with one worker and a queue of one, a third concurrent
// job is rejected with 429 + Retry-After — the admission-control contract.
func TestOverload429(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})

	slow := SimulateRequest{Benchmark: "mcf", Insts: 2_000_000}
	first := decodeBody[JobView](t, postJSON(t, ts.URL+"/v1/simulate", slow))

	// Wait until the first job occupies the worker, so the queue slot is
	// provably free for the second.
	deadline := time.Now().Add(30 * time.Second)
	for {
		job := decodeBody[JobView](t, mustGet(t, ts.URL+"/v1/jobs/"+first.ID))
		if job.Status == JobRunning {
			break
		}
		if job.Status != JobQueued {
			t.Fatalf("first job reached %s before running", job.Status)
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Distinct identities: resubmitting the same body would idempotently
	// join the first job instead of consuming admission slots.
	slow2, slow3 := slow, slow
	slow2.Warmup, slow3.Warmup = 1, 2
	second := postJSON(t, ts.URL+"/v1/simulate", slow2)
	second.Body.Close()
	if second.StatusCode != http.StatusOK {
		t.Fatalf("second submit: status %d, want 200 (queued)", second.StatusCode)
	}

	third := postJSON(t, ts.URL+"/v1/simulate", slow3)
	if third.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: status %d, want 429", third.StatusCode)
	}
	if third.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	third.Body.Close()

	// A sweep must also be turned away before committing to a stream.
	sweep := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Benchmark: "mcf", Insts: 2000})
	sweep.Body.Close()
	if sweep.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("sweep under overload: status %d, want 429", sweep.StatusCode)
	}

	m := decodeBody[MetricsResponse](t, mustGet(t, ts.URL+"/metrics"))
	if m.Jobs[outcomeRejected] < 2 {
		t.Errorf("rejected count = %d, want >= 2", m.Jobs[outcomeRejected])
	}
}

// readSweep consumes an NDJSON sweep stream.
func readSweep(t *testing.T, resp *http.Response) ([]SweepPoint, SweepTrailer) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("sweep: content-type %q", ct)
	}
	var (
		points  []SweepPoint
		trailer SweepTrailer
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		// The trailer is the only line with "done".
		if bytes.Contains(line, []byte(`"done"`)) {
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatalf("trailer: %v", err)
			}
			continue
		}
		var pt SweepPoint
		if err := json.Unmarshal(line, &pt); err != nil {
			t.Fatalf("point: %v", err)
		}
		points = append(points, pt)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return points, trailer
}

// TestSweepStreamAndOverlayReuse: a sweep streams every grid point plus a
// trailer; an identical second sweep is served from the shared caches, which
// /metrics must show as overlay hits.
func TestSweepStreamAndOverlayReuse(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	req := SweepRequest{
		Benchmark: "twolf",
		Insts:     20_000,
		Widths:    []int{2, 4},
		Depths:    []int{4},
		ROBs:      []int{32, 64},
	}
	points, trailer := readSweep(t, postJSON(t, ts.URL+"/v1/sweep", req))
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	if !trailer.Done || trailer.Points != 4 || trailer.OK != 4 || trailer.Failed != 0 {
		t.Fatalf("trailer = %+v, want done 4/4 ok", trailer)
	}
	seen := make(map[int]SweepPoint)
	for _, pt := range points {
		if pt.Error != "" {
			t.Errorf("point %d failed: %s", pt.Seq, pt.Error)
		}
		if pt.IPC <= 0 {
			t.Errorf("point %d: IPC = %v", pt.Seq, pt.IPC)
		}
		seen[pt.Seq] = pt
	}
	for seq := 0; seq < 4; seq++ {
		if _, ok := seen[seq]; !ok {
			t.Errorf("missing seq %d", seq)
		}
	}
	// Canonical order: widths × depths × robs; seq 1 is width 2, rob 64.
	if pt := seen[1]; pt.Width != 2 || pt.Depth != 4 || pt.ROB != 64 {
		t.Errorf("seq 1 = %d/%d/%d, want 2/4/64", pt.Width, pt.Depth, pt.ROB)
	}

	// Identical sweep again: same trace, same overlay — pure cache hits.
	_, trailer2 := readSweep(t, postJSON(t, ts.URL+"/v1/sweep", req))
	if trailer2.OK != 4 {
		t.Fatalf("second sweep trailer = %+v", trailer2)
	}
	m := decodeBody[MetricsResponse](t, mustGet(t, ts.URL+"/metrics"))
	if m.OverlayCache.Hits == 0 {
		t.Errorf("overlay cache hits = 0 after identical sweep, want > 0 (misses %d)", m.OverlayCache.Misses)
	}
	if m.TraceCache.Hits == 0 {
		t.Errorf("trace cache hits = 0 after identical sweep, want > 0")
	}
	if m.Jobs[outcomeOK] < 8 {
		t.Errorf("ok jobs = %d, want >= 8", m.Jobs[outcomeOK])
	}
	if m.Latency.Count < 8 {
		t.Errorf("latency count = %d, want >= 8", m.Latency.Count)
	}
}

// TestSweepModelMode: the analytic model serves the same grid without
// cycle-level simulation.
func TestSweepModelMode(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	points, trailer := readSweep(t, postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Benchmark: "gcc",
		Insts:     20_000,
		Widths:    []int{4},
		Depths:    []int{4},
		ROBs:      []int{32, 64, 128},
		Mode:      "model",
	}))
	if trailer.OK != 3 || trailer.Mode != "model" {
		t.Fatalf("trailer = %+v, want 3 ok in model mode", trailer)
	}
	for _, pt := range points {
		if pt.Path != "model" {
			t.Errorf("seq %d path = %q, want model", pt.Seq, pt.Path)
		}
		if pt.CPIBase <= 0 || pt.IPC <= 0 {
			t.Errorf("seq %d: cpi_base/ipc = %v/%v, want positive", pt.Seq, pt.CPIBase, pt.IPC)
		}
	}
}

// TestSweepSampledMode: a sampled sweep streams the ratio-estimator CPI
// interval per point, never computes an overlay, and rejects requests
// without the sampling phase lengths. Lockstep stays a batch-API mode.
func TestSweepSampledMode(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	points, trailer := readSweep(t, postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Benchmark:      "vpr",
		Insts:          60_000,
		Warmup:         10_000,
		Widths:         []int{2, 4},
		Depths:         []int{4},
		ROBs:           []int{64},
		Mode:           "sampled",
		SampleDetailed: 1_000,
		SampleSkip:     4_000,
	}))
	if trailer.OK != 2 || trailer.Mode != "sampled" {
		t.Fatalf("trailer = %+v, want 2 ok in sampled mode", trailer)
	}
	for _, pt := range points {
		if !(pt.CPILo <= pt.CPI && pt.CPI <= pt.CPIHi) || pt.CPI <= 0 {
			t.Errorf("seq %d interval out of order: %+v", pt.Seq, pt)
		}
		// (60000-10000)/(1000+4000) periods, ±1 for the trailing partial unit.
		if pt.SampleUnits < 10 || pt.SampleUnits > 11 {
			t.Errorf("seq %d units = %d, want about 10", pt.Seq, pt.SampleUnits)
		}
		if pt.Path != "soa" || !strings.Contains(pt.Fallback, "sampled") {
			t.Errorf("seq %d path/fallback = %q/%q, want live run with sampled provenance", pt.Seq, pt.Path, pt.Fallback)
		}
	}
	m := decodeBody[MetricsResponse](t, mustGet(t, ts.URL+"/metrics"))
	if m.OverlayCache.Hits+m.OverlayCache.Misses != 0 {
		t.Errorf("sampled sweep touched the overlay cache: %+v", m.OverlayCache)
	}

	for name, body := range map[string]SweepRequest{
		"sampled without phases": {Benchmark: "vpr", Insts: 60_000, Mode: "sampled"},
		"lockstep not a sweep mode": {Benchmark: "vpr", Insts: 60_000, Mode: "lockstep"},
	} {
		resp := postJSON(t, ts.URL+"/v1/sweep", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestSweepKeySamplingIdentity pins the store-fingerprint compatibility
// contract: sim/model sweep identities carry no sampling fields (their key
// bytes — and so their stored results — are unchanged by this feature), and
// sampled sweeps with different phase lengths are distinct identities.
func TestSweepKeySamplingIdentity(t *testing.T) {
	s := New(Options{})
	defer s.Shutdown(context.Background()) //nolint:errcheck

	resolve := func(req SweepRequest) sweepInputs {
		in, err := s.resolveSweep(&req)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	base := SweepRequest{Benchmark: "gzip", Insts: 20_000, Widths: []int{2}, Depths: []int{4}, ROBs: []int{64}}
	simKeyBytes := sweepKey(resolve(base))
	if bytes.Contains(simKeyBytes, []byte("sample_detailed")) {
		t.Errorf("sim sweep key carries sampling fields (old store entries would miss): %s", simKeyBytes)
	}

	sampled := base
	sampled.Mode, sampled.SampleDetailed, sampled.SampleSkip = "sampled", 1_000, 4_000
	k1 := sweepKey(resolve(sampled))
	sampled.SampleSkip = 9_000
	k2 := sweepKey(resolve(sampled))
	if bytes.Equal(k1, k2) {
		t.Error("sampled sweeps with different phase lengths share an identity")
	}
	if !bytes.Contains(k1, []byte(`"sample_detailed":1000`)) {
		t.Errorf("sampled key missing phase lengths: %s", k1)
	}
}

// TestBuildSweepCSVSampled: the durable sweep-job artifact renders the CI
// columns with fixed verbs in seq order.
func TestBuildSweepCSVSampled(t *testing.T) {
	got := string(buildSweepCSV("sampled", map[int]SweepPoint{
		1: {Seq: 1, Width: 4, Depth: 7, ROB: 128, IPC: 1.5, CPI: 0.66667, CPILo: 0.6, CPIHi: 0.73334, CPIRelErr: 0.1, SampleUnits: 10},
		0: {Seq: 0, Width: 2, Depth: 3, ROB: 64, IPC: 1.25, CPI: 0.8, CPILo: 0.75, CPIHi: 0.85, CPIRelErr: 0.0625, SampleUnits: 10},
	}))
	want := "seq,width,depth,rob,ipc,cpi,cpi_lo,cpi_hi,cpi_rel_err,units\n" +
		"0,2,3,64,1.250,0.8000,0.7500,0.8500,0.0625,10\n" +
		"1,4,7,128,1.500,0.6667,0.6000,0.7333,0.1000,10\n"
	if got != want {
		t.Errorf("sampled CSV:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHealthz: liveness, version, and drain reporting.
func TestHealthz(t *testing.T) {
	s, ts := newTestServer(t, Options{})

	h := decodeBody[HealthResponse](t, mustGet(t, ts.URL+"/healthz"))
	if h.Status != "ok" {
		t.Fatalf("status = %q, want ok", h.Status)
	}
	if h.Version == "" {
		t.Error("healthz version empty")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	h = decodeBody[HealthResponse](t, mustGet(t, ts.URL+"/healthz"))
	if h.Status != "draining" {
		t.Fatalf("status after shutdown = %q, want draining", h.Status)
	}
}

// TestShutdownDrainsInFlight: Shutdown waits for an admitted job, the job's
// result stays pollable, and new submissions get 503.
func TestShutdownDrainsInFlight(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})

	job := decodeBody[JobView](t, postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Benchmark: "parser",
		Insts:     500_000,
	}))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The drain must have completed the job, not dropped or canceled it.
	done := decodeBody[JobView](t, mustGet(t, ts.URL+"/v1/jobs/"+job.ID))
	if done.Status != JobDone || done.Outcome != outcomeOK {
		t.Fatalf("after drain, job = %+v, want done/ok", done)
	}
	if len(done.Result) == 0 {
		t.Fatal("drained job has no result")
	}

	resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Benchmark: "parser", Insts: 2000})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: status %d, want 503", resp.StatusCode)
	}
}

// TestJobHistoryEviction: finished jobs are evicted beyond the bound, but
// the store never loses a live job.
func TestJobHistoryEviction(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, JobHistory: 3})

	var last string
	for i := 0; i < 6; i++ {
		job := decodeBody[JobView](t, postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
			Benchmark: "gap",
			Insts:     2000,
		}))
		pollJob(t, ts.URL, job.ID)
		last = job.ID
	}
	m := decodeBody[MetricsResponse](t, mustGet(t, ts.URL+"/metrics"))
	if m.TrackedJobs > 3 {
		t.Errorf("tracked jobs = %d, want <= 3", m.TrackedJobs)
	}
	resp := mustGet(t, ts.URL+"/v1/jobs/"+last)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("most recent job evicted (status %d)", resp.StatusCode)
	}
}

// TestDeadlineOutcome: a job whose deadline is far shorter than the work is
// reported as a timeout, both on the job and in the outcome counters.
func TestDeadlineOutcome(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	job := decodeBody[JobView](t, postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Benchmark: "vortex",
		Insts:     10_000_000,
		TimeoutMS: 1,
	}))
	done := pollJob(t, ts.URL, job.ID)
	if done.Status != JobFailed || done.Outcome != outcomeTimeout {
		t.Fatalf("job = %+v, want failed/timeout", done)
	}
	if len(done.Result) != 0 {
		t.Error("timed-out job carries a result")
	}
	m := decodeBody[MetricsResponse](t, mustGet(t, ts.URL+"/metrics"))
	if m.Jobs[outcomeTimeout] == 0 {
		t.Error("timeout outcome not counted")
	}
}

// TestInlineWorkload: an inline generator config works as the program
// source, equivalently to a suite benchmark.
func TestInlineWorkload(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	wc, ok := workload.SuiteConfig("gzip")
	if !ok {
		t.Fatal("gzip missing from suite")
	}
	job := decodeBody[JobView](t, postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Workload: &wc,
		Insts:    20_000,
	}))
	done := pollJob(t, ts.URL, job.ID)
	if done.Status != JobDone {
		t.Fatalf("inline workload job = %+v", done)
	}
	var got SimulateResult
	if err := json.Unmarshal(done.Result, &got); err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != "gzip" || got.Cycles == 0 {
		t.Fatalf("result = %+v", got)
	}
}

// TestConcurrentMixedLoad hammers every endpoint at once under -race: the
// shared caches, job store, metrics, and pool must hold up.
func TestConcurrentMixedLoad(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 64})

	const clients = 8
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		go func() {
			bench := []string{"gzip", "mcf"}[c%2]
			job := SimulateRequest{Benchmark: bench, Insts: 10_000}
			raw, _ := json.Marshal(job)
			for i := 0; i < 5; i++ {
				resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				var jv JobView
				json.NewDecoder(resp.Body).Decode(&jv)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					errs <- fmt.Errorf("submit status %d", resp.StatusCode)
					return
				}
				if r, err := http.Get(ts.URL + "/metrics"); err == nil {
					r.Body.Close()
				}
				if jv.ID != "" {
					if r, err := http.Get(ts.URL + "/v1/jobs/" + jv.ID); err == nil {
						r.Body.Close()
					}
				}
			}
			errs <- nil
		}()
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
