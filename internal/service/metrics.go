package service

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"intervalsim/internal/core"
	"intervalsim/internal/harness"
	"intervalsim/internal/stats"
	"intervalsim/internal/uarch"
)

// Outcome labels for jobs-by-outcome accounting. Every finished job (and
// every rejected request) increments exactly one.
const (
	outcomeOK       = "ok"
	outcomeTimeout  = "timeout"
	outcomeCanceled = "canceled"
	outcomeBadInput = "bad_input"
	outcomeRejected = "rejected" // admission control turned the request away
	outcomeCached   = "cached"   // answered wholly from the durable result store
	outcomeError    = "error"
)

// classify maps a job error to its outcome label, seeing through the
// harness's structured wrappers.
func classify(err error) string {
	switch {
	case err == nil:
		return outcomeOK
	case errors.Is(err, harness.ErrTimeout), errors.Is(err, context.DeadlineExceeded), errors.Is(err, uarch.ErrWatchdog):
		return outcomeTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, uarch.ErrCanceled), errors.Is(err, harness.ErrNotRun):
		return outcomeCanceled
	case errors.Is(err, errBadRequest), errors.Is(err, uarch.ErrBadConfig), errors.Is(err, core.ErrBadInput):
		return outcomeBadInput
	default:
		return outcomeError
	}
}

// metrics aggregates the daemon's observability counters: jobs by outcome
// and request-latency quantiles over a sliding window (stats.Sample). Cache
// counters are read live from the caches at snapshot time, not duplicated
// here.
type metrics struct {
	started time.Time

	mu       sync.Mutex
	outcomes map[string]uint64
	latency  *stats.Sample // job execution latency, milliseconds
	drain    *stats.Rate   // job completions, for Retry-After hints
}

func newMetrics() *metrics {
	return &metrics{
		started:  time.Now(),
		outcomes: make(map[string]uint64),
		latency:  stats.NewSample(2048),
		drain:    stats.NewRate(30*time.Second, 512),
	}
}

// observe records one executed job: its outcome plus its latency. Every
// executed job — success or failure — frees a queue slot, so each one is a
// drain event for the Retry-After estimate.
func (m *metrics) observe(outcome string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.outcomes[outcome]++
	m.latency.Add(float64(d) / float64(time.Millisecond))
	m.drain.Add(time.Now())
}

// retryAfterSeconds estimates how long a rejected client should wait before
// the queue has plausibly drained: queued-jobs-plus-one over the observed
// completion rate, clamped to [1, 60] seconds. With no rate evidence yet
// (cold daemon) it falls back to 1 second, the previous constant.
func (m *metrics) retryAfterSeconds(queued int) int {
	m.mu.Lock()
	rate := m.drain.PerSecond(time.Now())
	m.mu.Unlock()
	if rate <= 0 {
		return 1
	}
	secs := int(math.Ceil(float64(queued+1) / rate))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// count records an outcome with no execution latency: admission rejections
// and request-validation failures, which never ran and would only distort
// the latency quantiles.
func (m *metrics) count(outcome string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.outcomes[outcome]++
}

// CacheMetrics is the JSON shape of one memo cache's counters.
type CacheMetrics struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Entries   int     `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

func cacheMetrics(s harness.MemoStats) CacheMetrics {
	return CacheMetrics{
		Hits:      s.Hits,
		Misses:    s.Misses,
		Evictions: s.Evictions,
		Entries:   s.Entries,
		HitRate:   s.HitRate(),
	}
}

// LatencyMetrics summarizes job execution latency over the sliding window.
type LatencyMetrics struct {
	Count uint64  `json:"count"` // jobs ever observed (not the window size)
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"` // max within the window
}

// StoreMetrics is the durable result store's observability slice of
// /metrics: live hit/miss/put counters plus the recovery provenance of the
// last Open (how many records replayed, how many torn bytes were truncated,
// whether the sidecar index had to be rebuilt) and the journal-resume state.
type StoreMetrics struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Puts    uint64 `json:"puts"`
	Records int    `json:"records"`

	RecoveredRecords int   `json:"recovered_records"`
	TruncatedBytes   int64 `json:"truncated_bytes"`
	IndexRebuilt     bool  `json:"index_rebuilt"`

	Ready       bool `json:"ready"`        // journal replay finished
	ResumedJobs int  `json:"resumed_jobs"` // incomplete sweep jobs resumed at startup
}

// MetricsResponse is the full GET /metrics document.
type MetricsResponse struct {
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	QueueDepth    int  `json:"queue_depth"`
	QueueCapacity int  `json:"queue_capacity"`
	InFlight      int  `json:"inflight"`
	Workers       int  `json:"workers"`
	Tenants       int  `json:"tenants"` // tenants with admitted jobs
	Draining      bool `json:"draining"`
	TrackedJobs   int  `json:"tracked_jobs"`

	Jobs map[string]uint64 `json:"jobs"`

	OverlayCache CacheMetrics    `json:"overlay_cache"`
	TraceCache   CacheMetrics    `json:"trace_cache"`
	PeerFill     PeerFillMetrics `json:"peer_fill"`
	Store        *StoreMetrics   `json:"store,omitempty"` // nil without -store

	Latency LatencyMetrics `json:"latency"`
}

// snapshot assembles the /metrics document from the live sources.
func (m *metrics) snapshot() (jobs map[string]uint64, lat LatencyMetrics, uptime float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	jobs = make(map[string]uint64, len(m.outcomes))
	for k, v := range m.outcomes {
		jobs[k] = v
	}
	qs := m.latency.Quantiles(0.5, 0.9, 0.99)
	lat = LatencyMetrics{
		Count: m.latency.Count(),
		P50MS: qs[0],
		P90MS: qs[1],
		P99MS: qs[2],
		MaxMS: m.latency.Max(),
	}
	return jobs, lat, time.Since(m.started).Seconds()
}
