package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// drainPool closes p with a generous budget; test helper.
func drainPool(t *testing.T, p *Pool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 2, QueueDepth: 8})
	defer drainPool(t, p)

	const n = 10
	var mu sync.Mutex
	ran := 0
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		err := p.SubmitWait(context.Background(), &task{
			name: "t",
			run: func(ctx context.Context) error {
				mu.Lock()
				ran++
				mu.Unlock()
				return nil
			},
			finish: func(err error, d time.Duration) {
				if err != nil {
					t.Errorf("finish err = %v", err)
				}
				wg.Done()
			},
		})
		if err != nil {
			t.Fatalf("SubmitWait: %v", err)
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if ran != n {
		t.Fatalf("ran = %d, want %d", ran, n)
	}
}

// TestPoolPanicContainment: a panicking task becomes a structured error via
// the harness; the worker survives and keeps serving.
func TestPoolPanicContainment(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 4})
	defer drainPool(t, p)

	panicked := make(chan error, 1)
	if err := p.Submit(&task{
		name:   "boom",
		run:    func(ctx context.Context) error { panic("kaboom") },
		finish: func(err error, d time.Duration) { panicked <- err },
	}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	err := <-panicked
	if err == nil {
		t.Fatal("panicking task reported no error")
	}
	if classify(err) != outcomeError {
		t.Fatalf("classify(%v) = %q, want %q", err, classify(err), outcomeError)
	}

	// The same (sole) worker must still be alive.
	ok := make(chan struct{})
	if err := p.Submit(&task{
		name:   "after",
		run:    func(ctx context.Context) error { return nil },
		finish: func(err error, d time.Duration) { close(ok) },
	}); err != nil {
		t.Fatalf("Submit after panic: %v", err)
	}
	select {
	case <-ok:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not survive the panic")
	}
}

// TestPoolDeadline: a task that overstays its deadline is cut off and
// classified as a timeout.
func TestPoolDeadline(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 4})
	defer drainPool(t, p)

	got := make(chan error, 1)
	if err := p.Submit(&task{
		name:    "slow",
		timeout: 20 * time.Millisecond,
		run: func(ctx context.Context) error {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(10 * time.Second):
				return nil
			}
		},
		finish: func(err error, d time.Duration) { got <- err },
	}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	err := <-got
	if classify(err) != outcomeTimeout {
		t.Fatalf("classify(%v) = %q, want %q", err, classify(err), outcomeTimeout)
	}
}

// TestPoolAdmission: a full queue rejects with ErrQueueFull; a closed pool
// rejects with ErrClosed.
func TestPoolAdmission(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 1})

	// Occupy the worker, then fill the single queue slot.
	release := make(chan struct{})
	running := make(chan struct{})
	blocker := &task{name: "blocker", run: func(ctx context.Context) error {
		close(running)
		<-release
		return nil
	}}
	if err := p.Submit(blocker); err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-running
	if err := p.Submit(&task{name: "queued", run: func(ctx context.Context) error { return nil }}); err != nil {
		t.Fatalf("Submit queued: %v", err)
	}

	err := p.Submit(&task{name: "rejected", run: func(ctx context.Context) error { return nil }})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit on full queue = %v, want ErrQueueFull", err)
	}
	if s := p.Stats(); s.Queued != 1 || s.InFlight != 1 {
		t.Fatalf("Stats = %+v, want 1 queued / 1 inflight", s)
	}

	// SubmitWait gives up when its context does.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := p.SubmitWait(ctx, &task{name: "waiter", run: func(ctx context.Context) error { return nil }}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SubmitWait = %v, want DeadlineExceeded", err)
	}

	close(release)
	drainPool(t, p)

	if err := p.Submit(&task{name: "late", run: func(ctx context.Context) error { return nil }}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := p.SubmitWait(context.Background(), &task{name: "late2", run: func(ctx context.Context) error { return nil }}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitWait after Close = %v, want ErrClosed", err)
	}
}

// TestPoolCloseDrains: tasks queued before Close still run to completion.
func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 16})
	const n = 8
	var mu sync.Mutex
	finished := 0
	for i := 0; i < n; i++ {
		err := p.Submit(&task{
			name: "drainee",
			run: func(ctx context.Context) error {
				time.Sleep(time.Millisecond)
				return nil
			},
			finish: func(err error, d time.Duration) {
				mu.Lock()
				finished++
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	drainPool(t, p)
	mu.Lock()
	defer mu.Unlock()
	if finished != n {
		t.Fatalf("finished = %d, want %d (Close must drain the queue)", finished, n)
	}
}

// TestPoolCloseForce: when the drain budget expires, in-flight contexts are
// canceled and Close still returns (with the context's error).
func TestPoolCloseForce(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 4})
	running := make(chan struct{})
	got := make(chan error, 1)
	if err := p.Submit(&task{
		name: "stubborn",
		run: func(ctx context.Context) error {
			close(running)
			<-ctx.Done()
			return ctx.Err()
		},
		finish: func(err error, d time.Duration) { got <- err },
	}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-running
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close = %v, want DeadlineExceeded", err)
	}
	err := <-got
	if err == nil {
		t.Fatal("force-canceled task reported no error")
	}
}
