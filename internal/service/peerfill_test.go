package service

import (
	"bytes"
	"net/http"
	"reflect"
	"sync"
	"testing"

	"intervalsim/internal/experiments"
	"intervalsim/internal/overlay"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// peerTestPair boots two daemons with private trace caches — so nothing is
// shared through the process-wide memo — where b knows a as its peer.
func peerTestPair(t *testing.T) (a, b *Server) {
	t.Helper()
	a, ts := newTestServer(t, Options{Workers: 2, TraceCache: experiments.NewTraceCache(4)})
	b, _ = newTestServer(t, Options{Workers: 2, TraceCache: experiments.NewTraceCache(4), Peers: []string{ts.URL}})
	return a, b
}

// TestPeerFillEndToEnd: a daemon that warms an artifact serves it to a peer,
// and the peer computes nothing — the fleet-wide exactly-once property.
func TestPeerFillEndToEnd(t *testing.T) {
	a, b := peerTestPair(t)
	wc, ok := workload.SuiteConfig("gzip")
	if !ok {
		t.Fatal("unknown workload gzip")
	}
	const insts = 10_000
	base := uarch.Baseline()

	// Warm A locally: one trace generation, one overlay computation.
	_, soaA, err := a.sharedTrace(wc, insts)
	if err != nil {
		t.Fatal(err)
	}
	ovA, err := a.overlayFor(soaA, base.Pred, base.Mem, nil)
	if err != nil {
		t.Fatal(err)
	}

	// B resolves the same artifacts: both must come from A, not local work.
	_, soaB, err := b.sharedTrace(wc, insts)
	if err != nil {
		t.Fatal(err)
	}
	ovB, err := b.overlayFor(soaB, base.Pred, base.Mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if soaB == soaA {
		t.Fatal("peers share one SoA pointer; the fill did not cross the wire")
	}
	if !reflect.DeepEqual(soaB.Unpack(), soaA.Unpack()) {
		t.Fatal("fetched trace differs from the origin's")
	}
	if !reflect.DeepEqual(ovB.Code, ovA.Code) {
		t.Fatal("fetched overlay differs from the origin's")
	}

	bm := b.peerFillMetrics()
	if bm.TraceFills != 1 || bm.TracesComputed != 0 {
		t.Fatalf("B trace accounting: %+v, want 1 fill, 0 computed", bm)
	}
	if bm.OverlayFills != 1 || bm.OverlaysComputed != 0 {
		t.Fatalf("B overlay accounting: %+v, want 1 fill, 0 computed", bm)
	}
	if bm.BytesFetched == 0 || bm.Errors != 0 {
		t.Fatalf("B transfer accounting: %+v", bm)
	}
	am := a.peerFillMetrics()
	if am.FillsServed != 2 || am.BytesServed == 0 {
		t.Fatalf("A serving accounting: %+v, want 2 fills served", am)
	}
	if am.TracesComputed != 1 || am.OverlaysComputed != 1 {
		t.Fatalf("A compute accounting: %+v, want exactly one of each", am)
	}
}

// TestPeerFillFallsBackPastDeadPeer: an unreachable peer costs an error
// counter, never correctness — the daemon computes locally.
func TestPeerFillFallsBackPastDeadPeer(t *testing.T) {
	s, _ := newTestServer(t, Options{
		Workers:    1,
		TraceCache: experiments.NewTraceCache(4),
		Peers:      []string{"http://127.0.0.1:1"}, // nothing listens here
	})
	wc, _ := workload.SuiteConfig("gzip")
	_, soa, err := s.sharedTrace(wc, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	base := uarch.Baseline()
	if _, err := s.overlayFor(soa, base.Pred, base.Mem, nil); err != nil {
		t.Fatal(err)
	}
	m := s.peerFillMetrics()
	if m.TracesComputed != 1 || m.OverlaysComputed != 1 {
		t.Fatalf("local fallback did not compute: %+v", m)
	}
	if m.TraceFills != 0 || m.OverlayFills != 0 || m.Errors == 0 {
		t.Fatalf("dead peer not accounted as errors: %+v", m)
	}
}

// TestPeerFillConcurrentStress races many resolvers of the same artifacts
// against one shared cache on the filling daemon: the memo's single flight
// must collapse them to exactly one peer fetch per artifact. Run under
// -race, this is also the data-race check on the fill index and counters.
func TestPeerFillConcurrentStress(t *testing.T) {
	a, b := peerTestPair(t)
	wc, _ := workload.SuiteConfig("gzip")
	const insts = 8_000
	base := uarch.Baseline()
	if _, soa, err := a.sharedTrace(wc, insts); err != nil {
		t.Fatal(err)
	} else if _, err := a.overlayFor(soa, base.Pred, base.Mem, nil); err != nil {
		t.Fatal(err)
	}

	const racers = 16
	overlays := make([]*overlay.Overlay, racers)
	errs := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, soa, err := b.sharedTrace(wc, insts)
			if err != nil {
				errs[i] = err
				return
			}
			overlays[i], errs[i] = b.overlayFor(soa, base.Pred, base.Mem, nil)
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("racer %d: %v", i, errs[i])
		}
		if overlays[i] != overlays[0] {
			t.Fatal("racers resolved different overlay instances; single flight broken")
		}
	}
	m := b.peerFillMetrics()
	if m.TraceFills != 1 || m.OverlayFills != 1 {
		t.Fatalf("fills not collapsed by single flight: %+v", m)
	}
	if m.TracesComputed != 0 || m.OverlaysComputed != 0 {
		t.Fatalf("racer recomputed a fleet-resident artifact: %+v", m)
	}
}

// TestPeerFillHandlers exercises the fill RPC surface directly: push-fill
// ordering (overlay before trace is a conflict), fingerprint hygiene, and
// pull round-trips.
func TestPeerFillHandlers(t *testing.T) {
	a, _ := newTestServer(t, Options{Workers: 1, TraceCache: experiments.NewTraceCache(4)})
	_, bts := newTestServer(t, Options{Workers: 1, TraceCache: experiments.NewTraceCache(4)})
	wc, _ := workload.SuiteConfig("gzip")
	const insts = 6_000
	base := uarch.Baseline()
	_, soa, err := a.sharedTrace(wc, insts)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := a.overlayFor(soa, base.Pred, base.Mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	traceFP := TraceFingerprint(wc, insts)
	ovFP := overlayFP(traceFP, overlay.SpecFingerprint(base.Pred, base.Mem))

	// Unknown fingerprints answer 404.
	for _, path := range []string{"/v1/cache/trace/" + traceFP, "/v1/cache/overlay/" + ovFP} {
		resp, err := http.Get(bts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s on cold daemon: status %d, want 404", path, resp.StatusCode)
		}
	}
	// Pushing the overlay before its trace is a conflict: the receiver has
	// no SoA to validate the code bytes against.
	resp := postRaw(t, bts.URL+"/v1/cache/overlay/"+ovFP, ov.EncodeWire(traceFP))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("overlay push before trace: status %d, want 409", resp.StatusCode)
	}
	// Push trace, then overlay; both land.
	if resp := postRaw(t, bts.URL+"/v1/cache/trace/"+traceFP, soa.EncodeWire()); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("trace push: status %d", resp.StatusCode)
	}
	if resp := postRaw(t, bts.URL+"/v1/cache/overlay/"+ovFP, ov.EncodeWire(traceFP)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("overlay push after trace: status %d", resp.StatusCode)
	}
	// Pull both back and verify the round trip.
	for _, path := range []string{"/v1/cache/trace/" + traceFP, "/v1/cache/overlay/" + ovFP} {
		resp, err := http.Get(bts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s after push: status %d", path, resp.StatusCode)
		}
	}
	// Hostile fingerprints are rejected before touching the maps.
	for _, fp := range []string{"UPPER", "zz", "..%2f..", "deadbeef!"} {
		if resp := postRaw(t, bts.URL+"/v1/cache/trace/"+fp, soa.EncodeWire()); resp.StatusCode != http.StatusBadRequest &&
			resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusMovedPermanently {
			t.Fatalf("push under fingerprint %q: status %d, want rejection", fp, resp.StatusCode)
		}
	}
}

// postRaw POSTs opaque bytes (a wire frame) and returns the closed response.
func postRaw(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	resp.Body.Close()
	return resp
}
