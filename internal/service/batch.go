package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"intervalsim/internal/core"
	"intervalsim/internal/experiments"
	"intervalsim/internal/overlay"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// BatchPointSpec names one design point of a batch: the coordinator's
// global sequence number plus the (width, depth, rob) knobs, resolved
// through experiments.Point so the point means the same processor as in
// cmd/sweep and /v1/sweep.
type BatchPointSpec struct {
	Seq   int `json:"seq"`
	Width int `json:"width"`
	Depth int `json:"depth"`
	ROB   int `json:"rob"`
}

// BatchRequest asks for an explicit list of design points over one workload
// — the shard unit of distributed sweeps. One batch is one HTTP request, so
// a coordinator dispatching thousands of points pays per-shard, not
// per-point, request overhead, and each daemon resolves the workload's
// trace and overlay once per shard (and across shards via the caches).
type BatchRequest struct {
	Benchmark string           `json:"benchmark,omitempty"`
	Workload  *workload.Config `json:"workload,omitempty"`
	Insts     int              `json:"insts,omitempty"`
	Warmup    uint64           `json:"warmup,omitempty"`
	Pred      string           `json:"pred,omitempty"` // predictor preset for every point (default: baseline tournament)
	// VPred/FetchRate apply value prediction and variable-rate fetch to every
	// point, as in MachineSpec; rejected at admission when invalid.
	VPred     string  `json:"vpred,omitempty"`
	FetchRate float64 `json:"fetchrate,omitempty"`
	Mode      string  `json:"mode,omitempty"` // "sim" (default), "lockstep", "sampled", or "model"
	// Decompose adds the interval penalty decomposition (frontend, drain,
	// FU, short-data, long-data) to each sim- or lockstep-mode point — the
	// columns cmd/sweep's CSV carries. It costs one mispredict-penalty
	// decomposition pass per point.
	Decompose bool `json:"decompose,omitempty"`
	// LockstepK is the number of configurations advanced per lockstep set
	// (lockstep mode only; <= 0 means 8). The batch's points are chunked in
	// request order into sets of this size, each set simulated in one pass
	// over the shared trace via uarch.SimulateMany.
	LockstepK int `json:"lockstep_k,omitempty"`
	// SampleDetailed/SampleSkip are the systematic-sampling phase lengths
	// (sampled mode only; both must be positive): simulate SampleDetailed
	// instructions cycle-accurately, functionally warm SampleSkip, repeat.
	// The request's Warmup becomes the initial functional skip.
	SampleDetailed uint64           `json:"sample_detailed,omitempty"`
	SampleSkip     uint64           `json:"sample_skip,omitempty"`
	TimeoutMS      int              `json:"timeout_ms,omitempty"` // per design point
	Points         []BatchPointSpec `json:"points"`
}

// BatchPoint is one NDJSON line of a batch stream, emitted in completion
// order (Seq echoes the request's spec). Failed points carry Error and
// Outcome instead of measurements.
type BatchPoint struct {
	Seq   int `json:"seq"`
	Width int `json:"width"`
	Depth int `json:"depth"`
	ROB   int `json:"rob"`

	IPC        float64 `json:"ipc,omitempty"`
	AvgPenalty float64 `json:"avg_penalty,omitempty"`
	Cycles     uint64  `json:"cycles,omitempty"`

	// Sim-mode decomposition (Decompose).
	PenFrontend float64 `json:"pen_frontend,omitempty"`
	PenDrain    float64 `json:"pen_drain,omitempty"`
	PenFU       float64 `json:"pen_fu,omitempty"`
	PenShortD   float64 `json:"pen_shortd,omitempty"`
	PenLongD    float64 `json:"pen_longd,omitempty"`

	// Model-mode cycle stack.
	CPIBase     float64 `json:"cpi_base,omitempty"`
	CPIBpred    float64 `json:"cpi_bpred,omitempty"`
	CPIICache   float64 `json:"cpi_icache,omitempty"`
	CPILongData float64 `json:"cpi_longd,omitempty"`
	CPIVMisspec float64 `json:"cpi_vmisspec,omitempty"`

	// Sampled-mode confidence interval: the ratio-estimator CPI over the
	// measurement units with its Student-t bounds (see uarch.SampleStats).
	CPI         float64 `json:"cpi,omitempty"`
	CPILo       float64 `json:"cpi_lo,omitempty"`
	CPIHi       float64 `json:"cpi_hi,omitempty"`
	CPIRelErr   float64 `json:"cpi_rel_err,omitempty"`
	SampleUnits int     `json:"sample_units,omitempty"`

	Path string `json:"path,omitempty"`
	// Fallback is this point's own fast-path bypass provenance
	// (uarch.Result.Fallback) — per config even in lockstep mode, where one
	// set member can fall back (e.g. a divergent speculation fingerprint)
	// while its siblings replay the overlay.
	Fallback string `json:"fallback,omitempty"`
	Error    string `json:"error,omitempty"`
	Outcome  string `json:"outcome,omitempty"`
}

// BatchTrailer is the final NDJSON line of a batch stream.
type BatchTrailer struct {
	Done    bool   `json:"done"`
	Points  int    `json:"points"`
	OK      int    `json:"ok"`
	Failed  int    `json:"failed"`
	Mode    string `json:"mode"`
	Elapsed string `json:"elapsed"`
}

// batchInputs is a resolved batch request.
type batchInputs struct {
	simInputs
	mode           string
	decompose      bool
	lockstepK      int
	sampleDetailed uint64
	sampleSkip     uint64
	specs          []BatchPointSpec
}

func (s *Server) resolveBatch(req *BatchRequest) (batchInputs, error) {
	base, err := s.resolveSimulate(&SimulateRequest{
		Benchmark: req.Benchmark,
		Workload:  req.Workload,
		Insts:     req.Insts,
		Warmup:    req.Warmup,
		Machine:   MachineSpec{Pred: req.Pred, VPred: req.VPred, FetchRate: req.FetchRate},
		TimeoutMS: req.TimeoutMS,
	})
	if err != nil {
		return batchInputs{}, err
	}
	in := batchInputs{simInputs: base, specs: req.Points, decompose: req.Decompose}
	if len(in.specs) == 0 {
		return batchInputs{}, fmt.Errorf("%w: batch has no points", errBadRequest)
	}
	if len(in.specs) > s.opts.MaxSweepPoints {
		return batchInputs{}, fmt.Errorf("%w: %d points exceeds the %d-point cap", errBadRequest, len(in.specs), s.opts.MaxSweepPoints)
	}
	for _, sp := range in.specs {
		if sp.Width <= 0 || sp.Depth <= 0 || sp.ROB <= 0 {
			return batchInputs{}, fmt.Errorf("%w: point seq %d has non-positive knobs", errBadRequest, sp.Seq)
		}
	}
	in.mode = req.Mode
	if in.mode == "" {
		in.mode = "sim"
	}
	switch in.mode {
	case "sim", "lockstep", "sampled", "model":
	default:
		return batchInputs{}, fmt.Errorf("%w: unknown mode %q (want sim, lockstep, sampled or model)", errBadRequest, in.mode)
	}
	if in.decompose && in.mode != "sim" && in.mode != "lockstep" {
		return batchInputs{}, fmt.Errorf("%w: decompose requires sim or lockstep mode", errBadRequest)
	}
	in.lockstepK = req.LockstepK
	if in.lockstepK <= 0 {
		in.lockstepK = 8
	}
	in.sampleDetailed, in.sampleSkip = req.SampleDetailed, req.SampleSkip
	if in.mode == "sampled" && (in.sampleDetailed == 0 || in.sampleSkip == 0) {
		return batchInputs{}, fmt.Errorf("%w: sampled mode needs positive sample_detailed and sample_skip", errBadRequest)
	}
	return in, nil
}

// handleBatch streams an explicit design-point list as NDJSON: one
// BatchPoint per spec in completion order, then a BatchTrailer. This is the
// shard-dispatch surface of distributed sweeps (see internal/cluster): the
// semantics mirror /v1/sweep, but the caller chooses the points, so a
// coordinator can key shards by workload and keep each daemon's trace and
// overlay caches hot.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req BatchRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.reject(w, http.StatusBadRequest, err, outcomeBadInput)
		return
	}
	in, err := s.resolveBatch(&req)
	if err != nil {
		s.reject(w, http.StatusBadRequest, err, outcomeBadInput)
		return
	}
	// Batch dispatches come from the cluster coordinator, which stamps its
	// current fleet view on each one; adopt it before resolving artifacts so
	// the fills below can already reach the peers.
	s.learnPeers(r)

	// Shared artifacts, once per batch — and across batches via the caches,
	// filled from fleet peers when possible. Sampled runs bypass overlay
	// replay by design (precomputed dependences do not apply to
	// fast-forwarded runs), so that mode never computes one.
	tr, soa, err := s.sharedTrace(in.wc, in.insts)
	if err != nil {
		s.reject(w, http.StatusInternalServerError, err, outcomeError)
		return
	}
	var ov *overlay.Overlay
	if in.mode != "sampled" {
		if ov, err = s.overlayFor(soa, in.cfg.Pred, in.cfg.Mem, in.cfg.VPred); err != nil {
			s.reject(w, http.StatusInternalServerError, err, outcomeError)
			return
		}
	}
	var set *core.ModelSet
	if in.mode == "model" {
		maxROB := 2
		for _, sp := range in.specs {
			if sp.ROB > maxROB {
				maxROB = sp.ROB
			}
		}
		set, err = core.NewModelSet(soa, ov, in.cfg, maxROB, in.warmup, in.insts)
		if err != nil {
			s.reject(w, http.StatusInternalServerError, err, outcomeError)
			return
		}
	}

	// Admission check before committing to a stream, as for /v1/sweep.
	if ps := s.pool.Stats(); ps.Queued >= ps.Capacity {
		w.Header().Set("Retry-After", s.retryAfter())
		s.reject(w, http.StatusTooManyRequests, ErrQueueFull, outcomeRejected)
		return
	}

	lines := make(chan BatchPoint, len(in.specs))
	var wg sync.WaitGroup
	wg.Add(len(in.specs))
	go func() {
		wg.Wait()
		close(lines)
	}()

	go func() {
		if in.mode == "lockstep" {
			s.submitLockstepSets(r, tr, soa, ov, in, lines, &wg)
			return
		}
		for _, sp := range in.specs {
			sp := sp
			cfg := experiments.Point(sp.Width, sp.Depth, sp.ROB)
			cfg.Pred = in.cfg.Pred
			cfg.VPred = in.cfg.VPred
			cfg.FetchRate = in.cfg.FetchRate
			line := BatchPoint{Seq: sp.Seq, Width: sp.Width, Depth: sp.Depth, ROB: sp.ROB}
			t := &task{
				name:    fmt.Sprintf("batch-%s-%s", in.wc.Name, cfg.Name),
				timeout: in.timeout,
				parent:  r.Context(),
				run: func(ctx context.Context) error {
					switch in.mode {
					case "model":
						return s.modelBatchPoint(cfg, set, &line)
					case "sampled":
						return s.sampledBatchPoint(ctx, soa, cfg, in, &line)
					default:
						return s.simBatchPoint(ctx, tr, soa, ov, cfg, in, &line)
					}
				},
				finish: func(err error, d time.Duration) {
					outcome := classify(err)
					s.metrics.observe(outcome, d)
					if err != nil {
						lines <- BatchPoint{
							Seq: sp.Seq, Width: sp.Width, Depth: sp.Depth, ROB: sp.ROB,
							Error: err.Error(), Outcome: outcome,
						}
					} else {
						lines <- line
					}
					wg.Done()
				},
			}
			if err := s.pool.SubmitWait(r.Context(), t); err != nil {
				outcome := classify(err)
				s.metrics.count(outcome)
				lines <- BatchPoint{
					Seq: sp.Seq, Width: sp.Width, Depth: sp.Depth, ROB: sp.ROB,
					Error: err.Error(), Outcome: outcome,
				}
				wg.Done()
			}
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	ok, failed := 0, 0
	for line := range lines {
		if line.Error == "" {
			ok++
		} else {
			failed++
		}
		enc.Encode(line) //nolint:errcheck // keep draining for the finishers
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(BatchTrailer{ //nolint:errcheck
		Done: true, Points: len(in.specs), OK: ok, Failed: failed,
		Mode: in.mode, Elapsed: time.Since(start).Round(time.Millisecond).String(),
	})
}

// simBatchPoint runs one cycle-level point into line, with the interval
// penalty decomposition when asked for — the exact computation behind
// cmd/sweep's sim-mode CSV row, so a distributed sweep merges to the same
// bytes as a single-process one.
func (s *Server) simBatchPoint(ctx context.Context, tr *trace.Trace, soa *trace.SoA, ov *overlay.Overlay, cfg uarch.Config, in batchInputs, line *BatchPoint) error {
	res, err := uarch.RunContext(ctx, soa.Reader(), cfg, uarch.Options{
		RecordMispredicts: true,
		RecordLoadLevels:  in.decompose,
		WarmupInsts:       in.warmup,
		Overlay:           ov,
	})
	if err != nil {
		return err
	}
	return fillSimPoint(tr, res, in.decompose, line)
}

// fillSimPoint renders one simulated result into its batch line — shared by
// the per-point sim path and the lockstep path, so their rows are identical.
func fillSimPoint(tr *trace.Trace, res *uarch.Result, decompose bool, line *BatchPoint) error {
	line.IPC = res.IPC()
	line.Cycles = res.Cycles
	line.Path = res.Path
	line.Fallback = res.Fallback
	line.AvgPenalty = res.AvgMispredictPenalty()
	if decompose {
		dec, err := core.NewDecomposer(tr, res)
		if err != nil {
			return err
		}
		m := core.Mean(dec.DecomposeAll())
		line.AvgPenalty = m.Total
		line.PenFrontend = m.Frontend
		line.PenDrain = m.BaseILP
		line.PenFU = m.FULatency
		line.PenShortD = m.ShortDMiss
		line.PenLongD = m.LongDMiss
	}
	return nil
}

// submitLockstepSets chunks a lockstep batch's points in request order into
// K-sets and submits one pool task per set. Each set is one SimulateMany pass
// over the shared trace; its results fill the same fields simBatchPoint
// would, per point, including each config's own fallback provenance. A set
// member failing (bad config, watchdog) fails the whole set — every member
// then reports the error, matching SimulateMany's all-or-nothing contract.
func (s *Server) submitLockstepSets(r *http.Request, tr *trace.Trace, soa *trace.SoA, ov *overlay.Overlay, in batchInputs, lines chan<- BatchPoint, wg *sync.WaitGroup) {
	for start := 0; start < len(in.specs); start += in.lockstepK {
		set := in.specs[start:min(start+in.lockstepK, len(in.specs))]
		cfgs := make([]uarch.Config, len(set))
		pts := make([]BatchPoint, len(set))
		for i, sp := range set {
			cfgs[i] = experiments.Point(sp.Width, sp.Depth, sp.ROB)
			cfgs[i].Pred = in.cfg.Pred
			cfgs[i].VPred = in.cfg.VPred
			cfgs[i].FetchRate = in.cfg.FetchRate
			pts[i] = BatchPoint{Seq: sp.Seq, Width: sp.Width, Depth: sp.Depth, ROB: sp.ROB}
		}
		emitAll := func(err error, outcome string) {
			for i, sp := range set {
				if err != nil {
					lines <- BatchPoint{
						Seq: sp.Seq, Width: sp.Width, Depth: sp.Depth, ROB: sp.ROB,
						Error: err.Error(), Outcome: outcome,
					}
				} else {
					lines <- pts[i]
				}
				wg.Done()
			}
		}
		t := &task{
			name:    fmt.Sprintf("batch-%s-lockstep-%s", in.wc.Name, cfgs[0].Name),
			timeout: in.timeout,
			parent:  r.Context(),
			run: func(ctx context.Context) error {
				return s.lockstepBatchSet(ctx, tr, soa, ov, cfgs, in, pts)
			},
			finish: func(err error, d time.Duration) {
				outcome := classify(err)
				s.metrics.observe(outcome, d)
				emitAll(err, outcome)
			},
		}
		if err := s.pool.SubmitWait(r.Context(), t); err != nil {
			s.metrics.count(classify(err))
			emitAll(err, classify(err))
		}
	}
}

// lockstepBatchSet runs one K-set of design points in lockstep and fills
// their batch lines — the same values, per point, that the per-point sim
// path produces (pinned by TestBatchLockstepMatchesSim).
func (s *Server) lockstepBatchSet(ctx context.Context, tr *trace.Trace, soa *trace.SoA, ov *overlay.Overlay, cfgs []uarch.Config, in batchInputs, pts []BatchPoint) error {
	results, err := uarch.SimulateMany(ctx, soa, ov, cfgs, uarch.Options{
		RecordMispredicts: true,
		RecordLoadLevels:  in.decompose,
		WarmupInsts:       in.warmup,
	})
	if err != nil {
		return err
	}
	for i, res := range results {
		if err := fillSimPoint(tr, res, in.decompose, &pts[i]); err != nil {
			return err
		}
	}
	return nil
}

// sampledBatchPoint runs one design point under systematic sampling and
// fills the CPI confidence-interval fields. The request's warmup budget
// becomes the initial functional skip; no overlay is involved (sampled runs
// track dependences live by design).
func (s *Server) sampledBatchPoint(ctx context.Context, soa *trace.SoA, cfg uarch.Config, in batchInputs, line *BatchPoint) error {
	res, err := uarch.RunContext(ctx, soa.Reader(), cfg, uarch.Options{
		SampleStartSkip: in.warmup,
		SampleDetailed:  in.sampleDetailed,
		SampleSkip:      in.sampleSkip,
	})
	if err != nil {
		return err
	}
	st := res.Sample
	if st == nil {
		return fmt.Errorf("%s: sampled run carries no sample statistics", cfg.Name)
	}
	line.IPC = res.IPC()
	line.Cycles = res.Cycles
	line.Path = res.Path
	line.Fallback = res.Fallback
	line.CPI = st.CPI.Mean
	line.CPILo = st.CPI.Lower
	line.CPIHi = st.CPI.Upper
	line.CPIRelErr = st.CPI.RelErr
	line.SampleUnits = st.Units
	return nil
}

// modelBatchPoint evaluates one analytic-model point into line, mirroring
// cmd/sweep's model-mode CSV row.
func (s *Server) modelBatchPoint(cfg uarch.Config, set *core.ModelSet, line *BatchPoint) error {
	m, prof, err := set.For(cfg)
	if err != nil {
		return err
	}
	pred, err := m.PredictCPI(prof)
	if err != nil {
		return err
	}
	pen, err := modelPenalty(m, prof)
	if err != nil {
		return err
	}
	insts := float64(pred.Insts)
	line.AvgPenalty = pen
	line.CPIBase = pred.Base / insts
	line.CPIBpred = pred.Bpred / insts
	line.CPIICache = pred.ICache / insts
	line.CPILongData = pred.LongData / insts
	line.CPIVMisspec = pred.VMisspec / insts
	if cpi := pred.CPI(); cpi > 0 {
		line.IPC = 1 / cpi
	}
	line.Path = "model"
	return nil
}
