package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"intervalsim/internal/core"
	"intervalsim/internal/experiments"
	"intervalsim/internal/overlay"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// BatchPointSpec names one design point of a batch: the coordinator's
// global sequence number plus the (width, depth, rob) knobs, resolved
// through experiments.Point so the point means the same processor as in
// cmd/sweep and /v1/sweep.
type BatchPointSpec struct {
	Seq   int `json:"seq"`
	Width int `json:"width"`
	Depth int `json:"depth"`
	ROB   int `json:"rob"`
}

// BatchRequest asks for an explicit list of design points over one workload
// — the shard unit of distributed sweeps. One batch is one HTTP request, so
// a coordinator dispatching thousands of points pays per-shard, not
// per-point, request overhead, and each daemon resolves the workload's
// trace and overlay once per shard (and across shards via the caches).
type BatchRequest struct {
	Benchmark string           `json:"benchmark,omitempty"`
	Workload  *workload.Config `json:"workload,omitempty"`
	Insts     int              `json:"insts,omitempty"`
	Warmup    uint64           `json:"warmup,omitempty"`
	Mode      string           `json:"mode,omitempty"` // "sim" (default) or "model"
	// Decompose adds the interval penalty decomposition (frontend, drain,
	// FU, short-data, long-data) to each sim-mode point — the columns
	// cmd/sweep's CSV carries. It costs one mispredict-penalty
	// decomposition pass per point.
	Decompose bool             `json:"decompose,omitempty"`
	TimeoutMS int              `json:"timeout_ms,omitempty"` // per design point
	Points    []BatchPointSpec `json:"points"`
}

// BatchPoint is one NDJSON line of a batch stream, emitted in completion
// order (Seq echoes the request's spec). Failed points carry Error and
// Outcome instead of measurements.
type BatchPoint struct {
	Seq   int `json:"seq"`
	Width int `json:"width"`
	Depth int `json:"depth"`
	ROB   int `json:"rob"`

	IPC        float64 `json:"ipc,omitempty"`
	AvgPenalty float64 `json:"avg_penalty,omitempty"`
	Cycles     uint64  `json:"cycles,omitempty"`

	// Sim-mode decomposition (Decompose).
	PenFrontend float64 `json:"pen_frontend,omitempty"`
	PenDrain    float64 `json:"pen_drain,omitempty"`
	PenFU       float64 `json:"pen_fu,omitempty"`
	PenShortD   float64 `json:"pen_shortd,omitempty"`
	PenLongD    float64 `json:"pen_longd,omitempty"`

	// Model-mode cycle stack.
	CPIBase     float64 `json:"cpi_base,omitempty"`
	CPIBpred    float64 `json:"cpi_bpred,omitempty"`
	CPIICache   float64 `json:"cpi_icache,omitempty"`
	CPILongData float64 `json:"cpi_longd,omitempty"`

	Path    string `json:"path,omitempty"`
	Error   string `json:"error,omitempty"`
	Outcome string `json:"outcome,omitempty"`
}

// BatchTrailer is the final NDJSON line of a batch stream.
type BatchTrailer struct {
	Done    bool   `json:"done"`
	Points  int    `json:"points"`
	OK      int    `json:"ok"`
	Failed  int    `json:"failed"`
	Mode    string `json:"mode"`
	Elapsed string `json:"elapsed"`
}

// batchInputs is a resolved batch request.
type batchInputs struct {
	simInputs
	mode      string
	decompose bool
	specs     []BatchPointSpec
}

func (s *Server) resolveBatch(req *BatchRequest) (batchInputs, error) {
	base, err := s.resolveSimulate(&SimulateRequest{
		Benchmark: req.Benchmark,
		Workload:  req.Workload,
		Insts:     req.Insts,
		Warmup:    req.Warmup,
		TimeoutMS: req.TimeoutMS,
	})
	if err != nil {
		return batchInputs{}, err
	}
	in := batchInputs{simInputs: base, specs: req.Points, decompose: req.Decompose}
	if len(in.specs) == 0 {
		return batchInputs{}, fmt.Errorf("%w: batch has no points", errBadRequest)
	}
	if len(in.specs) > s.opts.MaxSweepPoints {
		return batchInputs{}, fmt.Errorf("%w: %d points exceeds the %d-point cap", errBadRequest, len(in.specs), s.opts.MaxSweepPoints)
	}
	for _, sp := range in.specs {
		if sp.Width <= 0 || sp.Depth <= 0 || sp.ROB <= 0 {
			return batchInputs{}, fmt.Errorf("%w: point seq %d has non-positive knobs", errBadRequest, sp.Seq)
		}
	}
	in.mode = req.Mode
	if in.mode == "" {
		in.mode = "sim"
	}
	if in.mode != "sim" && in.mode != "model" {
		return batchInputs{}, fmt.Errorf("%w: unknown mode %q (want sim or model)", errBadRequest, in.mode)
	}
	if in.decompose && in.mode != "sim" {
		return batchInputs{}, fmt.Errorf("%w: decompose requires sim mode", errBadRequest)
	}
	return in, nil
}

// handleBatch streams an explicit design-point list as NDJSON: one
// BatchPoint per spec in completion order, then a BatchTrailer. This is the
// shard-dispatch surface of distributed sweeps (see internal/cluster): the
// semantics mirror /v1/sweep, but the caller chooses the points, so a
// coordinator can key shards by workload and keep each daemon's trace and
// overlay caches hot.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req BatchRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.reject(w, http.StatusBadRequest, err, outcomeBadInput)
		return
	}
	in, err := s.resolveBatch(&req)
	if err != nil {
		s.reject(w, http.StatusBadRequest, err, outcomeBadInput)
		return
	}

	// Shared artifacts, once per batch — and across batches via the caches.
	tr, soa, err := experiments.SharedTrace(in.wc, in.insts)
	if err != nil {
		s.reject(w, http.StatusInternalServerError, err, outcomeError)
		return
	}
	base := uarch.Baseline()
	ov, err := s.overlays.Get(soa, base.Pred, base.Mem)
	if err != nil {
		s.reject(w, http.StatusInternalServerError, err, outcomeError)
		return
	}
	var set *core.ModelSet
	if in.mode == "model" {
		maxROB := 2
		for _, sp := range in.specs {
			if sp.ROB > maxROB {
				maxROB = sp.ROB
			}
		}
		set, err = core.NewModelSet(soa, ov, base, maxROB, in.warmup, in.insts)
		if err != nil {
			s.reject(w, http.StatusInternalServerError, err, outcomeError)
			return
		}
	}

	// Admission check before committing to a stream, as for /v1/sweep.
	if ps := s.pool.Stats(); ps.Queued >= ps.Capacity {
		w.Header().Set("Retry-After", s.retryAfter())
		s.reject(w, http.StatusTooManyRequests, ErrQueueFull, outcomeRejected)
		return
	}

	lines := make(chan BatchPoint, len(in.specs))
	var wg sync.WaitGroup
	wg.Add(len(in.specs))
	go func() {
		wg.Wait()
		close(lines)
	}()

	go func() {
		for _, sp := range in.specs {
			sp := sp
			cfg := experiments.Point(sp.Width, sp.Depth, sp.ROB)
			line := BatchPoint{Seq: sp.Seq, Width: sp.Width, Depth: sp.Depth, ROB: sp.ROB}
			t := &task{
				name:    fmt.Sprintf("batch-%s-%s", in.wc.Name, cfg.Name),
				timeout: in.timeout,
				parent:  r.Context(),
				run: func(ctx context.Context) error {
					if in.mode == "model" {
						return s.modelBatchPoint(cfg, set, &line)
					}
					return s.simBatchPoint(ctx, tr, soa, ov, cfg, in, &line)
				},
				finish: func(err error, d time.Duration) {
					outcome := classify(err)
					s.metrics.observe(outcome, d)
					if err != nil {
						lines <- BatchPoint{
							Seq: sp.Seq, Width: sp.Width, Depth: sp.Depth, ROB: sp.ROB,
							Error: err.Error(), Outcome: outcome,
						}
					} else {
						lines <- line
					}
					wg.Done()
				},
			}
			if err := s.pool.SubmitWait(r.Context(), t); err != nil {
				outcome := classify(err)
				s.metrics.count(outcome)
				lines <- BatchPoint{
					Seq: sp.Seq, Width: sp.Width, Depth: sp.Depth, ROB: sp.ROB,
					Error: err.Error(), Outcome: outcome,
				}
				wg.Done()
			}
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	ok, failed := 0, 0
	for line := range lines {
		if line.Error == "" {
			ok++
		} else {
			failed++
		}
		enc.Encode(line) //nolint:errcheck // keep draining for the finishers
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(BatchTrailer{ //nolint:errcheck
		Done: true, Points: len(in.specs), OK: ok, Failed: failed,
		Mode: in.mode, Elapsed: time.Since(start).Round(time.Millisecond).String(),
	})
}

// simBatchPoint runs one cycle-level point into line, with the interval
// penalty decomposition when asked for — the exact computation behind
// cmd/sweep's sim-mode CSV row, so a distributed sweep merges to the same
// bytes as a single-process one.
func (s *Server) simBatchPoint(ctx context.Context, tr *trace.Trace, soa *trace.SoA, ov *overlay.Overlay, cfg uarch.Config, in batchInputs, line *BatchPoint) error {
	res, err := uarch.RunContext(ctx, soa.Reader(), cfg, uarch.Options{
		RecordMispredicts: true,
		RecordLoadLevels:  in.decompose,
		WarmupInsts:       in.warmup,
		Overlay:           ov,
	})
	if err != nil {
		return err
	}
	line.IPC = res.IPC()
	line.Cycles = res.Cycles
	line.Path = res.Path
	line.AvgPenalty = res.AvgMispredictPenalty()
	if in.decompose {
		dec, err := core.NewDecomposer(tr, res)
		if err != nil {
			return err
		}
		m := core.Mean(dec.DecomposeAll())
		line.AvgPenalty = m.Total
		line.PenFrontend = m.Frontend
		line.PenDrain = m.BaseILP
		line.PenFU = m.FULatency
		line.PenShortD = m.ShortDMiss
		line.PenLongD = m.LongDMiss
	}
	return nil
}

// modelBatchPoint evaluates one analytic-model point into line, mirroring
// cmd/sweep's model-mode CSV row.
func (s *Server) modelBatchPoint(cfg uarch.Config, set *core.ModelSet, line *BatchPoint) error {
	m, prof, err := set.For(cfg)
	if err != nil {
		return err
	}
	pred, err := m.PredictCPI(prof)
	if err != nil {
		return err
	}
	pen, err := modelPenalty(m, prof)
	if err != nil {
		return err
	}
	insts := float64(pred.Insts)
	line.AvgPenalty = pen
	line.CPIBase = pred.Base / insts
	line.CPIBpred = pred.Bpred / insts
	line.CPIICache = pred.ICache / insts
	line.CPILongData = pred.LongData / insts
	if cpi := pred.CPI(); cpi > 0 {
		line.IPC = 1 / cpi
	}
	line.Path = "model"
	return nil
}
