package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"intervalsim/internal/experiments"
	"intervalsim/internal/uarch"
	"intervalsim/internal/vpred"
	"intervalsim/internal/workload"
)

// TestUnknownVPredRejected pins the admission contract for the two
// value-speculation axes: an unknown value-predictor preset or an
// out-of-range fetch rate is the client's mistake — HTTP 400 with a JSON
// error naming the valid choices (or the valid range), counted under
// bad_input — never a 500 from a worker that already accepted the job.
func TestUnknownVPredRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	cases := []struct {
		name string
		url  string
		body string
	}{
		{"simulate vpred preset", "/v1/simulate", `{"benchmark":"gzip","machine":{"vpred":"oracle"}}`},
		{"simulate fetchrate high", "/v1/simulate", `{"benchmark":"gzip","machine":{"fetchrate":1.5}}`},
		{"simulate fetchrate negative", "/v1/simulate", `{"benchmark":"gzip","machine":{"fetchrate":-0.5}}`},
		{"simulate vpred and config", "/v1/simulate", `{"benchmark":"gzip","machine":{"vpred":"stride","config":{}}}`},
		{"sweep vpred preset", "/v1/sweep", `{"benchmark":"gzip","insts":20000,"widths":[2],"depths":[4],"robs":[64],"vpred":"oracle"}`},
		{"sweep fetchrate", "/v1/sweep", `{"benchmark":"gzip","insts":20000,"widths":[2],"depths":[4],"robs":[64],"fetchrate":2}`},
		{"batch vpred preset", "/v1/batch", `{"benchmark":"gzip","insts":20000,"points":[{"seq":0,"width":2,"depth":4,"rob":64}],"vpred":"oracle"}`},
		{"batch fetchrate", "/v1/batch", `{"benchmark":"gzip","insts":20000,"points":[{"seq":0,"width":2,"depth":4,"rob":64}],"fetchrate":1.01}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		body := decodeBody[errorResponse](t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body.Error)
		}
		if body.Error == "" {
			t.Errorf("%s: empty error body", tc.name)
		}
		if strings.Contains(tc.body, "oracle") {
			// Preset rejections must name every valid choice.
			for _, kind := range vpred.PresetNames() {
				if !strings.Contains(body.Error, kind) {
					t.Errorf("%s: error %q does not list preset %s", tc.name, body.Error, kind)
				}
			}
		}
		if strings.Contains(tc.name, "fetchrate") && !strings.Contains(body.Error, "(0, 1]") {
			t.Errorf("%s: error %q does not state the valid range", tc.name, body.Error)
		}
	}

	m := decodeBody[MetricsResponse](t, mustGet(t, ts.URL+"/metrics"))
	if m.Jobs[outcomeBadInput] != uint64(len(cases)) {
		t.Errorf("bad_input count = %d, want %d", m.Jobs[outcomeBadInput], len(cases))
	}
}

// TestSimKeyBytesStable pins the exact canonical key bytes and the derived
// job ID for a request that does not use value speculation. These literals
// were captured before the vpred/fetchrate axes existed; if this test ever
// needs a golden update, every previously stored result has been orphaned
// and keyVersion must be bumped instead.
func TestSimKeyBytesStable(t *testing.T) {
	s := New(Options{})
	defer s.Shutdown(context.Background()) //nolint:errcheck

	in, err := s.resolveSimulate(&SimulateRequest{
		Benchmark: "gzip",
		Insts:     20_000,
		Machine:   MachineSpec{Width: 4, Depth: 5, ROB: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	const wantKey = `{"v":1,"kind":"simulate","workload":{"Name":"gzip","Seed":1738649601,"Regions":8,"BlocksPerRegion":12,"BlockSize":{"Min":4,"Max":10},"LoopTrip":{"Min":16,"Max":64},"RegionTheta":1.2,"LoadFrac":0.24,"StoreFrac":0.12,"MulFrac":0.01,"DivFrac":0.001,"FPFrac":0,"ChainProb":0.45,"RandomBranchFrac":0.06,"RandomBranchBias":0.4,"PatternBranchFrac":0.15,"TakenBias":0.96,"DataFootprint":262144,"StrideFrac":0.7,"Locality":1.4},"insts":20000,"warmup":0,"config":{"Name":"w4-d5-r64","FetchWidth":4,"DispatchWidth":4,"IssueWidth":4,"CommitWidth":4,"FrontendDepth":5,"ROBSize":64,"IQSize":32,"FU":{"IntALU":{"Count":4,"Latency":1,"Pipelined":true},"IntMul":{"Count":2,"Latency":3,"Pipelined":true},"IntDiv":{"Count":1,"Latency":20,"Pipelined":false},"FPAdd":{"Count":2,"Latency":2,"Pipelined":true},"FPMul":{"Count":1,"Latency":4,"Pipelined":true},"FPDiv":{"Count":1,"Latency":12,"Pipelined":false},"MemPort":{"Count":2,"Latency":1,"Pipelined":true}},"Pred":{"Kind":"tournament","Entries":16384,"HistBits":12,"BTBEntries":4096},"Mem":{"L1I":{"Name":"L1I","Size":65536,"LineSize":64,"Ways":2,"Repl":0},"L1D":{"Name":"L1D","Size":65536,"LineSize":64,"Ways":4,"Repl":0},"L2":{"Name":"L2","Size":1048576,"LineSize":64,"Ways":8,"Repl":0},"Lat":{"L1":3,"L2":12,"Mem":250}}},"spec_fp":17466966229543475894}`
	const wantID = "jeec57884ef13fd23efd77b18b144152a"
	key := simKey(in)
	if string(key) != wantKey {
		t.Errorf("default simulate key bytes drifted:\n got %s\nwant %s", key, wantKey)
	}
	if id := jobID("j", key); id != wantID {
		t.Errorf("default simulate job ID = %s, want %s", id, wantID)
	}
	for _, field := range []string{`"vpred"`, `"fetchrate"`, `"VPred"`, `"FetchRate"`} {
		if strings.Contains(string(key), field) {
			t.Errorf("default simulate key mentions %s (old store entries would miss): %s", field, key)
		}
	}

	sw, err := s.resolveSweep(&SweepRequest{
		Benchmark: "gzip", Insts: 20_000,
		Widths: []int{2}, Depths: []int{4}, ROBs: []int{64},
	})
	if err != nil {
		t.Fatal(err)
	}
	const wantSweepID = "sc5c09f3c954bf47c8c59bc0d25a91e5d"
	skey := sweepKey(sw)
	if id := jobID("s", skey); id != wantSweepID {
		t.Errorf("default sweep job ID = %s, want %s (key %s)", id, wantSweepID, skey)
	}
	for _, field := range []string{`"vpred"`, `"fetchrate"`} {
		if bytes.Contains(skey, []byte(field)) {
			t.Errorf("default sweep key mentions %s: %s", field, skey)
		}
	}
}

// TestSweepVPredAxis: a value-predicting sweep is a distinct store identity
// whose key names both new fields, while the default identity stays silent
// about them (covered byte-for-byte by TestSimKeyBytesStable).
func TestSweepVPredAxis(t *testing.T) {
	s := New(Options{})
	defer s.Shutdown(context.Background()) //nolint:errcheck

	base := SweepRequest{
		Benchmark: "twolf",
		Insts:     20_000,
		Widths:    []int{4},
		Depths:    []int{4},
		ROBs:      []int{64},
	}
	resolve := func(req SweepRequest) sweepInputs {
		in, err := s.resolveSweep(&req)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	defKey := sweepKey(resolve(base))
	spec := base
	spec.VPred = "stride"
	spec.FetchRate = 0.5
	k := sweepKey(resolve(spec))
	if bytes.Equal(k, defKey) {
		t.Error("value-speculating sweep shares the default identity")
	}
	if !bytes.Contains(k, []byte(`"vpred":"stride"`)) || !bytes.Contains(k, []byte(`"fetchrate":0.5`)) {
		t.Errorf("value-speculating sweep key missing its axes: %s", k)
	}
}

// TestSweepJobVPredIdentity: the durable-job spec journals both
// value-speculation axes and round-trips them, so a resumed job re-resolves
// the same machine — including the workload-derived value stream.
func TestSweepJobVPredIdentity(t *testing.T) {
	s := New(Options{})
	defer s.Shutdown(context.Background()) //nolint:errcheck

	spec := sweepJobSpec{
		Benchmark: "gzip", Insts: 20_000,
		Widths: []int{2}, Depths: []int{4}, ROBs: []int{64},
		VPred: "stride", FetchRate: 0.5, Mode: "sim",
	}
	raw := mustJSON(spec)
	var back sweepJobSpec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.VPred != "stride" || back.FetchRate != 0.5 {
		t.Fatalf("journaled spec lost the value-speculation axes: %+v", back)
	}
	in, err := s.resolveSweep(back.request())
	if err != nil {
		t.Fatal(err)
	}
	if in.cfg.VPred == nil || in.cfg.VPred.Kind != "stride" {
		t.Fatalf("resumed job resolved vpred %+v, want stride", in.cfg.VPred)
	}
	wc, _ := workload.SuiteConfig("gzip")
	if in.cfg.VPred.Stream != wc.ValueStream() {
		t.Errorf("resumed job's value stream %+v, want the workload's %+v", in.cfg.VPred.Stream, wc.ValueStream())
	}
	if in.cfg.FetchRate != 0.5 {
		t.Errorf("resumed job resolved fetchrate %v, want 0.5", in.cfg.FetchRate)
	}
}

// TestSimulateVPredEndToEnd runs the full pipeline with value prediction on:
// the service result must match a direct in-process run bit for bit and
// must still come from overlay replay (the vpred-aware overlay, not the
// legacy one).
func TestSimulateVPredEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	const insts = 50_000
	resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Benchmark: "gzip",
		Insts:     insts,
		Machine:   MachineSpec{Width: 4, Depth: 5, ROB: 64, VPred: "stride", FetchRate: 0.5},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	job := decodeBody[JobView](t, resp)
	done := pollJob(t, ts.URL, job.ID)
	if done.Status != JobDone || done.Outcome != outcomeOK {
		t.Fatalf("job finished %+v, want done/ok", done)
	}
	var got SimulateResult
	if err := json.Unmarshal(done.Result, &got); err != nil {
		t.Fatalf("unmarshal result: %v", err)
	}

	wc, _ := workload.SuiteConfig("gzip")
	_, soa, err := experiments.SharedTrace(wc, insts)
	if err != nil {
		t.Fatalf("SharedTrace: %v", err)
	}
	cfg := experiments.Point(4, 5, 64)
	preset, _ := vpred.Preset("stride")
	preset.Stream = wc.ValueStream()
	cfg.VPred = &preset
	cfg.FetchRate = 0.5
	want, err := uarch.Run(soa.Reader(), cfg, uarch.Options{RecordMispredicts: true})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	if got.Cycles != want.Cycles || got.Mispredicts != want.Mispredicts {
		t.Errorf("cycles/mispredicts = %d/%d, want %d/%d", got.Cycles, got.Mispredicts, want.Cycles, want.Mispredicts)
	}
	if want.ValuePredHits == 0 {
		t.Error("direct run saw no value-prediction hits; the axis is probably not wired")
	}
	if got.Path != "soa+overlay" {
		t.Errorf("path = %q, want soa+overlay", got.Path)
	}

	base := experiments.Point(4, 5, 64)
	baseRes, err := uarch.Run(soa.Reader(), base, uarch.Options{RecordMispredicts: true})
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if baseRes.Cycles == got.Cycles {
		t.Errorf("value speculation and baseline agree on %d cycles (suspicious)", got.Cycles)
	}
}
