package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"intervalsim/internal/core"
	"intervalsim/internal/experiments"
	"intervalsim/internal/overlay"
	"intervalsim/internal/store"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/version"
)

// Options tunes a Server. Zero values select production-reasonable
// defaults.
type Options struct {
	// Workers caps concurrently executing jobs; <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; <= 0 means 64. A full
	// queue rejects new work with 429 + Retry-After.
	QueueDepth int
	// DefaultTimeout is the per-job deadline when a request carries none;
	// <= 0 means 60s.
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied deadlines; <= 0 means 10m.
	MaxTimeout time.Duration
	// MaxInsts caps per-request dynamic instruction counts; <= 0 means 20M.
	MaxInsts int
	// JobHistory bounds retained finished jobs; <= 0 means 256.
	JobHistory int
	// OverlayCapacity bounds the server's miss-event overlay cache;
	// <= 0 means 16 (one byte per instruction per entry).
	OverlayCapacity int
	// MaxSweepPoints caps the grid size of one sweep request; <= 0 means 4096.
	MaxSweepPoints int
	// TenantQuota caps one tenant's admitted (queued + running) jobs;
	// <= 0 disables per-tenant accounting.
	TenantQuota int
	// Store, when set, enables the durable layer: content-addressed result
	// caching, idempotent job IDs, and crash-resumable sweep jobs. The
	// server takes ownership of resuming incomplete journals at startup but
	// not of closing the store; the caller closes it after Shutdown.
	Store *store.Store
	// TraceCache overrides the trace cache; nil means the process-wide
	// experiments.DefaultTraceCache. cmd/bench injects private instances so
	// in-process fleet daemons cannot silently share artifacts through the
	// process memo, which would make per-daemon cost accounting dishonest.
	TraceCache *experiments.TraceCache
	// Peers is the static fleet peer list (base URLs) for cache fills; the
	// X-Peers header on batch dispatches refreshes it at runtime.
	Peers []string
	// MaxFillBytes bounds one peer cache-fill transfer in either direction;
	// <= 0 derives a bound from MaxInsts (the largest admissible trace frame).
	MaxFillBytes int64
	// PeerFillTimeout bounds one peer fetch; <= 0 means 30s.
	PeerFillTimeout time.Duration
	// FillIndexCapacity bounds the served-fill index (fingerprint → artifact,
	// per artifact kind); <= 0 means 32.
	FillIndexCapacity int
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = defaultWorkers()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 10 * time.Minute
	}
	if o.MaxInsts <= 0 {
		o.MaxInsts = 20_000_000
	}
	if o.JobHistory <= 0 {
		o.JobHistory = 256
	}
	if o.OverlayCapacity <= 0 {
		o.OverlayCapacity = 16
	}
	if o.MaxSweepPoints <= 0 {
		o.MaxSweepPoints = 4096
	}
	if o.TraceCache == nil {
		o.TraceCache = experiments.DefaultTraceCache
	}
	if o.MaxFillBytes <= 0 {
		// The largest legitimate frame is a MaxInsts-record trace; overlays
		// are strictly smaller (one byte per record plus a small header).
		o.MaxFillBytes = int64(trace.WireSizeFor(o.MaxInsts)) + 1<<16
	}
	if o.PeerFillTimeout <= 0 {
		o.PeerFillTimeout = defaultPeerFillTimeout
	}
	if o.FillIndexCapacity <= 0 {
		o.FillIndexCapacity = 32
	}
	return o
}

// Server is the intervalsimd service: the HTTP handler set plus the worker
// pool, job store, metrics, and the caches shared across requests. Traces
// are shared through the process-wide experiments memo (one generation +
// pack per (workload, insts) no matter how many clients ask); overlays are
// shared through the server's own bounded single-flight cache (one
// speculation pre-pass per (trace, predictor, cache geometry)).
type Server struct {
	opts     Options
	pool     *Pool
	jobs     *jobStore
	metrics  *metrics
	overlays *overlay.Cache
	traces   *experiments.TraceCache
	version  string

	// Fleet cache sharing (see peerfill.go): the daemon's peer view, the
	// fingerprint → artifact index it serves fills from, its fill counters,
	// and the client used for peer fetches.
	peers    peerSet
	fills    *fillIndex
	pf       peerFillCounters
	fillHTTP *http.Client

	// Readiness: false until startup journal replay has re-admitted every
	// incomplete durable job. /readyz answers 503 until then, so cluster
	// health probers route around a daemon that is still reconstructing
	// state (its answers would be incomplete duplicates, not wrong — but
	// admission of new durable jobs races the replay's journal scan).
	ready       atomic.Bool
	resumedJobs atomic.Int64
}

// New builds a Server and starts its worker pool. If a durable store is
// configured, incomplete sweep-job journals are replayed and resumed in the
// background; the server reports not-ready until that replay has finished.
// Callers own shutdown: call Shutdown to drain.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts: opts,
		pool: NewPool(PoolOptions{
			Workers:        opts.Workers,
			QueueDepth:     opts.QueueDepth,
			DefaultTimeout: opts.DefaultTimeout,
			TenantQuota:    opts.TenantQuota,
		}),
		jobs:     newJobStore(opts.JobHistory),
		metrics:  newMetrics(),
		overlays: overlay.NewCache(opts.OverlayCapacity),
		traces:   opts.TraceCache,
		fills:    newFillIndex(opts.FillIndexCapacity),
		fillHTTP: &http.Client{Timeout: opts.PeerFillTimeout},
		version:  version.String(),
	}
	s.peers.learn(opts.Peers)
	if opts.Store == nil {
		s.ready.Store(true)
	} else {
		go s.recoverJournals()
	}
	return s
}

// Ready reports whether startup recovery has completed.
func (s *Server) Ready() bool { return s.ready.Load() }

// Shutdown drains the pool: admission stops, queued and in-flight jobs
// finish (or are canceled when ctx expires). Call after the HTTP server has
// stopped accepting requests, so in-flight handlers can still submit their
// already-admitted work and poll job state.
func (s *Server) Shutdown(ctx context.Context) error { return s.pool.Close(ctx) }

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/model", s.handleModel)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /v1/sweepjobs", s.handleSweepJobSubmit)
	mux.HandleFunc("GET /v1/sweepjobs/{id}", s.handleSweepJob)
	mux.HandleFunc("GET /v1/sweepjobs/{id}/csv", s.handleSweepJobCSV)
	mux.HandleFunc("GET /v1/cache/trace/{fp}", s.handleTraceFillGet)
	mux.HandleFunc("POST /v1/cache/trace/{fp}", s.handleTraceFillPut)
	mux.HandleFunc("GET /v1/cache/overlay/{fp}", s.handleOverlayFillGet)
	mux.HandleFunc("POST /v1/cache/overlay/{fp}", s.handleOverlayFillPut)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// admission extracts the scheduling headers: X-Tenant names the quota
// bucket (default tenant when absent) and X-Priority selects the class.
func admission(r *http.Request) (tenant string, priority int, err error) {
	tenant = r.Header.Get("X-Tenant")
	switch p := r.Header.Get("X-Priority"); p {
	case "", "normal":
		priority = PriorityNormal
	case "high", "interactive":
		priority = PriorityHigh
	case "low", "batch":
		priority = PriorityLow
	default:
		err = fmt.Errorf("%w: unknown X-Priority %q (want high, normal, or low)", errBadRequest, p)
	}
	return tenant, priority, err
}

// ---- helpers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do for a dead client
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) reject(w http.ResponseWriter, code int, err error, outcome string) {
	s.metrics.count(outcome)
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	return nil
}

// statusFor maps a job outcome to the HTTP status of a synchronous reply.
func statusFor(outcome string) int {
	switch outcome {
	case outcomeBadInput:
		return http.StatusBadRequest
	case outcomeTimeout:
		return http.StatusGatewayTimeout
	case outcomeCanceled:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// ---- simulation execution (shared by simulate jobs and sweep points) ----

// runSimulate executes one cycle-level run off the shared caches: packed
// trace from the experiments memo, speculation outcomes replayed from the
// server's overlay cache (bit-identical to live simulation), with ctx wired
// through to the simulator's cancellation watchdog.
func (s *Server) runSimulate(ctx context.Context, in simInputs) (*SimulateResult, error) {
	_, soa, err := s.sharedTrace(in.wc, in.insts)
	if err != nil {
		return nil, err
	}
	ov, err := s.overlayFor(soa, in.cfg.Pred, in.cfg.Mem, in.cfg.VPred)
	if err != nil {
		return nil, err
	}
	res, err := uarch.RunContext(ctx, soa.Reader(), in.cfg, uarch.Options{
		RecordMispredicts: true,
		WarmupInsts:       in.warmup,
		Overlay:           ov,
	})
	if err != nil {
		return nil, err
	}
	return newSimulateResult(in, res), nil
}

// runModel answers the same question from the analytic interval model: the
// functional profile and model characteristics come straight off the shared
// overlay, with no cycle-level simulation at all.
func (s *Server) runModel(_ context.Context, in simInputs) (*ModelResult, error) {
	_, soa, err := s.sharedTrace(in.wc, in.insts)
	if err != nil {
		return nil, err
	}
	ov, err := s.overlayFor(soa, in.cfg.Pred, in.cfg.Mem, in.cfg.VPred)
	if err != nil {
		return nil, err
	}
	set, err := core.NewModelSet(soa, ov, in.cfg, in.cfg.ROBSize, in.warmup, in.insts)
	if err != nil {
		return nil, err
	}
	m, prof, err := set.For(in.cfg)
	if err != nil {
		return nil, err
	}
	pred, err := m.PredictCPI(prof)
	if err != nil {
		return nil, err
	}
	pen, err := modelPenalty(m, prof)
	if err != nil {
		return nil, err
	}
	insts := float64(pred.Insts)
	out := &ModelResult{
		Benchmark:            in.wc.Name,
		Machine:              in.cfg.Name,
		Insts:                pred.Insts,
		CPI:                  pred.CPI(),
		CPIBase:              pred.Base / insts,
		CPIBpred:             pred.Bpred / insts,
		CPIICache:            pred.ICache / insts,
		CPILongData:          pred.LongData / insts,
		CPIVMisspec:          pred.VMisspec / insts,
		AvgMispredictPenalty: pen,
	}
	if out.CPI > 0 {
		out.IPC = 1 / out.CPI
	}
	return out, nil
}

// modelPenalty is the model's mean misprediction penalty over the profiled
// interval structure (the same aggregation cmd/sweep's model mode reports).
func modelPenalty(m *core.Model, prof *core.Profile) (float64, error) {
	ivs, err := core.Segment(prof.Events, prof.Insts)
	if err != nil {
		return 0, err
	}
	var pen, n float64
	for _, iv := range ivs {
		if !iv.Final && iv.Kind == uarch.EvBranchMispredict {
			pen += m.MispredictPenalty(iv.Len() - 1)
			n++
		}
	}
	if n > 0 {
		pen /= n
	}
	return pen, nil
}

// ---- handlers ----

// handleSimulate admits an asynchronous simulation job: 200 with the queued
// job on success, 429 + Retry-After under overload, 503 while draining.
// Clients poll GET /v1/jobs/{id}.
//
// Submission is idempotent: the job ID is derived from the request's
// canonical content identity, so resubmitting the same simulation joins the
// live job instead of duplicating work — and with a durable store
// configured, an identity whose result is already on disk is answered as a
// born-finished job without touching the queue at all.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.reject(w, http.StatusBadRequest, err, outcomeBadInput)
		return
	}
	in, err := s.resolveSimulate(&req)
	if err != nil {
		s.reject(w, http.StatusBadRequest, err, outcomeBadInput)
		return
	}
	tenant, priority, err := admission(r)
	if err != nil {
		s.reject(w, http.StatusBadRequest, err, outcomeBadInput)
		return
	}
	key := simKey(in)
	id := jobID("j", key)
	if job, ok := s.jobs.get(id); ok && job.Status != JobFailed {
		writeJSON(w, http.StatusOK, job)
		return
	}
	if st := s.opts.Store; st != nil {
		if raw, ok, gerr := st.Get(key); gerr == nil && ok {
			s.metrics.count(outcomeCached)
			writeJSON(w, http.StatusOK, s.jobs.completeCached(id, "simulate", raw))
			return
		}
	}
	job, created := s.jobs.createWithID(id, "simulate")
	if !created {
		writeJSON(w, http.StatusOK, job)
		return
	}
	t := &task{
		name:     job.ID,
		timeout:  in.timeout,
		priority: priority,
		tenant:   tenant,
		run: func(ctx context.Context) error {
			s.jobs.markRunning(job.ID)
			res, err := s.runSimulate(ctx, in)
			if err != nil {
				return err
			}
			raw, err := json.Marshal(res)
			if err != nil {
				return err
			}
			if st := s.opts.Store; st != nil {
				// Best-effort: a failed Put only loses the cache entry, not
				// the freshly computed answer.
				st.Put(key, raw) //nolint:errcheck
			}
			s.jobs.setResult(job.ID, raw)
			return nil
		},
		finish: func(err error, d time.Duration) {
			outcome := classify(err)
			s.metrics.observe(outcome, d)
			msg := ""
			if err != nil {
				msg = err.Error()
			}
			s.jobs.markFinished(job.ID, outcome, msg, d)
		},
	}
	if err := s.submit(w, t); err != nil {
		s.jobs.markFinished(job.ID, outcomeRejected, err.Error(), 0)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// retryAfter renders the drain-rate-derived Retry-After value for a 429:
// how long the current queue should take to empty at the observed
// completion rate.
func (s *Server) retryAfter() string {
	return fmt.Sprintf("%d", s.metrics.retryAfterSeconds(s.pool.Stats().Queued))
}

// submit admits t, writing the admission-control error response on failure.
func (s *Server) submit(w http.ResponseWriter, t *task) error {
	err := s.pool.Submit(t)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantQuota):
		w.Header().Set("Retry-After", s.retryAfter())
		s.reject(w, http.StatusTooManyRequests, err, outcomeRejected)
	case errors.Is(err, ErrClosed):
		s.reject(w, http.StatusServiceUnavailable, err, outcomeRejected)
	default:
		s.reject(w, http.StatusInternalServerError, err, outcomeError)
	}
	return err
}

// handleModel answers synchronously: the analytic model is orders of
// magnitude cheaper than simulation, but it still runs on the pool so
// admission control and deadlines apply uniformly.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	var req ModelRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.reject(w, http.StatusBadRequest, err, outcomeBadInput)
		return
	}
	in, err := s.resolveSimulate(&req)
	if err != nil {
		s.reject(w, http.StatusBadRequest, err, outcomeBadInput)
		return
	}
	tenant, priority, err := admission(r)
	if err != nil {
		s.reject(w, http.StatusBadRequest, err, outcomeBadInput)
		return
	}
	var (
		result  *ModelResult
		runErr  error
		outcome string
		done    = make(chan struct{})
	)
	t := &task{
		name:     "model",
		timeout:  in.timeout,
		priority: priority,
		tenant:   tenant,
		run: func(ctx context.Context) error {
			res, err := s.runModel(ctx, in)
			if err != nil {
				return err
			}
			result = res
			return nil
		},
		finish: func(err error, d time.Duration) {
			runErr = err
			outcome = classify(err)
			s.metrics.observe(outcome, d)
			close(done)
		},
	}
	if err := s.submit(w, t); err != nil {
		return
	}
	select {
	case <-done:
	case <-r.Context().Done():
		// Client gave up; the job still runs to completion on the pool.
		return
	}
	if runErr != nil {
		writeJSON(w, statusFor(outcome), errorResponse{Error: runErr.Error()})
		return
	}
	writeJSON(w, http.StatusOK, result)
}

// handleJob reports one job's state.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// HealthResponse is the GET /healthz (liveness) and GET /readyz (readiness)
// document. Liveness answers 200 whenever the process can serve HTTP at all;
// readiness answers 503 while the daemon is replaying durable job journals
// ("recovering") or draining, so fleet probers route work elsewhere.
type HealthResponse struct {
	Status        string  `json:"status"` // "ok", "recovering", or "draining"
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	QueueDepth    int     `json:"queue_depth"`
	InFlight      int     `json:"inflight"`
	ResumedJobs   int     `json:"resumed_jobs,omitempty"`
}

// health assembles the shared liveness/readiness document.
func (s *Server) health() HealthResponse {
	ps := s.pool.Stats()
	_, _, uptime := s.metrics.snapshot()
	status := "ok"
	switch {
	case !s.ready.Load():
		status = "recovering"
	case ps.Closed:
		status = "draining"
	}
	return HealthResponse{
		Status:        status,
		Version:       s.version,
		UptimeSeconds: uptime,
		QueueDepth:    ps.Queued,
		InFlight:      ps.InFlight,
		ResumedJobs:   int(s.resumedJobs.Load()),
	}
}

// handleHealthz is liveness: 200 as long as the handler runs, whatever the
// recovery or drain state — restarting a recovering daemon would only make
// it recover again.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// handleReadyz is readiness: 503 until journal replay has finished, and 503
// again once draining begins, with the same document either way.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	code := http.StatusOK
	if h.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ps := s.pool.Stats()
	jobs, lat, uptime := s.metrics.snapshot()
	resp := MetricsResponse{
		Version:       s.version,
		UptimeSeconds: uptime,
		QueueDepth:    ps.Queued,
		QueueCapacity: ps.Capacity,
		InFlight:      ps.InFlight,
		Workers:       ps.Workers,
		Tenants:       ps.Tenants,
		Draining:      ps.Closed,
		TrackedJobs:   s.jobs.len(),
		Jobs:          jobs,
		OverlayCache:  cacheMetrics(s.overlays.Counters()),
		TraceCache:    cacheMetrics(s.traces.Counters()),
		PeerFill:      s.peerFillMetrics(),
		Latency:       lat,
	}
	if st := s.opts.Store; st != nil {
		sn := st.StatsSnapshot()
		resp.Store = &StoreMetrics{
			Hits:             sn.Hits,
			Misses:           sn.Misses,
			Puts:             sn.Puts,
			Records:          sn.Records,
			RecoveredRecords: sn.RecoveredRecords,
			TruncatedBytes:   sn.TruncatedBytes,
			IndexRebuilt:     sn.IndexRebuilt,
			Ready:            s.ready.Load(),
			ResumedJobs:      int(s.resumedJobs.Load()),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- sweep streaming ----

// sweepInputs is a resolved sweep request.
type sweepInputs struct {
	simInputs
	widths, depths, robs []int
	pred                 string // predictor preset name ("" = baseline)
	vpred                string // value-predictor preset name ("" = none)
	mode                 string
	sampleDetailed       uint64
	sampleSkip           uint64
}

func (s *Server) resolveSweep(req *SweepRequest) (sweepInputs, error) {
	base, err := s.resolveSimulate(&SimulateRequest{
		Benchmark: req.Benchmark,
		Workload:  req.Workload,
		Insts:     req.Insts,
		Warmup:    req.Warmup,
		Machine:   MachineSpec{Pred: req.Pred, VPred: req.VPred, FetchRate: req.FetchRate},
		TimeoutMS: req.TimeoutMS,
	})
	if err != nil {
		return sweepInputs{}, err
	}
	in := sweepInputs{
		simInputs: base, widths: req.Widths, depths: req.Depths, robs: req.ROBs,
		pred: req.Pred, vpred: req.VPred,
	}
	if len(in.widths) == 0 {
		in.widths = []int{2, 4, 8}
	}
	if len(in.depths) == 0 {
		in.depths = []int{3, 7, 11}
	}
	if len(in.robs) == 0 {
		in.robs = []int{64, 128, 256}
	}
	for _, axis := range [][]int{in.widths, in.depths, in.robs} {
		for _, v := range axis {
			if v <= 0 {
				return sweepInputs{}, fmt.Errorf("%w: axis values must be positive", errBadRequest)
			}
		}
	}
	if n := len(in.widths) * len(in.depths) * len(in.robs); n > s.opts.MaxSweepPoints {
		return sweepInputs{}, fmt.Errorf("%w: %d points exceeds the %d-point cap", errBadRequest, n, s.opts.MaxSweepPoints)
	}
	in.mode = req.Mode
	if in.mode == "" {
		in.mode = "sim"
	}
	// Lockstep is a batch-API (shard-dispatch) mode: grid sweeps reach it
	// through /v1/batch via the cluster coordinator, not through /v1/sweep.
	if in.mode != "sim" && in.mode != "sampled" && in.mode != "model" {
		return sweepInputs{}, fmt.Errorf("%w: unknown mode %q (want sim, sampled or model)", errBadRequest, in.mode)
	}
	in.sampleDetailed, in.sampleSkip = req.SampleDetailed, req.SampleSkip
	if in.mode == "sampled" && (in.sampleDetailed == 0 || in.sampleSkip == 0) {
		return sweepInputs{}, fmt.Errorf("%w: sampled mode needs positive sample_detailed and sample_skip", errBadRequest)
	}
	return in, nil
}

// handleSweep streams a design-space sweep as NDJSON: one SweepPoint line
// per grid point in completion order, then a SweepTrailer. The shared trace
// and overlay are resolved once up front (so a second identical sweep is
// pure cache hits); each point then runs as its own pool task, applying the
// same backpressure as every other job.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req SweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.reject(w, http.StatusBadRequest, err, outcomeBadInput)
		return
	}
	in, err := s.resolveSweep(&req)
	if err != nil {
		s.reject(w, http.StatusBadRequest, err, outcomeBadInput)
		return
	}
	tenant, priority, err := admission(r)
	if err != nil {
		s.reject(w, http.StatusBadRequest, err, outcomeBadInput)
		return
	}

	// Shared artifacts, once per sweep — and across sweeps via the caches.
	// Sampled sweeps never compute an overlay: replay does not apply to
	// fast-forwarded runs.
	_, soa, err := s.sharedTrace(in.wc, in.insts)
	if err != nil {
		s.reject(w, http.StatusInternalServerError, err, outcomeError)
		return
	}
	// Speculation artifacts follow the request's resolved predictor (the
	// baseline unless the sweep names a preset), so every predictor kind
	// gets its own memoized overlay and model.
	var ov *overlay.Overlay
	if in.mode != "sampled" {
		if ov, err = s.overlayFor(soa, in.cfg.Pred, in.cfg.Mem, in.cfg.VPred); err != nil {
			s.reject(w, http.StatusInternalServerError, err, outcomeError)
			return
		}
	}
	var set *core.ModelSet
	if in.mode == "model" {
		maxROB := 2
		for _, rob := range in.robs {
			if rob > maxROB {
				maxROB = rob
			}
		}
		set, err = core.NewModelSet(soa, ov, in.cfg, maxROB, in.warmup, in.insts)
		if err != nil {
			s.reject(w, http.StatusInternalServerError, err, outcomeError)
			return
		}
	}

	// Enumerate the grid in canonical order; Seq is the canonical index.
	type gridPoint struct {
		seq               int
		width, depth, rob int
	}
	var points []gridPoint
	for _, width := range in.widths {
		for _, depth := range in.depths {
			for _, rob := range in.robs {
				points = append(points, gridPoint{len(points), width, depth, rob})
			}
		}
	}

	// Admission check before committing to a stream: if the queue cannot
	// take even one point now, turn the whole sweep away.
	if ps := s.pool.Stats(); ps.Queued >= ps.Capacity {
		w.Header().Set("Retry-After", s.retryAfter())
		s.reject(w, http.StatusTooManyRequests, ErrQueueFull, outcomeRejected)
		return
	}

	lines := make(chan SweepPoint, len(points))
	var wg sync.WaitGroup
	wg.Add(len(points))
	go func() {
		wg.Wait()
		close(lines)
	}()

	// Submit every point; later points block for queue space (backpressure)
	// rather than failing mid-stream.
	go func() {
		for _, pt := range points {
			pt := pt
			cfg := experiments.Point(pt.width, pt.depth, pt.rob)
			cfg.Pred = in.cfg.Pred
			cfg.VPred = in.cfg.VPred
			cfg.FetchRate = in.cfg.FetchRate
			line := SweepPoint{Seq: pt.seq, Width: pt.width, Depth: pt.depth, ROB: pt.rob}
			t := &task{
				name:     fmt.Sprintf("sweep-%s-%s", in.wc.Name, cfg.Name),
				timeout:  in.timeout,
				priority: priority,
				tenant:   tenant,
				// A dropped connection must stop the sweep's work, not
				// just its output: queued points are skipped and running
				// ones canceled, freeing the worker slots promptly.
				parent: r.Context(),
				run: func(ctx context.Context) error {
					switch in.mode {
					case "model":
						return s.modelSweepPoint(cfg, set, &line)
					case "sampled":
						return s.sampledSweepPoint(ctx, soa, cfg, in, &line)
					default:
						return s.simSweepPoint(ctx, soa, ov, cfg, in.warmup, &line)
					}
				},
				finish: func(err error, d time.Duration) {
					outcome := classify(err)
					s.metrics.observe(outcome, d)
					if err != nil {
						// Do not touch line on failure: an abandoned run may
						// still be writing it. Emit a fresh error point.
						lines <- SweepPoint{
							Seq: pt.seq, Width: pt.width, Depth: pt.depth, ROB: pt.rob,
							Error: err.Error(), Outcome: outcome,
						}
					} else {
						lines <- line
					}
					wg.Done()
				},
			}
			if err := s.pool.SubmitWait(r.Context(), t); err != nil {
				outcome := classify(err)
				s.metrics.count(outcome)
				lines <- SweepPoint{
					Seq: pt.seq, Width: pt.width, Depth: pt.depth, ROB: pt.rob,
					Error: err.Error(), Outcome: outcome,
				}
				wg.Done()
			}
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	ok, failed := 0, 0
	for line := range lines {
		if line.Error == "" {
			ok++
		} else {
			failed++
		}
		enc.Encode(line) //nolint:errcheck // keep draining for the finishers
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(SweepTrailer{ //nolint:errcheck
		Done: true, Points: len(points), OK: ok, Failed: failed,
		Mode: in.mode, Elapsed: time.Since(start).Round(time.Millisecond).String(),
	})
}

// simSweepPoint runs one cycle-level grid point into line.
func (s *Server) simSweepPoint(ctx context.Context, soa *trace.SoA, ov *overlay.Overlay, cfg uarch.Config, warmup uint64, line *SweepPoint) error {
	res, err := uarch.RunContext(ctx, soa.Reader(), cfg, uarch.Options{
		RecordMispredicts: true,
		WarmupInsts:       warmup,
		Overlay:           ov,
	})
	if err != nil {
		return err
	}
	line.IPC = res.IPC()
	line.AvgMispredictPenalty = res.AvgMispredictPenalty()
	line.Cycles = res.Cycles
	line.Path = res.Path
	line.Fallback = res.Fallback
	return nil
}

// sampledSweepPoint runs one grid point under systematic sampling into line:
// the ratio-estimator CPI with its confidence interval instead of the
// penalty statistics. The sweep's warmup is the initial functional skip.
func (s *Server) sampledSweepPoint(ctx context.Context, soa *trace.SoA, cfg uarch.Config, in sweepInputs, line *SweepPoint) error {
	res, err := uarch.RunContext(ctx, soa.Reader(), cfg, uarch.Options{
		SampleStartSkip: in.warmup,
		SampleDetailed:  in.sampleDetailed,
		SampleSkip:      in.sampleSkip,
	})
	if err != nil {
		return err
	}
	st := res.Sample
	if st == nil {
		return fmt.Errorf("%s: sampled run carries no sample statistics", cfg.Name)
	}
	line.IPC = res.IPC()
	line.Cycles = res.Cycles
	line.Path = res.Path
	line.Fallback = res.Fallback
	line.CPI = st.CPI.Mean
	line.CPILo = st.CPI.Lower
	line.CPIHi = st.CPI.Upper
	line.CPIRelErr = st.CPI.RelErr
	line.SampleUnits = st.Units
	return nil
}

// modelSweepPoint evaluates one analytic-model grid point into line.
func (s *Server) modelSweepPoint(cfg uarch.Config, set *core.ModelSet, line *SweepPoint) error {
	m, prof, err := set.For(cfg)
	if err != nil {
		return err
	}
	pred, err := m.PredictCPI(prof)
	if err != nil {
		return err
	}
	pen, err := modelPenalty(m, prof)
	if err != nil {
		return err
	}
	insts := float64(pred.Insts)
	line.CPIBase = pred.Base / insts
	line.CPIBpred = pred.Bpred / insts
	line.CPIICache = pred.ICache / insts
	line.CPILongData = pred.LongData / insts
	line.CPIVMisspec = pred.VMisspec / insts
	line.AvgMispredictPenalty = pen
	if cpi := pred.CPI(); cpi > 0 {
		line.IPC = 1 / cpi
	}
	line.Path = "model"
	return nil
}
