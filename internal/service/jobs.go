package service

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// JobStatus is the lifecycle of a submitted job.
type JobStatus string

const (
	JobQueued  JobStatus = "queued"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// JobView is the JSON shape of one job, as returned by POST /v1/simulate
// and GET /v1/jobs/{id}.
type JobView struct {
	ID         string          `json:"id"`
	Kind       string          `json:"kind"`
	Status     JobStatus       `json:"status"`
	Submitted  time.Time       `json:"submitted"`
	Started    *time.Time      `json:"started,omitempty"`
	Finished   *time.Time      `json:"finished,omitempty"`
	DurationMS float64         `json:"duration_ms,omitempty"` // queue wait excluded
	Outcome    string          `json:"outcome,omitempty"`     // ok|timeout|canceled|bad_input|error
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// jobStore tracks submitted jobs by ID, bounding memory by evicting the
// oldest finished jobs beyond a history limit (running and queued jobs are
// never evicted: a client polling a live job must always find it).
type jobStore struct {
	mu       sync.Mutex
	seq      uint64
	jobs     map[string]*JobView
	finished []string // finished job IDs in completion order, for eviction
	history  int
}

func newJobStore(history int) *jobStore {
	if history < 1 {
		history = 256
	}
	return &jobStore{jobs: make(map[string]*JobView), history: history}
}

// create registers a new queued job and returns its view snapshot.
func (s *jobStore) create(kind string) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &JobView{
		ID:        fmt.Sprintf("j%08d", s.seq),
		Kind:      kind,
		Status:    JobQueued,
		Submitted: time.Now().UTC(),
	}
	s.jobs[j.ID] = j
	return *j
}

// createWithID registers a queued job under a caller-chosen (content-hashed)
// ID — the idempotent submission path. If a live or successful job already
// holds the ID, that job is returned with created=false: resubmitting the
// same identity joins the existing job instead of duplicating work. A failed
// job is replaced, so clients can retry a failure by resubmitting.
func (s *jobStore) createWithID(id, kind string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		if j.Status != JobFailed {
			return *j, false
		}
		s.dropFinished(id) // the replacement is live again; un-schedule eviction
	}
	j := &JobView{
		ID:        id,
		Kind:      kind,
		Status:    JobQueued,
		Submitted: time.Now().UTC(),
	}
	s.jobs[id] = j
	return *j, true
}

// completeCached registers (or replaces) a job that was answered wholly from
// the durable result store: born finished, zero execution time.
func (s *jobStore) completeCached(id, kind string, result json.RawMessage) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now().UTC()
	j := &JobView{
		ID:        id,
		Kind:      kind,
		Status:    JobDone,
		Submitted: now,
		Started:   &now,
		Finished:  &now,
		Outcome:   outcomeOK,
		Result:    result,
	}
	if _, ok := s.jobs[id]; !ok {
		s.finished = append(s.finished, id)
	} else {
		s.dropFinished(id)
		s.finished = append(s.finished, id)
	}
	s.jobs[id] = j
	s.evictLocked()
	return *j
}

// dropFinished removes id from the finished-eviction order. Caller holds mu.
func (s *jobStore) dropFinished(id string) {
	for i, fid := range s.finished {
		if fid == id {
			s.finished = append(s.finished[:i], s.finished[i+1:]...)
			return
		}
	}
}

// evictLocked enforces the finished-job history bound. Caller holds mu.
func (s *jobStore) evictLocked() {
	for len(s.finished) > s.history {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// get returns a snapshot of the job, if known.
func (s *jobStore) get(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return *j, true
}

// markRunning records the execution start.
func (s *jobStore) markRunning(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		now := time.Now().UTC()
		j.Status = JobRunning
		j.Started = &now
	}
}

// setResult attaches a result to a still-running job. A job abandoned on
// deadline may complete late, after markFinished has already recorded the
// timeout; the status check makes that late write a no-op, and the store
// mutex serializes the two.
func (s *jobStore) setResult(id string, result json.RawMessage) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok && j.Status == JobRunning {
		j.Result = result
	}
}

// markFinished records the terminal state and evicts old finished jobs
// beyond the history bound. A successful job's Result was already attached
// by setResult; a failed job's is cleared.
func (s *jobStore) markFinished(id, outcome string, errMsg string, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	now := time.Now().UTC()
	j.Finished = &now
	j.DurationMS = float64(d) / float64(time.Millisecond)
	j.Outcome = outcome
	if errMsg != "" {
		j.Status = JobFailed
		j.Error = errMsg
		j.Result = nil
	} else {
		j.Status = JobDone
	}
	s.finished = append(s.finished, id)
	s.evictLocked()
}

// len returns the number of tracked jobs.
func (s *jobStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}
