package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"intervalsim/internal/core"
	"intervalsim/internal/experiments"
	"intervalsim/internal/overlay"
	"intervalsim/internal/store"
	"intervalsim/internal/workload"
)

// Durable sweep jobs: POST /v1/sweepjobs admits a design-space sweep whose
// progress survives the daemon. The job's identity is content-derived
// ("s" + hash of the resolved grid spec), submission is idempotent, and
// every completed grid point is committed to a per-job journal in the
// result store before it counts as done. A SIGKILL mid-sweep therefore
// loses at most the points in flight: on restart, Server.recoverJournals
// finds the journal, replays the committed points, and resumes exactly the
// remainder. The finished artifact — a CSV in canonical grid order, byte
// identical whether or not the job was ever interrupted — is stored under
// the job's content address and served by GET /v1/sweepjobs/{id}/csv.

// sweepJobSpec is the JournalBegin payload: everything needed to resume the
// job in a fresh process. Axes are journaled in resolved form so a resume
// enumerates the identical grid even if server-side defaults change.
type sweepJobSpec struct {
	Benchmark      string           `json:"benchmark,omitempty"`
	Workload       *workload.Config `json:"workload,omitempty"`
	Insts          int              `json:"insts"`
	Warmup         uint64           `json:"warmup,omitempty"`
	Widths         []int            `json:"widths"`
	Depths         []int            `json:"depths"`
	ROBs           []int            `json:"robs"`
	Pred           string           `json:"pred,omitempty"`
	VPred          string           `json:"vpred,omitempty"`
	FetchRate      float64          `json:"fetchrate,omitempty"`
	Mode           string           `json:"mode"`
	SampleDetailed uint64           `json:"sample_detailed,omitempty"`
	SampleSkip     uint64           `json:"sample_skip,omitempty"`
	TimeoutMS      int              `json:"timeout_ms,omitempty"`
	Tenant         string           `json:"tenant,omitempty"`
	Priority       int              `json:"priority,omitempty"`
}

// request converts the journaled spec back into a resolvable request.
func (sp sweepJobSpec) request() *SweepRequest {
	return &SweepRequest{
		Benchmark:      sp.Benchmark,
		Workload:       sp.Workload,
		Insts:          sp.Insts,
		Warmup:         sp.Warmup,
		Widths:         sp.Widths,
		Depths:         sp.Depths,
		ROBs:           sp.ROBs,
		Pred:           sp.Pred,
		VPred:          sp.VPred,
		FetchRate:      sp.FetchRate,
		Mode:           sp.Mode,
		SampleDetailed: sp.SampleDetailed,
		SampleSkip:     sp.SampleSkip,
		TimeoutMS:      sp.TimeoutMS,
	}
}

// SweepJobResult is the Result document of a finished sweep job.
type SweepJobResult struct {
	Points  int    `json:"points"`
	Mode    string `json:"mode"`
	CSVPath string `json:"csv_path"`
}

// handleSweepJobSubmit admits (or joins) a durable sweep job. 503 without a
// configured store or while recovery is still replaying journals — durable
// admission during replay would race the journal scan.
func (s *Server) handleSweepJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.opts.Store == nil {
		s.reject(w, http.StatusServiceUnavailable,
			fmt.Errorf("service: durable sweep jobs need a result store (run with -store)"), outcomeRejected)
		return
	}
	if !s.ready.Load() {
		w.Header().Set("Retry-After", "1")
		s.reject(w, http.StatusServiceUnavailable,
			fmt.Errorf("service: recovering: journal replay in progress"), outcomeRejected)
		return
	}
	var req SweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.reject(w, http.StatusBadRequest, err, outcomeBadInput)
		return
	}
	in, err := s.resolveSweep(&req)
	if err != nil {
		s.reject(w, http.StatusBadRequest, err, outcomeBadInput)
		return
	}
	tenant, priority, err := admission(r)
	if err != nil {
		s.reject(w, http.StatusBadRequest, err, outcomeBadInput)
		return
	}
	id := jobID("s", sweepKey(in))

	// Idempotent joins, in cheapest-first order: a live/succeeded job in
	// this process, then a finished artifact from a previous process life.
	if job, ok := s.jobs.get(id); ok && job.Status != JobFailed {
		writeJSON(w, http.StatusOK, job)
		return
	}
	if _, ok, gerr := s.opts.Store.Get(csvKey(id)); gerr == nil && ok {
		s.metrics.count(outcomeCached)
		writeJSON(w, http.StatusOK, s.jobs.completeCached(id, "sweep", mustJSON(SweepJobResult{
			Points:  len(in.widths) * len(in.depths) * len(in.robs),
			Mode:    in.mode,
			CSVPath: "/v1/sweepjobs/" + id + "/csv",
		})))
		return
	}
	job, created := s.jobs.createWithID(id, "sweep")
	if !created {
		writeJSON(w, http.StatusOK, job)
		return
	}

	spec := sweepJobSpec{
		Benchmark:      req.Benchmark,
		Workload:       req.Workload,
		Insts:          in.insts,
		Warmup:         in.warmup,
		Widths:         in.widths,
		Depths:         in.depths,
		ROBs:           in.robs,
		Pred:           in.pred,
		VPred:          in.vpred,
		FetchRate:      in.cfg.FetchRate,
		Mode:           in.mode,
		SampleDetailed: in.sampleDetailed,
		SampleSkip:     in.sampleSkip,
		TimeoutMS:      req.TimeoutMS,
		Tenant:         tenant,
		Priority:       priority,
	}
	j, _, _, err := s.opts.Store.OpenJournal(id)
	if err != nil {
		s.jobs.markFinished(id, outcomeError, err.Error(), 0)
		s.reject(w, http.StatusInternalServerError, err, outcomeError)
		return
	}
	if _, err := j.Append(store.JournalBegin, mustJSON(spec)); err != nil {
		j.Close()
		s.jobs.markFinished(id, outcomeError, err.Error(), 0)
		s.reject(w, http.StatusInternalServerError, err, outcomeError)
		return
	}
	go s.runSweepJob(id, j, spec, in, map[int]SweepPoint{})
	writeJSON(w, http.StatusAccepted, job)
}

// handleSweepJob reports one durable job's state. A job finished in an
// earlier process life is reconstructed from its stored artifact.
func (s *Server) handleSweepJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if job, ok := s.jobs.get(id); ok {
		writeJSON(w, http.StatusOK, job)
		return
	}
	if st := s.opts.Store; st != nil && strings.HasPrefix(id, "s") {
		if _, ok, err := st.Get(csvKey(id)); err == nil && ok {
			writeJSON(w, http.StatusOK, s.jobs.completeCached(id, "sweep", mustJSON(SweepJobResult{
				CSVPath: "/v1/sweepjobs/" + id + "/csv",
			})))
			return
		}
	}
	writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
}

// handleSweepJobCSV serves the finished CSV artifact: 200 text/csv when the
// job is done, 202 with the job document while it is still running.
func (s *Server) handleSweepJobCSV(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if st := s.opts.Store; st != nil {
		if raw, ok, err := st.Get(csvKey(id)); err == nil && ok {
			w.Header().Set("Content-Type", "text/csv")
			w.WriteHeader(http.StatusOK)
			w.Write(raw) //nolint:errcheck
			return
		}
	}
	if job, ok := s.jobs.get(id); ok {
		writeJSON(w, http.StatusAccepted, job)
		return
	}
	writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
}

// recoverJournals replays every incomplete sweep-job journal at startup and
// resumes the jobs; the server reports ready once replay (not the resumed
// work itself) is done. Runs once, from New.
func (s *Server) recoverJournals() {
	defer s.ready.Store(true)
	st := s.opts.Store
	ids, err := st.Journals()
	if err != nil {
		return
	}
	for _, id := range ids {
		j, recs, _, err := st.OpenJournal(id)
		if err != nil {
			continue
		}
		var spec sweepJobSpec
		done := make(map[int]SweepPoint, len(recs))
		haveBegin, haveDone := false, false
		for _, rec := range recs {
			switch rec.Kind {
			case store.JournalBegin:
				haveBegin = json.Unmarshal(rec.Payload, &spec) == nil
			case store.JournalPoint:
				var pt SweepPoint
				if json.Unmarshal(rec.Payload, &pt) == nil {
					done[pt.Seq] = pt
				}
			case store.JournalDone:
				haveDone = true
			}
		}
		if !haveBegin {
			// A journal torn before Begin committed names no job; discard.
			j.Close()
			st.RemoveJournal(id) //nolint:errcheck
			continue
		}
		if haveDone {
			// Finished, but the crash beat journal removal. The artifact was
			// stored before Done was journaled, so just clean up.
			j.Close()
			st.RemoveJournal(id) //nolint:errcheck
			continue
		}
		in, err := s.resolveSweep(spec.request())
		if err != nil {
			j.Close()
			st.RemoveJournal(id) //nolint:errcheck
			continue
		}
		s.jobs.createWithID(id, "sweep")
		s.resumedJobs.Add(1)
		go s.runSweepJob(id, j, spec, in, done)
	}
}

// runSweepJob drives one durable sweep to completion: every grid point not
// already journaled runs on the pool (under the job's tenant and priority),
// commits to the journal as it finishes, and once all points are in, the
// canonical CSV is stored and the journal retired. Any failed point leaves
// the journal in place — completed points stay committed and a restart (or
// an identical resubmission) retries only the remainder.
func (s *Server) runSweepJob(id string, j *store.Log, spec sweepJobSpec, in sweepInputs, done map[int]SweepPoint) {
	start := time.Now()
	st := s.opts.Store
	s.jobs.markRunning(id)
	failJob := func(err error) {
		j.Close()
		s.jobs.markFinished(id, classify(err), err.Error(), time.Since(start))
	}

	// Shared artifacts, exactly as the streaming sweep resolves them.
	_, soa, err := s.sharedTrace(in.wc, in.insts)
	if err != nil {
		failJob(err)
		return
	}
	var ov *overlay.Overlay
	if in.mode != "sampled" {
		if ov, err = s.overlayFor(soa, in.cfg.Pred, in.cfg.Mem, in.cfg.VPred); err != nil {
			failJob(err)
			return
		}
	}
	var set *core.ModelSet
	if in.mode == "model" {
		maxROB := 2
		for _, rob := range in.robs {
			if rob > maxROB {
				maxROB = rob
			}
		}
		set, err = core.NewModelSet(soa, ov, in.cfg, maxROB, in.warmup, in.insts)
		if err != nil {
			failJob(err)
			return
		}
	}

	type gridPoint struct {
		seq               int
		width, depth, rob int
	}
	var todo []gridPoint
	total := 0
	for _, width := range in.widths {
		for _, depth := range in.depths {
			for _, rob := range in.robs {
				seq := total
				total++
				if _, ok := done[seq]; !ok {
					todo = append(todo, gridPoint{seq, width, depth, rob})
				}
			}
		}
	}

	var (
		mu     sync.Mutex // guards done, failed, and journal appends
		failed int
		wg     sync.WaitGroup
	)
	wg.Add(len(todo))
	for _, pt := range todo {
		pt := pt
		cfg := experiments.Point(pt.width, pt.depth, pt.rob)
		cfg.Pred = in.cfg.Pred
		cfg.VPred = in.cfg.VPred
		cfg.FetchRate = in.cfg.FetchRate
		line := SweepPoint{Seq: pt.seq, Width: pt.width, Depth: pt.depth, ROB: pt.rob}
		t := &task{
			name:     fmt.Sprintf("sweepjob-%s-%d", id, pt.seq),
			timeout:  in.timeout,
			priority: spec.Priority,
			tenant:   spec.Tenant,
			run: func(ctx context.Context) error {
				switch in.mode {
				case "model":
					return s.modelSweepPoint(cfg, set, &line)
				case "sampled":
					return s.sampledSweepPoint(ctx, soa, cfg, in, &line)
				default:
					return s.simSweepPoint(ctx, soa, ov, cfg, in.warmup, &line)
				}
			},
			finish: func(err error, d time.Duration) {
				defer wg.Done()
				s.metrics.observe(classify(err), d)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					failed++
					return
				}
				// Commit-before-count: the point only becomes durable state
				// once its journal record is fsync'd.
				if _, jerr := j.Append(store.JournalPoint, mustJSON(line)); jerr != nil {
					failed++
					return
				}
				done[pt.seq] = line
			},
		}
		if err := s.pool.SubmitWait(context.Background(), t); err != nil {
			s.metrics.count(classify(err))
			mu.Lock()
			failed++
			mu.Unlock()
			wg.Done()
		}
	}
	wg.Wait()

	if failed > 0 {
		failJob(fmt.Errorf("service: %d of %d sweep points failed; %d committed points will resume on retry",
			failed, total, len(done)))
		return
	}

	// Artifact first, then Done, then retire the journal: every crash window
	// leaves a state recovery handles (re-putting the identical artifact is
	// idempotent; a journal with Done just gets removed).
	csv := buildSweepCSV(in.mode, done)
	if err := st.Put(csvKey(id), csv); err != nil {
		failJob(err)
		return
	}
	if _, err := j.Append(store.JournalDone, nil); err != nil {
		failJob(err)
		return
	}
	j.Close()
	st.RemoveJournal(id) //nolint:errcheck // a leftover journal is re-retired on next open
	s.jobs.setResult(id, mustJSON(SweepJobResult{
		Points:  total,
		Mode:    in.mode,
		CSVPath: "/v1/sweepjobs/" + id + "/csv",
	}))
	s.jobs.markFinished(id, outcomeOK, "", time.Since(start))
}

// buildSweepCSV renders the finished grid in canonical seq order with fixed
// format verbs — fully deterministic, so an interrupted-and-resumed job
// produces the same bytes as an uninterrupted one.
func buildSweepCSV(mode string, done map[int]SweepPoint) []byte {
	seqs := make([]int, 0, len(done))
	for seq := range done {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	var b strings.Builder
	switch mode {
	case "model":
		b.WriteString("seq,width,depth,rob,ipc,avg_penalty,cpi_base,cpi_bpred,cpi_icache,cpi_longd\n")
	case "sampled":
		b.WriteString("seq,width,depth,rob,ipc,cpi,cpi_lo,cpi_hi,cpi_rel_err,units\n")
	default:
		b.WriteString("seq,width,depth,rob,ipc,avg_penalty,cycles\n")
	}
	for _, seq := range seqs {
		pt := done[seq]
		if mode == "sampled" {
			fmt.Fprintf(&b, "%d,%d,%d,%d,%.3f,%.4f,%.4f,%.4f,%.4f,%d\n",
				pt.Seq, pt.Width, pt.Depth, pt.ROB, pt.IPC,
				pt.CPI, pt.CPILo, pt.CPIHi, pt.CPIRelErr, pt.SampleUnits)
			continue
		}
		fmt.Fprintf(&b, "%d,%d,%d,%d,%.3f,%.2f", pt.Seq, pt.Width, pt.Depth, pt.ROB, pt.IPC, pt.AvgMispredictPenalty)
		if mode == "model" {
			fmt.Fprintf(&b, ",%.3f,%.3f,%.3f,%.3f", pt.CPIBase, pt.CPIBpred, pt.CPIICache, pt.CPILongData)
		} else {
			fmt.Fprintf(&b, ",%d", pt.Cycles)
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// mustJSON marshals fixed-shape internal values whose encoding cannot fail.
func mustJSON(v any) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("service: internal marshal: %v", err))
	}
	return raw
}
