package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"intervalsim/internal/harness"
)

// Admission and lifecycle sentinels. Handlers map ErrQueueFull and
// ErrTenantQuota to HTTP 429 (with Retry-After) and ErrClosed to HTTP 503.
var (
	// ErrQueueFull is returned by Submit when the bounded queue has no
	// space: the admission-control signal, surfaced to clients as 429.
	ErrQueueFull = errors.New("service: job queue full")

	// ErrTenantQuota is returned by Submit when one tenant already holds its
	// fair share of admitted (queued + running) jobs: per-tenant isolation,
	// so one client cannot monopolize the queue for everyone else.
	ErrTenantQuota = errors.New("service: tenant quota exhausted")

	// ErrClosed is returned by Submit once shutdown has begun: the pool
	// drains what it has but accepts nothing new.
	ErrClosed = errors.New("service: pool shutting down")
)

// Priority classes. Workers always take the highest non-empty class, FIFO
// within a class: interactive point queries overtake bulk sweep points that
// arrived first, and durable background jobs yield to both.
const (
	PriorityHigh   = 0
	PriorityNormal = 1
	PriorityLow    = 2
	numPriorities  = 3
)

// task is one unit of work admitted to the pool. run executes under a
// context that is canceled on per-task deadline, forced shutdown, or —
// when parent is set — cancellation of the submitting request; finish
// (optional) observes the harness-classified error and the wall-clock spent.
type task struct {
	name     string
	timeout  time.Duration   // per-attempt deadline; 0 = pool default
	parent   context.Context // optional request context; nil = pool lifetime only
	priority int             // PriorityHigh..PriorityLow; out-of-range clamps
	tenant   string          // quota accounting key; "" = the default tenant
	run      func(ctx context.Context) error
	finish   func(err error, d time.Duration)
}

// PoolOptions sizes the pool.
type PoolOptions struct {
	// Workers is the number of concurrent jobs; <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the jobs waiting for a worker; <= 0 means 64.
	// A full queue rejects new submissions (ErrQueueFull) instead of
	// buffering without limit — the backpressure contract of the daemon.
	QueueDepth int
	// DefaultTimeout bounds each job that does not carry its own deadline;
	// 0 means no default deadline.
	DefaultTimeout time.Duration
	// TenantQuota caps one tenant's admitted (queued + running) jobs;
	// <= 0 disables per-tenant accounting.
	TenantQuota int
}

// Pool is the daemon's bounded job queue plus a fixed worker set. Each
// admitted task runs as a single-job harness batch, inheriting the harness
// guarantees the CLIs already rely on: panic containment (a panicking job
// becomes a structured error, never a daemon crash), per-attempt deadlines
// with abandonment of jobs that ignore their context, and structured
// errors. Admission is three-class priority with per-tenant quotas; see the
// Priority constants and PoolOptions.TenantQuota. Shutdown is two-phase:
// Close stops admission and drains queued + in-flight jobs; if the drain
// context expires, in-flight contexts are canceled and the remainder fails
// fast with ErrCanceled.
type Pool struct {
	opts     PoolOptions
	baseCtx  context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	inflight atomic.Int64

	mu       sync.Mutex
	cond     *sync.Cond
	queues   [numPriorities][]*task
	queued   int
	admitted map[string]int // tenant -> queued + running
	closed   bool
}

// NewPool starts the workers and returns the pool.
func NewPool(opts PoolOptions) *Pool {
	if opts.Workers <= 0 {
		opts.Workers = defaultWorkers()
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		opts:     opts,
		baseCtx:  ctx,
		cancel:   cancel,
		admitted: make(map[string]int),
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < opts.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Submit admits t without blocking: ErrQueueFull when the queue is at
// capacity, ErrTenantQuota when t's tenant is over its share, ErrClosed
// once shutdown has begun.
func (p *Pool) Submit(t *task) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.queued >= p.opts.QueueDepth {
		return ErrQueueFull
	}
	if p.opts.TenantQuota > 0 && p.admitted[t.tenant] >= p.opts.TenantQuota {
		return fmt.Errorf("%w: tenant %q at %d admitted jobs", ErrTenantQuota, tenantLabel(t.tenant), p.admitted[t.tenant])
	}
	pri := t.priority
	if pri < PriorityHigh || pri > PriorityLow {
		pri = PriorityNormal
	}
	p.queues[pri] = append(p.queues[pri], t)
	p.queued++
	p.admitted[t.tenant]++
	p.cond.Signal()
	return nil
}

// tenantLabel names the default tenant in error messages.
func tenantLabel(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

// SubmitWait admits t, waiting for queue space (or tenant quota headroom) if
// necessary. It returns ctx's error if the caller gives up first, and
// ErrClosed once shutdown has begun. Streaming endpoints and durable sweep
// jobs use it so a long sweep applies backpressure to its own producer
// instead of failing mid-stream.
func (p *Pool) SubmitWait(ctx context.Context, t *task) error {
	for {
		err := p.Submit(t)
		if !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrTenantQuota) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// worker executes tasks until shutdown has begun and the queues are drained.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for p.queued == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.queued == 0 {
			p.mu.Unlock()
			return
		}
		var t *task
		for i := range p.queues {
			if q := p.queues[i]; len(q) > 0 {
				t, q[0] = q[0], nil
				p.queues[i] = q[1:]
				break
			}
		}
		p.queued--
		p.mu.Unlock()

		p.runTask(t)

		p.mu.Lock()
		if p.admitted[t.tenant] <= 1 {
			delete(p.admitted, t.tenant)
		} else {
			p.admitted[t.tenant]--
		}
		p.mu.Unlock()
	}
}

// runTask drives one task through a single-job harness batch, so the task
// gets the harness's panic containment and deadline/abandonment semantics.
// A task whose submitting request has already gone away is dropped without
// occupying the worker: a disconnected sweep client must not keep burning
// queued design points.
func (p *Pool) runTask(t *task) {
	p.inflight.Add(1)
	defer p.inflight.Add(-1)
	runCtx := p.baseCtx
	if t.parent != nil {
		if t.parent.Err() != nil {
			if t.finish != nil {
				t.finish(&harness.JobError{Job: t.name, Attempt: 0, Err: context.Canceled}, 0)
			}
			return
		}
		var cancel context.CancelCauseFunc
		runCtx, cancel = context.WithCancelCause(p.baseCtx)
		defer cancel(nil)
		stop := context.AfterFunc(t.parent, func() { cancel(context.Canceled) })
		defer stop()
	}
	timeout := t.timeout
	if timeout <= 0 {
		timeout = p.opts.DefaultTimeout
	}
	jobs := []harness.Job[struct{}]{{
		Name: t.name,
		Run: func(ctx context.Context) (struct{}, error) {
			return struct{}{}, t.run(ctx)
		},
	}}
	results, _ := harness.Run(runCtx, jobs, harness.Options{
		Workers:   1,
		Timeout:   timeout,
		KeepGoing: true,
	})
	if t.finish != nil {
		t.finish(results[0].Err, results[0].Duration)
	}
}

// Stats is a point-in-time view of the pool's load.
type PoolStats struct {
	Queued   int // tasks waiting for a worker
	Capacity int // queue bound
	InFlight int // tasks currently executing
	Workers  int
	Tenants  int // tenants with admitted jobs
	Closed   bool
}

// Stats returns the current load snapshot.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	queued, tenants, closed := p.queued, len(p.admitted), p.closed
	p.mu.Unlock()
	return PoolStats{
		Queued:   queued,
		Capacity: p.opts.QueueDepth,
		InFlight: int(p.inflight.Load()),
		Workers:  p.opts.Workers,
		Tenants:  tenants,
		Closed:   closed,
	}
}

// Close begins graceful shutdown: admission stops immediately, and queued +
// in-flight tasks drain. If ctx expires before the drain completes, the
// in-flight task contexts are canceled so the remainder fails fast (each
// still reports through its finish hook), and Close returns ctx's error
// after the workers exit. Close is idempotent.
func (p *Pool) Close(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.cond.Broadcast()
	}
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		p.cancel()
		<-done
		return ctx.Err()
	}
}
