package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"intervalsim/internal/store"
)

// openTestStore opens a store in a temp dir and closes it with the test.
func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// waitReady polls Server.Ready — recovery runs in the background.
func waitReady(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !s.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestIdempotentSimulate: identical requests collapse to one job ID; the
// second submission joins rather than recomputes.
func TestIdempotentSimulate(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	req := SimulateRequest{Benchmark: "gzip", Insts: 5000}

	a := decodeBody[JobView](t, postJSON(t, ts.URL+"/v1/simulate", req))
	b := decodeBody[JobView](t, postJSON(t, ts.URL+"/v1/simulate", req))
	if a.ID != b.ID {
		t.Fatalf("identical requests got different job IDs: %s vs %s", a.ID, b.ID)
	}
	if a.ID == "" || a.ID[0] != 'j' {
		t.Fatalf("job ID %q is not content-hashed", a.ID)
	}
	done := pollJob(t, ts.URL, a.ID)
	if done.Status != JobDone {
		t.Fatalf("job finished %s: %s", done.Status, done.Error)
	}
	// A different identity must get a different job.
	other := req
	other.Warmup = 1
	c := decodeBody[JobView](t, postJSON(t, ts.URL+"/v1/simulate", other))
	if c.ID == a.ID {
		t.Fatal("different identities aliased to one job ID")
	}
}

// TestStoreCachedAcrossRestart: a result computed in one server life is
// served from the durable store in the next — born-finished, no queue.
func TestStoreCachedAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	req := SimulateRequest{Benchmark: "gzip", Insts: 5000}

	st1 := openTestStore(t, dir)
	s1, ts1 := newTestServer(t, Options{Workers: 2, Store: st1})
	waitReady(t, s1)
	first := decodeBody[JobView](t, postJSON(t, ts1.URL+"/v1/simulate", req))
	firstDone := pollJob(t, ts1.URL, first.ID)
	if firstDone.Status != JobDone {
		t.Fatalf("first life: job %s: %s", firstDone.Status, firstDone.Error)
	}
	ts1.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	s2, ts2 := newTestServer(t, Options{Workers: 2, Store: st2})
	waitReady(t, s2)
	resp := postJSON(t, ts2.URL+"/v1/simulate", req)
	second := decodeBody[JobView](t, resp)
	if second.Status != JobDone {
		t.Fatalf("second life: status %s, want done (store hit)", second.Status)
	}
	if !bytes.Equal(second.Result, firstDone.Result) {
		t.Fatalf("cached result differs:\n%s\nvs\n%s", second.Result, firstDone.Result)
	}
	m := decodeBody[MetricsResponse](t, mustGet(t, ts2.URL+"/metrics"))
	if m.Store == nil || m.Store.Hits == 0 {
		t.Fatalf("store metrics did not record the hit: %+v", m.Store)
	}
	if m.Jobs[outcomeCached] == 0 {
		t.Fatalf("jobs map missing cached outcome: %v", m.Jobs)
	}
}

// TestPoolPriorityOrder: with the lone worker busy, a high-priority task
// submitted after two low-priority ones runs before them.
func TestPoolPriorityOrder(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 8})
	defer drainPool(t, p)

	release := make(chan struct{})
	running := make(chan struct{})
	if err := p.Submit(&task{name: "blocker", run: func(ctx context.Context) error {
		close(running)
		<-release
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	<-running

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	submit := func(name string, pri int) {
		wg.Add(1)
		err := p.Submit(&task{
			name:     name,
			priority: pri,
			run: func(ctx context.Context) error {
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
				return nil
			},
			finish: func(error, time.Duration) { wg.Done() },
		})
		if err != nil {
			t.Fatalf("Submit %s: %v", name, err)
		}
	}
	submit("low-1", PriorityLow)
	submit("low-2", PriorityLow)
	submit("high", PriorityHigh)
	submit("normal", PriorityNormal)
	close(release)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	want := []string{"high", "normal", "low-1", "low-2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

// TestPoolTenantQuota: one tenant cannot hold more than its quota of
// admitted jobs; other tenants are unaffected.
func TestPoolTenantQuota(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 16, TenantQuota: 2})
	defer drainPool(t, p)

	release := make(chan struct{})
	running := make(chan struct{})
	mk := func(tenant string, started chan struct{}) *task {
		return &task{name: tenant, tenant: tenant, run: func(ctx context.Context) error {
			if started != nil {
				close(started)
			}
			<-release
			return nil
		}}
	}
	if err := p.Submit(mk("alice", running)); err != nil {
		t.Fatal(err)
	}
	<-running // alice-1 running (counts against quota)
	if err := p.Submit(mk("alice", nil)); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(mk("alice", nil)); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("third alice job = %v, want ErrTenantQuota", err)
	}
	if err := p.Submit(mk("bob", nil)); err != nil {
		t.Fatalf("bob blocked by alice's quota: %v", err)
	}
	if s := p.Stats(); s.Tenants != 2 {
		t.Fatalf("Tenants = %d, want 2", s.Tenants)
	}
	close(release)
}

// TestTenantQuota429: the HTTP surface maps quota exhaustion to 429 with a
// Retry-After hint, keyed by the X-Tenant header.
func TestTenantQuota429(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 16, TenantQuota: 1})

	post := func(tenant string, warmup uint64) *http.Response {
		raw, _ := json.Marshal(SimulateRequest{Benchmark: "mcf", Insts: 2_000_000, Warmup: warmup})
		req, _ := http.NewRequest("POST", ts.URL+"/v1/simulate", bytes.NewReader(raw))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	first := post("alice", 0)
	first.Body.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first: %d", first.StatusCode)
	}
	second := post("alice", 1)
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d, want 429", second.StatusCode)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Error("quota 429 missing Retry-After")
	}
	second.Body.Close()
	bob := post("bob", 2)
	bob.Body.Close()
	if bob.StatusCode != http.StatusOK {
		t.Fatalf("bob rejected: %d", bob.StatusCode)
	}
}

// TestBadPriorityHeader: an unknown X-Priority is a 400, not a silent default.
func TestBadPriorityHeader(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	raw, _ := json.Marshal(SimulateRequest{Benchmark: "gzip", Insts: 2000})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/simulate", bytes.NewReader(raw))
	req.Header.Set("X-Priority", "urgent")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestReadyzLifecycle: /readyz is 503 while draining; /healthz stays 200.
func TestReadyzLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	waitReady(t, s)
	ready := mustGet(t, ts.URL+"/readyz")
	ready.Body.Close()
	if ready.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", ready.StatusCode)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	drained := mustGet(t, ts.URL+"/readyz")
	doc := decodeBody[HealthResponse](t, drained)
	if drained.StatusCode != http.StatusServiceUnavailable || doc.Status != "draining" {
		t.Fatalf("/readyz after drain = %d %q, want 503 draining", drained.StatusCode, doc.Status)
	}
	alive := mustGet(t, ts.URL+"/healthz")
	alive.Body.Close()
	if alive.StatusCode != http.StatusOK {
		t.Fatalf("/healthz after drain = %d, want 200 (liveness)", alive.StatusCode)
	}
}

// ---- durable sweep jobs ----

// pollSweepJob waits for a sweep job to reach a terminal state.
func pollSweepJob(t *testing.T, baseURL, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp := mustGet(t, baseURL+"/v1/sweepjobs/"+id)
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("GET sweep job: status %d", resp.StatusCode)
		}
		job := decodeBody[JobView](t, resp)
		if job.Status == JobDone || job.Status == JobFailed {
			return job
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sweep job %s did not finish", id)
	return JobView{}
}

var testSweep = SweepRequest{
	Benchmark: "gzip", Insts: 5000,
	Widths: []int{2, 4}, Depths: []int{5}, ROBs: []int{32, 64},
}

// TestSweepJobLifecycle: submit, finish, fetch CSV; resubmission joins; the
// CSV survives into a fresh server life via the store.
func TestSweepJobLifecycle(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	s, ts := newTestServer(t, Options{Workers: 2, Store: st})
	waitReady(t, s)

	resp := postJSON(t, ts.URL+"/v1/sweepjobs", testSweep)
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	job := decodeBody[JobView](t, resp)
	if job.ID == "" || job.ID[0] != 's' {
		t.Fatalf("sweep job ID %q is not content-hashed", job.ID)
	}
	done := pollSweepJob(t, ts.URL, job.ID)
	if done.Status != JobDone {
		t.Fatalf("sweep job %s: %s", done.Status, done.Error)
	}
	var res SweepJobResult
	if err := json.Unmarshal(done.Result, &res); err != nil || res.Points != 4 {
		t.Fatalf("result %s (err %v), want 4 points", done.Result, err)
	}

	csvResp := mustGet(t, ts.URL+"/v1/sweepjobs/"+job.ID+"/csv")
	csv, _ := io.ReadAll(csvResp.Body)
	csvResp.Body.Close()
	if csvResp.StatusCode != http.StatusOK || !bytes.HasPrefix(csv, []byte("seq,width,depth,rob")) {
		t.Fatalf("csv: status %d body %q", csvResp.StatusCode, csv)
	}
	if n := bytes.Count(csv, []byte("\n")); n != 5 {
		t.Fatalf("csv has %d lines, want header + 4 rows:\n%s", n, csv)
	}

	// Re-submission joins idempotently (200, same ID, already done).
	again := postJSON(t, ts.URL+"/v1/sweepjobs", testSweep)
	joined := decodeBody[JobView](t, again)
	if again.StatusCode != http.StatusOK || joined.ID != job.ID {
		t.Fatalf("resubmit: status %d id %s, want 200 %s", again.StatusCode, joined.ID, job.ID)
	}

	// The journal must be retired after completion.
	ids, err := st.Journals()
	if err != nil || len(ids) != 0 {
		t.Fatalf("journals after done: %v %v", ids, err)
	}
}

// TestSweepJobResume is the crash-resume contract: journal a Begin plus a
// subset of committed points (as a SIGKILLed daemon would leave behind),
// then boot a server on that store and require it to resume the job, finish
// the remainder, and produce the identical CSV an uninterrupted run yields.
func TestSweepJobResume(t *testing.T) {
	// Uninterrupted reference run.
	refDir := t.TempDir()
	refStore := openTestStore(t, refDir)
	sRef, tsRef := newTestServer(t, Options{Workers: 2, Store: refStore})
	waitReady(t, sRef)
	refJob := decodeBody[JobView](t, postJSON(t, tsRef.URL+"/v1/sweepjobs", testSweep))
	if pollSweepJob(t, tsRef.URL, refJob.ID).Status != JobDone {
		t.Fatal("reference sweep failed")
	}
	refCSVResp := mustGet(t, tsRef.URL+"/v1/sweepjobs/"+refJob.ID+"/csv")
	refCSV, _ := io.ReadAll(refCSVResp.Body)
	refCSVResp.Body.Close()

	// Interrupted run: fabricate the post-SIGKILL state — a journal with
	// Begin and two of the four points committed, no Done.
	dir := t.TempDir()
	prep := openTestStore(t, dir)
	in, err := (&Server{opts: Options{}.withDefaults()}).resolveSweep(&testSweep)
	if err != nil {
		t.Fatal(err)
	}
	id := jobID("s", sweepKey(in))
	if id != refJob.ID {
		t.Fatalf("identity mismatch: %s vs %s", id, refJob.ID)
	}
	j, _, _, err := prep.OpenJournal(id)
	if err != nil {
		t.Fatal(err)
	}
	spec := sweepJobSpec{
		Benchmark: testSweep.Benchmark, Insts: in.insts,
		Widths: in.widths, Depths: in.depths, ROBs: in.robs, Mode: in.mode,
	}
	if _, err := j.Append(store.JournalBegin, mustJSON(spec)); err != nil {
		t.Fatal(err)
	}
	// Commit points 0 and 2 from the reference run's rows so resumed output
	// can only be byte-identical if resume skips them and computes 1 and 3.
	for _, line := range refRows(t, refCSV) {
		if line.Seq == 0 || line.Seq == 2 {
			if _, err := j.Append(store.JournalPoint, mustJSON(line)); err != nil {
				t.Fatal(err)
			}
		}
	}
	j.Close()
	prep.Close()

	st := openTestStore(t, dir)
	s, ts := newTestServer(t, Options{Workers: 2, Store: st})
	waitReady(t, s)
	if n := s.resumedJobs.Load(); n != 1 {
		t.Fatalf("resumed %d jobs, want 1", n)
	}
	done := pollSweepJob(t, ts.URL, id)
	if done.Status != JobDone {
		t.Fatalf("resumed job %s: %s", done.Status, done.Error)
	}
	csvResp := mustGet(t, ts.URL+"/v1/sweepjobs/"+id+"/csv")
	csv, _ := io.ReadAll(csvResp.Body)
	csvResp.Body.Close()
	if !bytes.Equal(csv, refCSV) {
		t.Fatalf("resumed CSV differs from uninterrupted run:\n--- resumed\n%s--- reference\n%s", csv, refCSV)
	}
}

// refRows reconstructs SweepPoint rows from a reference CSV (sim mode).
func refRows(t *testing.T, csv []byte) []SweepPoint {
	t.Helper()
	var rows []SweepPoint
	lines := bytes.Split(bytes.TrimSpace(csv), []byte("\n"))
	for _, ln := range lines[1:] {
		var pt SweepPoint
		n, err := fmt.Sscanf(string(ln), "%d,%d,%d,%d,%f,%f,%d",
			&pt.Seq, &pt.Width, &pt.Depth, &pt.ROB, &pt.IPC, &pt.AvgMispredictPenalty, &pt.Cycles)
		if err != nil || n != 7 {
			t.Fatalf("parse CSV row %q: %v", ln, err)
		}
		rows = append(rows, pt)
	}
	return rows
}
