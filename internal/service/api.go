// Package service implements intervalsimd's simulation-as-a-service layer:
// an HTTP JSON API over the interval-analysis substrate. Requests name a
// workload (a built-in suite benchmark or an inline generator config) and a
// machine (baseline knob overrides or a full configuration); the service
// runs them on a bounded worker pool and shares the two expensive
// intermediate artifacts — packed trace.SoA traces and miss-event overlays
// — across all requests through single-flight memo caches, so a thousand
// config-sweep queries over one workload pay for one trace generation and
// one speculation pre-pass.
//
// Production posture: admission control (a full queue rejects with 429 +
// Retry-After instead of buffering unboundedly), per-request deadlines wired
// into the simulator's context-cancellation watchdog, panic containment via
// the harness, graceful drain on shutdown, streaming NDJSON for sweeps, and
// an observability surface (/healthz, /metrics) with cache counters and
// request-latency quantiles.
package service

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"intervalsim/internal/bpred"
	"intervalsim/internal/experiments"
	"intervalsim/internal/uarch"
	"intervalsim/internal/vpred"
	"intervalsim/internal/workload"
)

// errBadRequest marks client errors: invalid JSON, unknown benchmarks,
// out-of-range sizes. Handlers map it to HTTP 400 and metrics count it
// under the bad_input outcome.
var errBadRequest = errors.New("service: bad request")

// MachineSpec selects the simulated machine: either knob overrides applied
// to the baseline design point (width/depth/rob, the axes every sweep in
// the repository uses, built by experiments.Point so a point means the same
// processor here and in cmd/sweep), or a complete uarch.Config for full
// control. Zero knobs inherit the baseline values. Pred swaps the branch
// predictor for a named preset (bpred.Preset: "tage", "2bc-gskew",
// "gshare", ...) on top of the knob axes; a full Config instead carries its
// predictor inline, so the two are mutually exclusive.
type MachineSpec struct {
	Width int    `json:"width,omitempty"`
	Depth int    `json:"depth,omitempty"`
	ROB   int    `json:"rob,omitempty"`
	Pred  string `json:"pred,omitempty"`
	// VPred enables value prediction with a named preset (vpred.Preset:
	// "last-value", "stride", "fcm"); the predictor's value stream is
	// resolved from the workload at admission. FetchRate in (0,1) enables
	// variable-rate fetch throttling on low branch confidence; 0 and 1 both
	// mean the classic full-rate frontend. Like Pred, both are knob-path
	// options and mutually exclusive with a full Config.
	VPred     string        `json:"vpred,omitempty"`
	FetchRate float64       `json:"fetchrate,omitempty"`
	Config    *uarch.Config `json:"config,omitempty"`
}

// resolvePred validates a predictor preset name at admission time, before
// any machine is built: an unknown name is a client error (HTTP 400), never
// a worker-side failure.
func resolvePred(name string) (uarch.PredictorSpec, error) {
	preset, ok := bpred.Preset(name)
	if !ok {
		return uarch.PredictorSpec{}, fmt.Errorf("%w: unknown predictor kind %q (want one of %s)",
			errBadRequest, name, strings.Join(bpred.PresetNames(), ", "))
	}
	return preset, nil
}

// resolveVPred validates a value-predictor preset name at admission time,
// mirroring resolvePred: an unknown name is a client error (HTTP 400), never
// a worker-side failure. The returned config carries a zero Stream; the
// caller fills it from the resolved workload.
func resolveVPred(name string) (vpred.Config, error) {
	preset, ok := vpred.Preset(name)
	if !ok {
		return vpred.Config{}, fmt.Errorf("%w: unknown value predictor kind %q (want one of %s)",
			errBadRequest, name, strings.Join(vpred.PresetNames(), ", "))
	}
	return preset, nil
}

// resolve builds and validates the concrete configuration.
func (m MachineSpec) resolve() (uarch.Config, error) {
	if m.Config != nil {
		if m.Width != 0 || m.Depth != 0 || m.ROB != 0 {
			return uarch.Config{}, fmt.Errorf("%w: give either knob overrides or a full config, not both", errBadRequest)
		}
		if m.Pred != "" {
			return uarch.Config{}, fmt.Errorf("%w: give either pred or a full config (which carries its own predictor), not both", errBadRequest)
		}
		if m.VPred != "" || m.FetchRate != 0 {
			return uarch.Config{}, fmt.Errorf("%w: give either vpred/fetchrate or a full config (which carries both fields), not both", errBadRequest)
		}
		cfg := *m.Config
		if cfg.Name == "" {
			cfg.Name = "custom"
		}
		if err := cfg.Validate(); err != nil {
			return uarch.Config{}, fmt.Errorf("%w: %v", errBadRequest, err)
		}
		return cfg, nil
	}
	base := uarch.Baseline()
	w, d, r := m.Width, m.Depth, m.ROB
	if w == 0 {
		w = base.DispatchWidth
	}
	if d == 0 {
		d = base.FrontendDepth
	}
	if r == 0 {
		r = base.ROBSize
	}
	cfg := experiments.Point(w, d, r)
	if m.Pred != "" {
		preset, err := resolvePred(m.Pred)
		if err != nil {
			return uarch.Config{}, err
		}
		cfg.Pred = preset
	}
	if m.VPred != "" {
		preset, err := resolveVPred(m.VPred)
		if err != nil {
			return uarch.Config{}, err
		}
		cfg.VPred = &preset
	}
	if m.FetchRate != 0 {
		if m.FetchRate < 0 || m.FetchRate > 1 {
			return uarch.Config{}, fmt.Errorf("%w: fetchrate %v outside (0, 1]", errBadRequest, m.FetchRate)
		}
		cfg.FetchRate = m.FetchRate
	}
	if err := cfg.Validate(); err != nil {
		return uarch.Config{}, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	return cfg, nil
}

// SimulateRequest asks for one cycle-level simulation. Exactly one of
// Benchmark (a suite name) or Workload (an inline generator config) selects
// the program.
type SimulateRequest struct {
	Benchmark string           `json:"benchmark,omitempty"`
	Workload  *workload.Config `json:"workload,omitempty"`
	Insts     int              `json:"insts,omitempty"`  // default 1,000,000
	Warmup    uint64           `json:"warmup,omitempty"` // instructions excluded from statistics
	Machine   MachineSpec      `json:"machine"`
	TimeoutMS int              `json:"timeout_ms,omitempty"` // per-job deadline override
}

// ModelRequest asks the analytic interval model for the same point — no
// cycle-level simulation, answered synchronously.
type ModelRequest = SimulateRequest

// simInputs is a fully resolved, validated request.
type simInputs struct {
	wc      workload.Config
	cfg     uarch.Config
	insts   int
	warmup  uint64
	timeout time.Duration
}

// resolveSimulate validates req against the server's limits.
func (s *Server) resolveSimulate(req *SimulateRequest) (simInputs, error) {
	var in simInputs
	switch {
	case req.Benchmark != "" && req.Workload != nil:
		return in, fmt.Errorf("%w: give exactly one of benchmark or workload", errBadRequest)
	case req.Benchmark != "":
		wc, ok := workload.SuiteConfig(req.Benchmark)
		if !ok {
			return in, fmt.Errorf("%w: unknown benchmark %q", errBadRequest, req.Benchmark)
		}
		in.wc = wc
	case req.Workload != nil:
		if err := req.Workload.Validate(); err != nil {
			return in, fmt.Errorf("%w: %v", errBadRequest, err)
		}
		in.wc = *req.Workload
	default:
		return in, fmt.Errorf("%w: give one of benchmark or workload", errBadRequest)
	}

	in.insts = req.Insts
	if in.insts == 0 {
		in.insts = 1_000_000
	}
	if in.insts < 1000 || in.insts > s.opts.MaxInsts {
		return in, fmt.Errorf("%w: insts %d outside [1000, %d]", errBadRequest, in.insts, s.opts.MaxInsts)
	}
	in.warmup = req.Warmup
	if in.warmup >= uint64(in.insts) {
		return in, fmt.Errorf("%w: warmup %d >= insts %d", errBadRequest, in.warmup, in.insts)
	}

	cfg, err := req.Machine.resolve()
	if err != nil {
		return in, err
	}
	// A value predictor's stream is a property of the workload; presets (and
	// full configs that leave Stream zero) pick it up from the resolved
	// workload here, exactly as cmd/sweep and the experiments do.
	if cfg.VPred != nil && cfg.VPred.Stream == (vpred.StreamConfig{}) {
		vp := *cfg.VPred
		vp.Stream = in.wc.ValueStream()
		cfg.VPred = &vp
	}
	in.cfg = cfg

	if req.TimeoutMS < 0 {
		return in, fmt.Errorf("%w: negative timeout_ms", errBadRequest)
	}
	in.timeout = s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		in.timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if in.timeout > s.opts.MaxTimeout {
			in.timeout = s.opts.MaxTimeout
		}
	}
	return in, nil
}

// SimulateResult is the JSON result of one cycle-level run: the aggregate
// statistics a characterization client consumes, plus the simulator path
// provenance so a silently degraded fast path is visible remotely too.
type SimulateResult struct {
	Benchmark string `json:"benchmark"`
	Machine   string `json:"machine"`

	Insts  uint64  `json:"insts"`
	Cycles uint64  `json:"cycles"`
	IPC    float64 `json:"ipc"`
	CPI    float64 `json:"cpi"`

	Mispredicts  uint64  `json:"mispredicts"`
	BranchMPKI   float64 `json:"branch_mpki"`
	ICacheMisses uint64  `json:"icache_misses"`
	ShortDMisses uint64  `json:"shortd_misses"`
	LongDMisses  uint64  `json:"longd_misses"`

	AvgMispredictPenalty float64 `json:"avg_mispredict_penalty"`

	Path     string `json:"path"`
	Fallback string `json:"fallback,omitempty"`
}

// newSimulateResult aggregates a uarch result into the API shape.
func newSimulateResult(in simInputs, res *uarch.Result) *SimulateResult {
	out := &SimulateResult{
		Benchmark:            in.wc.Name,
		Machine:              in.cfg.Name,
		Insts:                res.Insts,
		Cycles:               res.Cycles,
		IPC:                  res.IPC(),
		CPI:                  res.CPI(),
		Mispredicts:          res.Mispredicts,
		ICacheMisses:         res.ICacheMisses,
		ShortDMisses:         res.ShortDMisses,
		LongDMisses:          res.LongDMisses,
		AvgMispredictPenalty: res.AvgMispredictPenalty(),
		Path:                 res.Path,
		Fallback:             res.Fallback,
	}
	if res.Insts > 0 {
		out.BranchMPKI = float64(res.Mispredicts) / float64(res.Insts) * 1000
	}
	return out
}

// ModelResult is the analytic model's answer: the interval-analysis cycle
// stack and the predicted misprediction penalty, computed from the shared
// overlay with no cycle-level simulation.
type ModelResult struct {
	Benchmark string `json:"benchmark"`
	Machine   string `json:"machine"`

	Insts uint64  `json:"insts"`
	IPC   float64 `json:"ipc"`
	CPI   float64 `json:"cpi"`

	CPIBase     float64 `json:"cpi_base"`
	CPIBpred    float64 `json:"cpi_bpred"`
	CPIICache   float64 `json:"cpi_icache"`
	CPILongData float64 `json:"cpi_longd"`
	// CPIVMisspec is the value-misspeculation flush term, present only when
	// the machine value-predicts (omitempty keeps classic responses stable).
	CPIVMisspec float64 `json:"cpi_vmisspec,omitempty"`

	AvgMispredictPenalty float64 `json:"avg_mispredict_penalty"`
}

// SweepRequest asks for a grid of design points over one workload, streamed
// back as NDJSON (one SweepPoint per line, a SweepTrailer last). Empty axes
// default to the canonical cmd/sweep grid.
type SweepRequest struct {
	Benchmark string           `json:"benchmark,omitempty"`
	Workload  *workload.Config `json:"workload,omitempty"`
	Insts     int              `json:"insts,omitempty"`
	Warmup    uint64           `json:"warmup,omitempty"`
	Widths    []int            `json:"widths,omitempty"`
	Depths    []int            `json:"depths,omitempty"`
	ROBs      []int            `json:"robs,omitempty"`
	Pred      string           `json:"pred,omitempty"` // predictor preset for every point (default: baseline tournament)
	// VPred/FetchRate apply value prediction and variable-rate fetch to every
	// point, as in MachineSpec. Unknown presets and out-of-range rates are
	// rejected at admission.
	VPred     string  `json:"vpred,omitempty"`
	FetchRate float64 `json:"fetchrate,omitempty"`
	Mode      string  `json:"mode,omitempty"` // "sim" (default), "sampled", or "model"
	// SampleDetailed/SampleSkip are the systematic-sampling phase lengths
	// (sampled mode only; both must be positive). Warmup becomes the initial
	// functional skip of a sampled sweep.
	SampleDetailed uint64 `json:"sample_detailed,omitempty"`
	SampleSkip     uint64 `json:"sample_skip,omitempty"`
	TimeoutMS      int    `json:"timeout_ms,omitempty"` // per design point
}

// SweepPoint is one NDJSON line of a sweep stream, emitted in completion
// order (Seq is the point's index in canonical grid order). Failed points
// carry Error and Outcome instead of measurements.
type SweepPoint struct {
	Seq   int `json:"seq"`
	Width int `json:"width"`
	Depth int `json:"depth"`
	ROB   int `json:"rob"`

	IPC                  float64 `json:"ipc,omitempty"`
	AvgMispredictPenalty float64 `json:"avg_mispredict_penalty,omitempty"`
	Cycles               uint64  `json:"cycles,omitempty"`
	CPIBase              float64 `json:"cpi_base,omitempty"`
	CPIBpred             float64 `json:"cpi_bpred,omitempty"`
	CPIICache            float64 `json:"cpi_icache,omitempty"`
	CPILongData          float64 `json:"cpi_longd,omitempty"`
	CPIVMisspec          float64 `json:"cpi_vmisspec,omitempty"`

	// Sampled-mode confidence interval: the ratio-estimator CPI over the
	// measurement units with its Student-t bounds (see uarch.SampleStats).
	CPI         float64 `json:"cpi,omitempty"`
	CPILo       float64 `json:"cpi_lo,omitempty"`
	CPIHi       float64 `json:"cpi_hi,omitempty"`
	CPIRelErr   float64 `json:"cpi_rel_err,omitempty"`
	SampleUnits int     `json:"sample_units,omitempty"`

	Path     string `json:"path,omitempty"`
	Fallback string `json:"fallback,omitempty"`

	Error   string `json:"error,omitempty"`
	Outcome string `json:"outcome,omitempty"`
}

// SweepTrailer is the final NDJSON line of a sweep stream.
type SweepTrailer struct {
	Done    bool   `json:"done"`
	Points  int    `json:"points"`
	OK      int    `json:"ok"`
	Failed  int    `json:"failed"`
	Mode    string `json:"mode"`
	Elapsed string `json:"elapsed"`
}
