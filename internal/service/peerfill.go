package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"intervalsim/internal/bpred"
	icache "intervalsim/internal/cache"
	"intervalsim/internal/overlay"
	"intervalsim/internal/trace"
	"intervalsim/internal/vpred"
	"intervalsim/internal/workload"
)

// Fleet-native cache sharing. A daemon that needs a packed trace or an
// overlay first asks its peers (GET /v1/cache/{trace|overlay}/<fp>) before
// computing locally, so each expensive shared artifact is computed once per
// fleet instead of once per node. Artifacts are content-addressed: traces by
// the canonical-JSON SHA-256 of (workload config, insts) — the same identity
// scheme as the durable store's simKey — and overlays by the trace
// fingerprint plus overlay.SpecFingerprint. Fetches are single-flight (they
// run inside the memo caches' per-key locks), bounded in size, and
// checksum-verified by the wire decoders; any failure falls back to local
// computation, so peer fills can only ever save work, never corrupt it.
//
// Peer discovery is push-based: the cluster coordinator stamps every batch
// dispatch with an X-Peers header listing the other fleet endpoints, and the
// daemon adopts the most recent list. A static set can also be configured
// (intervalsimd -peers) for fleets without a coordinator.

// TraceFingerprint canonically names a generated workload trace: workloads
// are deterministic functions of (config, insts), so the canonical-JSON
// SHA-256 of the resolved pair content-addresses the packed SoA across the
// fleet. Same scheme and truncation as the durable store's job IDs.
func TraceFingerprint(wc workload.Config, insts int) string {
	raw, err := json.Marshal(struct {
		V        int             `json:"v"`
		Kind     string          `json:"kind"`
		Workload workload.Config `json:"workload"`
		Insts    int             `json:"insts"`
	}{V: keyVersion, Kind: "trace", Workload: wc, Insts: insts})
	if err != nil {
		panic(fmt.Sprintf("service: trace fingerprint marshal: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:16])
}

// overlayFP names an overlay: the trace it annotates plus the speculation
// configuration it was computed under.
func overlayFP(traceFP string, specFP uint64) string {
	return fmt.Sprintf("%s-%016x", traceFP, specFP)
}

// peerSet is the daemon's current view of its fleet peers: base URLs it may
// issue cache-fill GETs against. The coordinator refreshes it on every batch
// dispatch, so a rebalanced fleet converges without restarts.
type peerSet struct {
	mu   sync.RWMutex
	urls []string
}

func (p *peerSet) learn(urls []string) {
	clean := urls[:0:0]
	for _, u := range urls {
		if u = strings.TrimSuffix(strings.TrimSpace(u), "/"); u != "" {
			clean = append(clean, u)
		}
	}
	if len(clean) == 0 {
		return
	}
	p.mu.Lock()
	p.urls = clean
	p.mu.Unlock()
}

func (p *peerSet) snapshot() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.urls
}

func (p *peerSet) len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.urls)
}

// fillIndex is the daemon's serving side of peer fills: a bounded FIFO map
// from fingerprint to the live artifact, populated whenever a request
// resolves a trace or overlay through the shared caches (and by push-fills
// from peers). Entries pin their artifacts, so the bound doubles as a memory
// cap on top of the underlying caches' own bounds; an evicted fingerprint
// simply answers 404 and the peer computes locally.
type fillIndex struct {
	mu           sync.Mutex
	cap          int
	traces       map[string]*trace.SoA
	traceOrder   []string
	traceFPs     map[*trace.SoA]string
	overlays     map[string]*overlay.Overlay
	overlayOrder []string
}

func newFillIndex(capacity int) *fillIndex {
	return &fillIndex{
		cap:      capacity,
		traces:   make(map[string]*trace.SoA),
		traceFPs: make(map[*trace.SoA]string),
		overlays: make(map[string]*overlay.Overlay),
	}
}

func (x *fillIndex) putTrace(fp string, soa *trace.SoA) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, ok := x.traces[fp]; ok {
		return
	}
	for len(x.traceOrder) >= x.cap {
		old := x.traceOrder[0]
		x.traceOrder = x.traceOrder[1:]
		delete(x.traceFPs, x.traces[old])
		delete(x.traces, old)
	}
	x.traces[fp] = soa
	x.traceFPs[soa] = fp
	x.traceOrder = append(x.traceOrder, fp)
}

func (x *fillIndex) getTrace(fp string) *trace.SoA {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.traces[fp]
}

// traceFPOf reverse-maps a resident SoA to its fingerprint, so overlay
// lookups triggered with only the packed trace in hand can name the overlay
// without recomputing the workload identity.
func (x *fillIndex) traceFPOf(soa *trace.SoA) (string, bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	fp, ok := x.traceFPs[soa]
	return fp, ok
}

func (x *fillIndex) putOverlay(fp string, ov *overlay.Overlay) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, ok := x.overlays[fp]; ok {
		return
	}
	for len(x.overlayOrder) >= x.cap {
		old := x.overlayOrder[0]
		x.overlayOrder = x.overlayOrder[1:]
		delete(x.overlays, old)
	}
	x.overlays[fp] = ov
	x.overlayOrder = append(x.overlayOrder, fp)
}

func (x *fillIndex) getOverlay(fp string) *overlay.Overlay {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.overlays[fp]
}

// peerFillCounters tracks the fleet-sharing economics for /metrics. The
// computed counters are the honesty check: across a fleet,
// sum(traces_computed) and sum(overlays_computed) should equal the number of
// distinct artifacts — any excess is duplicated work peer sharing failed to
// avoid.
type peerFillCounters struct {
	traceFills       atomic.Uint64
	traceFillMisses  atomic.Uint64
	tracesComputed   atomic.Uint64
	overlayFills     atomic.Uint64
	overlayFillMiss  atomic.Uint64
	overlaysComputed atomic.Uint64
	bytesFetched     atomic.Uint64
	bytesServed      atomic.Uint64
	fillsServed      atomic.Uint64
	errors           atomic.Uint64
}

// PeerFillMetrics is the /metrics slice of the peer cache-fill layer.
type PeerFillMetrics struct {
	Peers int `json:"peers"`

	TraceFills      uint64 `json:"trace_fills"`       // traces obtained from a peer
	TraceFillMisses uint64 `json:"trace_fill_misses"` // peer lookups that found nothing
	TracesComputed  uint64 `json:"traces_computed"`   // traces generated locally

	OverlayFills      uint64 `json:"overlay_fills"`
	OverlayFillMisses uint64 `json:"overlay_fill_misses"`
	OverlaysComputed  uint64 `json:"overlays_computed"`

	BytesFetched uint64 `json:"bytes_fetched"`
	BytesServed  uint64 `json:"bytes_served"`
	FillsServed  uint64 `json:"fills_served"`
	Errors       uint64 `json:"errors"`
}

func (s *Server) peerFillMetrics() PeerFillMetrics {
	c := &s.pf
	return PeerFillMetrics{
		Peers:             s.peers.len(),
		TraceFills:        c.traceFills.Load(),
		TraceFillMisses:   c.traceFillMisses.Load(),
		TracesComputed:    c.tracesComputed.Load(),
		OverlayFills:      c.overlayFills.Load(),
		OverlayFillMisses: c.overlayFillMiss.Load(),
		OverlaysComputed:  c.overlaysComputed.Load(),
		BytesFetched:      c.bytesFetched.Load(),
		BytesServed:       c.bytesServed.Load(),
		FillsServed:       c.fillsServed.Load(),
		Errors:            c.errors.Load(),
	}
}

// learnPeers adopts the coordinator's fleet view from the X-Peers header
// (comma-separated base URLs of the other daemons). Absent or empty headers
// leave the current set alone, so a static -peers configuration survives
// requests from peer-unaware clients.
func (s *Server) learnPeers(r *http.Request) {
	if h := r.Header.Get("X-Peers"); h != "" {
		s.peers.learn(strings.Split(h, ","))
	}
}

// ---- fill clients (called under the memo caches' single-flight locks) ----

// fetchFillBody GETs one peer fill URL with the configured timeout and size
// bound. Returns (nil, false) on miss or any error; errors are counted but
// never propagated — the caller always has local computation to fall back to.
func (s *Server) fetchFillBody(url string) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), s.opts.PeerFillTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		s.pf.errors.Add(1)
		return nil, false
	}
	resp, err := s.fillHTTP.Do(req)
	if err != nil {
		s.pf.errors.Add(1)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		s.pf.errors.Add(1)
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, s.opts.MaxFillBytes+1))
	if err != nil || int64(len(body)) > s.opts.MaxFillBytes {
		s.pf.errors.Add(1)
		return nil, false
	}
	return body, true
}

// fetchPeerTrace tries each known peer for the packed trace named fp.
func (s *Server) fetchPeerTrace(fp string) *trace.SoA {
	peers := s.peers.snapshot()
	if len(peers) == 0 {
		return nil
	}
	for _, p := range peers {
		body, ok := s.fetchFillBody(p + "/v1/cache/trace/" + fp)
		if !ok {
			continue
		}
		soa, err := trace.DecodeWire(body, s.opts.MaxInsts)
		if err != nil {
			s.pf.errors.Add(1)
			continue
		}
		s.pf.bytesFetched.Add(uint64(len(body)))
		return soa
	}
	s.pf.traceFillMisses.Add(1)
	return nil
}

// vpredFP names a value-predictor configuration the way overlays do: 0 for
// the classic vpred-less machine.
func vpredFP(vp *vpred.Config) uint64 {
	if vp == nil {
		return 0
	}
	return vp.Fingerprint()
}

// fetchPeerOverlay tries each known peer for the overlay named fp, and
// verifies the frame was computed over exactly (traceFP, specFP) — including
// the value-predictor fingerprint — before attaching it to the local soa.
func (s *Server) fetchPeerOverlay(fp, traceFP string, soa *trace.SoA, pred bpred.Config, mem icache.HierarchyConfig, vp *vpred.Config) *overlay.Overlay {
	peers := s.peers.snapshot()
	if len(peers) == 0 {
		return nil
	}
	for _, p := range peers {
		body, ok := s.fetchFillBody(p + "/v1/cache/overlay/" + fp)
		if !ok {
			continue
		}
		ov, err := overlay.DecodeWire(body, traceFP, soa)
		if err != nil || ov.PredFP != pred.Fingerprint() || ov.MemFP != mem.Fingerprint() ||
			ov.VPredFP != vpredFP(vp) {
			s.pf.errors.Add(1)
			continue
		}
		s.pf.bytesFetched.Add(uint64(len(body)))
		return ov
	}
	s.pf.overlayFillMiss.Add(1)
	return nil
}

// ---- fill-through cache accessors (replace direct SharedTrace/Get calls) ----

// sharedTrace resolves (wc, insts) through the server's trace cache with the
// peer-fill path: local cache, then push-fill index, then peers, then local
// generation. The fill hook runs inside the cache's per-key single flight,
// so a fleet-wide artifact is fetched (or generated) at most once per daemon
// however many requests race on it.
func (s *Server) sharedTrace(wc workload.Config, insts int) (*trace.Trace, *trace.SoA, error) {
	fp := TraceFingerprint(wc, insts)
	tr, soa, err := s.traces.SharedVia(wc, insts, func() *trace.SoA {
		if soa := s.fills.getTrace(fp); soa != nil {
			s.pf.traceFills.Add(1) // push-filled by a peer earlier
			return soa
		}
		if soa := s.fetchPeerTrace(fp); soa != nil {
			s.pf.traceFills.Add(1)
			return soa
		}
		s.pf.tracesComputed.Add(1)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	s.fills.putTrace(fp, soa)
	return tr, soa, nil
}

// overlayFor resolves the overlay of (soa, pred, mem, vp) through the
// server's overlay cache with the peer-fill path. soa must have come from
// sharedTrace (which indexes its fingerprint); otherwise the lookup degrades
// gracefully to the plain compute-locally path. A nil vp resolves the
// classic overlay under its historical fingerprint; a value-predicting
// machine gets its own fleet-wide artifact (v2 wire frames carry VPredFP, so
// peers exchange these too).
func (s *Server) overlayFor(soa *trace.SoA, pred bpred.Config, mem icache.HierarchyConfig, vp *vpred.Config) (*overlay.Overlay, error) {
	traceFP, known := s.fills.traceFPOf(soa)
	if !known {
		return s.overlays.GetSpec(soa, pred, mem, vp)
	}
	fp := overlayFP(traceFP, overlay.SpecFingerprintV(pred, mem, vp))
	ov, err := s.overlays.GetSpecVia(soa, pred, mem, vp, func() (*overlay.Overlay, error) {
		if ov := s.fills.getOverlay(fp); ov != nil && ov.Trace == soa {
			s.pf.overlayFills.Add(1)
			return ov, nil
		}
		if ov := s.fetchPeerOverlay(fp, traceFP, soa, pred, mem, vp); ov != nil {
			s.pf.overlayFills.Add(1)
			return ov, nil
		}
		s.pf.overlaysComputed.Add(1)
		return overlay.ComputeSpec(soa, pred, mem, vp)
	})
	if err != nil {
		return nil, err
	}
	s.fills.putOverlay(fp, ov)
	return ov, nil
}

// ---- fill HTTP handlers ----

// validFP loosely validates a fingerprint path segment (hex plus the overlay
// separator) so arbitrary strings cannot grow the maps through push-fills.
func validFP(fp string) bool {
	if len(fp) == 0 || len(fp) > maxTraceFPLenWire {
		return false
	}
	for i := 0; i < len(fp); i++ {
		c := fp[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c == '-') {
			return false
		}
	}
	return true
}

const maxTraceFPLenWire = 64 // 32 hex trace fp + "-" + 16 hex spec fp fits

func (s *Server) handleTraceFillGet(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	soa := s.fills.getTrace(fp)
	if soa == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "trace not resident"})
		return
	}
	body := soa.EncodeWire()
	s.pf.bytesServed.Add(uint64(len(body)))
	s.pf.fillsServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(body) //nolint:errcheck // nothing to do for a dead peer
}

func (s *Server) handleTraceFillPut(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if !validFP(fp) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad fingerprint"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxFillBytes+1))
	if err != nil || int64(len(body)) > s.opts.MaxFillBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "fill too large"})
		return
	}
	soa, err := trace.DecodeWire(body, s.opts.MaxInsts)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	s.fills.putTrace(fp, soa)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleOverlayFillGet(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	ov := s.fills.getOverlay(fp)
	if ov == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "overlay not resident"})
		return
	}
	traceFP, ok := s.fills.traceFPOf(ov.Trace)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "overlay trace no longer resident"})
		return
	}
	body := ov.EncodeWire(traceFP)
	s.pf.bytesServed.Add(uint64(len(body)))
	s.pf.fillsServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(body) //nolint:errcheck
}

func (s *Server) handleOverlayFillPut(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if !validFP(fp) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad fingerprint"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxFillBytes+1))
	if err != nil || int64(len(body)) > s.opts.MaxFillBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "fill too large"})
		return
	}
	// An overlay only means something relative to its trace; the push is
	// accepted only when the named trace is already resident, so the code
	// bytes can be validated against (and attached to) the local SoA.
	dash := strings.LastIndexByte(fp, '-')
	if dash < 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad overlay fingerprint"})
		return
	}
	traceFP := fp[:dash]
	soa := s.fills.getTrace(traceFP)
	if soa == nil {
		writeJSON(w, http.StatusConflict, errorResponse{Error: "trace not resident; push the trace first"})
		return
	}
	ov, err := overlay.DecodeWire(body, traceFP, soa)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	s.fills.putOverlay(fp, ov)
	w.WriteHeader(http.StatusNoContent)
}

// defaultPeerFillTimeout bounds one peer fetch; generous relative to LAN
// transfer of the largest default artifact but far below recompute cost.
const defaultPeerFillTimeout = 30 * time.Second
