package faultinject

import (
	"intervalsim/internal/store"
)

// FS wraps base so every file write runs through the injector's fault
// schedule. Reads, directory operations, truncation, and atomic WriteFile
// replacement pass through untouched: the recovery contract under test is
// about torn appends, and those other operations either have their own
// atomicity story (rename) or are the recovery mechanism itself.
func (in *Injector) FS(base store.FS) store.FS {
	if base == nil {
		base = store.OS
	}
	return &faultFS{in: in, base: base}
}

type faultFS struct {
	in   *Injector
	base store.FS
}

func (f *faultFS) OpenFile(path string) (store.File, int64, error) {
	file, size, err := f.base.OpenFile(path)
	if err != nil {
		return nil, 0, err
	}
	return &faultFile{in: f.in, base: file}, size, nil
}

func (f *faultFS) Truncate(path string, size int64) error { return f.base.Truncate(path, size) }
func (f *faultFS) WriteFile(path string, b []byte) error  { return f.base.WriteFile(path, b) }
func (f *faultFS) Remove(path string) error               { return f.base.Remove(path) }
func (f *faultFS) MkdirAll(path string) error             { return f.base.MkdirAll(path) }
func (f *faultFS) ReadDir(dir string) ([]string, error)   { return f.base.ReadDir(dir) }

// faultFile injects write and sync failures on one handle.
type faultFile struct {
	in   *Injector
	base store.File
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) { return f.base.ReadAt(p, off) }

// Write applies the injector's decision: pass through, fail with nothing
// written, or land a strict prefix and then fail — the torn-write case a
// power cut produces, which the log layer must detect and truncate on the
// next open.
func (f *faultFile) Write(p []byte) (int, error) {
	d := f.in.decideWrite(len(p))
	if !d.fail {
		return f.base.Write(p)
	}
	if d.keep > 0 {
		n, err := f.base.Write(p[:d.keep])
		if err != nil {
			return n, err
		}
		return n, injectedErr("torn write")
	}
	return 0, injectedErr("write")
}

func (f *faultFile) Sync() error {
	if f.in.decideSync() {
		return injectedErr("sync")
	}
	return f.base.Sync()
}

func (f *faultFile) Close() error { return f.base.Close() }
