package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Transport wraps base (nil = http.DefaultTransport) so every round trip
// runs through the injector's fault schedule: added latency, outright
// transport errors, and synthetic 429 admission pushback carrying a
// Retry-After header — the three failure shapes the cluster coordinator's
// retry/backoff/steal machinery must absorb. Latency honors the request
// context, so per-dispatch deadlines still fire.
func (in *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{in: in, base: base}
}

type faultTransport struct {
	in   *Injector
	base http.RoundTripper
}

// rpcDecision is the fate of one round trip.
type rpcDecision struct {
	delay    time.Duration
	fail     bool
	throttle bool
}

func (in *Injector) decideRPC() rpcDecision {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.RPCs++
	var d rpcDecision
	if in.src.Bool(in.cfg.RPCLatencyP) {
		span := in.cfg.RPCLatency.MaxMS - in.cfg.RPCLatency.MinMS
		ms := in.cfg.RPCLatency.MinMS
		if span > 0 {
			ms += in.src.Intn(span + 1)
		}
		if ms > 0 {
			d.delay = time.Duration(ms) * time.Millisecond
			in.stats.Delays++
		}
	}
	switch {
	case in.src.Bool(in.cfg.RPCErrProb):
		in.stats.RPCErrs++
		d.fail = true
	case in.src.Bool(in.cfg.RPC429Prob):
		in.stats.RPC429s++
		d.throttle = true
	}
	return d
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.in.decideRPC()
	if d.delay > 0 {
		timer := time.NewTimer(d.delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	switch {
	case d.fail:
		return nil, fmt.Errorf("faultinject: %s %s: %w", req.Method, req.URL.Path, injectedErr("rpc"))
	case d.throttle:
		return synthetic429(req), nil
	}
	return t.base.RoundTrip(req)
}

// synthetic429 builds the response an overloaded daemon would send. The
// body is drained by clients exactly like a real rejection.
func synthetic429(req *http.Request) *http.Response {
	body := []byte(`{"error":"faultinject: injected admission rejection"}`)
	h := http.Header{}
	h.Set("Content-Type", "application/json")
	h.Set("Retry-After", strconv.Itoa(1))
	return &http.Response{
		Status:        "429 Too Many Requests",
		StatusCode:    http.StatusTooManyRequests,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
