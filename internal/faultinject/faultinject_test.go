package faultinject

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"intervalsim/internal/store"
)

// TestTornWriteRecovery is the store's torn-write acceptance test: hammer a
// store through a fault-injecting filesystem that tears and fails writes,
// then reopen on the clean filesystem and require every acknowledged Put to
// be served and every unacknowledged one to have vanished with the tail.
// Many seeds, so the torn prefix lands on frame headers, bodies, and
// checksums alike.
func TestTornWriteRecovery(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			inj := New(seed, Config{WriteErrProb: 0.15, TornWriteProb: 0.25, SyncErrProb: 0.05})

			s, err := store.Open(inj.FS(store.OS), dir)
			if err != nil {
				// The very first header write can be injected; that is a
				// failed open, not a durability violation.
				t.Skipf("open failed under injection (seed %d): %v", seed, err)
			}
			acked := map[string]string{}
			attempted := map[string]string{}
			for i := 0; i < 60; i++ {
				k, v := fmt.Sprintf("key-%03d", i), fmt.Sprintf("value-%03d", i)
				attempted[k] = v
				if err := s.Put([]byte(k), []byte(v)); err == nil {
					acked[k] = v
				}
			}
			st := inj.Stats()
			if st.WriteErrs+st.TornWrites == 0 {
				t.Fatalf("seed %d injected no write faults; test is vacuous", seed)
			}
			// Crash: no Close, no index snapshot.

			s2, err := store.Open(store.OS, dir)
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer s2.Close()
			for k, v := range acked {
				got, ok, err := s2.Get([]byte(k))
				if err != nil || !ok || string(got) != v {
					t.Fatalf("acknowledged key %s lost after recovery: %q %v %v", k, got, ok, err)
				}
			}
			// Unacknowledged puts may legitimately survive (a failed fsync
			// does not un-write the frame) — but anything served must carry
			// exactly the bytes that were attempted, never a blend.
			if s2.Len() > len(attempted) {
				t.Fatalf("store serves %d keys but only %d were attempted", s2.Len(), len(attempted))
			}
			for k, v := range attempted {
				if got, ok, err := s2.Get([]byte(k)); err != nil {
					t.Fatal(err)
				} else if ok && string(got) != v {
					t.Fatalf("key %s recovered with corrupt value %q (want %q)", k, got, v)
				}
			}
		})
	}
}

// TestJournalTornWriteRecovery does the same for job journals: records
// acknowledged under fault injection survive reopen; the torn tail does not.
func TestJournalTornWriteRecovery(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		dir := t.TempDir()
		inj := New(seed, Config{TornWriteProb: 0.3})
		s, err := store.Open(inj.FS(store.OS), dir)
		if err != nil {
			continue
		}
		j, _, _, err := s.OpenJournal("s00deadbeef")
		if err != nil {
			continue
		}
		acked := 0
		for i := 0; i < 40; i++ {
			if _, err := j.Append(store.JournalPoint, []byte(fmt.Sprintf(`{"seq":%d}`, i))); err == nil {
				acked++
			}
		}
		// Crash; reopen clean.
		s2, err := store.Open(store.OS, dir)
		if err != nil {
			t.Fatalf("seed %d: recovery open: %v", seed, err)
		}
		_, recs, info, err := s2.OpenJournal("s00deadbeef")
		if err != nil {
			t.Fatalf("seed %d: journal reopen: %v", seed, err)
		}
		if len(recs) < acked {
			t.Fatalf("seed %d: %d acknowledged records, only %d recovered (info %+v)", seed, acked, len(recs), info)
		}
		s2.Close()
	}
}

// TestDeterminism: the same seed must produce the identical fault schedule.
func TestDeterminism(t *testing.T) {
	run := func() (Stats, []error) {
		inj := New(42, Config{WriteErrProb: 0.2, TornWriteProb: 0.2, SyncErrProb: 0.1})
		fs := inj.FS(store.OS)
		dir := t.TempDir()
		f, _, err := fs.OpenFile(dir + "/f")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var errs []error
		for i := 0; i < 50; i++ {
			_, werr := f.Write([]byte("0123456789abcdef"))
			errs = append(errs, werr, f.Sync())
		}
		return inj.Stats(), errs
	}
	s1, e1 := run()
	s2, e2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	for i := range e1 {
		if (e1[i] == nil) != (e2[i] == nil) {
			t.Fatalf("decision %d diverged: %v vs %v", i, e1[i], e2[i])
		}
	}
}

// TestTransportInjection: forced failures and 429s surface as configured,
// marked with ErrInjected, and pass-through requests reach the backend.
func TestTransportInjection(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer backend.Close()

	inj := New(7, Config{RPCErrProb: 0.3, RPC429Prob: 0.3})
	client := &http.Client{Transport: inj.Transport(nil)}
	var errs, throttled, ok int
	for i := 0; i < 100; i++ {
		resp, err := client.Get(backend.URL)
		switch {
		case err != nil:
			if !errors.Is(err, ErrInjected) {
				// http.Client wraps the transport error; unwrap textually.
				if ue := errors.Unwrap(err); ue == nil || !errors.Is(ue, ErrInjected) {
					t.Fatalf("unexpected error type: %v", err)
				}
			}
			errs++
		case resp.StatusCode == http.StatusTooManyRequests:
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("synthetic 429 lacks Retry-After")
			}
			resp.Body.Close()
			throttled++
		default:
			resp.Body.Close()
			ok++
		}
	}
	if errs == 0 || throttled == 0 || ok == 0 {
		t.Fatalf("injection mix degenerate: errs=%d throttled=%d ok=%d", errs, throttled, ok)
	}
	st := inj.Stats()
	if st.RPCErrs != errs || st.RPC429s != throttled || st.RPCs != 100 {
		t.Fatalf("stats %+v disagree with observations errs=%d throttled=%d", st, errs, throttled)
	}
}
