// Package faultinject is a deterministic, seed-driven fault layer for
// exercising recovery paths in tests. It wraps the two interfaces the
// durability and fleet code already depend on — store.FS for filesystem
// operations and http.RoundTripper for daemon RPCs — and injects failures
// with configured probabilities: outright write errors, torn (partial)
// writes, fsync failures, transport errors, added latency, and forced 429
// admission pushback.
//
// Every decision is drawn from one seeded internal/rng source in call
// order, so a single-goroutine test replays the identical fault schedule
// from the same seed, and a failure report ("seed 17 broke recovery") is
// reproducible. Nothing in this package is wired into production binaries;
// it exists so the store's truncated-tail recovery, the service's journal
// replay, and the cluster coordinator's retry/steal machinery are verified
// by tests rather than only by the CI SIGKILL smoke job.
package faultinject

import (
	"errors"
	"fmt"
	"sync"

	"intervalsim/internal/rng"
)

// ErrInjected is the root of every synthetic failure, so tests can assert
// a fault was injected (errors.Is) rather than a genuine one.
var ErrInjected = errors.New("faultinject: injected fault")

// Config sets per-operation fault probabilities; zero means never.
type Config struct {
	// Filesystem faults (Injector.FS).
	WriteErrProb  float64 // write fails, no bytes land
	TornWriteProb float64 // write lands a strict prefix, then fails
	SyncErrProb   float64 // fsync fails (already-written bytes stay)

	// Transport faults (Injector.Transport).
	RPCErrProb  float64 // round trip fails with a transport error
	RPC429Prob  float64 // round trip is answered by a synthetic 429
	RPCLatencyP float64 // probability of added latency before dispatch
	RPCLatency  Latency // how much latency to add when it fires
}

// Latency is a bounded synthetic delay in milliseconds, sampled uniformly
// in [MinMS, MaxMS].
type Latency struct {
	MinMS int
	MaxMS int
}

// Stats counts what the injector actually did.
type Stats struct {
	Writes     int // fs writes observed
	WriteErrs  int
	TornWrites int
	SyncErrs   int
	RPCs       int // round trips observed
	RPCErrs    int
	RPC429s    int
	Delays     int
}

// Injector makes seeded fault decisions. One injector may back both an FS
// and a Transport; decisions interleave in call order under one lock.
type Injector struct {
	mu    sync.Mutex
	cfg   Config
	src   *rng.Source
	stats Stats
}

// New returns an injector whose whole schedule derives from seed.
func New(seed uint64, cfg Config) *Injector {
	return &Injector{cfg: cfg, src: rng.New(seed)}
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Disarm zeroes all probabilities: subsequent operations pass through
// untouched. Tests use it to stop the fault storm before verifying
// recovery.
func (in *Injector) Disarm() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.cfg = Config{}
}

// writeDecision is the fate of one fs write of n bytes.
type writeDecision struct {
	fail bool
	keep int // bytes that land before the failure (torn write)
}

// decideWrite draws the fate of an n-byte write.
func (in *Injector) decideWrite(n int) writeDecision {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Writes++
	switch {
	case in.src.Bool(in.cfg.WriteErrProb):
		in.stats.WriteErrs++
		return writeDecision{fail: true}
	case n > 1 && in.src.Bool(in.cfg.TornWriteProb):
		in.stats.TornWrites++
		return writeDecision{fail: true, keep: 1 + in.src.Intn(n-1)}
	}
	return writeDecision{}
}

// decideSync draws the fate of one fsync.
func (in *Injector) decideSync() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.src.Bool(in.cfg.SyncErrProb) {
		in.stats.SyncErrs++
		return true
	}
	return false
}

// injectedErr labels a synthetic failure with its operation.
func injectedErr(op string) error { return fmt.Errorf("%w: %s", ErrInjected, op) }
