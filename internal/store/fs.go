// Package store is intervalsimd's durability layer: a persistent,
// content-addressed result store plus crash-safe job journals, built on one
// append-only record log format.
//
// The format is deliberately simple enough to reason about under power loss:
// every file is a fixed 8-byte magic header followed by length-prefixed,
// CRC-protected records, appended with fsync'd boundaries. A crash can only
// ever leave a *suffix* of the file torn; Open detects the first record that
// fails its length or checksum and truncates the tail, so every record that
// was ever acknowledged (Append returned) survives and nothing half-written
// is ever served. Recovery is exercised directly by fault-injection tests
// (package faultinject), not just by the CI SIGKILL smoke job.
//
// Identity is content-addressed: the store maps canonical key bytes — the
// service builds them from the (workload, uarch config, predictor/cache
// fingerprint) identity that package overlay already canonicalizes — to
// result bytes. Lookups verify full key equality, so a 64-bit index hash
// collision degrades to a miss, never to a wrong answer.
package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is the handle the log layer needs: random-access reads, appends at
// the current end, and durable flush. *os.File satisfies it; the
// fault-injection layer wraps it to tear writes and fail syncs.
type File interface {
	io.ReaderAt
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem surface the store runs on. Production code uses OS;
// tests substitute a fault-injecting wrapper to exercise the recovery paths
// deterministically.
type FS interface {
	// OpenFile opens path for reading and appending, creating it if absent,
	// and returns the handle plus the current size.
	OpenFile(path string) (File, int64, error)
	// Truncate cuts path to size bytes (used to discard torn tails).
	Truncate(path string, size int64) error
	// WriteFile atomically replaces path with data (write temp + rename), so
	// a crash never leaves a half-written file under the final name.
	WriteFile(path string, data []byte) error
	// Remove deletes path.
	Remove(path string) error
	// MkdirAll creates the directory path and any missing parents.
	MkdirAll(path string) error
	// ReadDir lists the file names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
}

// osFS is the real filesystem.
type osFS struct{}

// OS is the production FS.
var OS FS = osFS{}

func (osFS) OpenFile(path string) (File, int64, error) {
	// O_APPEND, not a seek: every write lands at the *current* end of file,
	// so truncating a torn tail (by path) repositions subsequent appends
	// automatically. Reads use pread and are unaffected.
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, st.Size(), nil
}

func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (osFS) WriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// readRange reads [off, off+n) from f, tolerating a short tail: it returns
// whatever prefix was readable. Only a real I/O error is reported.
func readRange(f File, off, n int64) ([]byte, error) {
	buf := make([]byte, n)
	read, err := f.ReadAt(buf, off)
	if err != nil && err != io.EOF {
		return nil, err
	}
	return buf[:read], nil
}

// ensureDir is a small helper shared by Open paths.
func ensureDir(fs FS, dir string) error {
	if err := fs.MkdirAll(dir); err != nil {
		return fmt.Errorf("store: mkdir %s: %w", dir, err)
	}
	return nil
}

// join keeps path building in one place so FS implementations only ever see
// slash-joined paths under the store root.
func join(parts ...string) string { return filepath.Join(parts...) }
