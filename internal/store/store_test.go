package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestLogRoundTripAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	l, recs, info, err := OpenLog(OS, path, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || info.Records != 0 {
		t.Fatalf("fresh log has records: %v %v", recs, info)
	}
	payloads := [][]byte{[]byte("alpha"), []byte(""), bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		if _, err := l.Append(uint8(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs, info, err := OpenLog(OS, path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.TruncatedBytes != 0 {
		t.Fatalf("clean log reported truncation: %+v", info)
	}
	if len(recs) != len(payloads) {
		t.Fatalf("got %d records, want %d", len(recs), len(payloads))
	}
	for i, r := range recs {
		if r.Kind != uint8(i+1) || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d mismatch: kind %d payload %q", i, r.Kind, r.Payload)
		}
		rr, err := l2.ReadAt(r.Offset)
		if err != nil || !bytes.Equal(rr.Payload, payloads[i]) {
			t.Fatalf("ReadAt(%d): %v %q", r.Offset, err, rr.Payload)
		}
	}
}

// TestLogTornTailRecovery appends garbage suffixes of every flavor — short
// frame header, truncated body, corrupted checksum — and requires reopen to
// keep all committed records and discard exactly the tail.
func TestLogTornTailRecovery(t *testing.T) {
	taints := []struct {
		name string
		tail []byte
	}{
		{"short_header", []byte{0x05, 0x00}},
		{"truncated_body", []byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}},
		{"bad_crc", []byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x41, 0x42}},
		{"zero_len", []byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}},
		{"absurd_len", []byte{0xff, 0xff, 0xff, 0x7f, 0x00, 0x00, 0x00, 0x00, 0x41}},
	}
	for _, tc := range taints {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "x.log")
			l, _, _, err := OpenLog(OS, path, true)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if _, err := l.Append(1, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			good := l.Size()
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			l2, recs, info, err := OpenLog(OS, path, true)
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if len(recs) != 5 {
				t.Fatalf("recovered %d records, want 5", len(recs))
			}
			if info.TruncatedBytes != int64(len(tc.tail)) {
				t.Fatalf("truncated %d bytes, want %d", info.TruncatedBytes, len(tc.tail))
			}
			if l2.Size() != good {
				t.Fatalf("size %d after recovery, want %d", l2.Size(), good)
			}
			// The log must be appendable after recovery and stay clean.
			if _, err := l2.Append(2, []byte("after")); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLogRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	if err := os.WriteFile(path, []byte("this is not a log file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenLog(OS, path, true); err == nil {
		t.Fatal("OpenLog accepted a foreign file")
	}
}

func TestStorePutGetPersist(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	kv := map[string]string{
		"key-a": "value-a",
		"key-b": `{"ipc":1.25,"cycles":1000}`,
		"key-c": "",
	}
	for k, v := range kv {
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	// Re-put replaces.
	if err := s.Put([]byte("key-a"), []byte("value-a2")); err != nil {
		t.Fatal(err)
	}
	kv["key-a"] = "value-a2"
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	check := func(s *Store) {
		t.Helper()
		for k, v := range kv {
			got, ok, err := s.Get([]byte(k))
			if err != nil || !ok || string(got) != v {
				t.Fatalf("Get(%s) = %q %v %v, want %q", k, got, ok, err, v)
			}
		}
		if _, ok, err := s.Get([]byte("absent")); ok || err != nil {
			t.Fatalf("Get(absent) = %v %v", ok, err)
		}
	}
	check(s)
	st := s.StatsSnapshot()
	if st.Puts != 4 || st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: index snapshot fast path (written by Close).
	s2, err := Open(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.StatsSnapshot().IndexRebuilt {
		t.Fatal("reopen after clean Close rebuilt the index")
	}
	check(s2)
	s2.Close()

	// Delete the index: full rescan must agree.
	if err := os.Remove(filepath.Join(dir, indexName)); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if !s3.StatsSnapshot().IndexRebuilt {
		t.Fatal("missing index did not trigger a rebuild")
	}
	check(s3)
}

// TestStoreStaleIndex crashes "between" segment append and index rewrite:
// the index snapshot covers a prefix, later puts live only in the segment.
// Open must serve both the indexed prefix and the scanned suffix.
func TestStoreStaleIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("old"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // snapshots the index covering "old"
		t.Fatal(err)
	}
	s, err = Open(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("new"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	// Simulate SIGKILL: no Close, so the index still only covers "old".
	s.seg.Close()

	s2, err := Open(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.StatsSnapshot().IndexRebuilt {
		t.Fatal("valid stale index was rejected")
	}
	for k, v := range map[string]string{"old": "1", "new": "2"} {
		got, ok, err := s2.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("Get(%s) = %q %v %v", k, got, ok, err)
		}
	}
}

func TestStoreCorruptIndexFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	idx := filepath.Join(dir, indexName)
	raw, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(idx, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.StatsSnapshot().IndexRebuilt {
		t.Fatal("corrupt index was trusted")
	}
	got, ok, err := s2.Get([]byte("k"))
	if err != nil || !ok || string(got) != "v" {
		t.Fatalf("Get(k) = %q %v %v", got, ok, err)
	}
}

func TestJournalLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	j, recs, _, err := s.OpenJournal("s0011223344556677")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	if _, err := j.Append(JournalBegin, []byte(`{"spec":1}`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := j.Append(JournalPoint, []byte(fmt.Sprintf(`{"seq":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	ids, err := s.Journals()
	if err != nil || len(ids) != 1 || ids[0] != "s0011223344556677" {
		t.Fatalf("Journals = %v, %v", ids, err)
	}
	j2, recs, _, err := s.OpenJournal(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[0].Kind != JournalBegin || recs[3].Kind != JournalPoint {
		t.Fatalf("replayed %d records, kinds %v", len(recs), recs)
	}
	if _, err := j2.Append(JournalDone, nil); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	if err := s.RemoveJournal(ids[0]); err != nil {
		t.Fatal(err)
	}
	if ids, _ := s.Journals(); len(ids) != 0 {
		t.Fatalf("journal survived removal: %v", ids)
	}
}
