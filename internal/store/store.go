package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strings"
	"sync"
)

// Store layout under one directory:
//
//	results.seg   append-only log of result records (kind recordResult,
//	              body = u16 keyLen | key | value)
//	results.idx   sidecar index: a snapshot of (hash, offset, length)
//	              triples covering a prefix of the segment, rewritten
//	              atomically on Close and every indexEvery puts
//	jobs/<id>.log one journal per durable job (see Journal kinds)
//
// The segment is the source of truth; the index only makes reopening cheap.
// Open loads the index if it validates, scans the (normally tiny) segment
// suffix the index does not cover, and falls back to a full scan when the
// index is missing, stale, or damaged — so deleting results.idx is always
// safe, and a crash between segment append and index rewrite costs nothing.

const (
	recordResult uint8 = 1

	segmentName = "results.seg"
	indexName   = "results.idx"
	jobsDir     = "jobs"

	// indexEvery bounds how much un-indexed segment suffix a crash can leave
	// behind (the suffix is re-scanned on open, so this is a reopen-latency
	// knob, not a durability one).
	indexEvery = 256
)

var idxMagic = [8]byte{'I', 'S', 'I', 'D', 'X', '1', '\r', '\n'}

// idxEnt locates one result record in the segment.
type idxEnt struct {
	off  int64
	hash uint64
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Puts   uint64 `json:"puts"`

	Records int `json:"records"` // distinct keys resident

	// Recovery provenance from the last Open.
	RecoveredRecords int   `json:"recovered_records"`
	TruncatedBytes   int64 `json:"truncated_bytes"`
	IndexRebuilt     bool  `json:"index_rebuilt"` // index was absent/stale; segment fully rescanned
}

// Store is a durable, content-addressed result store. All methods are safe
// for concurrent use.
type Store struct {
	fs  FS
	dir string

	mu        sync.Mutex
	seg       *Log
	index     map[uint64][]idxEnt // key hash -> candidate records
	records   int
	unindexed int // puts since the last index snapshot
	stats     Stats
	closed    bool
}

// Open opens (or initializes) the store rooted at dir on fs (nil fs = OS).
// It recovers the segment — truncating any torn tail — and rebuilds or
// fast-loads the index.
func Open(fs FS, dir string) (*Store, error) {
	if fs == nil {
		fs = OS
	}
	if err := ensureDir(fs, dir); err != nil {
		return nil, err
	}
	if err := ensureDir(fs, join(dir, jobsDir)); err != nil {
		return nil, err
	}
	s := &Store{fs: fs, dir: dir, index: make(map[uint64][]idxEnt)}

	seg, records, info, err := OpenLog(fs, join(dir, segmentName), true)
	if err != nil {
		return nil, err
	}
	s.seg = seg
	s.stats.RecoveredRecords = info.Records
	s.stats.TruncatedBytes = info.TruncatedBytes

	covered, ok := s.loadIndex(seg.Size(), records)
	if !ok {
		s.stats.IndexRebuilt = true
		covered = int64(len(logMagic))
		s.index = make(map[uint64][]idxEnt)
		s.records = 0
	}
	// Index whatever suffix the snapshot did not cover (everything, after a
	// rebuild). records is in offset order, so replays apply last-wins.
	for _, rec := range records {
		if rec.Offset < covered {
			continue
		}
		key, _, err := decodeResult(rec)
		if err != nil {
			return nil, err
		}
		s.addEntry(hashKey(key), rec.Offset, key)
		s.unindexed++
	}
	s.stats.Records = s.records
	return s, nil
}

// decodeResult splits a result record body into key and value.
func decodeResult(rec Record) (key, value []byte, err error) {
	if rec.Kind != recordResult {
		return nil, nil, fmt.Errorf("store: unexpected record kind %d at %d", rec.Kind, rec.Offset)
	}
	p := rec.Payload
	if len(p) < 2 {
		return nil, nil, fmt.Errorf("store: short result record at %d", rec.Offset)
	}
	n := int(binary.LittleEndian.Uint16(p))
	if len(p)-2 < n {
		return nil, nil, fmt.Errorf("store: result record key overruns body at %d", rec.Offset)
	}
	return p[2 : 2+n], p[2+n:], nil
}

// addEntry indexes one record, keeping last-wins semantics for re-put keys.
// Caller holds mu (or is inside Open, before the store is shared).
func (s *Store) addEntry(h uint64, off int64, key []byte) {
	ents := s.index[h]
	for i := range ents {
		rec, err := s.seg.ReadAt(ents[i].off)
		if err == nil {
			if k, _, derr := decodeResult(rec); derr == nil && bytes.Equal(k, key) {
				ents[i].off = off // same key re-put: newest record wins
				return
			}
		}
	}
	s.index[h] = append(ents, idxEnt{off: off, hash: h})
	s.records++
}

// Get returns the value stored for key. The index narrows by 64-bit hash;
// the match is confirmed against the full key bytes from the segment, so
// hash collisions cost a extra read, never a wrong answer.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, fmt.Errorf("store: closed")
	}
	for _, ent := range s.index[hashKey(key)] {
		rec, err := s.seg.ReadAt(ent.off)
		if err != nil {
			return nil, false, err
		}
		k, v, err := decodeResult(rec)
		if err != nil {
			return nil, false, err
		}
		if bytes.Equal(k, key) {
			s.stats.Hits++
			out := make([]byte, len(v))
			copy(out, v)
			return out, true, nil
		}
	}
	s.stats.Misses++
	return nil, false, nil
}

// Put durably records value under key (fsync'd before returning) and
// indexes it. Re-putting a key replaces its value (last record wins, both on
// the live index and on replay).
func (s *Store) Put(key, value []byte) error {
	if len(key) == 0 || len(key) > 1<<16-1 {
		return fmt.Errorf("store: key length %d outside [1, 65535]", len(key))
	}
	body := make([]byte, 2+len(key)+len(value))
	binary.LittleEndian.PutUint16(body, uint16(len(key)))
	copy(body[2:], key)
	copy(body[2+len(key):], value)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	off, err := s.seg.Append(recordResult, body)
	if err != nil {
		return err
	}
	s.addEntry(hashKey(key), off, key)
	s.stats.Puts++
	s.stats.Records = s.records
	s.unindexed++
	if s.unindexed >= indexEvery {
		s.writeIndex() //nolint:errcheck // advisory; a failed snapshot only slows reopen
	}
	return nil
}

// Len returns the number of distinct keys resident.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.records
}

// StatsSnapshot returns the counter snapshot.
func (s *Store) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Records = s.records
	return st
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close snapshots the index and closes the segment. Further calls fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.writeIndex()
	if cerr := s.seg.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---- index snapshot ----

// Index file layout (all little-endian, after the 8-byte magic):
//
//	u64 coveredSize  segment size the snapshot covers
//	u32 count        entries
//	count × (u64 hash | u64 offset)
//	u32 crc32c       over everything after the magic
//
// WriteFile replaces it atomically, so the index is always either the old
// snapshot or the new one, never a blend.

// writeIndex snapshots the current index. Caller holds mu.
func (s *Store) writeIndex() error {
	n := 0
	for _, ents := range s.index {
		n += len(ents)
	}
	buf := make([]byte, 8+8+4+16*n+4)
	copy(buf, idxMagic[:])
	binary.LittleEndian.PutUint64(buf[8:], uint64(s.seg.Size()))
	binary.LittleEndian.PutUint32(buf[16:], uint32(n))
	at := 20
	for _, ents := range s.index {
		for _, e := range ents {
			binary.LittleEndian.PutUint64(buf[at:], e.hash)
			binary.LittleEndian.PutUint64(buf[at+8:], uint64(e.off))
			at += 16
		}
	}
	binary.LittleEndian.PutUint32(buf[at:], crc32.Checksum(buf[8:at], crcTable))
	if err := s.fs.WriteFile(join(s.dir, indexName), buf); err != nil {
		return fmt.Errorf("store: write index: %w", err)
	}
	s.unindexed = 0
	return nil
}

// loadIndex tries the sidecar snapshot: on success it populates the index
// and returns the segment prefix it covers. Any mismatch — missing file,
// bad magic or checksum, coverage past the recovered segment end, or an
// entry that does not decode — rejects the snapshot entirely.
func (s *Store) loadIndex(segSize int64, records []Record) (int64, bool) {
	f, size, err := s.fs.OpenFile(join(s.dir, indexName))
	if err != nil {
		return 0, false
	}
	defer f.Close()
	buf, err := readRange(f, 0, size)
	if err != nil || len(buf) < 24 || [8]byte(buf[:8]) != idxMagic {
		return 0, false
	}
	if crc32.Checksum(buf[8:len(buf)-4], crcTable) != binary.LittleEndian.Uint32(buf[len(buf)-4:]) {
		return 0, false
	}
	covered := int64(binary.LittleEndian.Uint64(buf[8:]))
	count := int(binary.LittleEndian.Uint32(buf[16:]))
	if covered < int64(len(logMagic)) || covered > segSize || len(buf) != 24+16*count {
		return 0, false
	}
	// The snapshot must agree with the recovered segment: every covered
	// record offset must exist. Build the authoritative set from records.
	valid := make(map[int64]bool, len(records))
	for _, r := range records {
		valid[r.Offset] = true
	}
	index := make(map[uint64][]idxEnt, count)
	n := 0
	for at := 20; at < len(buf)-4; at += 16 {
		h := binary.LittleEndian.Uint64(buf[at:])
		off := int64(binary.LittleEndian.Uint64(buf[at+8:]))
		if off >= covered || !valid[off] {
			return 0, false
		}
		index[h] = append(index[h], idxEnt{off: off, hash: h})
		n++
	}
	s.index = index
	s.records = n
	return covered, true
}

// hashKey is FNV-1a over the canonical key bytes.
func hashKey(key []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// ---- job journals ----

// Journal record kinds. A journal is one Log per durable job: a begin
// record (the canonical job spec), one point record per committed unit of
// work, and a done record. A journal with no done record marks a job to
// resume; its committed points are never recomputed.
const (
	JournalBegin uint8 = 1
	JournalPoint uint8 = 2
	JournalDone  uint8 = 3
)

// journalFile maps a job ID to its file name.
func journalFile(id string) string { return id + ".log" }

// OpenJournal opens (or creates) the journal for job id, returning its
// replayed records and recovery info. Append-side durability matches the
// segment: every record is fsync'd.
func (s *Store) OpenJournal(id string) (*Log, []Record, RecoveryInfo, error) {
	return OpenLog(s.fs, join(s.dir, jobsDir, journalFile(id)), true)
}

// Journals lists the IDs of all jobs with a journal on disk.
func (s *Store) Journals() ([]string, error) {
	names, err := s.fs.ReadDir(join(s.dir, jobsDir))
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, n := range names {
		if id, ok := strings.CutSuffix(n, ".log"); ok {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// RemoveJournal deletes job id's journal.
func (s *Store) RemoveJournal(id string) error {
	return s.fs.Remove(join(s.dir, jobsDir, journalFile(id)))
}
