package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Log file format. Every durable file in the store is one of these:
//
//	header:  8-byte magic ("ISLOG1\r\n")
//	record:  u32 bodyLen | u32 crc32c(body) | body
//	body:    u8 kind | payload
//
// Records are appended with an fsync after the full frame, so a record is
// either entirely durable or detectably torn. Open scans from the header and
// stops at the first frame whose length is implausible, runs past the end of
// the file, or fails its checksum; everything after that point is a torn
// tail from a crash and is truncated away. Committed records are never lost:
// truncation only ever removes bytes that Append never acknowledged.

var logMagic = [8]byte{'I', 'S', 'L', 'O', 'G', '1', '\r', '\n'}

const (
	frameHeaderSize = 8       // u32 len + u32 crc
	maxRecordSize   = 1 << 26 // 64 MiB; larger lengths are treated as corruption
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a structurally invalid log (bad magic). A torn tail is
// NOT corruption — it is recovered silently — but a file that does not start
// with the log magic was never ours and is refused rather than overwritten.
var ErrCorrupt = errors.New("store: not a log file")

// Record is one decoded log record.
type Record struct {
	Kind    uint8
	Payload []byte
	Offset  int64 // file offset of the record's frame
}

// RecoveryInfo summarizes what Open found.
type RecoveryInfo struct {
	Records        int   // committed records recovered
	TruncatedBytes int64 // torn-tail bytes discarded
}

// Log is an append-only record log with crash-safe boundaries.
type Log struct {
	fs   FS
	f    File
	path string
	size int64
	sync bool
}

// OpenLog opens (or creates) the log at path, replays every committed
// record, truncates any torn tail, and leaves the log ready to append.
// When syncEach is true every Append fsyncs before returning — the
// durability contract journals and segments rely on.
func OpenLog(fs FS, path string, syncEach bool) (*Log, []Record, RecoveryInfo, error) {
	f, size, err := fs.OpenFile(path)
	if err != nil {
		return nil, nil, RecoveryInfo{}, fmt.Errorf("store: open %s: %w", path, err)
	}
	l := &Log{fs: fs, f: f, path: path, size: size, sync: syncEach}

	if size < int64(len(logMagic)) {
		// New file, or a crash tore the header itself (no record can have
		// committed before the header did). Start clean.
		if err := l.reset(size > 0); err != nil {
			f.Close()
			return nil, nil, RecoveryInfo{}, err
		}
		return l, nil, RecoveryInfo{TruncatedBytes: size}, nil
	}

	head, err := readRange(f, 0, int64(len(logMagic)))
	if err != nil {
		f.Close()
		return nil, nil, RecoveryInfo{}, fmt.Errorf("store: read %s: %w", path, err)
	}
	if len(head) != len(logMagic) || [8]byte(head) != logMagic {
		f.Close()
		return nil, nil, RecoveryInfo{}, fmt.Errorf("%w: %s", ErrCorrupt, path)
	}

	body, err := readRange(f, int64(len(logMagic)), size-int64(len(logMagic)))
	if err != nil {
		f.Close()
		return nil, nil, RecoveryInfo{}, fmt.Errorf("store: read %s: %w", path, err)
	}
	records, good := scanRecords(body, int64(len(logMagic)))
	info := RecoveryInfo{Records: len(records), TruncatedBytes: size - good}
	if good < size {
		if err := l.truncate(good); err != nil {
			f.Close()
			return nil, nil, RecoveryInfo{}, err
		}
	}
	return l, records, info, nil
}

// scanRecords decodes frames from buf (which starts at file offset base),
// returning the valid records and the file offset just past the last one.
func scanRecords(buf []byte, base int64) ([]Record, int64) {
	var records []Record
	off := 0
	for {
		if len(buf)-off < frameHeaderSize {
			break
		}
		n := binary.LittleEndian.Uint32(buf[off:])
		crc := binary.LittleEndian.Uint32(buf[off+4:])
		if n == 0 || n > maxRecordSize || len(buf)-off-frameHeaderSize < int(n) {
			break
		}
		body := buf[off+frameHeaderSize : off+frameHeaderSize+int(n)]
		if crc32.Checksum(body, crcTable) != crc {
			break
		}
		records = append(records, Record{
			Kind:    body[0],
			Payload: body[1:],
			Offset:  base + int64(off),
		})
		off += frameHeaderSize + int(n)
	}
	return records, base + int64(off)
}

// reset rewrites the log to just a header. existing reports whether stale
// bytes must be cut first.
func (l *Log) reset(existing bool) error {
	if existing {
		if err := l.truncate(0); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(logMagic[:]); err != nil {
		return fmt.Errorf("store: write header %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("store: sync %s: %w", l.path, err)
	}
	l.size = int64(len(logMagic))
	return nil
}

// truncate cuts the file to size and records the new append position.
func (l *Log) truncate(size int64) error {
	if err := l.fs.Truncate(l.path, size); err != nil {
		return fmt.Errorf("store: truncate %s: %w", l.path, err)
	}
	l.size = size
	return nil
}

// Append writes one record and, in sync mode, fsyncs before acknowledging.
// On a write error the log attempts to cut back to the last committed
// boundary so a partial frame cannot linger in front of later appends; the
// original error is returned either way.
func (l *Log) Append(kind uint8, payload []byte) (int64, error) {
	frame := make([]byte, frameHeaderSize+1+len(payload))
	body := frame[frameHeaderSize:]
	body[0] = kind
	copy(body[1:], payload)
	binary.LittleEndian.PutUint32(frame, uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(body, crcTable))

	off := l.size
	if _, err := l.f.Write(frame); err != nil {
		// Best effort: discard whatever prefix of the frame landed.
		l.truncate(off) //nolint:errcheck // reopening recovers regardless
		return 0, fmt.Errorf("store: append %s: %w", l.path, err)
	}
	l.size += int64(len(frame))
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("store: sync %s: %w", l.path, err)
		}
	}
	return off, nil
}

// ReadAt re-decodes the single record at offset off (as returned by Append
// or carried by a Record from OpenLog).
func (l *Log) ReadAt(off int64) (Record, error) {
	head, err := readRange(l.f, off, frameHeaderSize)
	if err != nil || len(head) < frameHeaderSize {
		return Record{}, fmt.Errorf("store: read frame at %d in %s: %v", off, l.path, err)
	}
	n := binary.LittleEndian.Uint32(head)
	crc := binary.LittleEndian.Uint32(head[4:])
	if n == 0 || n > maxRecordSize {
		return Record{}, fmt.Errorf("store: bad frame length %d at %d in %s", n, off, l.path)
	}
	body, err := readRange(l.f, off+frameHeaderSize, int64(n))
	if err != nil || len(body) < int(n) {
		return Record{}, fmt.Errorf("store: short frame body at %d in %s: %v", off, l.path, err)
	}
	if crc32.Checksum(body, crcTable) != crc {
		return Record{}, fmt.Errorf("store: frame checksum mismatch at %d in %s", off, l.path)
	}
	return Record{Kind: body[0], Payload: body[1:], Offset: off}, nil
}

// Size returns the current committed size in bytes.
func (l *Log) Size() int64 { return l.size }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Sync forces an fsync (useful when the log was opened without syncEach).
func (l *Log) Sync() error { return l.f.Sync() }

// Close syncs and closes the file.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
