package vpred

// Runner drives a Unit from the configured synthetic value stream: it
// tracks per-PC occurrence counts so the k-th dynamic instance of each
// static instruction produces the stream's k-th value for that PC. The
// overlay pre-pass and the live simulator both consume value speculation
// through a Runner, which is what makes their outcomes bit-identical — the
// stream value, the occurrence index, and the table state all advance in
// program order on eligible instructions only.
type Runner struct {
	unit   *Unit
	stream StreamConfig
	occ    map[uint64]uint64
}

// NewRunner builds the configured unit and wraps it with the configured
// stream.
func NewRunner(cfg Config) (*Runner, error) {
	u, err := cfg.Build()
	if err != nil {
		return nil, err
	}
	return &Runner{unit: u, stream: cfg.Stream, occ: make(map[uint64]uint64)}, nil
}

// Access synthesizes the next value produced at pc and runs one
// prediction-then-update step. Must be called exactly once per eligible
// instruction, in program order.
func (r *Runner) Access(pc uint64) Outcome {
	k := r.occ[pc]
	r.occ[pc] = k + 1
	return r.unit.Access(pc, r.stream.Value(pc, k))
}
