package vpred

import "fmt"

// StreamConfig describes the synthetic value stream a trace's producing
// instructions emit. Packed traces carry structure (PCs, classes, deps) but
// no data values, so value locality is synthesized the same way branch
// behavior is: deterministically from the configuration. Each static PC is
// assigned a value class by hash — constant, strided, short repeating
// pattern, or random — and its k-th dynamic instance produces a value that
// is a pure function of (Seed, PC, k). The split controls how much of the
// stream each predictor kind can capture: last-value catches constants,
// stride catches constants+strides, fcm additionally catches patterns, and
// the random remainder bounds everyone.
type StreamConfig struct {
	Seed       uint64 // stream seed; same seed, same values everywhere
	ConstPct   int    // percent of static PCs producing a fixed value
	StridePct  int    // percent producing an arithmetic sequence
	PatternPct int    // percent producing a period-4 repeating pattern
	// remainder: fresh pseudo-random value per instance (unpredictable)
}

// DefaultStream is the canonical value-locality mix: a majority of the
// stream predictable in principle (constants + strides + short patterns),
// a fifth genuinely random — roughly the locality published for integer
// codes in the value-prediction literature.
func DefaultStream() StreamConfig {
	return StreamConfig{Seed: 1, ConstPct: 35, StridePct: 30, PatternPct: 15}
}

// Validate checks the class split is a well-formed percentage partition.
func (s StreamConfig) Validate() error {
	for _, p := range [...]struct {
		name string
		v    int
	}{{"ConstPct", s.ConstPct}, {"StridePct", s.StridePct}, {"PatternPct", s.PatternPct}} {
		if p.v < 0 || p.v > 100 {
			return fmt.Errorf("vpred: stream %s must be in [0,100], got %d", p.name, p.v)
		}
	}
	if sum := s.ConstPct + s.StridePct + s.PatternPct; sum > 100 {
		return fmt.Errorf("vpred: stream class percentages sum to %d > 100", sum)
	}
	return nil
}

// Value returns the value produced by the k-th dynamic instance of the
// instruction at pc. Pure and deterministic: the overlay pre-pass and the
// live simulator call this independently and must agree byte for byte.
func (s StreamConfig) Value(pc, k uint64) uint64 {
	cls := hash64(s.Seed^hash64(pc)) % 100
	switch {
	case cls < uint64(s.ConstPct):
		return hash64(pc ^ s.Seed ^ 0xC027)
	case cls < uint64(s.ConstPct+s.StridePct):
		base := hash64(pc ^ s.Seed ^ 0x57B1)
		stride := hash64(pc^s.Seed^0x57B2)%8 + 1
		return base + stride*k
	case cls < uint64(s.ConstPct+s.StridePct+s.PatternPct):
		return hash64(pc ^ s.Seed ^ 0xAA77 ^ (k%4)<<32)
	default:
		return hash64(pc ^ s.Seed ^ hash64(k^0xF00D))
	}
}

// hash64 is SplitMix64's finalizer: a cheap, well-mixed 64-bit hash.
func hash64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
