package vpred

// Outcome classifies one value-prediction access. Only confident
// predictions act on the pipeline: a confident correct prediction breaks
// the data dependence on the producer (Hit), a confident wrong one costs a
// misspeculation flush (Miss), and everything else is architecturally
// invisible (None). The 2-bit confidence filter is what makes value
// speculation profitable at all — without it, every cold or noisy entry
// would flush the pipeline.
type Outcome uint8

const (
	None Outcome = iota // no confident prediction made
	Hit                 // confident and correct: dependence broken
	Miss                // confident and wrong: misspeculation flush
)

const (
	confMax       = 3 // 2-bit saturating confidence counter
	confThreshold = 3 // predict only at saturation
)

// Unit is a built value predictor: a per-PC table of the configured kind
// plus the shared confidence filter. Access order defines its state, so a
// Unit must see the instruction stream exactly once, in program order —
// the same contract as bpred.Unit.
type Unit struct {
	kind    string
	n       uint64
	histLen uint

	conf []uint8 // 2-bit confidence per entry

	valid  []bool   // entry has seen at least one value
	last   []uint64 // last-value, stride: last observed value
	stride []uint64 // stride: last observed delta

	hist    []uint64 // fcm L1: packed window of 16-bit value hashes
	l2      []uint64 // fcm L2: context-indexed value table
	l2valid []bool
}

func newUnit(c Config) *Unit {
	u := &Unit{kind: c.Kind, n: uint64(c.Entries)}
	u.conf = make([]uint8, c.Entries)
	switch c.Kind {
	case "last-value":
		u.valid = make([]bool, c.Entries)
		u.last = make([]uint64, c.Entries)
	case "stride":
		u.valid = make([]bool, c.Entries)
		u.last = make([]uint64, c.Entries)
		u.stride = make([]uint64, c.Entries)
	case "fcm":
		u.histLen = uint(c.HistLen)
		u.hist = make([]uint64, c.Entries)
		u.l2 = make([]uint64, c.Entries)
		u.l2valid = make([]bool, c.Entries)
	}
	return u
}

// Access runs one prediction-then-update step for the instruction at pc
// producing actual, and returns the speculation outcome.
func (u *Unit) Access(pc, actual uint64) Outcome {
	i := hash64(pc) % u.n
	pred, ok := u.predict(i)
	out := None
	if ok && u.conf[i] >= confThreshold {
		if pred == actual {
			out = Hit
		} else {
			out = Miss
		}
	}
	if ok && pred == actual {
		if u.conf[i] < confMax {
			u.conf[i]++
		}
	} else {
		u.conf[i] = 0
	}
	u.update(i, actual)
	return out
}

func (u *Unit) predict(i uint64) (uint64, bool) {
	switch u.kind {
	case "last-value":
		return u.last[i], u.valid[i]
	case "stride":
		return u.last[i] + u.stride[i], u.valid[i]
	default: // fcm
		j := hash64(u.hist[i]) % u.n
		return u.l2[j], u.l2valid[j]
	}
}

func (u *Unit) update(i, actual uint64) {
	switch u.kind {
	case "last-value":
		u.last[i] = actual
		u.valid[i] = true
	case "stride":
		if u.valid[i] {
			u.stride[i] = actual - u.last[i]
		}
		u.last[i] = actual
		u.valid[i] = true
	default: // fcm
		j := hash64(u.hist[i]) % u.n
		u.l2[j] = actual
		u.l2valid[j] = true
		// Slide the context window: keep the last histLen 16-bit value
		// hashes packed in one word, oldest in the high bits.
		keep := uint64(1)<<(16*u.histLen) - 1
		if u.histLen >= 4 {
			keep = ^uint64(0)
		}
		u.hist[i] = (u.hist[i]<<16 | hash64(actual)&0xFFFF) & keep
	}
}
