package vpred

import (
	"reflect"
	"testing"
)

func TestPresetsBuild(t *testing.T) {
	for _, name := range PresetNames() {
		cfg, ok := Preset(name)
		if !ok {
			t.Fatalf("Preset(%q) not found", name)
		}
		if cfg.Kind != name {
			t.Errorf("preset %q has kind %q", name, cfg.Kind)
		}
		if _, err := cfg.Build(); err != nil {
			t.Errorf("preset %q does not build: %v", name, err)
		}
		if cfg.StorageBits() <= 0 {
			t.Errorf("preset %q has non-positive storage", name)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Kind: "psychic", Entries: 16},
		{Kind: "stride", Entries: 0},
		{Kind: "fcm", Entries: 16, HistLen: 0},
		{Kind: "fcm", Entries: 16, HistLen: 9},
		{Kind: "last-value", Entries: 16, Stream: StreamConfig{ConstPct: 120}},
		{Kind: "last-value", Entries: 16, Stream: StreamConfig{ConstPct: 60, StridePct: 50}},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) unexpectedly passed", c)
		}
	}
}

func TestConfigForBudget(t *testing.T) {
	for _, kind := range PresetNames() {
		prev := int64(-1)
		for _, budget := range []int64{1 << 10, 1 << 14, 1 << 18, 1 << 22} {
			cfg, ok := ConfigForBudget(kind, budget)
			if !ok {
				t.Fatalf("ConfigForBudget(%s, %d) found no sizing", kind, budget)
			}
			bits := cfg.StorageBits()
			if bits > budget {
				t.Errorf("%s at %d bits: sized config uses %d bits", kind, budget, bits)
			}
			if bits <= prev {
				t.Errorf("%s: budget %d did not grow storage (%d <= %d)", kind, budget, bits, prev)
			}
			prev = bits
		}
	}
	if _, ok := ConfigForBudget("psychic", 1<<20); ok {
		t.Error("unknown kind unexpectedly sized")
	}
}

// feed runs n accesses of a fixed value function through a fresh unit and
// counts outcomes.
func feed(t *testing.T, kind string, histLen int, n int, value func(k uint64) uint64) (hits, misses, none int) {
	t.Helper()
	u, err := Config{Kind: kind, Entries: 64, HistLen: histLen}.Build()
	if err != nil {
		t.Fatal(err)
	}
	const pc = 0x40be_ef00
	for k := 0; k < n; k++ {
		switch u.Access(pc, value(uint64(k))) {
		case Hit:
			hits++
		case Miss:
			misses++
		default:
			none++
		}
	}
	return hits, misses, none
}

func TestLastValueLearnsConstants(t *testing.T) {
	hits, misses, _ := feed(t, "last-value", 0, 100, func(uint64) uint64 { return 42 })
	if misses != 0 || hits < 90 {
		t.Errorf("constant stream: hits=%d misses=%d, want >=90 hits, 0 misses", hits, misses)
	}
}

func TestStrideLearnsStrides(t *testing.T) {
	hits, misses, _ := feed(t, "stride", 0, 100, func(k uint64) uint64 { return 1000 + 7*k })
	if misses != 0 || hits < 90 {
		t.Errorf("strided stream: hits=%d misses=%d, want >=90 hits, 0 misses", hits, misses)
	}
	// last-value cannot capture a stride: it never reaches confidence.
	hits, _, _ = feed(t, "last-value", 0, 100, func(k uint64) uint64 { return 1000 + 7*k })
	if hits != 0 {
		t.Errorf("last-value on strided stream: hits=%d, want 0", hits)
	}
}

func TestFCMLearnsPatterns(t *testing.T) {
	pattern := [4]uint64{11, 99, 32, 7}
	hits, misses, _ := feed(t, "fcm", 4, 200, func(k uint64) uint64 { return pattern[k%4] })
	if hits < 150 {
		t.Errorf("period-4 stream: fcm hits=%d misses=%d, want >=150 hits", hits, misses)
	}
	// stride sees alternating deltas and should stay unconfident.
	hits, _, _ = feed(t, "stride", 0, 200, func(k uint64) uint64 { return pattern[k%4] })
	if hits > 10 {
		t.Errorf("stride on period-4 stream: hits=%d, want <=10", hits)
	}
}

func TestConfidenceFiltersRandomStreams(t *testing.T) {
	for _, kind := range PresetNames() {
		histLen := 0
		if kind == "fcm" {
			histLen = 4
		}
		_, misses, _ := feed(t, kind, histLen, 500, func(k uint64) uint64 { return hash64(k ^ 0xD1CE) })
		if misses > 25 {
			t.Errorf("%s on random stream: %d confident misses in 500, confidence filter too eager", kind, misses)
		}
	}
}

func TestFingerprintCoversStream(t *testing.T) {
	a := Config{Kind: "stride", Entries: 4096}
	b := a
	b.Stream.Seed = 7
	c := a
	c.Stream.ConstPct = 1
	if a.Fingerprint() == b.Fingerprint() || a.Fingerprint() == c.Fingerprint() {
		t.Error("stream fields do not alter the fingerprint")
	}
	if a.Fingerprint() != (Config{Kind: "stride", Entries: 4096}).Fingerprint() {
		t.Error("fingerprint not deterministic")
	}
}

func TestRunnerDeterministic(t *testing.T) {
	cfg, _ := Preset("fcm")
	cfg.Stream = DefaultStream()
	r1, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pcs := []uint64{0x400100, 0x400108, 0x400100, 0x400200, 0x400100, 0x400108}
	var o1, o2 []Outcome
	for i := 0; i < 400; i++ {
		pc := pcs[i%len(pcs)]
		o1 = append(o1, r1.Access(pc))
		o2 = append(o2, r2.Access(pc))
	}
	if !reflect.DeepEqual(o1, o2) {
		t.Error("identical runners diverged")
	}
}

func TestStreamValueDeterministic(t *testing.T) {
	s := DefaultStream()
	if s.Value(0x400100, 3) != s.Value(0x400100, 3) {
		t.Error("Value not pure")
	}
	// Different seeds reclassify PCs: over many PCs the streams must differ.
	s2 := s
	s2.Seed = 99
	same := 0
	for pc := uint64(0); pc < 64; pc++ {
		if s.Value(0x400000+pc*8, 5) == s2.Value(0x400000+pc*8, 5) {
			same++
		}
	}
	if same > 4 {
		t.Errorf("seeds 1 and 99 agree on %d/64 values", same)
	}
}
