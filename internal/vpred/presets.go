package vpred

import "sort"

// presets are the canonical sizings for each value-predictor kind: what
// "-vpred stride" on a sweep CLI and a stride row in the C1 potential study
// both mean. Entry counts match the bpred table scale so equal-budget
// comparisons land on familiar sizes. The Stream field is deliberately zero
// here: the stream is workload identity and is filled in from the workload
// configuration at run assembly.
var presets = map[string]Config{
	"last-value": {Kind: "last-value", Entries: 4096},
	"stride":     {Kind: "stride", Entries: 4096},
	"fcm":        {Kind: "fcm", Entries: 4096, HistLen: 4},
}

// Preset returns the canonical configuration for a value-predictor kind, and
// whether the kind is known. Service and CLI layers use this to validate a
// name at admission time, before any machine is built.
func Preset(kind string) (Config, bool) {
	c, ok := presets[kind]
	return c, ok
}

// PresetNames returns every known value-predictor kind, sorted, for error
// messages and usage strings.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for k := range presets {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// ConfigForBudget returns the largest power-of-two sizing of kind whose
// StorageBits fits within budgetBits, scaling the preset's entry count and
// keeping its context geometry. It reports false for unknown kinds or
// budgets too small for even a single-entry table.
func ConfigForBudget(kind string, budgetBits int64) (Config, bool) {
	c, ok := Preset(kind)
	if !ok {
		return Config{}, false
	}
	c.Entries = 1
	if c.StorageBits() > budgetBits {
		return Config{}, false
	}
	for {
		next := c
		next.Entries = c.Entries * 2
		if next.StorageBits() > budgetBits {
			return c, true
		}
		c = next
	}
}
