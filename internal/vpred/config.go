// Package vpred implements value prediction: last-value, stride, and a
// small context-based (FCM) predictor, each with a 2-bit confidence filter.
// It mirrors package bpred's shape deliberately — canonical presets,
// StorageBits accounting, ConfigForBudget sizing, and a canonical
// Fingerprint — so value predictors slot into the same sweep, overlay, and
// budget machinery as branch predictors.
//
// Value prediction is trace-level speculation on *data*: a predicted load or
// ALU result lets dependents issue before the producer completes, and a
// confident-but-wrong prediction costs a pipeline flush — a new miss-event
// class for the interval model (Mitrevski & Gušev, "On the Performance
// Potential of Speculative Execution based on Branch and Value Prediction").
package vpred

import "fmt"

// Config selects and sizes the value prediction unit, plus the synthetic
// value stream it predicts (traces carry no data values, so the stream
// configuration is part of the speculation identity: two runs with the same
// predictor but different streams see different outcomes).
type Config struct {
	Kind    string       // "last-value", "stride", "fcm"
	Entries int          // value table entries
	HistLen int          // fcm only: context depth in values (clamped to [1,4])
	Stream  StreamConfig // synthetic value stream driving the unit
}

// Validate reports whether the configuration describes a buildable unit.
func (c Config) Validate() error {
	switch c.Kind {
	case "last-value", "stride", "fcm":
	default:
		return fmt.Errorf("vpred: unknown value-predictor kind %q", c.Kind)
	}
	if c.Entries <= 0 {
		return fmt.Errorf("vpred: Entries must be positive, got %d", c.Entries)
	}
	if c.Kind == "fcm" && (c.HistLen < 1 || c.HistLen > 4) {
		return fmt.Errorf("vpred: fcm HistLen must be in [1,4], got %d", c.HistLen)
	}
	return c.Stream.Validate()
}

// Build constructs the configured value prediction unit.
func (c Config) Build() (*Unit, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return newUnit(c), nil
}

// StorageBits returns the prediction state the configuration implies, in
// bits, mirroring bpred.Config.StorageBits: per-entry payload plus the 2-bit
// confidence counter every kind carries. The value stream is workload
// identity, not hardware, and costs nothing.
func (c Config) StorageBits() int64 {
	e := int64(c.Entries)
	switch c.Kind {
	case "last-value":
		// 64-bit last value + 2-bit confidence.
		return e * (64 + 2)
	case "stride":
		// 64-bit last value + 16-bit stride + 2-bit confidence.
		return e * (64 + 16 + 2)
	case "fcm":
		// L1: HistLen 16-bit value hashes per entry; L2: 64-bit value +
		// 2-bit confidence per entry.
		h := int64(c.HistLen)
		if h < 1 {
			h = 1
		}
		return e*16*h + e*(64+2)
	default:
		return 0
	}
}

// Fingerprint returns a canonical stable hash of the configuration,
// including the value stream: two Configs fingerprint equal if and only if
// they produce identical speculation outcomes on a given trace. Tagged
// field-by-field serialization, same scheme as bpred.Config.Fingerprint.
func (c Config) Fingerprint() uint64 {
	h := newFNV()
	h.string("kind", c.Kind)
	h.int("entries", int64(c.Entries))
	h.int("histlen", int64(c.HistLen))
	h.int("seed", int64(c.Stream.Seed))
	h.int("constpct", int64(c.Stream.ConstPct))
	h.int("stridepct", int64(c.Stream.StridePct))
	h.int("patternpct", int64(c.Stream.PatternPct))
	return h.sum
}

// fnv is a minimal FNV-1a 64-bit hasher over tagged fields, duplicated from
// bpred so the two packages stay dependency-free of each other while using
// the same byte-stream discipline.
type fnv struct{ sum uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func newFNV() *fnv { return &fnv{sum: fnvOffset} }

func (h *fnv) byte(b byte) {
	h.sum ^= uint64(b)
	h.sum *= fnvPrime
}

func (h *fnv) string(tag, s string) {
	for i := 0; i < len(tag); i++ {
		h.byte(tag[i])
	}
	h.byte('=')
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
	h.byte(';')
}

func (h *fnv) int(tag string, v int64) {
	for i := 0; i < len(tag); i++ {
		h.byte(tag[i])
	}
	h.byte('=')
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
	h.byte(';')
}
