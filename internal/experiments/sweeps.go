package experiments

import (
	"fmt"
	"io"
	"strings"

	"intervalsim/internal/core"
	"intervalsim/internal/ilp"
	"intervalsim/internal/report"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// E6 varies the program's inherent ILP (dependence-chain density) while
// holding everything else fixed: contributor (iii). Lower ILP → slower
// window drain → larger penalty.
func E6(w io.Writer, p Params) error {
	cfg := uarch.Baseline()
	t := report.New("E6: effect of inherent ILP on the misprediction penalty (gzip variants)",
		"variant", "chain prob", "ILP beta", "K(ROB)", "avg penalty", "drain component")
	base, _ := workload.SuiteConfig("gzip")
	for _, wc := range workload.ILPVariants(base) {
		tr, res, err := run(wc, cfg, p)
		if err != nil {
			return err
		}
		char, err := ilp.Profile(tr.Reader(), ilp.DefaultWindows(), ilp.UnitLatency, p.Insts)
		if err != nil {
			return err
		}
		d, err := core.NewDecomposer(tr, res)
		if err != nil {
			return err
		}
		m := core.Mean(d.DecomposeAll())
		t.AddRow(wc.Name,
			fmt.Sprintf("%.2f", wc.ChainProb),
			fmt.Sprintf("%.2f", char.Beta),
			fmt.Sprintf("%.1f", char.EvalInterp(cfg.ROBSize)),
			fmt.Sprintf("%.1f", res.AvgMispredictPenalty()),
			fmt.Sprintf("%.1f", m.BaseILP),
		)
	}
	return t.Fprint(w)
}

// E7 scales every functional-unit latency: contributor (iv). The penalty
// grows with the latency factor because the resolution chain stretches.
func E7(w io.Writer, p Params) error {
	t := report.New("E7: effect of functional-unit latency scaling on the misprediction penalty",
		"benchmark", "×1 penalty", "×2 penalty", "×3 penalty", "×1 FU comp", "×2 FU comp", "×3 FU comp")
	for _, name := range []string{"gzip", "crafty", "twolf"} {
		wc, ok := workload.SuiteConfig(name)
		if !ok {
			return fmt.Errorf("experiments: unknown benchmark %s", name)
		}
		var pens, comps []float64
		for _, factor := range []float64{1, 2, 3} {
			cfg := uarch.Baseline()
			cfg.FU = cfg.FU.Scale(factor)
			tr, res, err := run(wc, cfg, p)
			if err != nil {
				return err
			}
			d, err := core.NewDecomposer(tr, res)
			if err != nil {
				return err
			}
			m := core.Mean(d.DecomposeAll())
			pens = append(pens, res.AvgMispredictPenalty())
			comps = append(comps, m.FULatency)
		}
		t.AddRow(name,
			fmt.Sprintf("%.1f", pens[0]), fmt.Sprintf("%.1f", pens[1]), fmt.Sprintf("%.1f", pens[2]),
			fmt.Sprintf("%.1f", comps[0]), fmt.Sprintf("%.1f", comps[1]), fmt.Sprintf("%.1f", comps[2]),
		)
	}
	return t.Fprint(w)
}

// E8 varies the data footprint of one benchmark so the short (L1) D-cache
// miss rate sweeps from near zero to substantial: contributor (v).
func E8(w io.Writer, p Params) error {
	cfg := uarch.Baseline()
	t := report.New("E8: effect of short (L1) D-cache misses on the misprediction penalty (crafty variants)",
		"data footprint", "shortD/KI", "longD/KI", "avg penalty", "shortD component")
	base, _ := workload.SuiteConfig("crafty")
	for _, foot := range []int{32 << 10, 128 << 10, 512 << 10, 1 << 20} {
		wc := base
		wc.Name = fmt.Sprintf("crafty-%dKB", foot>>10)
		wc.DataFootprint = foot
		// Spread accesses so L1 capacity is genuinely exceeded as the
		// footprint grows.
		wc.Locality = 0.4
		tr, res, err := run(wc, cfg, p)
		if err != nil {
			return err
		}
		d, err := core.NewDecomposer(tr, res)
		if err != nil {
			return err
		}
		m := core.Mean(d.DecomposeAll())
		t.AddRow(fmt.Sprintf("%d KB", foot>>10),
			fmt.Sprintf("%.2f", perKI(res.ShortDMisses, res.Insts)),
			fmt.Sprintf("%.2f", perKI(res.LongDMisses, res.Insts)),
			fmt.Sprintf("%.1f", res.AvgMispredictPenalty()),
			fmt.Sprintf("%.1f", m.ShortDMiss),
		)
	}
	return t.Fprint(w)
}

// E9 validates the analytic interval model: predicted CPI (from the
// functional profile + ILP characteristic only) against the cycle-level
// simulator, plus predicted vs measured average misprediction penalty.
func E9(w io.Writer, p Params) error {
	cfg := uarch.Baseline()
	t := report.New("E9: analytic interval model vs cycle-level simulation",
		"benchmark", "sim CPI", "model CPI", "CPI err%", "sim penalty", "model penalty")
	for _, wc := range workload.Suite() {
		tr, res, err := run(wc, cfg, p)
		if err != nil {
			return err
		}
		prof, err := profileFor(wc, cfg, p)
		if err != nil {
			return err
		}
		m, err := core.BuildModel(func() trace.Reader { return tr.Reader() }, cfg, prof.ShortMissRatio(), p.Insts)
		if err != nil {
			return err
		}
		pred, err := m.PredictCPI(prof)
		if err != nil {
			return err
		}
		relErr, err := core.ValidationError(pred, res)
		if err != nil {
			return err
		}
		// Model's average penalty over the same event stream.
		ivs, err := core.Segment(prof.Events, prof.Insts)
		if err != nil {
			return err
		}
		var modelPen, n float64
		for _, iv := range ivs {
			if !iv.Final && iv.Kind == uarch.EvBranchMispredict {
				modelPen += m.MispredictPenalty(iv.Len() - 1)
				n++
			}
		}
		if n > 0 {
			modelPen /= n
		}
		t.AddRow(wc.Name,
			fmt.Sprintf("%.2f", res.CPI()),
			fmt.Sprintf("%.2f", pred.CPI()),
			fmt.Sprintf("%+.1f", relErr*100),
			fmt.Sprintf("%.1f", res.AvgMispredictPenalty()),
			fmt.Sprintf("%.1f", modelPen),
		)
	}
	return t.Fprint(w)
}

// E10 sweeps the frontend depth and the ROB size: the penalty tracks the
// depth additively (contributor i) and grows with window size until the
// program's ILP, not the window, limits the drain.
func E10(w io.Writer, p Params) error {
	wc, _ := workload.SuiteConfig("crafty")

	t := report.New("E10a: average misprediction penalty vs frontend pipeline depth (crafty)",
		"frontend depth", "avg penalty", "penalty - depth", "IPC")
	for _, depth := range []int{3, 5, 7, 9, 11, 13, 15} {
		cfg := uarch.Baseline()
		cfg.FrontendDepth = depth
		_, res, err := run(wc, cfg, p)
		if err != nil {
			return err
		}
		pen := res.AvgMispredictPenalty()
		t.AddRow(fmt.Sprintf("%d", depth),
			fmt.Sprintf("%.1f", pen),
			fmt.Sprintf("%.1f", pen-float64(depth)),
			fmt.Sprintf("%.2f", res.IPC()),
		)
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	t2 := report.New("E10b: average misprediction penalty vs window (ROB) size (crafty)",
		"ROB", "IQ", "avg penalty", "mean occupancy", "IPC")
	for _, rob := range []int{32, 64, 128, 256} {
		cfg := uarch.Baseline()
		cfg.ROBSize = rob
		cfg.IQSize = rob / 2
		tr, res, err := run(wc, cfg, p)
		if err != nil {
			return err
		}
		d, err := core.NewDecomposer(tr, res)
		if err != nil {
			return err
		}
		m := core.Mean(d.DecomposeAll())
		t2.AddRow(fmt.Sprintf("%d", rob), fmt.Sprintf("%d", rob/2),
			fmt.Sprintf("%.1f", res.AvgMispredictPenalty()),
			fmt.Sprintf("%d", m.Occupancy),
			fmt.Sprintf("%.2f", res.IPC()),
		)
	}
	return t2.Fprint(w)
}

// Order lists every experiment id in canonical presentation order: the
// order All and RunAll emit them, and the row order of the pass/fail table.
// A3 stays last: it is the one experiment with a wall-clock-derived cell,
// and everything before it must be byte-deterministic (see parallel_test).
func Order() []string {
	return []string{"t1", "t2", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8",
		"e9", "e10", "e11", "a1", "a2", "e12", "a4", "b1", "b2", "c1", "c2", "a3"}
}

// All runs every experiment in order, separated by blank lines. It aborts at
// the first failure; use RunAll for fail-soft parallel regeneration.
func All(w io.Writer, p Params) error {
	reg := Registry()
	for _, id := range Order() {
		if err := reg[id](w, p); err != nil {
			return fmt.Errorf("%s: %w", strings.ToUpper(id), err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Registry maps experiment ids to runners, for the CLI.
func Registry() map[string]func(io.Writer, Params) error {
	return map[string]func(io.Writer, Params) error{
		"t1":  func(w io.Writer, _ Params) error { return T1(w) },
		"t2":  T2,
		"e1":  E1,
		"e2":  E2,
		"e3":  E3,
		"e4":  E4,
		"e5":  E5,
		"e6":  E6,
		"e7":  E7,
		"e8":  E8,
		"e9":  E9,
		"e10": E10,
		"e11": E11,
		"a1":  A1,
		"a2":  A2,
		"e12": E12,
		"a3":  A3,
		"a4":  A4,
		"b1":  B1,
		"b2":  B2,
		"c1":  C1,
		"c2":  C2,
	}
}
