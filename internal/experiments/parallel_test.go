package experiments

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"intervalsim/internal/harness"
)

// fakeSet builds a small experiment set with injected faults.
func fakeSet() ([]string, map[string]func(io.Writer, Params) error) {
	order := []string{"good1", "bad", "good2", "panics"}
	reg := map[string]func(io.Writer, Params) error{
		"good1": func(w io.Writer, _ Params) error {
			_, err := io.WriteString(w, "table one")
			return err
		},
		"bad": func(io.Writer, Params) error {
			return errors.New("injected failure")
		},
		"good2": func(w io.Writer, _ Params) error {
			_, err := io.WriteString(w, "table two")
			return err
		},
		"panics": func(io.Writer, Params) error {
			panic("injected panic")
		},
	}
	return order, reg
}

// TestRunSetFailSoft verifies experiments run past failures and panics:
// successful outputs appear in canonical order, failures are absent from the
// artifact but present in the outcomes, and the summary error fires.
func TestRunSetFailSoft(t *testing.T) {
	order, reg := fakeSet()
	var sb strings.Builder
	outcomes, err := runSet(context.Background(), &sb, Params{}, RunOptions{Jobs: 4, KeepGoing: true}, order, reg)
	if !errors.Is(err, harness.ErrJobsFailed) {
		t.Fatalf("err = %v, want ErrJobsFailed", err)
	}
	out := sb.String()
	if i, j := strings.Index(out, "table one"), strings.Index(out, "table two"); i < 0 || j < 0 || i > j {
		t.Fatalf("outputs missing or out of order: %q", out)
	}
	if strings.Contains(out, "injected") {
		t.Fatalf("failed experiment leaked output: %q", out)
	}
	if len(outcomes) != 4 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	byID := map[string]Outcome{}
	for _, o := range outcomes {
		byID[o.ID] = o
	}
	if byID["good1"].Err != nil || byID["good2"].Err != nil {
		t.Fatalf("healthy experiments failed: %+v", outcomes)
	}
	if byID["bad"].Err == nil || byID["panics"].Err == nil {
		t.Fatalf("failures not recorded: %+v", outcomes)
	}
	var je *harness.JobError
	if !errors.As(byID["panics"].Err, &je) || !je.Panicked {
		t.Fatalf("panic outcome = %v, want panicked JobError", byID["panics"].Err)
	}
}

func TestPassFailTable(t *testing.T) {
	order, reg := fakeSet()
	var discard strings.Builder
	outcomes, _ := runSet(context.Background(), &discard, Params{}, RunOptions{Jobs: 2, KeepGoing: true}, order, reg)
	var sb strings.Builder
	if err := PassFailTable(&sb, outcomes, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"good1", "PASS", "bad", "FAIL", "injected failure"} {
		if !strings.Contains(out, want) {
			t.Errorf("pass/fail table missing %q:\n%s", want, out)
		}
	}

	// Deterministic rendering replaces elapsed times with a placeholder so
	// two runs of the same outcomes are byte-identical.
	var det strings.Builder
	if err := PassFailTable(&det, outcomes, true); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(det.String(), "ms") || strings.Contains(det.String(), "µs") {
		t.Errorf("deterministic pass/fail table still prints elapsed times:\n%s", det.String())
	}
}

// TestRunAllMatchesAll verifies the parallel regeneration emits the same
// artifact bytes as the serial All when everything passes.
func TestRunAllMatchesAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full regeneration skipped in -short mode")
	}
	p := tinyParams()
	var serial strings.Builder
	if err := All(&serial, p); err != nil {
		t.Fatal(err)
	}
	var parallel strings.Builder
	outcomes, err := RunAll(context.Background(), &parallel, p, RunOptions{Jobs: 8, KeepGoing: true})
	if err != nil {
		t.Fatalf("RunAll: %v (outcomes %+v)", err, outcomes)
	}
	// A3 measures wall-clock speedup, so its numbers legitimately vary run
	// to run; compare everything before it (A3 is canonically last).
	cut := func(s string) string {
		if i := strings.Index(s, "A3"); i >= 0 {
			return s[:i]
		}
		return s
	}
	if cut(serial.String()) != cut(parallel.String()) {
		t.Fatal("parallel regeneration artifact differs from serial All output")
	}
}
