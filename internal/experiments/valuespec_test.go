package experiments

import (
	"bytes"
	"path/filepath"
	"testing"

	"intervalsim/internal/core"
	"intervalsim/internal/uarch"
	"intervalsim/internal/vpred"
	"intervalsim/internal/workload"
)

// TestGoldenC1Table pins the value-prediction potential study: predictor
// sizings, hit/misspec rates, CPI, and the budget curve are all
// deterministic — drift in the value predictors, the eligibility rule, the
// flush handling, or the synthetic value stream changes the bytes.
func TestGoldenC1Table(t *testing.T) {
	var buf bytes.Buffer
	if err := C1(&buf, goldenParams()); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "golden_c1.txt"), buf.String())
}

// TestGoldenC2Table pins the fetch-rate sweep and its per-contributor
// penalty decomposition.
func TestGoldenC2Table(t *testing.T) {
	var buf bytes.Buffer
	if err := C2(&buf, goldenParams()); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "golden_c2.txt"), buf.String())
}

// TestC1MonotoneCPI is C1's acceptance property: for the tag-free table
// kinds (last-value, stride), growing the storage budget only removes
// aliasing, so CPI must be non-increasing along the budget ladder on both
// study workloads, and the largest sizing must beat the no-value-prediction
// baseline. FCM is exempt — its context hashes can alias into
// confident-wrong predictions at small sizes (see the C1b comment).
func TestC1MonotoneCPI(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment skipped in -short mode")
	}
	p := goldenParams()
	budgets := []int64{1 << 10 * 8, 4 << 10 * 8, 16 << 10 * 8, 64 << 10 * 8}
	for _, name := range []string{"gzip", "mcf"} {
		wc, ok := workload.SuiteConfig(name)
		if !ok {
			t.Fatalf("unknown benchmark %s", name)
		}
		_, base, err := run(wc, uarch.Baseline(), p)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []string{"last-value", "stride"} {
			var prev float64
			for i, b := range budgets {
				sized, ok := vpred.ConfigForBudget(kind, b)
				if !ok {
					t.Fatalf("no %s sizing fits %d bits", kind, b)
				}
				cfg := uarch.Baseline()
				cfg.VPred = vpredFor(wc, sized)
				_, res, err := run(wc, cfg, p)
				if err != nil {
					t.Fatal(err)
				}
				cpi := res.CPI()
				t.Logf("%s %s %d KB: CPI %.4f (base %.4f)", name, kind, b/8/1024, cpi, base.CPI())
				if i > 0 && cpi > prev {
					t.Errorf("%s %s: CPI rose from %.4f to %.4f when the budget grew to %d KB",
						name, kind, prev, cpi, b/8/1024)
				}
				prev = cpi
			}
			if prev >= base.CPI() {
				t.Errorf("%s %s at the largest budget: CPI %.4f did not beat the baseline %.4f",
					name, kind, prev, base.CPI())
			}
		}
	}
}

// TestC2ThrottleCost is C2's acceptance property: in a trace-driven model
// with no wrong-path fetch cost, throttling can only cost cycles — CPI must
// rise monotonically as the post-low-confidence fetch rate drops, and the
// measured frontend contributor of the penalty must grow (the stretched
// refill is exactly what the decomposer's frontend term charges).
func TestC2ThrottleCost(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment skipped in -short mode")
	}
	p := goldenParams()
	wc, _ := workload.SuiteConfig("crafty")
	rates := []float64{0, 0.75, 0.5, 0.25}
	var prevCPI, prevFrontend float64
	for i, rate := range rates {
		cfg := uarch.Baseline()
		cfg.FetchRate = rate
		tr, res, err := run(wc, cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.NewDecomposer(tr, res)
		if err != nil {
			t.Fatal(err)
		}
		m := core.Mean(d.DecomposeAll())
		t.Logf("rate %.2f: CPI %.4f frontend %.2f", rate, res.CPI(), m.Frontend)
		if i > 0 {
			if res.CPI() < prevCPI {
				t.Errorf("rate %.2f: CPI %.4f fell below the faster rate's %.4f", rate, res.CPI(), prevCPI)
			}
			if m.Frontend <= prevFrontend {
				t.Errorf("rate %.2f: frontend contributor %.2f did not grow past %.2f", rate, m.Frontend, prevFrontend)
			}
		}
		prevCPI, prevFrontend = res.CPI(), m.Frontend
	}
}

// TestC1PresetsBeatBaseline pins the headline C1 claim for the tag-free
// kinds: the last-value and stride presets improve CPI over no value
// speculation on both study workloads — value prediction's potential is
// positive wherever the value stream has predictable structure. FCM only
// has to engage (hits > 0): its context-hash aliasing can make it a net
// loss at canonical sizing on some workloads (at full sizing it loses on
// gzip and wins big on mcf — see the C1 table), which is the honest cost
// of context-based prediction, not a wiring bug.
func TestC1PresetsBeatBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment skipped in -short mode")
	}
	p := goldenParams()
	for _, name := range []string{"gzip", "mcf"} {
		wc, _ := workload.SuiteConfig(name)
		_, base, err := run(wc, uarch.Baseline(), p)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range vpred.PresetNames() {
			preset, _ := vpred.Preset(kind)
			cfg := uarch.Baseline()
			cfg.VPred = vpredFor(wc, preset)
			_, res, err := run(wc, cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			if res.ValuePredHits == 0 {
				t.Errorf("%s %s: no value-prediction hits", name, kind)
			}
			if kind != "fcm" && res.CPI() >= base.CPI() {
				t.Errorf("%s %s: CPI %.4f did not improve on baseline %.4f", name, kind, res.CPI(), base.CPI())
			}
		}
	}
}
