package experiments

import (
	"fmt"

	"intervalsim/internal/harness"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// Point builds a machine configuration at one (dispatch width, frontend
// depth, ROB size) design point: the baseline machine with its widths,
// depth, and window resized, and functional-unit counts scaled with width.
// It is the single config constructor behind cmd/sweep's grid and the
// intervalsimd service's machine specs, so a "w4-d7-r128" point means the
// same processor everywhere.
func Point(width, depth, rob int) uarch.Config {
	cfg := uarch.Baseline()
	cfg.Name = fmt.Sprintf("w%d-d%d-r%d", width, depth, rob)
	cfg.FetchWidth = width
	cfg.DispatchWidth = width
	cfg.IssueWidth = width
	cfg.CommitWidth = width
	cfg.FrontendDepth = depth
	cfg.ROBSize = rob
	cfg.IQSize = rob / 2
	cfg.FU.IntALU.Count = width
	if width > 4 {
		cfg.FU.MemPort.Count = 4
		cfg.FU.IntMul.Count = 4
	}
	return cfg
}

// SharedTrace returns the process-wide shared (record-layout, packed) trace
// for (wc, insts), generating and packing it on first use. Concurrent
// callers for the same key share one generation; both returned layouts are
// immutable and safe to share across goroutines. This is the entry point
// long-lived callers outside the experiment suite (the intervalsimd
// daemon) use to amortize trace generation across requests.
func SharedTrace(wc workload.Config, insts int) (*trace.Trace, *trace.SoA, error) {
	return DefaultTraceCache.Shared(wc, insts)
}

// TraceCacheCounters returns the shared trace memo's counter snapshot, for
// observability surfaces like intervalsimd's /metrics.
func TraceCacheCounters() harness.MemoStats { return DefaultTraceCache.Counters() }
