package experiments

import (
	"fmt"
	"io"

	"intervalsim/internal/core"
	"intervalsim/internal/report"
	"intervalsim/internal/uarch"
	"intervalsim/internal/vpred"
	"intervalsim/internal/workload"
)

// vpredFor attaches the workload's value stream to a value-predictor sizing:
// the predictor geometry comes from the preset or budget fitter, the stream
// is workload identity, and the pair is what the simulator runs.
func vpredFor(wc workload.Config, c vpred.Config) *vpred.Config {
	c.Stream = wc.ValueStream()
	return &c
}

// C1 is the value-prediction potential study: each predictor kind at its
// canonical sizing against a machine without value speculation, then CPI as
// a function of the value-table storage budget. Value prediction moves a
// *data* dependence out of the critical path when it hits and inserts a
// mispredict-shaped flush when it is confidently wrong, so the potential
// shows up as a CPI improvement bounded by how predictable the workload's
// value stream is — and the budget curve shows the improvement saturating
// once the table captures the predictable working set.
func C1(w io.Writer, p Params) error {
	names := []string{"gzip", "mcf"}
	kinds := vpred.PresetNames()

	headers := []string{"predictor", "entries", "storage"}
	for _, n := range names {
		headers = append(headers, n+" hit/KI", n+" misspec/KI", n+" CPI", n+" dIPC%")
	}
	t := report.New("C1: value-prediction potential at canonical sizing", headers...)

	baseCPI := make(map[string]float64, len(names))
	baseIPC := make(map[string]float64, len(names))
	row := []string{"none", "-", "-"}
	for _, name := range names {
		wc, ok := workload.SuiteConfig(name)
		if !ok {
			return fmt.Errorf("experiments: unknown benchmark %s", name)
		}
		_, res, err := run(wc, uarch.Baseline(), p)
		if err != nil {
			return err
		}
		baseCPI[name] = res.CPI()
		baseIPC[name] = res.IPC()
		row = append(row, "-", "-", fmt.Sprintf("%.3f", res.CPI()), "-")
	}
	t.AddRow(row...)

	for _, kind := range kinds {
		preset, ok := vpred.Preset(kind)
		if !ok {
			return fmt.Errorf("experiments: unknown value predictor %s", kind)
		}
		row := []string{kind, fmt.Sprintf("%d", preset.Entries),
			fmt.Sprintf("%.1f KB", float64(preset.StorageBits())/8/1024)}
		for _, name := range names {
			wc, _ := workload.SuiteConfig(name)
			cfg := uarch.Baseline()
			cfg.VPred = vpredFor(wc, preset)
			_, res, err := run(wc, cfg, p)
			if err != nil {
				return err
			}
			row = append(row,
				fmt.Sprintf("%.2f", perKI(res.ValuePredHits, res.Insts)),
				fmt.Sprintf("%.2f", perKI(res.ValueMisspecs, res.Insts)),
				fmt.Sprintf("%.3f", res.CPI()),
				fmt.Sprintf("%+.1f", (res.IPC()/baseIPC[name]-1)*100),
			)
		}
		t.AddRow(row...)
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	// C1b: CPI versus value-table storage budget. For the tag-free last-value
	// and stride tables a bigger table only removes aliasing, so CPI improves
	// monotonically with budget until the predictable producers all fit (the
	// acceptance test pins this). FCM is different: its context hashes can
	// alias into confident-wrong predictions at small sizes, so its curve may
	// dip below the no-prediction baseline before capacity rescues it — an
	// honest cost of context-based prediction, not a bug.
	budgets := []int64{1 << 10 * 8, 4 << 10 * 8, 16 << 10 * 8, 64 << 10 * 8}
	headers2 := []string{"budget"}
	for _, n := range names {
		for _, k := range kinds {
			headers2 = append(headers2, n+" "+k+" CPI")
		}
	}
	t2 := report.New("C1b: CPI vs value-predictor storage budget", headers2...)
	for _, b := range budgets {
		row := []string{fmt.Sprintf("%d KB", b/8/1024)}
		for _, name := range names {
			wc, _ := workload.SuiteConfig(name)
			for _, kind := range kinds {
				sized, ok := vpred.ConfigForBudget(kind, b)
				if !ok {
					return fmt.Errorf("experiments: no %s sizing fits %d bits", kind, b)
				}
				cfg := uarch.Baseline()
				cfg.VPred = vpredFor(wc, sized)
				_, res, err := run(wc, cfg, p)
				if err != nil {
					return err
				}
				row = append(row, fmt.Sprintf("%.3f", res.CPI()))
			}
		}
		t2.AddRow(row...)
	}
	return t2.Fprint(w)
}

// C2 sweeps the post-low-confidence-branch fetch rate (Ramachandran &
// Johnson's variable fetch policy) and decomposes the misprediction penalty
// at each rate. Throttling stretches the effective refill after every
// redirect that follows a low-confidence branch, so the frontend contributor
// grows as the rate drops while the drain contributors shrink (a thinner
// window drains faster); in a trace-driven model with no wrong-path fetch
// cost the net CPI can only rise — the experiment quantifies by how much,
// which is exactly the cost a real machine would trade against wasted
// wrong-path work.
func C2(w io.Writer, p Params) error {
	rates := []float64{0, 0.75, 0.5, 0.25} // 0 = full rate, the baseline
	name := "crafty"
	wc, ok := workload.SuiteConfig(name)
	if !ok {
		return fmt.Errorf("experiments: unknown benchmark %s", name)
	}
	t := report.New(fmt.Sprintf("C2: fetch-rate throttling after low-confidence branches (%s)", name),
		"fetch rate", "CPI", "avg penalty", "frontend(i)", "drain ILP(ii+iii)", "FU lat(iv)", "shortD(v)", "longD ovl")
	for _, rate := range rates {
		cfg := uarch.Baseline()
		cfg.FetchRate = rate
		tr, res, err := run(wc, cfg, p)
		if err != nil {
			return err
		}
		d, err := core.NewDecomposer(tr, res)
		if err != nil {
			return err
		}
		m := core.Mean(d.DecomposeAll())
		label := "1.00 (full)"
		if rate > 0 {
			label = fmt.Sprintf("%.2f", rate)
		}
		t.AddRow(label,
			fmt.Sprintf("%.3f", res.CPI()),
			fmt.Sprintf("%.1f", res.AvgMispredictPenalty()),
			fmt.Sprintf("%.1f", m.Frontend),
			fmt.Sprintf("%.1f", m.BaseILP),
			fmt.Sprintf("%.1f", m.FULatency),
			fmt.Sprintf("%.1f", m.ShortDMiss),
			fmt.Sprintf("%.1f", m.LongDMiss),
		)
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	// C2b: CPI sensitivity to the rate across benchmarks — how much a real
	// design could afford to throttle, per workload branchiness.
	names := []string{"gzip", "crafty", "twolf"}
	headers := []string{"fetch rate"}
	for _, n := range names {
		headers = append(headers, n+" CPI")
	}
	t2 := report.New("C2b: CPI vs post-low-confidence fetch rate", headers...)
	for _, rate := range rates {
		label := "1.00 (full)"
		if rate > 0 {
			label = fmt.Sprintf("%.2f", rate)
		}
		row := []string{label}
		for _, n := range names {
			wcn, ok := workload.SuiteConfig(n)
			if !ok {
				return fmt.Errorf("experiments: unknown benchmark %s", n)
			}
			cfg := uarch.Baseline()
			cfg.FetchRate = rate
			_, res, err := run(wcn, cfg, p)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.3f", res.CPI()))
		}
		t2.AddRow(row...)
	}
	return t2.Fprint(w)
}
