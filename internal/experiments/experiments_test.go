package experiments

import (
	"strings"
	"testing"
)

// tinyParams keeps the full-experiment integration tests fast while still
// exercising every code path end to end.
func tinyParams() Params { return Params{Insts: 80_000, Warmup: 20_000} }

func TestT1PrintsConfiguration(t *testing.T) {
	var sb strings.Builder
	if err := T1(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"frontend pipeline depth", "ROB", "L1I", "L2", "tournament"} {
		if !strings.Contains(out, want) {
			t.Errorf("T1 output missing %q", want)
		}
	}
}

// TestEveryExperimentRuns exercises each experiment end to end at tiny
// sizing and sanity-checks the rendered output.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiments skipped in -short mode")
	}
	wants := map[string][]string{
		"t2":  {"benchmark", "gzip", "mcf", "ILP beta"},
		"e1":  {"mispredicted branch dispatches", "dispatch resumes", "pipeline refill"},
		"e2":  {"interval length distribution", "gzip", "twolf"},
		"e3":  {"avg penalty", "penalty/L"},
		"e4":  {"since last miss event", "occupancy", "model"},
		"e5":  {"frontend(i)", "drain ILP(ii+iii)", "shortD(v)", "total"},
		"e6":  {"low-ilp", "high-ilp", "chain prob"},
		"e7":  {"×1 penalty", "×3 penalty"},
		"e8":  {"shortD/KI", "shortD component"},
		"e9":  {"sim CPI", "model CPI", "err%"},
		"e10": {"frontend pipeline depth", "ROB", "occupancy"},
		"e11": {"cycle stacks", "mdl base", "sim bpred"},
		"a1":  {"full model", "serial-miss", "mean |err|"},
		"a2":  {"predictor sweep", "perceptron", "perfect"},
		"e12": {"if-conversion", "targeted IPC", "arbitrary IPC"},
		"a3":  {"sampled simulation", "err%", "speedup"},
		"a4":  {"confidence intervals", "95% CI", "units", "covered"},
		"b1":  {"predictor shootout", "tage", "2bc-gskew", "storage budget"},
		"b2":  {"predictability taxa", "h2p", "history-correlated", "hard-to-predict"},
	}
	reg := Registry()
	for id, needles := range wants {
		id, needles := id, needles
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			fn, ok := reg[id]
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			var sb strings.Builder
			if err := fn(&sb, tinyParams()); err != nil {
				t.Fatalf("%s failed: %v", id, err)
			}
			out := sb.String()
			if len(out) < 100 {
				t.Fatalf("%s produced only %d bytes", id, len(out))
			}
			for _, needle := range needles {
				if !strings.Contains(out, needle) {
					t.Errorf("%s output missing %q", id, needle)
				}
			}
		})
	}
}

func TestRegistryCoversAll(t *testing.T) {
	reg := Registry()
	for _, id := range []string{"t1", "t2", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "a1", "a2", "a3", "a4", "b1", "b2", "c1", "c2"} {
		if _, ok := reg[id]; !ok {
			t.Errorf("registry missing %s", id)
		}
	}
	if len(reg) != 22 {
		t.Errorf("registry has %d entries, want 22", len(reg))
	}
}

func TestParams(t *testing.T) {
	d, q := DefaultParams(), QuickParams()
	if d.Insts <= q.Insts || d.Warmup <= q.Warmup {
		t.Error("default params should exceed quick params")
	}
	if q.Warmup >= uint64(q.Insts) {
		t.Error("warmup must leave instructions to measure")
	}
}

// TestExperimentsDeterministic verifies the whole pipeline (generator →
// simulator → analysis → formatting) is bit-reproducible across runs.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiments skipped in -short mode")
	}
	render := func() string {
		var sb strings.Builder
		if err := E3(&sb, tinyParams()); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if render() != render() {
		t.Fatal("E3 output not reproducible")
	}
}
