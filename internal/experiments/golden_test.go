package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"intervalsim/internal/core"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// -update regenerates the golden files instead of comparing against them.
// Run it deliberately after a change that is *supposed* to alter simulator
// numerics, and review the diff like any other code change:
//
//	go test ./internal/experiments -run TestGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/ instead of comparing")

// goldenParams is the pinned sizing of the golden runs: small enough that
// the full suite stays in single-digit seconds, large enough that every
// penalty contributor is exercised past warmup.
func goldenParams() Params { return Params{Insts: 60_000, Warmup: 15_000} }

// goldenMetrics renders the per-benchmark metric lines the golden test pins:
// headline counters (CPI, penalty) plus the full E5 decomposition columns.
// Values are printed with enough digits that any numeric drift — a different
// cycle count, one extra misprediction, a reordered event — changes the text.
func goldenMetrics() (string, error) {
	cfg := uarch.Baseline()
	p := goldenParams()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# golden metrics: baseline config, insts=%d warmup=%d\n", p.Insts, p.Warmup)
	fmt.Fprintf(&buf, "# benchmark insts cycles cpi penalty mispredicts icache shortD longD frontend baseILP fuLat shortDMiss longDMiss residual total\n")
	for _, wc := range workload.Suite() {
		tr, res, err := run(wc, cfg, p)
		if err != nil {
			return "", fmt.Errorf("%s: %w", wc.Name, err)
		}
		d, err := core.NewDecomposer(tr, res)
		if err != nil {
			return "", fmt.Errorf("%s: %w", wc.Name, err)
		}
		m := core.Mean(d.DecomposeAll())
		fmt.Fprintf(&buf, "%s %d %d %.9f %.9f %d %d %d %d %.6f %.6f %.6f %.6f %.6f %.6f %.6f\n",
			wc.Name, res.Insts, res.Cycles, res.CPI(), res.AvgMispredictPenalty(),
			res.Mispredicts, res.ICacheMisses, res.ShortDMisses, res.LongDMisses,
			m.Frontend, m.BaseILP, m.FULatency, m.ShortDMiss, m.LongDMiss, m.Residual, m.Total)
	}
	return buf.String(), nil
}

// TestGoldenMetrics fails on any numeric drift in the simulator or the
// decomposition pipeline relative to the checked-in fixtures. It is the
// contract that performance work on the hot path preserves results exactly:
// cycle counts, event counts, and the per-misprediction decomposition are
// compared digit for digit.
func TestGoldenMetrics(t *testing.T) {
	got, err := goldenMetrics()
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "golden_metrics.txt"), got)
}

// TestGoldenE5Table pins the rendered E5 decomposition table itself, so the
// report formatting and the numbers behind the paper's central table are
// both covered.
func TestGoldenE5Table(t *testing.T) {
	var buf bytes.Buffer
	if err := E5(&buf, goldenParams()); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "golden_e5.txt"), buf.String())
}

// TestGoldenA4Table pins the rendered sampled-CI table: the ratio-estimator
// intervals, unit counts, and coverage column of the sampled experiment are
// all deterministic, so any drift in the sampling machinery — phase
// scheduling, unit bookkeeping, the Student-t interval — changes the bytes.
func TestGoldenA4Table(t *testing.T) {
	var buf bytes.Buffer
	if err := A4(&buf, goldenParams()); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "golden_a4.txt"), buf.String())
}

// TestGoldenB1Table pins the equal-budget predictor shootout: the sized
// configurations, the replayed MPKI/penalty/IPC of every kind, and the
// budget curve are all deterministic — drift in TAGE, 2Bc-gskew, the
// storage accounting, or the budget fitter changes the bytes.
func TestGoldenB1Table(t *testing.T) {
	var buf bytes.Buffer
	if err := B1(&buf, goldenParams()); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "golden_b1.txt"), buf.String())
}

// TestGoldenB2Table pins the taxa breakdown and the H2P table on the
// history-heavy workload, including the per-taxon penalty attribution from
// the cycle-level run.
func TestGoldenB2Table(t *testing.T) {
	var buf bytes.Buffer
	if err := B2(&buf, goldenParams()); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "golden_b2.txt"), buf.String())
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if string(want) == got {
		return
	}
	// Report the first diverging line to make drift reports actionable.
	wantLines := bytes.Split(want, []byte("\n"))
	gotLines := bytes.Split([]byte(got), []byte("\n"))
	for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
		var w, g []byte
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if !bytes.Equal(w, g) {
			t.Fatalf("golden mismatch in %s at line %d:\n  want: %s\n  got:  %s\n(rerun with -update only if the change is intentional)",
				path, i+1, w, g)
		}
	}
	t.Fatalf("golden mismatch in %s (length only)", path)
}
