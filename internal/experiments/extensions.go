package experiments

import (
	"fmt"
	"io"
	"math"

	"intervalsim/internal/core"
	"intervalsim/internal/report"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// E11 is an extension beyond the paper's figures: cycle stacks. Interval
// analysis implies that total cycles decompose into a base component plus
// per-event penalties; this experiment prints that decomposition from both
// sides — the model's predicted stack, and the detailed simulator's
// dispatch-stall accounting — as fractions of total cycles. (Cycle stacks
// built on interval analysis are exactly where this line of work went next.)
func E11(w io.Writer, p Params) error {
	cfg := uarch.Baseline()
	t := report.New("E11 (extension): cycle stacks — model prediction vs simulator stall accounting (fraction of cycles)",
		"benchmark", "mdl base", "mdl bpred", "mdl I$", "mdl longD", "sim dispatch", "sim bpred", "sim I$", "sim ROB/IQ", "sim other")
	for _, wc := range workload.Suite() {
		tr, res, err := run(wc, cfg, p)
		if err != nil {
			return err
		}
		prof, err := profileFor(wc, cfg, p)
		if err != nil {
			return err
		}
		m, err := core.BuildModel(func() trace.Reader { return tr.Reader() }, cfg, prof.ShortMissRatio(), p.Insts)
		if err != nil {
			return err
		}
		pred, err := m.PredictCPI(prof)
		if err != nil {
			return err
		}
		mt := pred.Total()

		st := res.Stalls
		stallBpred := st.BranchResolve + st.Refill
		stallIC := st.ICacheMiss
		stallBack := st.ROBFull + st.IQFull
		stallOther := st.Other
		busy := res.Cycles - stallBpred - stallIC - stallBack - stallOther
		sc := float64(res.Cycles)

		t.AddRow(wc.Name,
			fmt.Sprintf("%.2f", pred.Base/mt),
			fmt.Sprintf("%.2f", pred.Bpred/mt),
			fmt.Sprintf("%.2f", pred.ICache/mt),
			fmt.Sprintf("%.2f", pred.LongData/mt),
			fmt.Sprintf("%.2f", float64(busy)/sc),
			fmt.Sprintf("%.2f", float64(stallBpred)/sc),
			fmt.Sprintf("%.2f", float64(stallIC)/sc),
			fmt.Sprintf("%.2f", float64(stallBack)/sc),
			fmt.Sprintf("%.2f", float64(stallOther)/sc),
		)
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nNote: the two sides attribute overlap differently (the simulator charges a")
	fmt.Fprintln(w, "long miss to ROB-full dispatch stalls; the model charges it to the event),")
	fmt.Fprintln(w, "so columns correspond loosely: base~dispatch, bpred~bpred, longD~ROB/IQ.")
	return nil
}

// A1 is the model ablation: how much does each refinement of the analytic
// model contribute to E9's accuracy? Each row disables one refinement and
// reports the signed CPI error per benchmark plus the mean absolute error.
func A1(w io.Writer, p Params) error {
	cfg := uarch.Baseline()
	names := []string{"gzip", "mcf", "parser", "twolf"}
	variants := []struct {
		label string
		opts  core.ModelOptions
	}{
		{"full model", core.ModelOptions{}},
		{"- serial-miss detection", core.ModelOptions{NoSerialMisses: true}},
		{"- long-miss overlap credit", core.ModelOptions{NoOverlapCredit: true}},
		{"- fetch-break dispatch cap", core.ModelOptions{NoFetchCap: true}},
		{"- inherent-ILP dispatch cap", core.ModelOptions{NoILPCap: true}},
		{"- scheduled resolution (raw critical path)", core.ModelOptions{NaiveResolution: true}},
	}

	headers := append([]string{"model variant"}, names...)
	headers = append(headers, "mean |err|")
	t := report.New("A1 (ablation): CPI error of the analytic model vs cycle-level simulation (%)", headers...)

	type benchData struct {
		model *core.Model
		prof  *core.Profile
		res   *uarch.Result
	}
	data := make([]benchData, 0, len(names))
	for _, name := range names {
		wc, ok := workload.SuiteConfig(name)
		if !ok {
			return fmt.Errorf("experiments: unknown benchmark %s", name)
		}
		tr, res, err := run(wc, cfg, p)
		if err != nil {
			return err
		}
		prof, err := profileFor(wc, cfg, p)
		if err != nil {
			return err
		}
		m, err := core.BuildModel(func() trace.Reader { return tr.Reader() }, cfg, prof.ShortMissRatio(), p.Insts)
		if err != nil {
			return err
		}
		data = append(data, benchData{model: m, prof: prof, res: res})
	}

	for _, v := range variants {
		row := []string{v.label}
		var absSum float64
		for _, d := range data {
			d.model.Opts = v.opts
			pred, err := d.model.PredictCPI(d.prof)
			if err != nil {
				return err
			}
			relErr, err := core.ValidationError(pred, d.res)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%+.1f", relErr*100))
			absSum += math.Abs(relErr) * 100
		}
		row = append(row, fmt.Sprintf("%.1f", absSum/float64(len(data))))
		t.AddRow(row...)
	}
	return t.Fprint(w)
}

// A2 sweeps the branch predictor: interval analysis says a better predictor
// changes the *number* of misprediction events, while the per-event penalty
// is set by the pipeline and the program (occupancy, ILP, latencies) — so
// the average penalty should move far less than the MPKI.
func A2(w io.Writer, p Params) error {
	preds := []uarch.PredictorSpec{
		{Kind: "not-taken"},
		{Kind: "bimodal", Entries: 16384, BTBEntries: 4096},
		{Kind: "gshare", Entries: 16384, HistBits: 12, BTBEntries: 4096},
		{Kind: "local", Entries: 16384, HistBits: 10, BTBEntries: 4096},
		{Kind: "tournament", Entries: 16384, HistBits: 12, BTBEntries: 4096},
		{Kind: "perceptron", Entries: 1024, HistBits: 24, BTBEntries: 4096},
		{Kind: "perfect"},
	}
	names := []string{"crafty", "twolf"}
	headers := []string{"predictor"}
	for _, n := range names {
		headers = append(headers, n+" MPKI", n+" penalty", n+" IPC")
	}
	t := report.New("A2 (ablation): branch predictor sweep — event count vs per-event penalty", headers...)
	for _, spec := range preds {
		row := []string{spec.Kind}
		for _, name := range names {
			wc, ok := workload.SuiteConfig(name)
			if !ok {
				return fmt.Errorf("experiments: unknown benchmark %s", name)
			}
			cfg := uarch.Baseline()
			cfg.Pred = spec
			_, res, err := run(wc, cfg, p)
			if err != nil {
				return err
			}
			pen := "-"
			if res.Mispredicts > 0 {
				pen = fmt.Sprintf("%.1f", res.AvgMispredictPenalty())
			}
			row = append(row,
				fmt.Sprintf("%.1f", perKI(res.Mispredicts, res.Insts)),
				pen,
				fmt.Sprintf("%.2f", res.IPC()),
			)
		}
		t.AddRow(row...)
	}
	return t.Fprint(w)
}

// E12 is the paper's motivating application: use the penalty attribution to
// pick the branches worth if-converting. It predicates (idealized: converts
// to ALU ops) the costliest static branches covering ~25% of the measured
// penalty, re-simulates, and compares against predicating an equal number of
// arbitrary branches — targeted conversion should recover far more IPC.
func E12(w io.Writer, p Params) error {
	cfg := uarch.Baseline()
	t := report.New("E12 (extension): targeted if-conversion of the costliest branches",
		"benchmark", "branches picked", "penalty share", "base IPC", "targeted IPC", "gain%", "arbitrary IPC", "gain%")
	for _, name := range []string{"crafty", "twolf", "vpr"} {
		wc, ok := workload.SuiteConfig(name)
		if !ok {
			return fmt.Errorf("experiments: unknown benchmark %s", name)
		}
		tr, res, err := run(wc, cfg, p)
		if err != nil {
			return err
		}
		costs := core.CostliestBranches(tr, res, 0)
		var total float64
		for _, c := range costs {
			total += c.TotalPenalty
		}
		// Pick the head of the distribution up to ~25% of the total penalty.
		target := make(map[uint64]bool)
		var covered float64
		for _, c := range costs {
			if covered >= total*0.25 {
				break
			}
			target[c.PC] = true
			covered += c.TotalPenalty
		}
		if len(target) == 0 || len(target) == len(costs) {
			return fmt.Errorf("experiments: degenerate pick for %s (%d of %d)", name, len(target), len(costs))
		}
		// The control group: the same number of branches from the cheap tail.
		arbitrary := make(map[uint64]bool)
		for i := len(costs) - 1; i >= 0 && len(arbitrary) < len(target); i-- {
			arbitrary[costs[i].PC] = true
		}

		simIPC := func(pcs map[uint64]bool) (float64, error) {
			ptr := core.Predicate(tr, pcs)
			r2, err := uarch.Run(trace.Pack(ptr).Reader(), cfg, uarch.Options{WarmupInsts: p.Warmup})
			if err != nil {
				return 0, err
			}
			return r2.IPC(), nil
		}
		targetedIPC, err := simIPC(target)
		if err != nil {
			return err
		}
		arbitraryIPC, err := simIPC(arbitrary)
		if err != nil {
			return err
		}
		base := res.IPC()
		t.AddRow(name,
			fmt.Sprintf("%d/%d", len(target), len(costs)),
			fmt.Sprintf("%.0f%%", covered/total*100),
			fmt.Sprintf("%.2f", base),
			fmt.Sprintf("%.2f", targetedIPC),
			fmt.Sprintf("%+.1f", (targetedIPC/base-1)*100),
			fmt.Sprintf("%.2f", arbitraryIPC),
			fmt.Sprintf("%+.1f", (arbitraryIPC/base-1)*100),
		)
	}
	return t.Fprint(w)
}

// A3 validates sampled simulation with functional warming (an era-standard
// methodology the substrate supports): alternating 50K detailed / 150K
// fast-forwarded instructions must estimate the full-run CPI closely while
// simulating a quarter of the instructions in detail.
func A3(w io.Writer, p Params) error {
	cfg := uarch.Baseline()
	t := report.New("A3 (extension): sampled simulation (50K detailed / 150K functional warming)",
		"benchmark", "full CPI", "sampled CPI", "err%", "detail fraction", "speedup")
	for _, wc := range workload.Suite() {
		mk := func() trace.Reader { return workload.MustNew(wc, p.Insts) }

		// Matched measurement regions: the full run discards its warmup
		// statistics; the sampled run fast-forwards the same region
		// functionally and then samples the remainder.
		t0 := timeNow()
		full, err := uarch.Run(mk(), cfg, uarch.Options{WarmupInsts: p.Warmup})
		if err != nil {
			return err
		}
		fullDur := timeNow() - t0

		t1 := timeNow()
		sampled, err := uarch.Run(mk(), cfg, uarch.Options{
			SampleStartSkip: p.Warmup,
			SampleDetailed:  50_000,
			SampleSkip:      150_000,
		})
		if err != nil {
			return err
		}
		sampDur := timeNow() - t1

		relErr := (sampled.CPI() - full.CPI()) / full.CPI()
		// The speedup cell is the one number in the whole report derived
		// from wall-clock time; Deterministic replaces it with a placeholder
		// so the full report is byte-reproducible (see Params.Deterministic).
		speedupCell := fmt.Sprintf("%.1fx", float64(fullDur)/float64(sampDur))
		if p.Deterministic {
			speedupCell = "-"
		}
		t.AddRow(wc.Name,
			fmt.Sprintf("%.3f", full.CPI()),
			fmt.Sprintf("%.3f", sampled.CPI()),
			fmt.Sprintf("%+.1f", relErr*100),
			fmt.Sprintf("%.2f", float64(sampled.Insts)/float64(full.Insts)),
			speedupCell,
		)
	}
	return t.Fprint(w)
}

// A4 pins the statistical machinery sampled mode reports: for every
// benchmark, the 95% confidence interval a sampled run attaches to its CPI
// (a ratio estimator over the systematic measurement units) must cover the
// CPI of a full detailed run over the same steady-state region. Phase
// lengths scale with the sizing (1% detailed, 4% functional warming per
// period), so quick and full runs both observe ~15 units per point. Unlike
// A3, no cell here derives from wall-clock time: the whole table is
// byte-reproducible without -deterministic.
func A4(w io.Writer, p Params) error {
	cfg := uarch.Baseline()
	detailed := uint64(p.Insts) / 100
	skip := 4 * detailed
	t := report.New(fmt.Sprintf("A4 (extension): sampled-run CPI confidence intervals (95%%; %d detailed / %d warming per period)", detailed, skip),
		"benchmark", "full CPI", "sampled CPI", "95% CI", "rel err", "units", "covered")
	for _, wc := range workload.Suite() {
		st, err := suiteTraceFor(wc, p.Insts)
		if err != nil {
			return err
		}
		// The full-run reference excludes the cold-start region the sampled
		// run fast-forwards, so both estimate the same steady state.
		full, err := uarch.Run(st.soa.Reader(), cfg, uarch.Options{WarmupInsts: p.Warmup})
		if err != nil {
			return err
		}
		sampled, err := uarch.Run(st.soa.Reader(), cfg, uarch.Options{
			SampleStartSkip: p.Warmup,
			SampleDetailed:  detailed,
			SampleSkip:      skip,
		})
		if err != nil {
			return err
		}
		s := sampled.Sample
		if s == nil {
			return fmt.Errorf("experiments: %s sampled run carried no sampling statistics", wc.Name)
		}
		covered := "yes"
		if !s.CPI.Covers(full.CPI()) {
			covered = "NO"
		}
		t.AddRow(wc.Name,
			fmt.Sprintf("%.3f", full.CPI()),
			fmt.Sprintf("%.3f", s.CPI.Mean),
			fmt.Sprintf("[%.3f, %.3f]", s.CPI.Lower, s.CPI.Upper),
			fmt.Sprintf("%.1f%%", 100*s.CPI.RelErr),
			fmt.Sprintf("%d", s.Units),
			covered,
		)
	}
	return t.Fprint(w)
}
