package experiments

import (
	"testing"

	"intervalsim/internal/bpred"
	"intervalsim/internal/predictability"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// TestB1TageBeatsTournament is the headline acceptance check of the modern
// predictor family: at the tournament's own storage budget, TAGE must
// deliver fewer mispredicts per kilo-instruction on at least one suite
// workload. (It usually wins on all of them; requiring one keeps the test
// robust to sizing changes.)
func TestB1TageBeatsTournament(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment skipped in -short mode")
	}
	p := goldenParams()
	budget := bpred.Config{Kind: "tournament", Entries: 16384, HistBits: 12}.StorageBits()
	tage, ok := bpred.ConfigForBudget("tage", budget)
	if !ok {
		t.Fatal("no tage sizing fits the tournament budget")
	}
	tour, ok := bpred.ConfigForBudget("tournament", budget)
	if !ok {
		t.Fatal("no tournament sizing fits its own budget")
	}
	if tour.StorageBits() != budget {
		t.Fatalf("tournament does not exactly refit its own budget: %d vs %d", tour.StorageBits(), budget)
	}
	wins := 0
	for _, name := range []string{"crafty", "twolf"} {
		wc, _ := workload.SuiteConfig(name)
		mpki := func(spec bpred.Config) float64 {
			cfg := uarch.Baseline()
			cfg.Pred = spec
			_, res, err := run(wc, cfg, p)
			if err != nil {
				t.Fatalf("%s with %s: %v", name, spec.Kind, err)
			}
			return perKI(res.Mispredicts, res.Insts)
		}
		tageMPKI, tourMPKI := mpki(tage), mpki(tour)
		t.Logf("%s: tage %.2f MPKI vs tournament %.2f MPKI (budget %d bits)", name, tageMPKI, tourMPKI, budget)
		if tageMPKI < tourMPKI {
			wins++
		}
	}
	if wins == 0 {
		t.Error("tage beat tournament MPKI on no workload at equal storage budget")
	}
}

// TestB2H2PMajority pins B2's acceptance property: on the history-heavy
// crafty variant, the hard-to-predict taxon must supply the majority of the
// subject's direction mispredicts — the taxa machinery exists to expose
// exactly that concentration.
func TestB2H2PMajority(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment skipped in -short mode")
	}
	p := goldenParams()
	st, err := suiteTraceFor(b2Workload(), p.Insts)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := predictability.Collect(st.soa, predictability.Options{Warmup: int(p.Warmup)})
	if err != nil {
		t.Fatal(err)
	}
	var h2p uint64
	for _, s := range prof.Summaries() {
		if s.Taxon == predictability.TaxonH2P {
			h2p = s.DirMispredicts
		}
	}
	total := prof.TotalDirMispredicts()
	if total == 0 {
		t.Fatal("no direction mispredicts counted")
	}
	if 2*h2p <= total {
		t.Errorf("h2p supplies %d of %d direction mispredicts, want a majority", h2p, total)
	}
}
