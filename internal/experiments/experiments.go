// Package experiments regenerates every table and figure of the paper's
// evaluation (the experiment index in DESIGN.md). Each experiment is a
// function that simulates what it needs and renders a report.Table; the
// cmd/experiments tool and the repository's bench_test.go both call in here,
// so the printed artifacts and the benchmark harness cannot drift apart.
package experiments

import (
	"fmt"
	"io"

	"intervalsim/internal/core"
	"intervalsim/internal/ilp"
	"intervalsim/internal/report"
	"intervalsim/internal/stats"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// Params sizes the simulations. The defaults aim at stable statistics in
// tens of seconds for the full suite; benchmarks in bench_test.go use
// smaller values.
type Params struct {
	Insts  int    // dynamic instructions per run
	Warmup uint64 // instructions excluded from statistics

	// Deterministic normalizes every wall-clock-derived cell (today only
	// A3's speedup column) to a fixed placeholder, so the full report is
	// byte-reproducible across runs and machines and can be diffed in CI.
	// Simulation outputs are unaffected: they are deterministic already.
	Deterministic bool
}

// DefaultParams returns the experiment sizing used for EXPERIMENTS.md.
func DefaultParams() Params {
	return Params{Insts: 2_000_000, Warmup: 500_000}
}

// QuickParams returns a reduced sizing for smoke tests and benchmarks.
func QuickParams() Params {
	return Params{Insts: 300_000, Warmup: 50_000}
}

// run simulates one workload on cfg with full instrumentation. The trace
// comes packed from the shared memo (struct-of-arrays layout, index-based
// hot path, precomputed dependence metadata), and speculation outcomes are
// replayed from the shared miss-event overlay — computed once per (trace,
// predictor, cache geometry) and reused by every timing point that asks,
// with results bit-identical to live simulation.
func run(wc workload.Config, cfg uarch.Config, p Params) (*trace.Trace, *uarch.Result, error) {
	st, err := suiteTraceFor(wc, p.Insts)
	if err != nil {
		return nil, nil, err
	}
	ov, err := overlayFor(st, cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := uarch.Run(st.soa.Reader(), cfg, uarch.Options{
		RecordEvents:      true,
		RecordMispredicts: true,
		RecordLoadLevels:  true,
		WarmupInsts:       p.Warmup,
		Overlay:           ov,
	})
	if err != nil {
		return nil, nil, err
	}
	return st.tr, res, nil
}

func perKI(n, insts uint64) float64 {
	if insts == 0 {
		return 0
	}
	return float64(n) / float64(insts) * 1000
}

// T1 prints the baseline machine configuration.
func T1(w io.Writer) error {
	cfg := uarch.Baseline()
	t := report.New("T1: baseline processor configuration", "parameter", "value")
	t.AddRow("dispatch/issue/commit width", fmt.Sprintf("%d / %d / %d", cfg.DispatchWidth, cfg.IssueWidth, cfg.CommitWidth))
	t.AddRow("fetch width", fmt.Sprintf("%d", cfg.FetchWidth))
	t.AddRow("frontend pipeline depth", fmt.Sprintf("%d", cfg.FrontendDepth))
	t.AddRow("ROB / issue queue", fmt.Sprintf("%d / %d", cfg.ROBSize, cfg.IQSize))
	t.AddRow("int ALU", fuLine(cfg.FU.IntALU))
	t.AddRow("int mul", fuLine(cfg.FU.IntMul))
	t.AddRow("int div", fuLine(cfg.FU.IntDiv))
	t.AddRow("fp add", fuLine(cfg.FU.FPAdd))
	t.AddRow("fp mul", fuLine(cfg.FU.FPMul))
	t.AddRow("fp div", fuLine(cfg.FU.FPDiv))
	t.AddRow("mem ports", fmt.Sprintf("%d", cfg.FU.MemPort.Count))
	t.AddRow("branch predictor", fmt.Sprintf("%s %d entries, %d history, %d BTB",
		cfg.Pred.Kind, cfg.Pred.Entries, cfg.Pred.HistBits, cfg.Pred.BTBEntries))
	t.AddRow("L1I", cfg.Mem.L1I.String())
	t.AddRow("L1D", cfg.Mem.L1D.String())
	t.AddRow("L2", cfg.Mem.L2.String())
	t.AddRow("latencies L1/L2/mem", fmt.Sprintf("%d / %d / %d cycles",
		cfg.Mem.Lat.L1, cfg.Mem.Lat.L2, cfg.Mem.Lat.Mem))
	return t.Fprint(w)
}

func fuLine(p uarch.FUPool) string {
	pipe := "pipelined"
	if !p.Pipelined {
		pipe = "unpipelined"
	}
	return fmt.Sprintf("%d × %d cy, %s", p.Count, p.Latency, pipe)
}

// T2 characterizes the benchmark suite on the baseline machine.
func T2(w io.Writer, p Params) error {
	cfg := uarch.Baseline()
	t := report.New("T2: benchmark characterization (baseline machine)",
		"benchmark", "IPC", "br-MPKI", "I$-MPKI", "shortD/KI", "longD/KI", "ILP beta", "K(ROB)")
	for _, wc := range workload.Suite() {
		tr, res, err := run(wc, cfg, p)
		if err != nil {
			return err
		}
		char, err := ilp.Profile(tr.Reader(), ilp.DefaultWindows(), ilp.UnitLatency, p.Insts)
		if err != nil {
			return err
		}
		t.AddRow(wc.Name,
			fmt.Sprintf("%.2f", res.IPC()),
			fmt.Sprintf("%.2f", perKI(res.Mispredicts, res.Insts)),
			fmt.Sprintf("%.2f", perKI(res.ICacheMisses, res.Insts)),
			fmt.Sprintf("%.2f", perKI(res.ShortDMisses, res.Insts)),
			fmt.Sprintf("%.2f", perKI(res.LongDMisses, res.Insts)),
			fmt.Sprintf("%.2f", char.Beta),
			fmt.Sprintf("%.1f", char.EvalInterp(cfg.ROBSize)),
		)
	}
	return t.Fprint(w)
}

// E1 prints the dispatch-rate timeline around one branch misprediction: the
// textbook interval picture — steady dispatch, a stall while the branch
// resolves, the refill, then steady dispatch again.
func E1(w io.Writer, p Params) error {
	cfg := uarch.Baseline()
	wc, _ := workload.SuiteConfig("gzip")
	st, err := suiteTraceFor(wc, p.Insts)
	if err != nil {
		return err
	}
	ov, err := overlayFor(st, cfg)
	if err != nil {
		return err
	}
	res, err := uarch.Run(st.soa.Reader(), cfg, uarch.Options{
		RecordMispredicts: true,
		TimelineCycles:    200_000,
		Overlay:           ov,
	})
	if err != nil {
		return err
	}
	// Pick a misprediction with a well-filled window, far enough in to be
	// past cold start, whose whole penalty lies inside the timeline.
	var pick *uarch.MispredictRecord
	for i := range res.Records {
		r := &res.Records[i]
		if r.DispatchCycle > 5000 && r.ResumeCycle > 0 &&
			int(r.ResumeCycle)+20 < len(res.Timeline) && r.SinceLastMiss > 40 {
			pick = r
			break
		}
	}
	if pick == nil {
		return fmt.Errorf("experiments: no suitable misprediction in timeline window")
	}
	t := report.New(fmt.Sprintf(
		"E1: dispatch timeline around a misprediction (branch dispatched at cycle %d, resolved %d, resumed %d)",
		pick.DispatchCycle, pick.ResolveCycle, pick.ResumeCycle),
		"cycle(rel)", "dispatched", "phase")
	start := int(pick.DispatchCycle) - 12
	end := int(pick.ResumeCycle) + 8
	for c := start; c < end && c < len(res.Timeline); c++ {
		phase := "interval"
		switch {
		case c == int(pick.DispatchCycle):
			phase = "<< mispredicted branch dispatches"
		case c > int(pick.DispatchCycle) && c < int(pick.ResolveCycle):
			phase = "resolving (window drain)"
		case c >= int(pick.ResolveCycle) && c < int(pick.ResumeCycle):
			phase = "pipeline refill"
		case c == int(pick.ResumeCycle):
			phase = "<< dispatch resumes"
		}
		t.AddRow(fmt.Sprintf("%+d", c-int(pick.DispatchCycle)),
			fmt.Sprintf("%d", res.Timeline[c]), phase)
	}
	return t.Fprint(w)
}

// E2 prints the interval-length distribution per benchmark: the fraction of
// intervals in each power-of-two length bucket, demonstrating the burstiness
// of miss events (mass at short intervals).
func E2(w io.Writer, p Params) error {
	cfg := uarch.Baseline()
	const buckets = 14
	t := report.New("E2: inter-miss interval length distribution (fraction of intervals; bucket = [2^i, 2^(i+1)) insts)",
		append([]string{"benchmark"}, bucketHeaders(buckets)...)...)
	for _, wc := range workload.Suite() {
		_, res, err := run(wc, cfg, p)
		if err != nil {
			return err
		}
		ivs, err := core.Segment(res.Events, uint64(p.Insts))
		if err != nil {
			return err
		}
		sum := core.Summarize(ivs, buckets)
		row := []string{wc.Name}
		for i := 0; i < buckets; i++ {
			row = append(row, fmt.Sprintf("%.3f", sum.LengthLog.Fraction(i)))
		}
		t.AddRow(row...)
	}
	return t.Fprint(w)
}

func bucketHeaders(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("2^%d", i)
	}
	return out
}

// E3 reports the average branch misprediction penalty per benchmark against
// the frontend pipeline length: the paper's headline table (penalty ≫ L).
func E3(w io.Writer, p Params) error {
	cfg := uarch.Baseline()
	t := report.New(fmt.Sprintf("E3: average misprediction penalty vs frontend pipeline length (L = %d)", cfg.FrontendDepth),
		"benchmark", "mispredicts", "avg penalty", "avg resolution", "refill (L)", "penalty/L")
	for _, wc := range workload.Suite() {
		_, res, err := run(wc, cfg, p)
		if err != nil {
			return err
		}
		var resol stats.Running
		for _, r := range res.Records {
			if r.Penalty() > 0 {
				resol.Add(r.ResolutionTime())
			}
		}
		pen := res.AvgMispredictPenalty()
		t.AddRow(wc.Name,
			fmt.Sprintf("%d", res.Mispredicts),
			fmt.Sprintf("%.1f", pen),
			fmt.Sprintf("%.1f", resol.Mean()),
			fmt.Sprintf("%d", cfg.FrontendDepth),
			fmt.Sprintf("%.1f", pen/float64(cfg.FrontendDepth)),
		)
	}
	return t.Fprint(w)
}

// E4 reports the measured penalty as a function of the number of
// instructions since the last miss event (log2 buckets) for the
// compute-bound benchmarks, next to the analytic model's prediction:
// rising, then saturating once the window fills - contributor (ii). A
// second table buckets by the directly recorded window occupancy, the
// mechanism behind the distance effect. Memory-bound benchmarks are
// excluded here because a long-miss load inside the window inflates the
// measured penalty independently of the refill effect (see E5's longD
// column and the discussion in EXPERIMENTS.md).
func E4(w io.Writer, p Params) error {
	cfg := uarch.Baseline()
	const buckets = 12
	names := []string{"gzip", "crafty", "twolf"}

	dist := report.New("E4a: penalty vs instructions since last miss event (log2 buckets)",
		append([]string{"bucket"}, e4Headers(names)...)...)
	occ := report.New("E4b: penalty vs window occupancy at branch dispatch (log2 buckets)",
		append([]string{"bucket"}, e4Headers(names)...)...)

	type cell struct {
		measured stats.Running
		model    stats.Running
	}
	distCells := make([][]cell, len(names))
	occCells := make([][]cell, len(names))
	for bi, name := range names {
		distCells[bi] = make([]cell, buckets)
		occCells[bi] = make([]cell, buckets)
		wc, ok := workload.SuiteConfig(name)
		if !ok {
			return fmt.Errorf("experiments: unknown benchmark %s", name)
		}
		tr, res, err := run(wc, cfg, p)
		if err != nil {
			return err
		}
		prof, err := profileFor(wc, cfg, p)
		if err != nil {
			return err
		}
		m, err := core.BuildModel(func() trace.Reader { return tr.Reader() }, cfg, prof.ShortMissRatio(), p.Insts)
		if err != nil {
			return err
		}
		dec, err := core.NewDecomposer(tr, res)
		if err != nil {
			return err
		}
		for _, r := range res.Records {
			if r.Penalty() <= 0 {
				continue
			}
			// Condition on windows whose resolution path is free of long
			// D-cache misses: a memory-latency load feeding the branch
			// inflates the penalty regardless of the refill effect under
			// study (it belongs to the long-miss event class, see E5).
			if b, ok := dec.Decompose(r); !ok || b.LongDMiss > 0.5 {
				continue
			}
			// Also require a clean refill: if dispatch resumed later than
			// the pipeline depth after resolution, another miss event (an
			// I-cache miss on the redirect path) overlapped the refill.
			if r.ResumeCycle-r.ResolveCycle > uint64(cfg.FrontendDepth+2) {
				continue
			}
			db := log2Bucket(r.SinceLastMiss, buckets)
			distCells[bi][db].measured.Add(r.Penalty())
			distCells[bi][db].model.Add(m.MispredictPenalty(r.SinceLastMiss))
			ob := log2Bucket(uint64(r.Occupancy), buckets)
			occCells[bi][ob].measured.Add(r.Penalty())
			occCells[bi][ob].model.Add(m.MispredictPenalty(uint64(r.Occupancy)))
		}
	}
	for b := 0; b < buckets; b++ {
		dRow := []string{fmt.Sprintf("[%d,%d)", 1<<b, 1<<(b+1))}
		oRow := []string{fmt.Sprintf("[%d,%d)", 1<<b, 1<<(b+1))}
		dAny, oAny := false, false
		for bi := range names {
			d := &distCells[bi][b]
			if d.measured.Count() > 0 {
				dAny = true
				dRow = append(dRow, fmt.Sprintf("%.1f", d.measured.Mean()), fmt.Sprintf("%.1f", d.model.Mean()))
			} else {
				dRow = append(dRow, "-", "-")
			}
			o := &occCells[bi][b]
			if o.measured.Count() > 0 {
				oAny = true
				oRow = append(oRow, fmt.Sprintf("%.1f", o.measured.Mean()), fmt.Sprintf("%.1f", o.model.Mean()))
			} else {
				oRow = append(oRow, "-", "-")
			}
		}
		if dAny {
			dist.AddRow(dRow...)
		}
		if oAny {
			occ.AddRow(oRow...)
		}
	}
	if err := dist.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return occ.Fprint(w)
}

func e4Headers(names []string) []string {
	var out []string
	for _, n := range names {
		out = append(out, n+" meas", n+" model")
	}
	return out
}

func log2Bucket(v uint64, buckets int) int {
	b := 0
	for v > 1 && b < buckets-1 {
		v >>= 1
		b++
	}
	return b
}

// E5 prints the five-way penalty decomposition per benchmark: the paper's
// central quantification of the contributors.
func E5(w io.Writer, p Params) error {
	cfg := uarch.Baseline()
	t := report.New("E5: misprediction penalty decomposition (cycles, mean per misprediction)",
		"benchmark", "frontend(i)", "drain ILP(ii+iii)", "FU lat(iv)", "shortD(v)", "longD ovl", "residual", "total")
	for _, wc := range workload.Suite() {
		tr, res, err := run(wc, cfg, p)
		if err != nil {
			return err
		}
		d, err := core.NewDecomposer(tr, res)
		if err != nil {
			return err
		}
		m := core.Mean(d.DecomposeAll())
		t.AddRow(wc.Name,
			fmt.Sprintf("%.1f", m.Frontend),
			fmt.Sprintf("%.1f", m.BaseILP),
			fmt.Sprintf("%.1f", m.FULatency),
			fmt.Sprintf("%.1f", m.ShortDMiss),
			fmt.Sprintf("%.1f", m.LongDMiss),
			fmt.Sprintf("%.1f", m.Residual),
			fmt.Sprintf("%.1f", m.Total),
		)
	}
	return t.Fprint(w)
}
