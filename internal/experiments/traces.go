package experiments

import (
	"intervalsim/internal/core"
	"intervalsim/internal/harness"
	"intervalsim/internal/overlay"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// suiteTrace is one generated workload trace in both layouts: the record
// slice the decomposer and ILP profiler consume, and the packed
// struct-of-arrays the simulator's fast path and the overlay cache key on.
// Both are immutable once built (Predicate copies before mutating), so one
// instance is safely shared across experiments and harness workers.
type suiteTrace struct {
	tr  *trace.Trace
	soa *trace.SoA
}

// traceKey identifies a generated trace: workloads are deterministic
// functions of their Config and the instruction count.
type traceKey struct {
	wc    workload.Config
	insts int
}

// traceMemo shares generated traces across experiments: `experiments all`
// asks for the same (workload, insts) pair from many experiments, and
// regenerating + repacking a multimillion-instruction trace each time was
// the second-largest cost after simulation itself. The capacity covers the
// ten-workload suite plus the E6/E8 variants; at the default 2M instructions
// an entry is ~200MB, well within the memory the experiment suite budgets.
var traceMemo = harness.NewMemo[traceKey, *suiteTrace](24)

// suiteTraceFor returns the shared trace for (wc, insts), generating and
// packing it on first use.
func suiteTraceFor(wc workload.Config, insts int) (*suiteTrace, error) {
	return traceMemo.Get(traceKey{wc: wc, insts: insts}, func() (*suiteTrace, error) {
		tr, err := trace.ReadAll(workload.MustNew(wc, insts))
		if err != nil {
			return nil, err
		}
		return &suiteTrace{tr: tr, soa: trace.Pack(tr)}, nil
	})
}

// overlayFor returns the shared miss-event overlay of the workload's packed
// trace under cfg's speculation configuration (predictor + cache geometry).
func overlayFor(st *suiteTrace, cfg uarch.Config) (*overlay.Overlay, error) {
	return overlay.Shared.Get(st.soa, cfg.Pred, cfg.Mem)
}

// profileFor builds the functional miss-event profile of (wc, insts) under
// cfg from the shared overlay: equivalent to core.FunctionalProfile over the
// same trace (TestOverlayProfileMatchesFunctional) but without re-simulating
// the predictor and caches per call.
func profileFor(wc workload.Config, cfg uarch.Config, p Params) (*core.Profile, error) {
	st, err := suiteTraceFor(wc, p.Insts)
	if err != nil {
		return nil, err
	}
	ov, err := overlayFor(st, cfg)
	if err != nil {
		return nil, err
	}
	return core.OverlayProfile(st.soa, ov, cfg, p.Warmup, 0)
}
