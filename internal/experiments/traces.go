package experiments

import (
	"intervalsim/internal/core"
	"intervalsim/internal/harness"
	"intervalsim/internal/overlay"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// suiteTrace is one generated workload trace in both layouts: the record
// slice the decomposer and ILP profiler consume, and the packed
// struct-of-arrays the simulator's fast path and the overlay cache key on.
// Both are immutable once built (Predicate copies before mutating), so one
// instance is safely shared across experiments and harness workers.
type suiteTrace struct {
	tr  *trace.Trace
	soa *trace.SoA
}

// traceKey identifies a generated trace: workloads are deterministic
// functions of their Config and the instruction count.
type traceKey struct {
	wc    workload.Config
	insts int
}

// TraceCache is a bounded single-flight cache of generated workload traces.
// The process-wide DefaultTraceCache shares traces across experiments:
// `experiments all` asks for the same (workload, insts) pair from many
// experiments, and regenerating + repacking a multimillion-instruction trace
// each time was the second-largest cost after simulation itself. Services
// that need isolation — e.g. cmd/bench booting several in-process daemons
// that must not silently share artifacts — construct private instances.
type TraceCache struct {
	memo *harness.Memo[traceKey, *suiteTrace]
}

// NewTraceCache returns a TraceCache bounded to capacity traces.
func NewTraceCache(capacity int) *TraceCache {
	return &TraceCache{memo: harness.NewMemo[traceKey, *suiteTrace](capacity)}
}

// DefaultTraceCache is the process-wide shared trace cache. The capacity
// covers the ten-workload suite plus the E6/E8 variants; at the default 2M
// instructions an entry is ~200MB, well within the memory the experiment
// suite budgets.
var DefaultTraceCache = NewTraceCache(24)

// get returns the cached trace for (wc, insts), generating and packing it
// on first use. fill, when non-nil, is consulted on a miss before local
// generation: if it produces a packed trace (e.g. fetched from a fleet
// peer), the record layout is reconstructed from it with Unpack instead of
// regenerating the workload. Unpack is exact — Pack is lossless — so both
// layouts are identical to locally generated ones.
func (c *TraceCache) get(wc workload.Config, insts int, fill func() *trace.SoA) (*suiteTrace, error) {
	return c.memo.Get(traceKey{wc: wc, insts: insts}, func() (*suiteTrace, error) {
		if fill != nil {
			if soa := fill(); soa != nil {
				return &suiteTrace{tr: soa.Unpack(), soa: soa}, nil
			}
		}
		tr, err := trace.ReadAll(workload.MustNew(wc, insts))
		if err != nil {
			return nil, err
		}
		return &suiteTrace{tr: tr, soa: trace.Pack(tr)}, nil
	})
}

// Shared returns both layouts of the cached trace for (wc, insts).
func (c *TraceCache) Shared(wc workload.Config, insts int) (*trace.Trace, *trace.SoA, error) {
	st, err := c.get(wc, insts, nil)
	if err != nil {
		return nil, nil, err
	}
	return st.tr, st.soa, nil
}

// SharedVia is Shared with a peer-fill hook: on a cache miss, fill runs
// first (under the key's single-flight lock, so at most once per artifact)
// and local generation is the fallback when it returns nil.
func (c *TraceCache) SharedVia(wc workload.Config, insts int, fill func() *trace.SoA) (*trace.Trace, *trace.SoA, error) {
	st, err := c.get(wc, insts, fill)
	if err != nil {
		return nil, nil, err
	}
	return st.tr, st.soa, nil
}

// Counters returns the cache's counter snapshot for observability surfaces.
func (c *TraceCache) Counters() harness.MemoStats { return c.memo.Counters() }

// suiteTraceFor returns the process-wide shared trace for (wc, insts),
// generating and packing it on first use.
func suiteTraceFor(wc workload.Config, insts int) (*suiteTrace, error) {
	return DefaultTraceCache.get(wc, insts, nil)
}

// overlayFor returns the shared miss-event overlay of the workload's packed
// trace under cfg's speculation configuration (predictor + cache geometry +
// optional value predictor).
func overlayFor(st *suiteTrace, cfg uarch.Config) (*overlay.Overlay, error) {
	return overlay.Shared.GetSpec(st.soa, cfg.Pred, cfg.Mem, cfg.VPred)
}

// profileFor builds the functional miss-event profile of (wc, insts) under
// cfg from the shared overlay: equivalent to core.FunctionalProfile over the
// same trace (TestOverlayProfileMatchesFunctional) but without re-simulating
// the predictor and caches per call.
func profileFor(wc workload.Config, cfg uarch.Config, p Params) (*core.Profile, error) {
	st, err := suiteTraceFor(wc, p.Insts)
	if err != nil {
		return nil, err
	}
	ov, err := overlayFor(st, cfg)
	if err != nil {
		return nil, err
	}
	return core.OverlayProfile(st.soa, ov, cfg, p.Warmup, 0)
}
