package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestA3DeterministicByteReproducible renders A3 — the one experiment whose
// default output contains a wall-clock-derived column — twice with
// Params.Deterministic set and asserts byte identity, the property the
// -deterministic CLI flag promises for the full report.
func TestA3DeterministicByteReproducible(t *testing.T) {
	p := Params{Insts: 60_000, Warmup: 10_000, Deterministic: true}
	var a, b bytes.Buffer
	if err := A3(&a, p); err != nil {
		t.Fatal(err)
	}
	if err := A3(&b, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("A3 with Deterministic is not byte-reproducible:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "-") {
		t.Fatal("deterministic A3 output missing the placeholder speedup cell")
	}
	if strings.Contains(a.String(), "x ") || strings.Contains(a.String(), "x\n") {
		// Guard loosely against a live speedup cell like "3.1x" sneaking in.
		for _, line := range strings.Split(a.String(), "\n") {
			if strings.HasSuffix(strings.TrimRight(line, " "), "x") {
				t.Fatalf("deterministic A3 still prints a wall-clock speedup: %q", line)
			}
		}
	}
}
