package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"intervalsim/internal/harness"
	"intervalsim/internal/report"
)

// RunOptions tunes RunAll's fail-soft parallel regeneration.
type RunOptions struct {
	// Jobs caps the experiments running concurrently; <= 0 means GOMAXPROCS.
	Jobs int
	// Timeout is the wall-clock deadline per experiment (0 = none).
	Timeout time.Duration
	// KeepGoing continues past failed experiments (the default for the CLI);
	// when false, the first failure cancels the rest.
	KeepGoing bool
}

// Outcome is one experiment's fate in a RunAll regeneration.
type Outcome struct {
	ID       string
	Err      error // nil on success
	Duration time.Duration
}

// RunAll regenerates every experiment concurrently on the fail-soft harness.
// Each experiment renders into its own buffer; completed outputs are then
// written to w in canonical order (so the artifact is deterministic and
// identical to a serial run when everything passes), failures are skipped in
// the output, and the returned outcomes — one per experiment, in order —
// say what failed and why. The error is nil only when every experiment
// succeeded; otherwise it wraps harness.ErrJobsFailed.
func RunAll(ctx context.Context, w io.Writer, p Params, opts RunOptions) ([]Outcome, error) {
	return runSet(ctx, w, p, opts, Order(), Registry())
}

// runSet is RunAll over an explicit experiment set (separated for
// failure-injection tests).
func runSet(ctx context.Context, w io.Writer, p Params, opts RunOptions, order []string, reg map[string]func(io.Writer, Params) error) ([]Outcome, error) {
	jobs := make([]harness.Job[[]byte], len(order))
	for i, id := range order {
		id := id
		fn := reg[id]
		jobs[i] = harness.Job[[]byte]{
			Name: id,
			Run: func(ctx context.Context) ([]byte, error) {
				// Experiments don't take a context yet; the per-experiment
				// render is bounded by the harness watchdog instead.
				var buf bytes.Buffer
				if err := fn(&buf, p); err != nil {
					return nil, err
				}
				return buf.Bytes(), nil
			},
		}
	}
	results, runErr := harness.Run(ctx, jobs, harness.Options{
		Workers:   opts.Jobs,
		Timeout:   opts.Timeout,
		KeepGoing: opts.KeepGoing,
	})

	outcomes := make([]Outcome, len(results))
	for i, r := range results {
		outcomes[i] = Outcome{ID: order[i], Err: r.Err, Duration: r.Duration}
		if r.Err == nil {
			if _, err := w.Write(r.Value); err != nil {
				return outcomes, err
			}
			fmt.Fprintln(w)
		}
	}
	return outcomes, runErr
}

// PassFailTable renders the final pass/fail table of a RunAll regeneration.
// deterministic replaces the elapsed-time column with a placeholder so the
// table — and with it the whole "all" artifact — is byte-reproducible (the
// CLI's -deterministic flag).
func PassFailTable(w io.Writer, outcomes []Outcome, deterministic bool) error {
	t := report.New("experiment summary", "experiment", "status", "time", "detail")
	for _, o := range outcomes {
		status, detail := "PASS", ""
		if o.Err != nil {
			status = "FAIL"
			detail = o.Err.Error()
		}
		elapsed := o.Duration.Round(time.Millisecond).String()
		if deterministic {
			elapsed = "-"
		}
		t.AddRow(o.ID, status, elapsed, detail)
	}
	return t.Fprint(w)
}
