package experiments

import (
	"fmt"
	"io"

	"intervalsim/internal/bpred"
	"intervalsim/internal/core"
	"intervalsim/internal/predictability"
	"intervalsim/internal/report"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// B1 is the predictor shootout: every predictor kind sized to the same
// direction-prediction storage budget (the baseline tournament's), compared
// on mispredicts per kilo-instruction and end IPC. Interval analysis says
// the predictor moves the *event count* while the per-event penalty stays a
// pipeline property; this table shows how far the event count moves when
// modern history-based predictors (TAGE, 2Bc-gskew) replace the classic
// ones at equal cost. A second table sweeps the storage budget itself:
// accuracy versus budget for each kind, on the same trace.
func B1(w io.Writer, p Params) error {
	budget := bpred.Config{Kind: "tournament", Entries: 16384, HistBits: 12}.StorageBits()
	kinds := []string{"bimodal", "gshare", "local", "tournament", "perceptron", "2bc-gskew", "tage"}
	names := []string{"crafty", "twolf"}

	headers := []string{"predictor", "entries", "storage"}
	for _, n := range names {
		headers = append(headers, n+" MPKI", n+" penalty", n+" IPC")
	}
	t := report.New(fmt.Sprintf("B1: predictor shootout at an equal %d KB direction-storage budget", budget/8/1024), headers...)
	for _, kind := range kinds {
		spec, ok := bpred.ConfigForBudget(kind, budget)
		if !ok {
			return fmt.Errorf("experiments: no %s sizing fits %d bits", kind, budget)
		}
		row := []string{kind, fmt.Sprintf("%d", spec.Entries), fmt.Sprintf("%.1f KB", float64(spec.StorageBits())/8/1024)}
		for _, name := range names {
			wc, ok := workload.SuiteConfig(name)
			if !ok {
				return fmt.Errorf("experiments: unknown benchmark %s", name)
			}
			cfg := uarch.Baseline()
			cfg.Pred = spec
			_, res, err := run(wc, cfg, p)
			if err != nil {
				return err
			}
			pen := "-"
			if res.Mispredicts > 0 {
				pen = fmt.Sprintf("%.1f", res.AvgMispredictPenalty())
			}
			row = append(row,
				fmt.Sprintf("%.2f", perKI(res.Mispredicts, res.Insts)),
				pen,
				fmt.Sprintf("%.2f", res.IPC()),
			)
		}
		t.AddRow(row...)
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	// Accuracy vs storage budget, direction prediction only (no pipeline in
	// the loop): how each kind spends additional area on one trace.
	wc, _ := workload.SuiteConfig("crafty")
	st, err := suiteTraceFor(wc, p.Insts)
	if err != nil {
		return err
	}
	budgets := []int64{2 << 10 * 8, 8 << 10 * 8, 32 << 10 * 8, 128 << 10 * 8}
	curveKinds := []string{"bimodal", "gshare", "tournament", "2bc-gskew", "tage"}
	headers2 := []string{"budget"}
	for _, k := range curveKinds {
		headers2 = append(headers2, k+" MPKI")
	}
	t2 := report.New("B1b: direction-mispredict MPKI vs storage budget (crafty)", headers2...)
	curves := make(map[string][]predictability.BudgetPoint, len(curveKinds))
	for _, kind := range curveKinds {
		pts, err := predictability.BudgetCurve(st.soa, kind, budgets, int(p.Warmup))
		if err != nil {
			return err
		}
		curves[kind] = pts
	}
	for i, b := range budgets {
		row := []string{fmt.Sprintf("%d KB", b/8/1024)}
		for _, kind := range curveKinds {
			row = append(row, fmt.Sprintf("%.2f", curves[kind][i].MPKI))
		}
		t2.AddRow(row...)
	}
	return t2.Fprint(w)
}

// b2Workload is the history-heavy crafty variant B2 characterizes: a larger
// population of pattern (history-correlated) branches plus a slice of
// genuinely random coin-flip branches, so every taxon is populated and the
// hard-to-predict residue dominates the mispredict budget.
func b2Workload() workload.Config {
	wc, _ := workload.SuiteConfig("crafty")
	wc.Name = "crafty-hist"
	wc.PatternBranchFrac = 0.30
	wc.RandomBranchFrac = 0.06
	wc.RandomBranchBias = 0.5
	return wc
}

// B2 characterizes the branch population behind the penalty: every static
// branch is classified into a predictability taxon (driving the baseline
// subject predictor, a deep-history TAGE reference, and a history-less
// bimodal side by side), and the subject's direction mispredicts, frontend
// redirects, and measured interval penalty are attributed per taxon. A
// second table lists the top hard-to-predict (H2P) branches individually —
// the paper-era observation that a handful of static branches carry most of
// the misprediction cost.
func B2(w io.Writer, p Params) error {
	wc := b2Workload()
	st, err := suiteTraceFor(wc, p.Insts)
	if err != nil {
		return err
	}
	prof, err := predictability.Collect(st.soa, predictability.Options{Warmup: int(p.Warmup)})
	if err != nil {
		return err
	}

	// Price the mispredicts with the cycle-level simulator on the baseline
	// machine and fold the measured penalties into the profile.
	cfg := uarch.Baseline()
	tr, res, err := run(wc, cfg, p)
	if err != nil {
		return err
	}
	byPC := make(map[uint64]float64)
	for _, c := range core.CostliestBranches(tr, res, 0) {
		byPC[c.PC] = c.TotalPenalty
	}
	prof.AttributePenalty(byPC)

	totalMisp := prof.TotalDirMispredicts()
	var totalPen float64
	sums := prof.Summaries()
	for _, s := range sums {
		totalPen += s.Penalty
	}
	t := report.New(fmt.Sprintf("B2: branch-predictability taxa (%s, subject %s)", wc.Name, prof.Opts.Subject.Kind),
		"taxon", "static", "execs", "dir misp", "misp MPKI", "misp share", "redirects", "penalty", "pen share")
	for _, s := range sums {
		mShare, pShare := "-", "-"
		if totalMisp > 0 {
			mShare = fmt.Sprintf("%.0f%%", 100*float64(s.DirMispredicts)/float64(totalMisp))
		}
		if totalPen > 0 {
			pShare = fmt.Sprintf("%.0f%%", 100*s.Penalty/totalPen)
		}
		t.AddRow(s.Taxon.String(),
			fmt.Sprintf("%d", s.Static),
			fmt.Sprintf("%d", s.Execs),
			fmt.Sprintf("%d", s.DirMispredicts),
			fmt.Sprintf("%.2f", perKI(s.DirMispredicts, uint64(prof.Insts))),
			mShare,
			fmt.Sprintf("%d", s.Redirects),
			fmt.Sprintf("%.0f", s.Penalty),
			pShare,
		)
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	t2 := report.New("B2b: costliest hard-to-predict (H2P) branches",
		"pc", "execs", "bias", "subj acc", "ref acc", "subj misp", "penalty")
	for _, b := range prof.TopH2P(5) {
		t2.AddRow(fmt.Sprintf("%#x", b.PC),
			fmt.Sprintf("%d", b.Execs),
			fmt.Sprintf("%.2f", b.Bias()),
			fmt.Sprintf("%.3f", b.SubjectAccuracy()),
			fmt.Sprintf("%.3f", b.RefAccuracy()),
			fmt.Sprintf("%d", b.SubjectMiss),
			fmt.Sprintf("%.0f", b.Penalty),
		)
	}
	return t2.Fprint(w)
}
