package experiments

import "time"

// timeNow returns a monotonic nanosecond timestamp for speedup measurements.
func timeNow() int64 { return time.Now().UnixNano() }
