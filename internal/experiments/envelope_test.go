package experiments

import (
	"fmt"
	"math"
	"testing"

	"intervalsim/internal/core"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// TestModelErrorEnvelope is the differential test behind E9: the analytic
// interval model's CPI prediction must stay within the paper's error
// envelope of the detailed cycle-level simulator across a grid of
// (benchmark, frontend depth, ROB size) points. Workload seeds are pinned
// by the suite and both engines are deterministic, so this asserts exact,
// reproducible margins — any simulator or model change that moves a point
// past the envelope fails loudly.
//
// twolf is excluded: its long-D-miss overlap credit is the model's known
// worst case (E9 reports it beyond 5% already at baseline window sizes),
// and the envelope documents the accuracy regime the model is built for,
// not that one known outlier. ROB sizes stop at 128 for the same reason —
// the overlap-credit error grows with window size (see A1's ablation).
func TestModelErrorEnvelope(t *testing.T) {
	const envelope = 0.05 // |CPI error| <= 5%, the E9 acceptance band

	p := Params{Insts: 120_000, Warmup: 20_000}
	depths := []int{5, 9}
	robs := []int{96, 128}

	var worst float64
	var worstPoint string
	for _, wc := range workload.Suite() {
		if wc.Name == "twolf" {
			continue
		}
		for _, depth := range depths {
			for _, rob := range robs {
				cfg := uarch.Baseline()
				cfg.Name = fmt.Sprintf("d%d-r%d", depth, rob)
				cfg.FrontendDepth = depth
				cfg.ROBSize = rob
				if cfg.IQSize > rob/2 {
					cfg.IQSize = rob / 2
				}
				relErr := modelError(t, wc, cfg, p)
				if math.Abs(relErr) > math.Abs(worst) {
					worst = relErr
					worstPoint = wc.Name + " " + cfg.Name
				}
				if math.Abs(relErr) > envelope {
					t.Errorf("%s %s: model CPI error %+.2f%% exceeds ±%.0f%% envelope",
						wc.Name, cfg.Name, relErr*100, envelope*100)
				}
			}
		}
	}
	t.Logf("worst point: %s at %+.2f%%", worstPoint, worst*100)
}

// modelError runs both engines on one grid point and returns the model's
// signed relative CPI error against the simulator.
func modelError(t *testing.T, wc workload.Config, cfg uarch.Config, p Params) float64 {
	t.Helper()
	tr, res, err := run(wc, cfg, p)
	if err != nil {
		t.Fatalf("%s %s: simulate: %v", wc.Name, cfg.Name, err)
	}
	prof, err := core.FunctionalProfile(tr.Reader(), cfg, p.Warmup, 0)
	if err != nil {
		t.Fatalf("%s %s: profile: %v", wc.Name, cfg.Name, err)
	}
	m, err := core.BuildModel(func() trace.Reader { return tr.Reader() }, cfg, prof.ShortMissRatio(), p.Insts)
	if err != nil {
		t.Fatalf("%s %s: build model: %v", wc.Name, cfg.Name, err)
	}
	pred, err := m.PredictCPI(prof)
	if err != nil {
		t.Fatalf("%s %s: predict: %v", wc.Name, cfg.Name, err)
	}
	relErr, err := core.ValidationError(pred, res)
	if err != nil {
		t.Fatalf("%s %s: validate: %v", wc.Name, cfg.Name, err)
	}
	return relErr
}
