package isa

import (
	"strings"
	"testing"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		IntALU: "IntALU", IntMul: "IntMul", IntDiv: "IntDiv",
		FPAdd: "FPAdd", FPMul: "FPMul", FPDiv: "FPDiv",
		Load: "Load", Store: "Store", Branch: "Branch", Jump: "Jump",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
	if got := Class(200).String(); !strings.Contains(got, "200") {
		t.Errorf("invalid class String() = %q", got)
	}
}

func TestClassPredicates(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if !c.Valid() {
			t.Errorf("%v should be valid", c)
		}
		wantMem := c == Load || c == Store
		if c.IsMem() != wantMem {
			t.Errorf("%v.IsMem() = %v", c, c.IsMem())
		}
		wantCtl := c == Branch || c == Jump
		if c.IsControl() != wantCtl {
			t.Errorf("%v.IsControl() = %v", c, c.IsControl())
		}
	}
	if Class(NumClasses).Valid() {
		t.Error("NumClasses should not be a valid class")
	}
}

func TestReadsWrites(t *testing.T) {
	in := Inst{Class: IntALU, Src1: 3, Src2: NoReg, Dst: 7}
	if !in.Reads(3) || in.Reads(7) || in.Reads(NoReg) {
		t.Errorf("Reads misbehaved: %+v", in)
	}
	if !in.Writes(7) || in.Writes(3) || in.Writes(NoReg) {
		t.Errorf("Writes misbehaved: %+v", in)
	}
}

func TestValidate(t *testing.T) {
	valid := []Inst{
		{PC: 0x1000, Class: IntALU, Src1: 1, Src2: 2, Dst: 3},
		{PC: 0x1004, Class: Load, Src1: 1, Src2: NoReg, Dst: 2, Addr: 0x8000},
		{PC: 0x1008, Class: Store, Src1: 1, Src2: 2, Dst: NoReg, Addr: 0x8000},
		{PC: 0x100c, Class: Branch, Src1: 1, Src2: NoReg, Dst: NoReg, Target: 0x1000, Taken: true},
		{PC: 0x1010, Class: Jump, Src1: NoReg, Src2: NoReg, Dst: NoReg, Target: 0x2000, Taken: true},
	}
	for i, in := range valid {
		if err := in.Validate(); err != nil {
			t.Errorf("valid record %d rejected: %v", i, err)
		}
	}

	invalid := []struct {
		name string
		in   Inst
	}{
		{"bad class", Inst{Class: NumClasses, Src1: NoReg, Src2: NoReg, Dst: NoReg}},
		{"register out of range", Inst{Class: IntALU, Src1: 64, Src2: NoReg, Dst: NoReg}},
		{"negative register", Inst{Class: IntALU, Src1: -2, Src2: NoReg, Dst: NoReg}},
		{"load without address", Inst{Class: Load, Src1: NoReg, Src2: NoReg, Dst: 1}},
		{"alu with address", Inst{Class: IntALU, Src1: NoReg, Src2: NoReg, Dst: 1, Addr: 4}},
		{"branch without target", Inst{Class: Branch, Src1: NoReg, Src2: NoReg, Dst: NoReg}},
		{"alu with target", Inst{Class: IntALU, Src1: NoReg, Src2: NoReg, Dst: 1, Target: 8}},
		{"alu taken", Inst{Class: IntALU, Src1: NoReg, Src2: NoReg, Dst: 1, Taken: true}},
	}
	for _, tc := range invalid {
		if err := tc.in.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.in)
		}
	}
}

func TestStringFormats(t *testing.T) {
	ld := Inst{PC: 0x10, Class: Load, Src1: 1, Src2: NoReg, Dst: 2, Addr: 0x800}
	if s := ld.String(); !strings.Contains(s, "Load") || !strings.Contains(s, "0x800") {
		t.Errorf("load String() = %q", s)
	}
	br := Inst{PC: 0x14, Class: Branch, Src1: 1, Src2: NoReg, Dst: NoReg, Target: 0x10, Taken: true}
	if s := br.String(); !strings.Contains(s, "T->") {
		t.Errorf("taken branch String() = %q", s)
	}
	br.Taken = false
	if s := br.String(); !strings.Contains(s, "N->") {
		t.Errorf("not-taken branch String() = %q", s)
	}
	alu := Inst{PC: 0x18, Class: IntALU, Src1: 1, Src2: 2, Dst: 3}
	if s := alu.String(); !strings.Contains(s, "IntALU") {
		t.Errorf("alu String() = %q", s)
	}
}
