// Package isa defines the dynamic instruction record that flows through the
// whole system: the workload generator emits it, traces store it, the
// cycle-level simulator times it, and the interval-analysis model inspects
// its dependence structure.
//
// The record is deliberately semantics-free. Interval analysis — like the
// trace-driven simulator the paper uses — never needs instruction *results*,
// only instruction classes (to pick functional-unit latencies), register
// names (to recover true dependences), effective addresses (to drive the
// data cache and memory dependences), and branch outcomes (to drive the
// predictor). This mirrors an Alpha-like RISC trace stripped of values.
package isa

import "fmt"

// Class identifies the execution resource an instruction needs.
type Class uint8

// Instruction classes. The set matches the functional-unit mix of the
// paper's 4-wide baseline machine.
const (
	IntALU     Class = iota // simple integer op: add, logical, compare, shift
	IntMul                  // integer multiply
	IntDiv                  // integer divide (long, typically unpipelined)
	FPAdd                   // floating-point add/sub/convert
	FPMul                   // floating-point multiply
	FPDiv                   // floating-point divide/sqrt
	Load                    // memory read
	Store                   // memory write
	Branch                  // conditional branch (direction matters)
	Jump                    // unconditional direct jump/call/return
	NumClasses              // count sentinel; not a real class
)

var classNames = [NumClasses]string{
	"IntALU", "IntMul", "IntDiv", "FPAdd", "FPMul", "FPDiv",
	"Load", "Store", "Branch", "Jump",
}

// String returns the class mnemonic.
func (c Class) String() string {
	if c < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Valid reports whether c is one of the defined classes.
func (c Class) Valid() bool { return c < NumClasses }

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsControl reports whether the class redirects instruction fetch.
func (c Class) IsControl() bool { return c == Branch || c == Jump }

// NumRegs is the size of the architectural register file visible in traces.
// 64 covers integer + floating-point files of a RISC machine.
const NumRegs = 64

// NoReg marks an absent register operand.
const NoReg int8 = -1

// Inst is one dynamic instruction.
//
// Register fields are architectural register numbers in [0, NumRegs) or
// NoReg. True (read-after-write) dependences are recovered by matching a
// source register to the most recent earlier instruction writing it, exactly
// as a renaming frontend would.
type Inst struct {
	PC     uint64 // address of the instruction (drives the I-cache and BTB)
	Addr   uint64 // effective address for Load/Store; 0 otherwise
	Target uint64 // branch/jump target PC; 0 otherwise
	Src1   int8   // first source register or NoReg
	Src2   int8   // second source register or NoReg
	Dst    int8   // destination register or NoReg
	Class  Class
	Taken  bool // actual direction for Branch (Jump is always taken)
}

// Reads reports whether i reads register r.
func (i *Inst) Reads(r int8) bool {
	return r != NoReg && (i.Src1 == r || i.Src2 == r)
}

// Writes reports whether i writes register r.
func (i *Inst) Writes(r int8) bool {
	return r != NoReg && i.Dst == r
}

// Validate checks structural well-formedness of the record and returns a
// descriptive error for the first violation found. Traces read from disk are
// validated record by record so corrupt inputs fail loudly instead of
// producing quietly wrong simulations.
func (i *Inst) Validate() error {
	if !i.Class.Valid() {
		return fmt.Errorf("isa: invalid class %d at pc %#x", i.Class, i.PC)
	}
	for _, r := range [3]int8{i.Src1, i.Src2, i.Dst} {
		if r != NoReg && (r < 0 || r >= NumRegs) {
			return fmt.Errorf("isa: register %d out of range at pc %#x", r, i.PC)
		}
	}
	if i.Class.IsMem() && i.Addr == 0 {
		return fmt.Errorf("isa: %v with zero effective address at pc %#x", i.Class, i.PC)
	}
	if !i.Class.IsMem() && i.Addr != 0 {
		return fmt.Errorf("isa: non-memory %v carries address %#x at pc %#x", i.Class, i.Addr, i.PC)
	}
	if i.Class.IsControl() && i.Target == 0 {
		return fmt.Errorf("isa: %v with zero target at pc %#x", i.Class, i.PC)
	}
	if !i.Class.IsControl() && (i.Target != 0 || i.Taken) {
		return fmt.Errorf("isa: non-control %v carries control fields at pc %#x", i.Class, i.PC)
	}
	return nil
}

// String formats the instruction compactly for debugging output.
func (i Inst) String() string {
	switch {
	case i.Class.IsMem():
		return fmt.Sprintf("%#x %v r%d,r%d->r%d [%#x]", i.PC, i.Class, i.Src1, i.Src2, i.Dst, i.Addr)
	case i.Class.IsControl():
		dir := "N"
		if i.Taken || i.Class == Jump {
			dir = "T"
		}
		return fmt.Sprintf("%#x %v r%d,r%d %s->%#x", i.PC, i.Class, i.Src1, i.Src2, dir, i.Target)
	default:
		return fmt.Sprintf("%#x %v r%d,r%d->r%d", i.PC, i.Class, i.Src1, i.Src2, i.Dst)
	}
}
