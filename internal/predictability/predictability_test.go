package predictability

import (
	"testing"

	"intervalsim/internal/bpred"
	"intervalsim/internal/isa"
	"intervalsim/internal/rng"
	"intervalsim/internal/trace"
)

// synthTrace builds a trace exercising one branch of each taxon:
//
//	0x1000 always taken
//	0x1008 always not-taken
//	0x1010 biased ~99% taken
//	0x1018 repeating T T N pattern (history-correlated)
//	0x1020 coin flip (H2P)
//	0x1028 always taken, target alternates every execution (BTB-limited)
//
// Branches are interleaved with ALU filler so per-KI numbers are sane.
func synthTrace(iters int) *trace.SoA {
	s := rng.New(1234)
	t := &trace.Trace{}
	add := func(in isa.Inst) {
		in.Src1, in.Src2, in.Dst = isa.NoReg, isa.NoReg, isa.NoReg
		t.Insts = append(t.Insts, in)
	}
	for i := 0; i < iters; i++ {
		add(isa.Inst{PC: 0x100, Class: isa.IntALU})
		add(isa.Inst{PC: 0x1000, Class: isa.Branch, Target: 0x9000, Taken: true})
		add(isa.Inst{PC: 0x1008, Class: isa.Branch, Target: 0x9100, Taken: false})
		add(isa.Inst{PC: 0x1010, Class: isa.Branch, Target: 0x9200, Taken: s.Bool(0.99)})
		add(isa.Inst{PC: 0x1018, Class: isa.Branch, Target: 0x9300, Taken: i%3 != 2})
		add(isa.Inst{PC: 0x1020, Class: isa.Branch, Target: 0x9400, Taken: s.Bool(0.5)})
		tgt := uint64(0x9500)
		if i%2 == 1 {
			tgt = 0x9600
		}
		add(isa.Inst{PC: 0x1028, Class: isa.Branch, Target: tgt, Taken: true})
	}
	return trace.Pack(t)
}

func TestCollectClassifiesTaxa(t *testing.T) {
	soa := synthTrace(3000)
	p, err := Collect(soa, Options{Warmup: soa.Len() / 4})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]Taxon{
		0x1000: TaxonAlwaysTaken,
		0x1008: TaxonAlwaysNotTaken,
		0x1010: TaxonBiased,
		0x1018: TaxonHistoryCorrelated,
		0x1020: TaxonH2P,
		0x1028: TaxonBTBLimited,
	}
	if len(p.Branches) != len(want) {
		t.Fatalf("profiled %d static branches, want %d", len(p.Branches), len(want))
	}
	for _, b := range p.Branches {
		if got := b.Taxon; got != want[b.PC] {
			t.Errorf("pc %#x classified %v, want %v (bias=%.3f refAcc=%.3f subjAcc=%.3f btbMiss=%d/%d)",
				b.PC, got, want[b.PC], b.Bias(), b.RefAccuracy(), b.SubjectAccuracy(), b.BTBMiss, b.Taken)
		}
	}
}

func TestCollectCountsAndSummaries(t *testing.T) {
	soa := synthTrace(2000)
	warm := soa.Len() / 4
	p, err := Collect(soa, Options{Warmup: warm})
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts != soa.Len()-warm {
		t.Errorf("counted insts = %d, want %d", p.Insts, soa.Len()-warm)
	}
	var execs uint64
	for _, b := range p.Branches {
		execs += b.Execs
		if b.Taken > b.Execs || b.SubjectMiss > b.Execs || b.BTBMiss > b.Taken {
			t.Errorf("pc %#x inconsistent counts: %+v", b.PC, b)
		}
	}
	sums := p.Summaries()
	if len(sums) != int(taxonCount) {
		t.Fatalf("got %d summaries", len(sums))
	}
	var sumExecs, sumRedirects uint64
	for _, s := range sums {
		sumExecs += s.Execs
		sumRedirects += s.Redirects
	}
	if sumExecs != execs {
		t.Errorf("summary execs %d != branch execs %d", sumExecs, execs)
	}
	if sumRedirects != p.TotalRedirects() {
		t.Errorf("summary redirects %d != total %d", sumRedirects, p.TotalRedirects())
	}
	// The coin-flip branch must dominate subject direction mispredicts
	// (redirects also count BTB target thrash, which is a separate taxon).
	var h2p TaxonSummary
	for _, s := range sums {
		if s.Taxon == TaxonH2P {
			h2p = s
		}
	}
	if h2p.DirMispredicts*2 < p.TotalDirMispredicts() {
		t.Errorf("h2p dir mispredicts %d are not the majority of %d", h2p.DirMispredicts, p.TotalDirMispredicts())
	}
}

func TestTopH2PAndPenaltyAttribution(t *testing.T) {
	soa := synthTrace(1500)
	p, err := Collect(soa, Options{Warmup: 500})
	if err != nil {
		t.Fatal(err)
	}
	p.AttributePenalty(map[uint64]float64{0x1020: 123.5, 0x1000: 7, 0xdead: 99})
	top := p.TopH2P(3)
	if len(top) != 1 || top[0].PC != 0x1020 {
		t.Fatalf("TopH2P = %+v, want the single coin-flip branch", top)
	}
	if top[0].Penalty != 123.5 {
		t.Errorf("penalty not attributed: %v", top[0].Penalty)
	}
	sums := p.Summaries()
	if sums[TaxonH2P].Penalty != 123.5 || sums[TaxonAlwaysTaken].Penalty != 7 {
		t.Errorf("summary penalties wrong: %+v", sums)
	}
}

func TestCollectDeterministic(t *testing.T) {
	soa := synthTrace(1000)
	a, err := Collect(soa, Options{Warmup: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Collect(soa, Options{Warmup: 100})
	if len(a.Branches) != len(b.Branches) {
		t.Fatal("profiles differ in size")
	}
	for i := range a.Branches {
		if a.Branches[i] != b.Branches[i] {
			t.Fatalf("branch %d differs: %+v vs %+v", i, a.Branches[i], b.Branches[i])
		}
	}
}

func TestCollectBadConfig(t *testing.T) {
	soa := synthTrace(10)
	if _, err := Collect(soa, Options{Subject: bpred.Config{Kind: "bogus"}}); err == nil {
		t.Error("bad subject accepted")
	}
	if _, err := Collect(soa, Options{Ref: bpred.Config{Kind: "bogus"}}); err == nil {
		t.Error("bad ref accepted")
	}
	if _, err := Collect(soa, Options{Cheap: bpred.Config{Kind: "bogus"}}); err == nil {
		t.Error("bad cheap accepted")
	}
}

func TestBudgetCurveMonotoneStorage(t *testing.T) {
	soa := synthTrace(2000)
	budgets := []int64{2 << 10 * 8, 8 << 10 * 8, 32 << 10 * 8} // 2/8/32 KB
	pts, err := BudgetCurve(soa, "gshare", budgets, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(budgets) {
		t.Fatalf("got %d points", len(pts))
	}
	for i, pt := range pts {
		if pt.StorageBits > pt.BudgetBits {
			t.Errorf("point %d: storage %d exceeds budget %d", i, pt.StorageBits, pt.BudgetBits)
		}
		if i > 0 && pt.Config.Entries < pts[i-1].Config.Entries {
			t.Errorf("entries not monotone with budget: %+v", pts)
		}
		if pt.Accuracy <= 0 || pt.Accuracy > 1 {
			t.Errorf("accuracy out of range: %+v", pt)
		}
	}
	if _, err := BudgetCurve(soa, "bogus", budgets, 0); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := BudgetCurve(soa, "bimodal", []int64{1}, 0); err == nil {
		t.Error("impossible budget accepted")
	}
}
