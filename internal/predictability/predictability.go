// Package predictability characterizes the branch population of a trace:
// which static branches are trivially predictable, which carry history
// correlation, which are hard-to-predict (H2P), and which lose their
// performance to the BTB rather than the direction predictor. The paper's
// interval analysis prices each mispredict; this package answers the
// complementary question of *which branches* supply the mispredicts, in the
// spirit of "Branch Prediction Is Not a Solved Problem" (H2P analysis) and
// workload-characterization taxonomies.
//
// The core pass (Collect) walks a packed SoA trace once in program order,
// driving three predictors side by side: the *subject* predictor being
// characterized (with its BTB), a deep-history *reference* predictor, and a
// history-less *cheap* predictor. Per-branch outcome counts against all
// three separate "the subject got it wrong" from "this branch is
// fundamentally hard": a branch the reference nails but the cheap one
// misses is history-correlated; a branch even the reference misses is H2P.
package predictability

import (
	"fmt"
	"sort"

	"intervalsim/internal/bpred"
	"intervalsim/internal/isa"
	"intervalsim/internal/trace"
)

// Taxon is a predictability class for one static branch.
type Taxon uint8

// The taxa, in report order. Classification is first-match: BTB-limited
// beats the direction taxa (a branch whose direction is trivial but whose
// targets thrash the BTB is a BTB problem, whatever its bias), then the
// exact and near-exact bias classes, then history correlation, and H2P is
// the residue no predictor in the panel handles.
const (
	TaxonBTBLimited Taxon = iota
	TaxonAlwaysTaken
	TaxonAlwaysNotTaken
	TaxonBiased
	TaxonHistoryCorrelated
	TaxonH2P
	taxonCount
)

// String implements fmt.Stringer with fixed-width report labels.
func (t Taxon) String() string {
	switch t {
	case TaxonBTBLimited:
		return "btb-limited"
	case TaxonAlwaysTaken:
		return "always-taken"
	case TaxonAlwaysNotTaken:
		return "always-not-taken"
	case TaxonBiased:
		return "biased"
	case TaxonHistoryCorrelated:
		return "history-correlated"
	case TaxonH2P:
		return "h2p"
	default:
		return fmt.Sprintf("taxon(%d)", uint8(t))
	}
}

// Taxa returns every taxon in report order.
func Taxa() []Taxon {
	out := make([]Taxon, taxonCount)
	for i := range out {
		out[i] = Taxon(i)
	}
	return out
}

// Options configures a characterization pass. Zero-value thresholds and
// predictors are replaced with defaults: the subject defaults to the
// tournament preset (the uarch baseline predictor), the reference to a
// large TAGE, the cheap panel member to a bimodal table.
type Options struct {
	Subject bpred.Config // predictor whose mispredicts are attributed
	Ref     bpred.Config // deep-history reference: defines "predictable at all"
	Cheap   bpred.Config // history-less reference: defines "bias is enough"

	Warmup int // leading instructions that train predictors but are not counted

	BiasThreshold    float64 // min max-direction fraction for "biased" (default 0.98)
	RefAccThreshold  float64 // min reference accuracy for "history-correlated" (default 0.90)
	BTBMissThreshold float64 // min BTB miss rate on taken execs for "btb-limited" (default 0.10)
}

func (o Options) withDefaults() Options {
	if o.Subject.Kind == "" {
		o.Subject, _ = bpred.Preset("tournament")
	}
	if o.Ref.Kind == "" {
		o.Ref = bpred.Config{Kind: "tage", Entries: 4096, HistBits: 128}
	}
	if o.Cheap.Kind == "" {
		o.Cheap = bpred.Config{Kind: "bimodal", Entries: 16384}
	}
	if o.BiasThreshold == 0 {
		o.BiasThreshold = 0.98
	}
	if o.RefAccThreshold == 0 {
		o.RefAccThreshold = 0.90
	}
	if o.BTBMissThreshold == 0 {
		o.BTBMissThreshold = 0.10
	}
	return o
}

// BranchStats aggregates one static conditional branch.
type BranchStats struct {
	PC    uint64
	Execs uint64 // counted dynamic executions
	Taken uint64 // of which taken
	Flips uint64 // direction changes between consecutive executions

	SubjectMiss uint64 // subject direction mispredicts
	RefMiss     uint64 // reference direction mispredicts
	CheapMiss   uint64 // cheap-predictor direction mispredicts
	BTBMiss     uint64 // subject BTB wrong/absent target on taken execs

	Taxon   Taxon
	Penalty float64 // summed interval penalty, once attributed (else 0)
}

// Bias returns the fraction of executions going the branch's majority
// direction (0.5 = coin flip, 1 = fully biased).
func (b *BranchStats) Bias() float64 {
	if b.Execs == 0 {
		return 0
	}
	t := float64(b.Taken) / float64(b.Execs)
	if t < 0.5 {
		return 1 - t
	}
	return t
}

// SubjectAccuracy returns the subject predictor's direction accuracy.
func (b *BranchStats) SubjectAccuracy() float64 { return acc(b.SubjectMiss, b.Execs) }

// RefAccuracy returns the reference predictor's direction accuracy.
func (b *BranchStats) RefAccuracy() float64 { return acc(b.RefMiss, b.Execs) }

// CheapAccuracy returns the history-less predictor's direction accuracy.
func (b *BranchStats) CheapAccuracy() float64 { return acc(b.CheapMiss, b.Execs) }

func acc(miss, execs uint64) float64 {
	if execs == 0 {
		return 0
	}
	return 1 - float64(miss)/float64(execs)
}

// Redirects returns the subject's total frontend redirects at this branch:
// direction mispredicts plus BTB target misses.
func (b *BranchStats) Redirects() uint64 { return b.SubjectMiss + b.BTBMiss }

// Profile is the result of a characterization pass.
type Profile struct {
	Opts     Options       // options after default resolution
	Insts    int           // counted (post-warmup) instructions
	Branches []BranchStats // every static conditional branch, sorted by PC
}

// Collect runs the characterization pass over a packed trace. The three
// panel predictors train on the whole trace; only post-warmup executions are
// counted. Jumps warm the subject's BTB exactly as a frontend would but are
// not classified (they have no direction to predict).
func Collect(soa *trace.SoA, opts Options) (*Profile, error) {
	opts = opts.withDefaults()
	subject, err := opts.Subject.Build()
	if err != nil {
		return nil, fmt.Errorf("predictability: subject: %w", err)
	}
	refUnit, err := opts.Ref.Build()
	if err != nil {
		return nil, fmt.Errorf("predictability: ref: %w", err)
	}
	cheapUnit, err := opts.Cheap.Build()
	if err != nil {
		return nil, fmt.Errorf("predictability: cheap: %w", err)
	}
	ref, cheap := refUnit.Dir, cheapUnit.Dir

	stats := make(map[uint64]*BranchStats)
	lastDir := make(map[uint64]bool)
	n := soa.Len()
	if opts.Warmup > n {
		opts.Warmup = n
	}
	for i := 0; i < n; i++ {
		switch soa.Class(i) {
		case isa.Branch:
			pc, taken := soa.PC[i], soa.Taken(i)
			sOK := subject.Dir.Access(pc, taken)
			btbHit := true
			if taken && subject.BTB != nil {
				btbHit = subject.BTB.Access(pc, soa.Target[i])
			}
			rOK := ref.Access(pc, taken)
			cOK := cheap.Access(pc, taken)
			if i < opts.Warmup {
				lastDir[pc] = taken
				continue
			}
			b := stats[pc]
			if b == nil {
				b = &BranchStats{PC: pc}
				stats[pc] = b
			}
			b.Execs++
			if taken {
				b.Taken++
			}
			if prev, seen := lastDir[pc]; seen && prev != taken {
				b.Flips++
			}
			lastDir[pc] = taken
			if !sOK {
				b.SubjectMiss++
			}
			if !rOK {
				b.RefMiss++
			}
			if !cOK {
				b.CheapMiss++
			}
			if taken && !btbHit {
				b.BTBMiss++
			}
		case isa.Jump:
			if subject.BTB != nil {
				subject.BTB.Access(soa.PC[i], soa.Target[i])
			}
		}
	}

	p := &Profile{Opts: opts, Insts: n - opts.Warmup}
	p.Branches = make([]BranchStats, 0, len(stats))
	for _, b := range stats {
		b.Taxon = classify(b, opts)
		p.Branches = append(p.Branches, *b)
	}
	sort.Slice(p.Branches, func(i, j int) bool { return p.Branches[i].PC < p.Branches[j].PC })
	return p, nil
}

func classify(b *BranchStats, opts Options) Taxon {
	if b.Taken > 0 {
		btbRate := float64(b.BTBMiss) / float64(b.Taken)
		if btbRate >= opts.BTBMissThreshold && b.SubjectAccuracy() >= opts.RefAccThreshold {
			return TaxonBTBLimited
		}
	}
	switch {
	case b.Taken == b.Execs:
		return TaxonAlwaysTaken
	case b.Taken == 0:
		return TaxonAlwaysNotTaken
	case b.Bias() >= opts.BiasThreshold:
		return TaxonBiased
	case b.RefAccuracy() >= opts.RefAccThreshold:
		return TaxonHistoryCorrelated
	default:
		return TaxonH2P
	}
}

// AttributePenalty folds per-PC interval penalties (e.g. from
// core.CostliestBranches over a simulator run with mispredict recording)
// into the profile, so taxon summaries can report penalty per taxon.
// Penalties for PCs absent from the profile are ignored.
func (p *Profile) AttributePenalty(byPC map[uint64]float64) {
	for i := range p.Branches {
		p.Branches[i].Penalty = byPC[p.Branches[i].PC]
	}
}

// TaxonSummary aggregates one taxon across the branch population.
type TaxonSummary struct {
	Taxon          Taxon
	Static         int     // static branches in the taxon
	Execs          uint64  // dynamic executions
	DirMispredicts uint64  // subject direction mispredicts
	Redirects      uint64  // subject frontend redirects (direction + BTB)
	Penalty        float64 // summed attributed interval penalty (cycles)
}

// Summaries aggregates the profile per taxon, in report order, including
// zero rows so golden tables keep a fixed shape.
func (p *Profile) Summaries() []TaxonSummary {
	out := make([]TaxonSummary, taxonCount)
	for i := range out {
		out[i].Taxon = Taxon(i)
	}
	for i := range p.Branches {
		b := &p.Branches[i]
		s := &out[b.Taxon]
		s.Static++
		s.Execs += b.Execs
		s.DirMispredicts += b.SubjectMiss
		s.Redirects += b.Redirects()
		s.Penalty += b.Penalty
	}
	return out
}

// TotalRedirects returns the subject's frontend redirects over the counted
// window (conditional branches only).
func (p *Profile) TotalRedirects() uint64 {
	var n uint64
	for i := range p.Branches {
		n += p.Branches[i].Redirects()
	}
	return n
}

// TotalDirMispredicts returns the subject's direction mispredicts over the
// counted window.
func (p *Profile) TotalDirMispredicts() uint64 {
	var n uint64
	for i := range p.Branches {
		n += p.Branches[i].SubjectMiss
	}
	return n
}

// TopH2P returns the k H2P branches with the most subject mispredicts,
// ties broken by PC — the "small set of hard branches" view.
func (p *Profile) TopH2P(k int) []BranchStats {
	var h2p []BranchStats
	for _, b := range p.Branches {
		if b.Taxon == TaxonH2P {
			h2p = append(h2p, b)
		}
	}
	sort.Slice(h2p, func(i, j int) bool {
		if h2p[i].SubjectMiss != h2p[j].SubjectMiss {
			return h2p[i].SubjectMiss > h2p[j].SubjectMiss
		}
		return h2p[i].PC < h2p[j].PC
	})
	if len(h2p) > k {
		h2p = h2p[:k]
	}
	return h2p
}
