package predictability

import (
	"fmt"

	"intervalsim/internal/bpred"
	"intervalsim/internal/isa"
	"intervalsim/internal/trace"
)

// BudgetPoint is one point on an accuracy-vs-storage curve: the largest
// sizing of a predictor kind that fits the bit budget, and its measured
// direction accuracy on a trace.
type BudgetPoint struct {
	BudgetBits  int64
	Config      bpred.Config
	StorageBits int64   // actual bits used by the chosen sizing
	Mispredicts uint64  // direction mispredicts over the counted window
	MPKI        float64 // per counted (post-warmup) instruction
	Accuracy    float64 // correct direction predictions / branch executions
}

// BudgetCurve measures how a predictor kind's direction accuracy scales
// with storage: for each budget it sizes the kind maximally within the
// budget (ConfigForBudget) and replays the trace's conditional branches
// through it. Only direction prediction is measured — the BTB is held out
// of the budget, matching the B1 shootout's framing. Budgets too small for
// even a single-entry table are an error, as is an unknown kind.
func BudgetCurve(soa *trace.SoA, kind string, budgets []int64, warmup int) ([]BudgetPoint, error) {
	n := soa.Len()
	if warmup > n {
		warmup = n
	}
	counted := n - warmup
	out := make([]BudgetPoint, 0, len(budgets))
	for _, budget := range budgets {
		cfg, ok := bpred.ConfigForBudget(kind, budget)
		if !ok {
			return nil, fmt.Errorf("predictability: no %q sizing fits %d bits", kind, budget)
		}
		cfg.BTBEntries = 0
		unit, err := cfg.Build()
		if err != nil {
			return nil, fmt.Errorf("predictability: %w", err)
		}
		dir := unit.Dir
		var miss, execs uint64
		for i := 0; i < n; i++ {
			if soa.Class(i) != isa.Branch {
				continue
			}
			ok := dir.Access(soa.PC[i], soa.Taken(i))
			if i < warmup {
				continue
			}
			execs++
			if !ok {
				miss++
			}
		}
		pt := BudgetPoint{
			BudgetBits:  budget,
			Config:      cfg,
			StorageBits: cfg.StorageBits(),
			Mispredicts: miss,
		}
		if counted > 0 {
			pt.MPKI = float64(miss) / float64(counted) * 1000
		}
		if execs > 0 {
			pt.Accuracy = 1 - float64(miss)/float64(execs)
		}
		out = append(out, pt)
	}
	return out, nil
}
