package uarch

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"intervalsim/internal/overlay"
	"intervalsim/internal/trace"
	"intervalsim/internal/workload"
)

// lockstepConfigs builds a K-set of distinct configurations spanning the
// axes a sweep varies: window size, frontend depth, and machine width. All
// members share the baseline predictor and memory hierarchy, so one overlay
// applies to the whole set.
func lockstepConfigs(k int) []Config {
	depths := []int{3, 5, 7, 9, 11, 4, 6, 8}
	robs := []int{48, 64, 96, 128, 160, 192, 224, 256}
	widths := []int{2, 4, 4, 8, 2, 4, 8, 4}
	cfgs := make([]Config, k)
	for i := range cfgs {
		c := Baseline()
		c.Name = "lockstep-" + string(rune('a'+i))
		c.FrontendDepth = depths[i%len(depths)]
		c.ROBSize = robs[i%len(robs)]
		c.IQSize = c.ROBSize / 2
		c.FetchWidth = widths[i%len(widths)]
		c.DispatchWidth = widths[i%len(widths)]
		c.IssueWidth = widths[i%len(widths)]
		c.CommitWidth = widths[i%len(widths)]
		cfgs[i] = c
	}
	return cfgs
}

func lockstepTrace(t *testing.T, bench string, insts int) *trace.SoA {
	t.Helper()
	wc, ok := workload.SuiteConfig(bench)
	if !ok {
		t.Fatalf("unknown benchmark %s", bench)
	}
	tr, err := trace.ReadAll(workload.MustNew(wc, insts))
	if err != nil {
		t.Fatal(err)
	}
	return trace.Pack(tr)
}

// TestLockstepMatchesSerial is the contract behind SimulateMany: for every
// configuration in a K-set, the lockstep result must be byte-identical to
// running that configuration alone — in live mode, in overlay-replay mode,
// and in the fallback paths (sampled runs, which bypass precomputed
// dependences and reject the overlay per config).
func TestLockstepMatchesSerial(t *testing.T) {
	soa := lockstepTrace(t, "crafty", 40_000)
	base := Baseline()
	ov, err := overlay.Compute(soa, base.Pred, base.Mem)
	if err != nil {
		t.Fatal(err)
	}

	modes := []struct {
		name string
		ov   *overlay.Overlay
		opts Options
	}{
		{"live", nil, Options{}},
		{"live-recorded", nil, Options{RecordEvents: true, RecordMispredicts: true, RecordLoadLevels: true, WarmupInsts: 8_000}},
		{"replay", ov, Options{RecordMispredicts: true}},
		{"sampled-fallback", ov, Options{SampleStartSkip: 5_000, SampleDetailed: 4_000, SampleSkip: 6_000}},
	}
	for _, k := range []int{2, 4, 8} {
		cfgs := lockstepConfigs(k)
		for _, mode := range modes {
			t.Run(mode.name+"/k="+string(rune('0'+k)), func(t *testing.T) {
				serialOpts := mode.opts
				serialOpts.Overlay = mode.ov
				many, err := SimulateMany(context.Background(), soa, mode.ov, cfgs, mode.opts)
				if err != nil {
					t.Fatal(err)
				}
				if len(many) != k {
					t.Fatalf("got %d results, want %d", len(many), k)
				}
				for i, cfg := range cfgs {
					serial, err := Run(soa.Reader(), cfg, serialOpts)
					if err != nil {
						t.Fatal(err)
					}
					if many[i].Path != serial.Path {
						t.Errorf("config %d Path: lockstep %q, serial %q", i, many[i].Path, serial.Path)
					}
					if many[i].Fallback != serial.Fallback {
						t.Errorf("config %d Fallback: lockstep %q, serial %q", i, many[i].Fallback, serial.Fallback)
					}
					compareResults(t, serial, many[i])
				}
			})
		}
	}
}

// TestLockstepPerConfigFallback pins the per-config fast-path reporting of a
// mixed K-set: one member's predictor differs from the overlay's fingerprint,
// so only that member may fall back to live simulation — the siblings must
// still replay, and the rejected member must say why in its own Result. A
// batch-wide scalar would either hide the fallback or smear it over the
// healthy configs.
func TestLockstepPerConfigFallback(t *testing.T) {
	soa := lockstepTrace(t, "gzip", 30_000)
	base := Baseline()
	ov, err := overlay.Compute(soa, base.Pred, base.Mem)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := lockstepConfigs(3)
	cfgs[1].Pred = PredictorSpec{Kind: "gshare", Entries: 2048, HistBits: 10, BTBEntries: 512}

	many, err := SimulateMany(context.Background(), soa, ov, cfgs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range many {
		if i == 1 {
			if res.Path != "soa" {
				t.Errorf("mismatched config Path = %q, want soa (live fallback)", res.Path)
			}
			if !strings.Contains(res.Fallback, "fingerprint mismatch") {
				t.Errorf("mismatched config Fallback = %q, want a fingerprint-mismatch reason", res.Fallback)
			}
			continue
		}
		if res.Path != "soa+overlay" {
			t.Errorf("config %d Path = %q, want soa+overlay", i, res.Path)
		}
		if res.Fallback != "" {
			t.Errorf("config %d Fallback = %q, want empty", i, res.Fallback)
		}
	}
	// The fallback member still matches its own serial run.
	serial, err := Run(soa.Reader(), cfgs[1], Options{Overlay: ov})
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, serial, many[1])
}

// TestLockstepWatchdogCancelsBatch proves a stuck configuration cannot
// stall its K-set: the no-progress watchdog on the pathological member
// aborts the whole SimulateMany call with ErrWatchdog naming that config,
// instead of returning partial results.
func TestLockstepWatchdogCancelsBatch(t *testing.T) {
	soa := lockstepTrace(t, "mcf", 500_000)
	cfgs := lockstepConfigs(3)
	cfgs[1].Name = "stuck"
	cfgs[1].Mem.Lat.Mem = 100_000 // starves commit far past the budget below

	res, err := SimulateMany(context.Background(), soa, nil, cfgs, Options{
		NoProgressCycles: 5_000,
		MaxCycles:        50_000_000,
	})
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Errorf("error %q does not name the stuck config", err)
	}
	if res != nil {
		t.Errorf("got %d partial results alongside the watchdog error, want none", len(res))
	}
}

// TestLockstepCanceledContext: cancellation propagates out of the batch.
func TestLockstepCanceledContext(t *testing.T) {
	soa := lockstepTrace(t, "gzip", 200_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SimulateMany(ctx, soa, nil, lockstepConfigs(2), Options{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestLockstepRejectsBadConfig: validation covers every member up front, so
// a bad config fails the batch before any simulation runs.
func TestLockstepRejectsBadConfig(t *testing.T) {
	soa := lockstepTrace(t, "gzip", 1_000)
	cfgs := lockstepConfigs(2)
	cfgs[1].ROBSize = 0
	if _, err := SimulateMany(context.Background(), soa, nil, cfgs, Options{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
}

// TestLockstepConcurrentSharedOverlay stresses concurrent SimulateMany
// callers sharing one trace and one memoized overlay cache — the service
// serving pattern. Run under -race (CI does), this pins the overlay and SoA
// as read-only at simulation time; each caller's results must still match
// its own serial reference.
func TestLockstepConcurrentSharedOverlay(t *testing.T) {
	soa := lockstepTrace(t, "vpr", 30_000)
	base := Baseline()

	const callers = 4
	var wg sync.WaitGroup
	errs := make([]error, callers)
	results := make([][]*Result, callers)
	sets := make([][]Config, callers)
	for i := 0; i < callers; i++ {
		sets[i] = lockstepConfigs(2 + i%3)
	}
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Every caller resolves the overlay through the shared memo
			// cache: one Compute, many concurrent readers.
			ov, err := overlay.Shared.Get(soa, base.Pred, base.Mem)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = SimulateMany(context.Background(), soa, ov, sets[i], Options{})
		}(i)
	}
	wg.Wait()
	ov, err := overlay.Shared.Get(soa, base.Pred, base.Mem)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		for j, cfg := range sets[i] {
			serial, err := Run(soa.Reader(), cfg, Options{Overlay: ov})
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, serial, results[i][j])
		}
	}
}
