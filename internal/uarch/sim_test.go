package uarch

import (
	"errors"
	"testing"

	"intervalsim/internal/cache"
	"intervalsim/internal/isa"
	"intervalsim/internal/trace"
)

// testConfig is a small machine with a perfect predictor and big-enough
// caches, so tests isolate one mechanism at a time.
func testConfig() Config {
	c := Baseline()
	c.Name = "test"
	c.Pred = PredictorSpec{Kind: "perfect"}
	return c
}

// loopTrace builds iters repetitions of body (plus a closing jump back), all
// within a compact code region so the I-cache warms after one iteration.
// body receives the iteration's base PC and must return instructions with
// consecutive PCs starting there.
func loopTrace(iters int, bodyLen int, body func(pc uint64, iter int) []isa.Inst) *trace.Trace {
	t := &trace.Trace{}
	base := uint64(0x1000)
	jumpPC := base + uint64(bodyLen)*4
	for it := 0; it < iters; it++ {
		insts := body(base, it)
		if len(insts) != bodyLen {
			panic("body length mismatch")
		}
		t.Insts = append(t.Insts, insts...)
		t.Insts = append(t.Insts, isa.Inst{
			PC: jumpPC, Class: isa.Jump, Taken: true, Target: base,
			Src1: isa.NoReg, Src2: isa.NoReg, Dst: isa.NoReg,
		})
	}
	return t
}

// aluInst returns an IntALU instruction with the given operands.
func aluInst(pc uint64, src, dst int8) isa.Inst {
	return isa.Inst{PC: pc, Class: isa.IntALU, Src1: src, Src2: isa.NoReg, Dst: dst}
}

func mustRun(t *testing.T, tr *trace.Trace, cfg Config, opts Options) *Result {
	t.Helper()
	res, err := Run(tr.Reader(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidateConfig(t *testing.T) {
	if err := Baseline().Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	muts := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero width", func(c *Config) { c.DispatchWidth = 0 }},
		{"zero depth", func(c *Config) { c.FrontendDepth = 0 }},
		{"IQ > ROB", func(c *Config) { c.IQSize = c.ROBSize + 1 }},
		{"bad FU", func(c *Config) { c.FU.IntALU.Count = 0 }},
		{"bad predictor", func(c *Config) { c.Pred.Kind = "psychic" }},
		{"bad cache", func(c *Config) { c.Mem.L1D.Size = 77 }},
	}
	for _, m := range muts {
		c := Baseline()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", m.name)
		}
	}
}

func TestPredictorSpecBuildKinds(t *testing.T) {
	kinds := []PredictorSpec{
		{Kind: "perfect"},
		{Kind: "taken"},
		{Kind: "not-taken"},
		{Kind: "bimodal", Entries: 64},
		{Kind: "gshare", Entries: 64, HistBits: 4},
		{Kind: "local", Entries: 64, HistBits: 4},
		{Kind: "tournament", Entries: 64, HistBits: 4},
	}
	for _, k := range kinds {
		if _, err := k.Build(); err != nil {
			t.Errorf("%s: %v", k.Kind, err)
		}
	}
	if _, err := (PredictorSpec{Kind: "nope"}).Build(); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestFUsScale(t *testing.T) {
	f := Baseline().FU.Scale(2)
	if f.IntALU.Latency != 2 || f.IntDiv.Latency != 40 {
		t.Errorf("scale 2: ALU=%d DIV=%d", f.IntALU.Latency, f.IntDiv.Latency)
	}
	half := Baseline().FU.Scale(0.1)
	if half.IntALU.Latency < 1 {
		t.Error("latency scaled below 1")
	}
}

func TestIndependentStreamNearFullWidth(t *testing.T) {
	// 12 independent ALU ops + jump per iteration: should sustain close to
	// the 4-wide dispatch limit once warm.
	tr := loopTrace(3000, 12, func(pc uint64, _ int) []isa.Inst {
		out := make([]isa.Inst, 12)
		for i := range out {
			out[i] = aluInst(pc+uint64(i)*4, isa.NoReg, int8(8+i))
		}
		return out
	})
	res := mustRun(t, tr, testConfig(), Options{})
	if res.Insts != uint64(tr.Len()) {
		t.Fatalf("committed %d of %d", res.Insts, tr.Len())
	}
	if ipc := res.IPC(); ipc < 2.5 {
		t.Errorf("independent stream IPC = %.2f, want > 2.5", ipc)
	}
}

func TestSerialChainBoundByLatency(t *testing.T) {
	// Every instruction depends on its predecessor: IPC must be ~1.
	tr := loopTrace(2000, 12, func(pc uint64, _ int) []isa.Inst {
		out := make([]isa.Inst, 12)
		for i := range out {
			out[i] = aluInst(pc+uint64(i)*4, 8, 8) // r8 = f(r8)
		}
		return out
	})
	res := mustRun(t, tr, testConfig(), Options{})
	ipc := res.IPC()
	if ipc > 1.2 || ipc < 0.7 {
		t.Errorf("serial chain IPC = %.2f, want ~1", ipc)
	}
}

func TestChainWithLatencyScales(t *testing.T) {
	// A serial chain of 3-cycle multiplies: IPC ~ 1/3.
	tr := loopTrace(1000, 12, func(pc uint64, _ int) []isa.Inst {
		out := make([]isa.Inst, 12)
		for i := range out {
			out[i] = isa.Inst{PC: pc + uint64(i)*4, Class: isa.IntMul, Src1: 8, Src2: isa.NoReg, Dst: 8}
		}
		return out
	})
	res := mustRun(t, tr, testConfig(), Options{})
	ipc := res.IPC()
	if ipc > 0.45 || ipc < 0.25 {
		t.Errorf("mul chain IPC = %.2f, want ~0.33", ipc)
	}
}

func TestMispredictPenaltyIndependentWindow(t *testing.T) {
	// A taken branch with a static not-taken predictor mispredicts every
	// iteration. With an independent window the branch resolves almost
	// immediately: penalty ≈ frontend depth + dispatch-to-execute time.
	cfg := testConfig()
	cfg.Pred = PredictorSpec{Kind: "not-taken"}
	bodyLen := 8
	tr := &trace.Trace{}
	base := uint64(0x1000)
	brPC := base + uint64(bodyLen)*4
	for it := 0; it < 500; it++ {
		for i := 0; i < bodyLen; i++ {
			tr.Insts = append(tr.Insts, aluInst(base+uint64(i)*4, isa.NoReg, int8(8+i)))
		}
		tr.Insts = append(tr.Insts, isa.Inst{
			PC: brPC, Class: isa.Branch, Taken: true, Target: base,
			Src1: isa.NoReg, Src2: isa.NoReg, Dst: isa.NoReg,
		})
	}
	res := mustRun(t, tr, cfg, Options{RecordMispredicts: true, RecordEvents: true})
	if res.Mispredicts < 490 {
		t.Fatalf("mispredicts = %d, want ~500", res.Mispredicts)
	}
	avg := res.AvgMispredictPenalty()
	lo := float64(cfg.FrontendDepth + 1)
	hi := float64(cfg.FrontendDepth + 7)
	if avg < lo || avg > hi {
		t.Errorf("avg penalty = %.1f, want in [%.0f, %.0f]", avg, lo, hi)
	}
}

func TestMispredictPenaltyGrowsWithDependentChain(t *testing.T) {
	// The branch now sits at the end of a serial multiply chain: resolution
	// must wait for the chain, so the penalty is much larger than frontend
	// depth — the paper's central observation.
	cfg := testConfig()
	cfg.Pred = PredictorSpec{Kind: "not-taken"}
	bodyLen := 8
	tr := &trace.Trace{}
	base := uint64(0x1000)
	brPC := base + uint64(bodyLen)*4
	for it := 0; it < 500; it++ {
		for i := 0; i < bodyLen; i++ {
			tr.Insts = append(tr.Insts, isa.Inst{
				PC: base + uint64(i)*4, Class: isa.IntMul, Src1: 8, Src2: isa.NoReg, Dst: 8,
			})
		}
		tr.Insts = append(tr.Insts, isa.Inst{
			PC: brPC, Class: isa.Branch, Taken: true, Target: base,
			Src1: 8, Src2: isa.NoReg, Dst: isa.NoReg, // tests the chain result
		})
	}
	res := mustRun(t, tr, cfg, Options{RecordMispredicts: true})
	avg := res.AvgMispredictPenalty()
	// Chain of 8 muls at 3 cycles ≈ 24 cycles of resolution + refill.
	if avg < float64(cfg.FrontendDepth)+15 {
		t.Errorf("chained-branch penalty = %.1f, want ≫ frontend depth %d", avg, cfg.FrontendDepth)
	}
}

func TestMispredictRecordTimingInvariants(t *testing.T) {
	cfg := testConfig()
	cfg.Pred = PredictorSpec{Kind: "not-taken"}
	tr := loopTrace(300, 8, func(pc uint64, _ int) []isa.Inst {
		out := make([]isa.Inst, 8)
		for i := range out {
			out[i] = aluInst(pc+uint64(i)*4, 8, 8)
		}
		return out
	})
	// Swap jumps for taken branches so they mispredict.
	for i := range tr.Insts {
		if tr.Insts[i].Class == isa.Jump {
			tr.Insts[i].Class = isa.Branch
		}
	}
	res := mustRun(t, tr, cfg, Options{RecordMispredicts: true, RecordEvents: true})
	if len(res.Records) == 0 {
		t.Fatal("no records collected")
	}
	for i, r := range res.Records {
		if r.ResumeCycle == 0 {
			continue // trace ended before refill
		}
		if !(r.DispatchCycle < r.IssueCycle && r.IssueCycle < r.ResolveCycle) {
			t.Fatalf("record %d: dispatch %d, issue %d, resolve %d", i, r.DispatchCycle, r.IssueCycle, r.ResolveCycle)
		}
		if r.ResumeCycle < r.ResolveCycle+uint64(cfg.FrontendDepth) {
			t.Fatalf("record %d: resume %d before resolve %d + depth", i, r.ResumeCycle, r.ResolveCycle)
		}
		if r.Penalty() < float64(cfg.FrontendDepth) {
			t.Fatalf("record %d: penalty %.1f below frontend depth", i, r.Penalty())
		}
		if r.Occupancy < 0 || r.Occupancy > cfg.ROBSize {
			t.Fatalf("record %d: occupancy %d", i, r.Occupancy)
		}
	}
}

func TestPerfectPredictorNoMispredictEvents(t *testing.T) {
	tr := loopTrace(500, 8, func(pc uint64, _ int) []isa.Inst {
		out := make([]isa.Inst, 8)
		for i := range out {
			out[i] = aluInst(pc+uint64(i)*4, isa.NoReg, int8(8+i))
		}
		return out
	})
	res := mustRun(t, tr, testConfig(), Options{RecordEvents: true})
	if res.Mispredicts != 0 {
		t.Errorf("perfect predictor yielded %d mispredicts", res.Mispredicts)
	}
	for _, ev := range res.Events {
		if ev.Kind == EvBranchMispredict {
			t.Fatal("mispredict event with perfect predictor")
		}
	}
}

func TestLongDMissDominatesRuntime(t *testing.T) {
	// Serial pointer-chase-like loads to cold lines: every load is a long
	// miss and they cannot overlap, so runtime ≈ N × memory latency.
	cfg := testConfig()
	n := 50
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		tr.Insts = append(tr.Insts, isa.Inst{
			PC: 0x1000 + uint64(i%8)*4, Class: isa.Load,
			Src1: 8, Src2: isa.NoReg, Dst: 8,
			Addr: 0x10000000 + uint64(i)*4096, // distinct lines and sets
		})
	}
	res := mustRun(t, tr, cfg, Options{RecordEvents: true})
	if res.LongDMisses != uint64(n) {
		t.Fatalf("long misses = %d, want %d", res.LongDMisses, n)
	}
	wantMin := uint64(n) * uint64(cfg.Mem.Lat.Mem-10)
	if res.Cycles < wantMin {
		t.Errorf("cycles = %d, want ≥ %d (serial misses)", res.Cycles, wantMin)
	}
	longEvents := 0
	for _, ev := range res.Events {
		if ev.Kind == EvLongDMiss {
			longEvents++
		}
	}
	if longEvents != n {
		t.Errorf("long-miss events = %d, want %d", longEvents, n)
	}
}

func TestIndependentLongMissesOverlap(t *testing.T) {
	// Independent loads to cold lines overlap (memory-level parallelism):
	// runtime must be far below N × memory latency.
	cfg := testConfig()
	n := 50
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		tr.Insts = append(tr.Insts, isa.Inst{
			PC: 0x1000 + uint64(i%8)*4, Class: isa.Load,
			Src1: 1, Src2: isa.NoReg, Dst: int8(8 + i%32),
			Addr: 0x10000000 + uint64(i)*4096,
		})
	}
	res := mustRun(t, tr, cfg, Options{})
	serial := uint64(n) * uint64(cfg.Mem.Lat.Mem)
	if res.Cycles > serial/4 {
		t.Errorf("cycles = %d; independent misses did not overlap (serial bound %d)", res.Cycles, serial)
	}
}

func TestStoreToLoadDependence(t *testing.T) {
	// load r9 ← [X] must wait for the older store [X] ← r8 where r8 is
	// produced by a long-latency divide. If forwarding order is respected,
	// runtime stretches by the divide latency per iteration.
	cfg := testConfig()
	mk := func(withStore bool) *trace.Trace {
		tr := &trace.Trace{}
		for i := 0; i < 200; i++ {
			pc := uint64(0x1000)
			tr.Insts = append(tr.Insts, isa.Inst{PC: pc, Class: isa.IntDiv, Src1: 8, Src2: isa.NoReg, Dst: 8})
			if withStore {
				tr.Insts = append(tr.Insts, isa.Inst{PC: pc + 4, Class: isa.Store, Src1: 1, Src2: 8, Addr: 0x20000000})
			} else {
				tr.Insts = append(tr.Insts, aluInst(pc+4, 1, 10))
			}
			tr.Insts = append(tr.Insts, isa.Inst{PC: pc + 8, Class: isa.Load, Src1: 1, Src2: isa.NoReg, Dst: 9, Addr: 0x20000000})
			tr.Insts = append(tr.Insts, aluInst(pc+12, 9, 11))
			tr.Insts = append(tr.Insts, isa.Inst{PC: pc + 16, Class: isa.Jump, Taken: true, Target: pc, Src1: isa.NoReg, Src2: isa.NoReg, Dst: isa.NoReg})
		}
		return tr
	}
	with := mustRun(t, mk(true), cfg, Options{})
	without := mustRun(t, mk(false), cfg, Options{})
	if with.Cycles <= without.Cycles {
		t.Errorf("store→load dependence ignored: with=%d without=%d cycles", with.Cycles, without.Cycles)
	}
}

func TestICacheMissesOnColdCode(t *testing.T) {
	// Straight-line code spanning many lines, never revisited: one I-miss
	// per 64B line.
	cfg := testConfig()
	n := 1024
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		tr.Insts = append(tr.Insts, aluInst(0x1000+uint64(i)*4, isa.NoReg, 8))
	}
	res := mustRun(t, tr, cfg, Options{RecordEvents: true})
	wantLines := uint64(n * 4 / 64)
	if res.ICacheMisses != wantLines {
		t.Errorf("I-misses = %d, want %d", res.ICacheMisses, wantLines)
	}
	// Each cold line costs ~memory latency in fetch stalls.
	if res.Cycles < wantLines*uint64(cfg.Mem.Lat.Mem)/2 {
		t.Errorf("cycles = %d suspiciously low for cold code", res.Cycles)
	}
}

func TestWarmCodeHasNoICacheMisses(t *testing.T) {
	tr := loopTrace(1000, 8, func(pc uint64, _ int) []isa.Inst {
		out := make([]isa.Inst, 8)
		for i := range out {
			out[i] = aluInst(pc+uint64(i)*4, isa.NoReg, 8)
		}
		return out
	})
	res := mustRun(t, tr, testConfig(), Options{})
	if res.ICacheMisses > 2 {
		t.Errorf("I-misses = %d on a loop fitting one line pair", res.ICacheMisses)
	}
}

func TestROBLimitsMemoryParallelism(t *testing.T) {
	// Independent long-miss loads: a tiny ROB exposes fewer concurrent
	// misses, so a 16-entry window must be slower than a 128-entry one.
	mk := func() *trace.Trace {
		tr := &trace.Trace{}
		for i := 0; i < 400; i++ {
			tr.Insts = append(tr.Insts, isa.Inst{
				PC: 0x1000 + uint64(i%16)*4, Class: isa.Load,
				Src1: 1, Src2: isa.NoReg, Dst: int8(8 + i%32),
				Addr: 0x10000000 + uint64(i)*4096,
			})
		}
		return tr
	}
	small := testConfig()
	small.ROBSize, small.IQSize = 16, 16
	big := testConfig()
	resSmall := mustRun(t, mk(), small, Options{})
	resBig := mustRun(t, mk(), big, Options{})
	if resSmall.Cycles <= resBig.Cycles {
		t.Errorf("ROB size had no effect: small=%d big=%d", resSmall.Cycles, resBig.Cycles)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *trace.Trace {
		return loopTrace(500, 8, func(pc uint64, it int) []isa.Inst {
			out := make([]isa.Inst, 8)
			for i := range out {
				out[i] = aluInst(pc+uint64(i)*4, int8(8+(i+it)%8), int8(8+i))
			}
			return out
		})
	}
	cfg := testConfig()
	a := mustRun(t, mk(), cfg, Options{RecordEvents: true})
	b := mustRun(t, mk(), cfg, Options{RecordEvents: true})
	if a.Cycles != b.Cycles || a.Insts != b.Insts || len(a.Events) != len(b.Events) {
		t.Error("simulation not deterministic")
	}
}

func TestMaxInsts(t *testing.T) {
	tr := loopTrace(1000, 8, func(pc uint64, _ int) []isa.Inst {
		out := make([]isa.Inst, 8)
		for i := range out {
			out[i] = aluInst(pc+uint64(i)*4, isa.NoReg, 8)
		}
		return out
	})
	res := mustRun(t, tr, testConfig(), Options{MaxInsts: 100})
	if res.Insts != 100 {
		t.Errorf("insts = %d, want 100", res.Insts)
	}
}

func TestTimelineRecording(t *testing.T) {
	tr := loopTrace(100, 8, func(pc uint64, _ int) []isa.Inst {
		out := make([]isa.Inst, 8)
		for i := range out {
			out[i] = aluInst(pc+uint64(i)*4, isa.NoReg, 8)
		}
		return out
	})
	cfg := testConfig()
	res := mustRun(t, tr, cfg, Options{TimelineCycles: 50})
	if len(res.Timeline) != 50 {
		t.Fatalf("timeline length = %d", len(res.Timeline))
	}
	for _, d := range res.Timeline {
		if int(d) > cfg.DispatchWidth {
			t.Fatalf("dispatched %d > width", d)
		}
	}
}

func TestEventsAreOrderedByIndexWithinKind(t *testing.T) {
	cfg := testConfig()
	cfg.Pred = PredictorSpec{Kind: "not-taken"}
	tr := loopTrace(200, 8, func(pc uint64, _ int) []isa.Inst {
		out := make([]isa.Inst, 8)
		for i := range out {
			out[i] = aluInst(pc+uint64(i)*4, 8, 8)
		}
		return out
	})
	for i := range tr.Insts {
		if tr.Insts[i].Class == isa.Jump {
			tr.Insts[i].Class = isa.Branch
		}
	}
	res := mustRun(t, tr, cfg, Options{RecordEvents: true})
	var lastCycle uint64
	for _, ev := range res.Events {
		if ev.Cycle < lastCycle {
			t.Fatalf("events out of cycle order")
		}
		lastCycle = ev.Cycle
	}
}

type errReader struct{ n int }

func (e *errReader) Next() (isa.Inst, error) {
	if e.n <= 0 {
		return isa.Inst{}, errors.New("boom")
	}
	e.n--
	return isa.Inst{PC: 0x1000, Class: isa.IntALU, Src1: isa.NoReg, Src2: isa.NoReg, Dst: 8}, nil
}

func TestReaderErrorPropagates(t *testing.T) {
	_, err := Run(&errReader{n: 10}, testConfig(), Options{})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := Baseline()
	cfg.ROBSize = 0
	if _, err := Run((&trace.Trace{}).Reader(), cfg, Options{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestFrontendDepthShiftsPenalty(t *testing.T) {
	mk := func() *trace.Trace {
		tr := &trace.Trace{}
		base := uint64(0x1000)
		for it := 0; it < 300; it++ {
			for i := 0; i < 8; i++ {
				tr.Insts = append(tr.Insts, aluInst(base+uint64(i)*4, isa.NoReg, int8(8+i)))
			}
			tr.Insts = append(tr.Insts, isa.Inst{
				PC: base + 32, Class: isa.Branch, Taken: true, Target: base,
				Src1: isa.NoReg, Src2: isa.NoReg, Dst: isa.NoReg,
			})
		}
		return tr
	}
	shallow := testConfig()
	shallow.Pred = PredictorSpec{Kind: "not-taken"}
	shallow.FrontendDepth = 3
	deep := shallow
	deep.FrontendDepth = 13
	resShallow := mustRun(t, mk(), shallow, Options{RecordMispredicts: true})
	resDeep := mustRun(t, mk(), deep, Options{RecordMispredicts: true})
	diff := resDeep.AvgMispredictPenalty() - resShallow.AvgMispredictPenalty()
	if diff < 8 || diff > 12 {
		t.Errorf("depth +10 moved penalty by %.1f, want ~10", diff)
	}
}

func TestEventKindString(t *testing.T) {
	if EvBranchMispredict.String() == "" || EvICacheMiss.String() == "" ||
		EvLongDMiss.String() == "" || EventKind(9).String() == "" {
		t.Error("event kind names empty")
	}
}

func TestShortDMissCounting(t *testing.T) {
	// Working set bigger than L1D (64KB) but within L2 (1MB): repeated
	// passes produce short misses, not long misses.
	cfg := testConfig()
	tr := &trace.Trace{}
	lines := (256 << 10) / 64 // 256KB
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			tr.Insts = append(tr.Insts, isa.Inst{
				PC: 0x1000 + uint64(i%16)*4, Class: isa.Load,
				Src1: 1, Src2: isa.NoReg, Dst: int8(8 + i%32),
				Addr: 0x10000000 + uint64(i)*64,
			})
		}
	}
	res := mustRun(t, tr, cfg, Options{})
	if res.ShortDMisses == 0 {
		t.Fatal("no short misses on an L2-resident working set")
	}
	// After the cold pass, misses should be short (L2 hits), so short ≫ long
	// beyond the first pass.
	if res.ShortDMisses < res.LongDMisses {
		t.Errorf("short=%d < long=%d; expected L2 to capture the set", res.ShortDMisses, res.LongDMisses)
	}
}

var _ = cache.Latencies{} // keep the import if assertions above change
