package uarch

import "intervalsim/internal/vpred"

// vpredFingerprint names the machine's value-predictor configuration the
// way overlays do: 0 for the classic vpred-less machine, the config's
// canonical fingerprint otherwise. Overlay replay requires an exact match.
func vpredFingerprint(vp *vpred.Config) uint64 {
	if vp == nil {
		return 0
	}
	return vp.Fingerprint()
}

// confEstimator is a JRS-style (Jacobsen/Rotenberg/Smith) branch confidence
// estimator: a table of 4-bit resetting counters indexed by branch PC. A
// correct prediction increments the branch's counter, a misprediction
// resets it, and a branch is high-confidence only once its counter reaches
// the threshold. The variable-fetch-rate frontend throttles fetch while any
// low-confidence branch is in flight (Ramachandran & Johnson).
type confEstimator struct {
	table []uint8
}

const (
	confEntries       = 1024
	confCeiling       = 15 // 4-bit resetting counter
	confHighThreshold = 8
)

func newConfEstimator() *confEstimator {
	return &confEstimator{table: make([]uint8, confEntries)}
}

// access classifies the branch at pc and folds in its outcome: it reports
// whether the branch was low-confidence at fetch time (before the update).
func (c *confEstimator) access(pc uint64, mispredicted bool) bool {
	i := (pc >> 2) % uint64(len(c.table))
	low := c.table[i] < confHighThreshold
	if mispredicted {
		c.table[i] = 0
	} else if c.table[i] < confCeiling {
		c.table[i]++
	}
	return low
}
