package uarch

import "errors"

// Sentinel errors for the failure modes a long-running caller (the sweep and
// experiment harnesses) needs to tell apart with errors.Is. Every error
// returned by Run/RunContext for one of these conditions wraps the matching
// sentinel, with per-run context (config name, cycle) in the message.
var (
	// ErrBadConfig marks a configuration rejected by Config.Validate: the
	// run could never have started. Bad configurations are permanent — a
	// retry harness must not re-run them.
	ErrBadConfig = errors.New("uarch: invalid configuration")

	// ErrWatchdog marks a run aborted by the simulation watchdog: either
	// the total cycle budget (Options.MaxCycles) was exceeded, or no
	// instruction committed for Options.NoProgressCycles cycles (a model
	// deadlock or a pathological configuration).
	ErrWatchdog = errors.New("uarch: watchdog expired")

	// ErrCanceled marks a run stopped because its context was canceled
	// (deadline or explicit cancellation by a caller).
	ErrCanceled = errors.New("uarch: simulation canceled")
)
