package uarch

import (
	"context"
	"fmt"

	"intervalsim/internal/overlay"
	"intervalsim/internal/trace"
)

// SimulateMany runs one simulator per configuration over the same packed
// trace, advancing all of them cycle-by-cycle in lockstep. The K simulators
// share the trace's struct-of-arrays storage (and the overlay, when one is
// given): at any moment every active simulator's fetch index sits within a
// window of the others, so the trace bytes each cycle touches are resident
// for all K configs instead of being streamed from memory K times — the
// traffic that dominates a serial sweep of the same configurations.
//
// Results are byte-identical to running each configuration serially with
// Run: a simulator's per-cycle transition reads only its own state, so the
// interleaving cannot change any individual outcome (pinned by
// TestLockstepMatchesSerial). Per-config fast-path selection and overlay
// applicability are decided independently for every configuration, so each
// Result carries its own Path and Fallback — a K-set may mix replayed,
// live-SoA, and sampled-fallback members.
//
// ov may be nil (live simulation for every config); when non-nil it
// overrides opts.Overlay for every member. opts applies to every config.
//
// Any member failing — watchdog expiry (ErrWatchdog), cancellation
// (ErrCanceled), or a trace error — aborts the whole batch: the first error
// encountered in config order is returned and no results are produced. A
// stuck configuration therefore cannot silently stall its K-set siblings.
func SimulateMany(ctx context.Context, soa *trace.SoA, ov *overlay.Overlay, cfgs []Config, opts Options) ([]*Result, error) {
	if soa == nil {
		return nil, fmt.Errorf("uarch: SimulateMany: nil trace")
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("uarch: SimulateMany: empty config set")
	}
	for i := range cfgs {
		if err := cfgs[i].Validate(); err != nil {
			return nil, fmt.Errorf("lockstep config %d: %w", i, err)
		}
	}
	opts.Overlay = ov
	sims := make([]*simulator, len(cfgs))
	for i, cfg := range cfgs {
		s, err := newSimulator(soa.Reader(), cfg, opts)
		if err != nil {
			return nil, fmt.Errorf("lockstep config %d (%s): %w", i, cfg.Name, err)
		}
		s.initRun()
		sims[i] = s
	}
	running := len(sims)
	done := make([]bool, len(sims))
	for running > 0 {
		for i, s := range sims {
			if done[i] {
				continue
			}
			fin, err := s.step(ctx)
			if err != nil {
				return nil, fmt.Errorf("lockstep config %d (%s): %w", i, s.cfg.Name, err)
			}
			if fin {
				done[i] = true
				running--
			}
		}
	}
	results := make([]*Result, len(sims))
	for i, s := range sims {
		results[i] = s.finalize()
	}
	return results, nil
}
