package uarch

import (
	"strings"
	"testing"

	"intervalsim/internal/overlay"
	"intervalsim/internal/trace"
	"intervalsim/internal/workload"
)

// replayOptions are the instrumentation matrices overlay replay supports:
// everything in diffOptions except sampling and wrong-path fetch, which
// newSimulator deliberately falls back to live simulation for.
func replayOptions() map[string]Options {
	m := map[string]Options{}
	for name, opts := range diffOptions() {
		if opts.fastForwarded() || opts.WrongPathFetch {
			continue
		}
		m[name] = opts
	}
	return m
}

// TestOverlayReplayMatchesLive is the contract behind the overlay cache: a
// run that replays precomputed branch-prediction and L1I outcomes must be
// bit-identical to a live run — every counter, stall bucket, event, record,
// timeline entry, and load level — across timing configurations that vary
// frontend depth and window size. One overlay (per workload) serves every
// configuration here, which is the point: the timing parameters the sweep
// varies may not change speculation outcomes.
func TestOverlayReplayMatchesLive(t *testing.T) {
	base := Baseline()
	shallow := Baseline()
	shallow.Name, shallow.FrontendDepth = "shallow", 3
	deep := Baseline()
	deep.Name, deep.FrontendDepth = "deep", 15
	smallrob := Baseline()
	smallrob.Name, smallrob.ROBSize, smallrob.IQSize = "smallrob", 48, 24
	bigrob := Baseline()
	bigrob.Name, bigrob.ROBSize, bigrob.IQSize = "bigrob", 256, 128
	cfgs := []Config{base, shallow, deep, smallrob, bigrob}

	ovCache := overlay.NewCache(4)
	for _, wname := range []string{"gzip", "mcf", "crafty", "twolf"} {
		wc, ok := workload.SuiteConfig(wname)
		if !ok {
			t.Fatalf("unknown workload %s", wname)
		}
		tr, err := trace.ReadAll(workload.MustNew(wc, 40_000))
		if err != nil {
			t.Fatal(err)
		}
		soa := trace.Pack(tr)
		for _, cfg := range cfgs {
			ov, err := ovCache.Get(soa, cfg.Pred, cfg.Mem)
			if err != nil {
				t.Fatal(err)
			}
			for oname, opts := range replayOptions() {
				t.Run(wname+"/"+cfg.Name+"/"+oname, func(t *testing.T) {
					live, err := Run(soa.Reader(), cfg, opts)
					if err != nil {
						t.Fatal(err)
					}
					opts.Overlay = ov
					replay, err := Run(soa.Reader(), cfg, opts)
					if err != nil {
						t.Fatal(err)
					}
					if replay.Path != "soa+overlay" {
						t.Fatalf("replay run took path %q (fallback: %q)", replay.Path, replay.Fallback)
					}
					compareResults(t, live, replay)
				})
			}
		}
	}
	// All five configs share one predictor and cache geometry, so each
	// workload computes exactly one overlay.
	if hits, misses := ovCache.Stats(); misses != 4 {
		t.Errorf("overlay cache computed %d overlays for 4 workloads (hits %d)", misses, hits)
	}
}

// TestOverlayFallback pins the rejection rules: an overlay that does not
// provably apply is ignored, the run falls back to live simulation with
// identical results, and the Result says why.
func TestOverlayFallback(t *testing.T) {
	cfg := Baseline()
	wc, _ := workload.SuiteConfig("gzip")
	tr, err := trace.ReadAll(workload.MustNew(wc, 20_000))
	if err != nil {
		t.Fatal(err)
	}
	soa := trace.Pack(tr)
	ov, err := overlay.Compute(soa, cfg.Pred, cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, r trace.Reader, cfg Config, opts Options, wantReason string) {
		t.Helper()
		got, err := Run(r, cfg, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Path == "soa+overlay" {
			t.Fatalf("%s: overlay was not rejected", name)
		}
		if !strings.Contains(got.Fallback, wantReason) {
			t.Errorf("%s: Fallback = %q, want mention of %q", name, got.Fallback, wantReason)
		}
	}

	opts := Options{Overlay: ov}
	check("generic reader", tr.Reader(), cfg, opts, "not a packed trace")

	sampled := opts
	sampled.SampleDetailed, sampled.SampleSkip = 2_000, 3_000
	check("sampled", soa.Reader(), cfg, sampled, "sampled")

	wrong := opts
	wrong.WrongPathFetch = true
	check("wrong-path fetch", soa.Reader(), cfg, wrong, "wrong-path")

	other := trace.Pack(tr)
	otherOv, err := overlay.Compute(other, cfg.Pred, cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	check("different trace", soa.Reader(), cfg, Options{Overlay: otherOv}, "different trace")

	mismatch := cfg
	mismatch.Pred.Kind = "bimodal"
	check("fingerprint mismatch", soa.Reader(), mismatch, opts, "fingerprint mismatch")

	// The fallback must not just be recorded — it must also be correct:
	// the run with the rejected overlay equals a plain live run.
	live, err := Run(soa.Reader(), mismatch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fell, err := Run(soa.Reader(), mismatch, opts)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, live, fell)
}
