package uarch

import (
	"testing"

	"intervalsim/internal/cache"
	"intervalsim/internal/isa"
	"intervalsim/internal/trace"
	"intervalsim/internal/workload"
)

// straightALU returns a trace of n independent single-line-looping ALU ops.
func straightALU(n int) *trace.Trace {
	return loopTrace(n/9, 8, func(pc uint64, _ int) []isa.Inst {
		out := make([]isa.Inst, 8)
		for i := range out {
			out[i] = aluInst(pc+uint64(i)*4, isa.NoReg, int8(8+i))
		}
		return out
	})
}

func TestDispatchWidthScalesThroughput(t *testing.T) {
	tr := straightALU(20_000)
	narrow := testConfig()
	narrow.FetchWidth, narrow.DispatchWidth, narrow.IssueWidth, narrow.CommitWidth = 1, 1, 1, 1
	wide := testConfig()
	resN := mustRun(t, tr, narrow, Options{})
	resW := mustRun(t, straightALU(20_000), wide, Options{})
	if resN.IPC() > 1.01 {
		t.Errorf("1-wide IPC = %.2f > 1", resN.IPC())
	}
	if resW.IPC() < resN.IPC()*2 {
		t.Errorf("4-wide (%.2f) not clearly faster than 1-wide (%.2f)", resW.IPC(), resN.IPC())
	}
}

func TestCommitWidthBoundsIPC(t *testing.T) {
	cfg := testConfig()
	cfg.CommitWidth = 2
	res := mustRun(t, straightALU(20_000), cfg, Options{})
	if res.IPC() > 2.01 {
		t.Errorf("IPC %.2f exceeds commit width 2", res.IPC())
	}
}

func TestStructuralHazardSingleALU(t *testing.T) {
	// Independent ALU ops but only one ALU: issue is structurally limited
	// to 1/cycle.
	cfg := testConfig()
	cfg.FU.IntALU.Count = 1
	res := mustRun(t, straightALU(20_000), cfg, Options{})
	if res.IPC() > 1.05 {
		t.Errorf("IPC %.2f with a single ALU", res.IPC())
	}
}

func TestUnpipelinedDivBlocksUnit(t *testing.T) {
	// Back-to-back independent divides on one unpipelined 20-cycle divider:
	// throughput 1/20. With a pipelined divider, ~1/1 after fill.
	mk := func() *trace.Trace {
		return loopTrace(400, 8, func(pc uint64, _ int) []isa.Inst {
			out := make([]isa.Inst, 8)
			for i := range out {
				out[i] = isa.Inst{PC: pc + uint64(i)*4, Class: isa.IntDiv, Src1: isa.NoReg, Src2: isa.NoReg, Dst: int8(8 + i)}
			}
			return out
		})
	}
	slow := testConfig()
	fast := testConfig()
	fast.FU.IntDiv.Pipelined = true
	resSlow := mustRun(t, mk(), slow, Options{})
	resFast := mustRun(t, mk(), fast, Options{})
	if resFast.Cycles*5 > resSlow.Cycles {
		t.Errorf("pipelined divider not much faster: %d vs %d cycles", resFast.Cycles, resSlow.Cycles)
	}
}

func TestIQSizeLimitsLatencyHiding(t *testing.T) {
	// Each iteration long-misses on an independent line and then runs
	// dependents of that load. A tiny issue queue fills with the waiting
	// dependents before the next independent miss can dispatch, so misses
	// serialize; a large IQ exposes the memory-level parallelism.
	mk := func() *trace.Trace {
		tr := &trace.Trace{}
		for it := 0; it < 150; it++ {
			pc := uint64(0x1000)
			dst := int8(8 + it%8)
			tr.Insts = append(tr.Insts, isa.Inst{
				PC: pc, Class: isa.Load, Src1: 1, Src2: isa.NoReg, Dst: dst,
				Addr: 0x10000000 + uint64(it)*4096,
			})
			for i := 1; i <= 10; i++ {
				tr.Insts = append(tr.Insts, aluInst(pc+uint64(i)*4, dst, int8(24+i)))
			}
			tr.Insts = append(tr.Insts, isa.Inst{PC: pc + 44, Class: isa.Jump, Taken: true, Target: pc, Src1: isa.NoReg, Src2: isa.NoReg, Dst: isa.NoReg})
		}
		return tr
	}
	small := testConfig()
	small.IQSize = 4
	big := testConfig()
	resSmall := mustRun(t, mk(), small, Options{})
	resBig := mustRun(t, mk(), big, Options{})
	if resSmall.Cycles < resBig.Cycles*2 {
		t.Errorf("small IQ (%d cycles) not clearly slower than big IQ (%d cycles)", resSmall.Cycles, resBig.Cycles)
	}
	if resSmall.Stalls.IQFull == 0 {
		t.Error("no IQ-full stalls recorded with a 4-entry IQ")
	}
}

func TestWarmupSubtraction(t *testing.T) {
	tr := straightALU(30_000)
	full := mustRun(t, straightALU(30_000), testConfig(), Options{})
	warm := mustRun(t, tr, testConfig(), Options{WarmupInsts: 10_000})
	if warm.Insts != full.Insts-10_000 {
		t.Errorf("warm insts = %d, want %d", warm.Insts, full.Insts-10_000)
	}
	if warm.Cycles >= full.Cycles {
		t.Errorf("warm cycles = %d not below full %d", warm.Cycles, full.Cycles)
	}
	// Steady-state IPC after warmup must be at least the overall IPC
	// (cold-start effects excluded).
	if warm.IPC() < full.IPC() {
		t.Errorf("post-warmup IPC %.2f below overall %.2f", warm.IPC(), full.IPC())
	}
}

func TestWarmupFiltersRecordsAndEvents(t *testing.T) {
	cfg := testConfig()
	cfg.Pred = PredictorSpec{Kind: "not-taken"}
	mk := func() *trace.Trace {
		tr := loopTrace(2000, 8, func(pc uint64, _ int) []isa.Inst {
			out := make([]isa.Inst, 8)
			for i := range out {
				out[i] = aluInst(pc+uint64(i)*4, isa.NoReg, int8(8+i))
			}
			return out
		})
		for i := range tr.Insts {
			if tr.Insts[i].Class == isa.Jump {
				tr.Insts[i].Class = isa.Branch
			}
		}
		return tr
	}
	full := mustRun(t, mk(), cfg, Options{RecordEvents: true, RecordMispredicts: true})
	warm := mustRun(t, mk(), cfg, Options{RecordEvents: true, RecordMispredicts: true, WarmupInsts: 9000})
	if len(warm.Records) >= len(full.Records) {
		t.Errorf("warmup did not trim records: %d vs %d", len(warm.Records), len(full.Records))
	}
	if len(warm.Events) >= len(full.Events) {
		t.Errorf("warmup did not trim events: %d vs %d", len(warm.Events), len(full.Events))
	}
	for _, r := range warm.Records {
		if r.Index < 9000 {
			t.Fatalf("pre-warmup record survived: index %d", r.Index)
		}
	}
	if warm.Mispredicts != uint64(len(warm.Records)) {
		t.Errorf("mispredict count %d != records %d", warm.Mispredicts, len(warm.Records))
	}
}

func TestJumpBTBMissIsRedirect(t *testing.T) {
	// Alternating jump targets defeat the BTB: every other jump redirects.
	cfg := testConfig()
	cfg.Pred = PredictorSpec{Kind: "taken", BTBEntries: 16}
	tr := &trace.Trace{}
	a, bb := uint64(0x1000), uint64(0x3000)
	cur := a
	for i := 0; i < 600; i++ {
		other := bb
		if cur == bb {
			other = a
		}
		for k := 0; k < 4; k++ {
			tr.Insts = append(tr.Insts, aluInst(cur+uint64(k)*4, isa.NoReg, int8(8+k)))
		}
		// The jump at the end of each block targets the other block; same
		// jump PC alternates targets, so the direct-mapped BTB always holds
		// the stale one.
		tr.Insts = append(tr.Insts, isa.Inst{
			PC: cur + 16, Class: isa.Jump, Taken: true, Target: other,
			Src1: isa.NoReg, Src2: isa.NoReg, Dst: isa.NoReg,
		})
		cur = other
	}
	res := mustRun(t, tr, cfg, Options{RecordMispredicts: true})
	if res.Bpred.BTBMispredict < 500 {
		t.Errorf("BTB mispredicts = %d, want ~600", res.Bpred.BTBMispredict)
	}
	if res.AvgMispredictPenalty() < float64(cfg.FrontendDepth) {
		t.Errorf("jump redirect penalty %.1f below frontend depth", res.AvgMispredictPenalty())
	}
}

func TestOccupancyNeverExceedsROB(t *testing.T) {
	cfg := testConfig()
	cfg.Pred = PredictorSpec{Kind: "not-taken"}
	cfg.ROBSize, cfg.IQSize = 32, 16
	wc, _ := workload.SuiteConfig("crafty")
	tr, err := trace.ReadAll(workload.MustNew(wc, 60_000))
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, tr, cfg, Options{RecordMispredicts: true})
	for _, r := range res.Records {
		if r.Occupancy < 0 || r.Occupancy >= cfg.ROBSize {
			t.Fatalf("occupancy %d outside [0, %d)", r.Occupancy, cfg.ROBSize)
		}
		if r.OldestInROB > r.Index {
			t.Fatalf("head %d beyond branch %d", r.OldestInROB, r.Index)
		}
	}
}

func TestCyclesLowerBound(t *testing.T) {
	// Cycles can never beat the dispatch-width bound.
	wc, _ := workload.SuiteConfig("gap")
	tr, err := trace.ReadAll(workload.MustNew(wc, 50_000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	res := mustRun(t, tr, cfg, Options{})
	if res.Cycles < res.Insts/uint64(cfg.DispatchWidth) {
		t.Errorf("cycles %d below width bound %d", res.Cycles, res.Insts/uint64(cfg.DispatchWidth))
	}
}

func TestLoadLevelRecording(t *testing.T) {
	cfg := testConfig()
	tr := &trace.Trace{}
	// One load that long-misses, one ALU, one load that L1-hits (same line).
	tr.Insts = append(tr.Insts,
		isa.Inst{PC: 0x1000, Class: isa.Load, Src1: 1, Src2: isa.NoReg, Dst: 8, Addr: 0x50000},
		aluInst(0x1004, 8, 9),
		isa.Inst{PC: 0x1008, Class: isa.Load, Src1: 1, Src2: isa.NoReg, Dst: 10, Addr: 0x50008},
	)
	res := mustRun(t, tr, cfg, Options{RecordLoadLevels: true})
	lvl0, ok0 := res.LoadLevel(0)
	lvl2, ok2 := res.LoadLevel(2)
	if !ok0 || !ok2 {
		t.Fatal("load levels not recorded")
	}
	if lvl0 != cache.LongMiss {
		t.Errorf("first load level = %v, want long miss", lvl0)
	}
	if lvl2 != cache.L1Hit {
		t.Errorf("second load level = %v, want L1 hit", lvl2)
	}
	if _, ok := res.LoadLevel(1); ok {
		t.Error("non-load reported a level")
	}
	if _, ok := res.LoadLevel(99); ok {
		t.Error("out-of-range index reported a level")
	}
}

func TestStallAccountingSumsBelowCycles(t *testing.T) {
	wc, _ := workload.SuiteConfig("parser")
	tr, err := trace.ReadAll(workload.MustNew(wc, 60_000))
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, tr, uarchBaselineForTest(), Options{})
	s := res.Stalls
	total := s.BranchResolve + s.Refill + s.ICacheMiss + s.ROBFull + s.IQFull + s.Other
	if total > res.Cycles {
		t.Errorf("stall cycles %d exceed total cycles %d", total, res.Cycles)
	}
	if total == 0 {
		t.Error("no stalls recorded on a realistic workload")
	}
}

func TestResultAccessorsZero(t *testing.T) {
	var r Result
	if r.IPC() != 0 || r.CPI() != 0 || r.AvgMispredictPenalty() != 0 {
		t.Error("zero result accessors should be 0")
	}
}

func TestPenaltyAccessorsDegenerate(t *testing.T) {
	r := MispredictRecord{DispatchCycle: 100}
	if r.Penalty() != 0 {
		t.Error("no-resume record should have zero penalty")
	}
	if r.ResolutionTime() != 0 {
		t.Error("unresolved record should have zero resolution")
	}
}

func uarchBaselineForTest() Config { return testConfig() }

func TestSampledSimulationApproximatesFullCPI(t *testing.T) {
	wc, _ := workload.SuiteConfig("crafty")
	mk := func() trace.Reader { return workload.MustNew(wc, 400_000) }
	cfg := testConfig()
	full, err := Run(mk(), cfg, Options{WarmupInsts: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Run(mk(), cfg, Options{
		WarmupInsts:    50_000,
		SampleDetailed: 20_000,
		SampleSkip:     60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sampled.Sampled {
		t.Fatal("sampled flag not set")
	}
	// Only ~1/4 of instructions are simulated in detail.
	if sampled.Insts >= full.Insts/2 {
		t.Fatalf("sampling did not reduce detailed instructions: %d vs %d", sampled.Insts, full.Insts)
	}
	relErr := (sampled.CPI() - full.CPI()) / full.CPI()
	if relErr < -0.15 || relErr > 0.15 {
		t.Errorf("sampled CPI %.3f vs full %.3f (err %.1f%%)", sampled.CPI(), full.CPI(), relErr*100)
	}
}

func TestSampledPredictorAndCachesStayWarm(t *testing.T) {
	// With functional warming, the sampled run's branch MPKI over detailed
	// phases must be close to the full run's — a cold predictor would show
	// a large excess.
	wc, _ := workload.SuiteConfig("gzip")
	mk := func() trace.Reader { return workload.MustNew(wc, 400_000) }
	cfg := testConfig()
	cfg.Pred = PredictorSpec{Kind: "gshare", Entries: 4096, HistBits: 10, BTBEntries: 1024}
	full, err := Run(mk(), cfg, Options{WarmupInsts: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Run(mk(), cfg, Options{
		WarmupInsts:    50_000,
		SampleDetailed: 20_000,
		SampleSkip:     60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	fullMPKI := float64(full.Mispredicts) / float64(full.Insts) * 1000
	sampMPKI := float64(sampled.Mispredicts) / float64(sampled.Insts) * 1000
	if sampMPKI > fullMPKI*1.6+2 {
		t.Errorf("sampled MPKI %.1f far above full %.1f: warming broken", sampMPKI, fullMPKI)
	}
}

func TestWrongPathFetchPollutesICache(t *testing.T) {
	// gcc-like code with a cold footprint: wrong-path fetch must touch
	// lines the correct path never reaches and change I-cache behaviour.
	wc, _ := workload.SuiteConfig("gcc")
	mk := func() trace.Reader { return workload.MustNew(wc, 150_000) }
	cfg := testConfig()
	cfg.Pred = PredictorSpec{Kind: "bimodal", Entries: 1024, BTBEntries: 512}
	off, err := Run(mk(), cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(mk(), cfg, Options{WrongPathFetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.WrongPathIMisses == 0 {
		t.Fatal("no wrong-path I-misses recorded")
	}
	if off.WrongPathIMisses != 0 {
		t.Fatal("wrong-path misses counted with the option off")
	}
	if on.Insts != off.Insts {
		t.Fatalf("wrong-path fetch changed committed count: %d vs %d", on.Insts, off.Insts)
	}
	// I-cache access counts must differ (the pollution/prefetch effect), and
	// both runs stay in a sane performance range.
	if on.Caches.L1I.Accesses == off.Caches.L1I.Accesses {
		t.Error("wrong-path fetch did not touch the I-cache")
	}
	ratio := on.CPI() / off.CPI()
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("wrong-path fetch moved CPI by %.2fx; model suspicious", ratio)
	}
}
