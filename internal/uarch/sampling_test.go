package uarch

import (
	"fmt"
	"testing"

	"intervalsim/internal/trace"
	"intervalsim/internal/workload"
)

// Sampling parameters of the statistical acceptance tests: 2k-instruction
// detailed phases every 10k instructions (20% detail fraction) after a 20k
// cold-start skip — 38 measurement units, enough for the Student-t interval
// to localize CPI while per-unit ROB ramp-in noise stays inside it.
const (
	ciTestInsts     = 400_000
	ciTestStartSkip = 20_000
	ciTestDetailed  = 2_000
	ciTestSkip      = 8_000
)

// samplingFamilies returns the fixed seed matrix of trace families the
// statistical tests run over: the named suite generators plus seeded random
// workloads. Everything is derived from constants, so the test is exactly
// reproducible — CI runs it as a deterministic gate, not a flake source.
func samplingFamilies(t *testing.T) map[string]workload.Config {
	t.Helper()
	fams := make(map[string]workload.Config)
	for _, name := range []string{"gzip", "mcf", "crafty", "vpr"} {
		wc, ok := workload.SuiteConfig(name)
		if !ok {
			t.Fatalf("unknown benchmark %s", name)
		}
		fams[name] = wc
	}
	for _, seed := range []uint64{0x1badb002, 0x2badf00d, 0x3defaced, 0x5eedcafe, 0x7ab1e5ea, 0x90bada55} {
		wc := randomWorkload(seed)
		if err := wc.Validate(); err != nil {
			// A seed outside the generator's bounds would be a permanent,
			// loud skip — the matrix above is chosen to be fully valid.
			t.Fatalf("seed %#x produced invalid workload: %v", seed, err)
		}
		fams[fmt.Sprintf("rand-%#x", seed)] = wc
	}
	return fams
}

// TestSampledCIStructure checks the statistical bookkeeping of one sampled
// run: the Result carries SampleStats with a plausible unit count and
// well-ordered intervals, and full runs carry none.
func TestSampledCIStructure(t *testing.T) {
	wc, _ := workload.SuiteConfig("gzip")
	tr, err := trace.ReadAll(workload.MustNew(wc, ciTestInsts))
	if err != nil {
		t.Fatal(err)
	}
	soa := trace.Pack(tr)

	full, err := Run(soa.Reader(), Baseline(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Sample != nil {
		t.Fatalf("full run carries SampleStats: %+v", full.Sample)
	}

	sampled, err := Run(soa.Reader(), Baseline(), Options{
		SampleStartSkip: ciTestStartSkip,
		SampleDetailed:  ciTestDetailed,
		SampleSkip:      ciTestSkip,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sampled.Sample
	if st == nil {
		t.Fatal("sampled run carries no SampleStats")
	}
	wantUnits := (ciTestInsts - ciTestStartSkip) / (ciTestDetailed + ciTestSkip)
	if st.Units < wantUnits-1 || st.Units > wantUnits+1 {
		t.Errorf("units = %d, want about %d", st.Units, wantUnits)
	}
	if st.Confidence != 0.95 {
		t.Errorf("confidence = %v, want 0.95", st.Confidence)
	}
	for name, iv := range map[string]Interval{
		"CPI": st.CPI, "MispredictsPKI": st.MispredictsPKI, "LongDMissesPKI": st.LongDMissesPKI,
	} {
		if !(iv.Lower <= iv.Mean && iv.Mean <= iv.Upper) {
			t.Errorf("%s interval out of order: %+v", name, iv)
		}
		if iv.RelErr < 0 {
			t.Errorf("%s RelErr negative: %+v", name, iv)
		}
	}
	if st.CPI.Mean <= 0 {
		t.Errorf("CPI mean = %v, want > 0", st.CPI.Mean)
	}
	// The interval is centered on the ratio estimator, which by construction
	// equals the aggregate detailed-phase CPI the Result reports (up to
	// trailing drain cycles that close after the last counted unit).
	if cpi := sampled.CPI(); st.CPI.Mean < 0.98*cpi || st.CPI.Mean > 1.02*cpi {
		t.Errorf("ratio-estimator CPI %.4f != aggregate sampled CPI %.4f", st.CPI.Mean, cpi)
	}
}

// TestSampledCICoversFullRun is the statistical acceptance gate for sampled
// simulation: across the fixed matrix of trace families, the sampled run's
// reported CPI confidence interval must cover the full-run CPI of the same
// trace. One miss is tolerated — a 95% interval over ten families is
// expected to miss occasionally, and the matrix is fixed precisely so the
// observed outcome never drifts between runs.
func TestSampledCICoversFullRun(t *testing.T) {
	cfg := Baseline()
	var misses []string
	fams := samplingFamilies(t)
	for name, wc := range fams {
		tr, err := trace.ReadAll(workload.MustNew(wc, ciTestInsts))
		if err != nil {
			t.Fatal(err)
		}
		soa := trace.Pack(tr)

		// The full-run reference excludes the same cold-start region the
		// sampled run skips, so the two estimate the same steady state.
		full, err := Run(soa.Reader(), cfg, Options{WarmupInsts: ciTestStartSkip})
		if err != nil {
			t.Fatal(err)
		}
		sampled, err := Run(soa.Reader(), cfg, Options{
			SampleStartSkip: ciTestStartSkip,
			SampleDetailed:  ciTestDetailed,
			SampleSkip:      ciTestSkip,
		})
		if err != nil {
			t.Fatal(err)
		}
		st := sampled.Sample
		if st == nil {
			t.Fatalf("%s: sampled run carries no SampleStats", name)
		}
		fullCPI := full.CPI()
		if !st.CPI.Covers(fullCPI) {
			misses = append(misses, fmt.Sprintf("%s: full CPI %.4f outside [%.4f, %.4f] (mean %.4f, %d units)",
				name, fullCPI, st.CPI.Lower, st.CPI.Upper, st.CPI.Mean, st.Units))
		}
		// Even a covering interval is useless if it is vacuously wide: the
		// sampled estimate must localize CPI to a usable precision.
		if st.CPI.RelErr > 0.25 {
			t.Errorf("%s: CPI relative error %.1f%% — interval too wide to be useful", name, 100*st.CPI.RelErr)
		}
	}
	if len(misses) > 1 {
		t.Errorf("CPI interval missed the full-run CPI in %d/%d families (tolerance 1):\n%s",
			len(misses), len(fams), joinLines(misses))
	} else if len(misses) == 1 {
		t.Logf("one tolerated interval miss (95%% confidence over %d families): %s", len(fams), misses[0])
	}
}

// TestSampledSoAMatchesGeneric pins the packed-trace functional
// fast-forward (skipFunctionalSoA, which reads only the columns each
// instruction class needs) against the generic streaming one: a sampled run
// must produce identical cycle counts, event counters, and confidence
// intervals whichever reader feeds it. Any divergence means the narrow SoA
// reads changed the warming access sequence.
func TestSampledSoAMatchesGeneric(t *testing.T) {
	opts := Options{
		SampleStartSkip: ciTestStartSkip,
		SampleDetailed:  ciTestDetailed,
		SampleSkip:      ciTestSkip,
	}
	for _, name := range []string{"gzip", "mcf", "crafty"} {
		wc, _ := workload.SuiteConfig(name)
		tr, err := trace.ReadAll(workload.MustNew(wc, 100_000))
		if err != nil {
			t.Fatal(err)
		}
		soa := trace.Pack(tr)
		fromSoA, err := Run(soa.Reader(), Baseline(), opts)
		if err != nil {
			t.Fatal(err)
		}
		fromGeneric, err := Run(tr.Reader(), Baseline(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if fromSoA.Cycles != fromGeneric.Cycles || fromSoA.Insts != fromGeneric.Insts ||
			fromSoA.Mispredicts != fromGeneric.Mispredicts ||
			fromSoA.ICacheMisses != fromGeneric.ICacheMisses ||
			fromSoA.LongDMisses != fromGeneric.LongDMisses {
			t.Errorf("%s: soa (cycles %d insts %d misp %d i$ %d longD %d) != generic (cycles %d insts %d misp %d i$ %d longD %d)",
				name,
				fromSoA.Cycles, fromSoA.Insts, fromSoA.Mispredicts, fromSoA.ICacheMisses, fromSoA.LongDMisses,
				fromGeneric.Cycles, fromGeneric.Insts, fromGeneric.Mispredicts, fromGeneric.ICacheMisses, fromGeneric.LongDMisses)
		}
		if fromSoA.Sample == nil || fromGeneric.Sample == nil {
			t.Fatalf("%s: missing SampleStats (soa %v, generic %v)", name, fromSoA.Sample, fromGeneric.Sample)
		}
		if *fromSoA.Sample != *fromGeneric.Sample {
			t.Errorf("%s: sampling stats diverge:\nsoa:     %+v\ngeneric: %+v", name, *fromSoA.Sample, *fromGeneric.Sample)
		}
	}
}

func joinLines(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += "\n"
		}
		out += "  " + x
	}
	return out
}
