package uarch

import (
	"context"
	"fmt"
	"io"

	"intervalsim/internal/bpred"
	"intervalsim/internal/cache"
	"intervalsim/internal/isa"
	"intervalsim/internal/trace"
)

// Run simulates the instruction stream from r on the processor described by
// cfg and returns the measured result. The same reader can only be consumed
// once; generators and decoders are cheap to recreate.
func Run(r trace.Reader, cfg Config, opts Options) (*Result, error) {
	return RunContext(context.Background(), r, cfg, opts)
}

// RunContext is Run with cancellation: the simulation polls ctx periodically
// and returns an ErrCanceled-wrapped error when it is done. Combined with the
// Options watchdog fields (MaxCycles, NoProgressCycles) this bounds every run:
// a pathological configuration returns ErrWatchdog or ErrCanceled instead of
// looping forever.
func RunContext(ctx context.Context, r trace.Reader, cfg Config, opts Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := newSimulator(r, cfg, opts)
	if err != nil {
		return nil, err
	}
	return s.run(ctx)
}

const noDep = int64(-1)

// robEntry is one in-flight instruction. Its sequence number equals its
// dynamic trace index, so slot = seq % ROBSize.
type robEntry struct {
	inst    isa.Inst
	dep1    int64 // producer sequence numbers, noDep if none
	dep2    int64
	depMem  int64 // youngest in-flight store to the same word (loads only)
	issueAt uint64
	doneAt  uint64
	issued  bool
	redirct bool // this is the pending mispredicted control instruction
}

// fqEntry is one instruction in the frontend pipe between fetch and dispatch.
type fqEntry struct {
	inst      isa.Inst
	readyAt   uint64 // earliest dispatch cycle (fetch cycle + frontend depth)
	mispredct bool
}

type simulator struct {
	cfg  Config
	opts Options
	pred *bpred.Unit
	mem  *cache.Hierarchy

	r      trace.Reader
	peeked *isa.Inst
	srcEOF bool

	cycle uint64

	// Reorder buffer: entries [head, tail), slot = seq % ROBSize.
	rob      []robEntry
	head     uint64
	tail     uint64
	unissued int // issue-queue occupancy

	regProducer [isa.NumRegs]int64
	storeProd   map[uint64]uint64 // word address → youngest pending store seq

	fus [numPools][]uint64 // per pool, per unit: first cycle it can accept

	fq    []fqEntry
	fqCap int

	fetchIdx      uint64 // trace index of the next instruction to fetch
	curFetchLine  uint64
	haveFetchLine bool
	fetchResumeAt uint64 // fetch blocked until this cycle (I-miss or redirect)
	awaitResolve  bool   // fetch blocked until the pending mispredict issues

	lastMissIdx   uint64 // trace index of the most recent miss event
	pendingResume int    // index into res.Records awaiting ResumeCycle; -1 none

	// Sampled simulation state: instructions left in the current phase.
	detailedPhase bool
	phaseLeft     uint64
	startSkipped  bool

	// Wrong-path fetch state (Options.WrongPathFetch).
	wrongActive bool
	wrongPC     uint64
	wrongLine   uint64
	haveWrong   bool

	committed      uint64
	lastCommitTick uint64
	warm           *warmSnapshot

	res *Result
}

func newSimulator(r trace.Reader, cfg Config, opts Options) (*simulator, error) {
	pred, err := cfg.Pred.Build()
	if err != nil {
		return nil, err
	}
	s := &simulator{
		cfg:           cfg,
		opts:          opts,
		pred:          pred,
		mem:           cache.NewHierarchy(cfg.Mem),
		r:             r,
		rob:           make([]robEntry, cfg.ROBSize),
		fqCap:         cfg.FetchWidth * (cfg.FrontendDepth + 2),
		pendingResume: -1,
		res:           &Result{Config: cfg},
	}
	for i := range s.regProducer {
		s.regProducer[i] = noDep
	}
	s.storeProd = make(map[uint64]uint64)
	pools := cfg.FU.pools()
	for p := range s.fus {
		s.fus[p] = make([]uint64, pools[p].Count)
	}
	if opts.TimelineCycles > 0 {
		s.res.Timeline = make([]uint8, 0, opts.TimelineCycles)
	}
	if opts.sampling() {
		s.detailedPhase = true
		s.phaseLeft = opts.SampleDetailed
	}
	if opts.fastForwarded() {
		s.res.Sampled = true
	}
	return s, nil
}

// peek returns the next trace instruction without consuming it, or false at
// end of trace (or the MaxInsts limit).
func (s *simulator) peek() (*isa.Inst, bool, error) {
	if s.opts.MaxInsts > 0 && s.fetchIdx >= s.opts.MaxInsts {
		return nil, false, nil
	}
	if s.peeked != nil {
		return s.peeked, true, nil
	}
	if s.srcEOF {
		return nil, false, nil
	}
	in, err := s.r.Next()
	if err == io.EOF {
		s.srcEOF = true
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	s.peeked = &in
	return s.peeked, true, nil
}

func (s *simulator) consume() {
	s.peeked = nil
	s.fetchIdx++
}

// ctxPollMask sets how often the simulation loop polls its context: every
// ctxPollMask+1 cycles, cheap enough to be invisible in profiles.
const ctxPollMask = 0x3ff

func (s *simulator) run(ctx context.Context) (*Result, error) {
	noProgress := s.opts.NoProgressCycles
	if noProgress == 0 {
		noProgress = 1_000_000
	}
	for {
		_, more, err := s.peek()
		if err != nil {
			return nil, err
		}
		if !more && len(s.fq) == 0 && s.head == s.tail {
			break
		}
		s.cycle++
		s.commit()
		s.issue()
		if err := s.dispatch(); err != nil {
			return nil, err
		}
		if err := s.fetch(); err != nil {
			return nil, err
		}
		if s.opts.MaxCycles > 0 && s.cycle >= s.opts.MaxCycles {
			return nil, fmt.Errorf("%w: %s: cycle budget %d exhausted (%d insts committed)",
				ErrWatchdog, s.cfg.Name, s.opts.MaxCycles, s.committed)
		}
		if s.cycle-s.lastCommitTick > noProgress {
			return nil, fmt.Errorf("%w: %s: no commit in %d cycles at cycle %d (likely a model deadlock)",
				ErrWatchdog, s.cfg.Name, noProgress, s.cycle)
		}
		if s.cycle&ctxPollMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("%w: %s: at cycle %d: %v", ErrCanceled, s.cfg.Name, s.cycle, err)
			}
		}
	}
	s.res.Insts = s.committed
	s.res.Cycles = s.cycle
	s.res.Bpred = s.pred.Stats
	s.res.Caches = CacheStats{L1I: s.mem.L1I.Stats, L1D: s.mem.L1D.Stats, L2: s.mem.L2.Stats}
	s.subtractWarmup()
	return s.res, nil
}

// subtractWarmup removes the pre-warmup epoch from every reported statistic.
func (s *simulator) subtractWarmup() {
	if s.opts.WarmupInsts == 0 || s.warm == nil {
		return
	}
	w := s.warm
	r := s.res
	r.Insts -= w.insts
	r.Cycles -= w.cycles
	r.Mispredicts -= w.mispredicts
	r.ICacheMisses -= w.icacheMisses
	r.LongDMisses -= w.longDMisses
	r.ShortDMisses -= w.shortDMisses
	r.LoadsExecuted -= w.loads
	r.Bpred.Branches -= w.bpred.Branches
	r.Bpred.Jumps -= w.bpred.Jumps
	r.Bpred.DirMispredict -= w.bpred.DirMispredict
	r.Bpred.BTBMispredict -= w.bpred.BTBMispredict
	r.Caches.L1I = subStats(r.Caches.L1I, w.caches.L1I)
	r.Caches.L1D = subStats(r.Caches.L1D, w.caches.L1D)
	r.Caches.L2 = subStats(r.Caches.L2, w.caches.L2)
	r.Stalls.BranchResolve -= w.stalls.BranchResolve
	r.Stalls.Refill -= w.stalls.Refill
	r.Stalls.ICacheMiss -= w.stalls.ICacheMiss
	r.Stalls.ROBFull -= w.stalls.ROBFull
	r.Stalls.IQFull -= w.stalls.IQFull
	r.Stalls.Other -= w.stalls.Other
	if w.events <= len(r.Events) {
		r.Events = r.Events[w.events:]
	}
	if w.records <= len(r.Records) {
		r.Records = r.Records[w.records:]
	}
}

// warmSnapshot freezes statistics at the warmup boundary.
type warmSnapshot struct {
	insts, cycles uint64
	mispredicts   uint64
	icacheMisses  uint64
	longDMisses   uint64
	shortDMisses  uint64
	loads         uint64
	bpred         bpred.Stats
	caches        CacheStats
	stalls        StallCycles
	events        int
	records       int
}

func (s *simulator) takeWarmSnapshot() {
	s.warm = &warmSnapshot{
		insts:        s.committed,
		cycles:       s.cycle,
		mispredicts:  s.res.Mispredicts,
		icacheMisses: s.res.ICacheMisses,
		longDMisses:  s.res.LongDMisses,
		shortDMisses: s.res.ShortDMisses,
		loads:        s.res.LoadsExecuted,
		bpred:        s.pred.Stats,
		caches:       CacheStats{L1I: s.mem.L1I.Stats, L1D: s.mem.L1D.Stats, L2: s.mem.L2.Stats},
		stalls:       s.res.Stalls,
		events:       len(s.res.Events),
		records:      len(s.res.Records),
	}
}

func subStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{Accesses: a.Accesses - b.Accesses, Misses: a.Misses - b.Misses}
}

func (s *simulator) commit() {
	n := 0
	for s.head < s.tail && n < s.cfg.CommitWidth {
		e := &s.rob[s.head%uint64(s.cfg.ROBSize)]
		if !e.issued || e.doneAt > s.cycle {
			break
		}
		if e.inst.Class == isa.Store {
			w := e.inst.Addr / 8
			if seq, ok := s.storeProd[w]; ok && seq == s.head {
				delete(s.storeProd, w)
			}
		}
		s.head++
		s.committed++
		s.lastCommitTick = s.cycle
		n++
		if s.opts.WarmupInsts > 0 && s.warm == nil && s.committed >= s.opts.WarmupInsts {
			s.takeWarmSnapshot()
		}
	}
}

// depReady reports whether the producer with sequence number dep has its
// result available at the current cycle.
func (s *simulator) depReady(dep int64) bool {
	if dep == noDep || uint64(dep) < s.head {
		return true // no dependence, or producer already committed
	}
	p := &s.rob[uint64(dep)%uint64(s.cfg.ROBSize)]
	return p.issued && p.doneAt <= s.cycle
}

func (s *simulator) issue() {
	issued := 0
	rob := uint64(s.cfg.ROBSize)
	for seq := s.head; seq < s.tail && issued < s.cfg.IssueWidth; seq++ {
		e := &s.rob[seq%rob]
		if e.issued {
			continue
		}
		if !s.depReady(e.dep1) || !s.depReady(e.dep2) || !s.depReady(e.depMem) {
			continue
		}
		pool := poolFor(e.inst.Class)
		unit := -1
		for u, freeAt := range s.fus[pool] {
			if freeAt <= s.cycle {
				unit = u
				break
			}
		}
		if unit < 0 {
			continue // structural hazard
		}
		lat := s.cfg.FU.OpLatency(e.inst.Class)
		switch e.inst.Class {
		case isa.Load:
			lvl, l := s.mem.Data(e.inst.Addr)
			lat = l
			s.res.LoadsExecuted++
			if s.opts.RecordLoadLevels {
				for uint64(len(s.res.LoadLevels)) <= seq {
					s.res.LoadLevels = append(s.res.LoadLevels, 0)
				}
				s.res.LoadLevels[seq] = uint8(lvl) + 1
			}
			switch lvl {
			case cache.ShortMiss:
				s.res.ShortDMisses++
			case cache.LongMiss:
				s.res.LongDMisses++
				s.event(EvLongDMiss, seq, lvl)
			}
		case isa.Store:
			s.mem.Data(e.inst.Addr) // allocate + stats; retires via store buffer
		}
		e.issueAt = s.cycle
		e.doneAt = s.cycle + uint64(lat)
		e.issued = true
		s.unissued--
		pools := s.cfg.FU.pools()
		if pools[pool].Pipelined {
			s.fus[pool][unit] = s.cycle + 1
		} else {
			s.fus[pool][unit] = e.doneAt
		}
		if e.redirct {
			// The mispredicted control instruction resolves: fetch restarts
			// down the correct path when it completes.
			s.awaitResolve = false
			s.fetchResumeAt = e.doneAt
			if s.pendingResume >= 0 && s.opts.RecordMispredicts {
				rec := &s.res.Records[s.pendingResume]
				rec.IssueCycle = s.cycle
				rec.ResolveCycle = e.doneAt
			}
		}
		issued++
	}
}

func (s *simulator) dispatch() error {
	n := 0
	rob := uint64(s.cfg.ROBSize)
	for n < s.cfg.DispatchWidth && len(s.fq) > 0 {
		f := &s.fq[0]
		if f.readyAt > s.cycle {
			if n == 0 {
				s.res.Stalls.Refill++
			}
			break
		}
		if s.tail-s.head >= rob {
			if n == 0 {
				s.res.Stalls.ROBFull++
			}
			break
		}
		if s.unissued >= s.cfg.IQSize {
			if n == 0 {
				s.res.Stalls.IQFull++
			}
			break
		}
		seq := s.tail
		e := &s.rob[seq%rob]
		*e = robEntry{inst: f.inst, dep1: noDep, dep2: noDep, depMem: noDep}
		if r := f.inst.Src1; r != isa.NoReg {
			e.dep1 = s.producerOf(r)
		}
		if r := f.inst.Src2; r != isa.NoReg {
			e.dep2 = s.producerOf(r)
		}
		switch f.inst.Class {
		case isa.Load:
			if p, ok := s.storeProd[f.inst.Addr/8]; ok {
				e.depMem = int64(p)
			}
		case isa.Store:
			s.storeProd[f.inst.Addr/8] = seq
		}
		if d := f.inst.Dst; d != isa.NoReg {
			s.regProducer[d] = int64(seq)
		}

		// Close out the previous misprediction's penalty window: the first
		// instruction dispatched after the mispredicted branch is the first
		// correct-path instruction past the redirect (it may itself be
		// another mispredicted branch).
		if s.pendingResume >= 0 {
			if s.opts.RecordMispredicts {
				s.res.Records[s.pendingResume].ResumeCycle = s.cycle
			}
			s.pendingResume = -1
		}

		if f.mispredct {
			e.redirct = true
			s.res.Mispredicts++
			s.event(EvBranchMispredict, seq, cache.L1Hit)
			if s.opts.RecordMispredicts {
				s.res.Records = append(s.res.Records, MispredictRecord{
					Index:         seq,
					OldestInROB:   s.head,
					Occupancy:     int(seq - s.head),
					SinceLastMiss: seq - minU64(s.lastMissIdx, seq),
					DispatchCycle: s.cycle,
				})
				s.pendingResume = len(s.res.Records) - 1
			} else {
				s.pendingResume = 0 // sentinel so the next dispatch clears it
			}
			s.lastMissIdx = seq
		}

		s.fq = s.fq[1:]
		if len(s.fq) == 0 {
			s.fq = nil // release the backing array periodically
		}
		s.tail++
		s.unissued++
		n++
	}
	if n == 0 && len(s.fq) == 0 {
		switch {
		case s.awaitResolve:
			s.res.Stalls.BranchResolve++
		case s.cycle < s.fetchResumeAt:
			s.res.Stalls.ICacheMiss++
		default:
			s.res.Stalls.Other++
		}
	}
	if s.opts.TimelineCycles > 0 && len(s.res.Timeline) < s.opts.TimelineCycles {
		s.res.Timeline = append(s.res.Timeline, uint8(n))
	}
	return nil
}

// producerOf returns the pending producer of register r, or noDep.
func (s *simulator) producerOf(r int8) int64 {
	p := s.regProducer[r]
	if p == noDep || uint64(p) < s.head {
		return noDep
	}
	return p
}

func (s *simulator) fetch() error {
	if s.awaitResolve || s.cycle < s.fetchResumeAt {
		if s.wrongActive {
			s.fetchWrongPath()
		}
		return nil
	}
	s.wrongActive = false
	if n := s.opts.SampleStartSkip; n > 0 && !s.startSkipped {
		// Initial fast-forward past the cold-start region.
		s.startSkipped = true
		if err := s.skipFunctional(n); err != nil {
			return err
		}
	}
	if s.opts.sampling() && !s.detailedPhase {
		// Fast-forward: warm the caches and predictor functionally, no
		// timing. The backend keeps draining the last detailed phase.
		if err := s.skipFunctional(s.opts.SampleSkip); err != nil {
			return err
		}
		s.detailedPhase = true
		s.phaseLeft = s.opts.SampleDetailed
	}
	lineMask := ^uint64(s.mem.LineSizeI() - 1)
	n := 0
	for n < s.cfg.FetchWidth && len(s.fq) < s.fqCap {
		in, ok, err := s.peek()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		line := in.PC & lineMask
		if !s.haveFetchLine || line != s.curFetchLine {
			lvl, lat := s.mem.Fetch(in.PC)
			s.curFetchLine = line
			s.haveFetchLine = true
			if lvl != cache.L1Hit {
				// The line is being filled; fetch resumes when it arrives.
				s.res.ICacheMisses++
				s.event(EvICacheMiss, s.fetchIdx, lvl)
				s.lastMissIdx = s.fetchIdx
				s.fetchResumeAt = s.cycle + uint64(lat)
				return nil
			}
		}
		inst := *in
		s.consume()
		if s.opts.sampling() {
			s.phaseLeft--
			if s.phaseLeft == 0 {
				s.detailedPhase = false
				s.phaseLeft = s.opts.SampleSkip
			}
		}
		entry := fqEntry{inst: inst, readyAt: s.cycle + uint64(s.cfg.FrontendDepth)}
		if inst.Class.IsControl() {
			if s.pred.Access(&inst) {
				entry.mispredct = true
				s.fq = append(s.fq, entry)
				// Wrong path ahead: no useful fetch until resolution.
				s.awaitResolve = true
				if s.opts.WrongPathFetch {
					s.wrongActive = true
					s.haveWrong = false
					if inst.Class == isa.Branch && !inst.Taken {
						// Predicted taken (or misfetched): the frontend went
						// to the branch target.
						s.wrongPC = inst.Target
					} else {
						// Predicted not-taken: the frontend fell through.
						s.wrongPC = inst.PC + 4
					}
				}
				return nil
			}
			s.fq = append(s.fq, entry)
			n++
			if inst.Taken || inst.Class == isa.Jump {
				// Fetch break: a taken transfer ends the fetch group.
				return nil
			}
			continue
		}
		s.fq = append(s.fq, entry)
		n++
	}
	return nil
}

// fetchWrongPath advances the frontend down the mispredicted path for one
// cycle, touching the I-cache hierarchy line by line. A wrong-path I-miss
// parks the wrong-path fetch (the redirect always arrives before a
// realistic frontend would chase it further).
func (s *simulator) fetchWrongPath() {
	lineBytes := uint64(s.mem.LineSizeI())
	lineMask := ^(lineBytes - 1)
	for i := 0; i < s.cfg.FetchWidth; i++ {
		line := s.wrongPC & lineMask
		if !s.haveWrong || line != s.wrongLine {
			s.wrongLine = line
			s.haveWrong = true
			switch s.mem.FetchWrongPath(s.wrongPC) {
			case cache.ShortMiss:
				s.res.WrongPathIMisses++
				return // the L2 fill occupies this fetch cycle
			case cache.LongMiss:
				s.res.WrongPathIMisses++
				s.wrongActive = false // abandoned until the redirect
				return
			}
		}
		s.wrongPC += 4
	}
}

// skipFunctional consumes the skip phase's instructions through the caches
// and the branch predictor only. It runs "instantly": no cycles elapse and
// nothing is dispatched, so the skipped instructions never appear in
// committed counts, events, or records.
func (s *simulator) skipFunctional(n uint64) error {
	lineMask := ^uint64(s.mem.LineSizeI() - 1)
	left := n
	for left > 0 {
		in, ok, err := s.peek()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if line := in.PC & lineMask; !s.haveFetchLine || line != s.curFetchLine {
			s.curFetchLine = line
			s.haveFetchLine = true
			s.mem.Fetch(in.PC)
		}
		switch {
		case in.Class.IsMem():
			s.mem.Data(in.Addr)
		case in.Class.IsControl():
			s.pred.Access(in)
		}
		s.consume()
		left--
	}
	return nil
}

func (s *simulator) event(kind EventKind, idx uint64, lvl cache.Level) {
	if kind != EvBranchMispredict && idx > s.lastMissIdx {
		// Track burstiness distance for non-branch events too.
		s.lastMissIdx = idx
	}
	if s.opts.RecordEvents {
		s.res.Events = append(s.res.Events, MissEvent{Kind: kind, Index: idx, Cycle: s.cycle, Level: lvl})
	}
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
