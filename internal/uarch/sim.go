package uarch

import (
	"context"
	"fmt"
	"io"

	"intervalsim/internal/bpred"
	"intervalsim/internal/cache"
	"intervalsim/internal/isa"
	"intervalsim/internal/overlay"
	"intervalsim/internal/trace"
	"intervalsim/internal/vpred"
)

// Run simulates the instruction stream from r on the processor described by
// cfg and returns the measured result. The same reader can only be consumed
// once; generators and decoders are cheap to recreate.
//
// When r is a *trace.SoAReader positioned at the start of its trace (from
// trace.Pack + SoA.Reader), the simulator switches to an index-based hot
// path over the struct-of-arrays trace: no per-instruction interface calls,
// and — for unsampled runs — operand and memory dependences come from the
// metadata precomputed at pack time instead of being rediscovered per run.
// Results are identical on both paths (see TestRunPathsIdentical); only the
// speed differs.
func Run(r trace.Reader, cfg Config, opts Options) (*Result, error) {
	return RunContext(context.Background(), r, cfg, opts)
}

// RunContext is Run with cancellation: the simulation polls ctx periodically
// and returns an ErrCanceled-wrapped error when it is done. Combined with the
// Options watchdog fields (MaxCycles, NoProgressCycles) this bounds every run:
// a pathological configuration returns ErrWatchdog or ErrCanceled instead of
// looping forever.
func RunContext(ctx context.Context, r trace.Reader, cfg Config, opts Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := newSimulator(r, cfg, opts)
	if err != nil {
		return nil, err
	}
	return s.run(ctx)
}

const noDep = int64(-1)

// robEntry is one in-flight instruction. Its sequence number equals its
// dynamic trace index (dispatch order under sampling), so slot = seq %
// ROBSize. The entry carries only what the backend stages touch — deps,
// completion time, class, and address — so a slot stays within one cache
// line instead of dragging the full 40-byte isa.Inst through the scheduler.
type robEntry struct {
	dep1   int64 // producer sequence numbers, noDep if none
	dep2   int64
	depMem int64  // youngest in-flight store to the same word (loads only)
	seq    uint64 // sequence number (= trace index when not sampling)
	doneAt uint64
	addr   uint64 // effective address for loads/stores
	class  isa.Class
	issued bool
	redirct bool // this is the pending mispredicted control instruction
	vpredOK bool // result correctly value-predicted: dependents need not wait
	vflush  bool // confident-wrong value prediction: flush when this issues
	lowConf bool // low-confidence branch throttling fetch until it issues
}

// fqEntry is one instruction in the frontend pipe between fetch and
// dispatch, reduced to the fields rename/dispatch reads.
type fqEntry struct {
	idx       uint64 // trace index (for precomputed dependence lookups)
	addr      uint64
	readyAt   uint64 // earliest dispatch cycle (fetch cycle + frontend depth)
	src1      int8
	src2      int8
	dst       int8
	class     isa.Class
	mispredct bool
	vpredHit  bool // confident-correct value prediction
	vpredMiss bool // confident-wrong value prediction (flush at resolve)
	lowConf   bool // low-confidence branch (variable fetch rate)
}

// counters batches the per-event statistics out of the inner loop: they live
// in the simulator (one cache-resident struct touched millions of times) and
// are flushed to the Result once at the end of the run.
type counters struct {
	mispredicts      uint64
	icacheMisses     uint64
	wrongPathIMisses uint64
	longDMisses      uint64
	shortDMisses     uint64
	loadsExecuted    uint64
	valuePredHits    uint64
	valueMisspecs    uint64
	stalls           StallCycles
}

type simulator struct {
	cfg  Config
	opts Options
	pred *bpred.Unit
	mem  *cache.Hierarchy

	// Instruction source. soa is the index-based fast path (src position is
	// fetchIdx); r is the generic streaming path. Exactly one is active.
	soa      *trace.SoA
	r        trace.Reader
	peeked   isa.Inst
	havePeek bool
	srcEOF   bool

	// preDeps: dependence metadata comes from the packed trace (soa.Dep*),
	// valid only when sequence numbers equal trace indices (no sampling).
	preDeps bool

	// Replay mode (Options.Overlay, validated in newSimulator): branch
	// prediction outcomes and L1I hit/miss classes come from ov instead of
	// live pred/L1I lookups. rb and rcL1I mirror the counters the live
	// structures would have accumulated — incremented at the identical
	// pipeline points, so warmup snapshots subtract identically — and stand
	// in for pred.Stats / mem.L1I.Stats in the Result. replayLimit is the
	// trace length capped by MaxInsts.
	ov          *overlay.Overlay
	replayLimit uint64
	rb          bpred.Stats
	rcL1I       cache.Stats

	cycle uint64

	// Reorder buffer: a preallocated ring of entries [head, tail) with
	// slot = seq % ROBSize. headSlot/tailSlot track the slots of head and
	// tail incrementally so the hot path never divides.
	rob      []robEntry
	head     uint64
	tail     uint64
	headSlot int32
	tailSlot int32
	robSize  int32
	unissued int // issue-queue occupancy

	// Unissued entries as a singly linked list of ROB slots in sequence
	// order: issue visits exactly the instructions still waiting instead of
	// rescanning the whole window every cycle.
	unissuedHead int32
	unissuedTail int32
	unissuedNext []int32

	// Live dependence tracking (generic path only; the SoA path reads the
	// metadata precomputed at pack time).
	regProducer [isa.NumRegs]int64
	storeProd   map[uint64]uint64 // word address → youngest pending store seq

	fus [numPools][]uint64 // per pool, per unit: first cycle it can accept

	// Per-class execution latency and pool index, resolved from the config
	// once so the issue loop is pure table lookups.
	latByClass  [isa.NumClasses]uint64
	poolByClass [isa.NumClasses]uint8
	pipelined   [numPools]bool

	// Frontend queue: a preallocated ring of fqCap entries.
	fq     []fqEntry
	fqHead int32
	fqLen  int32

	fetchIdx      uint64 // trace index of the next instruction to fetch
	lineMask      uint64 // I-cache line mask, hoisted out of fetch
	curFetchLine  uint64
	haveFetchLine bool
	fetchResumeAt uint64 // fetch blocked until this cycle (I-miss or redirect)
	awaitResolve  bool   // fetch blocked until the pending mispredict issues

	// Value prediction (Config.VPred): the live runner drives the stream and
	// tables at fetch in program order; nil in replay mode, where outcomes
	// come from the overlay's bits 6/7 instead.
	vrun *vpred.Runner

	// Variable fetch rate (Config.FetchRate in (0,1)): a JRS-style
	// confidence estimator classifies each conditional branch at fetch, and
	// while any low-confidence branch is in flight the frontend fetches at
	// throttledWidth instead of FetchWidth. Both nil/zero when disabled.
	conf           *confEstimator
	throttledWidth int
	lowConfOut     int // low-confidence branches fetched but not yet issued

	lastMissIdx   uint64 // trace index of the most recent miss event
	pendingResume int    // index into res.Records awaiting ResumeCycle; -1 none

	// Sampled simulation state: instructions left in the current phase.
	detailedPhase bool
	phaseLeft     uint64
	startSkipped  bool

	// Wrong-path fetch state (Options.WrongPathFetch).
	wrongActive bool
	wrongPC     uint64
	wrongLine   uint64
	haveWrong   bool

	committed      uint64
	lastCommitTick uint64
	warm           *warmSnapshot

	// Run-loop parameters resolved once by initRun so step() stays branchless
	// on Options defaults.
	noProgress uint64

	// Sampling measurement units: one entry per completed detailed phase,
	// recorded at the detailed→skip boundary. unitBase holds the statistics
	// snapshot at the previous boundary, so each unit is a clean delta.
	units    []sampleUnit
	unitBase sampleUnit

	c   counters
	res *Result
}

// sampleUnit is the statistics delta covered by one detailed sampling phase.
// When used as unitBase it holds absolute snapshots instead of deltas.
type sampleUnit struct {
	insts       uint64
	cycles      uint64
	mispredicts uint64
	longDMisses uint64
}

func newSimulator(r trace.Reader, cfg Config, opts Options) (*simulator, error) {
	pred, err := cfg.Pred.Build()
	if err != nil {
		return nil, err
	}
	fqCap := cfg.FetchWidth * (cfg.FrontendDepth + 2)
	s := &simulator{
		cfg:           cfg,
		opts:          opts,
		pred:          pred,
		mem:           cache.NewHierarchy(cfg.Mem),
		r:             r,
		rob:           make([]robEntry, cfg.ROBSize),
		robSize:       int32(cfg.ROBSize),
		unissuedHead:  -1,
		unissuedTail:  -1,
		unissuedNext:  make([]int32, cfg.ROBSize),
		fq:            make([]fqEntry, fqCap),
		pendingResume: -1,
		res:           &Result{Config: cfg},
	}
	s.lineMask = ^uint64(s.mem.LineSizeI() - 1)
	if sr, ok := r.(*trace.SoAReader); ok {
		if sr.Pos() == 0 {
			// Index-based fast path over the packed trace. Precomputed
			// dependences require sequence numbers to equal trace indices,
			// which sampling breaks (skipped instructions never get a seq).
			s.soa = sr.SoA()
			s.r = nil
			s.preDeps = !opts.fastForwarded()
			if !s.preDeps {
				s.noteFallback("sampled run: precomputed dependences bypassed (live tracking)")
			}
		} else {
			s.noteFallback("packed reader not at trace start: generic path")
		}
	}
	if ov := opts.Overlay; ov != nil {
		// Replay only when the overlay provably applies; otherwise fall back
		// to live simulation and say why.
		switch {
		case s.soa == nil:
			s.noteFallback("overlay ignored: reader is not a packed trace at position 0")
		case !s.preDeps:
			s.noteFallback("overlay ignored: sampled/fast-forwarded run")
		case opts.WrongPathFetch:
			s.noteFallback("overlay ignored: wrong-path fetch needs live L1I state")
		case ov.Trace != s.soa:
			s.noteFallback("overlay ignored: computed for a different trace")
		case ov.PredFP != cfg.Pred.Fingerprint() || ov.MemFP != cfg.Mem.Fingerprint():
			s.noteFallback("overlay ignored: predictor/cache-geometry fingerprint mismatch")
		case ov.VPredFP != vpredFingerprint(cfg.VPred):
			s.noteFallback("overlay ignored: value-predictor fingerprint mismatch")
		default:
			s.ov = ov
			s.replayLimit = uint64(s.soa.Len())
			if opts.MaxInsts > 0 && opts.MaxInsts < s.replayLimit {
				s.replayLimit = opts.MaxInsts
			}
		}
	}
	switch {
	case s.ov != nil:
		s.res.Path = "soa+overlay"
	case s.soa != nil:
		s.res.Path = "soa"
	default:
		s.res.Path = "generic"
	}
	if cfg.VPred != nil && s.ov == nil {
		// Live value prediction; in replay mode the outcomes come from the
		// overlay bits and the runner is never built.
		vr, err := vpred.NewRunner(*cfg.VPred)
		if err != nil {
			return nil, err
		}
		s.vrun = vr
	}
	if fr := cfg.FetchRate; fr > 0 && fr < 1 {
		s.conf = newConfEstimator()
		w := int(fr*float64(cfg.FetchWidth) + 0.5)
		if w < 1 {
			w = 1
		}
		s.throttledWidth = w
	}
	if !s.preDeps {
		for i := range s.regProducer {
			s.regProducer[i] = noDep
		}
		s.storeProd = make(map[uint64]uint64)
	}
	pools := cfg.FU.pools()
	for p := range s.fus {
		s.fus[p] = make([]uint64, pools[p].Count)
		s.pipelined[p] = pools[p].Pipelined
	}
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		s.latByClass[c] = uint64(cfg.FU.OpLatency(c))
		s.poolByClass[c] = uint8(poolFor(c))
	}
	if opts.TimelineCycles > 0 {
		s.res.Timeline = make([]uint8, 0, opts.TimelineCycles)
	}
	if opts.RecordLoadLevels && s.soa != nil {
		// Capacity only: length still grows exactly as on the generic path.
		s.res.LoadLevels = make([]uint8, 0, s.soa.Len())
	}
	if opts.sampling() {
		s.detailedPhase = true
		s.phaseLeft = opts.SampleDetailed
	}
	if opts.fastForwarded() {
		s.res.Sampled = true
	}
	return s, nil
}

// peek returns the next trace instruction without consuming it, or false at
// end of trace (or the MaxInsts limit). The peeked instruction is cached by
// value in the simulator, so nothing escapes to the heap.
func (s *simulator) peek() (*isa.Inst, bool, error) {
	if s.opts.MaxInsts > 0 && s.fetchIdx >= s.opts.MaxInsts {
		return nil, false, nil
	}
	if s.havePeek {
		return &s.peeked, true, nil
	}
	if s.soa != nil {
		if s.fetchIdx >= uint64(s.soa.Len()) {
			return nil, false, nil
		}
		s.soa.InstAt(int(s.fetchIdx), &s.peeked)
		s.havePeek = true
		return &s.peeked, true, nil
	}
	if s.srcEOF {
		return nil, false, nil
	}
	in, err := s.r.Next()
	if err == io.EOF {
		s.srcEOF = true
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	s.peeked = in
	s.havePeek = true
	return &s.peeked, true, nil
}

func (s *simulator) consume() {
	s.havePeek = false
	s.fetchIdx++
}

// noteFallback appends one bypassed-fast-path reason to the Result.
func (s *simulator) noteFallback(reason string) {
	if s.res.Fallback != "" {
		s.res.Fallback += "; "
	}
	s.res.Fallback += reason
}

// moreInsts reports whether the trace has instructions left to fetch. The
// replay path answers from the index bound alone; the other paths peek.
func (s *simulator) moreInsts() (bool, error) {
	if s.ov != nil {
		return s.fetchIdx < s.replayLimit, nil
	}
	_, more, err := s.peek()
	return more, err
}

// bpredStats returns the prediction counters of the run: the replayed ones
// in overlay mode (the live unit is never consulted there), the unit's
// otherwise.
func (s *simulator) bpredStats() bpred.Stats {
	if s.ov != nil {
		return s.rb
	}
	return s.pred.Stats
}

// cacheStats returns the hierarchy counters of the run; in overlay mode the
// L1I counters are the replayed ones (L1D and L2 are always live).
func (s *simulator) cacheStats() CacheStats {
	l1i := s.mem.L1I.Stats
	if s.ov != nil {
		l1i = s.rcL1I
	}
	return CacheStats{L1I: l1i, L1D: s.mem.L1D.Stats, L2: s.mem.L2.Stats}
}

// ctxPollMask sets how often the simulation loop polls its context: every
// ctxPollMask+1 cycles, cheap enough to be invisible in profiles.
const ctxPollMask = 0x3ff

func (s *simulator) run(ctx context.Context) (*Result, error) {
	s.initRun()
	for {
		done, err := s.step(ctx)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	return s.finalize(), nil
}

// initRun resolves the run-loop parameters Options leaves defaulted. It must
// be called once before the first step.
func (s *simulator) initRun() {
	s.noProgress = s.opts.NoProgressCycles
	if s.noProgress == 0 {
		s.noProgress = 1_000_000
	}
}

// step advances the simulation by exactly one cycle (commit → issue →
// dispatch → fetch, with the watchdog and cancellation checks of a full run)
// and reports whether the run is complete. It is the unit the lockstep
// driver interleaves: because a simulator's transition function reads only
// its own state, any interleaving of step calls across simulators produces
// the same per-simulator results as running each to completion serially.
func (s *simulator) step(ctx context.Context) (bool, error) {
	more, err := s.moreInsts()
	if err != nil {
		return false, err
	}
	if !more && s.fqLen == 0 && s.head == s.tail {
		return true, nil
	}
	s.cycle++
	s.commit()
	s.issue()
	s.dispatch()
	if err := s.fetch(); err != nil {
		return false, err
	}
	if s.opts.MaxCycles > 0 && s.cycle >= s.opts.MaxCycles {
		return false, fmt.Errorf("%w: %s: cycle budget %d exhausted (%d insts committed)",
			ErrWatchdog, s.cfg.Name, s.opts.MaxCycles, s.committed)
	}
	if s.cycle-s.lastCommitTick > s.noProgress {
		return false, fmt.Errorf("%w: %s: no commit in %d cycles at cycle %d (likely a model deadlock)",
			ErrWatchdog, s.cfg.Name, s.noProgress, s.cycle)
	}
	if s.cycle&ctxPollMask == 0 {
		if err := ctx.Err(); err != nil {
			return false, fmt.Errorf("%w: %s: at cycle %d: %v", ErrCanceled, s.cfg.Name, s.cycle, err)
		}
	}
	return false, nil
}

// finalize assembles the Result after the last step reported completion.
func (s *simulator) finalize() *Result {
	s.res.Insts = s.committed
	s.res.Cycles = s.cycle
	s.flushCounters()
	s.res.Bpred = s.bpredStats()
	s.res.Caches = s.cacheStats()
	s.subtractWarmup()
	s.finishSampling()
	return s.res
}

// flushCounters moves the batched statistics into the Result.
func (s *simulator) flushCounters() {
	s.res.Mispredicts = s.c.mispredicts
	s.res.ICacheMisses = s.c.icacheMisses
	s.res.WrongPathIMisses = s.c.wrongPathIMisses
	s.res.LongDMisses = s.c.longDMisses
	s.res.ShortDMisses = s.c.shortDMisses
	s.res.LoadsExecuted = s.c.loadsExecuted
	s.res.ValuePredHits = s.c.valuePredHits
	s.res.ValueMisspecs = s.c.valueMisspecs
	s.res.Stalls = s.c.stalls
}

// subtractWarmup removes the pre-warmup epoch from every reported statistic.
func (s *simulator) subtractWarmup() {
	if s.opts.WarmupInsts == 0 || s.warm == nil {
		return
	}
	w := s.warm
	r := s.res
	r.Insts -= w.insts
	r.Cycles -= w.cycles
	r.Mispredicts -= w.mispredicts
	r.ICacheMisses -= w.icacheMisses
	r.LongDMisses -= w.longDMisses
	r.ShortDMisses -= w.shortDMisses
	r.LoadsExecuted -= w.loads
	r.ValuePredHits -= w.valuePredHits
	r.ValueMisspecs -= w.valueMisspecs
	r.Bpred.Branches -= w.bpred.Branches
	r.Bpred.Jumps -= w.bpred.Jumps
	r.Bpred.DirMispredict -= w.bpred.DirMispredict
	r.Bpred.BTBMispredict -= w.bpred.BTBMispredict
	r.Caches.L1I = subStats(r.Caches.L1I, w.caches.L1I)
	r.Caches.L1D = subStats(r.Caches.L1D, w.caches.L1D)
	r.Caches.L2 = subStats(r.Caches.L2, w.caches.L2)
	r.Stalls.BranchResolve -= w.stalls.BranchResolve
	r.Stalls.Refill -= w.stalls.Refill
	r.Stalls.ICacheMiss -= w.stalls.ICacheMiss
	r.Stalls.ROBFull -= w.stalls.ROBFull
	r.Stalls.IQFull -= w.stalls.IQFull
	r.Stalls.Other -= w.stalls.Other
	if w.events <= len(r.Events) {
		r.Events = r.Events[w.events:]
	}
	if w.records <= len(r.Records) {
		r.Records = r.Records[w.records:]
	}
}

// warmSnapshot freezes statistics at the warmup boundary.
type warmSnapshot struct {
	insts, cycles uint64
	mispredicts   uint64
	icacheMisses  uint64
	longDMisses   uint64
	shortDMisses  uint64
	loads         uint64
	valuePredHits uint64
	valueMisspecs uint64
	bpred         bpred.Stats
	caches        CacheStats
	stalls        StallCycles
	events        int
	records       int
}

func (s *simulator) takeWarmSnapshot() {
	s.warm = &warmSnapshot{
		insts:         s.committed,
		cycles:        s.cycle,
		mispredicts:   s.c.mispredicts,
		icacheMisses:  s.c.icacheMisses,
		longDMisses:   s.c.longDMisses,
		shortDMisses:  s.c.shortDMisses,
		loads:         s.c.loadsExecuted,
		valuePredHits: s.c.valuePredHits,
		valueMisspecs: s.c.valueMisspecs,
		bpred:         s.bpredStats(),
		caches:        s.cacheStats(),
		stalls:        s.c.stalls,
		events:        len(s.res.Events),
		records:       len(s.res.Records),
	}
}

func subStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{Accesses: a.Accesses - b.Accesses, Misses: a.Misses - b.Misses}
}

func (s *simulator) commit() {
	n := 0
	for s.head < s.tail && n < s.cfg.CommitWidth {
		e := &s.rob[s.headSlot]
		if !e.issued || e.doneAt > s.cycle {
			break
		}
		if !s.preDeps && e.class == isa.Store {
			w := e.addr / 8
			if seq, ok := s.storeProd[w]; ok && seq == s.head {
				delete(s.storeProd, w)
			}
		}
		s.head++
		if s.headSlot++; s.headSlot == s.robSize {
			s.headSlot = 0
		}
		s.committed++
		s.lastCommitTick = s.cycle
		n++
		if s.opts.WarmupInsts > 0 && s.warm == nil && s.committed >= s.opts.WarmupInsts {
			s.takeWarmSnapshot()
		}
	}
}

// depReady reports whether the producer with sequence number dep has its
// result available at the current cycle.
func (s *simulator) depReady(dep int64) bool {
	if dep < 0 || uint64(dep) < s.head {
		return true // no dependence, or producer already committed
	}
	// In-flight producers sit within ROBSize of head: derive the slot from
	// the head slot without dividing.
	slot := s.headSlot + int32(uint64(dep)-s.head)
	if slot >= s.robSize {
		slot -= s.robSize
	}
	e := &s.rob[slot]
	if e.vpredOK {
		// Correctly value-predicted producer: its result was available at
		// dispatch, so consumers never wait on it.
		return true
	}
	return e.issued && e.doneAt <= s.cycle
}

func (s *simulator) issue() {
	issued := 0
	prev := int32(-1)
	for slot := s.unissuedHead; slot >= 0 && issued < s.cfg.IssueWidth; {
		e := &s.rob[slot]
		next := s.unissuedNext[slot]
		// A ready producer stays ready, so a satisfied dependence is cleared
		// in place: entries blocked on one long-pole producer stop
		// re-checking the others every cycle.
		if e.dep1 >= 0 {
			if !s.depReady(e.dep1) {
				prev, slot = slot, next
				continue
			}
			e.dep1 = noDep
		}
		if e.dep2 >= 0 {
			if !s.depReady(e.dep2) {
				prev, slot = slot, next
				continue
			}
			e.dep2 = noDep
		}
		if e.depMem >= 0 {
			if !s.depReady(e.depMem) {
				prev, slot = slot, next
				continue
			}
			e.depMem = noDep
		}
		pool := s.poolByClass[e.class]
		unit := -1
		for u, freeAt := range s.fus[pool] {
			if freeAt <= s.cycle {
				unit = u
				break
			}
		}
		if unit < 0 {
			prev, slot = slot, next
			continue // structural hazard
		}
		lat := s.latByClass[e.class]
		switch e.class {
		case isa.Load:
			lvl, l := s.mem.Data(e.addr)
			lat = uint64(l)
			s.c.loadsExecuted++
			if s.opts.RecordLoadLevels {
				for uint64(len(s.res.LoadLevels)) <= e.seq {
					s.res.LoadLevels = append(s.res.LoadLevels, 0)
				}
				s.res.LoadLevels[e.seq] = uint8(lvl) + 1
			}
			switch lvl {
			case cache.ShortMiss:
				s.c.shortDMisses++
			case cache.LongMiss:
				s.c.longDMisses++
				s.event(EvLongDMiss, e.seq, lvl)
			}
		case isa.Store:
			s.mem.Data(e.addr) // allocate + stats; retires via store buffer
		}
		e.doneAt = s.cycle + lat
		e.issued = true
		s.unissued--
		if s.pipelined[pool] {
			s.fus[pool][unit] = s.cycle + 1
		} else {
			s.fus[pool][unit] = e.doneAt
		}
		if e.redirct || e.vflush {
			// The mispredicted control instruction — or the value-
			// misspeculated producer — resolves: fetch restarts down the
			// correct path when it completes. Value flushes never touch the
			// pending MispredictRecord; that bookkeeping belongs to the last
			// branch alone.
			s.awaitResolve = false
			s.fetchResumeAt = e.doneAt
			if e.redirct && s.pendingResume >= 0 && s.opts.RecordMispredicts {
				rec := &s.res.Records[s.pendingResume]
				rec.IssueCycle = s.cycle
				rec.ResolveCycle = e.doneAt
			}
		}
		if e.lowConf {
			s.lowConfOut--
		}
		issued++
		// Unlink the issued entry; prev stays put.
		if prev >= 0 {
			s.unissuedNext[prev] = next
		} else {
			s.unissuedHead = next
		}
		if next < 0 {
			s.unissuedTail = prev
		}
		slot = next
	}
}

func (s *simulator) dispatch() {
	n := 0
	rob := uint64(s.cfg.ROBSize)
	for n < s.cfg.DispatchWidth && s.fqLen > 0 {
		f := &s.fq[s.fqHead]
		if f.readyAt > s.cycle {
			if n == 0 {
				s.c.stalls.Refill++
			}
			break
		}
		if s.tail-s.head >= rob {
			if n == 0 {
				s.c.stalls.ROBFull++
			}
			break
		}
		if s.unissued >= s.cfg.IQSize {
			if n == 0 {
				s.c.stalls.IQFull++
			}
			break
		}
		seq := s.tail
		slot := s.tailSlot
		e := &s.rob[slot]
		*e = robEntry{seq: seq, addr: f.addr, class: f.class, dep1: noDep, dep2: noDep, depMem: noDep}
		if s.preDeps {
			// Dependence metadata was computed once at pack time; sequence
			// numbers equal trace indices here, so the indices line up.
			e.dep1 = int64(s.soa.Dep1[f.idx])
			e.dep2 = int64(s.soa.Dep2[f.idx])
			e.depMem = int64(s.soa.DepMem[f.idx])
		} else {
			if r := f.src1; r != isa.NoReg {
				e.dep1 = s.producerOf(r)
			}
			if r := f.src2; r != isa.NoReg {
				e.dep2 = s.producerOf(r)
			}
			switch f.class {
			case isa.Load:
				if p, ok := s.storeProd[f.addr/8]; ok {
					e.depMem = int64(p)
				}
			case isa.Store:
				s.storeProd[f.addr/8] = seq
			}
			if d := f.dst; d != isa.NoReg {
				s.regProducer[d] = int64(seq)
			}
		}

		// Close out the previous misprediction's penalty window: the first
		// instruction dispatched after the mispredicted branch is the first
		// correct-path instruction past the redirect (it may itself be
		// another mispredicted branch).
		if s.pendingResume >= 0 {
			if s.opts.RecordMispredicts {
				s.res.Records[s.pendingResume].ResumeCycle = s.cycle
			}
			s.pendingResume = -1
		}

		if f.mispredct {
			e.redirct = true
			s.c.mispredicts++
			s.event(EvBranchMispredict, seq, cache.L1Hit)
			if s.opts.RecordMispredicts {
				s.res.Records = append(s.res.Records, MispredictRecord{
					Index:         seq,
					OldestInROB:   s.head,
					Occupancy:     int(seq - s.head),
					SinceLastMiss: seq - minU64(s.lastMissIdx, seq),
					DispatchCycle: s.cycle,
				})
				s.pendingResume = len(s.res.Records) - 1
			} else {
				s.pendingResume = 0 // sentinel so the next dispatch clears it
			}
			s.lastMissIdx = seq
		}
		if f.vpredHit {
			e.vpredOK = true
			s.c.valuePredHits++
		}
		if f.vpredMiss {
			// Confident-wrong value prediction: the flush is charged when the
			// misspeculated producer resolves (issue sets fetchResumeAt), the
			// same shape as a branch redirect but with no MispredictRecord —
			// that stream stays branches-only for the decomposition.
			e.vflush = true
			s.c.valueMisspecs++
			s.event(EvValueMisspec, seq, cache.L1Hit)
			s.lastMissIdx = seq
		}
		if f.lowConf {
			e.lowConf = true
		}

		if s.fqHead++; s.fqHead == int32(len(s.fq)) {
			s.fqHead = 0
		}
		s.fqLen--
		s.tail++
		if s.tailSlot++; s.tailSlot == s.robSize {
			s.tailSlot = 0
		}
		s.unissued++
		// Append to the unissued list (slots arrive in sequence order).
		s.unissuedNext[slot] = -1
		if s.unissuedTail >= 0 {
			s.unissuedNext[s.unissuedTail] = slot
		} else {
			s.unissuedHead = slot
		}
		s.unissuedTail = slot
		n++
	}
	if n == 0 && s.fqLen == 0 {
		switch {
		case s.awaitResolve:
			s.c.stalls.BranchResolve++
		case s.cycle < s.fetchResumeAt:
			s.c.stalls.ICacheMiss++
		default:
			s.c.stalls.Other++
		}
	}
	if s.opts.TimelineCycles > 0 && len(s.res.Timeline) < s.opts.TimelineCycles {
		s.res.Timeline = append(s.res.Timeline, uint8(n))
	}
}

// producerOf returns the pending producer of register r, or noDep.
func (s *simulator) producerOf(r int8) int64 {
	p := s.regProducer[r]
	if p == noDep || uint64(p) < s.head {
		return noDep
	}
	return p
}

func (s *simulator) fetch() error {
	if s.ov != nil {
		return s.fetchReplay()
	}
	if s.awaitResolve || s.cycle < s.fetchResumeAt {
		if s.wrongActive {
			s.fetchWrongPath()
		}
		return nil
	}
	s.wrongActive = false
	if n := s.opts.SampleStartSkip; n > 0 && !s.startSkipped {
		// Initial fast-forward past the cold-start region.
		s.startSkipped = true
		if err := s.skipFunctional(n); err != nil {
			return err
		}
	}
	if s.opts.sampling() && !s.detailedPhase {
		// Fast-forward: warm the caches and predictor functionally, no
		// timing. The backend keeps draining the last detailed phase.
		if err := s.skipFunctional(s.opts.SampleSkip); err != nil {
			return err
		}
		s.detailedPhase = true
		s.phaseLeft = s.opts.SampleDetailed
	}
	fqCap := int32(len(s.fq))
	n := 0
	for n < s.fetchWidth() && s.fqLen < fqCap {
		in, ok, err := s.peek()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		line := in.PC & s.lineMask
		if !s.haveFetchLine || line != s.curFetchLine {
			lvl, lat := s.mem.Fetch(in.PC)
			s.curFetchLine = line
			s.haveFetchLine = true
			if lvl != cache.L1Hit {
				// The line is being filled; fetch resumes when it arrives.
				s.c.icacheMisses++
				s.event(EvICacheMiss, s.fetchIdx, lvl)
				s.lastMissIdx = s.fetchIdx
				s.fetchResumeAt = s.cycle + uint64(lat)
				return nil
			}
		}
		inst := *in
		idx := s.fetchIdx
		s.consume()
		if s.opts.sampling() {
			s.phaseLeft--
			if s.phaseLeft == 0 {
				s.detailedPhase = false
				s.phaseLeft = s.opts.SampleSkip
				s.markUnitBoundary()
			}
		}
		entry := fqEntry{
			idx:     idx,
			addr:    inst.Addr,
			readyAt: s.cycle + uint64(s.cfg.FrontendDepth),
			src1:    inst.Src1,
			src2:    inst.Src2,
			dst:     inst.Dst,
			class:   inst.Class,
		}
		if inst.Class.IsControl() {
			mis := s.pred.Access(&inst)
			if s.conf != nil && inst.Class == isa.Branch && s.conf.access(inst.PC, mis) {
				entry.lowConf = true
				s.lowConfOut++
			}
			if mis {
				entry.mispredct = true
				s.fqPush(entry)
				// Wrong path ahead: no useful fetch until resolution.
				s.awaitResolve = true
				if s.opts.WrongPathFetch {
					s.wrongActive = true
					s.haveWrong = false
					if inst.Class == isa.Branch && !inst.Taken {
						// Predicted taken (or misfetched): the frontend went
						// to the branch target.
						s.wrongPC = inst.Target
					} else {
						// Predicted not-taken: the frontend fell through.
						s.wrongPC = inst.PC + 4
					}
				}
				return nil
			}
			s.fqPush(entry)
			n++
			if inst.Taken || inst.Class == isa.Jump {
				// Fetch break: a taken transfer ends the fetch group.
				return nil
			}
			continue
		}
		if s.vrun != nil && overlay.VPredEligible(inst.Class, inst.Dst) {
			switch s.vrun.Access(inst.PC) {
			case vpred.Hit:
				entry.vpredHit = true
			case vpred.Miss:
				entry.vpredMiss = true
				s.fqPush(entry)
				// Everything younger is down the misspeculated path: no
				// useful fetch until the producer resolves and flushes.
				s.awaitResolve = true
				return nil
			}
		}
		s.fqPush(entry)
		n++
	}
	return nil
}

// fetchWidth returns this cycle's fetch bandwidth: the configured width,
// throttled while any low-confidence branch is outstanding under a variable
// fetch-rate configuration (Ramachandran & Johnson).
func (s *simulator) fetchWidth() int {
	if s.throttledWidth > 0 && s.lowConfOut > 0 {
		return s.throttledWidth
	}
	return s.cfg.FetchWidth
}

// fetchReplay is the fetch stage of replay mode: the same control flow as
// fetch(), with the branch predictor and the L1 instruction cache replaced
// by the precomputed overlay. A replayed L1I miss still drives the live L2
// with the instruction's PC — the identical fill stream a live L1I miss
// would send — so the L2 state shared with the data side evolves exactly as
// in a live run. Sampling, wrong-path fetch, and the generic reader never
// reach here (newSimulator falls back to live simulation for all three).
func (s *simulator) fetchReplay() error {
	if s.awaitResolve || s.cycle < s.fetchResumeAt {
		return nil
	}
	soa := s.soa
	fqCap := int32(len(s.fq))
	n := 0
	for n < s.fetchWidth() && s.fqLen < fqCap {
		idx := s.fetchIdx
		if idx >= s.replayLimit {
			return nil
		}
		pc := soa.PC[idx]
		if line := pc & s.lineMask; !s.haveFetchLine || line != s.curFetchLine {
			// Same line tracking as live fetch, so the access points — and
			// the dedup of an access resumed after a miss — line up with the
			// overlay pre-pass by construction.
			s.curFetchLine = line
			s.haveFetchLine = true
			ic := (s.ov.Code[idx] & overlay.IMask) >> overlay.IShift
			if ic == 0 {
				return fmt.Errorf("uarch: overlay has no I-fetch outcome at index %d (line-crossing mismatch)", idx)
			}
			s.rcL1I.Accesses++
			if lvl := cache.Level(ic - 1); lvl != cache.L1Hit {
				s.rcL1I.Misses++
				s.mem.L2.Access(pc)
				lat := s.mem.Lat.L2
				if lvl == cache.LongMiss {
					lat = s.mem.Lat.Mem
				}
				s.c.icacheMisses++
				s.event(EvICacheMiss, idx, lvl)
				s.lastMissIdx = idx
				s.fetchResumeAt = s.cycle + uint64(lat)
				return nil
			}
		}
		meta := soa.Meta[idx]
		class := isa.Class(meta & trace.MetaClassMask)
		s.fetchIdx = idx + 1
		// Replay runs always use precomputed dependences, so dispatch never
		// reads the register fields; the entry carries only what it needs.
		entry := fqEntry{
			idx:     idx,
			addr:    soa.Addr[idx],
			readyAt: s.cycle + uint64(s.cfg.FrontendDepth),
			class:   class,
		}
		if class.IsControl() {
			code := s.ov.Code[idx]
			if class == isa.Branch {
				s.rb.Branches++
			} else {
				s.rb.Jumps++
			}
			mis := code&overlay.AnyMiss != 0
			if s.conf != nil && class == isa.Branch && s.conf.access(pc, mis) {
				entry.lowConf = true
				s.lowConfOut++
			}
			if mis {
				if code&overlay.DirMiss != 0 {
					s.rb.DirMispredict++
				} else {
					s.rb.BTBMispredict++
				}
				entry.mispredct = true
				s.fqPush(entry)
				// Wrong path ahead: no useful fetch until resolution.
				s.awaitResolve = true
				return nil
			}
			s.fqPush(entry)
			n++
			if meta&trace.MetaTakenBit != 0 || class == isa.Jump {
				// Fetch break: a taken transfer ends the fetch group.
				return nil
			}
			continue
		}
		if s.ov.VPredFP != 0 {
			// Bits 6/7 are only ever set on eligible records, so the replay
			// needs no eligibility re-check.
			switch code := s.ov.Code[idx]; {
			case code&overlay.VPredHit != 0:
				entry.vpredHit = true
			case code&overlay.VPredMiss != 0:
				entry.vpredMiss = true
				s.fqPush(entry)
				s.awaitResolve = true
				return nil
			}
		}
		s.fqPush(entry)
		n++
	}
	return nil
}

// fqPush appends an entry to the frontend queue ring. Callers check fqLen
// against the ring capacity before fetching.
func (s *simulator) fqPush(e fqEntry) {
	slot := s.fqHead + s.fqLen
	if cap := int32(len(s.fq)); slot >= cap {
		slot -= cap
	}
	s.fq[slot] = e
	s.fqLen++
}

// fetchWrongPath advances the frontend down the mispredicted path for one
// cycle, touching the I-cache hierarchy line by line. A wrong-path I-miss
// parks the wrong-path fetch (the redirect always arrives before a
// realistic frontend would chase it further).
func (s *simulator) fetchWrongPath() {
	lineBytes := uint64(s.mem.LineSizeI())
	lineMask := ^(lineBytes - 1)
	for i := 0; i < s.cfg.FetchWidth; i++ {
		line := s.wrongPC & lineMask
		if !s.haveWrong || line != s.wrongLine {
			s.wrongLine = line
			s.haveWrong = true
			switch s.mem.FetchWrongPath(s.wrongPC) {
			case cache.ShortMiss:
				s.c.wrongPathIMisses++
				return // the L2 fill occupies this fetch cycle
			case cache.LongMiss:
				s.c.wrongPathIMisses++
				s.wrongActive = false // abandoned until the redirect
				return
			}
		}
		s.wrongPC += 4
	}
}

// skipFunctional consumes the skip phase's instructions through the caches
// and the branch predictor only. It runs "instantly": no cycles elapse and
// nothing is dispatched, so the skipped instructions never appear in
// committed counts, events, or records.
func (s *simulator) skipFunctional(n uint64) error {
	if s.soa != nil {
		return s.skipFunctionalSoA(n)
	}
	left := n
	for left > 0 {
		in, ok, err := s.peek()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if line := in.PC & s.lineMask; !s.haveFetchLine || line != s.curFetchLine {
			s.curFetchLine = line
			s.haveFetchLine = true
			s.mem.Fetch(in.PC)
		}
		switch {
		case in.Class.IsMem():
			s.mem.Data(in.Addr)
		case in.Class.IsControl():
			mis := s.pred.Access(in)
			if s.conf != nil && in.Class == isa.Branch {
				s.conf.access(in.PC, mis)
			}
		}
		if s.vrun != nil && overlay.VPredEligible(in.Class, in.Dst) {
			s.vrun.Access(in.PC)
		}
		s.consume()
		left--
	}
	return nil
}

// skipFunctionalSoA is skipFunctional over the packed trace: the identical
// predictor and cache access sequence, reading only the columns each
// instruction class needs instead of assembling a full isa.Inst per record.
// Fast-forwarding is bounded by memory traffic, so the narrower reads are
// what make sampled sweeps several times cheaper than detailed ones.
func (s *simulator) skipFunctionalSoA(n uint64) error {
	limit := uint64(s.soa.Len())
	if s.opts.MaxInsts > 0 && s.opts.MaxInsts < limit {
		limit = s.opts.MaxInsts
	}
	s.havePeek = false
	i := s.fetchIdx
	var in isa.Inst
	for ; n > 0 && i < limit; n-- {
		pc := s.soa.PC[i]
		if line := pc & s.lineMask; !s.haveFetchLine || line != s.curFetchLine {
			s.curFetchLine = line
			s.haveFetchLine = true
			s.mem.Fetch(pc)
		}
		cls := isa.Class(s.soa.Meta[i] & trace.MetaClassMask)
		switch {
		case cls.IsMem():
			s.mem.Data(s.soa.Addr[i])
		case cls.IsControl():
			s.soa.InstAt(int(i), &in)
			mis := s.pred.Access(&in)
			if s.conf != nil && cls == isa.Branch {
				s.conf.access(pc, mis)
			}
		}
		if s.vrun != nil && overlay.VPredEligible(cls, s.soa.Dst[i]) {
			s.vrun.Access(pc)
		}
		i++
	}
	s.fetchIdx = i
	return nil
}

// markUnitBoundary closes one sampling measurement unit: the statistics
// delta since the previous boundary. It runs at every detailed→skip
// transition and once more at the end of the run (the trailing, possibly
// partial, detailed phase). A boundary before anything committed — possible
// with very short detailed phases — folds into the next unit instead of
// producing an undefined CPI observation.
func (s *simulator) markUnitBoundary() {
	u := sampleUnit{
		insts:       s.committed - s.unitBase.insts,
		cycles:      s.cycle - s.unitBase.cycles,
		mispredicts: s.c.mispredicts - s.unitBase.mispredicts,
		longDMisses: s.c.longDMisses - s.unitBase.longDMisses,
	}
	if u.insts == 0 {
		return
	}
	s.units = append(s.units, u)
	s.unitBase = sampleUnit{
		insts:       s.committed,
		cycles:      s.cycle,
		mispredicts: s.c.mispredicts,
		longDMisses: s.c.longDMisses,
	}
}

// finishSampling attaches the per-metric confidence intervals of a sampled
// run to its Result. Units are per-detailed-phase statistic deltas, so the
// SMARTS-style estimator treats them as independent systematic samples of
// the whole trace.
func (s *simulator) finishSampling() {
	if !s.opts.sampling() {
		return
	}
	s.markUnitBoundary() // close the trailing partial unit
	n := len(s.units)
	insts := make([]float64, n)
	cycles := make([]float64, n)
	misp := make([]float64, n)
	longd := make([]float64, n)
	for i, u := range s.units {
		insts[i] = float64(u.insts)
		cycles[i] = float64(u.cycles)
		misp[i] = float64(u.mispredicts) * 1000
		longd[i] = float64(u.longDMisses) * 1000
	}
	s.res.Sample = &SampleStats{
		Units:          n,
		Confidence:     sampleConfidence,
		CPI:            newInterval(cycles, insts),
		MispredictsPKI: newInterval(misp, insts),
		LongDMissesPKI: newInterval(longd, insts),
	}
}

func (s *simulator) event(kind EventKind, idx uint64, lvl cache.Level) {
	if kind != EvBranchMispredict && idx > s.lastMissIdx {
		// Track burstiness distance for non-branch events too.
		s.lastMissIdx = idx
	}
	if s.opts.RecordEvents {
		s.res.Events = append(s.res.Events, MissEvent{Kind: kind, Index: idx, Cycle: s.cycle, Level: lvl})
	}
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
