package uarch

import (
	"context"
	"errors"
	"testing"

	"intervalsim/internal/workload"
)

func testTraceReader(t *testing.T, name string, insts int) *workload.Generator {
	t.Helper()
	wc, ok := workload.SuiteConfig(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	return workload.MustNew(wc, insts)
}

func TestMaxCyclesWatchdog(t *testing.T) {
	cfg := Baseline()
	_, err := Run(testTraceReader(t, "gzip", 500_000), cfg, Options{MaxCycles: 2_000})
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
}

func TestMaxCyclesAboveRunLength(t *testing.T) {
	cfg := Baseline()
	res, err := Run(testTraceReader(t, "gzip", 10_000), cfg, Options{MaxCycles: 10_000_000})
	if err != nil {
		t.Fatalf("generous budget tripped: %v", err)
	}
	if res.Insts != 10_000 {
		t.Fatalf("committed %d insts, want 10000", res.Insts)
	}
}

func TestNoProgressWatchdog(t *testing.T) {
	// An adversarial no-forward-progress setup: memory latency far above the
	// no-progress budget, so the first long D-miss at the ROB head starves
	// commit for longer than the watchdog allows. The run must return
	// ErrWatchdog within the configured budget instead of being treated as
	// normal execution.
	cfg := Baseline()
	cfg.Mem.Lat.Mem = 100_000
	_, err := Run(testTraceReader(t, "mcf", 500_000), cfg, Options{
		NoProgressCycles: 5_000,
		MaxCycles:        50_000_000,
	})
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
}

func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, testTraceReader(t, "gzip", 500_000), Baseline(), Options{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestBadConfigSentinel(t *testing.T) {
	cfg := Baseline()
	cfg.ROBSize = 0
	if _, err := Run(testTraceReader(t, "gzip", 100), cfg, Options{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
	cfg = Baseline()
	cfg.Pred.Kind = "nonesuch"
	if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("predictor error = %v, want ErrBadConfig", err)
	}
}
