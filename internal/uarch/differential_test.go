package uarch

import (
	"reflect"
	"testing"

	"intervalsim/internal/trace"
	"intervalsim/internal/workload"
)

// diffOptions are the instrumentation matrices the differential tests cover:
// bare runs, fully recorded runs, warmup subtraction, instruction limits,
// wrong-path fetch, and sampled simulation (which forces the fast path to
// fall back to live dependence tracking).
func diffOptions() map[string]Options {
	return map[string]Options{
		"bare":     {},
		"recorded": {RecordEvents: true, RecordMispredicts: true, RecordLoadLevels: true, TimelineCycles: 4096},
		"warmup":   {RecordEvents: true, RecordMispredicts: true, RecordLoadLevels: true, WarmupInsts: 10_000},
		"maxinsts": {RecordMispredicts: true, MaxInsts: 17_001},
		"wrongpath": {
			RecordEvents: true, WrongPathFetch: true,
		},
		"sampled": {SampleStartSkip: 5_000, SampleDetailed: 4_000, SampleSkip: 6_000},
	}
}

// TestRunPathsIdentical is the contract behind the hot-path optimization:
// the index-based struct-of-arrays path (packed trace, precomputed
// dependence metadata, pooled buffers) must produce results that are
// bit-identical to the generic streaming path — every counter, every stall
// bucket, every event, record, timeline entry, and load level.
func TestRunPathsIdentical(t *testing.T) {
	cfgs := map[string]Config{"baseline": Baseline()}
	small := Baseline()
	small.Name = "small"
	small.ROBSize = 48 // deliberately not a power of two: exercises slot wrap
	small.IQSize = 24
	small.FrontendDepth = 9
	cfgs["small"] = small

	for _, wname := range []string{"gzip", "mcf", "crafty"} {
		wc, ok := workload.SuiteConfig(wname)
		if !ok {
			t.Fatalf("unknown workload %s", wname)
		}
		tr, err := trace.ReadAll(workload.MustNew(wc, 40_000))
		if err != nil {
			t.Fatal(err)
		}
		soa := trace.Pack(tr)
		for cname, cfg := range cfgs {
			for oname, opts := range diffOptions() {
				t.Run(wname+"/"+cname+"/"+oname, func(t *testing.T) {
					generic, err := Run(tr.Reader(), cfg, opts)
					if err != nil {
						t.Fatal(err)
					}
					fast, err := Run(soa.Reader(), cfg, opts)
					if err != nil {
						t.Fatal(err)
					}
					compareResults(t, generic, fast)
				})
			}
		}
	}
}

// compareResults asserts field-level equality with targeted messages before
// falling back to a whole-struct comparison, so a divergence names the first
// statistic that drifted instead of dumping two large structs. Path and
// Fallback describe which simulator path ran, not what it computed, so they
// are cleared (on copies) before the whole-struct comparison.
func compareResults(t *testing.T, want, got *Result) {
	t.Helper()
	w, g := *want, *got
	w.Path, w.Fallback = "", ""
	g.Path, g.Fallback = "", ""
	want, got = &w, &g
	scalar := []struct {
		name       string
		want, have uint64
	}{
		{"Insts", want.Insts, got.Insts},
		{"Cycles", want.Cycles, got.Cycles},
		{"Mispredicts", want.Mispredicts, got.Mispredicts},
		{"ICacheMisses", want.ICacheMisses, got.ICacheMisses},
		{"WrongPathIMisses", want.WrongPathIMisses, got.WrongPathIMisses},
		{"LongDMisses", want.LongDMisses, got.LongDMisses},
		{"ShortDMisses", want.ShortDMisses, got.ShortDMisses},
		{"LoadsExecuted", want.LoadsExecuted, got.LoadsExecuted},
	}
	for _, f := range scalar {
		if f.want != f.have {
			t.Errorf("%s: generic %d, fast %d", f.name, f.want, f.have)
		}
	}
	if want.Stalls != got.Stalls {
		t.Errorf("Stalls: generic %+v, fast %+v", want.Stalls, got.Stalls)
	}
	if want.Bpred != got.Bpred {
		t.Errorf("Bpred: generic %+v, fast %+v", want.Bpred, got.Bpred)
	}
	if want.Caches != got.Caches {
		t.Errorf("Caches: generic %+v, fast %+v", want.Caches, got.Caches)
	}
	if len(want.Events) != len(got.Events) {
		t.Errorf("Events: generic %d, fast %d", len(want.Events), len(got.Events))
	} else {
		for i := range want.Events {
			if want.Events[i] != got.Events[i] {
				t.Errorf("Events[%d]: generic %+v, fast %+v", i, want.Events[i], got.Events[i])
				break
			}
		}
	}
	if len(want.Records) != len(got.Records) {
		t.Errorf("Records: generic %d, fast %d", len(want.Records), len(got.Records))
	} else {
		for i := range want.Records {
			if want.Records[i] != got.Records[i] {
				t.Errorf("Records[%d]: generic %+v, fast %+v", i, want.Records[i], got.Records[i])
				break
			}
		}
	}
	if t.Failed() {
		return
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("results differ outside the named fields: generic %+v, fast %+v", want, got)
	}
}

// TestPackReaderMatchesPack pins the streaming packer to the in-memory one.
func TestPackReaderMatchesPack(t *testing.T) {
	wc, _ := workload.SuiteConfig("vpr")
	tr, err := trace.ReadAll(workload.MustNew(wc, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	a := trace.Pack(tr)
	b, err := trace.PackReader(tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("PackReader result differs from Pack")
	}
}
