package uarch

import (
	"testing"
	"testing/quick"

	"intervalsim/internal/cache"
	"intervalsim/internal/trace"
	"intervalsim/internal/workload"
)

// randomWorkload derives a structurally valid workload configuration from a
// seed, spanning the knob space the generator supports.
func randomWorkload(seed uint64) workload.Config {
	// Derive knobs from seed bits; keep everything within Validate() bounds.
	pick := func(shift uint, mod int) int { return int((seed >> shift) % uint64(mod)) }
	return workload.Config{
		Name: "prop", Seed: seed,
		Regions:          1 + pick(0, 12),
		BlocksPerRegion:  2 + pick(4, 16),
		BlockSize:        workload.Range{Min: 1 + pick(8, 4), Max: 5 + pick(10, 8)},
		LoopTrip:         workload.Range{Min: 1 + pick(12, 8), Max: 10 + pick(14, 30)},
		RegionTheta:      float64(pick(16, 15)) / 10,
		LoadFrac:         float64(pick(20, 30)) / 100,
		StoreFrac:        float64(pick(24, 15)) / 100,
		MulFrac:          float64(pick(26, 5)) / 100,
		DivFrac:          float64(pick(28, 2)) / 100,
		ChainProb:        float64(pick(30, 10)) / 10,
		RandomBranchFrac: float64(pick(34, 40)) / 100, RandomBranchBias: 0.5,
		PatternBranchFrac: float64(pick(38, 30)) / 100, TakenBias: 0.8 + float64(pick(42, 19))/100,
		DataFootprint: 64 << (10 + pick(46, 8)),
		StrideFrac:    float64(pick(50, 10)) / 10,
		Locality:      float64(pick(54, 18)) / 10,
	}
}

// TestSimulatorInvariantsProperty runs randomized workloads through the
// detailed simulator and checks the invariants any result must satisfy.
func TestSimulatorInvariantsProperty(t *testing.T) {
	cfg := testConfig()
	cfg.Pred = PredictorSpec{Kind: "gshare", Entries: 1024, HistBits: 8, BTBEntries: 256}
	f := func(seed uint64) bool {
		wc := randomWorkload(seed)
		if err := wc.Validate(); err != nil {
			t.Logf("seed %d produced invalid config: %v", seed, err)
			return false
		}
		tr, err := trace.ReadAll(workload.MustNew(wc, 20_000))
		if err != nil {
			return false
		}
		res, err := Run(tr.Reader(), cfg, Options{
			RecordEvents:      true,
			RecordMispredicts: true,
			RecordLoadLevels:  true,
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Every instruction commits.
		if res.Insts != uint64(tr.Len()) {
			return false
		}
		// Cycles bounded below by the dispatch-width limit.
		if res.Cycles < res.Insts/uint64(cfg.DispatchWidth) {
			return false
		}
		// Events lie within the trace and are cycle-ordered.
		var lastCycle uint64
		for _, ev := range res.Events {
			if ev.Index >= uint64(tr.Len()) || ev.Cycle < lastCycle {
				return false
			}
			lastCycle = ev.Cycle
		}
		// Records are self-consistent.
		for _, r := range res.Records {
			if r.Occupancy < 0 || r.Occupancy >= cfg.ROBSize {
				return false
			}
			if r.OldestInROB > r.Index {
				return false
			}
			if r.ResumeCycle != 0 && r.Penalty() < float64(cfg.FrontendDepth) {
				return false
			}
		}
		// Mispredict event count matches the record count.
		return res.Mispredicts == uint64(len(res.Records))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPerfectEverythingApproachesWidth gives the machine a perfect frontend
// and unmissable caches (huge L1s): IPC must approach the ILP/width limit on
// a high-ILP workload.
func TestPerfectEverythingApproachesWidth(t *testing.T) {
	wc, _ := workload.SuiteConfig("gap")
	wc.ChainProb = 0
	cfg := testConfig()
	cfg.Pred = PredictorSpec{Kind: "perfect"}
	// Flat memory: cold misses cost almost nothing, isolating the core.
	cfg.Mem.Lat = cache.Latencies{L1: 1, L2: 2, Mem: 3}
	tr, err := trace.ReadAll(workload.MustNew(wc, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr.Reader(), cfg, Options{WarmupInsts: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	// Taken-branch fetch breaks keep it below 4; anything under 2 would
	// indicate a phantom bottleneck.
	if res.IPC() < 2 {
		t.Errorf("idealized machine IPC = %.2f, want > 2", res.IPC())
	}
}
