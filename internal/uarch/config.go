// Package uarch implements a cycle-level, trace-driven model of an
// out-of-order superscalar processor: a depth-configurable frontend pipeline,
// branch prediction unit, reorder buffer and issue queue, per-class
// functional-unit pools, and a two-level cache hierarchy.
//
// It is the measurement substrate of the reproduction: the detailed
// simulator the paper validates interval analysis against. Beyond aggregate
// cycle counts it records exactly the artifacts interval analysis consumes —
// the ordered stream of miss events (branch mispredictions, I-cache misses,
// long D-cache misses) and, per misprediction, the reorder-buffer occupancy,
// the distance to the previous miss event, and the dispatch/resolve/refill
// timing that defines the misprediction penalty.
//
// Like the paper's simulator, it is trace driven: wrong-path instructions
// are not fetched (their second-order cache effects are outside the model),
// so a misprediction stalls fetch until the branch resolves and then pays
// the frontend refill, which is precisely the penalty structure under study.
package uarch

import (
	"fmt"

	"intervalsim/internal/bpred"
	"intervalsim/internal/cache"
	"intervalsim/internal/isa"
	"intervalsim/internal/vpred"
)

// FUPool configures one class of functional units.
type FUPool struct {
	Count     int  // number of units
	Latency   int  // execution latency in cycles (loads use cache latency instead)
	Pipelined bool // can a unit accept a new op every cycle?
}

// FUs configures every functional-unit pool. Branches and jumps execute on
// the IntALU pool; loads and stores share the MemPort pool (load latency
// comes from the cache hierarchy, stores retire into a store buffer in one
// cycle).
type FUs struct {
	IntALU  FUPool
	IntMul  FUPool
	IntDiv  FUPool
	FPAdd   FUPool
	FPMul   FUPool
	FPDiv   FUPool
	MemPort FUPool
}

// Scale returns a copy with every latency multiplied by factor (minimum 1),
// used by the functional-unit-latency experiments.
func (f FUs) Scale(factor float64) FUs {
	s := func(p FUPool) FUPool {
		l := int(float64(p.Latency)*factor + 0.5)
		if l < 1 {
			l = 1
		}
		p.Latency = l
		return p
	}
	return FUs{
		IntALU: s(f.IntALU), IntMul: s(f.IntMul), IntDiv: s(f.IntDiv),
		FPAdd: s(f.FPAdd), FPMul: s(f.FPMul), FPDiv: s(f.FPDiv),
		MemPort: f.MemPort,
	}
}

// PredictorSpec selects and sizes the branch prediction unit. It is an
// alias for bpred.Config, which is where the type (with its Build and
// canonical Fingerprint methods) now lives; the alias keeps existing
// configuration literals compiling unchanged.
type PredictorSpec = bpred.Config

// Config describes the modeled processor.
type Config struct {
	Name string

	FetchWidth    int // instructions fetched per cycle
	DispatchWidth int // rename/dispatch width — the D of interval analysis
	IssueWidth    int // maximum instructions issued to FUs per cycle
	CommitWidth   int // maximum instructions retired per cycle

	// FrontendDepth is the number of pipeline stages between fetch and
	// dispatch: the classic "misprediction penalty" that the paper shows to
	// be only one of five contributors.
	FrontendDepth int

	ROBSize int // reorder buffer entries
	IQSize  int // issue queue entries (dispatched but not yet issued)

	FU   FUs
	Pred PredictorSpec
	Mem  cache.HierarchyConfig

	// VPred, when non-nil, enables value prediction: eligible results
	// (loads and register-writing integer ALU ops) are predicted at fetch,
	// confident-correct predictions break the dependence on the producer,
	// and confident-wrong ones flush the pipeline at dispatch — a new
	// miss-event class. Nil (the default) is the classic machine; omitempty
	// keeps canonical JSON of default configs — and thus store keys —
	// byte-stable.
	VPred *vpred.Config `json:"VPred,omitempty"`

	// FetchRate, when in (0,1), enables Ramachandran & Johnson-style
	// variable instruction fetch: while a low-confidence branch is in
	// flight the frontend fetches at only FetchRate of FetchWidth, trading
	// misspeculated-fetch work against refill latency. 0 (the default) and
	// 1 both mean full-rate fetch, byte-identical to the classic machine.
	FetchRate float64 `json:"FetchRate,omitempty"`
}

// Validate reports the first configuration problem, if any. Every error
// wraps ErrBadConfig, so harnesses can classify it as permanent.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"FetchWidth", c.FetchWidth}, {"DispatchWidth", c.DispatchWidth},
		{"IssueWidth", c.IssueWidth}, {"CommitWidth", c.CommitWidth},
		{"FrontendDepth", c.FrontendDepth}, {"ROBSize", c.ROBSize},
		{"IQSize", c.IQSize},
	} {
		if f.v <= 0 {
			return fmt.Errorf("%w: %s: %s must be positive", ErrBadConfig, c.Name, f.name)
		}
	}
	if c.IQSize > c.ROBSize {
		return fmt.Errorf("%w: %s: IQSize %d exceeds ROBSize %d", ErrBadConfig, c.Name, c.IQSize, c.ROBSize)
	}
	pools := []struct {
		name string
		p    FUPool
	}{
		{"IntALU", c.FU.IntALU}, {"IntMul", c.FU.IntMul}, {"IntDiv", c.FU.IntDiv},
		{"FPAdd", c.FU.FPAdd}, {"FPMul", c.FU.FPMul}, {"FPDiv", c.FU.FPDiv},
		{"MemPort", c.FU.MemPort},
	}
	for _, pl := range pools {
		if pl.p.Count <= 0 || pl.p.Latency <= 0 {
			return fmt.Errorf("%w: %s: FU pool %s needs positive count and latency", ErrBadConfig, c.Name, pl.name)
		}
	}
	if _, err := c.Pred.Build(); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBadConfig, c.Name, err)
	}
	if err := c.Mem.Validate(); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBadConfig, c.Name, err)
	}
	if c.VPred != nil {
		if err := c.VPred.Validate(); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrBadConfig, c.Name, err)
		}
	}
	if c.FetchRate < 0 || c.FetchRate > 1 {
		return fmt.Errorf("%w: %s: FetchRate %v out of [0,1]", ErrBadConfig, c.Name, c.FetchRate)
	}
	return nil
}

// poolFor maps an instruction class to its functional-unit pool index.
// Branches and jumps resolve on integer ALUs; loads and stores share ports.
func poolFor(class isa.Class) int {
	switch class {
	case isa.IntALU, isa.Branch, isa.Jump:
		return 0
	case isa.IntMul:
		return 1
	case isa.IntDiv:
		return 2
	case isa.FPAdd:
		return 3
	case isa.FPMul:
		return 4
	case isa.FPDiv:
		return 5
	default: // Load, Store
		return 6
	}
}

const numPools = 7

// pools returns the pool configurations indexed by poolFor.
func (f FUs) pools() [numPools]FUPool {
	return [numPools]FUPool{f.IntALU, f.IntMul, f.IntDiv, f.FPAdd, f.FPMul, f.FPDiv, f.MemPort}
}

// OpLatency returns the fixed execution latency for class, or 0 for loads
// (whose latency comes from the cache hierarchy).
func (f FUs) OpLatency(class isa.Class) int {
	switch class {
	case isa.IntALU, isa.Branch, isa.Jump:
		return f.IntALU.Latency
	case isa.IntMul:
		return f.IntMul.Latency
	case isa.IntDiv:
		return f.IntDiv.Latency
	case isa.FPAdd:
		return f.FPAdd.Latency
	case isa.FPMul:
		return f.FPMul.Latency
	case isa.FPDiv:
		return f.FPDiv.Latency
	case isa.Store:
		return 1 // into the store buffer
	default: // Load
		return 0
	}
}

// Baseline returns the paper-style 4-wide baseline processor (Table T1 of
// DESIGN.md): 4-wide dispatch/issue/commit, 5-stage frontend, 128-entry ROB,
// tournament predictor + BTB, 64KB L1s, 1MB L2, 250-cycle memory.
func Baseline() Config {
	return Config{
		Name:          "base4w",
		FetchWidth:    4,
		DispatchWidth: 4,
		IssueWidth:    4,
		CommitWidth:   4,
		FrontendDepth: 5,
		ROBSize:       128,
		IQSize:        64,
		FU: FUs{
			IntALU:  FUPool{Count: 4, Latency: 1, Pipelined: true},
			IntMul:  FUPool{Count: 2, Latency: 3, Pipelined: true},
			IntDiv:  FUPool{Count: 1, Latency: 20, Pipelined: false},
			FPAdd:   FUPool{Count: 2, Latency: 2, Pipelined: true},
			FPMul:   FUPool{Count: 1, Latency: 4, Pipelined: true},
			FPDiv:   FUPool{Count: 1, Latency: 12, Pipelined: false},
			MemPort: FUPool{Count: 2, Latency: 1, Pipelined: true},
		},
		Pred: PredictorSpec{Kind: "tournament", Entries: 16384, HistBits: 12, BTBEntries: 4096},
		Mem: cache.HierarchyConfig{
			L1I: cache.Config{Name: "L1I", Size: 64 << 10, LineSize: 64, Ways: 2, Repl: cache.LRU},
			L1D: cache.Config{Name: "L1D", Size: 64 << 10, LineSize: 64, Ways: 4, Repl: cache.LRU},
			L2:  cache.Config{Name: "L2", Size: 1 << 20, LineSize: 64, Ways: 8, Repl: cache.LRU},
			Lat: cache.Latencies{L1: 3, L2: 12, Mem: 250},
		},
	}
}
