package uarch

import (
	"strings"
	"testing"

	"intervalsim/internal/overlay"
	"intervalsim/internal/trace"
	"intervalsim/internal/vpred"
	"intervalsim/internal/workload"
)

// vspecTrace packs one suite workload at the given length.
func vspecTrace(t *testing.T, name string, insts int) (workload.Config, *trace.SoA) {
	t.Helper()
	wc, ok := workload.SuiteConfig(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	tr, err := trace.ReadAll(workload.MustNew(wc, insts))
	if err != nil {
		t.Fatal(err)
	}
	return wc, trace.Pack(tr)
}

// vspecConfig returns the baseline machine with the named value-predictor
// preset attached, its stream resolved from the workload.
func vspecConfig(t *testing.T, wc workload.Config, kind string) Config {
	t.Helper()
	cfg := Baseline()
	vp, ok := vpred.Preset(kind)
	if !ok {
		t.Fatalf("unknown vpred preset %s", kind)
	}
	vp.Stream = wc.ValueStream()
	cfg.VPred = &vp
	return cfg
}

// TestVPredReplayMatchesLive extends the overlay contract to value
// speculation: a replay run consuming bits 6/7 of a vpred-aware overlay must
// be bit-identical to a live run driving a vpred.Runner at fetch — for every
// predictor kind, with and without fetch-rate throttling stacked on top.
func TestVPredReplayMatchesLive(t *testing.T) {
	for _, wname := range []string{"gzip", "crafty"} {
		wc, soa := vspecTrace(t, wname, 40_000)
		for _, kind := range vpred.PresetNames() {
			for _, rate := range []float64{0, 0.5} {
				cfg := vspecConfig(t, wc, kind)
				cfg.FetchRate = rate
				ov, err := overlay.ComputeSpec(soa, cfg.Pred, cfg.Mem, cfg.VPred)
				if err != nil {
					t.Fatal(err)
				}
				opts := Options{RecordEvents: true, RecordMispredicts: true, WarmupInsts: 10_000}
				live, err := Run(soa.Reader(), cfg, opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.Overlay = ov
				replay, err := Run(soa.Reader(), cfg, opts)
				if err != nil {
					t.Fatal(err)
				}
				if replay.Path != "soa+overlay" {
					t.Fatalf("%s/%s rate=%v: replay took path %q (fallback %q)",
						wname, kind, rate, replay.Path, replay.Fallback)
				}
				compareResults(t, live, replay)
				if live.ValuePredHits == 0 {
					t.Errorf("%s/%s: no value-prediction hits — the stream or predictor is broken", wname, kind)
				}
			}
		}
	}
}

// TestVPredBreaksDependences checks value prediction actually helps: on a
// workload with predictable values, a value-predicting machine commits the
// same instructions in no more cycles than the classic machine minus flush
// costs — concretely, CPI must improve for the stride preset, whose hits
// vastly outnumber its confident misses on the default stream.
func TestVPredBreaksDependences(t *testing.T) {
	wc, soa := vspecTrace(t, "mcf", 60_000)
	baseRes, err := Run(soa.Reader(), Baseline(), Options{WarmupInsts: 15_000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := vspecConfig(t, wc, "stride")
	res, err := Run(soa.Reader(), cfg, Options{WarmupInsts: 15_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.ValuePredHits == 0 {
		t.Fatal("no value-prediction hits")
	}
	if res.CPI() >= baseRes.CPI() {
		t.Errorf("stride value prediction did not improve CPI: %.4f -> %.4f (hits %d, misspecs %d)",
			baseRes.CPI(), res.CPI(), res.ValuePredHits, res.ValueMisspecs)
	}
}

// TestFetchRateNeutralAtFullRate pins the byte-stability contract: FetchRate
// 0 and 1 are both the classic machine, bit for bit.
func TestFetchRateNeutralAtFullRate(t *testing.T) {
	_, soa := vspecTrace(t, "gzip", 30_000)
	opts := Options{RecordEvents: true, RecordMispredicts: true}
	base, err := Run(soa.Reader(), Baseline(), opts)
	if err != nil {
		t.Fatal(err)
	}
	full := Baseline()
	full.FetchRate = 1
	fullRes, err := Run(soa.Reader(), full, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The configs differ on purpose; everything measured must not.
	fullRes.Config.FetchRate = 0
	compareResults(t, base, fullRes)
}

// TestFetchRateThrottles checks the throttle engages: at a low fetch rate
// the trace-driven model (which pays no wrong-path fetch cost by default)
// can only lose cycles, and must lose at least some on a mispredict-heavy
// workload.
func TestFetchRateThrottles(t *testing.T) {
	_, soa := vspecTrace(t, "crafty", 40_000)
	base, err := Run(soa.Reader(), Baseline(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Baseline()
	cfg.FetchRate = 0.25
	res, err := Run(soa.Reader(), cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= base.Cycles {
		t.Errorf("FetchRate 0.25 did not cost cycles: %d -> %d", base.Cycles, res.Cycles)
	}
}

// TestVPredOverlayFingerprintGate pins the replay-validity rule: an overlay
// computed under a different (or absent) value-predictor configuration is
// rejected with live fallback, and the fallback is correct.
func TestVPredOverlayFingerprintGate(t *testing.T) {
	wc, soa := vspecTrace(t, "gzip", 20_000)
	cfg := vspecConfig(t, wc, "last-value")
	plain, err := overlay.Compute(soa, cfg.Pred, cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(soa.Reader(), cfg, Options{Overlay: plain})
	if err != nil {
		t.Fatal(err)
	}
	if got.Path == "soa+overlay" {
		t.Fatal("vpred config replayed a vpred-less overlay")
	}
	if !strings.Contains(got.Fallback, "value-predictor fingerprint mismatch") {
		t.Errorf("Fallback = %q, want value-predictor fingerprint mismatch", got.Fallback)
	}
	live, err := Run(soa.Reader(), cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, live, got)

	// And the reverse: a vpred-aware overlay must not replay on the classic
	// machine.
	vov, err := overlay.ComputeSpec(soa, cfg.Pred, cfg.Mem, cfg.VPred)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := Run(soa.Reader(), Baseline(), Options{Overlay: vov})
	if err != nil {
		t.Fatal(err)
	}
	if rev.Path == "soa+overlay" {
		t.Fatal("classic config replayed a vpred overlay")
	}
}

// TestVPredSampledWarming checks the functional fast-forward drives the
// value predictor and confidence estimator: a sampled vpred run completes
// and still reports value-speculation activity.
func TestVPredSampledWarming(t *testing.T) {
	wc, soa := vspecTrace(t, "gzip", 60_000)
	cfg := vspecConfig(t, wc, "stride")
	cfg.FetchRate = 0.5
	res, err := Run(soa.Reader(), cfg, Options{SampleDetailed: 5_000, SampleSkip: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sampled {
		t.Fatal("run did not sample")
	}
	if res.ValuePredHits == 0 {
		t.Error("sampled run recorded no value-prediction hits")
	}
}
