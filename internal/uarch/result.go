package uarch

import (
	"intervalsim/internal/bpred"
	"intervalsim/internal/cache"
	"intervalsim/internal/overlay"
	"intervalsim/internal/stats"
)

// EventKind classifies the miss events that delimit intervals.
type EventKind uint8

// Interval-delimiting miss events. Short D-cache misses are deliberately
// not events: the paper treats them as a resolution-time contributor, not
// an interval boundary.
const (
	EvBranchMispredict EventKind = iota
	EvICacheMiss
	EvLongDMiss
	// EvValueMisspec is a confident-but-wrong value prediction: the
	// misspeculated instruction and everything younger is flushed at
	// dispatch and refetched, a branch-mispredict-shaped interval boundary
	// introduced by the value-speculation subsystem. Appended after the
	// original kinds so their numeric values stay stable.
	EvValueMisspec
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvBranchMispredict:
		return "branch-mispredict"
	case EvICacheMiss:
		return "icache-miss"
	case EvLongDMiss:
		return "long-dmiss"
	case EvValueMisspec:
		return "value-misspec"
	default:
		return "unknown-event"
	}
}

// MissEvent is one interval-delimiting miss event, in program order of the
// instruction that caused it.
type MissEvent struct {
	Kind  EventKind
	Index uint64      // dynamic instruction index in the trace
	Cycle uint64      // cycle the event was detected (0 in functional profiles)
	Level cache.Level // hierarchy level for cache events (ShortMiss/LongMiss)
	// Serial marks a long D-miss whose address depends on an earlier long
	// miss still in the window (pointer chasing): it cannot overlap that
	// miss. Parent is the trace index of that earlier miss (meaningful only
	// when Serial is set). Both are set by functional profiling (core
	// package); the cycle-level simulator leaves them zero.
	Serial bool
	Parent uint64
}

// MispredictRecord captures, for one branch misprediction, everything the
// interval-analysis decomposition needs.
type MispredictRecord struct {
	Index         uint64 // trace index of the mispredicted branch
	OldestInROB   uint64 // trace index of the ROB head when the branch dispatched
	Occupancy     int    // instructions in the window ahead of the branch at dispatch
	SinceLastMiss uint64 // instructions between the previous miss event and this branch

	DispatchCycle uint64 // cycle the branch entered the window
	IssueCycle    uint64 // cycle the branch issued to an ALU
	ResolveCycle  uint64 // cycle the branch finished executing (redirect signaled)
	ResumeCycle   uint64 // cycle the first correct-path instruction dispatched; 0 if trace ended first
}

// Penalty returns the measured misprediction penalty in cycles: the dispatch
// gap between the branch entering the window and useful dispatch resuming.
// Records without a resume (trace ended) report 0 and should be skipped.
func (r MispredictRecord) Penalty() float64 {
	if r.ResumeCycle == 0 || r.ResumeCycle <= r.DispatchCycle {
		return 0
	}
	return float64(r.ResumeCycle - r.DispatchCycle)
}

// ResolutionTime returns the branch resolution component of the penalty:
// cycles from window entry to execution.
func (r MispredictRecord) ResolutionTime() float64 {
	if r.ResolveCycle <= r.DispatchCycle {
		return 0
	}
	return float64(r.ResolveCycle - r.DispatchCycle)
}

// Options selects the optional instrumentation of a run.
type Options struct {
	// RecordEvents collects the ordered MissEvent stream.
	RecordEvents bool
	// RecordMispredicts collects a MispredictRecord per misprediction.
	RecordMispredicts bool
	// RecordLoadLevels tracks which hierarchy level served every load, for
	// the per-misprediction penalty decomposition.
	RecordLoadLevels bool
	// TimelineCycles records per-cycle dispatch counts for the first N
	// cycles (0 disables), for dispatch-rate timeline figures.
	TimelineCycles int
	// MaxInsts stops the simulation after this many instructions (0 = all).
	MaxInsts uint64
	// WarmupInsts excludes the first N committed instructions from every
	// reported statistic (caches and predictors stay warm), the standard
	// way to keep cold-start misses out of steady-state characterization.
	WarmupInsts uint64
	// SampleDetailed/SampleSkip enable sampled simulation with functional
	// warming: alternate between simulating SampleDetailed instructions
	// cycle-accurately and fast-forwarding SampleSkip instructions through
	// only the caches and branch predictor (no timing). Committed counts and
	// cycles cover the detailed phases only, so CPI estimates the full-run
	// CPI at a fraction of the cost (validated by experiment A3). Both must
	// be positive to enable.
	SampleDetailed uint64
	SampleSkip     uint64
	// WrongPathFetch models the frontend continuing down the mispredicted
	// path while the branch resolves: the wrong-path instruction lines are
	// fetched through the I-cache hierarchy (polluting — and sometimes
	// usefully prefetching — it). Wrong-path instructions are never decoded
	// or executed; this is an I-side fidelity option, off by default like
	// in the paper's trace-driven setup.
	WrongPathFetch bool
	// SampleStartSkip fast-forwards the first N instructions functionally
	// before any detailed simulation — the standard way to exclude the
	// cold-start region from a sampled run (the full-run analogue is
	// WarmupInsts). Usable with or without periodic sampling.
	SampleStartSkip uint64
	// MaxCycles aborts the simulation with an ErrWatchdog-wrapped error
	// once this many cycles have elapsed (0 = unlimited). It is the hard
	// budget that makes unattended sweeps safe against configurations far
	// slower than anticipated.
	MaxCycles uint64
	// NoProgressCycles aborts with ErrWatchdog when no instruction commits
	// for this many consecutive cycles — a model deadlock or a pathological
	// configuration. 0 means the default of 1,000,000 cycles, comfortably
	// above any legitimate stall (the longest realistic stall is a chain of
	// memory-latency misses filling the ROB).
	NoProgressCycles uint64
	// Overlay, when non-nil, enables replay mode: branch prediction outcomes
	// and L1 instruction-cache hit/miss classifications come from the
	// precomputed overlay instead of live bpred.Unit / L1I lookups (the data
	// side and the shared L2 stay live, so results are bit-identical to a
	// live run — see TestOverlayReplayMatchesLive). The overlay is used only
	// when it provably applies: the reader must be the packed trace the
	// overlay was computed over, the run must be unsampled without wrong-path
	// fetch, and the config's predictor and cache-geometry fingerprints must
	// match the overlay's. Otherwise the simulator silently falls back to
	// live simulation and records why in Result.Fallback.
	Overlay *overlay.Overlay
}

// sampling reports whether periodic sampled simulation is enabled.
func (o Options) sampling() bool { return o.SampleDetailed > 0 && o.SampleSkip > 0 }

// fastForwarded reports whether any functional skipping happens at all.
func (o Options) fastForwarded() bool { return o.sampling() || o.SampleStartSkip > 0 }

// sampleConfidence is the two-sided confidence level of every interval a
// sampled run reports. Fixed rather than configurable: every consumer of a
// sampled sweep row then knows what the bounds mean without more plumbing.
const sampleConfidence = 0.95

// Interval is a two-sided confidence interval for one sampled metric: the
// size-weighted ratio estimator over the measurement units (numerator sum /
// instruction sum, equal to the aggregate rate of the detailed phases) with
// its Student-t bounds at the confidence level recorded in SampleStats.
type Interval struct {
	Mean  float64 `json:"mean"`
	Lower float64 `json:"lower"`
	Upper float64 `json:"upper"`
	// RelErr is the half-width as a fraction of the mean (0 when the mean
	// is 0) — the headline "CPI known to ±x%" number of SMARTS-style runs.
	RelErr float64 `json:"rel_err"`
}

// newInterval builds the confidence interval for one per-instruction metric
// from its per-unit numerators and the per-unit committed-instruction
// counts.
func newInterval(ys, insts []float64) Interval {
	mean, half := stats.RatioCI(ys, insts, sampleConfidence)
	iv := Interval{Mean: mean, Lower: mean - half, Upper: mean + half}
	if mean != 0 {
		iv.RelErr = half / mean
	}
	return iv
}

// Covers reports whether x lies within the interval (inclusive).
func (iv Interval) Covers(x float64) bool { return x >= iv.Lower && x <= iv.Upper }

// SampleStats carries the statistical accounting of a sampled run: how many
// measurement units (detailed phases) were observed and, per metric, the
// ratio-estimator confidence interval over those units. Each interval is
// centered on the aggregate detailed-phase rate — the SMARTS point estimate
// of the whole-run rate — with bounds from the between-unit variance.
type SampleStats struct {
	Units      int     `json:"units"`
	Confidence float64 `json:"confidence"`

	CPI            Interval `json:"cpi"`
	MispredictsPKI Interval `json:"mispredicts_pki"` // mispredicts per kilo-instruction
	LongDMissesPKI Interval `json:"long_dmisses_pki"`
}

// CacheStats aggregates the three cache levels' counters.
type CacheStats struct {
	L1I, L1D, L2 cache.Stats
}

// StallCycles attributes cycles in which dispatch made no progress.
type StallCycles struct {
	BranchResolve uint64 // frontend empty: waiting on a mispredicted branch
	Refill        uint64 // frontend refilling after a redirect or I-miss
	ICacheMiss    uint64 // fetch blocked on an instruction cache miss
	ROBFull       uint64 // window full (typically a long D-miss at the head)
	IQFull        uint64 // issue queue full
	Other         uint64 // everything else (fetch-break bubbles, drained trace)
}

// Result is the outcome of one simulation.
type Result struct {
	Config Config

	// Path names the simulator path the run actually took: "generic" (the
	// streaming-Reader path with live dependence tracking), "soa" (the
	// index-based packed-trace path), or "soa+overlay" (packed trace with
	// replayed speculation outcomes). Sweeps report it so a silently
	// bypassed fast path is visible instead of just slow.
	Path string
	// Fallback explains every fast path this run bypassed and why (empty
	// when nothing was bypassed): a sampled run falling back to live
	// dependence tracking, a rejected overlay, a packed reader not at the
	// trace start. Multiple reasons are joined with "; ".
	Fallback string

	// Sampled is set when the run used sampled simulation; Insts and Cycles
	// then cover only the detailed phases, and Index fields in Events and
	// Records refer to dispatch order rather than trace positions (so the
	// trace-window decomposition in package core does not apply).
	Sampled bool
	// Sample carries the per-metric confidence intervals of a sampled run
	// (nil for full runs and for SampleStartSkip-only fast-forwarded runs).
	Sample *SampleStats

	Insts  uint64
	Cycles uint64

	// Miss-event counts.
	Mispredicts      uint64 // branch mispredictions (direction + target)
	ICacheMisses     uint64 // I-fetch misses (short or long)
	WrongPathIMisses uint64 // I-fetch misses on the wrong path (WrongPathFetch)
	LongDMisses      uint64 // loads served from memory
	ShortDMisses     uint64 // loads served from L2 (contributor v)
	LoadsExecuted    uint64
	ValuePredHits    uint64 // confident-correct value predictions (dependence broken)
	ValueMisspecs    uint64 // confident-wrong value predictions (pipeline flush)

	Bpred  bpred.Stats
	Caches CacheStats
	Stalls StallCycles

	// Optional instrumentation (see Options).
	Events   []MissEvent
	Records  []MispredictRecord
	Timeline []uint8 // dispatched instructions per cycle, if requested

	// LoadLevels, when Options.RecordLoadLevels is set, maps each load's
	// trace index to 1 + its cache.Level (0 = not a load / never issued).
	// Indices are absolute (unaffected by WarmupInsts), matching the Index
	// fields of Events and Records.
	LoadLevels []uint8
}

// LoadLevel returns the cache level that served the load at trace index idx.
func (r *Result) LoadLevel(idx uint64) (cache.Level, bool) {
	if idx >= uint64(len(r.LoadLevels)) || r.LoadLevels[idx] == 0 {
		return 0, false
	}
	return cache.Level(r.LoadLevels[idx] - 1), true
}

// IPC returns committed instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// CPI returns cycles per instruction.
func (r *Result) CPI() float64 {
	if r.Insts == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Insts)
}

// AvgMispredictPenalty returns the mean measured penalty over the collected
// records (requires Options.RecordMispredicts).
func (r *Result) AvgMispredictPenalty() float64 {
	var sum float64
	n := 0
	for _, rec := range r.Records {
		if p := rec.Penalty(); p > 0 {
			sum += p
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
