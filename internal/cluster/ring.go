package cluster

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
)

// Ring is a consistent-hash ring over the fleet's endpoints. Shard keys —
// (benchmark, config-group) pairs — hash onto the same circle as the nodes'
// virtual points, and a key is owned by the first node point at or clockwise
// of it. Two properties matter here:
//
//   - Balance: with enough virtual points per node (defaultRingReplicas),
//     each node owns a near-equal arc of the circle, so benchmarks spread
//     over the fleet without a central assignment table.
//   - Minimal churn: removing a node only reassigns the keys it owned; every
//     other key keeps its owner. Under node death the coordinator re-derives
//     affinities from the surviving ring, and only the dead node's shards
//     move — the live nodes' caches stay hot.
//
// Ownership is an affinity (a preference the work-stealing scheduler honors
// first), never a correctness requirement: the merger's exactly-once,
// seq-ordered commit keeps the merged output byte-identical no matter which
// node ends up computing a shard.
type Ring struct {
	replicas int
	nodes    []string
	points   []uint64 // sorted virtual-node positions
	owners   []string // owners[i] owns the arc ending at points[i]
}

// defaultRingReplicas is the virtual-node count per endpoint. 64 points per
// node keeps the expected per-node load imbalance within a few percent for
// the fleet sizes (2–16 daemons) the coordinator targets, at negligible
// memory and lookup cost.
const defaultRingReplicas = 64

// NewRing builds a ring over nodes with the given virtual-node count per
// node (<= 0 selects defaultRingReplicas). Node order does not affect
// ownership — the ring is a pure function of the node names.
func NewRing(nodes []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultRingReplicas
	}
	r := &Ring{
		replicas: replicas,
		nodes:    append([]string(nil), nodes...),
		points:   make([]uint64, 0, len(nodes)*replicas),
		owners:   make([]string, 0, len(nodes)*replicas),
	}
	type vnode struct {
		at    uint64
		owner string
	}
	vns := make([]vnode, 0, len(nodes)*replicas)
	for _, n := range nodes {
		for i := 0; i < replicas; i++ {
			vns = append(vns, vnode{at: ringHash(fmt.Sprintf("%s#%d", n, i)), owner: n})
		}
	}
	sort.Slice(vns, func(i, j int) bool {
		if vns[i].at != vns[j].at {
			return vns[i].at < vns[j].at
		}
		// Colliding points tie-break on name so ownership stays a pure
		// function of the node set.
		return vns[i].owner < vns[j].owner
	})
	for _, v := range vns {
		r.points = append(r.points, v.at)
		r.owners = append(r.owners, v.owner)
	}
	return r
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never fails
	// FNV-1a diffuses short sequential suffixes ("…#0", "…#1") poorly, which
	// clumps a node's virtual points; a splitmix64 finalizer spreads them.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Replicas returns the virtual-node count per endpoint.
func (r *Ring) Replicas() int { return r.replicas }

// Nodes returns the ring's endpoints in construction order.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the node owning key: the first virtual point at or clockwise
// of the key's hash.
func (r *Ring) Owner(key string) string {
	return r.OwnerAmong(key, nil)
}

// OwnerAmong returns the owner of key among the nodes for which alive
// returns true (nil means all): the walk continues clockwise past dead
// nodes' points, which is exactly the minimal-churn reassignment — keys of
// dead nodes redistribute to their ring successors, keys of live nodes stay
// put. With no live node at all it falls back to the unfiltered owner.
func (r *Ring) OwnerAmong(key string, alive func(string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	at := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= at })
	for off := 0; off < len(r.points); off++ {
		owner := r.owners[(start+off)%len(r.points)]
		if alive == nil || alive(owner) {
			return owner
		}
	}
	return r.owners[start%len(r.points)]
}

// AssignBounded maps every key to a live node with consistent hashing under
// a load bound (the "bounded loads" refinement): each key walks clockwise
// from its hash, skipping dead nodes and nodes already holding
// ceil(K/E) keys. Plain ownership is fine when keys vastly outnumber nodes,
// but a sweep plan has only a handful of shard keys — with two benchmarks
// on two daemons, a coin flip of raw ownership clumps both onto one node,
// and a cold fleet then herds onto the same artifacts. The bound guarantees
// spread (no node gets more than its fair ceiling) while inheriting the
// ring's properties: assignment is a pure function of (key set, node set),
// and most keys keep their unbounded owner, so churn on membership change
// stays near minimal. Keys are processed in sorted order for determinism;
// with no live node the unfiltered single-key owner is used.
func (r *Ring) AssignBounded(keys []string, alive func(string) bool) map[string]string {
	assign := make(map[string]string, len(keys))
	if len(r.points) == 0 {
		return assign
	}
	uniq := make([]string, 0, len(keys))
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, k)
		}
	}
	sort.Strings(uniq)
	liveNodes := 0
	for _, n := range r.nodes {
		if alive == nil || alive(n) {
			liveNodes++
		}
	}
	if liveNodes == 0 {
		for _, k := range uniq {
			assign[k] = r.OwnerAmong(k, nil)
		}
		return assign
	}
	capPer := (len(uniq) + liveNodes - 1) / liveNodes
	load := make(map[string]int, liveNodes)
	for _, k := range uniq {
		at := ringHash(k)
		start := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= at })
		owner := ""
		for off := 0; off < len(r.points); off++ {
			n := r.owners[(start+off)%len(r.points)]
			if (alive == nil || alive(n)) && load[n] < capPer {
				owner = n
				break
			}
		}
		if owner == "" { // every live node at the cap (can't happen, but stay total)
			owner = r.OwnerAmong(k, alive)
		}
		load[owner]++
		assign[k] = owner
	}
	return assign
}

// FprintRing renders the plan's ring assignment for -dry-run: every shard
// key with its owning node, then the per-node virtual-point (replica) counts
// and owned-key totals.
func (p Plan) FprintRing(w io.Writer) {
	if p.Ring == nil {
		return
	}
	fmt.Fprintf(w, "ring: %d nodes, %d replicas per node, %d virtual points\n",
		len(p.Ring.Nodes()), p.Ring.Replicas(), len(p.Ring.points))
	keyCount := make(map[string]int)
	seen := make(map[string]bool)
	for _, b := range p.Batches {
		if seen[b.Key] {
			continue
		}
		seen[b.Key] = true
		keyCount[b.Affinity]++
		fmt.Fprintf(w, "  key %-24s -> %s\n", b.Key, b.Affinity)
	}
	for _, n := range p.Ring.Nodes() {
		fmt.Fprintf(w, "  node %-24s %d replicas, %d keys\n", n, p.Ring.Replicas(), keyCount[n])
	}
}
