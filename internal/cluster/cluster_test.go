package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"intervalsim/internal/core"
	"intervalsim/internal/experiments"
	"intervalsim/internal/overlay"
	"intervalsim/internal/service"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// bootDaemon starts an in-process intervalsimd behind httptest, optionally
// wrapping its handler (fault injection), with draining cleanup.
func bootDaemon(t *testing.T, opts service.Options, wrap func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	s := service.New(opts)
	h := s.Handler()
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck // fault-injected daemons may be mid-kill
	})
	return ts
}

// referenceCSV computes what single-process cmd/sweep would print for the
// grid: same simulation, same decomposition, same format verbs. The
// distributed sweep must match it byte for byte.
func referenceCSV(t *testing.T, bench string, widths, depths, robs []int, insts int, warmup uint64) string {
	t.Helper()
	wc, ok := workload.SuiteConfig(bench)
	if !ok {
		t.Fatalf("unknown benchmark %q", bench)
	}
	tr, soa, err := experiments.SharedTrace(wc, insts)
	if err != nil {
		t.Fatal(err)
	}
	base := uarch.Baseline()
	ov, err := overlay.Shared.Get(soa, base.Pred, base.Mem)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(strings.Join(simHeaders, ",") + "\n")
	for _, w := range widths {
		for _, d := range depths {
			for _, r := range robs {
				cfg := experiments.Point(w, d, r)
				res, err := uarch.Run(soa.Reader(), cfg, uarch.Options{
					RecordMispredicts: true,
					RecordLoadLevels:  true,
					WarmupInsts:       warmup,
					Overlay:           ov,
				})
				if err != nil {
					t.Fatal(err)
				}
				dec, err := core.NewDecomposer(tr, res)
				if err != nil {
					t.Fatal(err)
				}
				m := core.Mean(dec.DecomposeAll())
				fmt.Fprintf(&b, "%d,%d,%d,%.3f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n",
					cfg.DispatchWidth, cfg.FrontendDepth, cfg.ROBSize,
					res.IPC(), m.Total, m.Frontend, m.BaseILP, m.FULatency, m.ShortDMiss, m.LongDMiss)
			}
		}
	}
	return b.String()
}

// TestRunMatchesSingleProcess is the core acceptance gate: a sweep sharded
// over two daemons merges to exactly the bytes cmd/sweep would emit.
func TestRunMatchesSingleProcess(t *testing.T) {
	a := bootDaemon(t, service.Options{Workers: 2}, nil)
	b := bootDaemon(t, service.Options{Workers: 2}, nil)

	widths, depths, robs := []int{2, 4}, []int{3}, []int{64, 128}
	const insts, warmup = 20_000, 4_000

	var buf bytes.Buffer
	sink := NewCSVSink(&buf, "sim", false)
	rs, err := Run(context.Background(), Options{
		Endpoints:  []string{a.URL, b.URL},
		Benches:    []string{"gzip"},
		Widths:     widths,
		Depths:     depths,
		ROBs:       robs,
		Insts:      insts,
		Warmup:     warmup,
		BatchSize:  1,
		StealAfter: -1, // pure scheduling, no steals
		KeepGoing:  true,
		Logf:       t.Logf,
	}, sink.Emit)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Finish(); err != nil {
		t.Fatal(err)
	}
	if rs.OK != 4 || rs.Failed != 0 || rs.Stolen != 0 {
		t.Fatalf("stats = %+v, want 4 ok", rs)
	}

	want := referenceCSV(t, "gzip", widths, depths, robs, insts, warmup)
	if got := buf.String(); got != want {
		t.Errorf("distributed CSV differs from single-process reference:\ngot:\n%swant:\n%s", got, want)
	}

	// Both nodes contributed and the fleet summary renders their stats.
	points := 0
	for _, n := range rs.Nodes {
		points += n.Points
	}
	if points != 4 {
		t.Fatalf("node points sum to %d, want 4", points)
	}
	var sum strings.Builder
	rs.FprintSummary(&sum)
	if !strings.Contains(sum.String(), "4 points (4 ok, 0 failed)") {
		t.Errorf("summary missing totals:\n%s", sum.String())
	}
}

// killWriter aborts the response (dropping the TCP connection) the moment
// the kill switch flips, emulating a daemon dying mid-stream.
type killWriter struct {
	w    http.ResponseWriter
	dead *atomic.Bool
}

func (kw *killWriter) Header() http.Header { return kw.w.Header() }

func (kw *killWriter) WriteHeader(code int) {
	if kw.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	kw.w.WriteHeader(code)
}

func (kw *killWriter) Write(b []byte) (int, error) {
	if kw.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	return kw.w.Write(b)
}

func (kw *killWriter) Flush() {
	if kw.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	if f, ok := kw.w.(http.Flusher); ok {
		f.Flush()
	}
}

// TestRunSurvivesKilledDaemon kills one of two daemons shortly after it
// starts serving batches. The sweep must complete with output byte-identical
// to the single-process reference: the dead node's shards are re-dispatched
// and any points it already streamed are deduplicated, not duplicated.
func TestRunSurvivesKilledDaemon(t *testing.T) {
	var dead atomic.Bool
	var sawBatch atomic.Bool
	a := bootDaemon(t, service.Options{Workers: 2}, nil)
	b := bootDaemon(t, service.Options{Workers: 2}, func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if dead.Load() {
				panic(http.ErrAbortHandler)
			}
			if r.URL.Path == "/v1/batch" && sawBatch.CompareAndSwap(false, true) {
				// Die mid-sweep: shortly after the first shard arrives.
				go func() {
					time.Sleep(10 * time.Millisecond)
					dead.Store(true)
				}()
			}
			inner.ServeHTTP(&killWriter{w: w, dead: &dead}, r)
		})
	})

	widths, depths, robs := []int{2, 4, 8}, []int{3}, []int{64, 128, 256}
	const insts, warmup = 10_000, 2_000

	var buf bytes.Buffer
	sink := NewCSVSink(&buf, "sim", false)
	rs, err := Run(context.Background(), Options{
		Endpoints:  []string{a.URL, b.URL},
		Benches:    []string{"gzip"},
		Widths:     widths,
		Depths:     depths,
		ROBs:       robs,
		Insts:      insts,
		Warmup:     warmup,
		BatchSize:  1,
		Retries:    1,
		StealAfter: 100 * time.Millisecond,
		KeepGoing:  true,
		Logf:       t.Logf,
	}, sink.Emit)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Finish(); err != nil {
		t.Fatal(err)
	}
	if !sawBatch.Load() {
		t.Fatal("victim daemon never received a batch; kill scenario did not happen")
	}
	if rs.OK != 9 || rs.Failed != 0 {
		t.Fatalf("stats = %+v, want 9 ok", rs)
	}

	want := referenceCSV(t, "gzip", widths, depths, robs, insts, warmup)
	if got := buf.String(); got != want {
		t.Errorf("CSV after killing a daemon differs from reference:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestRunStealsFromSlowNode races the work-stealing commit path for real:
// one daemon buffers each batch response and sits on it for 400ms, so the
// fast node steals its in-flight shards, and the slow copies complete later
// and lose at the merger. With -race this is the end-to-end exactly-once
// gate; the output must still match the single-process reference exactly.
func TestRunStealsFromSlowNode(t *testing.T) {
	a := bootDaemon(t, service.Options{Workers: 2}, nil)
	b := bootDaemon(t, service.Options{Workers: 2}, func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/v1/batch" {
				inner.ServeHTTP(w, r)
				return
			}
			// Compute now, deliver late: the whole response lands after the
			// steal window, long after the thief committed the same points.
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			time.Sleep(400 * time.Millisecond)
			for k, vs := range rec.Header() {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(rec.Code)
			w.Write(rec.Body.Bytes()) //nolint:errcheck
		})
	})

	widths, depths, robs := []int{2, 4, 8}, []int{3}, []int{64, 128}
	const insts, warmup = 10_000, 2_000

	var buf bytes.Buffer
	sink := NewCSVSink(&buf, "sim", false)
	rs, err := Run(context.Background(), Options{
		Endpoints:  []string{a.URL, b.URL},
		Benches:    []string{"gzip"},
		Widths:     widths,
		Depths:     depths,
		ROBs:       robs,
		Insts:      insts,
		Warmup:     warmup,
		BatchSize:  1,
		StealAfter: 50 * time.Millisecond,
		KeepGoing:  true,
		Logf:       t.Logf,
	}, sink.Emit)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Finish(); err != nil {
		t.Fatal(err)
	}
	if rs.OK != 6 || rs.Failed != 0 {
		t.Fatalf("stats = %+v, want 6 ok", rs)
	}
	if rs.Stolen == 0 {
		t.Error("no steals despite a 400ms-delayed node and a 50ms steal age")
	}

	want := referenceCSV(t, "gzip", widths, depths, robs, insts, warmup)
	if got := buf.String(); got != want {
		t.Errorf("CSV under work stealing differs from reference:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestRunFailSoftPoints: per-point failures (here: timeouts) are fail-soft
// with -keep-going — every completable row is still merged, the failures are
// counted, and Run reports an error at the end rather than aborting.
func TestRunFailSoftPoints(t *testing.T) {
	a := bootDaemon(t, service.Options{Workers: 2}, nil)

	run := func(keepGoing bool) (*RunStats, error) {
		return Run(context.Background(), Options{
			Endpoints:    []string{a.URL},
			Benches:      []string{"mcf"},
			Widths:       []int{2, 4},
			Depths:       []int{3},
			ROBs:         []int{64},
			Insts:        2_000_000,
			Warmup:       1_000,
			PointTimeout: time.Millisecond, // far below the work
			BatchSize:    1,
			StealAfter:   -1,
			KeepGoing:    keepGoing,
			Logf:         t.Logf,
		}, func(*Row) error { return nil })
	}

	rs, err := run(true)
	if err == nil || !strings.Contains(err.Error(), "design points failed") {
		t.Fatalf("keep-going error = %v, want design-points-failed", err)
	}
	if rs.Failed != 2 || rs.OK != 0 {
		t.Fatalf("stats = %+v, want 2 failed", rs)
	}

	_, err = run(false)
	if err == nil {
		t.Fatal("fail-fast run returned nil error")
	}
}

// TestRunNoHealthyEndpoints: a fleet where nothing answers /healthz is a
// fast configuration error, not a hang.
func TestRunNoHealthyEndpoints(t *testing.T) {
	_, err := Run(context.Background(), Options{
		Endpoints: []string{"127.0.0.1:1"},
		Benches:   []string{"gzip"},
		Widths:    []int{2},
		Depths:    []int{3},
		ROBs:      []int{64},
		Insts:     1000,
	}, func(*Row) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "no healthy endpoints") {
		t.Fatalf("err = %v, want no-healthy-endpoints", err)
	}
}

// TestClientHonors429 pins the pushback contract from the client side: a 429
// with Retry-After delays the resubmit by the advertised seconds instead of
// hammering the daemon.
func TestClientHonors429(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"queue full"}`)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"seq":0,"width":2,"depth":3,"rob":64,"ipc":1.5}`)
		fmt.Fprintln(w, `{"done":true,"points":1,"ok":1,"failed":0,"mode":"sim","elapsed":"1ms"}`)
	}))
	defer ts.Close()

	start := time.Now()
	var pts []service.BatchPoint
	trailer, err := NewClient(ts.URL).Batch(context.Background(), service.BatchRequest{
		Benchmark: "gzip",
		Points:    []service.BatchPointSpec{{Seq: 0, Width: 2, Depth: 3, ROB: 64}},
	}, func(pt service.BatchPoint) { pts = append(pts, pt) })
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("daemon saw %d requests, want 2 (429 then success)", got)
	}
	if d := time.Since(start); d < 700*time.Millisecond {
		t.Fatalf("resubmitted after %v, want ≥ the advertised 1s (within scheduling slack)", d)
	}
	if trailer.OK != 1 || len(pts) != 1 || pts[0].IPC != 1.5 {
		t.Fatalf("trailer %+v points %+v", trailer, pts)
	}
}

// TestClientIncompleteStream: a stream that dies before its trailer is a
// distinct, retryable error — the dispatcher's signal to re-dispatch.
func TestClientIncompleteStream(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"seq":0,"width":2,"depth":3,"rob":64,"ipc":1.5}`)
		// No trailer: connection ends as if the daemon was killed.
	}))
	defer ts.Close()

	_, err := NewClient(ts.URL).Batch(context.Background(), service.BatchRequest{
		Benchmark: "gzip",
		Points:    []service.BatchPointSpec{{Seq: 0, Width: 2, Depth: 3, ROB: 64}},
	}, func(service.BatchPoint) {})
	if err == nil || !strings.Contains(err.Error(), "without trailer") {
		t.Fatalf("err = %v, want incomplete-stream", err)
	}
}

// TestRunModeValidation pins the mode contract at the cluster layer: unknown
// modes and sampled sweeps missing their phase lengths fail before any
// endpoint is contacted.
func TestRunModeValidation(t *testing.T) {
	base := Options{
		Endpoints: []string{"http://127.0.0.1:1"}, // never dialed
		Benches:   []string{"gzip"},
		Widths:    []int{2}, Depths: []int{3}, ROBs: []int{64},
		Insts: 1000,
	}

	bad := base
	bad.Mode = "turbo"
	if _, err := Run(context.Background(), bad, func(*Row) error { return nil }); err == nil ||
		!strings.Contains(err.Error(), `unknown mode "turbo"`) {
		t.Errorf("unknown mode: err = %v", err)
	}

	samp := base
	samp.Mode = "sampled" // SampleDetailed/SampleSkip left zero
	if _, err := Run(context.Background(), samp, func(*Row) error { return nil }); err == nil ||
		!strings.Contains(err.Error(), "needs positive SampleDetailed and SampleSkip") {
		t.Errorf("sampled without phases: err = %v", err)
	}
}
