package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"intervalsim/internal/service"
)

// respWithRetryAfter fabricates a 429 carrying the given Retry-After header
// (or none, for the empty string).
func respWithRetryAfter(v string) *http.Response {
	h := http.Header{}
	if v != "" {
		h.Set("Retry-After", v)
	}
	return &http.Response{StatusCode: http.StatusTooManyRequests, Header: h}
}

// TestRetryAfterParsing pins the backoff derivation against hostile headers:
// absent, malformed, negative, zero, and fractional values all fall back to
// the 1s floor instead of panicking or spinning, and huge values clamp to
// MaxRetryAfter so one pessimistic daemon cannot wedge a dispatcher.
func TestRetryAfterParsing(t *testing.T) {
	cases := []struct {
		name   string
		header string
		max    time.Duration
		want   time.Duration
	}{
		{"absent", "", 0, time.Second},
		{"malformed word", "soon", 0, time.Second},
		{"malformed fraction", "2.5", 0, time.Second},
		{"http date form", "Fri, 08 Aug 2026 00:00:00 GMT", 0, time.Second},
		{"negative", "-5", 0, time.Second},
		{"zero", "0", 0, time.Second},
		{"in range", "3", 0, 3 * time.Second},
		{"huge clamps to default", "3600", 0, 10 * time.Second},
		{"huge clamps to custom max", "3600", 2 * time.Second, 2 * time.Second},
		{"custom max leaves small alone", "1", 2 * time.Second, time.Second},
	}
	for _, tc := range cases {
		c := &Client{Base: "http://example", MaxRetryAfter: tc.max}
		if got := c.retryAfter(respWithRetryAfter(tc.header)); got != tc.want {
			t.Errorf("%s: retryAfter(%q) = %v, want %v", tc.name, tc.header, got, tc.want)
		}
	}
}

// TestClientRetryAfterAbsentHeader drives the fallback end to end: a 429
// with no Retry-After at all still delays the resubmit by the 1s floor —
// the client never hammers an overloaded daemon just because it forgot (or
// garbled) the header.
func TestClientRetryAfterAbsentHeader(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusTooManyRequests) // no Retry-After
			fmt.Fprintln(w, `{"error":"queue full"}`)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"seq":0,"width":2,"depth":3,"rob":64,"ipc":1.2}`)
		fmt.Fprintln(w, `{"done":true,"points":1,"ok":1,"failed":0,"mode":"sim","elapsed":"1ms"}`)
	}))
	defer ts.Close()

	start := time.Now()
	trailer, err := NewClient(ts.URL).Batch(context.Background(), service.BatchRequest{
		Benchmark: "gzip",
		Points:    []service.BatchPointSpec{{Seq: 0, Width: 2, Depth: 3, ROB: 64}},
	}, func(service.BatchPoint) {})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("daemon saw %d requests, want 2 (429 then success)", got)
	}
	if d := time.Since(start); d < 700*time.Millisecond {
		t.Fatalf("resubmitted after %v, want ≥ the 1s fallback (within scheduling slack)", d)
	}
	if trailer.OK != 1 {
		t.Fatalf("trailer = %+v, want 1 ok", trailer)
	}
}

// TestClientReady pins the readiness probe contract: 200 passes the health
// document through, 503 (recovering or draining) is an error naming the
// advertised status, and a daemon too old to serve /readyz falls back to
// the liveness probe so mixed-version fleets keep working.
func TestClientReady(t *testing.T) {
	var status atomic.Value // string: readyz behavior
	status.Store("ok")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/readyz":
			switch s := status.Load().(string); s {
			case "missing":
				http.NotFound(w, r)
			case "ok":
				fmt.Fprintln(w, `{"status":"ok"}`)
			default:
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, `{"status":%q}`, s)
			}
		case "/healthz":
			fmt.Fprintln(w, `{"status":"ok"}`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()
	c := NewClient(ts.URL)

	if h, err := c.Ready(context.Background()); err != nil || h.Status != "ok" {
		t.Fatalf("ready daemon: (%+v, %v), want ok", h, err)
	}

	for _, s := range []string{"recovering", "draining"} {
		status.Store(s)
		_, err := c.Ready(context.Background())
		if err == nil || !strings.Contains(err.Error(), "not ready") || !strings.Contains(err.Error(), s) {
			t.Fatalf("%s daemon: err = %v, want not-ready naming %q", s, err, s)
		}
	}

	status.Store("missing")
	if h, err := c.Ready(context.Background()); err != nil || h.Status != "ok" {
		t.Fatalf("pre-/readyz daemon: (%+v, %v), want liveness fallback", h, err)
	}
}

// TestRunSkipsRecoveringNode: the fleet prober must not route sweep work at
// a node that is alive but replaying its journals. With the only endpoint
// stuck in "recovering", the sweep fails fast instead of dispatching at a
// node whose admission would race its recovery.
func TestRunSkipsRecoveringNode(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/readyz":
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"recovering"}`)
		case "/healthz":
			fmt.Fprintln(w, `{"status":"ok"}`) // alive, but not routable
		case "/v1/batch":
			t.Error("batch dispatched at a recovering node")
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	_, err := Run(context.Background(), Options{
		Endpoints: []string{ts.URL},
		Benches:   []string{"gzip"},
		Widths:    []int{2},
		Depths:    []int{3},
		ROBs:      []int{64},
		Insts:     1000,
	}, func(*Row) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "no healthy endpoints") {
		t.Fatalf("err = %v, want no-healthy-endpoints", err)
	}
}

// TestRunZeroRowShard: a daemon that answers a shard with a well-formed
// trailer but zero result rows must not be mistaken for success. The merger
// never sees those seqs commit, so the sweep ends with the incomplete-sweep
// error naming the missing points rather than silently emitting a short CSV.
// (The lying daemon serves only /healthz, which also exercises the /readyz
// 404 fallback in the initial probe.)
func TestRunZeroRowShard(t *testing.T) {
	var batches atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			fmt.Fprintln(w, `{"status":"ok"}`)
		case "/v1/batch":
			batches.Add(1)
			w.Header().Set("Content-Type", "application/x-ndjson")
			// Trailer only: the shard's rows vanished.
			fmt.Fprintln(w, `{"done":true,"points":2,"ok":0,"failed":0,"mode":"sim","elapsed":"1ms"}`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	var rows atomic.Int32
	rs, err := Run(context.Background(), Options{
		Endpoints:  []string{ts.URL},
		Benches:    []string{"gzip"},
		Widths:     []int{2, 4},
		Depths:     []int{3},
		ROBs:       []int{64},
		Insts:      1000,
		BatchSize:  2,
		StealAfter: -1,
		KeepGoing:  true,
	}, func(*Row) error { rows.Add(1); return nil })
	if batches.Load() == 0 {
		t.Fatal("fake daemon never saw a batch")
	}
	if rows.Load() != 0 {
		t.Fatalf("%d rows emitted from a zero-row shard, want 0", rows.Load())
	}
	if err == nil || !strings.Contains(err.Error(), "sweep incomplete") {
		t.Fatalf("err = %v, want sweep-incomplete", err)
	}
	if !strings.Contains(err.Error(), "2 of 2 points never committed (first missing seq 0)") {
		t.Fatalf("err = %v, want it to name the 2 missing points starting at seq 0", err)
	}
	if rs.OK != 0 || rs.Failed != 0 {
		t.Fatalf("stats = %+v, want nothing committed", rs)
	}
}
