package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"intervalsim/internal/service"
)

func planSeqs(p Plan) []int {
	var seqs []int
	for _, b := range p.Batches {
		for _, sp := range b.Specs {
			seqs = append(seqs, sp.Seq)
		}
	}
	return seqs
}

// TestBuildPlanCanonicalOrder: sequence numbers enumerate benchmark-major,
// then width, depth, rob — cmd/sweep's grid order.
func TestBuildPlanCanonicalOrder(t *testing.T) {
	p, err := BuildPlan([]string{"a"}, []string{"gzip", "gcc"}, []int{2, 4}, []int{3}, []int{64, 128}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Points != 8 {
		t.Fatalf("points = %d, want 8", p.Points)
	}
	for i, seq := range planSeqs(p) {
		if seq != i {
			t.Fatalf("seq at %d = %d, want contiguous canonical order", i, seq)
		}
	}
	// First point of the second benchmark starts a fresh batch: batches
	// never span benchmarks, or shard affinity would be meaningless.
	want := [][2]interface{}{{0, "gzip"}, {1, "gzip"}, {2, "gcc"}, {3, "gcc"}}
	if len(p.Batches) != len(want) {
		t.Fatalf("batches = %d, want %d", len(p.Batches), len(want))
	}
	for i, b := range p.Batches {
		if b.ID != want[i][0] || b.Bench != want[i][1] {
			t.Fatalf("batch %d = {%d %s}, want %v", i, b.ID, b.Bench, want[i])
		}
	}
	// Spot-check the knob mapping of the first two points.
	if sp := p.Batches[0].Specs[0]; sp.Width != 2 || sp.Depth != 3 || sp.ROB != 64 {
		t.Fatalf("seq 0 = %+v", sp)
	}
	if sp := p.Batches[0].Specs[1]; sp.Width != 2 || sp.Depth != 3 || sp.ROB != 128 {
		t.Fatalf("seq 1 = %+v", sp)
	}
}

// TestBuildPlanAffinity: with benchmarks ≥ endpoints each benchmark is one
// shard key whose batches all share one owner; with fewer benchmarks each
// benchmark splits into config groups so keys cover the fleet. Affinities
// come from the bounded-load ring assignment, so no endpoint holds more than
// its fair ceiling of keys and every endpoint gets work.
func TestBuildPlanAffinity(t *testing.T) {
	// 3 benches over 2 endpoints: one key per benchmark, cap ceil(3/2)=2.
	p, err := BuildPlan([]string{"a", "b"}, []string{"x", "y", "z"}, []int{2}, []int{3}, []int{64, 128}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	eps := map[string]bool{"a": true, "b": true}
	byBench := map[string]string{}
	for _, b := range p.Batches {
		if b.Key != b.Bench+"#g0" {
			t.Fatalf("bench %s batch key = %q, want %q", b.Bench, b.Key, b.Bench+"#g0")
		}
		if !eps[b.Affinity] {
			t.Fatalf("bench %s affinity = %q, not an endpoint", b.Bench, b.Affinity)
		}
		if prev, ok := byBench[b.Bench]; ok && prev != b.Affinity {
			t.Fatalf("bench %s batches split across %s and %s; one key must own them all",
				b.Bench, prev, b.Affinity)
		}
		byBench[b.Bench] = b.Affinity
	}
	load := map[string]int{}
	for _, owner := range byBench {
		load[owner]++
	}
	for ep := range eps {
		if load[ep] < 1 || load[ep] > 2 {
			t.Fatalf("endpoint %s owns %d of 3 keys; bounded assignment wants 1–2 (load %v)", ep, load[ep], load)
		}
	}
	// 1 bench over 3 endpoints: ceil(E/B)=3 config groups so every node can
	// own a key; batches cycle the group keys, and with cap ceil(3/3)=1 each
	// endpoint owns exactly one.
	p, err = BuildPlan([]string{"a", "b", "c"}, []string{"x"}, []int{2, 4, 8}, []int{3}, []int{64}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	owners := map[string]bool{}
	for i, b := range p.Batches {
		want := fmt.Sprintf("x#g%d", i%3)
		if b.Key != want {
			t.Fatalf("batch %d key = %q, want %q", i, b.Key, want)
		}
		owners[b.Affinity] = true
	}
	if len(p.Batches) != 3 {
		t.Fatalf("batches = %d, want 3", len(p.Batches))
	}
	if len(owners) != 3 {
		t.Fatalf("3 keys over 3 endpoints landed on %d owners %v; bounded assignment wants all three", len(owners), owners)
	}
}

// TestBuildPlanAutoBatchSize: the default gives each endpoint several
// batches so stealing has units to move.
func TestBuildPlanAutoBatchSize(t *testing.T) {
	p, err := BuildPlan([]string{"a", "b"}, []string{"x"}, []int{2, 4, 8}, []int{3, 7, 11}, []int{64, 128, 256}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 27 points, 2 endpoints: default size 27/8 = 3 → 9 batches.
	if len(p.Batches) != 9 {
		t.Fatalf("batches = %d, want 9", len(p.Batches))
	}
	var sb strings.Builder
	p.Fprint(&sb)
	if !strings.Contains(sb.String(), "27 points, 9 batches") {
		t.Fatalf("plan dump missing summary:\n%s", sb.String())
	}
}

// TestSchedulerAffinityPendingSteal walks the scheduler's preference order
// with a fake clock: affinity match, then any pending, then stealing an
// in-flight batch past the steal age.
func TestSchedulerAffinityPendingSteal(t *testing.T) {
	// Hand-built plan with explicit affinities: the test exercises the
	// scheduler's preference order, not the ring's hash placement.
	p := Plan{Batches: []Batch{
		{ID: 0, Bench: "x", Key: "x#g0", Affinity: "a",
			Specs: []service.BatchPointSpec{{Seq: 0, Width: 2, Depth: 3, ROB: 64}}},
		{ID: 1, Bench: "y", Key: "y#g0", Affinity: "b",
			Specs: []service.BatchPointSpec{{Seq: 1, Width: 2, Depth: 3, ROB: 64}}},
	}}
	s := newScheduler(p, 100*time.Millisecond)
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }

	// Affinity first: b's runner gets bench y even though x's batch is at
	// the head of the queue.
	st := s.next("b")
	if st == nil || st.Bench != "y" {
		t.Fatalf("next(b) = %+v, want bench y", st)
	}
	// Any pending second: b takes x's batch when nothing matches.
	s.complete(st)
	st2 := s.next("b")
	if st2 == nil || st2.Bench != "x" {
		t.Fatalf("next(b) = %+v, want bench x", st2)
	}

	// Steal third: with nothing pending, a's runner waits until x's batch
	// ages past stealAfter, then steals it.
	now = now.Add(200 * time.Millisecond)
	stolen := s.steal()
	if stolen != st2 {
		t.Fatalf("steal = %+v, want the in-flight batch", stolen)
	}
	if stolen.runners != 2 {
		t.Fatalf("runners = %d, want 2 after steal", stolen.runners)
	}
	// The steal clock reset: an immediate second steal finds nothing.
	if again := s.steal(); again != nil {
		t.Fatalf("second immediate steal = %+v, want nil", again)
	}

	// First completion wins; the duplicate's completion is a no-op.
	s.complete(st2)
	s.complete(st2)
	if done, total, nStolen := s.stats(); done != 2 || total != 2 || nStolen != 1 {
		t.Fatalf("stats = %d/%d stolen %d, want 2/2 stolen 1", done, total, nStolen)
	}
	if st3 := s.next("a"); st3 != nil {
		t.Fatalf("next after all done = %+v, want nil", st3)
	}
}

// TestSchedulerRequeueOnLastFailure: a batch whose every runner failed goes
// back on the pending queue for the fleet.
func TestSchedulerRequeueOnLastFailure(t *testing.T) {
	p, err := BuildPlan([]string{"a"}, []string{"x"}, []int{2}, []int{3}, []int{64}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newScheduler(p, -1) // stealing off
	st := s.next("a")
	if st == nil {
		t.Fatal("no batch")
	}
	s.fail(st)
	st2 := s.next("b")
	if st2 != st {
		t.Fatalf("requeued batch not handed out: %+v", st2)
	}
	if st2.attempts != 2 {
		t.Fatalf("attempts = %d, want 2", st2.attempts)
	}
	s.complete(st2)
	if st3 := s.next("a"); st3 != nil {
		t.Fatalf("next after done = %+v, want nil", st3)
	}
}
