package cluster

import (
	"strings"
	"testing"
	"time"
)

func planSeqs(p Plan) []int {
	var seqs []int
	for _, b := range p.Batches {
		for _, sp := range b.Specs {
			seqs = append(seqs, sp.Seq)
		}
	}
	return seqs
}

// TestBuildPlanCanonicalOrder: sequence numbers enumerate benchmark-major,
// then width, depth, rob — cmd/sweep's grid order.
func TestBuildPlanCanonicalOrder(t *testing.T) {
	p, err := BuildPlan([]string{"a"}, []string{"gzip", "gcc"}, []int{2, 4}, []int{3}, []int{64, 128}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Points != 8 {
		t.Fatalf("points = %d, want 8", p.Points)
	}
	for i, seq := range planSeqs(p) {
		if seq != i {
			t.Fatalf("seq at %d = %d, want contiguous canonical order", i, seq)
		}
	}
	// First point of the second benchmark starts a fresh batch: batches
	// never span benchmarks, or shard affinity would be meaningless.
	want := [][2]interface{}{{0, "gzip"}, {1, "gzip"}, {2, "gcc"}, {3, "gcc"}}
	if len(p.Batches) != len(want) {
		t.Fatalf("batches = %d, want %d", len(p.Batches), len(want))
	}
	for i, b := range p.Batches {
		if b.ID != want[i][0] || b.Bench != want[i][1] {
			t.Fatalf("batch %d = {%d %s}, want %v", i, b.ID, b.Bench, want[i])
		}
	}
	// Spot-check the knob mapping of the first two points.
	if sp := p.Batches[0].Specs[0]; sp.Width != 2 || sp.Depth != 3 || sp.ROB != 64 {
		t.Fatalf("seq 0 = %+v", sp)
	}
	if sp := p.Batches[0].Specs[1]; sp.Width != 2 || sp.Depth != 3 || sp.ROB != 128 {
		t.Fatalf("seq 1 = %+v", sp)
	}
}

// TestBuildPlanAffinity: with benchmarks ≥ endpoints each benchmark pins to
// one node; with fewer benchmarks each gets a group and round-robins in it.
func TestBuildPlanAffinity(t *testing.T) {
	// 3 benches over 2 endpoints: i mod E.
	p, err := BuildPlan([]string{"a", "b"}, []string{"x", "y", "z"}, []int{2}, []int{3}, []int{64, 128}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range p.Batches {
		want := map[string]string{"x": "a", "y": "b", "z": "a"}[b.Bench]
		if b.Affinity != want {
			t.Fatalf("bench %s batch affinity = %s, want %s", b.Bench, b.Affinity, want)
		}
	}
	// 1 bench over 3 endpoints: batches round-robin the whole fleet.
	p, err = BuildPlan([]string{"a", "b", "c"}, []string{"x"}, []int{2, 4, 8}, []int{3}, []int{64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := []string{p.Batches[0].Affinity, p.Batches[1].Affinity, p.Batches[2].Affinity}
	if strings.Join(got, ",") != "a,b,c" {
		t.Fatalf("round-robin affinities = %v", got)
	}
}

// TestBuildPlanAutoBatchSize: the default gives each endpoint several
// batches so stealing has units to move.
func TestBuildPlanAutoBatchSize(t *testing.T) {
	p, err := BuildPlan([]string{"a", "b"}, []string{"x"}, []int{2, 4, 8}, []int{3, 7, 11}, []int{64, 128, 256}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 27 points, 2 endpoints: default size 27/8 = 3 → 9 batches.
	if len(p.Batches) != 9 {
		t.Fatalf("batches = %d, want 9", len(p.Batches))
	}
	var sb strings.Builder
	p.Fprint(&sb)
	if !strings.Contains(sb.String(), "27 points, 9 batches") {
		t.Fatalf("plan dump missing summary:\n%s", sb.String())
	}
}

// TestSchedulerAffinityPendingSteal walks the scheduler's preference order
// with a fake clock: affinity match, then any pending, then stealing an
// in-flight batch past the steal age.
func TestSchedulerAffinityPendingSteal(t *testing.T) {
	p, err := BuildPlan([]string{"a", "b"}, []string{"x", "y"}, []int{2}, []int{3}, []int{64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := newScheduler(p, 100*time.Millisecond)
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }

	// Affinity first: b's runner gets bench y even though x's batch is at
	// the head of the queue.
	st := s.next("b")
	if st == nil || st.Bench != "y" {
		t.Fatalf("next(b) = %+v, want bench y", st)
	}
	// Any pending second: b takes x's batch when nothing matches.
	s.complete(st)
	st2 := s.next("b")
	if st2 == nil || st2.Bench != "x" {
		t.Fatalf("next(b) = %+v, want bench x", st2)
	}

	// Steal third: with nothing pending, a's runner waits until x's batch
	// ages past stealAfter, then steals it.
	now = now.Add(200 * time.Millisecond)
	stolen := s.steal()
	if stolen != st2 {
		t.Fatalf("steal = %+v, want the in-flight batch", stolen)
	}
	if stolen.runners != 2 {
		t.Fatalf("runners = %d, want 2 after steal", stolen.runners)
	}
	// The steal clock reset: an immediate second steal finds nothing.
	if again := s.steal(); again != nil {
		t.Fatalf("second immediate steal = %+v, want nil", again)
	}

	// First completion wins; the duplicate's completion is a no-op.
	s.complete(st2)
	s.complete(st2)
	if done, total, nStolen := s.stats(); done != 2 || total != 2 || nStolen != 1 {
		t.Fatalf("stats = %d/%d stolen %d, want 2/2 stolen 1", done, total, nStolen)
	}
	if st3 := s.next("a"); st3 != nil {
		t.Fatalf("next after all done = %+v, want nil", st3)
	}
}

// TestSchedulerRequeueOnLastFailure: a batch whose every runner failed goes
// back on the pending queue for the fleet.
func TestSchedulerRequeueOnLastFailure(t *testing.T) {
	p, err := BuildPlan([]string{"a"}, []string{"x"}, []int{2}, []int{3}, []int{64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := newScheduler(p, -1) // stealing off
	st := s.next("a")
	if st == nil {
		t.Fatal("no batch")
	}
	s.fail(st)
	st2 := s.next("b")
	if st2 != st {
		t.Fatalf("requeued batch not handed out: %+v", st2)
	}
	if st2.attempts != 2 {
		t.Fatalf("attempts = %d, want 2", st2.attempts)
	}
	s.complete(st2)
	if st3 := s.next("a"); st3 != nil {
		t.Fatalf("next after done = %+v, want nil", st3)
	}
}
