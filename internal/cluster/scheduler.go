package cluster

import (
	"fmt"
	"io"
	"sync"
	"time"

	"intervalsim/internal/service"
)

// Batch is one shard of a sweep: a contiguous run of design points from a
// single benchmark's grid, carrying the coordinator's global sequence
// numbers so results merge back into canonical order no matter which node
// computes them.
type Batch struct {
	ID    int
	Bench string
	// Key is the batch's consistent-hash shard key: the benchmark plus its
	// config group. Affinity is derived from it (Ring.Owner), and re-derived
	// against the surviving ring when a node dies.
	Key string
	// Affinity is the endpoint this batch prefers — the ring owner of Key.
	// A shard key groups a benchmark's batches, so each daemon decodes and
	// packs the benchmark's trace (and builds its miss-event overlay) once
	// and then serves the rest of that benchmark's shards from its caches.
	// Affinity is a preference, not an assignment: an idle node takes any
	// pending batch, and a stalled batch is stolen outright.
	Affinity string
	Specs    []service.BatchPointSpec
}

// Plan is the sharding of a sweep across a fleet: every design point of
// every benchmark, exactly once, in batches keyed by workload, with
// affinities assigned by the consistent-hash ring over the endpoints.
type Plan struct {
	Batches   []Batch
	Benches   []string
	Endpoints []string
	Ring      *Ring
	Points    int // total design points across all batches
}

// BuildPlan shards the cross product of benches × widths × depths × robs
// over the endpoints. Global sequence numbers follow canonical sweep order —
// benchmark-major, then width, depth, rob, exactly cmd/sweep's grid order —
// so the merged output of a distributed run is comparable (for a single
// benchmark: byte-identical) to a single-process sweep.
//
// Affinity comes from the consistent-hash ring over the endpoints: each
// batch carries a shard key — its benchmark plus a config group — and
// prefers the bounded-load ring assignment of that key (Ring.AssignBounded:
// clockwise ownership, but no node takes more than its fair ceiling of
// keys, so a small key set still spreads over the fleet). With at least as
// many benchmarks as endpoints, each benchmark is one key (one owner packs
// its trace). With fewer benchmarks, each benchmark's batches round-robin
// over ceil(E/B) group keys so every node can stay busy while still seeing
// few distinct traces. Ownership is a preference: the work-stealing
// scheduler and (on node death) ring-successor reassignment move shards
// freely, and peer cache fills keep a moved shard from recomputing its
// artifacts.
//
// ringReplicas is the virtual-node count per endpoint (<= 0 selects the
// default). batchSize 0 picks a default that gives each endpoint several
// batches (total/(4·E), floored at 1): small enough that work stealing has
// units to move when a node slows down, large enough to amortize per-shard
// dispatch and trace-resolution costs.
func BuildPlan(endpoints, benches []string, widths, depths, robs []int, batchSize, ringReplicas int) (Plan, error) {
	if len(endpoints) == 0 {
		return Plan{}, fmt.Errorf("cluster: no endpoints")
	}
	if len(benches) == 0 {
		return Plan{}, fmt.Errorf("cluster: no benchmarks")
	}
	if len(widths) == 0 || len(depths) == 0 || len(robs) == 0 {
		return Plan{}, fmt.Errorf("cluster: empty sweep axis")
	}
	perBench := len(widths) * len(depths) * len(robs)
	total := perBench * len(benches)
	if batchSize <= 0 {
		batchSize = total / (4 * len(endpoints))
		if batchSize < 1 {
			batchSize = 1
		}
	}

	ring := NewRing(endpoints, ringReplicas)
	// Config groups per benchmark: one when benchmarks cover the fleet,
	// ceil(E/B) when there are spare endpoints, so the key count is at least
	// the endpoint count and work can spread.
	ngroups := 1
	if len(benches) < len(endpoints) {
		ngroups = (len(endpoints) + len(benches) - 1) / len(benches)
	}

	plan := Plan{Benches: benches, Endpoints: endpoints, Ring: ring, Points: total}
	seq := 0
	var keys []string
	for _, bench := range benches {
		var specs []service.BatchPointSpec
		slot := 0
		flush := func() {
			if len(specs) == 0 {
				return
			}
			key := fmt.Sprintf("%s#g%d", bench, slot%ngroups)
			keys = append(keys, key)
			plan.Batches = append(plan.Batches, Batch{
				ID:    len(plan.Batches),
				Bench: bench,
				Key:   key,
				Specs: specs,
			})
			slot++
			specs = nil
		}
		for _, w := range widths {
			for _, d := range depths {
				for _, r := range robs {
					specs = append(specs, service.BatchPointSpec{Seq: seq, Width: w, Depth: d, ROB: r})
					seq++
					if len(specs) == batchSize {
						flush()
					}
				}
			}
		}
		flush()
	}
	assign := ring.AssignBounded(keys, nil)
	for i := range plan.Batches {
		plan.Batches[i].Affinity = assign[plan.Batches[i].Key]
	}
	return plan, nil
}

// Fprint renders the shard plan for -dry-run: what would be dispatched
// where, without touching any daemon.
func (p Plan) Fprint(w io.Writer) {
	fmt.Fprintf(w, "plan: %d points, %d batches, %d benchmarks, %d endpoints\n",
		p.Points, len(p.Batches), len(p.Benches), len(p.Endpoints))
	for _, b := range p.Batches {
		first, last := b.Specs[0].Seq, b.Specs[len(b.Specs)-1].Seq
		fmt.Fprintf(w, "  batch %3d  %-10s -> %-24s %3d points  seq [%d..%d]\n",
			b.ID, b.Bench, b.Affinity, len(b.Specs), first, last)
	}
}

// batchState tracks one batch through the runtime scheduler.
type batchState struct {
	Batch
	inflight bool
	done     bool
	runners  int       // concurrent dispatches (>1 once stolen)
	started  time.Time // most recent dispatch, the steal clock
	attempts int
}

// scheduler hands batches to per-endpoint runners. It is the work-stealing
// half of the design: affinity first, then any pending work, and when
// nothing is pending an idle runner steals a batch that has been in flight
// longer than stealAfter — the slow or dead node's dispatch keeps running,
// and whichever copy finishes first wins at the merger.
type scheduler struct {
	mu         sync.Mutex
	cond       *sync.Cond
	all        []*batchState
	pending    []*batchState
	stealAfter time.Duration
	now        func() time.Time
	completed  int
	stolen     int
	stopped    bool

	// Per-shard-key cold-herd accounting: how many of a key's batches have
	// completed (the key is "warm" once any did — its owner has the trace
	// and overlay resident and serves peer fills), and how many are in
	// flight right now. A runner falling back to non-affinity work skips a
	// cold key that another node is already pioneering, so a cold fleet
	// never duplicates an expensive artifact computation out of impatience;
	// the steal path (demonstrably slow or dead pioneer) still overrides.
	keyDone     map[string]int
	keyInflight map[string]int
}

func newScheduler(plan Plan, stealAfter time.Duration) *scheduler {
	s := &scheduler{
		stealAfter:  stealAfter,
		now:         time.Now,
		keyDone:     make(map[string]int),
		keyInflight: make(map[string]int),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range plan.Batches {
		st := &batchState{Batch: plan.Batches[i]}
		s.all = append(s.all, st)
		s.pending = append(s.pending, st)
	}
	return s
}

// next blocks until there is work for endpoint, all batches are done, or the
// scheduler is stopped; it returns nil in the latter two cases. Preference
// order: a pending batch with matching affinity, any pending batch, then the
// longest-in-flight stealable batch.
func (s *scheduler) next(endpoint string) *batchState {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped || s.completed == len(s.all) {
			return nil
		}
		if st := s.takePending(endpoint); st != nil {
			return st
		}
		if st := s.steal(); st != nil {
			return st
		}
		s.cond.Wait()
	}
}

// takePending pops the first affinity match, falling back to the first
// pending batch whose shard key is safe to take: warm (some batch of it
// already completed, so its artifacts are fill-servable) or entirely idle
// (no batch in flight — this runner becomes the key's pioneer). A cold key
// another node is actively pioneering is skipped; racing it would duplicate
// the trace and overlay computation peer fills exist to avoid. Caller
// holds mu.
func (s *scheduler) takePending(endpoint string) *batchState {
	pick := -1
	for i, st := range s.pending {
		if st.Affinity == endpoint {
			pick = i
			break
		}
	}
	if pick < 0 {
		for i, st := range s.pending {
			if s.keyDone[st.Key] > 0 || s.keyInflight[st.Key] == 0 {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		return nil
	}
	st := s.pending[pick]
	s.pending = append(s.pending[:pick], s.pending[pick+1:]...)
	st.inflight = true
	s.keyInflight[st.Key]++
	st.runners++
	st.started = s.now()
	st.attempts++
	return st
}

// steal returns the longest-running in-flight batch past the steal age, if
// any. Dispatching the thief resets the steal clock, so a third node waits
// another full stealAfter before piling on. Caller holds mu.
func (s *scheduler) steal() *batchState {
	if s.stealAfter <= 0 {
		return nil
	}
	var pick *batchState
	now := s.now()
	for _, st := range s.all {
		if !st.inflight || st.done || now.Sub(st.started) < s.stealAfter {
			continue
		}
		if pick == nil || st.started.Before(pick.started) {
			pick = st
		}
	}
	if pick == nil {
		return nil
	}
	pick.runners++
	pick.started = now
	pick.attempts++
	s.stolen++
	return pick
}

// complete reports a dispatch that finished its batch. Only the first
// completion counts; a stolen copy finishing later is a no-op here (its rows
// were already discarded point-by-point at the merger).
func (s *scheduler) complete(st *batchState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st.runners--
	if !st.done {
		st.done = true
		if st.inflight {
			st.inflight = false
			s.keyInflight[st.Key]--
		}
		s.keyDone[st.Key]++
		s.completed++
	}
	s.cond.Broadcast()
}

// fail reports a dispatch that could not finish its batch. When the last
// runner of an unfinished batch fails, the batch goes back on the pending
// queue for any node to pick up.
func (s *scheduler) fail(st *batchState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st.runners--
	if !st.done && st.runners == 0 {
		if st.inflight {
			st.inflight = false
			s.keyInflight[st.Key]--
		}
		s.pending = append(s.pending, st)
	}
	s.cond.Broadcast()
}

// reassign re-derives every unfinished batch's affinity from its shard key —
// the node-death rebalance. owner is typically Ring.OwnerAmong over the
// surviving nodes, so only the dead node's keys move (ring minimal churn);
// in-flight batches are updated too, covering a later fail-and-requeue.
func (s *scheduler) reassign(owner func(key string) string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.all {
		if st.done {
			continue
		}
		if next := owner(st.Key); next != "" {
			st.Affinity = next
		}
	}
	s.cond.Broadcast()
}

// stop unblocks all runners; next returns nil from then on.
func (s *scheduler) stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// kick wakes waiting runners so they re-examine steal ages; the coordinator
// calls it on a timer since age crossings don't otherwise signal the cond.
func (s *scheduler) kick() {
	s.cond.Broadcast()
}

// stats returns (completed batches, total batches, steals) so far.
func (s *scheduler) stats() (completed, total, stolen int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed, len(s.all), s.stolen
}
