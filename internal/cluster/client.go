package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"intervalsim/internal/service"
)

// errIncompleteStream marks a batch stream that ended without its trailer:
// the daemon died or the connection dropped mid-shard. The dispatcher
// treats it as transient and re-dispatches the batch (already-committed
// points are deduplicated by the merger).
var errIncompleteStream = errors.New("cluster: batch stream ended without trailer")

// Client talks to one intervalsimd daemon. It wraps the daemon's JSON API
// with the fleet behaviors a coordinator needs: health probing, metrics
// scraping, NDJSON batch streaming, and honoring 429 + Retry-After
// admission pushback instead of hammering an overloaded node.
type Client struct {
	// Base is the daemon's root URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client; nil means a shared default with no
	// overall timeout (batch streams are long-lived; deadlines come from
	// the dispatch context).
	HTTP *http.Client

	// MaxRetryAfter caps how long one 429 backs the client off, so a
	// daemon advertising a long drain never wedges a dispatcher that could
	// steal work elsewhere; 0 means 10s.
	MaxRetryAfter time.Duration

	// Peers is the coordinator's fleet view minus this daemon, stamped on
	// every batch dispatch as the X-Peers header so the daemon can fill its
	// trace/overlay caches from the rest of the fleet instead of recomputing.
	Peers []string
}

// NewClient returns a client for endpoint, accepting bare host:port
// shorthand for http URLs.
func NewClient(endpoint string) *Client {
	base := endpoint
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// getJSON fetches one JSON document.
func getJSON(ctx context.Context, hc *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Health probes GET /healthz — liveness only: a daemon replaying durable
// job journals after a crash still answers 200 here.
func (c *Client) Health(ctx context.Context) (service.HealthResponse, error) {
	var h service.HealthResponse
	err := getJSON(ctx, c.httpClient(), c.Base+"/healthz", &h)
	return h, err
}

// Ready probes GET /readyz — the routing signal. A daemon that is alive but
// not ready (replaying journals after a restart, or draining) answers 503
// with the same health document; Ready surfaces that as an error so fleet
// probers route work elsewhere until the node recovers. A daemon too old to
// serve /readyz (404) falls back to the liveness probe.
func (c *Client) Ready(ctx context.Context) (service.HealthResponse, error) {
	var h service.HealthResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/readyz", nil)
	if err != nil {
		return h, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return c.Health(ctx)
	}
	decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h)
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("cluster: %s not ready: status %d (%s)", c.Base, resp.StatusCode, h.Status)
	}
	return h, decErr
}

// Metrics scrapes GET /metrics.
func (c *Client) Metrics(ctx context.Context) (service.MetricsResponse, error) {
	var m service.MetricsResponse
	err := getJSON(ctx, c.httpClient(), c.Base+"/metrics", &m)
	return m, err
}

// Batch dispatches one shard via POST /v1/batch and streams its NDJSON
// result lines to onPoint as they arrive. A 429 response is honored: the
// client waits the advertised (capped) Retry-After and resubmits. The
// returned trailer is valid only when err is nil; a stream that ends
// without a trailer reports errIncompleteStream so the caller re-dispatches.
func (c *Client) Batch(ctx context.Context, req service.BatchRequest, onPoint func(service.BatchPoint)) (service.BatchTrailer, error) {
	var trailer service.BatchTrailer
	raw, err := json.Marshal(req)
	if err != nil {
		return trailer, err
	}
	for {
		resp, err := c.post(ctx, c.Base+"/v1/batch", raw)
		if err != nil {
			return trailer, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			wait := c.retryAfter(resp)
			resp.Body.Close()
			select {
			case <-ctx.Done():
				return trailer, ctx.Err()
			case <-time.After(wait):
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			err := decodeError(resp)
			resp.Body.Close()
			return trailer, err
		}
		return readBatchStream(resp.Body, onPoint)
	}
}

func (c *Client) post(ctx context.Context, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if len(c.Peers) > 0 {
		req.Header.Set("X-Peers", strings.Join(c.Peers, ","))
	}
	return c.httpClient().Do(req)
}

// retryAfter parses the 429's Retry-After seconds, clamped to (0,
// MaxRetryAfter].
func (c *Client) retryAfter(resp *http.Response) time.Duration {
	max := c.MaxRetryAfter
	if max <= 0 {
		max = 10 * time.Second
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		return time.Second
	}
	d := time.Duration(secs) * time.Second
	if d > max {
		d = max
	}
	return d
}

// decodeError extracts the daemon's JSON error message.
func decodeError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e); err == nil && e.Error != "" {
		return fmt.Errorf("cluster: daemon status %d: %s", resp.StatusCode, e.Error)
	}
	return fmt.Errorf("cluster: daemon status %d", resp.StatusCode)
}

// readBatchStream consumes NDJSON lines until the trailer.
func readBatchStream(body io.ReadCloser, onPoint func(service.BatchPoint)) (service.BatchTrailer, error) {
	defer body.Close()
	var trailer service.BatchTrailer
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if bytes.Contains(line, []byte(`"done"`)) {
			if err := json.Unmarshal(line, &trailer); err != nil {
				return trailer, fmt.Errorf("cluster: bad trailer: %w", err)
			}
			return trailer, nil
		}
		var pt service.BatchPoint
		if err := json.Unmarshal(line, &pt); err != nil {
			return trailer, fmt.Errorf("cluster: bad stream line: %w", err)
		}
		onPoint(pt)
	}
	if err := sc.Err(); err != nil {
		return trailer, fmt.Errorf("%w: %v", errIncompleteStream, err)
	}
	return trailer, errIncompleteStream
}
