package cluster

import (
	"context"
	"fmt"
	"time"
)

// probeFleet checks every endpoint's readiness concurrently and reports
// which are routable. Readiness, not liveness: a daemon mid-restart that is
// still replaying its durable job journals answers /healthz but 503s
// /readyz, and the coordinator must not route sweep work at it until replay
// finishes. The coordinator runs this once up front: a sweep proceeds with
// whatever subset of the fleet answers, but zero ready endpoints is a
// configuration error worth failing fast on.
func probeFleet(ctx context.Context, clients []*Client, timeout time.Duration) []bool {
	up := make([]bool, len(clients))
	done := make(chan int, len(clients))
	for i, c := range clients {
		go func(i int, c *Client) {
			pctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			if _, err := c.Ready(pctx); err == nil {
				up[i] = true
			}
			done <- i
		}(i, c)
	}
	for range clients {
		<-done
	}
	return up
}

// awaitHealthy re-probes one endpoint with doubling backoff (250ms up to 2s
// between probes) until it answers /readyz, the context ends, or
// maxFailures consecutive probes fail. A node that flunks out is abandoned:
// its runner exits and the scheduler's requeue/steal machinery moves its
// work to the rest of the fleet. A restarted node that comes back
// "recovering" keeps failing this probe until its journal replay completes,
// so resumed durable jobs never race freshly routed work.
func awaitHealthy(ctx context.Context, c *Client, maxFailures int) error {
	backoff := 250 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt < maxFailures; attempt++ {
		pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		_, err := c.Ready(pctx)
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return ctx.Err()
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
	return fmt.Errorf("cluster: %s unhealthy after %d probes: %w", c.Base, maxFailures, lastErr)
}
